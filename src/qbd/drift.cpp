#include "qbd/drift.h"

#include "markov/gth.h"
#include "util/require.h"

namespace rlb::qbd {

Drift drift_condition(const linalg::Matrix& A0, const linalg::Matrix& A1,
                      const linalg::Matrix& A2) {
  linalg::Matrix a = A0;
  a += A1;
  a += A2;
  Drift out;
  out.pi = markov::stationary_gth(a);
  out.up = linalg::dot(out.pi, A0.row_sums());
  out.down = linalg::dot(out.pi, A2.row_sums());
  out.stable = out.up < out.down;
  return out;
}

}  // namespace rlb::qbd
