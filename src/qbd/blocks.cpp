#include "qbd/blocks.h"

#include <cmath>

namespace rlb::qbd {

double Blocks::generator_row_sum_error() const {
  double worst = 0.0;
  // Boundary rows: B00 + B01.
  const auto b00 = B00.row_sums();
  const auto b01 = B01.row_sums();
  for (std::size_t i = 0; i < b00.size(); ++i)
    worst = std::max(worst, std::abs(b00[i] + b01[i]));
  // Level-0 rows: B10 + A1 + A0.
  const auto b10 = B10.row_sums();
  const auto a1 = A1.row_sums();
  const auto a0 = A0.row_sums();
  for (std::size_t i = 0; i < b10.size(); ++i)
    worst = std::max(worst, std::abs(b10[i] + a1[i] + a0[i]));
  // Repeating rows: A2 + A1 + A0.
  const auto a2 = A2.row_sums();
  for (std::size_t i = 0; i < a2.size(); ++i)
    worst = std::max(worst, std::abs(a2[i] + a1[i] + a0[i]));
  return worst;
}

}  // namespace rlb::qbd
