// Stationary solver for the block QBD of Theorem 1, plus the scalar-rate
// variant of Theorems 2-3 (improved lower bound).
//
// Unknowns are (pi_b, pi_0, pi_1); levels q >= 1 follow the matrix-
// geometric tail pi_{q+1} = pi_q R. The boundary system is
//
//   (pi_b, pi_0, pi_1) | B00  B01     0        |
//                      | B10  A1     A0        |  =  0
//                      | 0    A2   A1 + R A2   |
//
// with normalization pi_b e + pi_0 e + pi_1 (I - R)^{-1} e = 1. For the
// improved lower bound R is replaced by the scalar sigma^N (= rho^N for
// Poisson arrivals), which skips the G/R iteration entirely.
#pragma once

#include <stdexcept>

#include "qbd/blocks.h"
#include "qbd/drift.h"
#include "qbd/logred.h"

namespace rlb::qbd {

/// Thrown when the drift condition fails (mean up-rate >= mean down-rate).
struct UnstableError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Solution {
  linalg::Vector pi_boundary;  ///< stationary mass of boundary states
  linalg::Vector pi0;          ///< level 0
  linalg::Vector pi1;          ///< level 1
  linalg::Matrix R;            ///< rate matrix (empty when scalar form used)
  double scalar_rate = -1.0;   ///< sigma^N when the scalar form was used
  int logred_iterations = 0;   ///< 0 when the scalar form was used
  double r_residual = 0.0;

  linalg::Vector tail_sum;       ///< sum_{q>=1} pi_q = pi_1 (I-R)^{-1}
  linalg::Vector tail_weighted;  ///< sum_{q>=1} (q-1) pi_q = pi_1 R (I-R)^{-2}
  double total_probability = 0.0;  ///< should be ~1 after normalization

  Drift drift;
};

/// Full matrix-geometric solve (Theorem 1). Throws UnstableError when the
/// drift condition fails.
Solution solve(const Blocks& blocks, double tol = 1e-14);

/// Scalar-rate solve (Theorems 2-3): pi_{q+1} = rate * pi_q with
/// rate = sigma^N in (0, 1). Throws UnstableError when rate >= 1.
Solution solve_scalar(const Blocks& blocks, double rate);

}  // namespace rlb::qbd
