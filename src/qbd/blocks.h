// Block form of a level-independent QBD generator (paper §IV-A):
//
//        |  B00  B01   0    0   ...
//   Q =  |  B10  A1   A0    0   ...
//        |   0   A2   A1   A0   ...
//        |   0    0   A2   A1   ...
//
// B00: boundary -> boundary, B01: boundary -> level 0, B10: level 0 ->
// boundary; A0/A1/A2 the repeating up/within/down blocks. Diagonal entries
// live in B00 and A1, so every full row of Q sums to zero.
#pragma once

#include "linalg/matrix.h"

namespace rlb::qbd {

struct Blocks {
  linalg::Matrix B00;  ///< boundary x boundary
  linalg::Matrix B01;  ///< boundary x m
  linalg::Matrix B10;  ///< m x boundary
  linalg::Matrix A0;   ///< m x m, level up
  linalg::Matrix A1;   ///< m x m, within level (holds the diagonal)
  linalg::Matrix A2;   ///< m x m, level down

  [[nodiscard]] std::size_t boundary_size() const { return B00.rows(); }
  [[nodiscard]] std::size_t block_size() const { return A1.rows(); }

  /// Max |row sum| over the full (conceptual) generator rows; ~0 for a
  /// well-formed QBD.
  [[nodiscard]] double generator_row_sum_error() const;
};

}  // namespace rlb::qbd
