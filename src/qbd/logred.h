// Matrix-geometric kernels: the Latouche–Ramaswami logarithmic reduction
// for G (the first-passage matrix solving 0 = A2 + A1 G + A0 G^2), the
// naive functional iteration (kept as an independent cross-check), and the
// rate matrix R = -A0 (A1 + A0 G)^{-1} of Theorem 1.
#pragma once

#include "linalg/matrix.h"

namespace rlb::qbd {

struct GResult {
  linalg::Matrix G;
  int iterations = 0;
  double residual = 0.0;  ///< ||A2 + A1 G + A0 G^2||_inf at exit
  bool converged = false;
};

/// Logarithmic reduction (Latouche & Ramaswami 1993). Quadratic
/// convergence; the paper reports k <= 6 iterations for its configurations.
GResult logarithmic_reduction(const linalg::Matrix& A0,
                              const linalg::Matrix& A1,
                              const linalg::Matrix& A2, double tol = 1e-14,
                              int max_iter = 64);

/// Classic fixed-point iteration G <- (-A1)^{-1} (A2 + A0 G^2); linear
/// convergence, used only to cross-validate the logarithmic reduction.
GResult functional_iteration(const linalg::Matrix& A0,
                             const linalg::Matrix& A1,
                             const linalg::Matrix& A2, double tol = 1e-13,
                             int max_iter = 100000);

/// R = -A0 (A1 + A0 G)^{-1}.
linalg::Matrix rate_matrix_from_g(const linalg::Matrix& A0,
                                  const linalg::Matrix& A1,
                                  const linalg::Matrix& G);

/// ||A2 + A1 G + A0 G^2||_inf.
double g_residual(const linalg::Matrix& A0, const linalg::Matrix& A1,
                  const linalg::Matrix& A2, const linalg::Matrix& G);

/// ||A0 + R A1 + R^2 A2||_inf.
double r_residual(const linalg::Matrix& A0, const linalg::Matrix& A1,
                  const linalg::Matrix& A2, const linalg::Matrix& R);

}  // namespace rlb::qbd
