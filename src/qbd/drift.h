// Positive-recurrence (stability) check for a level-independent QBD:
// Neuts' mean-drift condition  pi A0 e < pi A2 e  where  pi A = 0,
// pi e = 1, A = A0 + A1 + A2 (the generator of the within-level "shape"
// process). For the lower bound model this reduces to lambda < mu; the
// upper bound model loses capacity to redirections and becomes unstable
// earlier — exactly the behaviour Figure 10 shows for T = 2.
#pragma once

#include "linalg/matrix.h"

namespace rlb::qbd {

struct Drift {
  double up = 0.0;     ///< pi A0 e: mean upward rate
  double down = 0.0;   ///< pi A2 e: mean downward rate
  bool stable = false;
  linalg::Vector pi;   ///< stationary vector of A
};

Drift drift_condition(const linalg::Matrix& A0, const linalg::Matrix& A1,
                      const linalg::Matrix& A2);

}  // namespace rlb::qbd
