#include "qbd/solver.h"

#include <cmath>

#include "linalg/lu.h"
#include "util/require.h"

namespace rlb::qbd {

using linalg::Matrix;
using linalg::Vector;

namespace {

/// Assemble and solve the boundary system. `corner` is the bottom-right
/// block A1 + R A2 (or A1 + rate * A2), `tail_weights` the per-entry
/// normalization coefficients for pi_1, i.e. row sums of (I - R)^{-1}.
struct BoundaryResult {
  Vector pi_b, pi0, pi1;
};

BoundaryResult solve_boundary(const Blocks& b, const Matrix& corner,
                              const Vector& tail_weights) {
  const std::size_t nb = b.boundary_size();
  const std::size_t m = b.block_size();
  const std::size_t n = nb + 2 * m;

  // Equations are columns of the block matrix; we solve M^T x = rhs with
  // one equation replaced by the normalization.
  Matrix mt(n, n, 0.0);  // M transposed
  const auto put_block_t = [&](const Matrix& blk, std::size_t row0,
                               std::size_t col0) {
    // Block sits at (row0, col0) of M; transpose into mt.
    for (std::size_t i = 0; i < blk.rows(); ++i)
      for (std::size_t j = 0; j < blk.cols(); ++j)
        mt(col0 + j, row0 + i) = blk(i, j);
  };
  put_block_t(b.B00, 0, 0);
  put_block_t(b.B01, 0, nb);
  put_block_t(b.B10, nb, 0);
  put_block_t(b.A1, nb, nb);
  put_block_t(b.A0, nb, nb + m);
  put_block_t(b.A2, nb + m, nb);
  put_block_t(corner, nb + m, nb + m);

  // Replace the first equation with the normalization; the dropped balance
  // equation is recovered by the global balance redundancy.
  for (std::size_t j = 0; j < nb + m; ++j) mt(0, j) = 1.0;
  for (std::size_t j = 0; j < m; ++j) mt(0, nb + m + j) = tail_weights[j];
  Vector rhs(n, 0.0);
  rhs[0] = 1.0;

  const Vector x = linalg::solve(mt, std::move(rhs));
  BoundaryResult out;
  out.pi_b.assign(x.begin(), x.begin() + nb);
  out.pi0.assign(x.begin() + nb, x.begin() + nb + m);
  out.pi1.assign(x.begin() + nb + m, x.end());
  return out;
}

}  // namespace

Solution solve(const Blocks& blocks, double tol) {
  Solution sol;
  sol.drift = drift_condition(blocks.A0, blocks.A1, blocks.A2);
  if (!sol.drift.stable)
    throw UnstableError("QBD drift condition fails: pi A0 e = " +
                        std::to_string(sol.drift.up) +
                        " >= pi A2 e = " + std::to_string(sol.drift.down));

  const GResult g = logarithmic_reduction(blocks.A0, blocks.A1, blocks.A2,
                                          tol);
  RLB_REQUIRE(g.converged, "logarithmic reduction did not converge");
  sol.logred_iterations = g.iterations;
  sol.R = rate_matrix_from_g(blocks.A0, blocks.A1, g.G);
  sol.r_residual = r_residual(blocks.A0, blocks.A1, blocks.A2, sol.R);

  const std::size_t m = blocks.block_size();
  const Matrix I = Matrix::identity(m);
  Matrix i_minus_r = I;
  i_minus_r -= sol.R;
  const linalg::Lu lu_imr(i_minus_r);
  const Vector tail_weights = lu_imr.solve(Vector(m, 1.0));

  Matrix corner = blocks.A1;
  corner += sol.R * blocks.A2;
  const BoundaryResult br = solve_boundary(blocks, corner, tail_weights);
  sol.pi_boundary = br.pi_b;
  sol.pi0 = br.pi0;
  sol.pi1 = br.pi1;

  // tail_sum = pi_1 (I-R)^{-1}  <=>  tail_sum (I-R) = pi_1.
  const linalg::Lu lu_imr_t(i_minus_r.transpose());
  sol.tail_sum = lu_imr_t.solve(sol.pi1);
  // tail_weighted = pi_1 R (I-R)^{-2} = ((tail_sum) R) (I-R)^{-1}.
  sol.tail_weighted = lu_imr_t.solve(linalg::vec_mat(sol.tail_sum, sol.R));

  sol.total_probability = linalg::sum(sol.pi_boundary) +
                          linalg::sum(sol.pi0) + linalg::sum(sol.tail_sum);
  return sol;
}

Solution solve_scalar(const Blocks& blocks, double rate) {
  Solution sol;
  sol.drift = drift_condition(blocks.A0, blocks.A1, blocks.A2);
  if (!(rate >= 0.0 && rate < 1.0))
    throw UnstableError("scalar rate " + std::to_string(rate) +
                        " outside [0, 1)");
  sol.scalar_rate = rate;

  const std::size_t m = blocks.block_size();
  Matrix corner = blocks.A1;
  {
    Matrix scaled_a2 = blocks.A2;
    scaled_a2 *= rate;
    corner += scaled_a2;
  }
  const Vector tail_weights(m, 1.0 / (1.0 - rate));
  const BoundaryResult br = solve_boundary(blocks, corner, tail_weights);
  sol.pi_boundary = br.pi_b;
  sol.pi0 = br.pi0;
  sol.pi1 = br.pi1;

  sol.tail_sum = linalg::scaled(sol.pi1, 1.0 / (1.0 - rate));
  sol.tail_weighted =
      linalg::scaled(sol.pi1, rate / ((1.0 - rate) * (1.0 - rate)));
  sol.total_probability = linalg::sum(sol.pi_boundary) +
                          linalg::sum(sol.pi0) + linalg::sum(sol.tail_sum);
  return sol;
}

}  // namespace rlb::qbd
