#include "qbd/logred.h"

#include "linalg/lu.h"
#include "util/require.h"

namespace rlb::qbd {

using linalg::Lu;
using linalg::Matrix;

namespace {

void check_shapes(const Matrix& A0, const Matrix& A1, const Matrix& A2) {
  RLB_REQUIRE(A0.rows() == A0.cols() && A1.rows() == A1.cols() &&
                  A2.rows() == A2.cols(),
              "QBD blocks must be square");
  RLB_REQUIRE(A0.rows() == A1.rows() && A1.rows() == A2.rows(),
              "QBD blocks must agree in size");
}

}  // namespace

GResult logarithmic_reduction(const Matrix& A0, const Matrix& A1,
                              const Matrix& A2, double tol, int max_iter) {
  check_shapes(A0, A1, A2);
  const std::size_t n = A0.rows();
  const Matrix I = Matrix::identity(n);

  // B1 = (-A1)^{-1} A0,  B2 = (-A1)^{-1} A2.
  Matrix neg_a1 = A1;
  neg_a1 *= -1.0;
  const Lu lu(neg_a1);
  Matrix b1 = lu.solve(A0);
  Matrix b2 = lu.solve(A2);

  // G = sum_{k>=1} (prod_{i<k} B1_i) B2_k, accumulated incrementally:
  // after each doubling step, G += prefix * B2 with prefix = prod B1.
  Matrix g = b2;
  Matrix prefix = b1;

  GResult out;
  for (int it = 1; it <= max_iter; ++it) {
    out.iterations = it;
    // U = I - B1 B2 - B2 B1.
    Matrix u = I;
    u -= b1 * b2;
    u -= b2 * b1;
    const Lu lu_u(u);
    const Matrix b1_next = lu_u.solve(b1 * b1);
    const Matrix b2_next = lu_u.solve(b2 * b2);
    const Matrix increment = prefix * b2_next;
    g += increment;
    prefix = prefix * b1_next;
    b1 = b1_next;
    b2 = b2_next;
    if (increment.max_abs() <= tol) {
      out.converged = true;
      break;
    }
  }
  out.G = std::move(g);
  out.residual = g_residual(A0, A1, A2, out.G);
  return out;
}

GResult functional_iteration(const Matrix& A0, const Matrix& A1,
                             const Matrix& A2, double tol, int max_iter) {
  check_shapes(A0, A1, A2);
  Matrix neg_a1 = A1;
  neg_a1 *= -1.0;
  const Lu lu(neg_a1);
  Matrix g(A0.rows(), A0.cols(), 0.0);
  GResult out;
  for (int it = 1; it <= max_iter; ++it) {
    out.iterations = it;
    Matrix next = lu.solve(A2 + A0 * (g * g));
    Matrix diff = next;
    diff -= g;
    g = std::move(next);
    if (diff.max_abs() <= tol) {
      out.converged = true;
      break;
    }
  }
  out.G = std::move(g);
  out.residual = g_residual(A0, A1, A2, out.G);
  return out;
}

Matrix rate_matrix_from_g(const Matrix& A0, const Matrix& A1,
                          const Matrix& G) {
  // R = -A0 (A1 + A0 G)^{-1}  <=>  R (A1 + A0 G) = -A0
  //  <=>  (A1 + A0 G)^T R^T = -A0^T.
  Matrix k = A1 + A0 * G;
  Matrix neg_a0_t = A0.transpose();
  neg_a0_t *= -1.0;
  return Lu(k.transpose()).solve(neg_a0_t).transpose();
}

double g_residual(const Matrix& A0, const Matrix& A1, const Matrix& A2,
                  const Matrix& G) {
  Matrix res = A2;
  res += A1 * G;
  res += A0 * (G * G);
  return res.max_abs();
}

double r_residual(const Matrix& A0, const Matrix& A1, const Matrix& A2,
                  const Matrix& R) {
  Matrix res = A0;
  res += R * A1;
  res += (R * R) * A2;
  return res.max_abs();
}

}  // namespace rlb::qbd
