// Dispatch policies for the cluster simulator.
//
// SqdPolicy(d) is the paper's policy family: d = 1 is uniform random
// routing, d = N is JSQ. RoundRobin and LeastWorkLeft are classic
// comparators used in the example scenarios; JiqPolicy (join-idle-queue,
// Lu et al. 2011) and JbtPolicy (join-below-threshold-d) are the
// low-feedback alternatives SQ(d) competes with in the comparison
// scenarios.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace rlb::sim {

/// Read-only view of the cluster that policies may inspect.
class ClusterState {
 public:
  virtual ~ClusterState() = default;
  [[nodiscard]] virtual int servers() const = 0;
  [[nodiscard]] virtual int queue_length(int server) const = 0;
  [[nodiscard]] virtual double remaining_work(int server) const = 0;

  /// Number of currently idle (empty-queue) servers. The default scans
  /// queue_length; simulators that track the dispatcher's I-queue
  /// override it.
  [[nodiscard]] virtual int idle_servers() const;

  /// The i-th idle server, 0 <= i < idle_servers(). Index 0 is the head
  /// of the dispatcher's idle queue — first-idle-first-out where the
  /// simulator tracks becoming-idle order (cluster_sim does), server-index
  /// order in the default scan.
  [[nodiscard]] virtual int idle_server(int i) const;
};

class Policy {
 public:
  virtual ~Policy() = default;
  /// Choose the server for an arriving job.
  [[nodiscard]] virtual int select(const ClusterState& cluster, Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void reset() {}
  /// An independent copy for parallel simulation replicas (each replica
  /// must own its mutable policy state).
  [[nodiscard]] virtual std::unique_ptr<Policy> clone() const = 0;
};

/// SQ(d): poll d distinct servers uniformly, join the shortest polled queue
/// (ties resolved uniformly among the polled minima).
class SqdPolicy final : public Policy {
 public:
  SqdPolicy(int n, int d);
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<SqdPolicy>(*this);
  }

 private:
  int d_;
  DistinctSampler sampler_;
  std::vector<int> polled_;
};

/// JSQ = SQ(N), implemented with a full scan (no sampling overhead).
class JsqPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "jsq"; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<JsqPolicy>(*this);
  }
};

class RoundRobinPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  void reset() override { next_ = 0; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RoundRobinPolicy>(*this);
  }

 private:
  int next_ = 0;
};

/// Join-idle-queue (Lu et al.): the dispatcher keeps a queue of servers
/// that reported going idle and sends each arrival to its head; when no
/// server is idle the job falls back to SQ(fallback_d) polling
/// (fallback_d = 1 is the classic "route randomly" JIQ). Near-zero
/// feedback per job, JSQ-like delay at low and moderate load.
class JiqPolicy final : public Policy {
 public:
  explicit JiqPolicy(int n, int fallback_d = 1);
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<JiqPolicy>(*this);
  }

 private:
  SqdPolicy fallback_;
};

/// Join-below-threshold-d: poll d distinct servers and join a uniformly
/// random polled server whose queue length is strictly below `threshold`
/// (JBT needs only a below/above bit per server, so candidates are
/// indistinguishable). When no polled server qualifies, fall back to the
/// shortest polled queue (Fallback::Shortest, SQ(d)-like) or a uniform
/// polled server (Fallback::Random). threshold = 0 with Fallback::Random
/// degenerates to uniform random routing.
class JbtPolicy final : public Policy {
 public:
  enum class Fallback { Shortest, Random };

  JbtPolicy(int n, int d, int threshold,
            Fallback fallback = Fallback::Shortest);
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<JbtPolicy>(*this);
  }

 private:
  int d_;
  int threshold_;
  Fallback fallback_;
  DistinctSampler sampler_;
  std::vector<int> polled_;
  std::vector<int> below_;
};

/// Joins the server with the least remaining work (an idealized policy that
/// needs full workload information).
class LeastWorkLeftPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "least-work"; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<LeastWorkLeftPolicy>(*this);
  }
};

}  // namespace rlb::sim
