// Dispatch policies for the cluster simulator.
//
// SqdPolicy(d) is the paper's policy family: d = 1 is uniform random
// routing, d = N is JSQ. RoundRobin and LeastWorkLeft are classic
// comparators used in the example scenarios; JiqPolicy (join-idle-queue,
// Lu et al. 2011) and JbtPolicy (join-below-threshold-d) are the
// low-feedback alternatives SQ(d) competes with in the comparison
// scenarios.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace rlb::sim {

class LevelDirectory;  // sim/level_directory.h — the compact engine's state

/// Read-only view of the cluster that policies may inspect.
class ClusterState {
 public:
  virtual ~ClusterState() = default;
  [[nodiscard]] virtual int servers() const = 0;
  [[nodiscard]] virtual int queue_length(int server) const = 0;
  [[nodiscard]] virtual double remaining_work(int server) const = 0;

  /// Number of currently idle (empty-queue) servers. The default scans
  /// queue_length; simulators that track the dispatcher's I-queue
  /// override it.
  [[nodiscard]] virtual int idle_servers() const;

  /// The i-th idle server, 0 <= i < idle_servers(). Index 0 is the head
  /// of the dispatcher's idle queue — first-idle-first-out where the
  /// simulator tracks becoming-idle order (cluster_sim does), server-index
  /// order in the default scan.
  [[nodiscard]] virtual int idle_server(int i) const;

  /// The longest-idle server with index in [begin, end) — a rack's slice
  /// of the dispatcher's I-queue — or -1 when no server in the range is
  /// idle. The default walks the idle view in its order, so it inherits
  /// whatever ordering idle_server provides (true first-idle-first-out in
  /// cluster_sim, index order in the default scan). Per-rack JIQ
  /// dispatches through this.
  [[nodiscard]] virtual int rack_idle_head(int begin, int end) const;
};

/// Compressed cluster state for SYMMETRIC (exchangeable) policies: the
/// queue-length histogram — how many servers sit at each queue length —
/// instead of per-server queues. This is the mean-field representation
/// (the fraction of servers with >= k jobs is the paper's s_k), and it is
/// what lets the compact engine keep the per-job dispatch cost
/// independent of the fleet size N.
///
/// Server indices still appear in the interface, but only as opaque,
/// exchangeable handles: `level_of` exists so sampling policies (SQ(d),
/// JBT) can poll the levels of d uniformly drawn handles with exactly the
/// legacy engine's random streams, and `sample_at_level` draws a uniform
/// handle among the servers at one level in O(1). Nothing else about a
/// server — remaining work, job identities, position — is visible, which
/// is precisely why the engine behind this view can compress its state.
///
/// Every aggregate query is O(1); `level_of` and `sample_at_level` are
/// O(1) as well (the engine keeps a by-level directory).
class QueueHistogramView {
 public:
  virtual ~QueueHistogramView() = default;

  [[nodiscard]] virtual int servers() const = 0;

  /// Largest queue length currently held by any server (0 when all idle).
  [[nodiscard]] virtual int max_level() const = 0;

  /// Number of servers with queue length EXACTLY `level`; 0 for levels
  /// above max_level().
  [[nodiscard]] virtual int count_at(int level) const = 0;

  /// Number of idle servers, == count_at(0), in O(1).
  [[nodiscard]] virtual int idle_count() const = 0;

  /// The idle server that has been idle the longest, -1 when none.
  ///
  /// Ordering contract (identical to ClusterState::idle_server(0), which
  /// this replaces on the compressed path): the dispatcher's I-queue is
  /// first-idle-first-out — servers enter at the tail the moment their
  /// queue empties and leave when a job is dispatched to them — and at
  /// time zero, when every server is idle, the queue holds the servers
  /// in server-index order. JIQ's "join the longest-idle server" is
  /// therefore bit-identical across the legacy and compact engines.
  [[nodiscard]] virtual int idle_head() const = 0;

  /// Queue length of one server handle, O(1).
  [[nodiscard]] virtual int level_of(int server) const = 0;

  /// A uniformly random server among the count_at(level) servers at
  /// `level` (which must be > 0 servers), consuming exactly one
  /// uniform_int draw. O(1): this is the histogram's replacement for
  /// "scan all N servers and tie-break among the minima".
  [[nodiscard]] virtual int sample_at_level(int level, Rng& rng) const = 0;

  /// The longest-idle server with index in [begin, end), -1 when that
  /// slice holds no idle server. The default scans level_of in index
  /// order (test doubles); the compact engine's LevelDirectory overrides
  /// it with O(1) per-rack idle FIFOs whose order matches the legacy
  /// I-queue exactly (first-idle-first-out, index order at time zero) —
  /// the per-rack analogue of the idle_head() ordering contract.
  [[nodiscard]] virtual int rack_idle_head(int begin, int end) const;
};

class Policy {
 public:
  virtual ~Policy() = default;
  /// Choose the server for an arriving job.
  [[nodiscard]] virtual int select(const ClusterState& cluster, Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void reset() {}
  /// An independent copy for parallel simulation replicas (each replica
  /// must own its mutable policy state).
  [[nodiscard]] virtual std::unique_ptr<Policy> clone() const = 0;

  /// Capability flag: true when the policy's decision depends on the
  /// cluster only through exchangeable queue-length information, i.e. it
  /// implements select_symmetric. Symmetric policies are eligible for the
  /// compact (histogram-state) engine; identity-aware policies
  /// (round-robin, least-work-left) return false and keep the legacy
  /// per-server ClusterState path.
  [[nodiscard]] virtual bool symmetric() const { return false; }

  /// Choose the server for an arriving job from compressed state. Only
  /// called when symmetric() is true; the default throws. For the
  /// paper's policies the implementation consumes the SAME random draws
  /// as select() on an identical cluster, so a simulation is
  /// bit-identical on either engine (the equivalence tests pin this).
  [[nodiscard]] virtual int select_symmetric(const QueueHistogramView& view,
                                             Rng& rng);

  /// select_symmetric specialized to the compact engine's concrete
  /// LevelDirectory. Same decision, same random draws, bit-identical
  /// result — but the directory accessors devirtualize and inline
  /// (LevelDirectory is final), so the per-event path pays ONE virtual
  /// call (this one) instead of one per polled server. The default
  /// forwards to select_symmetric; the paper's policies override it.
  [[nodiscard]] virtual int select_direct(const LevelDirectory& dir,
                                          Rng& rng);

  /// Layout hint, queried once per run, never per event: true when the
  /// policy dispatches to the idle-FIFO head whenever one exists (JIQ).
  /// Engines that stage memory between events use it to prefetch the
  /// head server's state before the next arrival is even drawn; it never
  /// affects which server is selected.
  [[nodiscard]] virtual bool dispatches_to_idle_head() const { return false; }

  /// Capability flag: true when the policy's decision depends on the
  /// arriving job's home rack (docs/TOPOLOGY.md). Engines running a
  /// racked topology draw one home rack per arrival and route the
  /// dispatch through the rack-aware select overloads below.
  [[nodiscard]] virtual bool locality_aware() const { return false; }

  /// The rack count this policy was built for, 0 when the policy is
  /// topology-blind and runs under any topology. Config validation
  /// rejects a mismatch with ClusterConfig::topology.racks, which would
  /// otherwise silently corrupt the policy's rack arithmetic.
  [[nodiscard]] virtual int required_racks() const { return 0; }

  /// Rack-aware select variants, one per engine path. Engines call these
  /// (instead of the overloads above) whenever the run's topology is
  /// observable — racks > 1 with a penalty or a locality-aware policy —
  /// passing the arriving job's home rack. The defaults forward to the
  /// topology-blind overloads, so blind policies under a penalized
  /// topology dispatch exactly as they always did (and simply pay the
  /// penalty when they land cross-rack).
  [[nodiscard]] virtual int select(const ClusterState& cluster, int home_rack,
                                   Rng& rng) {
    (void)home_rack;
    return select(cluster, rng);
  }
  [[nodiscard]] virtual int select_symmetric(const QueueHistogramView& view,
                                             int home_rack, Rng& rng) {
    (void)home_rack;
    return select_symmetric(view, rng);
  }
  [[nodiscard]] virtual int select_direct(const LevelDirectory& dir,
                                          int home_rack, Rng& rng) {
    (void)home_rack;
    return select_direct(dir, rng);
  }
};

/// SQ(d): poll d distinct servers uniformly, join the shortest polled queue
/// (ties resolved uniformly among the polled minima).
class SqdPolicy final : public Policy {
 public:
  SqdPolicy(int n, int d);
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] bool symmetric() const override { return true; }
  int select_symmetric(const QueueHistogramView& view, Rng& rng) override;
  int select_direct(const LevelDirectory& dir, Rng& rng) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<SqdPolicy>(*this);
  }

 private:
  int d_;
  DistinctSampler sampler_;
  std::vector<int> polled_;
};

/// JSQ = SQ(N), implemented with a full scan (no sampling overhead).
/// select_symmetric runs the same scan over levels — bit-identical with
/// the legacy path but still O(N) per arrival (JSQ inherently consumes
/// full-fleet information). For O(1) JSQ dispatch at fleet scale, use
/// HistogramJsqPolicy.
class JsqPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] bool symmetric() const override { return true; }
  int select_symmetric(const QueueHistogramView& view, Rng& rng) override;
  int select_direct(const LevelDirectory& dir, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "jsq"; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<JsqPolicy>(*this);
  }
};

/// JSQ through the histogram: join a uniformly random server among those
/// at the minimum occupied queue length, in O(1) via
/// QueueHistogramView::sample_at_level. The selected server is
/// distributed EXACTLY like JsqPolicy's scan (uniform among the minima),
/// but with one RNG draw instead of one per tie — so the two are
/// statistically interchangeable while their sample paths differ. This is
/// the policy that makes JSQ feasible at N = 10^6 in fleet_scaling.
class HistogramJsqPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] bool symmetric() const override { return true; }
  int select_symmetric(const QueueHistogramView& view, Rng& rng) override;
  int select_direct(const LevelDirectory& dir, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "jsq-h"; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<HistogramJsqPolicy>(*this);
  }
};

class RoundRobinPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  void reset() override { next_ = 0; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RoundRobinPolicy>(*this);
  }

 private:
  int next_ = 0;
};

/// Join-idle-queue (Lu et al.): the dispatcher keeps a queue of servers
/// that reported going idle and sends each arrival to its head; when no
/// server is idle the job falls back to SQ(fallback_d) polling
/// (fallback_d = 1 is the classic "route randomly" JIQ). Near-zero
/// feedback per job, JSQ-like delay at low and moderate load.
class JiqPolicy final : public Policy {
 public:
  explicit JiqPolicy(int n, int fallback_d = 1);
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] bool symmetric() const override { return true; }
  int select_symmetric(const QueueHistogramView& view, Rng& rng) override;
  int select_direct(const LevelDirectory& dir, Rng& rng) override;
  [[nodiscard]] bool dispatches_to_idle_head() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<JiqPolicy>(*this);
  }

 private:
  SqdPolicy fallback_;
};

/// Join-below-threshold-d: poll d distinct servers and join a uniformly
/// random polled server whose queue length is strictly below `threshold`
/// (JBT needs only a below/above bit per server, so candidates are
/// indistinguishable). When no polled server qualifies, fall back to the
/// shortest polled queue (Fallback::Shortest, SQ(d)-like) or a uniform
/// polled server (Fallback::Random). threshold = 0 with Fallback::Random
/// degenerates to uniform random routing.
class JbtPolicy final : public Policy {
 public:
  enum class Fallback { Shortest, Random };

  JbtPolicy(int n, int d, int threshold,
            Fallback fallback = Fallback::Shortest);
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] bool symmetric() const override { return true; }
  int select_symmetric(const QueueHistogramView& view, Rng& rng) override;
  int select_direct(const LevelDirectory& dir, Rng& rng) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<JbtPolicy>(*this);
  }

 private:
  int d_;
  int threshold_;
  Fallback fallback_;
  DistinctSampler sampler_;
  std::vector<int> polled_;
  std::vector<int> below_;
};

/// Rack-local SQ(d) (docs/TOPOLOGY.md): poll up to d distinct servers in
/// the arriving job's home rack and join the shortest polled local queue
/// — unless the local pool is saturated (every local polled queue is at
/// least `spill_threshold` long), in which case the policy polls up to d
/// distinct servers OUTSIDE the home rack and joins the remote best only
/// when it is STRICTLY shorter than the local best (a tie never pays the
/// cross-rack penalty). spill_threshold == 0 disables spilling entirely:
/// the policy stays rack-local at any load, making each rack an
/// independent SQ(d) system of N/racks servers — the exact-solver
/// cross-check configuration of the rack_locality scenario.
///
/// Poll sizes clamp to the pool: d > servers-per-rack polls the whole
/// rack, d > N - servers-per-rack polls every remote server. With
/// racks == 1 the policy degenerates to plain SQ(d) (the home rack is
/// the whole cluster and the remote pool is empty).
class RackLocalSqdPolicy final : public Policy {
 public:
  RackLocalSqdPolicy(int n, int racks, int d, int spill_threshold = 1);
  int select(const ClusterState& cluster, Rng& rng) override;
  int select(const ClusterState& cluster, int home_rack, Rng& rng) override;
  [[nodiscard]] bool symmetric() const override { return true; }
  int select_symmetric(const QueueHistogramView& view, Rng& rng) override;
  int select_symmetric(const QueueHistogramView& view, int home_rack,
                       Rng& rng) override;
  int select_direct(const LevelDirectory& dir, Rng& rng) override;
  int select_direct(const LevelDirectory& dir, int home_rack,
                    Rng& rng) override;
  [[nodiscard]] bool locality_aware() const override { return true; }
  [[nodiscard]] int required_racks() const override { return racks_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RackLocalSqdPolicy>(*this);
  }

 private:
  template <typename LenFn>
  int dispatch(int home_rack, Rng& rng, LenFn&& len_of);

  int n_;
  int racks_;
  int per_rack_;
  int d_;
  int spill_threshold_;
  DistinctSampler local_sampler_;   ///< over one rack's servers
  DistinctSampler remote_sampler_;  ///< over the other racks' servers
  std::vector<int> polled_;
};

/// Per-rack join-idle-queue (docs/TOPOLOGY.md): the dispatcher keeps one
/// idle FIFO per rack and sends each arrival to its HOME rack's head.
/// When the home rack has no idle server the policy STEALS the
/// longest-idle server anywhere — the global I-queue head, preserving
/// the first-idle-first-out contract across the steal (both engines
/// agree on the steal order bit-for-bit; the lockstep audit test pins
/// it). When no server in the cluster is idle at all, the arrival falls
/// back to rack-local SQ(fallback_d) polling.
///
/// dispatches_to_idle_head() stays false: the dispatch target is the
/// home rack's head, not the global head, so the engine's idle-head
/// prefetch hint would stage the wrong server.
class RackJiqPolicy final : public Policy {
 public:
  RackJiqPolicy(int n, int racks, int fallback_d = 1,
                int spill_threshold = 1);
  int select(const ClusterState& cluster, Rng& rng) override;
  int select(const ClusterState& cluster, int home_rack, Rng& rng) override;
  [[nodiscard]] bool symmetric() const override { return true; }
  int select_symmetric(const QueueHistogramView& view, Rng& rng) override;
  int select_symmetric(const QueueHistogramView& view, int home_rack,
                       Rng& rng) override;
  int select_direct(const LevelDirectory& dir, Rng& rng) override;
  int select_direct(const LevelDirectory& dir, int home_rack,
                    Rng& rng) override;
  [[nodiscard]] bool locality_aware() const override { return true; }
  [[nodiscard]] int required_racks() const override { return racks_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RackJiqPolicy>(*this);
  }

 private:
  int racks_;
  int per_rack_;
  RackLocalSqdPolicy fallback_;
};

/// Joins the server with the least remaining work (an idealized policy that
/// needs full workload information).
class LeastWorkLeftPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "least-work"; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<LeastWorkLeftPolicy>(*this);
  }
};

}  // namespace rlb::sim
