// Dispatch policies for the cluster simulator.
//
// SqdPolicy(d) is the paper's policy family: d = 1 is uniform random
// routing, d = N is JSQ. RoundRobin and LeastWorkLeft are classic
// comparators used in the example scenarios.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace rlb::sim {

/// Read-only view of the cluster that policies may inspect.
class ClusterState {
 public:
  virtual ~ClusterState() = default;
  [[nodiscard]] virtual int servers() const = 0;
  [[nodiscard]] virtual int queue_length(int server) const = 0;
  [[nodiscard]] virtual double remaining_work(int server) const = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;
  /// Choose the server for an arriving job.
  [[nodiscard]] virtual int select(const ClusterState& cluster, Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void reset() {}
  /// An independent copy for parallel simulation replicas (each replica
  /// must own its mutable policy state).
  [[nodiscard]] virtual std::unique_ptr<Policy> clone() const = 0;
};

/// SQ(d): poll d distinct servers uniformly, join the shortest polled queue
/// (ties resolved uniformly among the polled minima).
class SqdPolicy final : public Policy {
 public:
  SqdPolicy(int n, int d);
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<SqdPolicy>(*this);
  }

 private:
  int d_;
  DistinctSampler sampler_;
  std::vector<int> polled_;
};

/// JSQ = SQ(N), implemented with a full scan (no sampling overhead).
class JsqPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "jsq"; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<JsqPolicy>(*this);
  }
};

class RoundRobinPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  void reset() override { next_ = 0; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RoundRobinPolicy>(*this);
  }

 private:
  int next_ = 0;
};

/// Joins the server with the least remaining work (an idealized policy that
/// needs full workload information).
class LeastWorkLeftPolicy final : public Policy {
 public:
  int select(const ClusterState& cluster, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "least-work"; }
  [[nodiscard]] std::unique_ptr<Policy> clone() const override {
    return std::make_unique<LeastWorkLeftPolicy>(*this);
  }
};

}  // namespace rlb::sim
