#include "sim/fast_sqd.h"

#include <vector>

#include "sim/rng.h"
#include "sim/stats.h"
#include "util/require.h"

namespace rlb::sim {

FastSqdResult simulate_sqd_fast(const FastSqdConfig& cfg) {
  const sqd::Params& p = cfg.params;
  p.validate();
  RLB_REQUIRE(cfg.warmup < cfg.jobs, "warmup must be below job count");

  Rng rng(cfg.seed);
  DistinctSampler sampler(p.N);
  std::vector<int> polled;

  std::vector<int> queue(p.N, 0);
  // Busy-server bookkeeping for O(1) departure sampling.
  std::vector<int> busy;          // indices of busy servers
  std::vector<int> busy_pos(p.N, -1);
  busy.reserve(p.N);

  const double arrival_rate = p.total_arrival_rate();
  const std::uint64_t measured_jobs = cfg.jobs - cfg.warmup;
  const std::uint64_t batch =
      cfg.batch_size > 0 ? cfg.batch_size
                         : std::max<std::uint64_t>(1, measured_jobs / 30);
  BatchMeans delay_ci(batch);
  StreamingMoments delay_stats, queue_seen;
  // Histogram of a uniformly sampled server's queue length at arrival
  // epochs (PASTA makes these time-stationary samples).
  std::vector<std::uint64_t> tail_hist(
      cfg.tail_kmax > 0 ? cfg.tail_kmax + 2 : 0, 0);

  std::uint64_t arrivals = 0;
  while (arrivals < cfg.jobs) {
    const double total_rate =
        arrival_rate + p.mu * static_cast<double>(busy.size());
    const bool is_arrival =
        rng.next_double() * total_rate < arrival_rate;
    if (is_arrival) {
      sampler.sample(p.d, rng, polled);
      int best = polled[0];
      int best_len = queue[best];
      int ties = 1;
      for (int i = 1; i < p.d; ++i) {
        const int s = polled[i];
        if (queue[s] < best_len) {
          best = s;
          best_len = queue[s];
          ties = 1;
        } else if (queue[s] == best_len) {
          ++ties;
          if (rng.uniform_int(ties) == 0) best = s;
        }
      }
      if (arrivals >= cfg.warmup) {
        const double delay = (best_len + 1) / p.mu;
        delay_stats.add(delay);
        delay_ci.add(delay);
        queue_seen.add(best_len);
        if (!tail_hist.empty()) {
          const int probe = queue[rng.uniform_int(p.N)];
          tail_hist[std::min<int>(probe, cfg.tail_kmax + 1)] += 1;
        }
      }
      if (queue[best] == 0) {
        busy_pos[best] = static_cast<int>(busy.size());
        busy.push_back(best);
      }
      ++queue[best];
      ++arrivals;
    } else {
      // Uniform busy server departs (all busy servers have equal rate mu).
      const auto idx = rng.uniform_int(busy.size());
      const int s = busy[idx];
      if (--queue[s] == 0) {
        // Swap-remove from the busy list.
        const int last = busy.back();
        busy[idx] = last;
        busy_pos[last] = static_cast<int>(idx);
        busy.pop_back();
        busy_pos[s] = -1;
      }
    }
  }

  FastSqdResult out;
  out.mean_delay = delay_stats.mean();
  out.mean_wait = out.mean_delay - 1.0 / p.mu;
  out.ci95_delay = delay_ci.ci95_halfwidth();
  out.mean_queue_seen = queue_seen.mean();
  out.jobs_measured = delay_stats.count();
  if (!tail_hist.empty()) {
    // Suffix sums of the histogram give the tail probabilities; the last
    // bucket collects all probes longer than kmax.
    out.marginal_tail.assign(cfg.tail_kmax + 1, 0.0);
    const double total = static_cast<double>(delay_stats.count());
    double cum = static_cast<double>(tail_hist[cfg.tail_kmax + 1]);
    for (int k = cfg.tail_kmax; k >= 0; --k) {
      cum += static_cast<double>(tail_hist[k]);
      out.marginal_tail[k] = cum / total;
    }
  }
  return out;
}

}  // namespace rlb::sim
