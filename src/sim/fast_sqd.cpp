#include "sim/fast_sqd.h"

#include <algorithm>
#include <vector>

#include "sim/replica.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "util/require.h"

namespace rlb::sim {

namespace {

/// Raw per-replica statistics; merged in replica-index order before any
/// derived quantity is computed.
struct Accum {
  StreamingMoments delay_stats;
  StreamingMoments queue_seen;
  BatchMeans delay_ci{1};
  std::vector<std::uint64_t> tail_hist;

  void merge(const Accum& other) {
    delay_stats.merge(other.delay_stats);
    queue_seen.merge(other.queue_seen);
    delay_ci.merge(other.delay_ci);
    RLB_ASSERT(tail_hist.size() == other.tail_hist.size(),
               "replica tail histograms disagree in size");
    for (std::size_t k = 0; k < tail_hist.size(); ++k)
      tail_hist[k] += other.tail_hist[k];
  }
};

Accum run_one_replica(const FastSqdConfig& cfg, std::uint64_t jobs,
                      std::uint64_t warmup, std::uint64_t batch,
                      std::uint64_t seed) {
  const sqd::Params& p = cfg.params;
  Rng rng(seed);
  DistinctSampler sampler(p.N);
  std::vector<int> polled;

  std::vector<int> queue(p.N, 0);
  // Busy-server bookkeeping for O(1) departure sampling.
  std::vector<int> busy;          // indices of busy servers
  std::vector<int> busy_pos(p.N, -1);
  busy.reserve(p.N);

  const double arrival_rate = p.total_arrival_rate();
  Accum acc;
  acc.delay_ci = BatchMeans(batch);
  // Histogram of a uniformly sampled server's queue length at arrival
  // epochs (PASTA makes these time-stationary samples).
  acc.tail_hist.assign(cfg.tail_kmax > 0 ? cfg.tail_kmax + 2 : 0, 0);

  std::uint64_t arrivals = 0;
  while (arrivals < jobs) {
    const double total_rate =
        arrival_rate + p.mu * static_cast<double>(busy.size());
    const bool is_arrival =
        rng.next_double() * total_rate < arrival_rate;
    if (is_arrival) {
      sampler.sample(p.d, rng, polled);
      int best = polled[0];
      int best_len = queue[best];
      int ties = 1;
      for (int i = 1; i < p.d; ++i) {
        const int s = polled[i];
        if (queue[s] < best_len) {
          best = s;
          best_len = queue[s];
          ties = 1;
        } else if (queue[s] == best_len) {
          ++ties;
          if (rng.uniform_int(ties) == 0) best = s;
        }
      }
      if (arrivals >= warmup) {
        const double delay = (best_len + 1) / p.mu;
        acc.delay_stats.add(delay);
        acc.delay_ci.add(delay);
        acc.queue_seen.add(best_len);
        if (!acc.tail_hist.empty()) {
          const int probe = queue[rng.uniform_int(p.N)];
          acc.tail_hist[std::min<int>(probe, cfg.tail_kmax + 1)] += 1;
        }
      }
      if (queue[best] == 0) {
        busy_pos[best] = static_cast<int>(busy.size());
        busy.push_back(best);
      }
      ++queue[best];
      ++arrivals;
    } else {
      // Uniform busy server departs (all busy servers have equal rate mu).
      const auto idx = rng.uniform_int(busy.size());
      const int s = busy[idx];
      if (--queue[s] == 0) {
        // Swap-remove from the busy list.
        const int last = busy.back();
        busy[idx] = last;
        busy_pos[last] = static_cast<int>(idx);
        busy.pop_back();
        busy_pos[s] = -1;
      }
    }
  }
  return acc;
}

FastSqdResult assemble(const FastSqdConfig& cfg, const Accum& acc) {
  FastSqdResult out;
  out.mean_delay = acc.delay_stats.mean();
  out.mean_wait = out.mean_delay - 1.0 / cfg.params.mu;
  out.ci95_delay = acc.delay_ci.half_width(0.95);
  out.mean_queue_seen = acc.queue_seen.mean();
  out.jobs_measured = acc.delay_stats.count();
  if (!acc.tail_hist.empty()) {
    // Suffix sums of the histogram give the tail probabilities; the last
    // bucket collects all probes longer than kmax.
    out.marginal_tail.assign(cfg.tail_kmax + 1, 0.0);
    const double total = static_cast<double>(acc.delay_stats.count());
    double cum = static_cast<double>(acc.tail_hist[cfg.tail_kmax + 1]);
    for (int k = cfg.tail_kmax; k >= 0; --k) {
      cum += static_cast<double>(acc.tail_hist[k]);
      out.marginal_tail[k] = cum / total;
    }
  }
  return out;
}

}  // namespace

FastSqdResult simulate_sqd_fast(const FastSqdConfig& cfg) {
  return simulate_sqd_fast(cfg, util::ThreadBudget::serial());
}

FastSqdResult simulate_sqd_fast(const FastSqdConfig& cfg,
                                util::ThreadBudget& budget) {
  cfg.params.validate();
  const ReplicaPlan plan =
      ReplicaPlan::split(cfg.replicas, cfg.jobs, cfg.warmup, cfg.seed);
  const std::uint64_t batch = plan.batch_size(cfg.batch_size);

  const Accum acc = run_replicas<Accum>(
      plan, budget,
      [&](int /*replica*/, std::uint64_t seed) {
        return run_one_replica(cfg, plan.jobs_per_replica, plan.warmup,
                               batch, seed);
      },
      [](Accum& into, const Accum& from) { into.merge(from); });

  return assemble(cfg, acc);
}

FastSqdResult simulate_sqd_fast_adaptive(const FastSqdConfig& cfg,
                                         const AdaptivePlan& plan,
                                         util::ThreadBudget& budget) {
  cfg.params.validate();
  plan.validate();
  const std::uint64_t batch = plan.batch_size(cfg.batch_size);

  AdaptiveReport report;
  const Accum acc = run_replicas_adaptive<Accum>(
      plan, budget,
      [&](int /*global_replica*/, std::uint64_t seed, std::uint64_t jobs,
          std::uint64_t warmup) {
        return run_one_replica(cfg, jobs, warmup, batch, seed);
      },
      [](Accum& into, const Accum& from) { into.merge(from); },
      [&](const Accum& merged) {
        return merged.delay_ci.half_width_or_infinity(plan.confidence);
      },
      report);

  FastSqdResult out = assemble(cfg, acc);
  out.adaptive = report;
  return out;
}

}  // namespace rlb::sim
