// Raw per-replica statistics of one cluster-DES replica, shared by the
// legacy per-server engine (cluster_sim.cpp) and the compact
// histogram-state engine (compact_cluster.*). Replica accumulators are
// merged in replica-index order before any derived quantity
// (utilization, quantiles, CIs) is computed, which is what keeps results
// bit-identical for every thread budget.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/stats.h"
#include "sim/windowed_stats.h"

namespace rlb::sim {

struct ClusterAccum {
  StreamingMoments sojourn_stats;
  StreamingMoments wait_stats;
  BatchMeans sojourn_ci{1};
  ReservoirQuantiles sojourn_quantiles{1};
  double area_jobs = 0.0;  // integral of total jobs over measured window
  double busy_area = 0.0;  // integral of busy servers
  double window = 0.0;     // measured-window length
  double sim_time = 0.0;

  // Optional time-windowed recorders (cfg.window_width > 0) and the SLA
  // violation counter (cfg.sla_threshold > 0); both default off so a
  // plain ClusterAccum reproduces the pre-windowing layout exactly.
  std::optional<WindowedMoments> windowed_sojourn;
  std::optional<WindowedQuantiles> windowed_p99;
  std::uint64_t sla_violations = 0;
  double sla_threshold = 0.0;  // copied from the config by the engine

  /// Arm the windowed recorders; engines call this before their event
  /// loop when cfg.window_width > 0.
  void enable_windows(double width, std::size_t capacity,
                      std::uint64_t seed) {
    windowed_sojourn.emplace(width);
    windowed_p99.emplace(width, capacity, seed);
  }

  /// Record one departure at absolute replica time `now`. BOTH engines
  /// route every departure through this single helper — any change to
  /// what a departure records must be made here, which is what keeps the
  /// legacy and compact event loops statement-identical in their
  /// statistics. `measured` is the engines' done.index >= warmup test;
  /// windowed recording deliberately covers warmup departures too (the
  /// windows describe the transient), while everything else — including
  /// SLA counting — sees measured jobs only.
  void record_departure(double now, double arrival_time, double service_time,
                        bool measured) {
    const double sojourn = now - arrival_time;
    if (measured) {
      sojourn_stats.add(sojourn);
      wait_stats.add(sojourn - service_time);
      sojourn_ci.add(sojourn);
      sojourn_quantiles.add(sojourn);
      if (sla_threshold > 0.0 && sojourn > sla_threshold) ++sla_violations;
    }
    if (windowed_sojourn) {
      windowed_sojourn->add(now, sojourn);
      windowed_p99->add(now, sojourn);
    }
  }

  void merge(const ClusterAccum& other) {
    sojourn_stats.merge(other.sojourn_stats);
    wait_stats.merge(other.wait_stats);
    sojourn_ci.merge(other.sojourn_ci);
    sojourn_quantiles.merge(other.sojourn_quantiles);
    area_jobs += other.area_jobs;
    busy_area += other.busy_area;
    window += other.window;
    sim_time += other.sim_time;
    if (windowed_sojourn && other.windowed_sojourn) {
      windowed_sojourn->merge(*other.windowed_sojourn);
      windowed_p99->merge(*other.windowed_p99);
    }
    sla_violations += other.sla_violations;
  }
};

}  // namespace rlb::sim
