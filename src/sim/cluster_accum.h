// Raw per-replica statistics of one cluster-DES replica, shared by the
// legacy per-server engine (cluster_sim.cpp) and the compact
// histogram-state engine (compact_cluster.*). Replica accumulators are
// merged in replica-index order before any derived quantity
// (utilization, quantiles, CIs) is computed, which is what keeps results
// bit-identical for every thread budget.
#pragma once

#include "sim/stats.h"

namespace rlb::sim {

struct ClusterAccum {
  StreamingMoments sojourn_stats;
  StreamingMoments wait_stats;
  BatchMeans sojourn_ci{1};
  ReservoirQuantiles sojourn_quantiles{1};
  double area_jobs = 0.0;  // integral of total jobs over measured window
  double busy_area = 0.0;  // integral of busy servers
  double window = 0.0;     // measured-window length
  double sim_time = 0.0;

  void merge(const ClusterAccum& other) {
    sojourn_stats.merge(other.sojourn_stats);
    wait_stats.merge(other.wait_stats);
    sojourn_ci.merge(other.sojourn_ci);
    sojourn_quantiles.merge(other.sojourn_quantiles);
    area_jobs += other.area_jobs;
    busy_area += other.busy_area;
    window += other.window;
    sim_time += other.sim_time;
  }
};

}  // namespace rlb::sim
