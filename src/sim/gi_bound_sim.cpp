#include "sim/gi_bound_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/rng.h"
#include "statespace/state.h"
#include "util/combinatorics.h"
#include "util/require.h"

namespace rlb::sim {

namespace {

using statespace::State;
using statespace::TieGroup;

/// Apply a lower-model arrival to the sorted state in place.
void apply_arrival(State& m, int threshold, const sqd::Params& p, Rng& rng) {
  const auto groups = statespace::tie_groups(m);
  // Choose the receiving tie group by the SQ(d) polling probabilities.
  double u = rng.next_double();
  int head = groups.back().head;  // fallback to the shortest group
  for (const TieGroup& g : groups) {
    const double prob = sqd::arrival_group_probability(g.head, g.size(), p);
    u -= prob;
    if (u <= 0.0) {
      head = g.head;
      break;
    }
  }
  m[head] += 1;
  if (statespace::gap(m) > threshold) {
    // Lower-model redirect: join the shortest queue instead.
    m[head] -= 1;
    m[groups.back().head] += 1;
  }
  RLB_ASSERT(statespace::is_valid_state(m) &&
                 statespace::gap(m) <= threshold,
             "GI arrival left S(T)");
}

/// Apply a lower-model departure (uniform busy server) in place.
void apply_departure(State& m, int threshold, Rng& rng) {
  const auto groups = statespace::tie_groups(m);
  // Pick a busy server uniformly: group weight = size (value > 0 only).
  int busy = 0;
  for (const TieGroup& g : groups)
    if (g.value > 0) busy += g.size();
  RLB_ASSERT(busy > 0, "departure with no busy server");
  auto pick = static_cast<int>(rng.uniform_int(busy));
  int tail = -1;
  for (const TieGroup& g : groups) {
    if (g.value == 0) continue;
    if (pick < g.size()) {
      tail = g.tail;
      break;
    }
    pick -= g.size();
  }
  RLB_ASSERT(tail >= 0, "no departing group found");
  m[tail] -= 1;
  if (statespace::gap(m) > threshold) {
    // Lower-model redirect: jockey — take the departure from the longest
    // queue instead.
    m[tail] += 1;
    m[statespace::tie_groups(m).front().tail] -= 1;
  }
  RLB_ASSERT(statespace::is_valid_state(m) &&
                 statespace::gap(m) <= threshold,
             "GI departure left S(T)");
}

}  // namespace

GiBoundSimResult simulate_gi_lower_bound(const sqd::BoundModel& model,
                                         const Distribution& interarrival,
                                         std::uint64_t arrivals,
                                         std::uint64_t warmup,
                                         std::uint64_t seed) {
  RLB_REQUIRE(model.kind() == sqd::BoundKind::Lower,
              "GI simulation implemented for the lower bound model");
  RLB_REQUIRE(warmup < arrivals, "warmup must be below arrival count");
  const sqd::Params& p = model.params();
  const int threshold = model.threshold();

  Rng rng(seed);
  State m(static_cast<std::size_t>(p.N), 0);

  std::vector<double> occupancy;  // time in state with total == index
  occupancy.reserve(256);
  double waiting_area = 0.0;
  double jobs_area = 0.0;
  double measured_time = 0.0;
  bool measuring = false;

  double now = 0.0;
  double next_arrival = interarrival.sample(rng);
  std::uint64_t arrival_count = 0;
  std::uint64_t events = 0;

  const auto account = [&](double dt) {
    if (!measuring || dt <= 0.0) return;
    const auto total = static_cast<std::size_t>(statespace::total_jobs(m));
    if (occupancy.size() <= total) occupancy.resize(total + 1, 0.0);
    occupancy[total] += dt;
    waiting_area += dt * statespace::waiting_jobs(m);
    jobs_area += dt * statespace::total_jobs(m);
    measured_time += dt;
  };

  while (arrival_count < arrivals) {
    ++events;
    const int busy = statespace::busy_servers(m);
    // Memoryless services: resample the pooled departure clock each event.
    const double t_departure =
        busy > 0 ? rng.exponential(busy * p.mu)
                 : std::numeric_limits<double>::infinity();
    const double dt_arrival = next_arrival - now;
    if (dt_arrival <= t_departure) {
      account(dt_arrival);
      now = next_arrival;
      apply_arrival(m, threshold, p, rng);
      ++arrival_count;
      if (arrival_count == warmup) measuring = true;
      next_arrival = now + interarrival.sample(rng);
    } else {
      account(t_departure);
      now += t_departure;
      apply_departure(m, threshold, rng);
    }
  }

  GiBoundSimResult out;
  out.events = events;
  RLB_REQUIRE(measured_time > 0.0, "no measured time accumulated");
  out.mean_waiting_jobs = waiting_area / measured_time;
  out.mean_jobs = jobs_area / measured_time;
  out.total_jobs_dist.resize(occupancy.size());
  for (std::size_t k = 0; k < occupancy.size(); ++k)
    out.total_jobs_dist[k] = occupancy[k] / measured_time;

  // Level masses: N-job bands above the boundary block.
  const int band = p.N;
  const int base = (p.N - 1) * threshold;  // boundary total max
  std::vector<double> level_mass;
  for (std::size_t k = base + 1; k < occupancy.size();
       k += static_cast<std::size_t>(band)) {
    double mass = 0.0;
    for (int j = 0; j < band && k + j < occupancy.size(); ++j)
      mass += out.total_jobs_dist[k + j];
    level_mass.push_back(mass);
  }
  // Estimate the geometric ratio from interior levels with enough mass,
  // averaging successive ratios weighted by mass.
  double num = 0.0, den = 0.0;
  for (std::size_t q = 1; q + 1 < level_mass.size(); ++q) {
    if (level_mass[q] < 1e-6 || level_mass[q + 1] < 1e-7) break;
    num += level_mass[q + 1];
    den += level_mass[q];
  }
  out.level_tail_ratio = den > 0.0 ? num / den : 0.0;
  return out;
}

}  // namespace rlb::sim
