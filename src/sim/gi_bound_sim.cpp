#include "sim/gi_bound_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/replica.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "statespace/state.h"
#include "util/combinatorics.h"
#include "util/require.h"

namespace rlb::sim {

namespace {

using statespace::State;
using statespace::TieGroup;

/// Apply a lower-model arrival to the sorted state in place.
void apply_arrival(State& m, int threshold, const sqd::Params& p, Rng& rng) {
  const auto groups = statespace::tie_groups(m);
  // Choose the receiving tie group by the SQ(d) polling probabilities.
  double u = rng.next_double();
  int head = groups.back().head;  // fallback to the shortest group
  for (const TieGroup& g : groups) {
    const double prob = sqd::arrival_group_probability(g.head, g.size(), p);
    u -= prob;
    if (u <= 0.0) {
      head = g.head;
      break;
    }
  }
  m[head] += 1;
  if (statespace::gap(m) > threshold) {
    // Lower-model redirect: join the shortest queue instead.
    m[head] -= 1;
    m[groups.back().head] += 1;
  }
  RLB_ASSERT(statespace::is_valid_state(m) &&
                 statespace::gap(m) <= threshold,
             "GI arrival left S(T)");
}

/// Apply a lower-model departure in place. With empty `speed_prefix`
/// (homogeneous rates) the departing server is a uniform busy server;
/// with rank speeds (speed_prefix[k] = sum of the first k rank speeds)
/// the busy rank departs proportionally to its service rate.
void apply_departure(State& m, int threshold,
                     const std::vector<double>& speed_prefix, Rng& rng) {
  const auto groups = statespace::tie_groups(m);
  int tail = -1;
  if (speed_prefix.empty()) {
    // Pick a busy server uniformly: group weight = size (value > 0 only).
    int busy = 0;
    for (const TieGroup& g : groups)
      if (g.value > 0) busy += g.size();
    RLB_ASSERT(busy > 0, "departure with no busy server");
    auto pick = static_cast<int>(rng.uniform_int(busy));
    for (const TieGroup& g : groups) {
      if (g.value == 0) continue;
      if (pick < g.size()) {
        tail = g.tail;
        break;
      }
      pick -= g.size();
    }
  } else {
    // Busy ranks are a prefix of the sorted state; group weight is the
    // sum of its ranks' speeds.
    const int busy = statespace::busy_servers(m);
    RLB_ASSERT(busy > 0, "departure with no busy server");
    double u = rng.next_double() * speed_prefix[busy];
    for (const TieGroup& g : groups) {
      if (g.value == 0) continue;
      u -= speed_prefix[g.tail + 1] - speed_prefix[g.head];
      if (u <= 0.0) {
        tail = g.tail;
        break;
      }
    }
    if (tail < 0) {  // numeric slack: fall back to the last busy group
      for (const TieGroup& g : groups)
        if (g.value > 0) tail = g.tail;
    }
  }
  RLB_ASSERT(tail >= 0, "no departing group found");
  m[tail] -= 1;
  if (statespace::gap(m) > threshold) {
    // Lower-model redirect: jockey — take the departure from the longest
    // queue instead.
    m[tail] += 1;
    m[statespace::tie_groups(m).front().tail] -= 1;
  }
  RLB_ASSERT(statespace::is_valid_state(m) &&
                 statespace::gap(m) <= threshold,
             "GI departure left S(T)");
}

/// Raw per-replica accumulators; the occupancy histogram merges
/// elementwise (time-weighted) and every derived quantity — the
/// distribution and the level-tail ratio — is computed after the merge.
struct Accum {
  std::vector<double> occupancy;  // time in state with total == index
  double waiting_area = 0.0;
  double jobs_area = 0.0;
  double measured_time = 0.0;
  std::uint64_t events = 0;
  WeightedBatchMeans waiting_ci{1};  // dt-weighted over measured events

  void merge(const Accum& other) {
    if (occupancy.size() < other.occupancy.size())
      occupancy.resize(other.occupancy.size(), 0.0);
    for (std::size_t k = 0; k < other.occupancy.size(); ++k)
      occupancy[k] += other.occupancy[k];
    waiting_area += other.waiting_area;
    jobs_area += other.jobs_area;
    measured_time += other.measured_time;
    events += other.events;
    waiting_ci.merge(other.waiting_ci);
  }
};

Accum run_one_replica(const sqd::BoundModel& model,
                      const Distribution& interarrival,
                      std::uint64_t arrivals, std::uint64_t warmup,
                      std::uint64_t batch, std::uint64_t seed,
                      const std::vector<double>& rank_speeds) {
  const sqd::Params& p = model.params();
  const int threshold = model.threshold();

  // speed_prefix[k] = sum of the first k rank speeds, so the pooled
  // service rate with `busy` busy ranks is speed_prefix[busy] * mu.
  std::vector<double> speed_prefix;
  if (!rank_speeds.empty()) {
    speed_prefix.assign(rank_speeds.size() + 1, 0.0);
    for (std::size_t k = 0; k < rank_speeds.size(); ++k)
      speed_prefix[k + 1] = speed_prefix[k] + rank_speeds[k];
  }

  Rng rng(seed);
  State m(static_cast<std::size_t>(p.N), 0);

  Accum acc;
  acc.occupancy.reserve(256);
  acc.waiting_ci = WeightedBatchMeans(batch);
  bool measuring = false;

  double now = 0.0;
  double next_arrival = interarrival.sample(rng);
  std::uint64_t arrival_count = 0;

  const auto account = [&](double dt) {
    if (!measuring || dt <= 0.0) return;
    const auto total = static_cast<std::size_t>(statespace::total_jobs(m));
    if (acc.occupancy.size() <= total) acc.occupancy.resize(total + 1, 0.0);
    const double waiting = statespace::waiting_jobs(m);
    acc.occupancy[total] += dt;
    acc.waiting_area += dt * waiting;
    acc.jobs_area += dt * statespace::total_jobs(m);
    acc.measured_time += dt;
    acc.waiting_ci.add(waiting, dt);
  };

  while (arrival_count < arrivals) {
    ++acc.events;
    const int busy = statespace::busy_servers(m);
    // Memoryless services: resample the pooled departure clock each event.
    const double pooled_rate =
        speed_prefix.empty() ? busy * p.mu : speed_prefix[busy] * p.mu;
    const double t_departure =
        busy > 0 ? rng.exponential(pooled_rate)
                 : std::numeric_limits<double>::infinity();
    const double dt_arrival = next_arrival - now;
    if (dt_arrival <= t_departure) {
      account(dt_arrival);
      now = next_arrival;
      apply_arrival(m, threshold, p, rng);
      ++arrival_count;
      if (arrival_count == warmup) measuring = true;
      next_arrival = now + interarrival.sample(rng);
    } else {
      account(t_departure);
      now += t_departure;
      apply_departure(m, threshold, speed_prefix, rng);
    }
  }
  return acc;
}

void validate_model(const sqd::BoundModel& model,
                    const std::vector<double>& rank_speeds) {
  RLB_REQUIRE(model.kind() == sqd::BoundKind::Lower,
              "GI simulation implemented for the lower bound model");
  RLB_REQUIRE(rank_speeds.empty() ||
                  rank_speeds.size() ==
                      static_cast<std::size_t>(model.params().N),
              "rank_speeds must be empty or one entry per server");
  for (double sp : rank_speeds)
    RLB_REQUIRE(sp > 0.0, "rank speeds must be positive");
}

GiBoundSimResult assemble(const sqd::BoundModel& model, const Accum& acc) {
  const sqd::Params& p = model.params();
  GiBoundSimResult out;
  out.events = acc.events;
  RLB_REQUIRE(acc.measured_time > 0.0, "no measured time accumulated");
  out.mean_waiting_jobs = acc.waiting_area / acc.measured_time;
  out.mean_jobs = acc.jobs_area / acc.measured_time;
  out.ci95_waiting_jobs = acc.waiting_ci.half_width(0.95);
  out.total_jobs_dist.resize(acc.occupancy.size());
  for (std::size_t k = 0; k < acc.occupancy.size(); ++k)
    out.total_jobs_dist[k] = acc.occupancy[k] / acc.measured_time;

  // Level masses: N-job bands above the boundary block.
  const int band = p.N;
  const int base = (p.N - 1) * model.threshold();  // boundary total max
  std::vector<double> level_mass;
  for (std::size_t k = base + 1; k < acc.occupancy.size();
       k += static_cast<std::size_t>(band)) {
    double mass = 0.0;
    for (int j = 0; j < band && k + j < acc.occupancy.size(); ++j)
      mass += out.total_jobs_dist[k + j];
    level_mass.push_back(mass);
  }
  // Estimate the geometric ratio from interior levels with enough mass,
  // averaging successive ratios weighted by mass.
  double num = 0.0, den = 0.0;
  for (std::size_t q = 1; q + 1 < level_mass.size(); ++q) {
    if (level_mass[q] < 1e-6 || level_mass[q + 1] < 1e-7) break;
    num += level_mass[q + 1];
    den += level_mass[q];
  }
  out.level_tail_ratio = den > 0.0 ? num / den : 0.0;
  return out;
}

}  // namespace

GiBoundSimResult simulate_gi_lower_bound(const sqd::BoundModel& model,
                                         const Distribution& interarrival,
                                         std::uint64_t arrivals,
                                         std::uint64_t warmup,
                                         std::uint64_t seed) {
  return simulate_gi_lower_bound(model, interarrival, arrivals, warmup,
                                 seed, 1, util::ThreadBudget::serial());
}

GiBoundSimResult simulate_gi_lower_bound(const sqd::BoundModel& model,
                                         const Distribution& interarrival,
                                         std::uint64_t arrivals,
                                         std::uint64_t warmup,
                                         std::uint64_t seed, int replicas,
                                         util::ThreadBudget& budget,
                                         const std::vector<double>&
                                             rank_speeds) {
  validate_model(model, rank_speeds);
  const ReplicaPlan plan =
      ReplicaPlan::split(replicas, arrivals, warmup, seed);
  const std::uint64_t batch = plan.batch_size(0);

  const Accum acc = run_replicas<Accum>(
      plan, budget,
      [&](int /*replica*/, std::uint64_t replica_seed) {
        return run_one_replica(model, interarrival, plan.jobs_per_replica,
                               plan.warmup, batch, replica_seed,
                               rank_speeds);
      },
      [](Accum& into, const Accum& from) { into.merge(from); });

  return assemble(model, acc);
}

GiBoundSimResult simulate_gi_lower_bound_adaptive(
    const sqd::BoundModel& model, const Distribution& interarrival,
    const AdaptivePlan& plan, util::ThreadBudget& budget,
    const std::vector<double>& rank_speeds) {
  validate_model(model, rank_speeds);
  plan.validate();
  const std::uint64_t batch = plan.batch_size(0);

  AdaptiveReport report;
  const Accum acc = run_replicas_adaptive<Accum>(
      plan, budget,
      [&](int /*global_replica*/, std::uint64_t seed,
          std::uint64_t arrivals, std::uint64_t warmup) {
        return run_one_replica(model, interarrival, arrivals, warmup,
                               batch, seed, rank_speeds);
      },
      [](Accum& into, const Accum& from) { into.merge(from); },
      [&](const Accum& merged) {
        return merged.waiting_ci.half_width_or_infinity(plan.confidence);
      },
      report);

  GiBoundSimResult out = assemble(model, acc);
  out.adaptive = report;
  return out;
}

}  // namespace rlb::sim
