// Streaming statistics: Welford moments and batch-means confidence
// intervals (the standard way to get CIs from autocorrelated steady-state
// simulation output).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlb::sim {

/// The full internal state of a StreamingMoments, exposed so merged
/// statistics can be checkpointed (the result cache's --refine round
/// state) and restored bit-for-bit: from_state(state()) is the identical
/// estimator, so a resumed run continues exactly where the checkpointed
/// run stopped.
struct MomentsState {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Numerically stable running mean/variance plus extrema.
class StreamingMoments {
 public:
  void add(double x);

  /// Fold another stream's moments into this one (Chan et al. parallel
  /// combine), as if both streams had been added to a single instance.
  /// Exact for count/mean/min/max; variance matches a single stream up to
  /// floating-point reassociation.
  void merge(const StreamingMoments& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Checkpoint / restore (exact round trip; see MomentsState).
  [[nodiscard]] MomentsState state() const;
  static StreamingMoments from_state(const MomentsState& s);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Checkpoint of a BatchMeans, including the open partial batch, so a
/// restored estimator continues the same batch exactly where the
/// checkpointed one left off.
struct BatchMeansState {
  std::uint64_t batch_size = 1;
  std::uint64_t in_batch = 0;
  double batch_sum = 0.0;
  MomentsState batch_means;
};

/// Batch means: observations are grouped into fixed-size batches; the batch
/// means are treated as approximately independent normal samples.
class BatchMeans {
 public:
  explicit BatchMeans(std::uint64_t batch_size);

  void add(double x);

  /// Fold another estimator's COMPLETED batches into this one; both must
  /// use the same batch size. `other`'s trailing partial batch is
  /// discarded — observations from different replicas are not contiguous,
  /// so gluing partial batches would fabricate a batch mean spanning
  /// independent streams. After merging R replicas the confidence
  /// interval is the honest pooled one: Student t with df = total
  /// completed batches - 1.
  void merge(const BatchMeans& other);

  [[nodiscard]] std::uint64_t completed_batches() const;
  [[nodiscard]] double mean() const;  ///< over completed batches

  /// Half-width of the two-sided confidence interval at `confidence`
  /// (Student t over the batch means, df = completed batches - 1); 0
  /// while fewer than two batches completed. `confidence` must be a
  /// level the t-quantile table supports (see t_quantile).
  [[nodiscard]] double half_width(double confidence) const;

  /// half_width(confidence), except +infinity while fewer than two
  /// batches completed — the spelling sequential-stopping rules must
  /// use: the bare half_width's 0 would read as "infinitely tight" and
  /// stop a run that has no interval yet.
  [[nodiscard]] double half_width_or_infinity(double confidence) const;

  /// Deprecated spelling of half_width(0.95): the implicit level made the
  /// statistics contract ambiguous once --confidence became a knob.
  [[deprecated("use half_width(confidence)")]] [[nodiscard]] double
  ci95_halfwidth() const {
    return half_width(0.95);
  }

  /// Checkpoint / restore (exact round trip; see BatchMeansState).
  [[nodiscard]] BatchMeansState state() const;
  static BatchMeans from_state(const BatchMeansState& s);

 private:
  std::uint64_t batch_size_;
  std::uint64_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  StreamingMoments batch_means_;
};

/// Weighted batch means for time-average statistics: add(x, w) feeds an
/// observation with weight w (e.g. a state value weighted by its holding
/// time); every `batch_size` observations close one batch whose statistic
/// is the weighted mean sum(w*x)/sum(w). Batch statistics are treated as
/// approximately independent samples, exactly like BatchMeans, so the
/// bound-model simulators get honest pooled CIs on their time averages.
class WeightedBatchMeans {
 public:
  explicit WeightedBatchMeans(std::uint64_t batch_size);

  void add(double x, double weight);

  /// Fold another estimator's COMPLETED batches into this one; both must
  /// use the same batch size. `other`'s trailing partial batch is
  /// discarded (see BatchMeans::merge); pooled df = total completed
  /// batches - 1.
  void merge(const WeightedBatchMeans& other);

  [[nodiscard]] std::uint64_t completed_batches() const;
  [[nodiscard]] double mean() const;  ///< over completed batch statistics

  /// Half-width of the two-sided CI at `confidence` over the batch
  /// statistics; 0 while fewer than two batches completed.
  [[nodiscard]] double half_width(double confidence) const;

  /// As BatchMeans::half_width_or_infinity: +infinity below two batches,
  /// for sequential-stopping rules.
  [[nodiscard]] double half_width_or_infinity(double confidence) const;

 private:
  std::uint64_t batch_size_;
  std::uint64_t in_batch_ = 0;
  double batch_wsum_ = 0.0;
  double batch_wxsum_ = 0.0;
  StreamingMoments batch_stats_;
};

/// Two-sided Student-t quantile at `confidence` for `df` degrees of
/// freedom (clamped table lookup, converging to the normal quantile for
/// large df). Supported confidence levels: 0.90, 0.95, 0.99; anything
/// else throws — the tables are the documented statistics contract
/// (docs/PRECISION.md), not an approximation surface.
double t_quantile(double confidence, std::uint64_t df);

/// Deprecated spelling of t_quantile(0.95, df).
[[deprecated("use t_quantile(confidence, df)")]] inline double t_quantile_95(
    std::uint64_t df) {
  return t_quantile(0.95, df);
}

/// Checkpoint of a ReservoirQuantiles: the retained sample, the stream
/// count it represents, and the sampler's RNG state, so a restored
/// reservoir continues the identical random stream.
struct ReservoirState {
  std::uint64_t capacity = 1;
  std::uint64_t seen = 0;
  std::uint64_t rng_state = 0;
  std::vector<double> sample;
};

/// Streaming quantile estimation by uniform reservoir sampling: holds a
/// fixed-size uniform sample of the stream and answers arbitrary quantile
/// queries from it. Error ~ 1/sqrt(capacity) in probability, which is
/// plenty for reporting p50/p95/p99 of simulated sojourn times.
class ReservoirQuantiles {
 public:
  explicit ReservoirQuantiles(std::size_t capacity, std::uint64_t seed = 1);

  void add(double x);

  /// Fold another reservoir (same capacity) into this one. Exact — a
  /// plain concatenation — while both streams were fully retained and fit
  /// together; otherwise a weighted without-replacement subsample of the
  /// two reservoirs, each element representing its stream share, which
  /// keeps the ~1/sqrt(capacity) quantile error of a single-stream
  /// reservoir. Deterministic given the merge order (replica-index order
  /// under sim/replica.h).
  void merge(const ReservoirQuantiles& other);

  [[nodiscard]] std::uint64_t count() const { return seen_; }

  /// Quantile q in [0, 1] of the sampled distribution (nearest-rank).
  /// Requires at least one observation.
  [[nodiscard]] double quantile(double q) const;

  /// Checkpoint / restore (exact round trip; see ReservoirState).
  [[nodiscard]] ReservoirState state() const;
  static ReservoirQuantiles from_state(const ReservoirState& s);

 private:
  std::uint64_t next_random();

  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::uint64_t rng_state_;
  std::vector<double> sample_;
  mutable bool sorted_ = false;
  mutable std::vector<double> scratch_;
};

}  // namespace rlb::sim
