// xoshiro256++ pseudo-random generator with splitmix64 seeding, plus the
// sampling primitives the simulators need. Deterministic across platforms
// (unlike std::*_distribution), which keeps simulation tests reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace rlb::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double();

  /// Uniform integer in [0, bound); bound > 0 (Lemire-style, unbiased via
  /// rejection).
  std::uint64_t uniform_int(std::uint64_t bound);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  /// Standard normal (Marsaglia polar method).
  double normal();

  /// A decorrelated child generator (for independent streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// O(d) sampling of d distinct indices from {0, ..., n-1}, uniformly
/// without replacement — a partial Fisher–Yates simulated sparsely.
///
/// A materialized shuffle array would be O(n) memory (4 MB per sampler
/// at n = 10^6, and every policy clone owns one); instead the sampler
/// exploits that the permutation is the identity at the start of every
/// call, so only the <= 2d slots the partial shuffle touches need
/// tracking. Same draws, same outputs as the materialized version —
/// bit-identity across the engines is unaffected.
class DistinctSampler {
 public:
  explicit DistinctSampler(int n);

  /// Fills `out` (resized to min(d, n)) with distinct uniform indices,
  /// consuming exactly min(d, n) uniform_int draws. d beyond the
  /// population clamps to a full enumeration rather than aborting:
  /// rack-local polls shrink the candidate pool below the configured d,
  /// and "poll everyone" is the right degenerate behavior there.
  void sample(int d, Rng& rng, std::vector<int>& out);

 private:
  int n_;
  /// Sparse view of the in-progress shuffle: slot touched_pos_[k]
  /// currently holds value touched_val_[k]; untouched slots hold their
  /// own index. Scratch, cleared per call; linear scans are O(d) with
  /// the small poll sizes the paper's policies use.
  std::vector<std::int32_t> touched_pos_;
  std::vector<std::int32_t> touched_val_;
};

}  // namespace rlb::sim
