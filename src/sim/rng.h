// xoshiro256++ pseudo-random generator with splitmix64 seeding, plus the
// sampling primitives the simulators need. Deterministic across platforms
// (unlike std::*_distribution), which keeps simulation tests reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace rlb::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double();

  /// Uniform integer in [0, bound); bound > 0 (Lemire-style, unbiased via
  /// rejection).
  std::uint64_t uniform_int(std::uint64_t bound);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  /// Standard normal (Marsaglia polar method).
  double normal();

  /// A decorrelated child generator (for independent streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// O(d) sampling of d distinct indices from {0, ..., n-1}, uniformly
/// without replacement (partial Fisher–Yates with undo).
class DistinctSampler {
 public:
  explicit DistinctSampler(int n);

  /// Fills `out` (resized to d) with d distinct uniform indices.
  void sample(int d, Rng& rng, std::vector<int>& out);

 private:
  std::vector<int> perm_;
  std::vector<std::uint32_t> swaps_;
};

}  // namespace rlb::sim
