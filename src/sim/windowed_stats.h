// Time-windowed statistics: observations tagged with a simulation time
// are bucketed into fixed-width windows [k*w, (k+1)*w), so nonstationary
// runs report TRANSIENT per-window means/quantiles instead of one
// steady-state number (the diurnal_surge scenario's per-window p99 and
// SLA columns).
//
// Both classes honor the mergeable-statistics contract of sim/replica.h:
// merge() folds another instance window-by-window, as if both streams had
// been recorded into one instance, and replica results merge in
// replica-index order. Replicas each start their clock at 0, so window k
// after a merge aggregates every replica's k-th window — the same
// transient age across R independent runs, which is exactly what a
// transient estimate wants (docs/WORKLOADS.md spells out the math).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/stats.h"

namespace rlb::sim {

/// Per-window Welford moments (mean/variance/extrema/count). Windows are
/// created on demand; untouched windows in the covered range report
/// count() == 0. merge() adds counts and combines moments per window
/// (StreamingMoments::merge), so it is order-insensitive up to
/// floating-point reassociation — and exactly order-insensitive whenever
/// the sums involved are exactly representable.
class WindowedMoments {
 public:
  explicit WindowedMoments(double width);

  /// Record observation `x` made at simulation time `t` (finite, >= 0).
  void add(double t, double x);

  /// Fold another instance (same width) into this one, window by window.
  void merge(const WindowedMoments& other);

  [[nodiscard]] double width() const { return width_; }

  /// Number of windows covered so far: highest touched index + 1.
  [[nodiscard]] std::size_t windows() const { return windows_.size(); }

  [[nodiscard]] double window_start(std::size_t w) const {
    return static_cast<double>(w) * width_;
  }

  /// Moments of window `w` (< windows()); untouched windows are empty.
  [[nodiscard]] const StreamingMoments& window(std::size_t w) const;

  [[nodiscard]] std::uint64_t count(std::size_t w) const {
    return window(w).count();
  }
  [[nodiscard]] double mean(std::size_t w) const { return window(w).mean(); }

 private:
  double width_;
  std::vector<StreamingMoments> windows_;
};

/// Per-window reservoir quantiles: window k holds its own
/// ReservoirQuantiles of `capacity` samples, seeded deterministically from
/// (seed, k) so the reservoir draws never depend on which windows were
/// touched first. merge() folds reservoirs window by window
/// (deterministic given the merge order — replica-index order under
/// sim/replica.h — and exact while both windows' streams fit together).
class WindowedQuantiles {
 public:
  WindowedQuantiles(double width, std::size_t capacity, std::uint64_t seed);

  void add(double t, double x);

  /// Fold another instance (same width and capacity), window by window.
  void merge(const WindowedQuantiles& other);

  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t windows() const { return windows_.size(); }

  [[nodiscard]] std::uint64_t count(std::size_t w) const;

  /// Quantile q of window w's sampled distribution; requires at least one
  /// observation in that window.
  [[nodiscard]] double quantile(std::size_t w, double q) const;

 private:
  void grow_to(std::size_t count);

  double width_;
  std::size_t capacity_;
  std::uint64_t seed_;
  std::vector<ReservoirQuantiles> windows_;
};

}  // namespace rlb::sim
