// Calendar (bucketed) event queue: O(1) amortized schedule/pop versus the
// O(log n) binary heap the legacy cluster engine uses. Events are
// (time, id) pairs hashed into time buckets of adaptive width; pop scans
// the current "year" of buckets in time order, so with the width resized
// to keep a handful of events per bucket both operations touch O(1)
// buckets on average (Brown's calendar queue, CACM 1988).
//
// Memory layout: each bucket is a fixed 56-byte record — a count plus
// three inline event slots — so a bucket probe is ONE cache line, never a
// pointer chase into a per-bucket heap allocation. The width is adapted
// to ~1 event per bucket, so overflow past the three slots is rare; the
// overflowing events go to a single shared min-heap, and the queue's
// minimum is the smaller of the calendar's due event and the heap top.
// That keeps the common path allocation-free and cache-resident while
// staying correct under arbitrary clustering (ties, bursts, all-equal
// times simply ride the heap at O(log n)).
//
// Determinism contract: pop order is the strict total order by
// (time, id) — exactly the ordering std::priority_queue<std::pair<double,
// int>, ..., std::greater<>> gives the legacy engine — and resizing is
// driven purely by element counts, never by timing. The compact cluster
// engine relies on this to stay bit-identical with the legacy DES.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/prefetch.h"

namespace rlb::sim {

class CalendarQueue {
 public:
  /// `bucket_width` and `buckets` seed the calendar before the first
  /// resize; both adapt automatically as events accumulate.
  explicit CalendarQueue(double bucket_width = 1.0, std::size_t buckets = 16);

  void push(double time, std::int32_t id);

  /// Smallest event by (time, id). Requires !empty().
  [[nodiscard]] std::pair<double, std::int32_t> top();

  /// Removes and returns the smallest event by (time, id).
  std::pair<double, std::int32_t> pop();

  /// top().first — the next event time. Requires !empty().
  [[nodiscard]] double min_time() { return top().first; }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Number of buckets currently allocated (exposed for tests and the
  /// microbenchmarks; resizing doubles/halves it with the event count).
  [[nodiscard]] std::size_t buckets() const { return buckets_.size(); }

  /// Events currently parked on the shared overflow heap (exposed for
  /// tests; should stay near zero under well-spread workloads).
  [[nodiscard]] std::size_t overflow_size() const { return overflow_.size(); }

  /// Hint that a push(time, ...) is imminent: start loading the bucket
  /// that push would touch. Pure prefetch — never changes state, and a
  /// rebuild between the hint and the push merely wastes the hint.
  void prefetch_slot(double time) const {
    util::prefetch(&buckets_[slot_of(abs_bucket(time))]);
  }

 private:
  struct Event {
    double time;
    std::int32_t id;
  };

  /// Inline slots per bucket. Three 16-byte events plus the count keep
  /// sizeof(Bucket) inside one 64-byte cache line.
  static constexpr std::int32_t kInlineCapacity = 3;

  struct Bucket {
    std::int32_t count = 0;
    Event e[kInlineCapacity];
  };
  static_assert(sizeof(Bucket) <= 64, "bucket must fit one cache line");

  [[nodiscard]] std::size_t inline_size() const {
    return size_ - overflow_.size();
  }

  /// Absolute (un-wrapped) bucket number of a time; a double holding an
  /// integer so far-future events cannot overflow an integer type.
  [[nodiscard]] double abs_bucket(double time) const;
  [[nodiscard]] std::size_t slot_of(double abs_bucket) const;
  /// Place one event (inline slot or overflow heap) without touching
  /// size_ or the resize triggers; shared by push and rebuild.
  void insert(const Event& e);
  void rebuild(std::size_t buckets);
  /// Point the scan cursor at the bucket holding the calendar's (inline)
  /// minimum (direct search over all buckets; used after rebuilds and
  /// when a whole year of buckets turns up empty). Requires
  /// inline_size() > 0.
  void reposition();
  /// Locate the smallest INLINE event by (time, id); leaves the cursor
  /// on its bucket and returns the slot index within it. Requires
  /// inline_size() > 0.
  std::int32_t find_inline_min();

  std::vector<Bucket> buckets_;
  std::vector<Event> overflow_;  ///< min-heap by (time, id)
  std::vector<Event> scratch_;   ///< rebuild staging, reused across calls
  double width_;
  std::size_t cursor_ = 0;      ///< ring slot the scan is standing on
  double cursor_bucket_ = 0.0;  ///< absolute bucket number of cursor_
  std::size_t size_ = 0;
};

}  // namespace rlb::sim
