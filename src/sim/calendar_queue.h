// Calendar (bucketed) event queue: O(1) amortized schedule/pop versus the
// O(log n) binary heap the legacy cluster engine uses. Events are
// (time, id) pairs hashed into time buckets of adaptive width; pop scans
// the current "year" of buckets in time order, so with the width resized
// to keep a handful of events per bucket both operations touch O(1)
// buckets on average (Brown's calendar queue, CACM 1988).
//
// Determinism contract: pop order is the strict total order by
// (time, id) — exactly the ordering std::priority_queue<std::pair<double,
// int>, ..., std::greater<>> gives the legacy engine — and resizing is
// driven purely by element counts, never by timing. The compact cluster
// engine relies on this to stay bit-identical with the legacy DES.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rlb::sim {

class CalendarQueue {
 public:
  /// `bucket_width` and `buckets` seed the calendar before the first
  /// resize; both adapt automatically as events accumulate.
  explicit CalendarQueue(double bucket_width = 1.0, std::size_t buckets = 16);

  void push(double time, std::int32_t id);

  /// Smallest event by (time, id). Requires !empty().
  [[nodiscard]] std::pair<double, std::int32_t> top();

  /// Removes and returns the smallest event by (time, id).
  std::pair<double, std::int32_t> pop();

  /// top().first — the next event time. Requires !empty().
  [[nodiscard]] double min_time() { return top().first; }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Number of buckets currently allocated (exposed for tests and the
  /// microbenchmarks; resizing doubles/halves it with the event count).
  [[nodiscard]] std::size_t buckets() const { return buckets_.size(); }

 private:
  struct Event {
    double time;
    std::int32_t id;
  };

  /// Absolute (un-wrapped) bucket number of a time; a double holding an
  /// integer so far-future events cannot overflow an integer type.
  [[nodiscard]] double abs_bucket(double time) const;
  [[nodiscard]] std::size_t slot_of(double abs_bucket) const;
  void rebuild(std::size_t buckets);
  /// Point the scan cursor at the bucket holding the global minimum
  /// (direct search over all buckets; used after rebuilds and when a
  /// whole year of buckets turns up empty).
  void reposition();
  /// Locate the smallest event by (time, id); leaves the cursor on its
  /// bucket so pop can remove it. Requires size_ > 0.
  const Event& find_min();

  std::vector<std::vector<Event>> buckets_;  ///< each sorted descending
  double width_;
  std::size_t cursor_ = 0;      ///< ring slot the scan is standing on
  double cursor_bucket_ = 0.0;  ///< absolute bucket number of cursor_
  std::size_t size_ = 0;
};

}  // namespace rlb::sim
