// The queue-length histogram with O(1) updates and O(1) uniform sampling
// within a level — the state behind the compact cluster engine
// (sim/compact_cluster.h) and the concrete type the symmetric policies'
// fast dispatch path (Policy::select_direct) compiles against.
//
// Memory layout: the per-server hot fields — queue length, position in
// the by-level permutation, and the intrusive idle-FIFO links — live in
// ONE packed 16-byte record per server, so the level move an event
// performs touches a single cache line of per-server state instead of
// four parallel arrays. All widths are 32-bit (the fleet size is an
// `int`, so n < 2^31 by construction); at n = 10^6 the whole per-server
// state is 16 MB + 4 MB of permutation instead of the 24 MB of scattered
// `std::vector<int>`s the first version kept. The by-level arrays
// (block starts, block sizes) stay separate: they are indexed by queue
// length, tiny under any stable load, and effectively cache-resident.
//
// The class is `final` and implements QueueHistogramView, so calls
// through a concrete `const LevelDirectory&` devirtualize and inline;
// only the generic QueueHistogramView path pays virtual dispatch.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/policy.h"
#include "sim/rng.h"
#include "util/prefetch.h"
#include "util/require.h"

namespace rlb::sim {

/// Servers live in a permutation `by_level_` grouped into contiguous
/// blocks, one block per queue length; moving a server between adjacent
/// levels is a swap-to-boundary plus two counter updates. Level-0 servers
/// are additionally threaded onto an intrusive doubly-linked FIFO in
/// became-idle order (server-index order at time zero), reproducing the
/// legacy dispatcher's I-queue contract for JIQ — but with O(1) removal
/// where the legacy vector pays an O(N) ordered erase.
class LevelDirectory final : public QueueHistogramView {
 public:
  explicit LevelDirectory(int servers);

  [[nodiscard]] int servers() const override { return n_; }
  [[nodiscard]] int max_level() const override { return max_level_; }
  [[nodiscard]] int count_at(int level) const override {
    RLB_REQUIRE(level >= 0, "queue-length level must be non-negative");
    return level < static_cast<int>(count_.size()) ? count_[level] : 0;
  }
  [[nodiscard]] int idle_count() const override { return count_[0]; }
  [[nodiscard]] int idle_head() const override { return idle_head_; }
  [[nodiscard]] int level_of(int server) const override {
    return rec_[server].level;
  }

  /// Uniform among the count_at(level) servers at `level` (must be
  /// non-empty); exactly one uniform_int draw.
  [[nodiscard]] int sample_at_level(int level, Rng& rng) const override {
    const int c = count_at(level);
    RLB_REQUIRE(c > 0, "sample_at_level on an empty level");
    return by_level_[offset_[level] +
                     static_cast<std::int32_t>(
                         rng.uniform_int(static_cast<std::uint64_t>(c)))];
  }

  /// O(1) per-rack idle head once arm_racks has run: the slice
  /// [begin, end) must then be exactly one rack. Unarmed directories fall
  /// back to the base class's index-order scan. The per-rack FIFOs are
  /// maintained by the same idle_remove/idle_append calls as the global
  /// one, so their order is the global I-queue order restricted to the
  /// rack — first-idle-first-out, server-index order at time zero,
  /// matching the legacy engine's I-queue slice bit-for-bit.
  [[nodiscard]] int rack_idle_head(int begin, int end) const override {
    if (racks_ == 0) return QueueHistogramView::rack_idle_head(begin, end);
    RLB_REQUIRE(begin % per_rack_ == 0 && end - begin == per_rack_,
                "rack_idle_head slice must be one armed rack");
    return rack_head_[begin / per_rack_];
  }

  /// Thread the level-0 servers onto one idle FIFO per rack (side arrays;
  /// the packed ServerRec stays 16 bytes). Must be called in the initial
  /// all-idle state, before any increment — the per-rack FIFOs then track
  /// every idle transition. Engines arm this only for locality-aware
  /// policies; blind runs never pay the extra FIFO maintenance.
  void arm_racks(int racks);

  /// Rack count armed via arm_racks, 0 when unarmed.
  [[nodiscard]] int racks() const { return racks_; }

  /// The i-th server of the level's block, 0 <= i < count_at(level).
  /// Block order is an implementation detail (it changes as servers move
  /// between levels); exposed for tests.
  [[nodiscard]] int at(int level, int i) const;

  /// Hint that `server`'s packed record is about to be read (polling
  /// policies issue this for every sampled server before the tie-break
  /// scan, so the d record loads overlap instead of serializing).
  void prefetch_server(int server) const { util::prefetch(&rec_[server]); }

  /// One job joined `server`: its level rises by one. Removes the server
  /// from the idle FIFO when it leaves level 0.
  void increment(int server) {
    ServerRec& r = rec_[server];
    const std::int32_t k = r.level;
    if (k == 0) idle_remove(server);
    ensure_level(k + 1);
    // Swap the server to its block's last slot; that slot then becomes
    // the first slot of block k+1 by moving the boundary one to the left.
    swap_slots(r.pos, offset_[k] + count_[k] - 1);
    --count_[k];
    --offset_[k + 1];
    ++count_[k + 1];
    r.level = k + 1;
    if (k + 1 > max_level_) max_level_ = k + 1;
  }

  /// One job departed `server`: its level drops by one (must be >= 1).
  /// Appends the server to the idle FIFO tail when it reaches level 0.
  void decrement(int server) {
    ServerRec& r = rec_[server];
    const std::int32_t k = r.level;
    RLB_REQUIRE(k >= 1, "decrement on an idle server");
    // Mirror image: swap to the block's first slot, move the boundary one
    // to the right, and the slot joins the end of block k-1.
    swap_slots(r.pos, offset_[k]);
    --count_[k];
    ++offset_[k];
    ++count_[k - 1];
    r.level = k - 1;
    if (k == 1) idle_append(server);
    while (max_level_ > 0 && count_[max_level_] == 0) --max_level_;
  }

 private:
  /// The per-server hot state, fused so one event's level move touches
  /// one cache line of per-server data.
  struct ServerRec {
    std::int32_t level = 0;      ///< queue length
    std::int32_t pos = 0;        ///< slot in by_level_
    std::int32_t idle_next = -1; ///< intrusive idle-FIFO links
    std::int32_t idle_prev = -1;
  };
  static_assert(sizeof(ServerRec) == 16, "four records per cache line");

  void ensure_level(int level) {
    while (static_cast<int>(count_.size()) <= level) {
      // A new trailing (empty) block begins where the last one ends.
      offset_.push_back(offset_.back() + count_.back());
      count_.push_back(0);
    }
  }

  void swap_slots(std::int32_t a, std::int32_t b) {
    if (a == b) return;
    const std::int32_t sa = by_level_[a];
    const std::int32_t sb = by_level_[b];
    by_level_[a] = sb;
    by_level_[b] = sa;
    rec_[sb].pos = a;
    rec_[sa].pos = b;
  }

  void rack_idle_remove(int server) {
    const int r = server / per_rack_;
    const std::int32_t nx = rack_next_[server];
    const std::int32_t pv = rack_prev_[server];
    if (pv >= 0)
      rack_next_[pv] = nx;
    else
      rack_head_[r] = nx;
    if (nx >= 0)
      rack_prev_[nx] = pv;
    else
      rack_tail_[r] = pv;
    rack_next_[server] = -1;
    rack_prev_[server] = -1;
  }

  void rack_idle_append(int server) {
    const int r = server / per_rack_;
    rack_prev_[server] = rack_tail_[r];
    rack_next_[server] = -1;
    if (rack_tail_[r] >= 0)
      rack_next_[rack_tail_[r]] = server;
    else
      rack_head_[r] = server;
    rack_tail_[r] = server;
  }

  void idle_remove(int server) {
    if (racks_ != 0) rack_idle_remove(server);
    ServerRec& r = rec_[server];
    const std::int32_t nx = r.idle_next;
    const std::int32_t pv = r.idle_prev;
    if (pv >= 0)
      rec_[pv].idle_next = nx;
    else
      idle_head_ = nx;
    if (nx >= 0)
      rec_[nx].idle_prev = pv;
    else
      idle_tail_ = pv;
    r.idle_next = -1;
    r.idle_prev = -1;
  }

  void idle_append(int server) {
    if (racks_ != 0) rack_idle_append(server);
    ServerRec& r = rec_[server];
    r.idle_prev = idle_tail_;
    r.idle_next = -1;
    if (idle_tail_ >= 0)
      rec_[idle_tail_].idle_next = server;
    else
      idle_head_ = server;
    idle_tail_ = server;
  }

  int n_;
  int max_level_ = 0;
  std::vector<ServerRec> rec_;          ///< packed per-server hot state
  std::vector<std::int32_t> by_level_;  ///< servers grouped by level
  std::vector<std::int32_t> count_;     ///< block sizes per level
  /// Block starts; invariant: offset_[k+1] == offset_[k] + count_[k].
  std::vector<std::int32_t> offset_;
  std::int32_t idle_head_ = -1, idle_tail_ = -1;
  /// Per-rack idle FIFOs (arm_racks). Side arrays rather than ServerRec
  /// fields: the packed record must stay 16 bytes (four per cache line —
  /// the bench_check gate watches the engine's event rate), and blind
  /// runs never allocate or touch any of this.
  int racks_ = 0;      ///< 0 = unarmed
  int per_rack_ = 0;
  std::vector<std::int32_t> rack_next_, rack_prev_;  ///< per server
  std::vector<std::int32_t> rack_head_, rack_tail_;  ///< per rack
};

}  // namespace rlb::sim
