#include "sim/policy.h"

#include <limits>

#include "util/require.h"

namespace rlb::sim {

namespace {

/// Shortest queue among the polled servers, ties broken uniformly
/// (reservoir style: one uniform_int draw per tie encountered). Shared by
/// SqdPolicy and JbtPolicy's shortest fallback so their tie-breaking —
/// and RNG consumption — can never diverge.
int shortest_polled(const ClusterState& cluster,
                    const std::vector<int>& polled, Rng& rng) {
  int best = polled[0];
  int best_len = cluster.queue_length(best);
  int ties = 1;
  for (std::size_t i = 1; i < polled.size(); ++i) {
    const int s = polled[i];
    const int len = cluster.queue_length(s);
    if (len < best_len) {
      best = s;
      best_len = len;
      ties = 1;
    } else if (len == best_len) {
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

}  // namespace

int ClusterState::idle_servers() const {
  int idle = 0;
  for (int s = 0; s < servers(); ++s)
    if (queue_length(s) == 0) ++idle;
  return idle;
}

int ClusterState::idle_server(int i) const {
  for (int s = 0; s < servers(); ++s) {
    if (queue_length(s) != 0) continue;
    if (i == 0) return s;
    --i;
  }
  RLB_REQUIRE(false, "idle_server index out of range");
  return -1;
}

SqdPolicy::SqdPolicy(int n, int d) : d_(d), sampler_(n) {
  RLB_REQUIRE(d >= 1 && d <= n, "need 1 <= d <= N");
}

int SqdPolicy::select(const ClusterState& cluster, Rng& rng) {
  sampler_.sample(d_, rng, polled_);
  return shortest_polled(cluster, polled_, rng);
}

std::string SqdPolicy::name() const { return "sq(" + std::to_string(d_) + ")"; }

int JsqPolicy::select(const ClusterState& cluster, Rng& rng) {
  int best = 0;
  int best_len = cluster.queue_length(0);
  int ties = 1;
  for (int s = 1; s < cluster.servers(); ++s) {
    const int len = cluster.queue_length(s);
    if (len < best_len) {
      best = s;
      best_len = len;
      ties = 1;
    } else if (len == best_len) {
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

int RoundRobinPolicy::select(const ClusterState& cluster, Rng&) {
  const int s = next_;
  next_ = (next_ + 1) % cluster.servers();
  return s;
}

JiqPolicy::JiqPolicy(int n, int fallback_d) : fallback_(n, fallback_d) {}

int JiqPolicy::select(const ClusterState& cluster, Rng& rng) {
  if (cluster.idle_servers() > 0) return cluster.idle_server(0);
  return fallback_.select(cluster, rng);
}

std::string JiqPolicy::name() const {
  return "jiq/" + fallback_.name();
}

JbtPolicy::JbtPolicy(int n, int d, int threshold, Fallback fallback)
    : d_(d), threshold_(threshold), fallback_(fallback), sampler_(n) {
  RLB_REQUIRE(d >= 1 && d <= n, "need 1 <= d <= N");
  RLB_REQUIRE(threshold >= 0, "threshold must be non-negative");
}

int JbtPolicy::select(const ClusterState& cluster, Rng& rng) {
  sampler_.sample(d_, rng, polled_);
  below_.clear();
  for (int s : polled_)
    if (cluster.queue_length(s) < threshold_) below_.push_back(s);
  if (!below_.empty())
    return below_[rng.uniform_int(below_.size())];
  if (fallback_ == Fallback::Random)
    return polled_[rng.uniform_int(polled_.size())];
  return shortest_polled(cluster, polled_, rng);
}

std::string JbtPolicy::name() const {
  return "jbt(" + std::to_string(d_) + ",t=" + std::to_string(threshold_) +
         (fallback_ == Fallback::Shortest ? ",shortest)" : ",random)");
}

int LeastWorkLeftPolicy::select(const ClusterState& cluster, Rng& rng) {
  int best = 0;
  double best_work = cluster.remaining_work(0);
  int ties = 1;
  for (int s = 1; s < cluster.servers(); ++s) {
    const double w = cluster.remaining_work(s);
    if (w < best_work) {
      best = s;
      best_work = w;
      ties = 1;
    } else if (w == best_work) {
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

}  // namespace rlb::sim
