#include "sim/policy.h"

#include <limits>

#include "util/require.h"

namespace rlb::sim {

SqdPolicy::SqdPolicy(int n, int d) : d_(d), sampler_(n) {
  RLB_REQUIRE(d >= 1 && d <= n, "need 1 <= d <= N");
}

int SqdPolicy::select(const ClusterState& cluster, Rng& rng) {
  sampler_.sample(d_, rng, polled_);
  int best = polled_[0];
  int best_len = cluster.queue_length(best);
  int ties = 1;
  for (int i = 1; i < d_; ++i) {
    const int s = polled_[i];
    const int len = cluster.queue_length(s);
    if (len < best_len) {
      best = s;
      best_len = len;
      ties = 1;
    } else if (len == best_len) {
      // Reservoir-style uniform tie breaking among polled minima.
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

std::string SqdPolicy::name() const { return "sq(" + std::to_string(d_) + ")"; }

int JsqPolicy::select(const ClusterState& cluster, Rng& rng) {
  int best = 0;
  int best_len = cluster.queue_length(0);
  int ties = 1;
  for (int s = 1; s < cluster.servers(); ++s) {
    const int len = cluster.queue_length(s);
    if (len < best_len) {
      best = s;
      best_len = len;
      ties = 1;
    } else if (len == best_len) {
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

int RoundRobinPolicy::select(const ClusterState& cluster, Rng&) {
  const int s = next_;
  next_ = (next_ + 1) % cluster.servers();
  return s;
}

int LeastWorkLeftPolicy::select(const ClusterState& cluster, Rng& rng) {
  int best = 0;
  double best_work = cluster.remaining_work(0);
  int ties = 1;
  for (int s = 1; s < cluster.servers(); ++s) {
    const double w = cluster.remaining_work(s);
    if (w < best_work) {
      best = s;
      best_work = w;
      ties = 1;
    } else if (w == best_work) {
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

}  // namespace rlb::sim
