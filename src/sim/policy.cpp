#include "sim/policy.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "sim/level_directory.h"
#include "util/require.h"

namespace rlb::sim {

namespace {

/// Shortest queue among the polled servers, ties broken uniformly
/// (reservoir style: one uniform_int draw per tie encountered). Shared by
/// SqdPolicy and JbtPolicy's shortest fallback so their tie-breaking —
/// and RNG consumption — can never diverge. Templated on the
/// queue-length accessor so the ClusterState, QueueHistogramView, and
/// concrete LevelDirectory paths run the exact same draws (the
/// bit-identity contract between the legacy and compact engines).
template <typename LenFn>
int shortest_polled_by(const std::vector<int>& polled, Rng& rng,
                       LenFn&& len_of) {
  int best = polled[0];
  int best_len = len_of(best);
  int ties = 1;
  for (std::size_t i = 1; i < polled.size(); ++i) {
    const int s = polled[i];
    const int len = len_of(s);
    if (len < best_len) {
      best = s;
      best_len = len;
      ties = 1;
    } else if (len == best_len) {
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

int shortest_polled(const ClusterState& cluster,
                    const std::vector<int>& polled, Rng& rng) {
  return shortest_polled_by(
      polled, rng, [&](int s) { return cluster.queue_length(s); });
}

/// JSQ's full scan with the same reservoir tie-breaking, templated the
/// same way.
template <typename LenFn>
int jsq_scan_by(int servers, Rng& rng, LenFn&& len_of) {
  int best = 0;
  int best_len = len_of(0);
  int ties = 1;
  for (int s = 1; s < servers; ++s) {
    const int len = len_of(s);
    if (len < best_len) {
      best = s;
      best_len = len;
      ties = 1;
    } else if (len == best_len) {
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

/// Prefetch the packed records of the polled servers before the
/// tie-break scan reads them, so the d loads overlap. Only the concrete
/// directory has addressable per-server records; the virtual view (and
/// test doubles behind it) take the no-op branch.
template <typename View>
void prefetch_polled(const View& view, const std::vector<int>& polled) {
  if constexpr (std::is_same_v<View, LevelDirectory>) {
    for (int s : polled) view.prefetch_server(s);
  } else {
    (void)view;
    (void)polled;
  }
}

/// SQ(d)'s dispatch over any histogram-shaped view: poll, prefetch,
/// shortest with reservoir ties. One template so select_symmetric and
/// select_direct cannot drift apart.
template <typename View>
int sqd_dispatch(const View& view, DistinctSampler& sampler, int d,
                 std::vector<int>& polled, Rng& rng) {
  sampler.sample(d, rng, polled);
  prefetch_polled(view, polled);
  return shortest_polled_by(polled, rng,
                            [&](int s) { return view.level_of(s); });
}

/// The minimum occupied queue length of a histogram view: 0 when any
/// server is idle, else the smallest level with a nonzero count. O(1)
/// expected — queue lengths are tiny under any stable load.
template <typename View>
int min_occupied_level(const View& view) {
  if (view.idle_count() > 0) return 0;
  for (int k = 1; k <= view.max_level(); ++k)
    if (view.count_at(k) > 0) return k;
  return view.max_level();
}

/// JBT(d)'s dispatch over any histogram-shaped view; see sqd_dispatch.
template <typename View>
int jbt_dispatch(const View& view, DistinctSampler& sampler, int d,
                 int threshold, JbtPolicy::Fallback fallback,
                 std::vector<int>& polled, std::vector<int>& below,
                 Rng& rng) {
  sampler.sample(d, rng, polled);
  prefetch_polled(view, polled);
  below.clear();
  for (int s : polled)
    if (view.level_of(s) < threshold) below.push_back(s);
  if (!below.empty()) return below[rng.uniform_int(below.size())];
  if (fallback == JbtPolicy::Fallback::Random)
    return polled[rng.uniform_int(polled.size())];
  return shortest_polled_by(polled, rng,
                            [&](int s) { return view.level_of(s); });
}

}  // namespace

int Policy::select_symmetric(const QueueHistogramView&, Rng&) {
  RLB_ASSERT(false, "policy '" + name() +
                        "' has no symmetric dispatch (symmetric() is "
                        "false); run it on the legacy engine");
  return -1;
}

int Policy::select_direct(const LevelDirectory& dir, Rng& rng) {
  // LevelDirectory is-a QueueHistogramView, so any policy with only the
  // generic symmetric path still runs (paying virtual dispatch).
  return select_symmetric(dir, rng);
}

int ClusterState::idle_servers() const {
  int idle = 0;
  for (int s = 0; s < servers(); ++s)
    if (queue_length(s) == 0) ++idle;
  return idle;
}

int ClusterState::idle_server(int i) const {
  for (int s = 0; s < servers(); ++s) {
    if (queue_length(s) != 0) continue;
    if (i == 0) return s;
    --i;
  }
  RLB_REQUIRE(false, "idle_server index out of range");
  return -1;
}

int ClusterState::rack_idle_head(int begin, int end) const {
  // Walk the idle view in its own order, so an engine exposing true
  // became-idle FIFO order (cluster_sim's I-queue) yields the rack's
  // longest-idle server, and the default index-order scan stays the
  // per-rack analogue of idle_server(0).
  const int idle = idle_servers();
  for (int i = 0; i < idle; ++i) {
    const int s = idle_server(i);
    if (s >= begin && s < end) return s;
  }
  return -1;
}

int QueueHistogramView::rack_idle_head(int begin, int end) const {
  for (int s = begin; s < end; ++s)
    if (level_of(s) == 0) return s;
  return -1;
}

SqdPolicy::SqdPolicy(int n, int d) : d_(d), sampler_(n) {
  // d > N clamps to a full poll (the sampler enumerates everyone), so
  // only non-positive d is a configuration error.
  RLB_REQUIRE(d >= 1, "need d >= 1");
}

int SqdPolicy::select(const ClusterState& cluster, Rng& rng) {
  sampler_.sample(d_, rng, polled_);
  return shortest_polled(cluster, polled_, rng);
}

int SqdPolicy::select_symmetric(const QueueHistogramView& view, Rng& rng) {
  return sqd_dispatch(view, sampler_, d_, polled_, rng);
}

int SqdPolicy::select_direct(const LevelDirectory& dir, Rng& rng) {
  return sqd_dispatch(dir, sampler_, d_, polled_, rng);
}

std::string SqdPolicy::name() const { return "sq(" + std::to_string(d_) + ")"; }

int JsqPolicy::select(const ClusterState& cluster, Rng& rng) {
  return jsq_scan_by(cluster.servers(), rng,
                     [&](int s) { return cluster.queue_length(s); });
}

int JsqPolicy::select_symmetric(const QueueHistogramView& view, Rng& rng) {
  return jsq_scan_by(view.servers(), rng,
                     [&](int s) { return view.level_of(s); });
}

int JsqPolicy::select_direct(const LevelDirectory& dir, Rng& rng) {
  return jsq_scan_by(dir.servers(), rng,
                     [&](int s) { return dir.level_of(s); });
}

int HistogramJsqPolicy::select(const ClusterState& cluster, Rng& rng) {
  // Legacy-engine path: same distribution as select_symmetric (uniform
  // among the servers at the minimum queue length) computed by scan —
  // min level, count of minima, then the j-th minimum with one draw.
  int min_len = cluster.queue_length(0);
  for (int s = 1; s < cluster.servers(); ++s)
    min_len = std::min(min_len, cluster.queue_length(s));
  int minima = 0;
  for (int s = 0; s < cluster.servers(); ++s)
    if (cluster.queue_length(s) == min_len) ++minima;
  auto j = rng.uniform_int(static_cast<std::uint64_t>(minima));
  for (int s = 0; s < cluster.servers(); ++s) {
    if (cluster.queue_length(s) != min_len) continue;
    if (j == 0) return s;
    --j;
  }
  RLB_ASSERT(false, "histogram-jsq scan lost its minimum");
  return -1;
}

int HistogramJsqPolicy::select_symmetric(const QueueHistogramView& view,
                                         Rng& rng) {
  return view.sample_at_level(min_occupied_level(view), rng);
}

int HistogramJsqPolicy::select_direct(const LevelDirectory& dir, Rng& rng) {
  return dir.sample_at_level(min_occupied_level(dir), rng);
}

int RoundRobinPolicy::select(const ClusterState& cluster, Rng&) {
  const int s = next_;
  next_ = (next_ + 1) % cluster.servers();
  return s;
}

JiqPolicy::JiqPolicy(int n, int fallback_d) : fallback_(n, fallback_d) {}

int JiqPolicy::select(const ClusterState& cluster, Rng& rng) {
  if (cluster.idle_servers() > 0) return cluster.idle_server(0);
  return fallback_.select(cluster, rng);
}

int JiqPolicy::select_symmetric(const QueueHistogramView& view, Rng& rng) {
  if (view.idle_count() > 0) return view.idle_head();
  return fallback_.select_symmetric(view, rng);
}

int JiqPolicy::select_direct(const LevelDirectory& dir, Rng& rng) {
  if (dir.idle_count() > 0) return dir.idle_head();
  return fallback_.select_direct(dir, rng);
}

std::string JiqPolicy::name() const {
  return "jiq/" + fallback_.name();
}

JbtPolicy::JbtPolicy(int n, int d, int threshold, Fallback fallback)
    : d_(d), threshold_(threshold), fallback_(fallback), sampler_(n) {
  // As in SqdPolicy: d > N is a full poll, not an error.
  RLB_REQUIRE(d >= 1, "need d >= 1");
  RLB_REQUIRE(threshold >= 0, "threshold must be non-negative");
}

int JbtPolicy::select(const ClusterState& cluster, Rng& rng) {
  sampler_.sample(d_, rng, polled_);
  below_.clear();
  for (int s : polled_)
    if (cluster.queue_length(s) < threshold_) below_.push_back(s);
  if (!below_.empty())
    return below_[rng.uniform_int(below_.size())];
  if (fallback_ == Fallback::Random)
    return polled_[rng.uniform_int(polled_.size())];
  return shortest_polled(cluster, polled_, rng);
}

int JbtPolicy::select_symmetric(const QueueHistogramView& view, Rng& rng) {
  return jbt_dispatch(view, sampler_, d_, threshold_, fallback_, polled_,
                      below_, rng);
}

int JbtPolicy::select_direct(const LevelDirectory& dir, Rng& rng) {
  return jbt_dispatch(dir, sampler_, d_, threshold_, fallback_, polled_,
                      below_, rng);
}

std::string JbtPolicy::name() const {
  return "jbt(" + std::to_string(d_) + ",t=" + std::to_string(threshold_) +
         (fallback_ == Fallback::Shortest ? ",shortest)" : ",random)");
}

RackLocalSqdPolicy::RackLocalSqdPolicy(int n, int racks, int d,
                                       int spill_threshold)
    : n_(n),
      racks_(racks),
      per_rack_(racks >= 1 ? n / racks : 0),
      d_(d),
      spill_threshold_(spill_threshold),
      local_sampler_(racks >= 1 && n % racks == 0 ? n / racks : 1),
      remote_sampler_(std::max(1, n - per_rack_)) {
  RLB_REQUIRE(racks >= 1, "need at least one rack");
  RLB_REQUIRE(n % racks == 0, "servers must divide evenly into racks");
  RLB_REQUIRE(d >= 1, "need d >= 1");
  RLB_REQUIRE(spill_threshold >= 0, "spill threshold must be non-negative");
}

/// Rack-local SQ(d) over any queue-length accessor: poll the home rack,
/// spill to a cross-rack poll only when every local polled queue is at
/// least spill_threshold_ long, and only move for a STRICT improvement.
/// One template (like sqd_dispatch) so the ClusterState, histogram-view,
/// and concrete-directory paths consume identical RNG draws — the
/// engines' bit-identity contract extends to the rack variants.
template <typename LenFn>
int RackLocalSqdPolicy::dispatch(int home_rack, Rng& rng, LenFn&& len_of) {
  const int base = home_rack * per_rack_;
  local_sampler_.sample(d_, rng, polled_);  // clamps to the rack size
  for (int& s : polled_) s += base;
  const int local_best = shortest_polled_by(polled_, rng, len_of);
  const int local_len = len_of(local_best);
  if (racks_ == 1 || spill_threshold_ == 0 || local_len < spill_threshold_)
    return local_best;
  // Saturated locally: poll the other racks. Remote sampler indices run
  // over [0, n - per_rack); skip the home rack's block when mapping back
  // to server ids.
  remote_sampler_.sample(d_, rng, polled_);  // clamps to n - per_rack
  for (int& s : polled_) s = s >= base ? s + per_rack_ : s;
  const int remote_best = shortest_polled_by(polled_, rng, len_of);
  return len_of(remote_best) < local_len ? remote_best : local_best;
}

int RackLocalSqdPolicy::select(const ClusterState& cluster, Rng& rng) {
  return select(cluster, 0, rng);
}

int RackLocalSqdPolicy::select(const ClusterState& cluster, int home_rack,
                               Rng& rng) {
  return dispatch(home_rack, rng,
                  [&](int s) { return cluster.queue_length(s); });
}

int RackLocalSqdPolicy::select_symmetric(const QueueHistogramView& view,
                                         Rng& rng) {
  return select_symmetric(view, 0, rng);
}

int RackLocalSqdPolicy::select_symmetric(const QueueHistogramView& view,
                                         int home_rack, Rng& rng) {
  return dispatch(home_rack, rng, [&](int s) { return view.level_of(s); });
}

int RackLocalSqdPolicy::select_direct(const LevelDirectory& dir, Rng& rng) {
  return select_direct(dir, 0, rng);
}

int RackLocalSqdPolicy::select_direct(const LevelDirectory& dir,
                                      int home_rack, Rng& rng) {
  return dispatch(home_rack, rng, [&](int s) { return dir.level_of(s); });
}

std::string RackLocalSqdPolicy::name() const {
  std::string s = "rack-sq(" + std::to_string(d_) + ")";
  if (spill_threshold_ == 0)
    s += "/local";
  else if (spill_threshold_ != 1)
    s += "/spill=" + std::to_string(spill_threshold_);
  return s;
}

RackJiqPolicy::RackJiqPolicy(int n, int racks, int fallback_d,
                             int spill_threshold)
    : racks_(racks),
      per_rack_(racks >= 1 ? n / racks : 0),
      fallback_(n, racks, fallback_d, spill_threshold) {}

int RackJiqPolicy::select(const ClusterState& cluster, Rng& rng) {
  return select(cluster, 0, rng);
}

int RackJiqPolicy::select(const ClusterState& cluster, int home_rack,
                          Rng& rng) {
  const int base = home_rack * per_rack_;
  const int local = cluster.rack_idle_head(base, base + per_rack_);
  if (local >= 0) return local;
  // Steal the globally longest-idle server (necessarily cross-rack: the
  // home rack has no idle server) — the first-idle-first-out contract
  // holds across the steal in both engines.
  if (cluster.idle_servers() > 0) return cluster.idle_server(0);
  return fallback_.select(cluster, home_rack, rng);
}

int RackJiqPolicy::select_symmetric(const QueueHistogramView& view, Rng& rng) {
  return select_symmetric(view, 0, rng);
}

int RackJiqPolicy::select_symmetric(const QueueHistogramView& view,
                                    int home_rack, Rng& rng) {
  const int base = home_rack * per_rack_;
  const int local = view.rack_idle_head(base, base + per_rack_);
  if (local >= 0) return local;
  if (view.idle_count() > 0) return view.idle_head();
  return fallback_.select_symmetric(view, home_rack, rng);
}

int RackJiqPolicy::select_direct(const LevelDirectory& dir, Rng& rng) {
  return select_direct(dir, 0, rng);
}

int RackJiqPolicy::select_direct(const LevelDirectory& dir, int home_rack,
                                 Rng& rng) {
  const int base = home_rack * per_rack_;
  const int local = dir.rack_idle_head(base, base + per_rack_);
  if (local >= 0) return local;
  if (dir.idle_count() > 0) return dir.idle_head();
  return fallback_.select_direct(dir, home_rack, rng);
}

std::string RackJiqPolicy::name() const {
  return "rack-jiq/" + fallback_.name();
}

int LeastWorkLeftPolicy::select(const ClusterState& cluster, Rng& rng) {
  int best = 0;
  double best_work = cluster.remaining_work(0);
  int ties = 1;
  for (int s = 1; s < cluster.servers(); ++s) {
    const double w = cluster.remaining_work(s);
    if (w < best_work) {
      best = s;
      best_work = w;
      ties = 1;
    } else if (w == best_work) {
      ++ties;
      if (rng.uniform_int(ties) == 0) best = s;
    }
  }
  return best;
}

}  // namespace rlb::sim
