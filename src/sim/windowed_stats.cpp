#include "sim/windowed_stats.h"

#include <cmath>

#include "util/require.h"
#include "util/splitmix.h"

namespace rlb::sim {

namespace {

std::size_t window_index(double t, double width) {
  RLB_REQUIRE(std::isfinite(t) && t >= 0.0,
              "windowed observation time must be finite and non-negative");
  return static_cast<std::size_t>(t / width);
}

}  // namespace

WindowedMoments::WindowedMoments(double width) : width_(width) {
  RLB_REQUIRE(std::isfinite(width) && width > 0.0,
              "window width must be finite and positive");
}

void WindowedMoments::add(double t, double x) {
  const std::size_t w = window_index(t, width_);
  if (w >= windows_.size()) windows_.resize(w + 1);
  windows_[w].add(x);
}

void WindowedMoments::merge(const WindowedMoments& other) {
  RLB_REQUIRE(width_ == other.width_,
              "cannot merge windowed moments with different widths");
  if (other.windows_.size() > windows_.size())
    windows_.resize(other.windows_.size());
  for (std::size_t w = 0; w < other.windows_.size(); ++w)
    windows_[w].merge(other.windows_[w]);
}

const StreamingMoments& WindowedMoments::window(std::size_t w) const {
  RLB_REQUIRE(w < windows_.size(), "window index out of range");
  return windows_[w];
}

WindowedQuantiles::WindowedQuantiles(double width, std::size_t capacity,
                                     std::uint64_t seed)
    : width_(width), capacity_(capacity), seed_(seed) {
  RLB_REQUIRE(std::isfinite(width) && width > 0.0,
              "window width must be finite and positive");
  RLB_REQUIRE(capacity >= 1, "window reservoir capacity must be positive");
}

void WindowedQuantiles::grow_to(std::size_t count) {
  // Window k's reservoir always seeds from (seed, k) — never from which
  // window happened to be touched first — so reservoir subsampling is a
  // pure function of the recorded stream.
  while (windows_.size() < count) {
    std::uint64_t state = seed_ ^ (0x9e3779b97f4a7c15ull *
                                   (static_cast<std::uint64_t>(
                                        windows_.size()) +
                                    1));
    windows_.emplace_back(capacity_, util::splitmix64_next(state));
  }
}

void WindowedQuantiles::add(double t, double x) {
  const std::size_t w = window_index(t, width_);
  if (w >= windows_.size()) grow_to(w + 1);
  windows_[w].add(x);
}

void WindowedQuantiles::merge(const WindowedQuantiles& other) {
  RLB_REQUIRE(width_ == other.width_,
              "cannot merge windowed quantiles with different widths");
  RLB_REQUIRE(capacity_ == other.capacity_,
              "cannot merge windowed quantiles with different capacities");
  if (other.windows_.size() > windows_.size())
    grow_to(other.windows_.size());
  for (std::size_t w = 0; w < other.windows_.size(); ++w)
    windows_[w].merge(other.windows_[w]);
}

std::uint64_t WindowedQuantiles::count(std::size_t w) const {
  RLB_REQUIRE(w < windows_.size(), "window index out of range");
  return windows_[w].count();
}

double WindowedQuantiles::quantile(std::size_t w, double q) const {
  RLB_REQUIRE(w < windows_.size(), "window index out of range");
  return windows_[w].quantile(q);
}

}  // namespace rlb::sim
