#include "sim/replica.h"

#include <algorithm>

#include "util/splitmix.h"

namespace rlb::sim {

void ReplicaPlan::validate() const {
  RLB_REQUIRE(replicas >= 1, "replica count must be positive");
  RLB_REQUIRE(warmup < jobs_per_replica,
              "per-replica warmup must be below the per-replica job count");
}

std::uint64_t ReplicaPlan::batch_size(std::uint64_t requested) const {
  RLB_REQUIRE(requested <= measured_per_replica(),
              "batch size exceeds the per-replica measured job count");
  if (requested > 0) return requested;
  return std::max<std::uint64_t>(1, measured_per_replica() / 30);
}

ReplicaPlan ReplicaPlan::split(int replicas, std::uint64_t total_jobs,
                               std::uint64_t total_warmup,
                               std::uint64_t base_seed) {
  RLB_REQUIRE(replicas >= 1, "replica count must be positive");
  RLB_REQUIRE(total_warmup < total_jobs, "warmup must be below job count");
  ReplicaPlan plan;
  plan.replicas = replicas;
  plan.jobs_per_replica = total_jobs / static_cast<std::uint64_t>(replicas);
  plan.warmup = total_warmup / static_cast<std::uint64_t>(replicas);
  plan.base_seed = base_seed;
  RLB_REQUIRE(plan.warmup < plan.jobs_per_replica,
              "too many replicas: per-replica job budget is all warmup");
  return plan;
}

std::uint64_t replica_seed(std::uint64_t base, int replica) {
  if (replica == 0) return base;
  // Two rounds decorrelate neighbouring (base, replica) pairs, mirroring
  // engine::cell_seed; the xor constant keeps replica streams away from
  // the cell-seed family for the same base.
  return util::splitmix64(
      util::splitmix64(base ^ 0x5851f42d4c957f2dULL) ^
      util::splitmix64(static_cast<std::uint64_t>(replica)));
}

}  // namespace rlb::sim
