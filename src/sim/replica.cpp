#include "sim/replica.h"

#include <algorithm>
#include <cmath>

#include "sim/stats.h"
#include "util/splitmix.h"

namespace rlb::sim {

void ReplicaPlan::validate() const {
  RLB_REQUIRE(replicas >= 1, "replica count must be positive");
  RLB_REQUIRE(warmup < jobs_per_replica,
              "per-replica warmup must be below the per-replica job count");
}

std::uint64_t ReplicaPlan::batch_size(std::uint64_t requested) const {
  RLB_REQUIRE(requested <= measured_per_replica(),
              "batch size exceeds the per-replica measured job count");
  if (requested > 0) return requested;
  return std::max<std::uint64_t>(1, measured_per_replica() / 30);
}

ReplicaPlan ReplicaPlan::split(int replicas, std::uint64_t total_jobs,
                               std::uint64_t total_warmup,
                               std::uint64_t base_seed) {
  RLB_REQUIRE(replicas >= 1, "replica count must be positive");
  RLB_REQUIRE(total_warmup < total_jobs, "warmup must be below job count");
  ReplicaPlan plan;
  plan.replicas = replicas;
  plan.jobs_per_replica = total_jobs / static_cast<std::uint64_t>(replicas);
  plan.warmup = total_warmup / static_cast<std::uint64_t>(replicas);
  plan.base_seed = base_seed;
  RLB_REQUIRE(plan.warmup < plan.jobs_per_replica,
              "too many replicas: per-replica job budget is all warmup");
  return plan;
}

void AdaptivePlan::validate() const {
  RLB_REQUIRE(replicas >= 1, "replica count must be positive");
  RLB_REQUIRE(target_ci > 0.0, "target CI half-width must be positive");
  // Fail on an unsupported confidence level here, before any round runs
  // (t_quantile throws on levels outside its table).
  (void)t_quantile(confidence, 10);
  RLB_REQUIRE(initial_jobs >= static_cast<std::uint64_t>(replicas),
              "initial round must hold at least one job per replica");
  RLB_REQUIRE(max_jobs >= initial_jobs,
              "max_jobs must cover at least the initial round");
  RLB_REQUIRE(growth_factor >= 1.0, "growth factor must be >= 1");
  RLB_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");
  const std::uint64_t round0 =
      initial_jobs / static_cast<std::uint64_t>(replicas);
  RLB_REQUIRE(warmup_for(round0) < round0,
              "per-replica warmup must be below the round-0 per-replica "
              "job count");
}

std::uint64_t AdaptivePlan::round_jobs(int round) const {
  // Double arithmetic saturates cleanly at max_jobs (growth^round can
  // overflow any integer type long before the cap matters) and is a pure
  // deterministic function of the plan.
  const double want = static_cast<double>(initial_jobs) *
                      std::pow(growth_factor, static_cast<double>(round));
  if (want >= static_cast<double>(max_jobs)) return max_jobs;
  return static_cast<std::uint64_t>(want);
}

std::uint64_t AdaptivePlan::warmup_for(std::uint64_t jobs_per_replica)
    const {
  if (warmup_policy == WarmupPolicy::kFixed) return warmup_jobs;
  return static_cast<std::uint64_t>(
      warmup_fraction * static_cast<double>(jobs_per_replica));
}

std::uint64_t AdaptivePlan::batch_size(std::uint64_t requested) const {
  const std::uint64_t round0 =
      initial_jobs / static_cast<std::uint64_t>(replicas);
  const std::uint64_t measured = round0 - warmup_for(round0);
  RLB_REQUIRE(requested <= measured,
              "batch size exceeds the round-0 per-replica measured count");
  if (requested > 0) return requested;
  return std::max<std::uint64_t>(1, measured / 30);
}

std::uint64_t replica_seed(std::uint64_t base, int replica) {
  if (replica == 0) return base;
  // Two rounds decorrelate neighbouring (base, replica) pairs, mirroring
  // engine::cell_seed; the xor constant keeps replica streams away from
  // the cell-seed family for the same base.
  return util::splitmix64(
      util::splitmix64(base ^ 0x5851f42d4c957f2dULL) ^
      util::splitmix64(static_cast<std::uint64_t>(replica)));
}

}  // namespace rlb::sim
