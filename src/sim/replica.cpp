#include "sim/replica.h"

#include <algorithm>
#include <cmath>

#include "sim/stats.h"
#include "util/splitmix.h"

namespace rlb::sim {

void ReplicaPlan::validate() const {
  RLB_REQUIRE(replicas >= 1, "replica count must be positive");
  RLB_REQUIRE(warmup < jobs_per_replica,
              "per-replica warmup must be below the per-replica job count");
}

std::uint64_t ReplicaPlan::batch_size(std::uint64_t requested) const {
  RLB_REQUIRE(requested <= measured_per_replica(),
              "batch size exceeds the per-replica measured job count");
  if (requested > 0) return requested;
  return std::max<std::uint64_t>(1, measured_per_replica() / 30);
}

ReplicaPlan ReplicaPlan::split(int replicas, std::uint64_t total_jobs,
                               std::uint64_t total_warmup,
                               std::uint64_t base_seed) {
  RLB_REQUIRE(replicas >= 1, "replica count must be positive");
  RLB_REQUIRE(total_warmup < total_jobs, "warmup must be below job count");
  ReplicaPlan plan;
  plan.replicas = replicas;
  plan.jobs_per_replica = total_jobs / static_cast<std::uint64_t>(replicas);
  plan.warmup = total_warmup / static_cast<std::uint64_t>(replicas);
  plan.base_seed = base_seed;
  RLB_REQUIRE(plan.warmup < plan.jobs_per_replica,
              "too many replicas: per-replica job budget is all warmup");
  return plan;
}

void AdaptivePlan::validate() const {
  RLB_REQUIRE(replicas >= 1, "replica count must be positive");
  RLB_REQUIRE(target_ci > 0.0, "target CI half-width must be positive");
  RLB_REQUIRE(planner_safety >= 1.0,
              "planner safety factor must be >= 1 (an undershooting "
              "prediction defeats the variance planner)");
  // Fail on an unsupported confidence level here, before any round runs
  // (t_quantile throws on levels outside its table).
  (void)t_quantile(confidence, 10);
  RLB_REQUIRE(initial_jobs >= static_cast<std::uint64_t>(replicas),
              "initial round must hold at least one job per replica");
  RLB_REQUIRE(max_jobs >= initial_jobs,
              "max_jobs must cover at least the initial round");
  RLB_REQUIRE(growth_factor >= 1.0, "growth factor must be >= 1");
  RLB_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");
  const std::uint64_t round0 =
      initial_jobs / static_cast<std::uint64_t>(replicas);
  RLB_REQUIRE(warmup_for(round0) < round0,
              "per-replica warmup must be below the round-0 per-replica "
              "job count");
}

std::uint64_t AdaptivePlan::round_jobs(int round) const {
  // Double arithmetic saturates cleanly at max_jobs (growth^round can
  // overflow any integer type long before the cap matters) and is a pure
  // deterministic function of the plan.
  const double want = static_cast<double>(initial_jobs) *
                      std::pow(growth_factor, static_cast<double>(round));
  if (want >= static_cast<double>(max_jobs)) return max_jobs;
  return static_cast<std::uint64_t>(want);
}

std::uint64_t AdaptivePlan::min_round_jobs() const {
  const auto replicas64 = static_cast<std::uint64_t>(replicas);
  // kFraction discards a strict fraction, so any positive per-replica
  // share keeps at least one measured job; kFixed needs every replica to
  // outlive its absolute warmup.
  if (warmup_policy == WarmupPolicy::kFraction) return replicas64;
  return replicas64 * (warmup_jobs + 1);
}

std::uint64_t AdaptivePlan::warmup_for(std::uint64_t jobs_per_replica)
    const {
  if (warmup_policy == WarmupPolicy::kFixed) return warmup_jobs;
  return static_cast<std::uint64_t>(
      warmup_fraction * static_cast<double>(jobs_per_replica));
}

std::uint64_t AdaptivePlan::batch_size(std::uint64_t requested) const {
  const std::uint64_t round0 =
      initial_jobs / static_cast<std::uint64_t>(replicas);
  const std::uint64_t measured = round0 - warmup_for(round0);
  RLB_REQUIRE(requested <= measured,
              "batch size exceeds the round-0 per-replica measured count");
  if (requested > 0) return requested;
  return std::max<std::uint64_t>(1, measured / 30);
}

namespace {

/// The PR-4 schedule: round r requests initial * growth^r, blind to the
/// observed statistics. Kept bit-identical with AdaptivePlan::round_jobs
/// — committed adaptive baselines pin this schedule.
class GeometricPlanner final : public RoundPlanner {
 public:
  explicit GeometricPlanner(const AdaptivePlan& plan) : plan_(plan) {}

  std::uint64_t round_jobs(int round, std::uint64_t /*jobs_used*/,
                           double /*half_width*/) const override {
    return plan_.round_jobs(round);
  }

 private:
  const AdaptivePlan& plan_;
};

/// Variance-aware schedule: hw scales like c/sqrt(jobs), so the
/// cumulative budget that reaches target_ci is predicted as
/// jobs_used * (hw/target)^2, inflated by planner_safety; the next round
/// is the missing part, floored at min_round_jobs() so the request is
/// never too thin to measure while budget remains. Falls back to the
/// geometric schedule while no interval exists (hw infinite — fewer
/// than two completed batches). Depends only on (round, jobs_used,
/// half_width), all of them thread-count-invariant merged quantities.
class VariancePlanner final : public RoundPlanner {
 public:
  explicit VariancePlanner(const AdaptivePlan& plan) : plan_(plan) {}

  std::uint64_t round_jobs(int round, std::uint64_t jobs_used,
                           double half_width) const override {
    if (round == 0) return plan_.initial_jobs;
    if (!std::isfinite(half_width)) return plan_.round_jobs(round);
    const double ratio = half_width / plan_.target_ci;
    const double predicted = static_cast<double>(jobs_used) * ratio *
                             ratio * plan_.planner_safety;
    const double next = predicted - static_cast<double>(jobs_used);
    // Saturate in double space (the prediction can overflow uint64 for
    // extreme hw/target ratios); the runner clamps to the remaining
    // allowance anyway.
    if (next >= static_cast<double>(plan_.max_jobs)) return plan_.max_jobs;
    // Two floors: min_round_jobs keeps the request thick enough to
    // outlive its warmup, and an eighth of the budget so far keeps each
    // round a meaningful data increment — without it, a cell sitting
    // just above the target with planner_safety near 1 would grind
    // through many warmup-dominated micro-rounds.
    return std::max({plan_.min_round_jobs(), jobs_used / 8,
                     static_cast<std::uint64_t>(next)});
  }

 private:
  const AdaptivePlan& plan_;
};

}  // namespace

std::unique_ptr<RoundPlanner> make_planner(const AdaptivePlan& plan) {
  if (plan.planner == PlannerKind::kVariance)
    return std::make_unique<VariancePlanner>(plan);
  return std::make_unique<GeometricPlanner>(plan);
}

std::uint64_t replica_seed(std::uint64_t base, int replica) {
  if (replica == 0) return base;
  // Two rounds decorrelate neighbouring (base, replica) pairs, mirroring
  // engine::cell_seed; the xor constant keeps replica streams away from
  // the cell-seed family for the same base.
  return util::splitmix64(
      util::splitmix64(base ^ 0x5851f42d4c957f2dULL) ^
      util::splitmix64(static_cast<std::uint64_t>(replica)));
}

}  // namespace rlb::sim
