// Arrival processes for the cluster simulator.
//
// Renewal streams (i.i.d. interarrival draws) cover the paper's Theorem 2
// setting; the Markov-modulated Poisson process (MMPP) implements the
// paper's stated future-work direction of Markov Arrival Processes —
// correlated, bursty traffic that no renewal process can express.
// BatchArrivalProcess compounds batches (fixed or geometric sizes) onto
// any base process — the classic "batch Poisson" traffic when wrapped
// around exponential renewals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/distributions.h"
#include "sim/rng.h"

namespace rlb::sim {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Time until the next arrival (stateful: successive calls walk the
  /// process).
  [[nodiscard]] virtual double next(Rng& rng) = 0;

  /// Long-run arrival rate.
  [[nodiscard]] virtual double mean_rate() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Return to the initial phase (used between simulation runs).
  virtual void reset() {}

  /// An independent copy for parallel simulation replicas (each replica
  /// must own its mutable process state).
  [[nodiscard]] virtual std::unique_ptr<ArrivalProcess> clone() const = 0;
};

/// I.i.d. interarrival times drawn from a Distribution (renewal process).
class RenewalArrivals final : public ArrivalProcess {
 public:
  explicit RenewalArrivals(const Distribution& interarrival);
  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<RenewalArrivals>(*this);
  }

 private:
  const Distribution& interarrival_;
};

/// Two-phase Markov-modulated Poisson process: Poisson rate r_i while the
/// modulating chain sits in phase i, switching 1->2 at rate s12 and 2->1
/// at rate s21. The canonical simple MAP.
class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(double rate1, double rate2, double switch12, double switch21);
  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string name() const override;
  void reset() override { phase_ = 0; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<MmppArrivals>(*this);
  }

  /// Construct a bursty MMPP with the given mean rate: an "on" phase at
  /// `burst_factor` times the mean rate and a slow background phase, with
  /// mean phase holding time `hold`.
  [[nodiscard]] static MmppArrivals bursty(double mean_rate,
                                           double burst_factor, double hold);

 private:
  double rate_[2];
  double switch_[2];
  int phase_ = 0;
};

/// Batch arrivals over any base process: batches arrive at the base
/// process's epochs, and the jobs of a batch arrive simultaneously (zero
/// interarrival gaps). Batch sizes are deterministic (`Fixed`, integer
/// mean) or geometric on {1, 2, ...} with the given mean (`Geometric`,
/// the compound-Poisson classic when the base is exponential). The mean
/// job rate is base rate x mean batch size — divide the base rate by the
/// batch mean to compare against an unbatched stream at equal load.
class BatchArrivalProcess final : public ArrivalProcess {
 public:
  enum class BatchSizes { Fixed, Geometric };

  /// Takes ownership of `base`. mean_batch >= 1; Fixed requires an
  /// integral mean_batch.
  BatchArrivalProcess(std::unique_ptr<ArrivalProcess> base,
                      double mean_batch,
                      BatchSizes sizes = BatchSizes::Geometric);
  BatchArrivalProcess(const BatchArrivalProcess& other);
  BatchArrivalProcess& operator=(const BatchArrivalProcess&) = delete;

  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string name() const override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<BatchArrivalProcess>(*this);
  }

 private:
  std::unique_ptr<ArrivalProcess> base_;
  double mean_batch_;
  BatchSizes sizes_;
  std::uint64_t remaining_ = 0;  ///< jobs still due at the current epoch
};

}  // namespace rlb::sim
