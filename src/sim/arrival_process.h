// Arrival processes for the cluster simulator.
//
// Renewal streams (i.i.d. interarrival draws) cover the paper's Theorem 2
// setting; the Markov-modulated Poisson process (MMPP) implements the
// paper's stated future-work direction of Markov Arrival Processes —
// correlated, bursty traffic that no renewal process can express.
// BatchArrivalProcess compounds batches (fixed or geometric sizes) onto
// any base process — the classic "batch Poisson" traffic when wrapped
// around exponential renewals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/distributions.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace rlb::sim {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Time until the next arrival (stateful: successive calls walk the
  /// process).
  [[nodiscard]] virtual double next(Rng& rng) = 0;

  /// Long-run arrival rate.
  [[nodiscard]] virtual double mean_rate() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Return to the initial phase (used between simulation runs).
  virtual void reset() {}

  /// An independent copy for parallel simulation replicas (each replica
  /// must own its mutable process state).
  [[nodiscard]] virtual std::unique_ptr<ArrivalProcess> clone() const = 0;
};

/// I.i.d. interarrival times drawn from a Distribution (renewal process).
class RenewalArrivals final : public ArrivalProcess {
 public:
  explicit RenewalArrivals(const Distribution& interarrival);
  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<RenewalArrivals>(*this);
  }

 private:
  const Distribution& interarrival_;
};

/// Two-phase Markov-modulated Poisson process: Poisson rate r_i while the
/// modulating chain sits in phase i, switching 1->2 at rate s12 and 2->1
/// at rate s21. The canonical simple MAP.
class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(double rate1, double rate2, double switch12, double switch21);
  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string name() const override;
  void reset() override { phase_ = 0; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<MmppArrivals>(*this);
  }

  /// Construct a bursty MMPP with the given mean rate: an "on" phase at
  /// `burst_factor` times the mean rate and a slow background phase, with
  /// mean phase holding time `hold`.
  [[nodiscard]] static MmppArrivals bursty(double mean_rate,
                                           double burst_factor, double hold);

 private:
  double rate_[2];
  double switch_[2];
  int phase_ = 0;
};

/// Batch arrivals over any base process: batches arrive at the base
/// process's epochs, and the jobs of a batch arrive simultaneously (zero
/// interarrival gaps). Batch sizes are deterministic (`Fixed`, integer
/// mean) or geometric on {1, 2, ...} with the given mean (`Geometric`,
/// the compound-Poisson classic when the base is exponential). The mean
/// job rate is base rate x mean batch size — divide the base rate by the
/// batch mean to compare against an unbatched stream at equal load.
class BatchArrivalProcess final : public ArrivalProcess {
 public:
  enum class BatchSizes { Fixed, Geometric };

  /// Takes ownership of `base`. mean_batch >= 1; Fixed requires an
  /// integral mean_batch.
  BatchArrivalProcess(std::unique_ptr<ArrivalProcess> base,
                      double mean_batch,
                      BatchSizes sizes = BatchSizes::Geometric);
  BatchArrivalProcess(const BatchArrivalProcess& other);
  BatchArrivalProcess& operator=(const BatchArrivalProcess&) = delete;

  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string name() const override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<BatchArrivalProcess>(*this);
  }

 private:
  std::unique_ptr<ArrivalProcess> base_;
  double mean_batch_;
  BatchSizes sizes_;
  std::uint64_t remaining_ = 0;  ///< jobs still due at the current epoch
};

/// Replays a recorded Trace (sim/trace.h) cyclically: arrivals fall at
/// the trace's timestamps, batch entries expand into zero-gap arrivals,
/// and after the last epoch the replay wraps — the gap back to the first
/// epoch is (horizon - last timestamp) + first timestamp, so the trace's
/// trailing quiet period is preserved. Consumes NO randomness: the replay
/// is the same for every seed, and clones replay the same schedule (each
/// replica re-treads the trace from its own t = 0).
class TraceArrivalProcess final : public ArrivalProcess {
 public:
  explicit TraceArrivalProcess(Trace trace);

  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string name() const override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<TraceArrivalProcess>(*this);
  }

  [[nodiscard]] const Trace& trace() const { return *trace_; }

 private:
  std::shared_ptr<const Trace> trace_;  ///< immutable, shared by clones
  std::size_t cursor_ = 0;              ///< next entry (mod trace size)
  std::uint64_t cycle_ = 0;             ///< completed wrap-arounds
  std::uint32_t remaining_ = 0;         ///< jobs still due at this epoch
  double prev_epoch_ = 0.0;             ///< absolute time of last epoch
};

/// K-phase Markov-modulated Poisson process with a CYCLIC phase order:
/// while in phase i arrivals are Poisson at rates[i], the phase holds for
/// an Exp(1 / holds[i]) time, then the chain steps to phase (i+1) mod k.
/// Cyclic modulation expresses diurnal-step patterns (night / ramp /
/// peak / ramp) that the two-phase MmppArrivals cannot; its long-run rate
/// has the closed form sum(rates[i] * holds[i]) / sum(holds[i]) — the
/// phase-stationary mixture — which the statistical suite pins.
class MmppArrivalProcess final : public ArrivalProcess {
 public:
  /// rates[i] >= 0 (at least one > 0), holds[i] > 0, equal sizes >= 1.
  MmppArrivalProcess(std::vector<double> rates, std::vector<double> holds);

  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override;
  [[nodiscard]] std::string name() const override;
  void reset() override { phase_ = 0; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<MmppArrivalProcess>(*this);
  }

 private:
  std::vector<double> rates_;
  std::vector<double> holds_;
  std::size_t phase_ = 0;
};

/// Diurnal arrivals: a nonhomogeneous Poisson process with rate
/// lambda(t) = lambda0 * (1 + amplitude * sin(2 pi t / period)), sampled
/// exactly by thinning — candidate epochs from a homogeneous Poisson at
/// the peak rate lambda0 * (1 + amplitude), each kept with probability
/// lambda(t) / peak (two RNG draws per candidate, a fixed order that
/// keeps replays bit-identical). mean_rate() is lambda0 (the sine
/// integrates to zero over a period).
class SinusoidalArrivalProcess final : public ArrivalProcess {
 public:
  /// lambda0 > 0, 0 <= amplitude <= 1, period > 0.
  SinusoidalArrivalProcess(double lambda0, double amplitude, double period);

  double next(Rng& rng) override;
  [[nodiscard]] double mean_rate() const override { return lambda0_; }
  [[nodiscard]] std::string name() const override;
  void reset() override { clock_ = 0.0; }
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override {
    return std::make_unique<SinusoidalArrivalProcess>(*this);
  }

  /// The instantaneous rate lambda(t); exposed for the statistical
  /// per-window pins.
  [[nodiscard]] double rate_at(double t) const;

 private:
  double lambda0_;
  double amplitude_;
  double period_;
  double clock_ = 0.0;  ///< absolute time of the last arrival
};

}  // namespace rlb::sim
