// Event-driven simulation of a dispatch cluster: one arrival stream, a
// dispatch policy, N FIFO servers with i.i.d. service times. Tracks every
// job individually, so it supports arbitrary interarrival and service
// distributions (unlike the fast jump-chain simulator).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/arrival_process.h"
#include "sim/distributions.h"
#include "sim/policy.h"
#include "sim/replica.h"
#include "sim/stats.h"
#include "sim/topology.h"
#include "util/thread_budget.h"

namespace rlb::sim {

/// Which event-loop engine executes each replica.
///
/// Both engines are bit-identical for symmetric policies (same seeds ->
/// same numbers, pinned by tests/test_compact_cluster.cpp); they differ
/// only in cost. Legacy keeps per-server job deques and pays O(N) for an
/// arrival to an idle server; compact keeps the queue-length histogram
/// (sim/compact_cluster.h) and pays O(1) per event, which is what makes
/// N = 10^6 fleets simulable (the fleet_scaling scenario).
enum class ClusterEngine {
  kAuto,     ///< compact when policy.symmetric(), legacy otherwise
  kLegacy,   ///< per-server state; required by identity-aware policies
  kCompact,  ///< histogram state; rejects non-symmetric policies
};

struct ClusterConfig {
  int servers = 1;
  std::uint64_t jobs = 1'000'000;  ///< arrivals, total across all replicas
  std::uint64_t warmup = 100'000;  ///< leading arrivals discarded; total,
                                   ///< split evenly per replica
  std::uint64_t seed = 1;
  std::uint64_t batch_size = 0;  ///< 0: auto (per-replica measured / 30)

  /// Independent replicas the job budget is sharded into (sim/replica.h).
  /// Each replica clones the policy and arrival process and is seeded
  /// replica_seed(seed, r); replicas == 1 reproduces the legacy serial
  /// run bit-for-bit.
  int replicas = 1;

  /// Per-server speed factors for heterogeneous fleets (service time =
  /// sampled size / speed). Empty means all servers run at speed 1. The
  /// paper treats homogeneous servers; heterogeneity is the related-work
  /// setting of Mukhopadhyay et al. / Izagirre & Makowski, supported here
  /// for the example studies.
  std::vector<double> server_speeds;

  /// Engine selection; kAuto picks per policy and is right for almost
  /// every caller. kCompact with a non-symmetric policy is rejected.
  ClusterEngine engine = ClusterEngine::kAuto;

  /// Rack topology (sim/topology.h, docs/TOPOLOGY.md). The default —
  /// one rack, no penalty — is the paper's symmetric model and runs
  /// bit-identically to the pre-topology engines. When the topology is
  /// OBSERVABLE (racks > 1 with a cross-rack penalty or a locality-aware
  /// policy) each arrival draws a uniform home rack right after its
  /// service-time sample, the policy's rack-aware select runs, and
  /// cross-rack dispatch pays topology.penalize() on the service time
  /// (after any server-speed scaling). Validation rejects a policy whose
  /// required_racks() disagrees with topology.racks.
  Topology topology;

  /// Sojourn-quantile reservoir: capacity of the per-replica sample
  /// (ReservoirQuantiles) and the salt XOR-ed into the replica seed for
  /// the reservoir's own RNG, keeping its draws decoupled from the
  /// simulation stream. Defaults reproduce the committed baselines.
  std::size_t quantile_reservoir = 100'000;
  std::uint64_t quantile_seed_salt = 0xabcdefull;

  /// Time-windowed statistics (sim/windowed_stats.h, docs/WORKLOADS.md):
  /// when window_width > 0 EVERY departure's sojourn is also bucketed by
  /// departure time into windows [k*w, (k+1)*w) of the replica clock —
  /// warmup departures included, because windows describe the transient
  /// and dropping the head would bias the early windows. The recorders
  /// consume no simulation randomness (the per-window reservoirs carry
  /// their own streams seeded from replica seed ^ window_seed_salt), so
  /// turning windows on leaves every other output bit-identical.
  /// Default off; off reproduces the committed baselines bit-for-bit.
  double window_width = 0.0;
  std::size_t window_reservoir = 4'096;  ///< per-window quantile sample
  std::uint64_t window_seed_salt = 0x5eed77ull;

  /// SLA threshold tau: when > 0, count measured jobs whose sojourn
  /// exceeds tau (the diurnal_surge scenario's violation fraction).
  /// Pure counting — no randomness, no effect on other outputs.
  double sla_threshold = 0.0;
};

/// Per-window summary in a ClusterResult (cfg.window_width > 0 only).
/// Window k covers replica-clock [k*w, (k+1)*w); replicas merge at equal
/// transient age, so `count` and the moments aggregate all replicas'
/// k-th windows.
struct WindowSummary {
  double start = 0.0;          ///< window's left edge (replica clock)
  std::uint64_t count = 0;     ///< departures recorded in the window
  double mean_sojourn = 0.0;   ///< 0 when the window is empty
  double p99_sojourn = 0.0;    ///< reservoir-sampled; 0 when empty
};

struct ClusterResult {
  double mean_sojourn = 0.0;  ///< delay in the paper's terminology
  double mean_wait = 0.0;
  double ci95_sojourn = 0.0;        ///< batch-means half-width
  double mean_jobs_in_system = 0.0; ///< time average over the measured window
  double utilization = 0.0;         ///< busy-server time fraction
  double p50_sojourn = 0.0;         ///< reservoir-sampled quantiles
  double p95_sojourn = 0.0;
  double p99_sojourn = 0.0;
  std::uint64_t jobs_measured = 0;
  double sim_time = 0.0;  ///< summed over replicas (total simulated time)

  /// SLA accounting (cfg.sla_threshold > 0): measured jobs with sojourn
  /// over the threshold, as a count and a fraction of jobs_measured.
  std::uint64_t sla_violations = 0;
  double sla_violation_fraction = 0.0;

  /// Per-window transient statistics; empty unless cfg.window_width > 0.
  std::vector<WindowSummary> windows;

  /// Filled by simulate_cluster_adaptive only; default-initialized on
  /// the fixed-budget paths.
  AdaptiveReport adaptive;
};

/// Renewal arrivals: i.i.d. interarrival draws from `interarrival`.
/// Replicas run serially on the calling thread.
ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               const Distribution& interarrival,
                               const Distribution& service);

/// General (possibly correlated / Markov-modulated) arrival stream.
ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               ArrivalProcess& arrivals,
                               const Distribution& service);

/// As above, with replica workers drawn from `budget`; the result is
/// bit-identical for every budget.
ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               const Distribution& interarrival,
                               const Distribution& service,
                               util::ThreadBudget& budget);
ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               ArrivalProcess& arrivals,
                               const Distribution& service,
                               util::ThreadBudget& budget);

/// Exact checkpoint of an adaptive run's merged statistics after its
/// last completed round — the "round state" a result-cache entry stores
/// so a later --refine can resume the round schedule instead of starting
/// over (docs/CACHING.md). Restoring this state and continuing with
/// run_replicas_adaptive_resume reproduces, under the geometric planner,
/// the exact rounds a cold run at the tighter target would execute.
///
/// Windowed recorders are NOT checkpointable (they hold per-window
/// reservoirs with independent streams); capture and resume both require
/// cfg.window_width == 0.
struct ClusterRoundState {
  int rounds = 0;               ///< completed rounds
  std::uint64_t jobs_used = 0;  ///< cumulative budget, warmup included
  std::uint64_t batch = 1;      ///< CI batch size the run was built with
  MomentsState sojourn;
  MomentsState wait;
  BatchMeansState sojourn_ci;
  ReservoirState sojourn_quantiles;
  double area_jobs = 0.0;
  double busy_area = 0.0;
  double window = 0.0;
  double sim_time = 0.0;
  std::uint64_t sla_violations = 0;
  double sla_threshold = 0.0;
};

/// Sequential-stopping run (docs/PRECISION.md): rounds of plan.replicas
/// replicas grow the budget until the pooled CI half-width of the MEAN
/// SOJOURN TIME (the target statistic) at plan.confidence drops to
/// plan.target_ci or plan.max_jobs caps out. The plan supersedes
/// cfg.jobs / cfg.warmup / cfg.replicas / cfg.seed; every replica of
/// every round clones the policy and arrival process, exactly like the
/// fixed path. Result fields merge all rounds; result.adaptive reports
/// the stopping outcome. Bit-identical for every budget.
///
/// When `round_state` is non-null the merged statistics are checkpointed
/// into it after the run stops (requires cfg.window_width == 0); the
/// checkpoint changes no output bit.
ClusterResult simulate_cluster_adaptive(const ClusterConfig& cfg,
                                        Policy& policy,
                                        const Distribution& interarrival,
                                        const Distribution& service,
                                        const AdaptivePlan& plan,
                                        util::ThreadBudget& budget,
                                        ClusterRoundState* round_state =
                                            nullptr);
ClusterResult simulate_cluster_adaptive(const ClusterConfig& cfg,
                                        Policy& policy,
                                        ArrivalProcess& arrivals,
                                        const Distribution& service,
                                        const AdaptivePlan& plan,
                                        util::ThreadBudget& budget,
                                        ClusterRoundState* round_state =
                                            nullptr);

/// Resume a previously checkpointed adaptive run at a (typically
/// tighter) plan.target_ci — the --refine path. `state` must be the
/// checkpoint of a run with the same cfg and the same plan apart from
/// target_ci; the round schedule continues from state.rounds with fresh
/// replica streams, so no randomness is ever reused. Under the geometric
/// planner the result is bit-identical to a cold adaptive run at the new
/// target; under the variance planner it is statistically equivalent.
/// `round_state` re-checkpoints the refined statistics when non-null.
ClusterResult simulate_cluster_refine(const ClusterConfig& cfg,
                                      Policy& policy,
                                      const Distribution& interarrival,
                                      const Distribution& service,
                                      const AdaptivePlan& plan,
                                      const ClusterRoundState& state,
                                      util::ThreadBudget& budget,
                                      ClusterRoundState* round_state =
                                          nullptr);
ClusterResult simulate_cluster_refine(const ClusterConfig& cfg,
                                      Policy& policy,
                                      ArrivalProcess& arrivals,
                                      const Distribution& service,
                                      const AdaptivePlan& plan,
                                      const ClusterRoundState& state,
                                      util::ThreadBudget& budget,
                                      ClusterRoundState* round_state =
                                          nullptr);

}  // namespace rlb::sim
