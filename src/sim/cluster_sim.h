// Event-driven simulation of a dispatch cluster: one arrival stream, a
// dispatch policy, N FIFO servers with i.i.d. service times. Tracks every
// job individually, so it supports arbitrary interarrival and service
// distributions (unlike the fast jump-chain simulator).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/arrival_process.h"
#include "sim/distributions.h"
#include "sim/policy.h"

namespace rlb::sim {

struct ClusterConfig {
  int servers = 1;
  std::uint64_t jobs = 1'000'000;  ///< arrivals to generate
  std::uint64_t warmup = 100'000;  ///< leading arrivals discarded from stats
  std::uint64_t seed = 1;
  std::uint64_t batch_size = 0;  ///< 0: auto ((jobs - warmup) / 30)

  /// Per-server speed factors for heterogeneous fleets (service time =
  /// sampled size / speed). Empty means all servers run at speed 1. The
  /// paper treats homogeneous servers; heterogeneity is the related-work
  /// setting of Mukhopadhyay et al. / Izagirre & Makowski, supported here
  /// for the example studies.
  std::vector<double> server_speeds;
};

struct ClusterResult {
  double mean_sojourn = 0.0;  ///< delay in the paper's terminology
  double mean_wait = 0.0;
  double ci95_sojourn = 0.0;        ///< batch-means half-width
  double mean_jobs_in_system = 0.0; ///< time average over the measured window
  double utilization = 0.0;         ///< busy-server time fraction
  double p50_sojourn = 0.0;         ///< reservoir-sampled quantiles
  double p95_sojourn = 0.0;
  double p99_sojourn = 0.0;
  std::uint64_t jobs_measured = 0;
  double sim_time = 0.0;
};

/// Renewal arrivals: i.i.d. interarrival draws from `interarrival`.
ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               const Distribution& interarrival,
                               const Distribution& service);

/// General (possibly correlated / Markov-modulated) arrival stream.
ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               ArrivalProcess& arrivals,
                               const Distribution& service);

}  // namespace rlb::sim
