#include "sim/rng.h"

#include <cmath>

#include "util/require.h"
#include "util/splitmix.h"

namespace rlb::sim {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = util::splitmix64_next(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) {
  RLB_REQUIRE(bound > 0, "uniform_int bound must be positive");
  // Rejection sampling on the top of the range to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::exponential(double rate) {
  RLB_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // 1 - U in (0, 1], so the log is finite.
  return -std::log(1.0 - next_double()) / rate;
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * f;
  have_spare_normal_ = true;
  return u * f;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ull); }

DistinctSampler::DistinctSampler(int n) : n_(n) {
  RLB_REQUIRE(n >= 1, "sampler needs a positive population");
}

void DistinctSampler::sample(int d, Rng& rng, std::vector<int>& out) {
  RLB_REQUIRE(d >= 1, "need d >= 1");
  // Clamp to the population: a poll wider than the pool is a full
  // enumeration, not an error (rack-local pools can be smaller than the
  // cluster-wide d).
  if (d > n_) d = n_;
  out.resize(d);
  touched_pos_.clear();
  touched_val_.clear();
  const auto value_at = [&](std::int32_t p) -> std::int32_t {
    for (std::size_t k = 0; k < touched_pos_.size(); ++k)
      if (touched_pos_[k] == p) return touched_val_[k];
    return p;
  };
  const auto set_value = [&](std::int32_t p, std::int32_t v) {
    for (std::size_t k = 0; k < touched_pos_.size(); ++k) {
      if (touched_pos_[k] == p) {
        touched_val_[k] = v;
        return;
      }
    }
    touched_pos_.push_back(p);
    touched_val_.push_back(v);
  };
  for (int i = 0; i < d; ++i) {
    // The same swap sequence a materialized partial Fisher–Yates runs:
    // swap slots i and j, emit the new occupant of slot i.
    const auto j = static_cast<std::int32_t>(
        i + rng.uniform_int(static_cast<std::uint64_t>(n_ - i)));
    const std::int32_t vi = value_at(i);
    const std::int32_t vj = value_at(j);
    set_value(i, vj);
    set_value(j, vi);
    out[i] = vj;
  }
}

}  // namespace rlb::sim
