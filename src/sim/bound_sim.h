// Direct CTMC simulation of the lower/upper bound models themselves.
//
// The bound models are ordinary finite-rate CTMCs on S(T) (jockeying /
// pausing / batch redirects included), so simulating them and comparing
// against the matrix-geometric solution validates the builder and the
// solver end to end. Time averages use expected holding times (1/total
// rate), which is unbiased and lower-variance than sampling the clocks.
#pragma once

#include <cstdint>

#include "sqd/bound_model.h"

namespace rlb::sim {

struct BoundSimResult {
  double mean_waiting_jobs = 0.0;
  double mean_jobs = 0.0;
  double max_gap_seen = 0.0;  ///< should never exceed T
  std::uint64_t steps = 0;
};

BoundSimResult simulate_bound_model(const sqd::BoundModel& model,
                                    std::uint64_t steps,
                                    std::uint64_t warmup_steps,
                                    std::uint64_t seed);

}  // namespace rlb::sim
