// Direct CTMC simulation of the lower/upper bound models themselves.
//
// The bound models are ordinary finite-rate CTMCs on S(T) (jockeying /
// pausing / batch redirects included), so simulating them and comparing
// against the matrix-geometric solution validates the builder and the
// solver end to end. Time averages use expected holding times (1/total
// rate), which is unbiased and lower-variance than sampling the clocks.
// Long runs shard into parallel replicas (sim/replica.h) whose
// time-weighted accumulators merge exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/replica.h"
#include "sqd/bound_model.h"
#include "util/thread_budget.h"

namespace rlb::sim {

struct BoundSimResult {
  double mean_waiting_jobs = 0.0;
  double mean_jobs = 0.0;
  double max_gap_seen = 0.0;  ///< should never exceed T
  std::uint64_t steps = 0;

  /// Pooled 95% CI half-width on the waiting-jobs time average
  /// (holding-time-weighted batch means, df = total batches - 1).
  double ci95_waiting_jobs = 0.0;

  /// Filled by simulate_bound_model_adaptive only.
  AdaptiveReport adaptive;
};

/// Single replica on the calling thread (legacy entry point).
BoundSimResult simulate_bound_model(const sqd::BoundModel& model,
                                    std::uint64_t steps,
                                    std::uint64_t warmup_steps,
                                    std::uint64_t seed);

/// The step budget sharded into `replicas` independent chains, with
/// worker threads drawn from `budget`; bit-identical for every budget.
/// `rank_speeds` selects the heterogeneous-rate variant of the model
/// (see BoundModel::transitions(m, rank_speeds)); empty — the default —
/// is the homogeneous model, bit-identical with the legacy streams.
BoundSimResult simulate_bound_model(const sqd::BoundModel& model,
                                    std::uint64_t steps,
                                    std::uint64_t warmup_steps,
                                    std::uint64_t seed, int replicas,
                                    util::ThreadBudget& budget,
                                    const std::vector<double>& rank_speeds =
                                        {});

/// Sequential-stopping run (docs/PRECISION.md): rounds of plan.replicas
/// jump chains grow the step budget until the pooled CI half-width of
/// the MEAN WAITING JOBS time average (holding-time-weighted batch
/// means) at plan.confidence drops to plan.target_ci or plan.max_jobs
/// caps out (a "job" of the plan is one chain step here). Bit-identical
/// for every budget.
BoundSimResult simulate_bound_model_adaptive(
    const sqd::BoundModel& model, const AdaptivePlan& plan,
    util::ThreadBudget& budget,
    const std::vector<double>& rank_speeds = {});

}  // namespace rlb::sim
