// Fast jump-chain simulator for the M/M SQ(d) system.
//
// With exponential service and FIFO queues (and no jockeying in the
// original SQ(d) system), a job that joins a queue holding k jobs has
// expected sojourn (k+1)/mu — each job ahead of it and itself complete in
// i.i.d. Exp(mu) time. Averaging (k+1)/mu over arrivals is therefore an
// unbiased estimator of E[Delay] with strictly lower variance than timing
// individual jobs, and it lets each arrival cost O(d) work. This is what
// makes the paper's 1e8-job simulations reproducible in seconds.
//
// Huge runs shard into parallel replicas (sim/replica.h): the job budget
// splits into `replicas` independent chains whose statistics merge with
// honest pooled confidence intervals, bit-identically for every thread
// count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/replica.h"
#include "sqd/params.h"
#include "util/thread_budget.h"

namespace rlb::sim {

struct FastSqdConfig {
  sqd::Params params;
  std::uint64_t jobs = 4'000'000;  ///< total across all replicas
  std::uint64_t warmup = 400'000;  ///< total; split evenly per replica
  std::uint64_t seed = 1;
  std::uint64_t batch_size = 0;  ///< 0: auto (per-replica measured / 30)

  /// Independent replicas the job budget is sharded into. Replica r is
  /// seeded replica_seed(seed, r); replicas == 1 reproduces the legacy
  /// serial stream bit-for-bit.
  int replicas = 1;

  /// When > 0, also estimate the marginal queue-length tail P(Q >= k) for
  /// k = 0..tail_kmax by sampling one uniform server per arrival (PASTA).
  int tail_kmax = 0;
};

struct FastSqdResult {
  double mean_delay = 0.0;       ///< E[sojourn]
  double mean_wait = 0.0;        ///< E[sojourn] - 1/mu
  double ci95_delay = 0.0;       ///< pooled batch-means half-width
  double mean_queue_seen = 0.0;  ///< E[k]: queue length at the joined server
  std::uint64_t jobs_measured = 0;

  /// P(a uniformly chosen server holds >= k jobs), k = 0..tail_kmax;
  /// empty when tail_kmax == 0. Comparable with Mitzenmacher's s_k and
  /// with sqd::marginal_queue_tail.
  std::vector<double> marginal_tail;

  /// Filled by simulate_sqd_fast_adaptive only; default-initialized
  /// (converged = false, jobs_used = 0) on the fixed-budget paths.
  AdaptiveReport adaptive;
};

/// Replicas run serially on the calling thread.
FastSqdResult simulate_sqd_fast(const FastSqdConfig& cfg);

/// Replicas additionally recruit worker threads from `budget`; the result
/// is bit-identical for every budget.
FastSqdResult simulate_sqd_fast(const FastSqdConfig& cfg,
                                util::ThreadBudget& budget);

/// Sequential-stopping run (docs/PRECISION.md): rounds of plan.replicas
/// replicas grow the budget until the pooled CI half-width of the MEAN
/// DELAY (the target statistic) at plan.confidence drops to
/// plan.target_ci or plan.max_jobs caps out. The plan supersedes
/// cfg.jobs / cfg.warmup / cfg.replicas / cfg.seed; cfg supplies the
/// system parameters, tail_kmax and the (round-0-derived) batch size.
/// Result fields are the merged statistics over every round;
/// result.adaptive reports the stopping outcome. Bit-identical for every
/// budget.
FastSqdResult simulate_sqd_fast_adaptive(const FastSqdConfig& cfg,
                                         const AdaptivePlan& plan,
                                         util::ThreadBudget& budget);

}  // namespace rlb::sim
