// Sampling distributions for service times and interarrival times in the
// discrete-event simulator. The analysis-side Interarrival classes
// (sqd/interarrival.h) carry transforms; these carry samplers. The factory
// helpers keep bench code terse.
#pragma once

#include <memory>
#include <string>

#include "sim/rng.h"

namespace rlb::sim {

class Distribution {
 public:
  virtual ~Distribution() = default;
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;
  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

std::unique_ptr<Distribution> make_exponential(double rate);
std::unique_ptr<Distribution> make_deterministic(double value);
std::unique_ptr<Distribution> make_erlang(int shape, double stage_rate);
std::unique_ptr<Distribution> make_hyperexp(double p1, double rate1,
                                            double rate2);
/// Lognormal parameterized by its MEAN and coefficient of variation.
std::unique_ptr<Distribution> make_lognormal(double mean, double cv);
std::unique_ptr<Distribution> make_uniform(double lo, double hi);

/// Balanced two-phase hyperexponential with given mean and squared
/// coefficient of variation scv > 1 (classic fitting used in queueing
/// studies).
std::unique_ptr<Distribution> make_hyperexp_fitted(double mean, double scv);

/// Pareto (type I): support [scale, inf), survival (scale/x)^alpha. The
/// canonical heavy tail — mean alpha*scale/(alpha-1) requires alpha > 1
/// (enforced: an infinite-mean service law starves every load balancer),
/// variance is finite only for alpha > 2. Sampled by inversion.
std::unique_ptr<Distribution> make_pareto(double alpha, double scale);

/// Pareto with the given MEAN and tail index alpha > 1 (the scale is
/// derived): the equal-mean-load construction heavy-tail studies need.
std::unique_ptr<Distribution> make_pareto_mean(double mean, double alpha);

/// Parse a service/interarrival law from a CLI spec string:
///
///   exp:rate=R            exponential
///   det:value=V           deterministic
///   erlang:shape=K,rate=R Erlang-K of stage rate R
///   uniform:lo=A,hi=B     uniform on [A, B]
///   pareto:mean=M,alpha=A Pareto with mean M, tail index A
///   lognormal:mean=M,cv=C lognormal with mean M, coeff. of variation C
///   hyperexp:mean=M,scv=S balanced 2-phase hyperexponential, scv S > 1
///
/// Keys may appear in any order; missing keys, unknown keys, unknown
/// families and malformed numbers throw std::invalid_argument with the
/// offending spec in the message. This is what the scenarios' --service
/// flags parse (docs/WORKLOADS.md).
std::unique_ptr<Distribution> parse_distribution(const std::string& spec);

}  // namespace rlb::sim
