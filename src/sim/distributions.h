// Sampling distributions for service times and interarrival times in the
// discrete-event simulator. The analysis-side Interarrival classes
// (sqd/interarrival.h) carry transforms; these carry samplers. The factory
// helpers keep bench code terse.
#pragma once

#include <memory>
#include <string>

#include "sim/rng.h"

namespace rlb::sim {

class Distribution {
 public:
  virtual ~Distribution() = default;
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;
  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

std::unique_ptr<Distribution> make_exponential(double rate);
std::unique_ptr<Distribution> make_deterministic(double value);
std::unique_ptr<Distribution> make_erlang(int shape, double stage_rate);
std::unique_ptr<Distribution> make_hyperexp(double p1, double rate1,
                                            double rate2);
/// Lognormal parameterized by its MEAN and coefficient of variation.
std::unique_ptr<Distribution> make_lognormal(double mean, double cv);
std::unique_ptr<Distribution> make_uniform(double lo, double hi);

/// Balanced two-phase hyperexponential with given mean and squared
/// coefficient of variation scv > 1 (classic fitting used in queueing
/// studies).
std::unique_ptr<Distribution> make_hyperexp_fitted(double mean, double scv);

}  // namespace rlb::sim
