// Rack topology of a dispatch cluster (docs/TOPOLOGY.md).
//
// The paper's model is topology-blind: every server is one hop from the
// dispatcher. Real fleets are racked — servers share a top-of-rack
// switch, and dispatching a job outside the arrival's rack costs extra
// (the replicant-opera cluster shape). This struct describes that first
// deviation from the symmetric model: R equal racks and a cross-rack
// penalty, expressed as added latency, a service-capacity factor, or
// both. The paper's bounds are exactly the racks == 1 / zero-penalty
// limit, which the engines reproduce BIT-FOR-BIT (no rack arithmetic,
// no extra RNG draws — tests pin this).
//
// Penalty semantics: each arrival carries a HOME rack, drawn uniformly
// by the engine (one uniform_int draw per arrival, taken right after the
// service-time sample so both engines stay in lockstep). A job
// dispatched to a server outside its home rack is served as
//
//   service_time  =  service_time / cross_capacity + cross_latency
//
// applied AFTER any per-server speed scaling: the cross-rack transfer
// both slows the effective service rate (cross_capacity <= 1, think
// remote reads through the ToR uplink) and adds a fixed transfer delay
// (cross_latency, in service-time units) that occupies the server.
// Rack-local dispatch is never penalized.
//
// The home-rack draw is skipped entirely — preserving bit-identity with
// the topology-blind engines — unless the run can observe it: racks > 1
// AND (the penalty is non-zero OR the policy is locality-aware).
#pragma once

#include <cmath>

#include "util/require.h"

namespace rlb::sim {

struct Topology {
  int racks = 1;               ///< equal racks; servers % racks == 0
  double cross_latency = 0.0;  ///< added to cross-rack service times
  double cross_capacity = 1.0; ///< cross-rack service-rate factor (<= 1 slows)

  /// Single-rack topologies are the paper's symmetric model.
  [[nodiscard]] bool trivial() const { return racks <= 1; }

  /// Whether cross-rack dispatch costs anything at all.
  [[nodiscard]] bool penalized() const {
    return cross_latency != 0.0 || cross_capacity != 1.0;
  }

  [[nodiscard]] int servers_per_rack(int servers) const {
    return servers / racks;
  }

  [[nodiscard]] int rack_of(int server, int servers) const {
    return server / servers_per_rack(servers);
  }

  /// The cross-rack service-time adjustment (see file comment). Applied
  /// only to jobs whose server lies outside their home rack.
  [[nodiscard]] double penalize(double service_time) const {
    return service_time / cross_capacity + cross_latency;
  }

  void validate(int servers) const {
    RLB_REQUIRE(racks >= 1, "topology needs at least one rack");
    RLB_REQUIRE(servers % racks == 0,
                "servers must divide evenly into racks");
    RLB_REQUIRE(std::isfinite(cross_latency) && cross_latency >= 0.0,
                "cross-rack latency must be finite and non-negative");
    RLB_REQUIRE(std::isfinite(cross_capacity) && cross_capacity > 0.0,
                "cross-rack capacity factor must be finite and positive");
  }
};

}  // namespace rlb::sim
