#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "sim/cluster_accum.h"
#include "sim/compact_cluster.h"
#include "sim/replica.h"
#include "sim/stats.h"
#include "util/require.h"

namespace rlb::sim {

namespace {

struct Job {
  std::uint64_t index = 0;
  double arrival_time = 0.0;
  double service_time = 0.0;
};

/// One replica's event loop: `jobs` arrivals with `warmup` discarded,
/// everything seeded from `seed`. The engine itself is the policy-visible
/// cluster state.
class Engine final : public ClusterState {
 public:
  Engine(const ClusterConfig& cfg, std::uint64_t jobs, std::uint64_t warmup,
         std::uint64_t batch, std::uint64_t seed, Policy& policy,
         ArrivalProcess& arrivals, const Distribution& service)
      : cfg_(cfg),
        jobs_(jobs),
        warmup_(warmup),
        batch_(batch),
        seed_(seed),
        policy_(policy),
        arrivals_(arrivals),
        service_(service),
        rng_(seed),
        rack_mode_(cfg.topology.racks > 1 &&
                   (cfg.topology.penalized() || policy.locality_aware())),
        per_rack_(cfg.topology.servers_per_rack(cfg.servers)),
        queues_(cfg.servers),
        completion_(cfg.servers, 0.0),
        queued_work_(cfg.servers, 0.0) {
    // Every server starts idle; the I-queue begins in server-index order.
    idle_queue_.reserve(cfg.servers);
    for (int s = 0; s < cfg.servers; ++s) idle_queue_.push_back(s);
  }

  int servers() const override { return cfg_.servers; }

  int queue_length(int server) const override {
    return static_cast<int>(queues_[server].size());
  }

  double remaining_work(int server) const override {
    const auto& q = queues_[server];
    if (q.empty()) return 0.0;
    return (completion_[server] - now_) + queued_work_[server];
  }

  // The dispatcher's JIQ I-queue: servers in the order they became idle.
  int idle_servers() const override {
    return static_cast<int>(idle_queue_.size());
  }

  int idle_server(int i) const override { return idle_queue_[i]; }

  ClusterAccum run() {
    ClusterAccum acc;
    acc.sojourn_ci = BatchMeans(batch_);
    acc.sojourn_quantiles = ReservoirQuantiles(
        cfg_.quantile_reservoir, seed_ ^ cfg_.quantile_seed_salt);
    acc.sla_threshold = cfg_.sla_threshold;
    if (cfg_.window_width > 0.0)
      acc.enable_windows(cfg_.window_width, cfg_.window_reservoir,
                         seed_ ^ cfg_.window_seed_salt);

    double next_arrival = arrivals_.next(rng_);
    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0;

    double measure_start = -1.0;
    std::uint64_t in_system = 0;

    const auto advance_to = [&](double t) {
      if (measure_start >= 0.0) {
        acc.area_jobs += static_cast<double>(in_system) * (t - now_);
        acc.busy_area += static_cast<double>(busy_servers_) * (t - now_);
      }
      now_ = t;
    };

    while (departures < jobs_) {
      const bool have_arrival = arrivals < jobs_;
      const bool arrival_next =
          have_arrival &&
          (departure_heap_.empty() ||
           next_arrival <= departure_heap_.top().first);

      if (arrival_next) {
        advance_to(next_arrival);
        if (arrivals == warmup_ && measure_start < 0.0)
          measure_start = now_;
        Job job{arrivals, now_, service_.sample(rng_)};
        // Home rack: one draw per arrival, taken right after the service
        // sample. Skipped entirely when the topology is unobservable, so
        // those runs stay bit-identical to the topology-blind engine
        // (the compact engine mirrors this statement for statement).
        int home = 0;
        if (rack_mode_)
          home = static_cast<int>(rng_.uniform_int(
              static_cast<std::uint64_t>(cfg_.topology.racks)));
        ++arrivals;
        ++in_system;
        const int s = rack_mode_ ? policy_.select(*this, home, rng_)
                                 : policy_.select(*this, rng_);
        RLB_ASSERT(s >= 0 && s < cfg_.servers, "policy picked a bad server");
        if (!cfg_.server_speeds.empty())
          job.service_time /= cfg_.server_speeds[s];
        if (rack_mode_ && s / per_rack_ != home)
          job.service_time = cfg_.topology.penalize(job.service_time);
        auto& q = queues_[s];
        if (q.empty()) {
          completion_[s] = now_ + job.service_time;
          departure_heap_.emplace(completion_[s], s);
          ++busy_servers_;
          retire_idle(s);
        } else {
          queued_work_[s] += job.service_time;
        }
        q.push_back(job);
        next_arrival = now_ + arrivals_.next(rng_);
      } else {
        RLB_ASSERT(!departure_heap_.empty(), "no events left");
        const auto [t, s] = departure_heap_.top();
        departure_heap_.pop();
        advance_to(t);
        auto& q = queues_[s];
        RLB_ASSERT(!q.empty(), "departure from empty server");
        const Job done = q.front();
        q.pop_front();
        ++departures;
        --in_system;
        acc.record_departure(now_, done.arrival_time, done.service_time,
                             done.index >= warmup_);
        if (!q.empty()) {
          const Job& next = q.front();
          queued_work_[s] -= next.service_time;
          completion_[s] = now_ + next.service_time;
          departure_heap_.emplace(completion_[s], s);
        } else {
          --busy_servers_;
          idle_queue_.push_back(s);
        }
      }
    }

    acc.window = now_ - std::max(measure_start, 0.0);
    acc.sim_time = now_;
    return acc;
  }

 private:
  using Event = std::pair<double, int>;  // (time, server)

  void retire_idle(int s) {
    // O(N) erase; N is small and JIQ-style policies take the front anyway.
    const auto it = std::find(idle_queue_.begin(), idle_queue_.end(), s);
    RLB_ASSERT(it != idle_queue_.end(), "busy server missing from I-queue");
    idle_queue_.erase(it);
  }

  const ClusterConfig& cfg_;
  std::uint64_t jobs_;
  std::uint64_t warmup_;
  std::uint64_t batch_;
  std::uint64_t seed_;
  Policy& policy_;
  ArrivalProcess& arrivals_;
  const Distribution& service_;
  Rng rng_;
  /// Topology observable this run (sim/topology.h gating rule).
  bool rack_mode_;
  int per_rack_;

  std::vector<std::deque<Job>> queues_;
  std::vector<double> completion_;
  std::vector<double> queued_work_;
  std::vector<int> idle_queue_;  ///< idle servers, first-idle first
  std::priority_queue<Event, std::vector<Event>, std::greater<>>
      departure_heap_;
  double now_ = 0.0;
  int busy_servers_ = 0;
};

void validate_config(const ClusterConfig& cfg, const Policy& policy) {
  RLB_REQUIRE(cfg.servers >= 1, "need at least one server");
  RLB_REQUIRE(cfg.server_speeds.empty() ||
                  cfg.server_speeds.size() ==
                      static_cast<std::size_t>(cfg.servers),
              "server_speeds must be empty or one entry per server");
  for (double sp : cfg.server_speeds)
    RLB_REQUIRE(sp > 0.0, "server speeds must be positive");
  RLB_REQUIRE(cfg.quantile_reservoir >= 1,
              "quantile reservoir needs capacity >= 1");
  RLB_REQUIRE(std::isfinite(cfg.window_width) && cfg.window_width >= 0.0,
              "window width must be finite and non-negative (0 = off)");
  RLB_REQUIRE(cfg.window_width == 0.0 || cfg.window_reservoir >= 1,
              "window reservoir needs capacity >= 1");
  RLB_REQUIRE(std::isfinite(cfg.sla_threshold) && cfg.sla_threshold >= 0.0,
              "SLA threshold must be finite and non-negative (0 = off)");
  RLB_REQUIRE(cfg.engine != ClusterEngine::kCompact || policy.symmetric(),
              "the compact engine only runs symmetric policies; use "
              "kLegacy or kAuto for identity-aware policies");
  cfg.topology.validate(cfg.servers);
  const int req = policy.required_racks();
  RLB_REQUIRE(req == 0 || req == cfg.topology.racks,
              "policy '" + policy.name() + "' was built for " +
                  std::to_string(req) + " racks but the topology has " +
                  std::to_string(cfg.topology.racks));
}

/// True when this run should execute on the compact histogram engine.
bool use_compact_engine(const ClusterConfig& cfg, const Policy& policy) {
  switch (cfg.engine) {
    case ClusterEngine::kLegacy:
      return false;
    case ClusterEngine::kCompact:
      return true;
    case ClusterEngine::kAuto:
      return policy.symmetric();
  }
  return false;
}

/// One replica: fresh clones of the mutable policy / arrival state, so a
/// single replica matches the legacy reset()-then-run.
ClusterAccum run_one_replica(const ClusterConfig& cfg, Policy& policy,
                             ArrivalProcess& arrivals,
                             const Distribution& service, std::uint64_t jobs,
                             std::uint64_t warmup, std::uint64_t batch,
                             std::uint64_t seed) {
  const auto replica_policy = policy.clone();
  const auto replica_arrivals = arrivals.clone();
  replica_policy->reset();
  replica_arrivals->reset();
  if (use_compact_engine(cfg, policy)) {
    CompactClusterEngine engine(cfg, jobs, warmup, batch, seed,
                                *replica_policy, *replica_arrivals, service);
    return engine.run();
  }
  Engine engine(cfg, jobs, warmup, batch, seed, *replica_policy,
                *replica_arrivals, service);
  return engine.run();
}

ClusterResult assemble(const ClusterConfig& cfg, const ClusterAccum& acc) {
  ClusterResult out;
  out.mean_sojourn = acc.sojourn_stats.mean();
  out.mean_wait = acc.wait_stats.mean();
  out.ci95_sojourn = acc.sojourn_ci.half_width(0.95);
  if (acc.sojourn_quantiles.count() > 0) {
    out.p50_sojourn = acc.sojourn_quantiles.quantile(0.50);
    out.p95_sojourn = acc.sojourn_quantiles.quantile(0.95);
    out.p99_sojourn = acc.sojourn_quantiles.quantile(0.99);
  }
  out.jobs_measured = acc.sojourn_stats.count();
  out.sim_time = acc.sim_time;
  if (acc.window > 0.0) {
    out.mean_jobs_in_system = acc.area_jobs / acc.window;
    out.utilization = acc.busy_area / acc.window / cfg.servers;
  }
  out.sla_violations = acc.sla_violations;
  if (out.jobs_measured > 0)
    out.sla_violation_fraction =
        static_cast<double>(acc.sla_violations) /
        static_cast<double>(out.jobs_measured);
  if (acc.windowed_sojourn) {
    const std::size_t n = acc.windowed_sojourn->windows();
    out.windows.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
      WindowSummary ws;
      ws.start = acc.windowed_sojourn->window_start(w);
      ws.count = acc.windowed_sojourn->count(w);
      if (ws.count > 0) {
        ws.mean_sojourn = acc.windowed_sojourn->mean(w);
        ws.p99_sojourn = acc.windowed_p99->quantile(w, 0.99);
      }
      out.windows.push_back(ws);
    }
  }
  return out;
}

/// Checkpoint the merged accumulator + stopping report into a
/// ClusterRoundState (see cluster_sim.h). Windowed recorders cannot be
/// checkpointed, so capture refuses when they are armed.
ClusterRoundState snapshot_round_state(const ClusterAccum& acc,
                                       const AdaptiveReport& report,
                                       std::uint64_t batch) {
  RLB_REQUIRE(!acc.windowed_sojourn.has_value(),
              "round-state checkpoints require windowed statistics off");
  ClusterRoundState s;
  s.rounds = report.rounds;
  s.jobs_used = report.jobs_used;
  s.batch = batch;
  s.sojourn = acc.sojourn_stats.state();
  s.wait = acc.wait_stats.state();
  s.sojourn_ci = acc.sojourn_ci.state();
  s.sojourn_quantiles = acc.sojourn_quantiles.state();
  s.area_jobs = acc.area_jobs;
  s.busy_area = acc.busy_area;
  s.window = acc.window;
  s.sim_time = acc.sim_time;
  s.sla_violations = acc.sla_violations;
  s.sla_threshold = acc.sla_threshold;
  return s;
}

/// Rebuild the merged accumulator a checkpoint describes, bit-for-bit.
ClusterAccum restore_round_state(const ClusterRoundState& s) {
  ClusterAccum acc;
  acc.sojourn_stats = StreamingMoments::from_state(s.sojourn);
  acc.wait_stats = StreamingMoments::from_state(s.wait);
  acc.sojourn_ci = BatchMeans::from_state(s.sojourn_ci);
  acc.sojourn_quantiles = ReservoirQuantiles::from_state(s.sojourn_quantiles);
  acc.area_jobs = s.area_jobs;
  acc.busy_area = s.busy_area;
  acc.window = s.window;
  acc.sim_time = s.sim_time;
  acc.sla_violations = s.sla_violations;
  acc.sla_threshold = s.sla_threshold;
  return acc;
}

}  // namespace

ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               const Distribution& interarrival,
                               const Distribution& service) {
  return simulate_cluster(cfg, policy, interarrival, service,
                          util::ThreadBudget::serial());
}

ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               ArrivalProcess& arrivals,
                               const Distribution& service) {
  return simulate_cluster(cfg, policy, arrivals, service,
                          util::ThreadBudget::serial());
}

ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               const Distribution& interarrival,
                               const Distribution& service,
                               util::ThreadBudget& budget) {
  RenewalArrivals arrivals(interarrival);
  return simulate_cluster(cfg, policy, arrivals, service, budget);
}

ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               ArrivalProcess& arrivals,
                               const Distribution& service,
                               util::ThreadBudget& budget) {
  validate_config(cfg, policy);
  const ReplicaPlan plan =
      ReplicaPlan::split(cfg.replicas, cfg.jobs, cfg.warmup, cfg.seed);
  const std::uint64_t batch = plan.batch_size(cfg.batch_size);

  const ClusterAccum acc = run_replicas<ClusterAccum>(
      plan, budget,
      [&](int /*replica*/, std::uint64_t seed) {
        return run_one_replica(cfg, policy, arrivals, service,
                               plan.jobs_per_replica, plan.warmup, batch,
                               seed);
      },
      [](ClusterAccum& into, const ClusterAccum& from) { into.merge(from); });

  return assemble(cfg, acc);
}

ClusterResult simulate_cluster_adaptive(const ClusterConfig& cfg,
                                        Policy& policy,
                                        const Distribution& interarrival,
                                        const Distribution& service,
                                        const AdaptivePlan& plan,
                                        util::ThreadBudget& budget,
                                        ClusterRoundState* round_state) {
  RenewalArrivals arrivals(interarrival);
  return simulate_cluster_adaptive(cfg, policy, arrivals, service, plan,
                                   budget, round_state);
}

ClusterResult simulate_cluster_adaptive(const ClusterConfig& cfg,
                                        Policy& policy,
                                        ArrivalProcess& arrivals,
                                        const Distribution& service,
                                        const AdaptivePlan& plan,
                                        util::ThreadBudget& budget,
                                        ClusterRoundState* round_state) {
  validate_config(cfg, policy);
  plan.validate();
  RLB_REQUIRE(round_state == nullptr || cfg.window_width == 0.0,
              "round-state checkpoints require windowed statistics off");
  const std::uint64_t batch = plan.batch_size(cfg.batch_size);

  AdaptiveReport report;
  const ClusterAccum acc = run_replicas_adaptive<ClusterAccum>(
      plan, budget,
      [&](int /*global_replica*/, std::uint64_t seed, std::uint64_t jobs,
          std::uint64_t warmup) {
        return run_one_replica(cfg, policy, arrivals, service, jobs,
                               warmup, batch, seed);
      },
      [](ClusterAccum& into, const ClusterAccum& from) { into.merge(from); },
      [&](const ClusterAccum& merged) {
        return merged.sojourn_ci.half_width_or_infinity(plan.confidence);
      },
      report);

  if (round_state != nullptr)
    *round_state = snapshot_round_state(acc, report, batch);
  ClusterResult out = assemble(cfg, acc);
  out.adaptive = report;
  return out;
}

ClusterResult simulate_cluster_refine(const ClusterConfig& cfg,
                                      Policy& policy,
                                      const Distribution& interarrival,
                                      const Distribution& service,
                                      const AdaptivePlan& plan,
                                      const ClusterRoundState& state,
                                      util::ThreadBudget& budget,
                                      ClusterRoundState* round_state) {
  RenewalArrivals arrivals(interarrival);
  return simulate_cluster_refine(cfg, policy, arrivals, service, plan, state,
                                 budget, round_state);
}

ClusterResult simulate_cluster_refine(const ClusterConfig& cfg,
                                      Policy& policy,
                                      ArrivalProcess& arrivals,
                                      const Distribution& service,
                                      const AdaptivePlan& plan,
                                      const ClusterRoundState& state,
                                      util::ThreadBudget& budget,
                                      ClusterRoundState* round_state) {
  validate_config(cfg, policy);
  plan.validate();
  RLB_REQUIRE(cfg.window_width == 0.0,
              "refine resumption requires windowed statistics off");
  const std::uint64_t batch = plan.batch_size(cfg.batch_size);
  // The checkpointed statistics were batched at the original run's batch
  // size; resuming with a different one would mix batch granularities
  // and break the cold-run equivalence.
  RLB_REQUIRE(batch == state.batch,
              "refine plan derives a different batch size than the "
              "checkpointed run used");

  AdaptiveReport report;
  const ClusterAccum acc = run_replicas_adaptive_resume<ClusterAccum>(
      plan, AdaptiveResume{state.rounds, state.jobs_used},
      restore_round_state(state), budget,
      [&](int /*global_replica*/, std::uint64_t seed, std::uint64_t jobs,
          std::uint64_t warmup) {
        return run_one_replica(cfg, policy, arrivals, service, jobs,
                               warmup, batch, seed);
      },
      [](ClusterAccum& into, const ClusterAccum& from) { into.merge(from); },
      [&](const ClusterAccum& merged) {
        return merged.sojourn_ci.half_width_or_infinity(plan.confidence);
      },
      report);

  if (round_state != nullptr)
    *round_state = snapshot_round_state(acc, report, batch);
  ClusterResult out = assemble(cfg, acc);
  out.adaptive = report;
  return out;
}

}  // namespace rlb::sim
