#include "sim/cluster_sim.h"

#include <deque>
#include <queue>
#include <vector>

#include "sim/stats.h"
#include "util/require.h"

namespace rlb::sim {

namespace {

struct Job {
  std::uint64_t index = 0;
  double arrival_time = 0.0;
  double service_time = 0.0;
};

/// The engine itself is the policy-visible cluster state.
class Engine final : public ClusterState {
 public:
  Engine(const ClusterConfig& cfg, Policy& policy, ArrivalProcess& arrivals,
         const Distribution& service)
      : cfg_(cfg),
        policy_(policy),
        arrivals_(arrivals),
        service_(service),
        rng_(cfg.seed),
        queues_(cfg.servers),
        completion_(cfg.servers, 0.0),
        queued_work_(cfg.servers, 0.0) {}

  int servers() const override { return cfg_.servers; }

  int queue_length(int server) const override {
    return static_cast<int>(queues_[server].size());
  }

  double remaining_work(int server) const override {
    const auto& q = queues_[server];
    if (q.empty()) return 0.0;
    return (completion_[server] - now_) + queued_work_[server];
  }

  ClusterResult run() {
    RLB_REQUIRE(cfg_.servers >= 1, "need at least one server");
    RLB_REQUIRE(cfg_.warmup < cfg_.jobs, "warmup must be below job count");
    RLB_REQUIRE(cfg_.server_speeds.empty() ||
                    cfg_.server_speeds.size() ==
                        static_cast<std::size_t>(cfg_.servers),
                "server_speeds must be empty or one entry per server");
    for (double sp : cfg_.server_speeds)
      RLB_REQUIRE(sp > 0.0, "server speeds must be positive");
    const std::uint64_t measured_jobs = cfg_.jobs - cfg_.warmup;
    const std::uint64_t batch =
        cfg_.batch_size > 0 ? cfg_.batch_size : std::max<std::uint64_t>(
                                                    1, measured_jobs / 30);
    BatchMeans sojourn_ci(batch);
    StreamingMoments sojourn_stats, wait_stats;
    ReservoirQuantiles sojourn_quantiles(100'000, cfg_.seed ^ 0xabcdefull);

    double next_arrival = arrivals_.next(rng_);
    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0;

    double measure_start = -1.0;
    double area_jobs = 0.0;     // integral of total jobs over measured window
    double busy_area = 0.0;     // integral of busy servers
    std::uint64_t in_system = 0;

    const auto advance_to = [&](double t) {
      if (measure_start >= 0.0) {
        area_jobs += static_cast<double>(in_system) * (t - now_);
        busy_area += static_cast<double>(busy_servers_) * (t - now_);
      }
      now_ = t;
    };

    while (departures < cfg_.jobs) {
      const bool have_arrival = arrivals < cfg_.jobs;
      const bool arrival_next =
          have_arrival &&
          (departure_heap_.empty() || next_arrival <= departure_heap_.top().first);

      if (arrival_next) {
        advance_to(next_arrival);
        if (arrivals == cfg_.warmup && measure_start < 0.0)
          measure_start = now_;
        Job job{arrivals, now_, service_.sample(rng_)};
        ++arrivals;
        ++in_system;
        const int s = policy_.select(*this, rng_);
        RLB_ASSERT(s >= 0 && s < cfg_.servers, "policy picked a bad server");
        if (!cfg_.server_speeds.empty())
          job.service_time /= cfg_.server_speeds[s];
        auto& q = queues_[s];
        if (q.empty()) {
          completion_[s] = now_ + job.service_time;
          departure_heap_.emplace(completion_[s], s);
          ++busy_servers_;
        } else {
          queued_work_[s] += job.service_time;
        }
        q.push_back(job);
        next_arrival = now_ + arrivals_.next(rng_);
      } else {
        RLB_ASSERT(!departure_heap_.empty(), "no events left");
        const auto [t, s] = departure_heap_.top();
        departure_heap_.pop();
        advance_to(t);
        auto& q = queues_[s];
        RLB_ASSERT(!q.empty(), "departure from empty server");
        const Job done = q.front();
        q.pop_front();
        ++departures;
        --in_system;
        if (done.index >= cfg_.warmup) {
          const double sojourn = now_ - done.arrival_time;
          sojourn_stats.add(sojourn);
          wait_stats.add(sojourn - done.service_time);
          sojourn_ci.add(sojourn);
          sojourn_quantiles.add(sojourn);
        }
        if (!q.empty()) {
          const Job& next = q.front();
          queued_work_[s] -= next.service_time;
          completion_[s] = now_ + next.service_time;
          departure_heap_.emplace(completion_[s], s);
        } else {
          --busy_servers_;
        }
      }
    }

    ClusterResult out;
    out.mean_sojourn = sojourn_stats.mean();
    out.mean_wait = wait_stats.mean();
    out.ci95_sojourn = sojourn_ci.ci95_halfwidth();
    if (sojourn_quantiles.count() > 0) {
      out.p50_sojourn = sojourn_quantiles.quantile(0.50);
      out.p95_sojourn = sojourn_quantiles.quantile(0.95);
      out.p99_sojourn = sojourn_quantiles.quantile(0.99);
    }
    out.jobs_measured = sojourn_stats.count();
    out.sim_time = now_;
    const double window = now_ - std::max(measure_start, 0.0);
    if (window > 0.0) {
      out.mean_jobs_in_system = area_jobs / window;
      out.utilization = busy_area / window / cfg_.servers;
    }
    return out;
  }

 private:
  using Event = std::pair<double, int>;  // (time, server)

  const ClusterConfig& cfg_;
  Policy& policy_;
  ArrivalProcess& arrivals_;
  const Distribution& service_;
  Rng rng_;

  std::vector<std::deque<Job>> queues_;
  std::vector<double> completion_;
  std::vector<double> queued_work_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>>
      departure_heap_;
  double now_ = 0.0;
  int busy_servers_ = 0;
};

}  // namespace

ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               const Distribution& interarrival,
                               const Distribution& service) {
  RenewalArrivals arrivals(interarrival);
  return simulate_cluster(cfg, policy, arrivals, service);
}

ClusterResult simulate_cluster(const ClusterConfig& cfg, Policy& policy,
                               ArrivalProcess& arrivals,
                               const Distribution& service) {
  policy.reset();
  arrivals.reset();
  Engine engine(cfg, policy, arrivals, service);
  return engine.run();
}

}  // namespace rlb::sim
