// Arrival traces: timestamped arrival epochs (with optional batch sizes)
// parsed from a simple text/CSV file, the replay half of the
// workload-generator/simulator split (docs/WORKLOADS.md).
//
// File format, one arrival epoch per line:
//
//   <timestamp> [<batch>]
//
// Fields are separated by whitespace and/or a single comma (so both
// "12.5 3" and "12.5,3" parse). `timestamp` is a finite, non-negative,
// non-decreasing simulation time; `batch` is an optional integer >= 1
// (default 1) counting jobs arriving at that epoch. `#` starts a comment
// that runs to end of line; blank lines are ignored. One optional
// directive line
//
//   horizon=<value>
//
// declares the trace's period (the time the recorded window covers);
// without it the horizon defaults to the last timestamp. TraceArrivalProcess
// (sim/arrival_process.h) replays the trace cyclically with the horizon as
// the wrap-around period, so horizon > last timestamp inserts the trailing
// quiet gap a real recorded window has.
//
// Every malformed input — non-monotone or negative or non-finite
// timestamps, bad batch counts, trailing fields, an empty trace — throws
// std::invalid_argument (RLB_REQUIRE) naming the offending line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rlb::sim {

struct TraceEntry {
  double time = 0.0;        ///< arrival epoch (simulation time)
  std::uint32_t batch = 1;  ///< jobs arriving at this epoch (>= 1)
};

struct Trace {
  std::vector<TraceEntry> entries;
  /// Length of the recorded window; >= the last timestamp, > 0. The
  /// cyclic-replay period of TraceArrivalProcess.
  double horizon = 0.0;

  /// Jobs per cycle: the sum of all batch sizes.
  [[nodiscard]] std::uint64_t total_jobs() const;

  /// Long-run replay rate: total_jobs() / horizon.
  [[nodiscard]] double mean_rate() const;

  /// Throws std::invalid_argument unless the trace is non-empty with
  /// finite, non-negative, non-decreasing timestamps, batches >= 1, and
  /// horizon >= last timestamp (> 0).
  void validate() const;
};

/// Parse a trace from a stream (format above). Throws
/// std::invalid_argument on any malformed line, naming the line number.
Trace parse_trace(std::istream& in);

/// Parse a trace file; the error message names the path.
Trace load_trace(const std::string& path);

/// Serialize in canonical form: a `horizon=` directive (only when it
/// differs from the last timestamp), then one "<time> <batch>" line per
/// entry with round-trip (max_digits10) precision, so
/// parse_trace(write_trace(t)) reproduces `t` bit-for-bit.
void write_trace(std::ostream& out, const Trace& trace);

/// write_trace to a file. Throws std::invalid_argument when the file
/// cannot be opened.
void save_trace(const std::string& path, const Trace& trace);

}  // namespace rlb::sim
