#include "sim/bound_sim.h"

#include <algorithm>
#include <vector>

#include "sim/replica.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "statespace/state.h"
#include "util/require.h"

namespace rlb::sim {

namespace {

/// Raw per-replica accumulators; time averages are formed only after the
/// replica-index-order merge. The waiting-jobs CI comes from
/// holding-time-weighted batch means over the measured steps.
struct Accum {
  double weight_total = 0.0;
  double waiting_acc = 0.0;
  double jobs_acc = 0.0;
  double max_gap_seen = 0.0;
  std::uint64_t steps = 0;
  WeightedBatchMeans waiting_ci{1};

  void merge(const Accum& other) {
    weight_total += other.weight_total;
    waiting_acc += other.waiting_acc;
    jobs_acc += other.jobs_acc;
    max_gap_seen = std::max(max_gap_seen, other.max_gap_seen);
    steps += other.steps;
    waiting_ci.merge(other.waiting_ci);
  }
};

Accum run_one_replica(const sqd::BoundModel& model, std::uint64_t steps,
                      std::uint64_t warmup_steps, std::uint64_t batch,
                      std::uint64_t seed,
                      const std::vector<double>& rank_speeds) {
  Rng rng(seed);
  statespace::State state(static_cast<std::size_t>(model.params().N), 0);

  Accum acc;
  acc.waiting_ci = WeightedBatchMeans(batch);
  for (std::uint64_t step = 0; step < steps; ++step) {
    const std::vector<sqd::Transition> ts =
        model.transitions(state, rank_speeds);
    double total_rate = 0.0;
    for (const auto& t : ts) total_rate += t.rate;
    RLB_ASSERT(total_rate > 0.0, "absorbing state in bound model");

    if (step >= warmup_steps) {
      const double hold = 1.0 / total_rate;  // expected holding time
      const double waiting = statespace::waiting_jobs(state);
      acc.weight_total += hold;
      acc.waiting_acc += hold * waiting;
      acc.jobs_acc += hold * statespace::total_jobs(state);
      acc.waiting_ci.add(waiting, hold);
      acc.max_gap_seen = std::max(
          acc.max_gap_seen, static_cast<double>(statespace::gap(state)));
    }

    double u = rng.next_double() * total_rate;
    std::size_t chosen = ts.size() - 1;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      u -= ts[i].rate;
      if (u <= 0.0) {
        chosen = i;
        break;
      }
    }
    state = ts[chosen].to;
  }
  acc.steps = steps;
  return acc;
}

void validate_rank_speeds(const sqd::BoundModel& model,
                          const std::vector<double>& rank_speeds) {
  RLB_REQUIRE(rank_speeds.empty() ||
                  rank_speeds.size() ==
                      static_cast<std::size_t>(model.params().N),
              "rank_speeds must be empty or one entry per server");
  for (double sp : rank_speeds)
    RLB_REQUIRE(sp > 0.0, "rank speeds must be positive");
}

BoundSimResult assemble(const Accum& acc) {
  BoundSimResult out;
  out.mean_waiting_jobs = acc.waiting_acc / acc.weight_total;
  out.mean_jobs = acc.jobs_acc / acc.weight_total;
  out.max_gap_seen = acc.max_gap_seen;
  out.steps = acc.steps;
  out.ci95_waiting_jobs = acc.waiting_ci.half_width(0.95);
  return out;
}

}  // namespace

BoundSimResult simulate_bound_model(const sqd::BoundModel& model,
                                    std::uint64_t steps,
                                    std::uint64_t warmup_steps,
                                    std::uint64_t seed) {
  return simulate_bound_model(model, steps, warmup_steps, seed, 1,
                              util::ThreadBudget::serial());
}

BoundSimResult simulate_bound_model(const sqd::BoundModel& model,
                                    std::uint64_t steps,
                                    std::uint64_t warmup_steps,
                                    std::uint64_t seed, int replicas,
                                    util::ThreadBudget& budget,
                                    const std::vector<double>& rank_speeds) {
  validate_rank_speeds(model, rank_speeds);
  const ReplicaPlan plan =
      ReplicaPlan::split(replicas, steps, warmup_steps, seed);
  const std::uint64_t batch = plan.batch_size(0);

  const Accum acc = run_replicas<Accum>(
      plan, budget,
      [&](int /*replica*/, std::uint64_t replica_seed) {
        return run_one_replica(model, plan.jobs_per_replica, plan.warmup,
                               batch, replica_seed, rank_speeds);
      },
      [](Accum& into, const Accum& from) { into.merge(from); });

  return assemble(acc);
}

BoundSimResult simulate_bound_model_adaptive(
    const sqd::BoundModel& model, const AdaptivePlan& plan,
    util::ThreadBudget& budget, const std::vector<double>& rank_speeds) {
  validate_rank_speeds(model, rank_speeds);
  plan.validate();
  const std::uint64_t batch = plan.batch_size(0);

  AdaptiveReport report;
  const Accum acc = run_replicas_adaptive<Accum>(
      plan, budget,
      [&](int /*global_replica*/, std::uint64_t seed, std::uint64_t steps,
          std::uint64_t warmup) {
        return run_one_replica(model, steps, warmup, batch, seed,
                               rank_speeds);
      },
      [](Accum& into, const Accum& from) { into.merge(from); },
      [&](const Accum& merged) {
        return merged.waiting_ci.half_width_or_infinity(plan.confidence);
      },
      report);

  BoundSimResult out = assemble(acc);
  out.adaptive = report;
  return out;
}

}  // namespace rlb::sim
