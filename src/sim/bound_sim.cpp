#include "sim/bound_sim.h"

#include <vector>

#include "sim/rng.h"
#include "statespace/state.h"
#include "util/require.h"

namespace rlb::sim {

BoundSimResult simulate_bound_model(const sqd::BoundModel& model,
                                    std::uint64_t steps,
                                    std::uint64_t warmup_steps,
                                    std::uint64_t seed) {
  RLB_REQUIRE(warmup_steps < steps, "warmup must be below step count");
  Rng rng(seed);
  statespace::State state(static_cast<std::size_t>(model.params().N), 0);

  BoundSimResult out;
  double weight_total = 0.0;
  double waiting_acc = 0.0;
  double jobs_acc = 0.0;

  for (std::uint64_t step = 0; step < steps; ++step) {
    const std::vector<sqd::Transition> ts = model.transitions(state);
    double total_rate = 0.0;
    for (const auto& t : ts) total_rate += t.rate;
    RLB_ASSERT(total_rate > 0.0, "absorbing state in bound model");

    if (step >= warmup_steps) {
      const double hold = 1.0 / total_rate;  // expected holding time
      weight_total += hold;
      waiting_acc += hold * statespace::waiting_jobs(state);
      jobs_acc += hold * statespace::total_jobs(state);
      out.max_gap_seen =
          std::max(out.max_gap_seen, static_cast<double>(statespace::gap(state)));
    }

    double u = rng.next_double() * total_rate;
    std::size_t chosen = ts.size() - 1;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      u -= ts[i].rate;
      if (u <= 0.0) {
        chosen = i;
        break;
      }
    }
    state = ts[chosen].to;
  }

  out.mean_waiting_jobs = waiting_acc / weight_total;
  out.mean_jobs = jobs_acc / weight_total;
  out.steps = steps;
  return out;
}

}  // namespace rlb::sim
