#include "sim/trace.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/require.h"

namespace rlb::sim {

namespace {

[[noreturn]] void bad_line(int line, const std::string& what,
                           const std::string& text) {
  std::ostringstream os;
  os << "trace line " << line << ": " << what << " — \"" << text << "\"";
  throw std::invalid_argument(os.str());
}

/// Strip a trailing comment and surrounding whitespace; commas count as
/// field separators so CSV rows parse like whitespace-separated ones.
std::string clean_line(const std::string& raw) {
  std::string s = raw.substr(0, raw.find('#'));
  for (char& c : s)
    if (c == ',' || c == '\t' || c == '\r') c = ' ';
  const auto first = s.find_first_not_of(' ');
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(' ');
  return s.substr(first, last - first + 1);
}

/// Parse one finite double; rejects partial parses ("1.5x") and NaN/inf.
bool parse_finite(const std::string& token, double& out) {
  std::size_t used = 0;
  try {
    out = std::stod(token, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == token.size() && std::isfinite(out);
}

}  // namespace

std::uint64_t Trace::total_jobs() const {
  std::uint64_t total = 0;
  for (const TraceEntry& e : entries) total += e.batch;
  return total;
}

double Trace::mean_rate() const {
  validate();
  return static_cast<double>(total_jobs()) / horizon;
}

void Trace::validate() const {
  RLB_REQUIRE(!entries.empty(), "trace holds no arrivals");
  double prev = 0.0;
  for (const TraceEntry& e : entries) {
    RLB_REQUIRE(std::isfinite(e.time) && e.time >= 0.0,
                "trace timestamps must be finite and non-negative");
    RLB_REQUIRE(e.time >= prev, "trace timestamps must be non-decreasing");
    RLB_REQUIRE(e.batch >= 1, "trace batch sizes must be >= 1");
    prev = e.time;
  }
  RLB_REQUIRE(std::isfinite(horizon) && horizon > 0.0,
              "trace horizon must be finite and positive");
  RLB_REQUIRE(horizon >= entries.back().time,
              "trace horizon must cover the last timestamp");
}

Trace parse_trace(std::istream& in) {
  Trace trace;
  double horizon = -1.0;  // unset; defaults to the last timestamp
  std::string raw;
  int line_no = 0;
  double prev_time = 0.0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;

    if (line.rfind("horizon", 0) == 0) {
      const auto eq = line.find('=');
      if (eq == std::string::npos)
        bad_line(line_no, "horizon directive needs horizon=<value>", raw);
      double value = 0.0;
      if (!parse_finite(clean_line(line.substr(eq + 1)), value) ||
          value <= 0.0)
        bad_line(line_no, "horizon must be a finite positive number", raw);
      horizon = value;
      continue;
    }

    std::istringstream fields(line);
    std::string time_tok, batch_tok, extra_tok;
    fields >> time_tok >> batch_tok >> extra_tok;
    if (!extra_tok.empty())
      bad_line(line_no, "trailing field (expected <time> [<batch>])", raw);

    double time = 0.0;
    if (!parse_finite(time_tok, time))
      bad_line(line_no, "timestamp is not a finite number", raw);
    if (time < 0.0) bad_line(line_no, "timestamp is negative", raw);
    if (time < prev_time)
      bad_line(line_no, "timestamps must be non-decreasing", raw);
    prev_time = time;

    std::uint32_t batch = 1;
    if (!batch_tok.empty()) {
      double b = 0.0;
      if (!parse_finite(batch_tok, b) || b != std::floor(b) || b < 1.0 ||
          b > static_cast<double>(std::numeric_limits<std::uint32_t>::max()))
        bad_line(line_no, "batch must be an integer >= 1", raw);
      batch = static_cast<std::uint32_t>(b);
    }
    trace.entries.push_back(TraceEntry{time, batch});
  }
  RLB_REQUIRE(!trace.entries.empty(), "trace holds no arrivals");
  trace.horizon = horizon > 0.0 ? horizon : trace.entries.back().time;
  trace.validate();
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  RLB_REQUIRE(in.good(), "cannot open trace file: " + path);
  try {
    return parse_trace(in);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void write_trace(std::ostream& out, const Trace& trace) {
  trace.validate();
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  if (trace.horizon != trace.entries.back().time)
    out << "horizon=" << trace.horizon << '\n';
  for (const TraceEntry& e : trace.entries)
    out << e.time << ' ' << e.batch << '\n';
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  RLB_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  write_trace(out, trace);
}

}  // namespace rlb::sim
