#include "sim/stats.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "util/require.h"
#include "util/splitmix.h"

namespace rlb::sim {

void StreamingMoments::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingMoments::merge(const StreamingMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingMoments::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

MomentsState StreamingMoments::state() const {
  return MomentsState{count_, mean_, m2_, min_, max_};
}

StreamingMoments StreamingMoments::from_state(const MomentsState& s) {
  StreamingMoments out;
  out.count_ = s.count;
  out.mean_ = s.mean;
  out.m2_ = s.m2;
  out.min_ = s.min;
  out.max_ = s.max;
  return out;
}

BatchMeans::BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size) {
  RLB_REQUIRE(batch_size >= 1, "batch size must be positive");
}

void BatchMeans::add(double x) {
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    batch_means_.add(batch_sum_ / static_cast<double>(batch_size_));
    in_batch_ = 0;
    batch_sum_ = 0.0;
  }
}

void BatchMeans::merge(const BatchMeans& other) {
  RLB_REQUIRE(batch_size_ == other.batch_size_,
              "cannot merge BatchMeans with different batch sizes");
  batch_means_.merge(other.batch_means_);
}

std::uint64_t BatchMeans::completed_batches() const {
  return batch_means_.count();
}

double BatchMeans::mean() const { return batch_means_.mean(); }

double BatchMeans::half_width(double confidence) const {
  const std::uint64_t b = batch_means_.count();
  if (b < 2) return 0.0;
  return t_quantile(confidence, b - 1) * batch_means_.stddev() /
         std::sqrt(static_cast<double>(b));
}

double BatchMeans::half_width_or_infinity(double confidence) const {
  if (completed_batches() < 2)
    return std::numeric_limits<double>::infinity();
  return half_width(confidence);
}

BatchMeansState BatchMeans::state() const {
  return BatchMeansState{batch_size_, in_batch_, batch_sum_,
                         batch_means_.state()};
}

BatchMeans BatchMeans::from_state(const BatchMeansState& s) {
  BatchMeans out(s.batch_size);
  out.in_batch_ = s.in_batch;
  out.batch_sum_ = s.batch_sum;
  out.batch_means_ = StreamingMoments::from_state(s.batch_means);
  return out;
}

WeightedBatchMeans::WeightedBatchMeans(std::uint64_t batch_size)
    : batch_size_(batch_size) {
  RLB_REQUIRE(batch_size >= 1, "batch size must be positive");
}

void WeightedBatchMeans::add(double x, double weight) {
  batch_wsum_ += weight;
  batch_wxsum_ += weight * x;
  if (++in_batch_ == batch_size_) {
    // Zero total weight cannot happen in the simulators (holding times
    // are positive), but guard the division anyway.
    batch_stats_.add(batch_wsum_ > 0.0 ? batch_wxsum_ / batch_wsum_ : 0.0);
    in_batch_ = 0;
    batch_wsum_ = 0.0;
    batch_wxsum_ = 0.0;
  }
}

void WeightedBatchMeans::merge(const WeightedBatchMeans& other) {
  RLB_REQUIRE(batch_size_ == other.batch_size_,
              "cannot merge WeightedBatchMeans with different batch sizes");
  batch_stats_.merge(other.batch_stats_);
}

std::uint64_t WeightedBatchMeans::completed_batches() const {
  return batch_stats_.count();
}

double WeightedBatchMeans::mean() const { return batch_stats_.mean(); }

double WeightedBatchMeans::half_width(double confidence) const {
  const std::uint64_t b = batch_stats_.count();
  if (b < 2) return 0.0;
  return t_quantile(confidence, b - 1) * batch_stats_.stddev() /
         std::sqrt(static_cast<double>(b));
}

double WeightedBatchMeans::half_width_or_infinity(double confidence) const {
  if (completed_batches() < 2)
    return std::numeric_limits<double>::infinity();
  return half_width(confidence);
}

ReservoirQuantiles::ReservoirQuantiles(std::size_t capacity,
                                       std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed * 0x9e3779b97f4a7c15ull + 1) {
  RLB_REQUIRE(capacity >= 1, "reservoir capacity must be positive");
  sample_.reserve(capacity);
}

std::uint64_t ReservoirQuantiles::next_random() {
  return util::splitmix64_next(rng_state_);
}

void ReservoirQuantiles::add(double x) {
  ++seen_;
  sorted_ = false;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  const std::uint64_t slot = next_random() % seen_;
  if (slot < capacity_) sample_[slot] = x;
}

void ReservoirQuantiles::merge(const ReservoirQuantiles& other) {
  RLB_REQUIRE(capacity_ == other.capacity_,
              "cannot merge reservoirs with different capacities");
  if (other.seen_ == 0) return;
  sorted_ = false;
  if (seen_ == 0) {
    seen_ = other.seen_;
    sample_ = other.sample_;
    rng_state_ ^= other.rng_state_ * 0x9e3779b97f4a7c15ull + 1;
    return;
  }
  // A reservoir shorter than its capacity holds its whole stream, so two
  // such reservoirs that fit together concatenate exactly.
  if (seen_ == sample_.size() && other.seen_ == other.sample_.size() &&
      sample_.size() + other.sample_.size() <= capacity_) {
    sample_.insert(sample_.end(), other.sample_.begin(),
                   other.sample_.end());
    seen_ += other.seen_;
    return;
  }
  // Weighted without-replacement subsample of the union: each retained
  // element stands for seen/|sample| stream items, so a slot is filled
  // from the source whose remaining represented mass wins a proportional
  // coin flip, then a uniform element of that source is consumed.
  std::vector<double> a = std::move(sample_);
  std::vector<double> b = other.sample_;
  const double mass_a =
      static_cast<double>(seen_) / static_cast<double>(a.size());
  const double mass_b =
      static_cast<double>(other.seen_) / static_cast<double>(b.size());
  rng_state_ ^= other.rng_state_ * 0x9e3779b97f4a7c15ull + 1;
  sample_.clear();
  const std::size_t target = std::min(capacity_, a.size() + b.size());
  while (sample_.size() < target) {
    const double wa = mass_a * static_cast<double>(a.size());
    const double wb = mass_b * static_cast<double>(b.size());
    const double u = static_cast<double>(next_random() >> 11) *
                     0x1.0p-53 * (wa + wb);
    auto& src = (b.empty() || (!a.empty() && u < wa)) ? a : b;
    const std::size_t idx =
        static_cast<std::size_t>(next_random() % src.size());
    sample_.push_back(src[idx]);
    src[idx] = src.back();
    src.pop_back();
  }
  seen_ += other.seen_;
}

ReservoirState ReservoirQuantiles::state() const {
  return ReservoirState{static_cast<std::uint64_t>(capacity_), seen_,
                        rng_state_, sample_};
}

ReservoirQuantiles ReservoirQuantiles::from_state(const ReservoirState& s) {
  ReservoirQuantiles out(static_cast<std::size_t>(s.capacity));
  RLB_REQUIRE(s.sample.size() <= s.capacity,
              "reservoir state holds more samples than its capacity");
  out.seen_ = s.seen;
  out.rng_state_ = s.rng_state;  // overwrite the seed-derived default
  out.sample_ = s.sample;
  return out;
}

double ReservoirQuantiles::quantile(double q) const {
  RLB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  RLB_REQUIRE(!sample_.empty(), "quantile of empty stream");
  if (!sorted_) {
    scratch_ = sample_;
    std::sort(scratch_.begin(), scratch_.end());
    sorted_ = true;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(scratch_.size() - 1) + 0.5);
  return scratch_[std::min(rank, scratch_.size() - 1)];
}

namespace {

/// One confidence level's clamped lookup: exact entries for df = 1..30,
/// then the conventional 30 < df < 60 and 60 <= df < 120 bands, then the
/// normal quantile.
struct TQuantileTable {
  std::array<double, 31> exact;  // index = df; [0] unused
  double below_60;
  double below_120;
  double normal;

  [[nodiscard]] double lookup(std::uint64_t df) const {
    if (df == 0) return exact[1];
    if (df < exact.size()) return exact[df];
    if (df < 60) return below_60;
    if (df < 120) return below_120;
    return normal;
  }
};

constexpr TQuantileTable kT90 = {
    {0.0,   6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895,
     1.860, 1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753,
     1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714,
     1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697},
    1.68,
    1.66,
    1.645};

constexpr TQuantileTable kT95 = {
    {0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
     2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
     2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
     2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042},
    2.00,
    1.98,
    1.96};

constexpr TQuantileTable kT99 = {
    {0.0,   63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499,
     3.355, 3.250,  3.169, 3.106, 3.055, 3.012, 2.977, 2.947,
     2.921, 2.898,  2.878, 2.861, 2.845, 2.831, 2.819, 2.807,
     2.797, 2.787,  2.779, 2.771, 2.763, 2.756, 2.750},
    2.66,
    2.62,
    2.576};

}  // namespace

double t_quantile(double confidence, std::uint64_t df) {
  if (confidence == 0.90) return kT90.lookup(df);
  if (confidence == 0.95) return kT95.lookup(df);
  if (confidence == 0.99) return kT99.lookup(df);
  throw std::invalid_argument(
      "unsupported confidence level (the t-quantile table covers 0.90, "
      "0.95, 0.99)");
}

}  // namespace rlb::sim
