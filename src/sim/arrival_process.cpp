#include "sim/arrival_process.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/require.h"
#include "util/table.h"

namespace rlb::sim {

RenewalArrivals::RenewalArrivals(const Distribution& interarrival)
    : interarrival_(interarrival) {}

double RenewalArrivals::next(Rng& rng) { return interarrival_.sample(rng); }

double RenewalArrivals::mean_rate() const {
  return 1.0 / interarrival_.mean();
}

std::string RenewalArrivals::name() const {
  return "renewal(" + interarrival_.name() + ")";
}

MmppArrivals::MmppArrivals(double rate1, double rate2, double switch12,
                           double switch21)
    : rate_{rate1, rate2}, switch_{switch12, switch21} {
  RLB_REQUIRE(rate1 >= 0.0 && rate2 >= 0.0, "rates must be non-negative");
  RLB_REQUIRE(rate1 > 0.0 || rate2 > 0.0, "at least one phase must arrive");
  RLB_REQUIRE(switch12 > 0.0 && switch21 > 0.0,
              "switching rates must be positive");
}

double MmppArrivals::next(Rng& rng) {
  double elapsed = 0.0;
  for (;;) {
    const double arrival_rate = rate_[phase_];
    const double switch_rate = switch_[phase_];
    const double t_switch = rng.exponential(switch_rate);
    if (arrival_rate <= 0.0) {
      elapsed += t_switch;
      phase_ ^= 1;
      continue;
    }
    const double t_arrival = rng.exponential(arrival_rate);
    if (t_arrival <= t_switch) return elapsed + t_arrival;
    elapsed += t_switch;
    phase_ ^= 1;
  }
}

double MmppArrivals::mean_rate() const {
  // Stationary phase probabilities of the modulating chain.
  const double p1 = switch_[1] / (switch_[0] + switch_[1]);
  return p1 * rate_[0] + (1.0 - p1) * rate_[1];
}

std::string MmppArrivals::name() const { return "mmpp2"; }

BatchArrivalProcess::BatchArrivalProcess(std::unique_ptr<ArrivalProcess> base,
                                         double mean_batch, BatchSizes sizes)
    : base_(std::move(base)), mean_batch_(mean_batch), sizes_(sizes) {
  RLB_REQUIRE(base_ != nullptr, "batch process needs a base process");
  RLB_REQUIRE(mean_batch >= 1.0, "mean batch size must be at least 1");
  RLB_REQUIRE(sizes != BatchSizes::Fixed ||
                  mean_batch == std::floor(mean_batch),
              "fixed batch sizes must be integral");
}

BatchArrivalProcess::BatchArrivalProcess(const BatchArrivalProcess& other)
    : base_(other.base_->clone()),
      mean_batch_(other.mean_batch_),
      sizes_(other.sizes_),
      remaining_(other.remaining_) {}

double BatchArrivalProcess::next(Rng& rng) {
  if (remaining_ > 0) {
    --remaining_;
    return 0.0;
  }
  const double gap = base_->next(rng);
  std::uint64_t size = 1;
  if (sizes_ == BatchSizes::Fixed) {
    size = static_cast<std::uint64_t>(mean_batch_);
  } else if (mean_batch_ > 1.0) {
    // Geometric on {1, 2, ...} with success probability p = 1/mean via
    // inversion; u = 0 maps to the minimal batch of 1.
    const double p = 1.0 / mean_batch_;
    const double u = rng.next_double();
    size = 1 + static_cast<std::uint64_t>(
                   std::floor(std::log1p(-u) / std::log1p(-p)));
  }
  remaining_ = size - 1;
  return gap;
}

double BatchArrivalProcess::mean_rate() const {
  return base_->mean_rate() * mean_batch_;
}

std::string BatchArrivalProcess::name() const {
  const std::string kind =
      sizes_ == BatchSizes::Fixed ? "fixed" : "geom";
  std::string mean = util::fmt(mean_batch_, 3);
  mean.erase(mean.find_last_not_of('0') + 1);
  if (mean.back() == '.') mean.pop_back();
  return "batch(" + kind + "," + mean + ")/" + base_->name();
}

void BatchArrivalProcess::reset() {
  remaining_ = 0;
  base_->reset();
}

TraceArrivalProcess::TraceArrivalProcess(Trace trace)
    : trace_(std::make_shared<const Trace>(std::move(trace))) {
  trace_->validate();
}

double TraceArrivalProcess::next(Rng& /*rng*/) {
  if (remaining_ > 0) {
    --remaining_;
    return 0.0;
  }
  const std::size_t n = trace_->entries.size();
  const TraceEntry& entry = trace_->entries[cursor_];
  const double epoch =
      static_cast<double>(cycle_) * trace_->horizon + entry.time;
  const double gap = epoch - prev_epoch_;
  prev_epoch_ = epoch;
  remaining_ = entry.batch - 1;
  if (++cursor_ == n) {
    cursor_ = 0;
    ++cycle_;
  }
  return gap;
}

double TraceArrivalProcess::mean_rate() const { return trace_->mean_rate(); }

std::string TraceArrivalProcess::name() const {
  return "trace(" + std::to_string(trace_->total_jobs()) + " jobs/cycle)";
}

void TraceArrivalProcess::reset() {
  cursor_ = 0;
  cycle_ = 0;
  remaining_ = 0;
  prev_epoch_ = 0.0;
}

MmppArrivalProcess::MmppArrivalProcess(std::vector<double> rates,
                                       std::vector<double> holds)
    : rates_(std::move(rates)), holds_(std::move(holds)) {
  RLB_REQUIRE(!rates_.empty(), "mmpp needs at least one phase");
  RLB_REQUIRE(rates_.size() == holds_.size(),
              "mmpp needs one holding time per phase");
  double max_rate = 0.0;
  for (double r : rates_) {
    RLB_REQUIRE(r >= 0.0 && std::isfinite(r),
                "mmpp phase rates must be finite and non-negative");
    max_rate = std::max(max_rate, r);
  }
  RLB_REQUIRE(max_rate > 0.0, "at least one mmpp phase must arrive");
  for (double h : holds_)
    RLB_REQUIRE(h > 0.0 && std::isfinite(h),
                "mmpp phase holding times must be finite and positive");
}

double MmppArrivalProcess::next(Rng& rng) {
  // Competing exponentials, exactly like the two-phase MmppArrivals: in
  // each phase the next arrival (rate lambda_i) races the phase switch
  // (rate 1 / holds_i); a lost race advances the clock and the phase.
  double elapsed = 0.0;
  for (;;) {
    const double arrival_rate = rates_[phase_];
    const double switch_rate = 1.0 / holds_[phase_];
    const double t_switch = rng.exponential(switch_rate);
    if (arrival_rate <= 0.0) {
      elapsed += t_switch;
      phase_ = (phase_ + 1) % rates_.size();
      continue;
    }
    const double t_arrival = rng.exponential(arrival_rate);
    if (t_arrival <= t_switch) return elapsed + t_arrival;
    elapsed += t_switch;
    phase_ = (phase_ + 1) % rates_.size();
  }
}

double MmppArrivalProcess::mean_rate() const {
  // Cyclic phases: the chain spends holds_[i] per cycle in phase i, so
  // the stationary phase weights are holds_[i] / sum(holds).
  double weighted = 0.0, total = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    weighted += rates_[i] * holds_[i];
    total += holds_[i];
  }
  return weighted / total;
}

std::string MmppArrivalProcess::name() const {
  return "mmpp" + std::to_string(rates_.size());
}

SinusoidalArrivalProcess::SinusoidalArrivalProcess(double lambda0,
                                                   double amplitude,
                                                   double period)
    : lambda0_(lambda0), amplitude_(amplitude), period_(period) {
  RLB_REQUIRE(lambda0 > 0.0 && std::isfinite(lambda0),
              "base rate lambda0 must be finite and positive");
  RLB_REQUIRE(amplitude >= 0.0 && amplitude <= 1.0,
              "amplitude must be in [0, 1] (rates stay non-negative)");
  RLB_REQUIRE(period > 0.0 && std::isfinite(period),
              "period must be finite and positive");
}

double SinusoidalArrivalProcess::rate_at(double t) const {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return lambda0_ * (1.0 + amplitude_ * std::sin(kTwoPi * t / period_));
}

double SinusoidalArrivalProcess::next(Rng& rng) {
  // Thinning (Lewis & Shedler): candidates from a homogeneous Poisson at
  // the peak rate; accept with probability lambda(t) / peak. The draw
  // order — candidate gap, then accept uniform — is fixed, so the stream
  // is a pure function of the seed.
  const double peak = lambda0_ * (1.0 + amplitude_);
  const double start = clock_;
  for (;;) {
    clock_ += rng.exponential(peak);
    if (rng.next_double() * peak < rate_at(clock_))
      return clock_ - start;
  }
}

std::string SinusoidalArrivalProcess::name() const { return "sinusoidal"; }

MmppArrivals MmppArrivals::bursty(double mean_rate, double burst_factor,
                                  double hold) {
  RLB_REQUIRE(mean_rate > 0.0, "mean rate must be positive");
  RLB_REQUIRE(burst_factor > 1.0, "burst factor must exceed 1");
  RLB_REQUIRE(hold > 0.0, "holding time must be positive");
  // Symmetric holding times: phases alternate every `hold` on average, so
  // rates (b*m, (2-b)*m) average to m; clamp the slow phase at 0.
  const double fast = burst_factor * mean_rate;
  const double slow = std::max(0.0, (2.0 - burst_factor) * mean_rate);
  // With asymmetric residual: adjust slow-phase holding so the mean is
  // exact even when clamped: p_fast * fast + (1-p_fast) * slow = mean.
  if (slow == 0.0) {
    // p_fast = mean / fast = 1 / burst_factor; holding times in ratio
    // p_fast : (1 - p_fast) with total scale `hold`.
    const double p_fast = 1.0 / burst_factor;
    const double s_fast = 1.0 / (hold * p_fast * 2.0);
    const double s_slow = 1.0 / (hold * (1.0 - p_fast) * 2.0);
    return MmppArrivals(fast, 0.0, s_fast, s_slow);
  }
  return MmppArrivals(fast, slow, 1.0 / hold, 1.0 / hold);
}

}  // namespace rlb::sim
