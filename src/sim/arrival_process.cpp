#include "sim/arrival_process.h"

#include <cmath>
#include <limits>

#include "util/require.h"
#include "util/table.h"

namespace rlb::sim {

RenewalArrivals::RenewalArrivals(const Distribution& interarrival)
    : interarrival_(interarrival) {}

double RenewalArrivals::next(Rng& rng) { return interarrival_.sample(rng); }

double RenewalArrivals::mean_rate() const {
  return 1.0 / interarrival_.mean();
}

std::string RenewalArrivals::name() const {
  return "renewal(" + interarrival_.name() + ")";
}

MmppArrivals::MmppArrivals(double rate1, double rate2, double switch12,
                           double switch21)
    : rate_{rate1, rate2}, switch_{switch12, switch21} {
  RLB_REQUIRE(rate1 >= 0.0 && rate2 >= 0.0, "rates must be non-negative");
  RLB_REQUIRE(rate1 > 0.0 || rate2 > 0.0, "at least one phase must arrive");
  RLB_REQUIRE(switch12 > 0.0 && switch21 > 0.0,
              "switching rates must be positive");
}

double MmppArrivals::next(Rng& rng) {
  double elapsed = 0.0;
  for (;;) {
    const double arrival_rate = rate_[phase_];
    const double switch_rate = switch_[phase_];
    const double t_switch = rng.exponential(switch_rate);
    if (arrival_rate <= 0.0) {
      elapsed += t_switch;
      phase_ ^= 1;
      continue;
    }
    const double t_arrival = rng.exponential(arrival_rate);
    if (t_arrival <= t_switch) return elapsed + t_arrival;
    elapsed += t_switch;
    phase_ ^= 1;
  }
}

double MmppArrivals::mean_rate() const {
  // Stationary phase probabilities of the modulating chain.
  const double p1 = switch_[1] / (switch_[0] + switch_[1]);
  return p1 * rate_[0] + (1.0 - p1) * rate_[1];
}

std::string MmppArrivals::name() const { return "mmpp2"; }

BatchArrivalProcess::BatchArrivalProcess(std::unique_ptr<ArrivalProcess> base,
                                         double mean_batch, BatchSizes sizes)
    : base_(std::move(base)), mean_batch_(mean_batch), sizes_(sizes) {
  RLB_REQUIRE(base_ != nullptr, "batch process needs a base process");
  RLB_REQUIRE(mean_batch >= 1.0, "mean batch size must be at least 1");
  RLB_REQUIRE(sizes != BatchSizes::Fixed ||
                  mean_batch == std::floor(mean_batch),
              "fixed batch sizes must be integral");
}

BatchArrivalProcess::BatchArrivalProcess(const BatchArrivalProcess& other)
    : base_(other.base_->clone()),
      mean_batch_(other.mean_batch_),
      sizes_(other.sizes_),
      remaining_(other.remaining_) {}

double BatchArrivalProcess::next(Rng& rng) {
  if (remaining_ > 0) {
    --remaining_;
    return 0.0;
  }
  const double gap = base_->next(rng);
  std::uint64_t size = 1;
  if (sizes_ == BatchSizes::Fixed) {
    size = static_cast<std::uint64_t>(mean_batch_);
  } else if (mean_batch_ > 1.0) {
    // Geometric on {1, 2, ...} with success probability p = 1/mean via
    // inversion; u = 0 maps to the minimal batch of 1.
    const double p = 1.0 / mean_batch_;
    const double u = rng.next_double();
    size = 1 + static_cast<std::uint64_t>(
                   std::floor(std::log1p(-u) / std::log1p(-p)));
  }
  remaining_ = size - 1;
  return gap;
}

double BatchArrivalProcess::mean_rate() const {
  return base_->mean_rate() * mean_batch_;
}

std::string BatchArrivalProcess::name() const {
  const std::string kind =
      sizes_ == BatchSizes::Fixed ? "fixed" : "geom";
  std::string mean = util::fmt(mean_batch_, 3);
  mean.erase(mean.find_last_not_of('0') + 1);
  if (mean.back() == '.') mean.pop_back();
  return "batch(" + kind + "," + mean + ")/" + base_->name();
}

void BatchArrivalProcess::reset() {
  remaining_ = 0;
  base_->reset();
}

MmppArrivals MmppArrivals::bursty(double mean_rate, double burst_factor,
                                  double hold) {
  RLB_REQUIRE(mean_rate > 0.0, "mean rate must be positive");
  RLB_REQUIRE(burst_factor > 1.0, "burst factor must exceed 1");
  RLB_REQUIRE(hold > 0.0, "holding time must be positive");
  // Symmetric holding times: phases alternate every `hold` on average, so
  // rates (b*m, (2-b)*m) average to m; clamp the slow phase at 0.
  const double fast = burst_factor * mean_rate;
  const double slow = std::max(0.0, (2.0 - burst_factor) * mean_rate);
  // With asymmetric residual: adjust slow-phase holding so the mean is
  // exact even when clamped: p_fast * fast + (1-p_fast) * slow = mean.
  if (slow == 0.0) {
    // p_fast = mean / fast = 1 / burst_factor; holding times in ratio
    // p_fast : (1 - p_fast) with total scale `hold`.
    const double p_fast = 1.0 / burst_factor;
    const double s_fast = 1.0 / (hold * p_fast * 2.0);
    const double s_slow = 1.0 / (hold * (1.0 - p_fast) * 2.0);
    return MmppArrivals(fast, 0.0, s_fast, s_slow);
  }
  return MmppArrivals(fast, slow, 1.0 / hold, 1.0 / hold);
}

}  // namespace rlb::sim
