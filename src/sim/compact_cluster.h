// Compressed-state cluster engine for symmetric dispatch policies.
//
// The legacy engine (cluster_sim.cpp) tracks every server's job deque and
// pays O(N) per arrival that lands on an idle server (ordered I-queue
// erase) plus O(log N) per heap operation. This engine stores the
// queue-length HISTOGRAM — a by-level directory of exchangeable server
// handles (sim/level_directory.h) — so every state update a dispatch
// decision needs is O(1), the event calendar is O(1) amortized, and the
// per-job cost stays flat as the fleet grows to N = 10^6 (the
// fleet_scaling scenario measures this).
//
// The compression is semantic, not just spatial: policies see the cluster
// only through queue-length information — counts per level, the idle FIFO
// head, levels of sampled handles — and nothing per-server beyond that.
// The hot path hands policies the concrete LevelDirectory
// (Policy::select_direct), so the per-event dispatch pays one virtual
// call instead of one per directory query. For the paper's policies the
// engine replays the legacy event loop draw-for-draw, so a replica here
// is BIT-IDENTICAL to the legacy engine under the same seed
// (tests/test_compact_cluster.cpp pins this).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/arrival_process.h"
#include "sim/calendar_queue.h"
#include "sim/cluster_accum.h"
#include "sim/cluster_sim.h"
#include "sim/distributions.h"
#include "sim/level_directory.h"
#include "sim/policy.h"
#include "sim/rng.h"

namespace rlb::sim {

/// One replica's event loop over compressed state. Mirrors the legacy
/// engine statement for statement — same RNG draw order (service sample,
/// then policy draws, then next interarrival), same (time, server) event
/// ordering, same statistics accumulation order — which is what makes the
/// two engines bit-identical for symmetric policies.
///
/// Job storage is laid out for locality, not pooled uniformly: the job a
/// server is CURRENTLY serving lives inline in that server's own
/// cache-line slot (slot_), so the arrival-to-idle-server and departure
/// paths — the only paths most jobs ever take — touch one line of job
/// state and no shared pool. Only jobs queued BEHIND the head go to the
/// free-list pool, chained into the slot's intrusive FIFO. The event loop
/// also stages the next event's memory while finishing the current one
/// (the calendar's top event names the next departure's server; JIQ names
/// the next arrival's), so the random-access misses overlap event
/// processing instead of serializing in front of it.
class CompactClusterEngine {
 public:
  CompactClusterEngine(const ClusterConfig& cfg, std::uint64_t jobs,
                       std::uint64_t warmup, std::uint64_t batch,
                       std::uint64_t seed, Policy& policy,
                       ArrivalProcess& arrivals, const Distribution& service);

  /// The directory the policies dispatch against; exposed for tests.
  [[nodiscard]] const LevelDirectory& directory() const { return dir_; }

  ClusterAccum run();

 private:
  /// In-flight job payload.
  struct Job {
    std::uint64_t index = 0;
    double arrival_time = 0.0;
    double service_time = 0.0;
  };

  /// Pooled record for jobs waiting behind a server's head job; `next`
  /// chains the per-server FIFO or the free list.
  struct PoolRec {
    Job job;
    std::int32_t next = -1;
  };

  /// One cache line per server: the head (in-service) job inline — valid
  /// iff the server is busy, i.e. its directory level is > 0 — plus the
  /// FIFO links into the pool for any jobs queued behind it.
  struct alignas(64) ServerSlot {
    Job head;
    std::int32_t next = -1;  ///< pool slot of the 2nd job, -1 if none
    std::int32_t tail = -1;  ///< pool slot of the last queued job
  };
  static_assert(sizeof(ServerSlot) == 64, "one cache line per server");

  std::int32_t acquire_slot();
  void release_slot(std::int32_t slot);
  void push_job(int server, const Job& job);
  Job pop_job(int server);

  // By value: replicas run on worker threads and adaptive runs re-enter
  // with short-lived configs, so the engine must not hold a reference
  // into caller storage.
  ClusterConfig cfg_;
  std::uint64_t jobs_;
  std::uint64_t warmup_;
  std::uint64_t batch_;
  std::uint64_t seed_;
  Policy& policy_;
  ArrivalProcess& arrivals_;
  const Distribution& service_;
  Rng rng_;
  /// Topology observable this run (sim/topology.h gating rule).
  bool rack_mode_;
  int per_rack_;

  LevelDirectory dir_;
  CalendarQueue calendar_;      ///< pending departures, one per busy server
  std::vector<ServerSlot> slot_;  ///< per-server head job + FIFO links
  std::vector<PoolRec> pool_;     ///< jobs queued behind a head
  std::int32_t free_head_ = -1;
  double now_ = 0.0;
};

}  // namespace rlb::sim
