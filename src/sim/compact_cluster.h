// Compressed-state cluster engine for symmetric dispatch policies.
//
// The legacy engine (cluster_sim.cpp) tracks every server's job deque and
// pays O(N) per arrival that lands on an idle server (ordered I-queue
// erase) plus O(log N) per heap operation. This engine stores the
// queue-length HISTOGRAM — a by-level directory of exchangeable server
// handles — so every state update a dispatch decision needs is O(1), the
// event calendar is O(1) amortized, and the per-job cost stays flat as
// the fleet grows to N = 10^6 (the fleet_scaling scenario measures this).
//
// The compression is semantic, not just spatial: policies see the cluster
// only through QueueHistogramView (policy.h), which exposes exchangeable
// queries — counts per level, the idle FIFO head, levels of sampled
// handles — and nothing per-server beyond that. For the paper's policies
// the engine replays the legacy event loop draw-for-draw, so a replica
// here is BIT-IDENTICAL to the legacy engine under the same seed
// (tests/test_compact_cluster.cpp pins this).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/arrival_process.h"
#include "sim/calendar_queue.h"
#include "sim/cluster_accum.h"
#include "sim/cluster_sim.h"
#include "sim/distributions.h"
#include "sim/policy.h"
#include "sim/rng.h"

namespace rlb::sim {

/// The queue-length histogram with O(1) updates and O(1) uniform sampling
/// within a level.
///
/// Servers live in a permutation `by_level_` grouped into contiguous
/// blocks, one block per queue length; moving a server between adjacent
/// levels is a swap-to-boundary plus two counter updates. Level-0 servers
/// are additionally threaded onto an intrusive doubly-linked FIFO in
/// became-idle order (server-index order at time zero), reproducing the
/// legacy dispatcher's I-queue contract for JIQ — but with O(1) removal
/// where the legacy vector pays an O(N) ordered erase.
class LevelDirectory {
 public:
  explicit LevelDirectory(int servers);

  [[nodiscard]] int servers() const { return n_; }
  [[nodiscard]] int max_level() const { return max_level_; }
  [[nodiscard]] int count_at(int level) const;
  [[nodiscard]] int idle_count() const { return count_[0]; }
  [[nodiscard]] int idle_head() const { return idle_head_; }
  [[nodiscard]] int level_of(int server) const { return level_[server]; }

  /// Uniform among the count_at(level) servers at `level` (must be
  /// non-empty); exactly one uniform_int draw.
  [[nodiscard]] int sample_at_level(int level, Rng& rng) const;

  /// The i-th server of the level's block, 0 <= i < count_at(level).
  /// Block order is an implementation detail (it changes as servers move
  /// between levels); exposed for tests.
  [[nodiscard]] int at(int level, int i) const;

  /// One job joined `server`: its level rises by one. Removes the server
  /// from the idle FIFO when it leaves level 0.
  void increment(int server);

  /// One job departed `server`: its level drops by one (must be >= 1).
  /// Appends the server to the idle FIFO tail when it reaches level 0.
  void decrement(int server);

 private:
  void ensure_level(int level);
  void swap_slots(int a, int b);
  void idle_remove(int server);
  void idle_append(int server);

  int n_;
  int max_level_ = 0;
  std::vector<int> level_;     ///< queue length per server
  std::vector<int> by_level_;  ///< servers grouped by level, blocks ascending
  std::vector<int> pos_;       ///< inverse permutation of by_level_
  std::vector<int> count_;     ///< block sizes; count_[k] = #servers at k
  /// Block starts; invariant: offset_[k+1] == offset_[k] + count_[k].
  std::vector<int> offset_;
  std::vector<int> idle_next_, idle_prev_;  ///< intrusive idle FIFO links
  int idle_head_ = -1, idle_tail_ = -1;
};

/// One replica's event loop over compressed state. Mirrors the legacy
/// engine statement for statement — same RNG draw order (service sample,
/// then policy draws, then next interarrival), same (time, server) event
/// ordering, same statistics accumulation order — which is what makes the
/// two engines bit-identical for symmetric policies. Job records live in
/// a free-list pool threaded into per-server intrusive FIFOs, so the
/// steady-state loop allocates nothing.
class CompactClusterEngine final : public QueueHistogramView {
 public:
  CompactClusterEngine(const ClusterConfig& cfg, std::uint64_t jobs,
                       std::uint64_t warmup, std::uint64_t batch,
                       std::uint64_t seed, Policy& policy,
                       ArrivalProcess& arrivals, const Distribution& service);

  // QueueHistogramView: the engine is the state the policy inspects.
  [[nodiscard]] int servers() const override { return cfg_.servers; }
  [[nodiscard]] int max_level() const override { return dir_.max_level(); }
  [[nodiscard]] int count_at(int level) const override {
    return dir_.count_at(level);
  }
  [[nodiscard]] int idle_count() const override { return dir_.idle_count(); }
  [[nodiscard]] int idle_head() const override { return dir_.idle_head(); }
  [[nodiscard]] int level_of(int server) const override {
    return dir_.level_of(server);
  }
  [[nodiscard]] int sample_at_level(int level, Rng& rng) const override {
    return dir_.sample_at_level(level, rng);
  }

  ClusterAccum run();

 private:
  /// Pooled job record; `next` chains the per-server FIFO or the free
  /// list.
  struct JobRec {
    std::uint64_t index = 0;
    double arrival_time = 0.0;
    double service_time = 0.0;
    std::int32_t next = -1;
  };

  std::int32_t acquire_slot();
  void release_slot(std::int32_t slot);
  void push_job(int server, const JobRec& rec);
  JobRec pop_job(int server);

  const ClusterConfig& cfg_;
  std::uint64_t jobs_;
  std::uint64_t warmup_;
  std::uint64_t batch_;
  std::uint64_t seed_;
  Policy& policy_;
  ArrivalProcess& arrivals_;
  const Distribution& service_;
  Rng rng_;

  LevelDirectory dir_;
  CalendarQueue calendar_;  ///< pending departures, one per busy server
  std::vector<JobRec> pool_;
  std::int32_t free_head_ = -1;
  std::vector<std::int32_t> fifo_head_, fifo_tail_;  ///< per-server job FIFO
  double now_ = 0.0;
};

}  // namespace rlb::sim
