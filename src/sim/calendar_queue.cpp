#include "sim/calendar_queue.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace rlb::sim {

namespace {

/// The pop order: strictly increasing (time, id), matching the legacy
/// engine's std::greater<> heap over std::pair<double, int>.
bool event_less(double at, std::int32_t aid, double bt, std::int32_t bid) {
  if (at != bt) return at < bt;
  return aid < bid;
}

}  // namespace

CalendarQueue::CalendarQueue(double bucket_width, std::size_t buckets) {
  RLB_REQUIRE(bucket_width > 0.0, "bucket width must be positive");
  RLB_REQUIRE(buckets >= 1, "need at least one bucket");
  width_ = bucket_width;
  buckets_.resize(buckets);
}

double CalendarQueue::abs_bucket(double time) const {
  return std::floor(time / width_);
}

std::size_t CalendarQueue::slot_of(double abs_bucket) const {
  const std::size_t nb = buckets_.size();
  // Resizing doubles/halves, so nb is a power of two on every hot path;
  // mask instead of fmod when the absolute bucket also fits an integer.
  if ((nb & (nb - 1)) == 0 && abs_bucket < 9.0e18)
    return static_cast<std::size_t>(static_cast<std::uint64_t>(abs_bucket)) &
           (nb - 1);
  return static_cast<std::size_t>(
      std::fmod(abs_bucket, static_cast<double>(nb)));
}

void CalendarQueue::insert(const Event& e) {
  Bucket& bucket = buckets_[slot_of(abs_bucket(e.time))];
  if (bucket.count == kInlineCapacity) {
    // Bucket full: park the event on the shared min-heap. No cursor
    // interaction — top/pop always consult the heap head directly.
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(),
                   [](const Event& a, const Event& b) {
                     return event_less(b.time, b.id, a.time, a.id);
                   });
    return;
  }
  bucket.e[bucket.count++] = e;

  // An event behind the scan cursor would otherwise wait a whole year to
  // be seen; pull the cursor back to it.
  const double ab = abs_bucket(e.time);
  if (ab < cursor_bucket_) {
    cursor_bucket_ = ab;
    cursor_ = slot_of(ab);
  }
}

void CalendarQueue::push(double time, std::int32_t id) {
  RLB_REQUIRE(time >= 0.0 && std::isfinite(time),
              "event times must be finite and non-negative");
  if (size_ + 1 > 2 * buckets_.size()) rebuild(2 * buckets_.size());
  insert(Event{time, id});
  ++size_;
}

std::int32_t CalendarQueue::find_inline_min() {
  RLB_ASSERT(inline_size() > 0, "find_inline_min on an empty calendar");
  // Scan at most one full year (every slot once): a bucket's minimum
  // event is due exactly when its absolute bucket number matches the
  // cursor's — the same floor(time / width) the insert used, so no
  // edge-rounding drift between insertion and retrieval is possible.
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
    const Bucket& bucket = buckets_[cursor_];
    if (bucket.count > 0) {
      std::int32_t best = 0;
      for (std::int32_t i = 1; i < bucket.count; ++i)
        if (event_less(bucket.e[i].time, bucket.e[i].id, bucket.e[best].time,
                       bucket.e[best].id))
          best = i;
      if (abs_bucket(bucket.e[best].time) == cursor_bucket_) return best;
    }
    cursor_ = cursor_ + 1 == buckets_.size() ? 0 : cursor_ + 1;
    cursor_bucket_ += 1.0;
  }
  // A whole year with nothing due: every remaining inline event is far
  // in the future. Jump straight to the calendar's minimum.
  reposition();
  const Bucket& bucket = buckets_[cursor_];
  std::int32_t best = 0;
  for (std::int32_t i = 1; i < bucket.count; ++i)
    if (event_less(bucket.e[i].time, bucket.e[i].id, bucket.e[best].time,
                   bucket.e[best].id))
      best = i;
  return best;
}

void CalendarQueue::reposition() {
  const Event* best = nullptr;
  std::size_t best_slot = 0;
  for (std::size_t slot = 0; slot < buckets_.size(); ++slot) {
    const Bucket& bucket = buckets_[slot];
    for (std::int32_t i = 0; i < bucket.count; ++i) {
      const Event& candidate = bucket.e[i];
      if (best == nullptr ||
          event_less(candidate.time, candidate.id, best->time, best->id)) {
        best = &candidate;
        best_slot = slot;
      }
    }
  }
  RLB_ASSERT(best != nullptr, "reposition on an empty calendar");
  cursor_ = best_slot;
  cursor_bucket_ = abs_bucket(best->time);
}

std::pair<double, std::int32_t> CalendarQueue::top() {
  RLB_REQUIRE(size_ > 0, "top on an empty calendar queue");
  if (inline_size() == 0) {
    const Event& e = overflow_.front();
    return {e.time, e.id};
  }
  const std::int32_t idx = find_inline_min();
  const Event& e = buckets_[cursor_].e[idx];
  if (!overflow_.empty()) {
    const Event& h = overflow_.front();
    if (event_less(h.time, h.id, e.time, e.id)) return {h.time, h.id};
  }
  return {e.time, e.id};
}

std::pair<double, std::int32_t> CalendarQueue::pop() {
  RLB_REQUIRE(size_ > 0, "pop on an empty calendar queue");
  Event event;
  bool from_overflow = inline_size() == 0;
  std::int32_t idx = -1;
  if (!from_overflow) {
    idx = find_inline_min();
    event = buckets_[cursor_].e[idx];
    if (!overflow_.empty() &&
        event_less(overflow_.front().time, overflow_.front().id, event.time,
                   event.id))
      from_overflow = true;
  }
  if (from_overflow) {
    event = overflow_.front();
    std::pop_heap(overflow_.begin(), overflow_.end(),
                  [](const Event& a, const Event& b) {
                    return event_less(b.time, b.id, a.time, a.id);
                  });
    overflow_.pop_back();
  } else {
    Bucket& bucket = buckets_[cursor_];
    bucket.e[idx] = bucket.e[bucket.count - 1];
    --bucket.count;
  }
  --size_;
  if (buckets_.size() > 16 && size_ < buckets_.size() / 4)
    rebuild(buckets_.size() / 2);
  return {event.time, event.id};
}

void CalendarQueue::rebuild(std::size_t buckets) {
  scratch_.clear();
  scratch_.reserve(size_);
  for (const Bucket& bucket : buckets_)
    scratch_.insert(scratch_.end(), bucket.e, bucket.e + bucket.count);
  scratch_.insert(scratch_.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();

  // Adapt the width so the events in flight land ~1 per bucket-span:
  // O(1) expected events per bucket in the active window (and almost all
  // of them inside the three inline slots), the property that makes push
  // and pop O(1) amortized. Driven only by the queued events — never by
  // wall-clock — so rebuilds are deterministic.
  if (scratch_.size() >= 2) {
    double lo = scratch_.front().time;
    double hi = scratch_.front().time;
    for (const Event& e : scratch_) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
    const double width = (hi - lo) / static_cast<double>(scratch_.size());
    if (width > 0.0 && std::isfinite(width)) width_ = width;
  }

  buckets_.assign(buckets, Bucket{});
  cursor_ = 0;
  cursor_bucket_ = 0.0;
  for (const Event& e : scratch_) insert(e);
  if (inline_size() > 0) reposition();
}

}  // namespace rlb::sim
