#include "sim/calendar_queue.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace rlb::sim {

namespace {

/// The pop order: strictly increasing (time, id), matching the legacy
/// engine's std::greater<> heap over std::pair<double, int>.
bool event_less(double at, std::int32_t aid, double bt, std::int32_t bid) {
  if (at != bt) return at < bt;
  return aid < bid;
}

}  // namespace

CalendarQueue::CalendarQueue(double bucket_width, std::size_t buckets) {
  RLB_REQUIRE(bucket_width > 0.0, "bucket width must be positive");
  RLB_REQUIRE(buckets >= 1, "need at least one bucket");
  width_ = bucket_width;
  buckets_.resize(buckets);
}

double CalendarQueue::abs_bucket(double time) const {
  return std::floor(time / width_);
}

std::size_t CalendarQueue::slot_of(double abs_bucket) const {
  return static_cast<std::size_t>(
      std::fmod(abs_bucket, static_cast<double>(buckets_.size())));
}

void CalendarQueue::push(double time, std::int32_t id) {
  RLB_REQUIRE(time >= 0.0 && std::isfinite(time),
              "event times must be finite and non-negative");
  if (size_ + 1 > 2 * buckets_.size()) rebuild(2 * buckets_.size());

  auto& bucket = buckets_[slot_of(abs_bucket(time))];
  // Sorted descending by (time, id): back() is the bucket minimum and
  // pop_back removes it in O(1).
  const auto it = std::upper_bound(
      bucket.begin(), bucket.end(), Event{time, id},
      [](const Event& a, const Event& b) {
        return event_less(b.time, b.id, a.time, a.id);  // descending
      });
  bucket.insert(it, Event{time, id});
  ++size_;

  // An event behind the scan cursor would otherwise wait a whole year to
  // be seen; pull the cursor back to it.
  const double ab = abs_bucket(time);
  if (ab < cursor_bucket_) {
    cursor_bucket_ = ab;
    cursor_ = slot_of(ab);
  }
}

const CalendarQueue::Event& CalendarQueue::find_min() {
  RLB_ASSERT(size_ > 0, "find_min on an empty calendar");
  // Scan at most one full year (every slot once): a slot's minimum event
  // is due exactly when its absolute bucket number matches the cursor's
  // — the same floor(time / width) the push used, so no edge-rounding
  // drift between insertion and retrieval is possible.
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
    const auto& bucket = buckets_[cursor_];
    if (!bucket.empty() && abs_bucket(bucket.back().time) == cursor_bucket_)
      return bucket.back();
    cursor_ = cursor_ + 1 == buckets_.size() ? 0 : cursor_ + 1;
    cursor_bucket_ += 1.0;
  }
  // A whole year with nothing due: every remaining event is far in the
  // future. Jump straight to the global minimum.
  reposition();
  return buckets_[cursor_].back();
}

void CalendarQueue::reposition() {
  const Event* best = nullptr;
  std::size_t best_slot = 0;
  for (std::size_t slot = 0; slot < buckets_.size(); ++slot) {
    const auto& bucket = buckets_[slot];
    if (bucket.empty()) continue;
    const Event& candidate = bucket.back();
    if (best == nullptr ||
        event_less(candidate.time, candidate.id, best->time, best->id)) {
      best = &candidate;
      best_slot = slot;
    }
  }
  RLB_ASSERT(best != nullptr, "reposition on an empty calendar");
  cursor_ = best_slot;
  cursor_bucket_ = abs_bucket(best->time);
}

std::pair<double, std::int32_t> CalendarQueue::top() {
  RLB_REQUIRE(size_ > 0, "top on an empty calendar queue");
  const Event& event = find_min();
  return {event.time, event.id};
}

std::pair<double, std::int32_t> CalendarQueue::pop() {
  RLB_REQUIRE(size_ > 0, "pop on an empty calendar queue");
  const Event event = find_min();
  buckets_[cursor_].pop_back();
  --size_;
  if (buckets_.size() > 16 && size_ < buckets_.size() / 4)
    rebuild(buckets_.size() / 2);
  return {event.time, event.id};
}

void CalendarQueue::rebuild(std::size_t buckets) {
  std::vector<Event> events;
  events.reserve(size_);
  for (auto& bucket : buckets_)
    events.insert(events.end(), bucket.begin(), bucket.end());

  // Adapt the width so the events in flight spread over ~3 buckets'
  // worth of span each: O(1) expected events per bucket in the active
  // window, the property that makes push and pop O(1) amortized. Driven
  // only by the queued events — never by wall-clock — so rebuilds are
  // deterministic.
  if (events.size() >= 2) {
    double lo = events.front().time;
    double hi = events.front().time;
    for (const Event& e : events) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
    const double width =
        3.0 * (hi - lo) / static_cast<double>(events.size());
    if (width > 0.0 && std::isfinite(width)) width_ = width;
  }

  buckets_.assign(buckets, {});
  size_ = 0;
  cursor_ = 0;
  cursor_bucket_ = 0.0;
  for (const Event& e : events) push(e.time, e.id);
  if (size_ > 0) reposition();
}

}  // namespace rlb::sim
