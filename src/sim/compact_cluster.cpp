#include "sim/compact_cluster.h"

#include <algorithm>

#include "util/prefetch.h"
#include "util/require.h"

namespace rlb::sim {

CompactClusterEngine::CompactClusterEngine(
    const ClusterConfig& cfg, std::uint64_t jobs, std::uint64_t warmup,
    std::uint64_t batch, std::uint64_t seed, Policy& policy,
    ArrivalProcess& arrivals, const Distribution& service)
    : cfg_(cfg),
      jobs_(jobs),
      warmup_(warmup),
      batch_(batch),
      seed_(seed),
      policy_(policy),
      arrivals_(arrivals),
      service_(service),
      rng_(seed),
      rack_mode_(cfg.topology.racks > 1 &&
                 (cfg.topology.penalized() || policy.locality_aware())),
      per_rack_(cfg.topology.servers_per_rack(cfg.servers)),
      dir_(cfg.servers),
      slot_(cfg.servers) {
  RLB_REQUIRE(policy.symmetric(),
              "compact engine requires a symmetric policy");
  // Per-rack idle FIFOs only when a locality-aware policy will consult
  // them; blind runs (even penalized ones) skip the maintenance cost.
  if (cfg.topology.racks > 1 && policy.locality_aware())
    dir_.arm_racks(cfg.topology.racks);
}

std::int32_t CompactClusterEngine::acquire_slot() {
  if (free_head_ >= 0) {
    const std::int32_t slot = free_head_;
    free_head_ = pool_[slot].next;
    return slot;
  }
  pool_.emplace_back();
  return static_cast<std::int32_t>(pool_.size() - 1);
}

void CompactClusterEngine::release_slot(std::int32_t slot) {
  pool_[slot].next = free_head_;
  free_head_ = slot;
}

void CompactClusterEngine::push_job(int server, const Job& job) {
  ServerSlot& q = slot_[server];
  if (dir_.level_of(server) == 0) {
    // Idle server: the job goes straight into service, inline in the
    // server's own slot — no pool traffic on this path.
    q.head = job;
    q.next = -1;
    q.tail = -1;
    return;
  }
  const std::int32_t slot = acquire_slot();
  pool_[slot].job = job;
  pool_[slot].next = -1;
  if (q.tail >= 0)
    pool_[q.tail].next = slot;
  else
    q.next = slot;
  q.tail = slot;
}

CompactClusterEngine::Job CompactClusterEngine::pop_job(int server) {
  ServerSlot& q = slot_[server];
  const Job done = q.head;
  if (q.next >= 0) {
    // Promote the first queued job into the inline slot; its service
    // time seeds the next departure event right after this return.
    const std::int32_t promoted = q.next;
    const PoolRec rec = pool_[promoted];
    if (rec.next >= 0) util::prefetch(&pool_[rec.next]);
    q.head = rec.job;
    q.next = rec.next;
    if (rec.next < 0) q.tail = -1;
    release_slot(promoted);
  }
  return done;
}

ClusterAccum CompactClusterEngine::run() {
  // Statement-for-statement mirror of the legacy Engine::run — the RNG
  // draw order, event ordering, and statistics accumulation order below
  // must not drift from cluster_sim.cpp, or the engines stop being
  // bit-identical and the equivalence tests fail. The prefetch calls are
  // layout hints only: they stage the cache lines the NEXT event will
  // touch while the current one finishes, and never change any decision.
  ClusterAccum acc;
  acc.sojourn_ci = BatchMeans(batch_);
  acc.sojourn_quantiles = ReservoirQuantiles(cfg_.quantile_reservoir,
                                             seed_ ^ cfg_.quantile_seed_salt);
  acc.sla_threshold = cfg_.sla_threshold;
  if (cfg_.window_width > 0.0)
    acc.enable_windows(cfg_.window_width, cfg_.window_reservoir,
                       seed_ ^ cfg_.window_seed_salt);

  const bool idle_head_hint = policy_.dispatches_to_idle_head();
  double next_arrival = arrivals_.next(rng_);
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;

  double measure_start = -1.0;
  std::uint64_t in_system = 0;

  const auto advance_to = [&](double t) {
    if (measure_start >= 0.0) {
      const int busy = cfg_.servers - dir_.idle_count();
      acc.area_jobs += static_cast<double>(in_system) * (t - now_);
      acc.busy_area += static_cast<double>(busy) * (t - now_);
    }
    now_ = t;
  };

  while (departures < jobs_) {
    const bool have_arrival = arrivals < jobs_;
    const bool arrival_next =
        have_arrival &&
        (calendar_.empty() || next_arrival <= calendar_.min_time());

    if (arrival_next) {
      advance_to(next_arrival);
      if (arrivals == warmup_ && measure_start < 0.0) measure_start = now_;
      Job job;
      job.index = arrivals;
      job.arrival_time = now_;
      job.service_time = service_.sample(rng_);
      // Home-rack draw: mirrors the legacy engine's position exactly —
      // right after the service sample, before the policy's draws.
      int home = 0;
      if (rack_mode_)
        home = static_cast<int>(rng_.uniform_int(
            static_cast<std::uint64_t>(cfg_.topology.racks)));
      ++arrivals;
      ++in_system;
      // If the chosen server turns out idle, the departure lands in this
      // bucket; start loading it before the policy's polling misses.
      calendar_.prefetch_slot(now_ + job.service_time);
      const int s = rack_mode_ ? policy_.select_direct(dir_, home, rng_)
                               : policy_.select_direct(dir_, rng_);
      RLB_ASSERT(s >= 0 && s < cfg_.servers, "policy picked a bad server");
      util::prefetch(&slot_[s]);
      if (!cfg_.server_speeds.empty())
        job.service_time /= cfg_.server_speeds[s];
      if (rack_mode_ && s / per_rack_ != home)
        job.service_time = cfg_.topology.penalize(job.service_time);
      if (dir_.level_of(s) == 0)
        calendar_.push(now_ + job.service_time, s);
      push_job(s, job);
      dir_.increment(s);
      next_arrival = now_ + arrivals_.next(rng_);
    } else {
      RLB_ASSERT(!calendar_.empty(), "no events left");
      const auto [t, s] = calendar_.pop();
      advance_to(t);
      const Job done = pop_job(s);
      dir_.decrement(s);
      ++departures;
      --in_system;
      acc.record_departure(now_, done.arrival_time, done.service_time,
                           done.index >= warmup_);
      if (dir_.level_of(s) > 0)
        calendar_.push(now_ + slot_[s].head.service_time, s);
    }

    // Stage the next event's state: the calendar's top names the next
    // departure's server (and leaves its bucket hot for the coming
    // min_time/pop scan); under JIQ the idle-FIFO head names the next
    // arrival's server before that arrival is even drawn.
    if (!calendar_.empty()) {
      const std::int32_t ns = calendar_.top().second;
      dir_.prefetch_server(ns);
      util::prefetch(&slot_[ns]);
    }
    if (idle_head_hint && dir_.idle_count() > 0) {
      const int h = dir_.idle_head();
      dir_.prefetch_server(h);
      util::prefetch(&slot_[h]);
    }
  }

  acc.window = now_ - std::max(measure_start, 0.0);
  acc.sim_time = now_;
  return acc;
}

}  // namespace rlb::sim
