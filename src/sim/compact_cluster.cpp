#include "sim/compact_cluster.h"

#include <algorithm>
#include <utility>

#include "util/require.h"

namespace rlb::sim {

// ---------------------------------------------------------------------------
// LevelDirectory

LevelDirectory::LevelDirectory(int servers) : n_(servers) {
  RLB_REQUIRE(servers >= 1, "need at least one server");
  level_.assign(n_, 0);
  by_level_.resize(n_);
  pos_.resize(n_);
  for (int s = 0; s < n_; ++s) {
    by_level_[s] = s;
    pos_[s] = s;
  }
  count_ = {n_};
  offset_ = {0};
  // All servers start idle, queued in server-index order — the same
  // initial I-queue the legacy engine builds.
  idle_next_.resize(n_);
  idle_prev_.resize(n_);
  for (int s = 0; s < n_; ++s) {
    idle_next_[s] = s + 1 < n_ ? s + 1 : -1;
    idle_prev_[s] = s - 1;
  }
  idle_head_ = 0;
  idle_tail_ = n_ - 1;
}

int LevelDirectory::count_at(int level) const {
  RLB_REQUIRE(level >= 0, "queue-length level must be non-negative");
  return level < static_cast<int>(count_.size()) ? count_[level] : 0;
}

int LevelDirectory::sample_at_level(int level, Rng& rng) const {
  const int c = count_at(level);
  RLB_REQUIRE(c > 0, "sample_at_level on an empty level");
  return by_level_[offset_[level] +
                   static_cast<int>(rng.uniform_int(
                       static_cast<std::uint64_t>(c)))];
}

int LevelDirectory::at(int level, int i) const {
  RLB_REQUIRE(i >= 0 && i < count_at(level), "level index out of range");
  return by_level_[offset_[level] + i];
}

void LevelDirectory::ensure_level(int level) {
  while (static_cast<int>(count_.size()) <= level) {
    // A new trailing (empty) block begins where the last one ends.
    offset_.push_back(offset_.back() + count_.back());
    count_.push_back(0);
  }
}

void LevelDirectory::swap_slots(int a, int b) {
  if (a == b) return;
  std::swap(by_level_[a], by_level_[b]);
  pos_[by_level_[a]] = a;
  pos_[by_level_[b]] = b;
}

void LevelDirectory::increment(int server) {
  const int k = level_[server];
  if (k == 0) idle_remove(server);
  ensure_level(k + 1);
  // Swap the server to its block's last slot; that slot then becomes the
  // first slot of block k+1 by moving the boundary one to the left.
  swap_slots(pos_[server], offset_[k] + count_[k] - 1);
  --count_[k];
  --offset_[k + 1];
  ++count_[k + 1];
  level_[server] = k + 1;
  if (k + 1 > max_level_) max_level_ = k + 1;
}

void LevelDirectory::decrement(int server) {
  const int k = level_[server];
  RLB_REQUIRE(k >= 1, "decrement on an idle server");
  // Mirror image: swap to the block's first slot, move the boundary one
  // to the right, and the slot joins the end of block k-1.
  swap_slots(pos_[server], offset_[k]);
  --count_[k];
  ++offset_[k];
  ++count_[k - 1];
  level_[server] = k - 1;
  if (k == 1) idle_append(server);
  while (max_level_ > 0 && count_[max_level_] == 0) --max_level_;
}

void LevelDirectory::idle_remove(int server) {
  const int nx = idle_next_[server];
  const int pv = idle_prev_[server];
  if (pv >= 0)
    idle_next_[pv] = nx;
  else
    idle_head_ = nx;
  if (nx >= 0)
    idle_prev_[nx] = pv;
  else
    idle_tail_ = pv;
  idle_next_[server] = -1;
  idle_prev_[server] = -1;
}

void LevelDirectory::idle_append(int server) {
  idle_prev_[server] = idle_tail_;
  idle_next_[server] = -1;
  if (idle_tail_ >= 0)
    idle_next_[idle_tail_] = server;
  else
    idle_head_ = server;
  idle_tail_ = server;
}

// ---------------------------------------------------------------------------
// CompactClusterEngine

CompactClusterEngine::CompactClusterEngine(
    const ClusterConfig& cfg, std::uint64_t jobs, std::uint64_t warmup,
    std::uint64_t batch, std::uint64_t seed, Policy& policy,
    ArrivalProcess& arrivals, const Distribution& service)
    : cfg_(cfg),
      jobs_(jobs),
      warmup_(warmup),
      batch_(batch),
      seed_(seed),
      policy_(policy),
      arrivals_(arrivals),
      service_(service),
      rng_(seed),
      dir_(cfg.servers),
      fifo_head_(cfg.servers, -1),
      fifo_tail_(cfg.servers, -1) {
  RLB_REQUIRE(policy.symmetric(),
              "compact engine requires a symmetric policy");
}

std::int32_t CompactClusterEngine::acquire_slot() {
  if (free_head_ >= 0) {
    const std::int32_t slot = free_head_;
    free_head_ = pool_[slot].next;
    return slot;
  }
  pool_.emplace_back();
  return static_cast<std::int32_t>(pool_.size() - 1);
}

void CompactClusterEngine::release_slot(std::int32_t slot) {
  pool_[slot].next = free_head_;
  free_head_ = slot;
}

void CompactClusterEngine::push_job(int server, const JobRec& rec) {
  const std::int32_t slot = acquire_slot();
  pool_[slot] = rec;
  pool_[slot].next = -1;
  if (fifo_tail_[server] >= 0)
    pool_[fifo_tail_[server]].next = slot;
  else
    fifo_head_[server] = slot;
  fifo_tail_[server] = slot;
}

CompactClusterEngine::JobRec CompactClusterEngine::pop_job(int server) {
  const std::int32_t slot = fifo_head_[server];
  RLB_ASSERT(slot >= 0, "departure from empty server");
  const JobRec rec = pool_[slot];
  fifo_head_[server] = rec.next;
  if (fifo_head_[server] < 0) fifo_tail_[server] = -1;
  release_slot(slot);
  return rec;
}

ClusterAccum CompactClusterEngine::run() {
  // Statement-for-statement mirror of the legacy Engine::run — the RNG
  // draw order, event ordering, and statistics accumulation order below
  // must not drift from cluster_sim.cpp, or the engines stop being
  // bit-identical and the equivalence tests fail.
  ClusterAccum acc;
  acc.sojourn_ci = BatchMeans(batch_);
  acc.sojourn_quantiles = ReservoirQuantiles(cfg_.quantile_reservoir,
                                             seed_ ^ cfg_.quantile_seed_salt);

  double next_arrival = arrivals_.next(rng_);
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;

  double measure_start = -1.0;
  std::uint64_t in_system = 0;

  const auto advance_to = [&](double t) {
    if (measure_start >= 0.0) {
      const int busy = cfg_.servers - dir_.idle_count();
      acc.area_jobs += static_cast<double>(in_system) * (t - now_);
      acc.busy_area += static_cast<double>(busy) * (t - now_);
    }
    now_ = t;
  };

  while (departures < jobs_) {
    const bool have_arrival = arrivals < jobs_;
    const bool arrival_next =
        have_arrival &&
        (calendar_.empty() || next_arrival <= calendar_.min_time());

    if (arrival_next) {
      advance_to(next_arrival);
      if (arrivals == warmup_ && measure_start < 0.0) measure_start = now_;
      JobRec job;
      job.index = arrivals;
      job.arrival_time = now_;
      job.service_time = service_.sample(rng_);
      ++arrivals;
      ++in_system;
      const int s = policy_.select_symmetric(*this, rng_);
      RLB_ASSERT(s >= 0 && s < cfg_.servers, "policy picked a bad server");
      if (!cfg_.server_speeds.empty())
        job.service_time /= cfg_.server_speeds[s];
      if (dir_.level_of(s) == 0)
        calendar_.push(now_ + job.service_time, s);
      push_job(s, job);
      dir_.increment(s);
      next_arrival = now_ + arrivals_.next(rng_);
    } else {
      RLB_ASSERT(!calendar_.empty(), "no events left");
      const auto [t, s] = calendar_.pop();
      advance_to(t);
      const JobRec done = pop_job(s);
      dir_.decrement(s);
      ++departures;
      --in_system;
      if (done.index >= warmup_) {
        const double sojourn = now_ - done.arrival_time;
        acc.sojourn_stats.add(sojourn);
        acc.wait_stats.add(sojourn - done.service_time);
        acc.sojourn_ci.add(sojourn);
        acc.sojourn_quantiles.add(sojourn);
      }
      if (dir_.level_of(s) > 0)
        calendar_.push(now_ + pool_[fifo_head_[s]].service_time, s);
    }
  }

  acc.window = now_ - std::max(measure_start, 0.0);
  acc.sim_time = now_;
  return acc;
}

}  // namespace rlb::sim
