// Parallel-replica execution for the simulators.
//
// A huge-N simulation cell (the paper's 1e8-job runs) is split into R
// independent replicas, each a shorter run of the same chain with its own
// warmup and a seed derived only from (base seed, replica index). The
// replica results are merged in replica-index order on the calling thread
// — through the mergeable statistics in sim/stats.h, which combine batch
// means with honest degrees of freedom (total completed batches - 1) —
// so the merged estimate is bit-identical for every thread count: threads
// change wall-clock time and nothing else, the same contract
// engine/sweep.h gives cell-level parallelism.
//
// Worker threads come from a util::ThreadBudget shared with the cell-level
// sweep, so the two levels split one pool instead of oversubscribing.
// Helpers are recruited opportunistically between replicas: a lone long
// cell at the tail of a sweep picks up the slots the finished cells
// released.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/parallel_for.h"
#include "util/require.h"
#include "util/thread_budget.h"

namespace rlb::sim {

/// How one simulation is sharded into independent replicas. `warmup` is
/// per replica: every replica pays its own transient, the price of the
/// wall-clock speedup.
struct ReplicaPlan {
  int replicas = 1;
  std::uint64_t jobs_per_replica = 0;
  std::uint64_t warmup = 0;  ///< per replica
  std::uint64_t base_seed = 1;

  void validate() const;

  [[nodiscard]] std::uint64_t measured_per_replica() const {
    return jobs_per_replica - warmup;
  }

  /// The batch-means batch size to use: `requested`, or the auto choice
  /// (per-replica measured / 30, at least 1) when 0. Throws when a
  /// requested batch exceeds the per-replica measured count — that would
  /// silently yield zero completed batches and a 0-width CI.
  [[nodiscard]] std::uint64_t batch_size(std::uint64_t requested) const;

  /// Shard a total budget of `total_jobs` jobs (with `total_warmup` of
  /// them warmup) evenly across `replicas` replicas. Remainder jobs are
  /// dropped (at 1e6+ jobs per cell the bias is nil), which keeps every
  /// replica identical and the split independent of the thread count.
  ///
  /// The warmup splits with the jobs, i.e. each replica discards the
  /// same FRACTION of its chain that the serial run would. Absolute
  /// per-replica transients therefore shrink as R grows; with R around
  /// the core count (the intended regime) this is well inside the usual
  /// 10% warmup margin, but R >> jobs/mixing-time would bias the merged
  /// estimate — keep R modest or raise total_warmup with it. (Adaptive
  /// warmup is a ROADMAP item.)
  static ReplicaPlan split(int replicas, std::uint64_t total_jobs,
                           std::uint64_t total_warmup,
                           std::uint64_t base_seed);
};

/// Seed for replica `replica` of a run with base seed `base`: splitmix64
/// mixing of the replica index. Replica 0 keeps the base seed itself, so a
/// single-replica run is bit-identical with the pre-replica serial path
/// (legacy seeds, committed baselines and golden tests stay valid).
std::uint64_t replica_seed(std::uint64_t base, int replica);

/// Run plan.replicas independent replicas — run(replica_index, seed) must
/// derive ALL its randomness from the passed seed — and fold them with
/// merge(accumulator&, other const&) in replica-index order. Extra worker
/// threads come from `budget` via util::budgeted_for (pass
/// util::ThreadBudget::serial() to run on the calling thread only); the
/// merged result is invariant under the budget. A replica that throws
/// stops the remaining replicas and the first exception is rethrown on
/// the calling thread after all helpers retire.
template <typename Result, typename RunFn, typename MergeFn>
Result run_replicas(const ReplicaPlan& plan, util::ThreadBudget& budget,
                    RunFn&& run, MergeFn&& merge) {
  plan.validate();
  const auto count = static_cast<std::size_t>(plan.replicas);
  std::vector<std::optional<Result>> results(count);
  util::budgeted_for(count, budget, [&](std::size_t i) {
    const int replica = static_cast<int>(i);
    results[i] = run(replica, replica_seed(plan.base_seed, replica));
  });

  // Merge in index order on this thread: deterministic for any budget.
  Result merged = std::move(*results[0]);
  for (std::size_t i = 1; i < count; ++i) merge(merged, *results[i]);
  return merged;
}

}  // namespace rlb::sim
