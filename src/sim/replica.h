// Parallel-replica execution for the simulators.
//
// A huge-N simulation cell (the paper's 1e8-job runs) is split into R
// independent replicas, each a shorter run of the same chain with its own
// warmup and a seed derived only from (base seed, replica index). The
// replica results are merged in replica-index order on the calling thread
// — through the mergeable statistics in sim/stats.h, which combine batch
// means with honest degrees of freedom (total completed batches - 1) —
// so the merged estimate is bit-identical for every thread count: threads
// change wall-clock time and nothing else, the same contract
// engine/sweep.h gives cell-level parallelism.
//
// Worker threads come from a util::ThreadBudget shared with the cell-level
// sweep, so the two levels split one pool instead of oversubscribing.
// Helpers are recruited opportunistically between replicas: a lone long
// cell at the tail of a sweep picks up the slots the finished cells
// released.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/parallel_for.h"
#include "util/require.h"
#include "util/thread_budget.h"

namespace rlb::sim {

/// How one simulation is sharded into independent replicas. `warmup` is
/// per replica: every replica pays its own transient, the price of the
/// wall-clock speedup.
struct ReplicaPlan {
  int replicas = 1;
  std::uint64_t jobs_per_replica = 0;
  std::uint64_t warmup = 0;  ///< per replica
  std::uint64_t base_seed = 1;

  void validate() const;

  [[nodiscard]] std::uint64_t measured_per_replica() const {
    return jobs_per_replica - warmup;
  }

  /// The batch-means batch size to use: `requested`, or the auto choice
  /// (per-replica measured / 30, at least 1) when 0. Throws when a
  /// requested batch exceeds the per-replica measured count — that would
  /// silently yield zero completed batches and a 0-width CI.
  [[nodiscard]] std::uint64_t batch_size(std::uint64_t requested) const;

  /// Shard a total budget of `total_jobs` jobs (with `total_warmup` of
  /// them warmup) evenly across `replicas` replicas. Remainder jobs are
  /// dropped (at 1e6+ jobs per cell the bias is nil), which keeps every
  /// replica identical and the split independent of the thread count.
  ///
  /// The warmup splits with the jobs, i.e. each replica discards the
  /// same FRACTION of its chain that the serial run would. Absolute
  /// per-replica transients therefore shrink as R grows; with R around
  /// the core count (the intended regime) this is well inside the usual
  /// 10% warmup margin, but R >> jobs/mixing-time would bias the merged
  /// estimate — keep R modest or raise total_warmup with it. (Adaptive
  /// warmup is a ROADMAP item.)
  static ReplicaPlan split(int replicas, std::uint64_t total_jobs,
                           std::uint64_t total_warmup,
                           std::uint64_t base_seed);
};

/// Seed for replica `replica` of a run with base seed `base`: splitmix64
/// mixing of the replica index. Replica 0 keeps the base seed itself, so a
/// single-replica run is bit-identical with the pre-replica serial path
/// (legacy seeds, committed baselines and golden tests stay valid).
std::uint64_t replica_seed(std::uint64_t base, int replica);

/// How the per-replica warmup is chosen when the run length is not fixed
/// up front (the adaptive path, and docs/PRECISION.md's contract):
///
/// - kFixed: every replica discards the same ABSOLUTE number of leading
///   jobs, independent of how large its measurement budget is. This is
///   the adaptive default — it keeps the transient discard honest when
///   replica counts are extreme or rounds start small (the fractional
///   split's bias noted in ReplicaPlan::split cannot occur).
/// - kFraction: every replica discards a fixed FRACTION of its jobs, the
///   behaviour of ReplicaPlan::split. Cheap for huge per-replica budgets,
///   biased when the absolute transient shrinks below the mixing time.
enum class WarmupPolicy { kFixed, kFraction };

/// Which RoundPlanner chooses the size of each adaptive round
/// (--planner, docs/PRECISION.md):
///
/// - kGeometric: round r requests initial_jobs * growth_factor^r — the
///   fixed schedule, blind to the statistics. Simple, but the last round
///   overshoots the needed budget by up to the growth factor.
/// - kVariance: rounds after the first are sized from the OBSERVED
///   half-width: since hw ~ c/sqrt(jobs), the cumulative budget that
///   reaches `target_ci` is predicted as
///   jobs_used * (hw / target_ci)^2, inflated by a safety factor
///   (planner_safety) because the variance estimate behind hw is itself
///   noisy; the next round is the missing part of that prediction. Easy
///   cells stop near the predicted budget instead of at the next power
///   of the growth factor.
///
/// Both planners read only the plan and merged statistics, so either
/// schedule is bit-identical across thread counts; round 0 is
/// initial_jobs for both, so one-round runs match the fixed-budget path
/// regardless of planner.
enum class PlannerKind { kGeometric, kVariance };

/// Sequential-stopping ("run until the answer is ±ε") configuration for
/// run_replicas_adaptive. The run proceeds in ROUNDS: round r launches
/// `replicas` fresh replicas with a per-replica budget of
/// round_jobs(r) / replicas jobs; after the round's replicas merge (in
/// global replica-index order), the pooled CI half-width of the target
/// statistic is compared against `target_ci`. The schedule — round sizes,
/// warmups, seeds — is a pure function of this struct, never of timing or
/// the thread count, so adaptive output is bit-identical across
/// --threads (rounds are barriers; within a round replicas seed and
/// merge in index order exactly like run_replicas).
struct AdaptivePlan {
  int replicas = 1;             ///< replicas launched per round
  double target_ci = 0.0;       ///< stop when half-width <= this (> 0)
  double confidence = 0.95;     ///< CI level (a t_quantile table level)
  std::uint64_t initial_jobs = 0;  ///< round-0 total jobs across replicas
  double growth_factor = 2.0;   ///< round r total = initial * growth^r
  std::uint64_t max_jobs = 0;   ///< cumulative cap (includes warmup)
  WarmupPolicy warmup_policy = WarmupPolicy::kFixed;
  std::uint64_t warmup_jobs = 0;    ///< kFixed: absolute, per replica
  double warmup_fraction = 0.1;     ///< kFraction: of per-replica jobs
  std::uint64_t base_seed = 1;
  PlannerKind planner = PlannerKind::kGeometric;
  /// Variance planner only: inflate the predicted budget by this factor
  /// (the half-width the prediction extrapolates is itself a noisy
  /// estimate; undershooting costs an extra round, so predict high).
  double planner_safety = 1.2;

  void validate() const;

  /// Total job budget requested for round `round` (before the max_jobs
  /// clamp): initial_jobs * growth_factor^round, saturating at max_jobs.
  /// This is the GEOMETRIC schedule; run_replicas_adaptive consults the
  /// plan's RoundPlanner (make_planner), which may size rounds from the
  /// observed half-width instead.
  [[nodiscard]] std::uint64_t round_jobs(int round) const;

  /// The smallest round total whose per-replica share outlives its
  /// warmup — anything thinner would measure nothing and the runner
  /// treats it as "budget exhausted".
  [[nodiscard]] std::uint64_t min_round_jobs() const;

  /// Per-replica warmup for a replica running `jobs_per_replica` jobs,
  /// under this plan's warmup policy.
  [[nodiscard]] std::uint64_t warmup_for(std::uint64_t jobs_per_replica)
      const;

  /// The batch-means batch size: `requested`, or the auto choice derived
  /// from ROUND 0's per-replica measured count (mirroring
  /// ReplicaPlan::batch_size). One size serves every round — BatchMeans
  /// merging requires it — so later, larger rounds simply complete more
  /// batches.
  [[nodiscard]] std::uint64_t batch_size(std::uint64_t requested) const;
};

/// Chooses the total job budget of each adaptive round. Implementations
/// MUST be pure functions of (plan, round, jobs_used, half_width) —
/// never of timing, the thread count, or call history — so the round
/// schedule, and with it every output bit, stays deterministic across
/// --threads (docs/PRECISION.md's determinism guarantee).
class RoundPlanner {
 public:
  virtual ~RoundPlanner() = default;

  /// Job budget to request for round `round` (run_replicas_adaptive
  /// clamps the request to the remaining max_jobs allowance).
  /// `jobs_used` is the cumulative budget burned by earlier rounds
  /// (warmup included) and `half_width` the pooled CI half-width after
  /// the last merge — +infinity before round 0 or while fewer than two
  /// batches completed.
  [[nodiscard]] virtual std::uint64_t round_jobs(
      int round, std::uint64_t jobs_used, double half_width) const = 0;
};

/// The planner selected by plan.planner (plan must outlive the result).
std::unique_ptr<RoundPlanner> make_planner(const AdaptivePlan& plan);

/// What the adaptive run did: exposed per cell as the half_width /
/// jobs_used / converged scenario columns.
struct AdaptiveReport {
  bool converged = false;  ///< half-width met target before max_jobs
  /// Achieved pooled half-width at the plan's confidence. +infinity in
  /// the degenerate case where the run capped out before two batches
  /// ever completed — no interval could be formed, and printing "inf"
  /// is more honest than a fake 0.
  double half_width = 0.0;
  std::uint64_t jobs_used = 0;  ///< total jobs simulated, warmup included
  int rounds = 0;               ///< rounds executed

  /// Row-level aggregate for scenarios whose table row spans several
  /// adaptive cells (one per policy / simulator): the WORST half-width,
  /// the TOTAL budget, converged only when every cell converged, the
  /// longest round count. Fold cell reports into a row_identity() seed.
  void combine(const AdaptiveReport& cell) {
    converged = converged && cell.converged;
    half_width = std::max(half_width, cell.half_width);
    jobs_used += cell.jobs_used;
    rounds = std::max(rounds, cell.rounds);
  }

  /// The neutral element for combine() (converged must start true).
  [[nodiscard]] static AdaptiveReport row_identity() {
    AdaptiveReport identity;
    identity.converged = true;
    return identity;
  }
};

/// Run plan.replicas independent replicas — run(replica_index, seed) must
/// derive ALL its randomness from the passed seed — and fold them with
/// merge(accumulator&, other const&) in replica-index order. Extra worker
/// threads come from `budget` via util::budgeted_for (pass
/// util::ThreadBudget::serial() to run on the calling thread only); the
/// merged result is invariant under the budget. A replica that throws
/// stops the remaining replicas and the first exception is rethrown on
/// the calling thread after all helpers retire.
template <typename Result, typename RunFn, typename MergeFn>
Result run_replicas(const ReplicaPlan& plan, util::ThreadBudget& budget,
                    RunFn&& run, MergeFn&& merge) {
  plan.validate();
  const auto count = static_cast<std::size_t>(plan.replicas);
  std::vector<std::optional<Result>> results(count);
  util::budgeted_for(count, budget, [&](std::size_t i) {
    const int replica = static_cast<int>(i);
    results[i] = run(replica, replica_seed(plan.base_seed, replica));
  });

  // Merge in index order on this thread: deterministic for any budget.
  Result merged = std::move(*results[0]);
  for (std::size_t i = 1; i < count; ++i) merge(merged, *results[i]);
  return merged;
}

/// Where a previously stopped adaptive run left off, for
/// run_replicas_adaptive_resume: how many rounds it executed and the
/// cumulative budget (warmup included) those rounds burned. The merged
/// Result itself travels separately (the caller checkpoints and restores
/// it — e.g. ClusterRoundState for the cluster simulators).
struct AdaptiveResume {
  int rounds = 0;
  std::uint64_t jobs_used = 0;
};

namespace detail {

/// The shared round loop behind run_replicas_adaptive (resume.rounds ==
/// 0, merged empty) and run_replicas_adaptive_resume. Continuing from
/// round k with the exact merged state the cold run had after round k
/// reproduces the cold run's remaining rounds bit-for-bit under the
/// GEOMETRIC planner, whose round sizes depend only on the round index.
/// (The variance planner sizes rounds from target_ci, so a resumed run
/// at a tighter target takes a different — still valid, still
/// deterministic — schedule than a cold run at that target.)
template <typename Result, typename RunFn, typename MergeFn,
          typename HalfWidthFn>
Result run_adaptive_rounds(const AdaptivePlan& plan,
                           const AdaptiveResume& resume,
                           std::optional<Result> merged,
                           util::ThreadBudget& budget, RunFn&& run,
                           MergeFn&& merge, HalfWidthFn&& half_width,
                           AdaptiveReport& report) {
  plan.validate();
  RLB_REQUIRE(resume.rounds >= 0, "resume round count must be >= 0");
  RLB_REQUIRE((resume.rounds > 0) == merged.has_value(),
              "resume state and merged result must arrive together");
  const auto count = static_cast<std::size_t>(plan.replicas);
  const auto replicas64 = static_cast<std::uint64_t>(plan.replicas);
  const std::unique_ptr<RoundPlanner> planner = make_planner(plan);
  report = AdaptiveReport{};
  report.rounds = resume.rounds;
  report.jobs_used = resume.jobs_used;
  // The half-width the planner sizes the next round from; infinite until
  // the first merge produces an interval.
  double observed_hw = std::numeric_limits<double>::infinity();
  if (merged) {
    // Re-derive the stopping state exactly as the cold loop would have
    // observed it after `resume.rounds` rounds: the run may already meet
    // the (possibly loosened) target, or already sit at the cap.
    report.half_width = half_width(*merged);
    observed_hw = report.half_width;
    if (report.half_width <= plan.target_ci) {
      report.converged = true;
      return std::move(*merged);
    }
    if (report.jobs_used >= plan.max_jobs) return std::move(*merged);
  }
  for (int round = resume.rounds;; ++round) {
    const std::uint64_t remaining = plan.max_jobs - report.jobs_used;
    const std::uint64_t round_total = std::min(
        planner->round_jobs(round, report.jobs_used, observed_hw),
        remaining);
    const std::uint64_t jobs_per_replica = round_total / replicas64;
    const std::uint64_t warmup = plan.warmup_for(jobs_per_replica);
    // The clamped tail of the budget may be too thin to measure anything;
    // plan.validate() guarantees round 0 never is.
    if (jobs_per_replica == 0 || warmup >= jobs_per_replica) break;

    std::vector<std::optional<Result>> results(count);
    util::budgeted_for(count, budget, [&](std::size_t i) {
      const int global = round * plan.replicas + static_cast<int>(i);
      results[i] =
          run(global, replica_seed(plan.base_seed, global),
              jobs_per_replica, warmup);
    });
    for (auto& result : results) {
      if (!merged)
        merged = std::move(*result);
      else
        merge(*merged, *result);
    }

    report.rounds = round + 1;
    report.jobs_used += jobs_per_replica * replicas64;
    report.half_width = half_width(*merged);
    observed_hw = report.half_width;
    if (report.half_width <= plan.target_ci) {
      report.converged = true;
      break;
    }
    if (report.jobs_used >= plan.max_jobs) break;
  }
  RLB_ASSERT(merged.has_value(), "adaptive run executed zero rounds");
  return std::move(*merged);
}

}  // namespace detail

/// Sequential-stopping replica runner. Rounds of plan.replicas fresh
/// replicas run until half_width(merged) <= plan.target_ci or the
/// cumulative job budget hits plan.max_jobs (then report.converged is
/// false — the estimate is still the best available, just not at the
/// requested precision).
///
/// - run(global_replica, seed, jobs, warmup) -> Result simulates one
///   replica: `global_replica` numbers replicas consecutively ACROSS
///   rounds (round r owns indices r*R .. r*R + R - 1), and `seed` is
///   replica_seed(plan.base_seed, global_replica) — so the round
///   schedule never reuses a stream, and a one-round adaptive run is
///   bit-identical with the fixed-budget run_replicas of the same shape.
/// - merge folds results in global-index order on the calling thread.
/// - half_width(merged) -> double reports the pooled CI half-width of
///   the designated target statistic at plan.confidence; return
///   +infinity while the estimate is not yet CI-capable (< 2 completed
///   batches) so the run keeps going.
///
/// Rounds are barriers: round r+1 starts only after round r merged, and
/// the stopping decision depends only on merged statistics — output is
/// bit-identical for every `budget`.
template <typename Result, typename RunFn, typename MergeFn,
          typename HalfWidthFn>
Result run_replicas_adaptive(const AdaptivePlan& plan,
                             util::ThreadBudget& budget, RunFn&& run,
                             MergeFn&& merge, HalfWidthFn&& half_width,
                             AdaptiveReport& report) {
  return detail::run_adaptive_rounds<Result>(
      plan, AdaptiveResume{}, std::optional<Result>{}, budget,
      std::forward<RunFn>(run), std::forward<MergeFn>(merge),
      std::forward<HalfWidthFn>(half_width), report);
}

/// Resume a stopped adaptive run from its checkpointed merged state —
/// the --refine path (docs/CACHING.md): tighten plan.target_ci below the
/// original target and continue the round schedule instead of
/// re-simulating the rounds already paid for.
///
/// `merged` must be the EXACT merged Result after `resume.rounds` rounds
/// (a bit-exact checkpoint restore) and the plan must match the original
/// in every field except target_ci. Replica numbering continues globally
/// (round k still owns indices k*R ..), so no stream is ever reused.
/// Under the geometric planner the resumed run is bit-identical to a
/// cold run at the tighter target; under the variance planner the
/// schedule differs but every statistical guarantee holds. The returned
/// report covers the WHOLE run: rounds/jobs_used include the resumed
/// prefix, so `report.jobs_used - resume.jobs_used` is the budget the
/// refinement actually simulated.
template <typename Result, typename RunFn, typename MergeFn,
          typename HalfWidthFn>
Result run_replicas_adaptive_resume(const AdaptivePlan& plan,
                                    const AdaptiveResume& resume,
                                    Result merged,
                                    util::ThreadBudget& budget, RunFn&& run,
                                    MergeFn&& merge,
                                    HalfWidthFn&& half_width,
                                    AdaptiveReport& report) {
  RLB_REQUIRE(resume.rounds >= 1,
              "resume requires at least one completed round");
  return detail::run_adaptive_rounds<Result>(
      plan, resume, std::optional<Result>(std::move(merged)), budget,
      std::forward<RunFn>(run), std::forward<MergeFn>(merge),
      std::forward<HalfWidthFn>(half_width), report);
}

}  // namespace rlb::sim
