// Simulation of the LOWER bound model under general renewal arrivals —
// the setting of Theorem 2, which predicts that the stationary level
// masses decay geometrically with ratio sigma^N, where sigma solves
// x = LST(mu(1-x)).
//
// The chain is no longer a CTMC (interarrival times are arbitrary), so this
// runs an event-driven simulation: renewal arrival clock + exponential
// service clocks, with the lower model's redirects (join-shortest fallback,
// threshold jockeying) applied at the gap boundary. The measured
// total-jobs histogram exposes the level-tail ratio for direct comparison
// with sigma^N.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/distributions.h"
#include "sim/replica.h"
#include "sqd/bound_model.h"
#include "util/thread_budget.h"

namespace rlb::sim {

struct GiBoundSimResult {
  double mean_waiting_jobs = 0.0;
  double mean_jobs = 0.0;
  /// Time-average probability of holding exactly k jobs (k = index).
  std::vector<double> total_jobs_dist;
  /// Ratio of successive level masses, estimated from the histogram tail
  /// (levels are N-job bands above the boundary); Theorem 2 predicts
  /// sigma^N.
  double level_tail_ratio = 0.0;
  std::uint64_t events = 0;

  /// Pooled 95% CI half-width on the waiting-jobs time average
  /// (dt-weighted batch means over measured events).
  double ci95_waiting_jobs = 0.0;

  /// Filled by simulate_gi_lower_bound_adaptive only.
  AdaptiveReport adaptive;
};

/// Simulate the lower bound model with i.i.d. `interarrival` times and
/// Exp(mu) services for `arrivals` arrival events (after `warmup`).
/// Requires model.kind() == BoundKind::Lower. Replicas run serially on
/// the calling thread.
GiBoundSimResult simulate_gi_lower_bound(const sqd::BoundModel& model,
                                         const Distribution& interarrival,
                                         std::uint64_t arrivals,
                                         std::uint64_t warmup,
                                         std::uint64_t seed);

/// The arrival budget sharded into `replicas` independent runs
/// (sim/replica.h) whose occupancy histograms merge time-weighted before
/// the level-tail ratio is estimated; worker threads come from `budget`
/// and the result is bit-identical for every budget.
/// `rank_speeds` selects the heterogeneous-rate variant: the queue at
/// sorted position k is served at rate rank_speeds[k] * mu while busy,
/// and departures pick a busy rank proportionally to its rate (see
/// BoundModel::transitions(m, rank_speeds) for the rank-based rate
/// model). Empty — the default — is the homogeneous model, bit-identical
/// with the legacy streams. Theorem 2's sigma^N prediction applies to the
/// homogeneous model only; the hetero level_tail_ratio is an empirical
/// output.
GiBoundSimResult simulate_gi_lower_bound(const sqd::BoundModel& model,
                                         const Distribution& interarrival,
                                         std::uint64_t arrivals,
                                         std::uint64_t warmup,
                                         std::uint64_t seed, int replicas,
                                         util::ThreadBudget& budget,
                                         const std::vector<double>&
                                             rank_speeds = {});

/// Sequential-stopping run (docs/PRECISION.md): rounds of plan.replicas
/// event-driven runs grow the arrival budget until the pooled CI
/// half-width of the MEAN WAITING JOBS time average (dt-weighted batch
/// means) at plan.confidence drops to plan.target_ci or plan.max_jobs
/// caps out (a "job" of the plan is one arrival event here).
/// Bit-identical for every budget.
GiBoundSimResult simulate_gi_lower_bound_adaptive(
    const sqd::BoundModel& model, const Distribution& interarrival,
    const AdaptivePlan& plan, util::ThreadBudget& budget,
    const std::vector<double>& rank_speeds = {});

}  // namespace rlb::sim
