#include "sim/distributions.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/require.h"

namespace rlb::sim {

namespace {

class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate) : rate_(rate) {
    RLB_REQUIRE(rate > 0.0, "rate must be positive");
  }
  double sample(Rng& rng) const override { return rng.exponential(rate_); }
  double mean() const override { return 1.0 / rate_; }
  std::string name() const override { return "exp"; }

 private:
  double rate_;
};

class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value) : value_(value) {
    RLB_REQUIRE(value >= 0.0, "value must be non-negative");
  }
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  std::string name() const override { return "det"; }

 private:
  double value_;
};

class Erlang final : public Distribution {
 public:
  Erlang(int shape, double stage_rate) : shape_(shape), rate_(stage_rate) {
    RLB_REQUIRE(shape >= 1, "shape >= 1");
    RLB_REQUIRE(stage_rate > 0.0, "rate must be positive");
  }
  double sample(Rng& rng) const override {
    double total = 0.0;
    for (int i = 0; i < shape_; ++i) total += rng.exponential(rate_);
    return total;
  }
  double mean() const override { return shape_ / rate_; }
  std::string name() const override {
    return "erlang" + std::to_string(shape_);
  }

 private:
  int shape_;
  double rate_;
};

class HyperExp final : public Distribution {
 public:
  HyperExp(double p1, double rate1, double rate2)
      : p1_(p1), rate1_(rate1), rate2_(rate2) {
    RLB_REQUIRE(p1 >= 0.0 && p1 <= 1.0, "mixing probability in [0,1]");
    RLB_REQUIRE(rate1 > 0.0 && rate2 > 0.0, "rates must be positive");
  }
  double sample(Rng& rng) const override {
    return rng.next_double() < p1_ ? rng.exponential(rate1_)
                                   : rng.exponential(rate2_);
  }
  double mean() const override { return p1_ / rate1_ + (1.0 - p1_) / rate2_; }
  std::string name() const override { return "hyperexp2"; }

 private:
  double p1_, rate1_, rate2_;
};

class LogNormal final : public Distribution {
 public:
  LogNormal(double mean, double cv) {
    RLB_REQUIRE(mean > 0.0 && cv > 0.0, "mean and cv must be positive");
    sigma2_ = std::log(1.0 + cv * cv);
    mu_ = std::log(mean) - 0.5 * sigma2_;
    mean_ = mean;
  }
  double sample(Rng& rng) const override {
    return std::exp(mu_ + std::sqrt(sigma2_) * rng.normal());
  }
  double mean() const override { return mean_; }
  std::string name() const override { return "lognormal"; }

 private:
  double mu_, sigma2_, mean_;
};

class Pareto final : public Distribution {
 public:
  Pareto(double alpha, double scale) : alpha_(alpha), scale_(scale) {
    RLB_REQUIRE(alpha > 1.0, "pareto tail index must exceed 1 (finite mean)");
    RLB_REQUIRE(scale > 0.0, "pareto scale must be positive");
  }
  double sample(Rng& rng) const override {
    // Inversion of the survival function: X = scale * U^(-1/alpha) with
    // U uniform on (0, 1]. next_double() is in [0, 1), so 1 - u is in
    // (0, 1] — the open end keeps the pow finite.
    const double u = 1.0 - rng.next_double();
    return scale_ * std::pow(u, -1.0 / alpha_);
  }
  double mean() const override { return alpha_ * scale_ / (alpha_ - 1.0); }
  std::string name() const override { return "pareto"; }

 private:
  double alpha_, scale_;
};

class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
    RLB_REQUIRE(0.0 <= lo && lo <= hi, "need 0 <= lo <= hi");
  }
  double sample(Rng& rng) const override {
    return lo_ + (hi_ - lo_) * rng.next_double();
  }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  std::string name() const override { return "uniform"; }

 private:
  double lo_, hi_;
};

}  // namespace

std::unique_ptr<Distribution> make_exponential(double rate) {
  return std::make_unique<Exponential>(rate);
}
std::unique_ptr<Distribution> make_deterministic(double value) {
  return std::make_unique<Deterministic>(value);
}
std::unique_ptr<Distribution> make_erlang(int shape, double stage_rate) {
  return std::make_unique<Erlang>(shape, stage_rate);
}
std::unique_ptr<Distribution> make_hyperexp(double p1, double rate1,
                                            double rate2) {
  return std::make_unique<HyperExp>(p1, rate1, rate2);
}
std::unique_ptr<Distribution> make_lognormal(double mean, double cv) {
  return std::make_unique<LogNormal>(mean, cv);
}
std::unique_ptr<Distribution> make_uniform(double lo, double hi) {
  return std::make_unique<Uniform>(lo, hi);
}

std::unique_ptr<Distribution> make_hyperexp_fitted(double mean, double scv) {
  RLB_REQUIRE(scv > 1.0, "hyperexp fitting needs scv > 1");
  // Balanced means fit: p1/r1 = (1-p1)/r2 = mean/2.
  const double p1 =
      0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double rate1 = 2.0 * p1 / mean;
  const double rate2 = 2.0 * (1.0 - p1) / mean;
  return std::make_unique<HyperExp>(p1, rate1, rate2);
}

std::unique_ptr<Distribution> make_pareto(double alpha, double scale) {
  return std::make_unique<Pareto>(alpha, scale);
}

std::unique_ptr<Distribution> make_pareto_mean(double mean, double alpha) {
  RLB_REQUIRE(mean > 0.0, "pareto mean must be positive");
  RLB_REQUIRE(alpha > 1.0, "pareto tail index must exceed 1 (finite mean)");
  return std::make_unique<Pareto>(alpha, mean * (alpha - 1.0) / alpha);
}

namespace {

/// key=value pairs of a spec's parameter part, validated against the
/// family's expected keys.
std::map<std::string, double> parse_spec_params(
    const std::string& spec, const std::string& params,
    const std::vector<std::string>& keys) {
  std::map<std::string, double> out;
  std::istringstream stream(params);
  std::string field;
  while (std::getline(stream, field, ',')) {
    const auto eq = field.find('=');
    RLB_REQUIRE(eq != std::string::npos,
                "distribution spec field needs key=value: " + spec);
    const std::string key = field.substr(0, eq);
    RLB_REQUIRE(std::find(keys.begin(), keys.end(), key) != keys.end(),
                "unknown key '" + key + "' in distribution spec: " + spec);
    RLB_REQUIRE(out.find(key) == out.end(),
                "duplicate key '" + key + "' in distribution spec: " + spec);
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(field.substr(eq + 1), &used);
    } catch (const std::exception&) {
      used = 0;
    }
    RLB_REQUIRE(used == field.size() - eq - 1 && std::isfinite(value),
                "malformed number in distribution spec: " + spec);
    out[key] = value;
  }
  for (const std::string& key : keys)
    RLB_REQUIRE(out.find(key) != out.end(),
                "distribution spec is missing '" + key + "': " + spec);
  return out;
}

}  // namespace

std::unique_ptr<Distribution> parse_distribution(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  const std::string params =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  const auto get = [&](const std::vector<std::string>& keys) {
    return parse_spec_params(spec, params, keys);
  };
  if (family == "exp") {
    const auto p = get({"rate"});
    return make_exponential(p.at("rate"));
  }
  if (family == "det") {
    const auto p = get({"value"});
    return make_deterministic(p.at("value"));
  }
  if (family == "erlang") {
    const auto p = get({"shape", "rate"});
    const double shape = p.at("shape");
    RLB_REQUIRE(shape == std::floor(shape) && shape >= 1.0,
                "erlang shape must be an integer >= 1: " + spec);
    return make_erlang(static_cast<int>(shape), p.at("rate"));
  }
  if (family == "uniform") {
    const auto p = get({"lo", "hi"});
    return make_uniform(p.at("lo"), p.at("hi"));
  }
  if (family == "pareto") {
    const auto p = get({"mean", "alpha"});
    return make_pareto_mean(p.at("mean"), p.at("alpha"));
  }
  if (family == "lognormal") {
    const auto p = get({"mean", "cv"});
    return make_lognormal(p.at("mean"), p.at("cv"));
  }
  if (family == "hyperexp") {
    const auto p = get({"mean", "scv"});
    return make_hyperexp_fitted(p.at("mean"), p.at("scv"));
  }
  throw std::invalid_argument(
      "unknown distribution family in spec: " + spec +
      " (known: exp, det, erlang, uniform, pareto, lognormal, hyperexp)");
}

}  // namespace rlb::sim
