#include "sim/distributions.h"

#include <cmath>

#include "util/require.h"

namespace rlb::sim {

namespace {

class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate) : rate_(rate) {
    RLB_REQUIRE(rate > 0.0, "rate must be positive");
  }
  double sample(Rng& rng) const override { return rng.exponential(rate_); }
  double mean() const override { return 1.0 / rate_; }
  std::string name() const override { return "exp"; }

 private:
  double rate_;
};

class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value) : value_(value) {
    RLB_REQUIRE(value >= 0.0, "value must be non-negative");
  }
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  std::string name() const override { return "det"; }

 private:
  double value_;
};

class Erlang final : public Distribution {
 public:
  Erlang(int shape, double stage_rate) : shape_(shape), rate_(stage_rate) {
    RLB_REQUIRE(shape >= 1, "shape >= 1");
    RLB_REQUIRE(stage_rate > 0.0, "rate must be positive");
  }
  double sample(Rng& rng) const override {
    double total = 0.0;
    for (int i = 0; i < shape_; ++i) total += rng.exponential(rate_);
    return total;
  }
  double mean() const override { return shape_ / rate_; }
  std::string name() const override {
    return "erlang" + std::to_string(shape_);
  }

 private:
  int shape_;
  double rate_;
};

class HyperExp final : public Distribution {
 public:
  HyperExp(double p1, double rate1, double rate2)
      : p1_(p1), rate1_(rate1), rate2_(rate2) {
    RLB_REQUIRE(p1 >= 0.0 && p1 <= 1.0, "mixing probability in [0,1]");
    RLB_REQUIRE(rate1 > 0.0 && rate2 > 0.0, "rates must be positive");
  }
  double sample(Rng& rng) const override {
    return rng.next_double() < p1_ ? rng.exponential(rate1_)
                                   : rng.exponential(rate2_);
  }
  double mean() const override { return p1_ / rate1_ + (1.0 - p1_) / rate2_; }
  std::string name() const override { return "hyperexp2"; }

 private:
  double p1_, rate1_, rate2_;
};

class LogNormal final : public Distribution {
 public:
  LogNormal(double mean, double cv) {
    RLB_REQUIRE(mean > 0.0 && cv > 0.0, "mean and cv must be positive");
    sigma2_ = std::log(1.0 + cv * cv);
    mu_ = std::log(mean) - 0.5 * sigma2_;
    mean_ = mean;
  }
  double sample(Rng& rng) const override {
    return std::exp(mu_ + std::sqrt(sigma2_) * rng.normal());
  }
  double mean() const override { return mean_; }
  std::string name() const override { return "lognormal"; }

 private:
  double mu_, sigma2_, mean_;
};

class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
    RLB_REQUIRE(0.0 <= lo && lo <= hi, "need 0 <= lo <= hi");
  }
  double sample(Rng& rng) const override {
    return lo_ + (hi_ - lo_) * rng.next_double();
  }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  std::string name() const override { return "uniform"; }

 private:
  double lo_, hi_;
};

}  // namespace

std::unique_ptr<Distribution> make_exponential(double rate) {
  return std::make_unique<Exponential>(rate);
}
std::unique_ptr<Distribution> make_deterministic(double value) {
  return std::make_unique<Deterministic>(value);
}
std::unique_ptr<Distribution> make_erlang(int shape, double stage_rate) {
  return std::make_unique<Erlang>(shape, stage_rate);
}
std::unique_ptr<Distribution> make_hyperexp(double p1, double rate1,
                                            double rate2) {
  return std::make_unique<HyperExp>(p1, rate1, rate2);
}
std::unique_ptr<Distribution> make_lognormal(double mean, double cv) {
  return std::make_unique<LogNormal>(mean, cv);
}
std::unique_ptr<Distribution> make_uniform(double lo, double hi) {
  return std::make_unique<Uniform>(lo, hi);
}

std::unique_ptr<Distribution> make_hyperexp_fitted(double mean, double scv) {
  RLB_REQUIRE(scv > 1.0, "hyperexp fitting needs scv > 1");
  // Balanced means fit: p1/r1 = (1-p1)/r2 = mean/2.
  const double p1 =
      0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double rate1 = 2.0 * p1 / mean;
  const double rate2 = 2.0 * (1.0 - p1) / mean;
  return std::make_unique<HyperExp>(p1, rate1, rate2);
}

}  // namespace rlb::sim
