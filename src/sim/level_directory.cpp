#include "sim/level_directory.h"

namespace rlb::sim {

LevelDirectory::LevelDirectory(int servers) : n_(servers) {
  RLB_REQUIRE(servers >= 1, "need at least one server");
  rec_.assign(n_, ServerRec{});
  by_level_.resize(n_);
  for (int s = 0; s < n_; ++s) {
    by_level_[s] = s;
    rec_[s].pos = s;
  }
  count_ = {static_cast<std::int32_t>(n_)};
  offset_ = {0};
  // All servers start idle, queued in server-index order — the same
  // initial I-queue the legacy engine builds.
  for (int s = 0; s < n_; ++s) {
    rec_[s].idle_next = s + 1 < n_ ? s + 1 : -1;
    rec_[s].idle_prev = s - 1;
  }
  idle_head_ = 0;
  idle_tail_ = n_ - 1;
}

void LevelDirectory::arm_racks(int racks) {
  RLB_REQUIRE(racks >= 1, "need at least one rack");
  RLB_REQUIRE(n_ % racks == 0, "servers must divide evenly into racks");
  RLB_REQUIRE(count_[0] == n_,
              "arm_racks requires the initial all-idle state");
  racks_ = racks;
  per_rack_ = n_ / racks;
  rack_next_.assign(n_, -1);
  rack_prev_.assign(n_, -1);
  rack_head_.assign(racks, -1);
  rack_tail_.assign(racks, -1);
  // Seed each rack's FIFO in server-index order, matching the global
  // I-queue's time-zero order restricted to the rack.
  for (int s = 0; s < n_; ++s) rack_idle_append(s);
}

int LevelDirectory::at(int level, int i) const {
  RLB_REQUIRE(i >= 0 && i < count_at(level), "level index out of range");
  return by_level_[offset_[level] + i];
}

}  // namespace rlb::sim
