#include "engine/bench_check.h"

#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

#include "engine/json.h"
#include "util/require.h"

namespace rlb::engine {

namespace {

double to_ns(double value, const std::string& unit) {
  if (unit == "ns") return value;
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  RLB_REQUIRE(false, "bench report: unknown time_unit '" + unit + "'");
  return 0.0;
}

/// name -> time in ns for every non-aggregate benchmark entry, in report
/// order (a vector of pairs keeps the report's ordering for output).
std::vector<std::pair<std::string, double>> read_report(
    const std::string& text, const std::string& metric) {
  const json::Value root = json::parse(text);
  RLB_REQUIRE(root.kind == json::Value::Kind::Object,
              "bench report: root must be an object");
  const auto* benchmarks = root.find("benchmarks");
  RLB_REQUIRE(benchmarks != nullptr &&
                  benchmarks->kind == json::Value::Kind::Array,
              "bench report: missing 'benchmarks' array");

  std::vector<std::pair<std::string, double>> out;
  for (const json::Value& entry : benchmarks->items) {
    RLB_REQUIRE(entry.kind == json::Value::Kind::Object,
                "bench report: benchmark entry must be an object");
    const auto* run_type = entry.find("run_type");
    if (run_type != nullptr && run_type->kind == json::Value::Kind::String &&
        run_type->text == "aggregate")
      continue;  // mean/median/stddev rows of repeated runs
    const auto* name = entry.find("name");
    const auto* value = entry.find(metric);
    const auto* unit = entry.find("time_unit");
    RLB_REQUIRE(name != nullptr && name->kind == json::Value::Kind::String,
                "bench report: benchmark entry without a name");
    RLB_REQUIRE(value != nullptr && value->kind == json::Value::Kind::Number,
                "bench report: '" + name->text + "' has no numeric '" +
                    metric + "'");
    const std::string unit_text =
        unit != nullptr && unit->kind == json::Value::Kind::String ? unit->text
                                                                   : "ns";
    out.emplace_back(name->text, to_ns(value->number, unit_text));
  }
  return out;
}

std::string format_ns(double ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << ns << " ns";
  return os.str();
}

const char* status_tag(BenchStatus status) {
  switch (status) {
    case BenchStatus::kOk:
      return "ok";
    case BenchStatus::kWarn:
      return "WARN";
    case BenchStatus::kFail:
      return "FAIL";
    case BenchStatus::kNew:
      return "new";
    case BenchStatus::kRemoved:
      return "REMOVED";
  }
  return "?";
}

}  // namespace

std::string BenchCheckReport::describe() const {
  std::ostringstream os;
  for (const BenchRow& row : rows) {
    os << "  [" << status_tag(row.status) << "] " << row.name;
    switch (row.status) {
      case BenchStatus::kNew:
        os << ": " << format_ns(row.candidate_ns) << " (no baseline)";
        break;
      case BenchStatus::kRemoved:
        os << ": " << format_ns(row.baseline_ns)
           << " (missing from candidate)";
        break;
      default:
        os << ": " << format_ns(row.baseline_ns) << " -> "
           << format_ns(row.candidate_ns) << " (" << std::fixed
           << std::setprecision(2) << row.ratio << "x)";
        break;
    }
    os << "\n";
  }
  if (failed > 0)
    os << "bench REGRESSION: " << failed << " benchmark(s) failed, " << warned
       << " warned";
  else if (warned > 0)
    os << "bench check passed with " << warned << " warning(s)";
  else
    os << "bench check passed: " << rows.size() << " benchmark(s) compared";
  return os.str();
}

std::string BenchCheckReport::github_annotations() const {
  std::ostringstream os;
  for (const BenchRow& row : rows) {
    if (row.status == BenchStatus::kFail) {
      os << "::error::benchmark regression: " << row.name << " "
         << format_ns(row.baseline_ns) << " -> "
         << format_ns(row.candidate_ns) << " (" << std::fixed
         << std::setprecision(2) << row.ratio << "x)\n";
    } else if (row.status == BenchStatus::kWarn) {
      os << "::warning::benchmark slowdown: " << row.name << " "
         << format_ns(row.baseline_ns) << " -> "
         << format_ns(row.candidate_ns) << " (" << std::fixed
         << std::setprecision(2) << row.ratio << "x)\n";
    } else if (row.status == BenchStatus::kRemoved) {
      os << "::warning::benchmark removed: " << row.name
         << " is in the baseline but not the candidate report\n";
    }
  }
  return os.str();
}

BenchCheckReport check_benchmarks(const std::string& baseline_json,
                                  const std::string& candidate_json,
                                  const BenchCheckOptions& opts) {
  RLB_REQUIRE(opts.warn_ratio >= 1.0 && opts.fail_ratio >= opts.warn_ratio,
              "need 1 <= warn-ratio <= fail-ratio");
  RLB_REQUIRE(opts.min_ns >= 0.0, "min-ns must be non-negative");
  const auto baseline = read_report(baseline_json, opts.metric);
  const auto candidate = read_report(candidate_json, opts.metric);

  std::map<std::string, double> baseline_by_name(baseline.begin(),
                                                 baseline.end());
  std::map<std::string, double> candidate_by_name(candidate.begin(),
                                                  candidate.end());

  BenchCheckReport report;
  for (const auto& [name, cand_ns] : candidate) {
    BenchRow row;
    row.name = name;
    row.candidate_ns = cand_ns;
    const auto it = baseline_by_name.find(name);
    if (it == baseline_by_name.end()) {
      row.status = BenchStatus::kNew;
    } else {
      row.baseline_ns = it->second;
      row.ratio = it->second > 0.0
                      ? cand_ns / it->second
                      : std::numeric_limits<double>::infinity();
      const double slow_by = cand_ns - it->second;
      // Both gates must trip: the ratio says the slowdown is real in
      // relative terms, the floor says it is big enough to matter.
      if (row.ratio > opts.fail_ratio && slow_by > opts.min_ns) {
        row.status = BenchStatus::kFail;
        ++report.failed;
      } else if (row.ratio > opts.warn_ratio && slow_by > opts.min_ns) {
        row.status = BenchStatus::kWarn;
        ++report.warned;
      }
    }
    report.rows.push_back(row);
  }
  for (const auto& [name, base_ns] : baseline) {
    if (candidate_by_name.count(name)) continue;
    BenchRow row;
    row.name = name;
    row.baseline_ns = base_ns;
    row.status = BenchStatus::kRemoved;
    ++report.warned;
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace rlb::engine
