// Shared rendering of the adaptive (--target-ci) stopping report.
//
// Every wired scenario surfaces the same three columns — half_width /
// jobs_used / converged — either appended to its main table or as a
// separate "adaptive" table. These helpers keep the column names,
// number formatting and explanatory note identical across scenarios
// (the per-scenario copies they replace had already started to drift in
// wording), so baselines and downstream CSV consumers see one spelling.
//
// Aggregation across the several simulations a table row may span stays
// at the call site via sim::AdaptiveReport::row_identity()/combine() —
// the stride pattern is scenario-specific; the rendering is not.
#pragma once

#include <string>
#include <vector>

#include "sim/replica.h"

namespace rlb::engine {

/// Append the three standard adaptive-report columns to `header`, in
/// the canonical order: half_width, jobs_used, converged.
void add_adaptive_columns(std::vector<std::string>& header);

/// Append `report` to `row`, formatted the standard way (half_width
/// with 5 decimals, jobs_used as an integer, converged as 0/1). Must
/// mirror add_adaptive_columns' column order.
void add_adaptive_cells(std::vector<std::string>& row,
                        const sim::AdaptiveReport& report);

/// The standard explanatory note for the adaptive columns. `subject`
/// names what one table row aggregates (e.g. "the six simulated
/// policies") for rows spanning several adaptive simulations; pass ""
/// when each row is a single simulation.
std::string adaptive_note(const std::string& subject = "");

}  // namespace rlb::engine
