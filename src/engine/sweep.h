// Deterministic parallel sweep primitives for the scenario engine.
//
// The contract that makes `rlb_run --threads=8` reproducible: every grid
// cell is an independent computation seeded only by (base seed, cell
// index), results land in a vector slot owned by the cell index, and the
// caller assembles tables in index order. The thread count therefore
// changes wall-clock time and nothing else — parallel and serial runs are
// bit-identical.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace rlb::engine {

/// Decorrelated per-cell seed: splitmix64 over (base, index). Deterministic
/// across platforms and independent of thread scheduling.
std::uint64_t cell_seed(std::uint64_t base, std::uint64_t index);

/// Number of workers actually used for `count` cells with a requested
/// thread count (0 means "hardware concurrency").
int resolve_threads(int requested);

/// results[i] = fn(i) for i in [0, count), computed by up to `threads`
/// workers pulling cell indices from a shared counter. The result order is
/// the index order, so the output is invariant under the thread count. The
/// first exception thrown by any cell is rethrown on the calling thread
/// after all workers finish.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, int threads, Fn&& fn) {
  std::vector<T> results(count);
  const int workers = std::min<std::size_t>(
      count, static_cast<std::size_t>(std::max(1, resolve_threads(threads))));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

/// One cell of a (rho x d x N x seed-replica) sweep grid.
struct SweepPoint {
  std::size_t index = 0;  ///< flat cell index (also the table row order)
  double rho = 0.0;
  int d = 0;
  int n = 0;
  std::uint64_t seed = 0;  ///< cell_seed(base_seed, index)
};

/// Cartesian grid over utilizations, choice counts, cluster sizes and seed
/// replicas. Axes with a single value collapse, so a plain rho sweep is
/// just SweepGrid{{rhos}, {d}, {n}, base, 1}.
class SweepGrid {
 public:
  SweepGrid(std::vector<double> rhos, std::vector<int> ds,
            std::vector<int> ns, std::uint64_t base_seed = 1,
            int replicas = 1);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] SweepPoint point(std::size_t index) const;

  [[nodiscard]] const std::vector<double>& rhos() const { return rhos_; }
  [[nodiscard]] const std::vector<int>& ds() const { return ds_; }
  [[nodiscard]] const std::vector<int>& ns() const { return ns_; }

 private:
  std::vector<double> rhos_;
  std::vector<int> ds_;
  std::vector<int> ns_;
  std::uint64_t base_seed_;
  int replicas_;
};

}  // namespace rlb::engine
