// Deterministic parallel sweep primitives for the scenario engine.
//
// The contract that makes `rlb_run --threads=8` reproducible: every grid
// cell is an independent computation seeded only by (base seed, cell
// index), results land in a vector slot owned by the cell index, and the
// caller assembles tables in index order. The thread count therefore
// changes wall-clock time and nothing else — parallel and serial runs are
// bit-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "util/parallel_for.h"
#include "util/thread_budget.h"

namespace rlb::engine {

/// Decorrelated per-cell seed: splitmix64 over (base, index). Deterministic
/// across platforms and independent of thread scheduling.
std::uint64_t cell_seed(std::uint64_t base, std::uint64_t index);

/// Number of workers actually used for `count` cells with a requested
/// thread count (0 means "hardware concurrency").
int resolve_threads(int requested);

/// results[i] = fn(i) for i in [0, count), computed by the calling thread
/// plus helpers drawn from `budget`, all pulling cell indices from a
/// shared counter. The result order is the index order, so the output is
/// invariant under the budget. Helpers are recruited between cells (not
/// only up front) and return their slot to the budget as they retire, so
/// a cell's inner replica loop (sim/replica.h, sharing the same budget)
/// and the cell loop split one pool without oversubscribing. The first
/// exception thrown by any cell stops the sweep and is rethrown on the
/// calling thread after all helpers finish.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, util::ThreadBudget& budget,
                            Fn&& fn) {
  std::vector<T> results(count);
  util::budgeted_for(count, budget,
                     [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

/// Convenience overload: a private budget of `threads` slots (0 means
/// hardware concurrency) for this one map call.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, int threads, Fn&& fn) {
  util::ThreadBudget budget(std::max(1, resolve_threads(threads)));
  return parallel_map<T>(count, budget, std::forward<Fn>(fn));
}

/// One cell of a (rho x d x N x seed-replica) sweep grid.
struct SweepPoint {
  std::size_t index = 0;  ///< flat cell index (also the table row order)
  double rho = 0.0;
  int d = 0;
  int n = 0;
  std::uint64_t seed = 0;  ///< cell_seed(base_seed, index)
};

/// Cartesian grid over utilizations, choice counts, cluster sizes and seed
/// replicas. Axes with a single value collapse, so a plain rho sweep is
/// just SweepGrid{{rhos}, {d}, {n}, base, 1}.
class SweepGrid {
 public:
  SweepGrid(std::vector<double> rhos, std::vector<int> ds,
            std::vector<int> ns, std::uint64_t base_seed = 1,
            int replicas = 1);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] SweepPoint point(std::size_t index) const;

  [[nodiscard]] const std::vector<double>& rhos() const { return rhos_; }
  [[nodiscard]] const std::vector<int>& ds() const { return ds_; }
  [[nodiscard]] const std::vector<int>& ns() const { return ns_; }

 private:
  std::vector<double> rhos_;
  std::vector<int> ds_;
  std::vector<int> ns_;
  std::uint64_t base_seed_;
  int replicas_;
};

}  // namespace rlb::engine
