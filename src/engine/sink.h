// Unified result sink for the scenario engine.
//
// A scenario produces one ScenarioOutput: free-text preamble, a sequence
// of named tables (each with optional trailing commentary), and a
// postamble. The sinks render that one structure three ways: the aligned
// console text the bench binaries used to print, CSV for plotting, and
// JSON for programmatic consumers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/table.h"

namespace rlb::engine {

struct NamedTable {
  std::string name;  ///< slug used in csv file names and json keys
  util::Table table;
  std::string note;  ///< commentary printed after the table
};

struct ScenarioOutput {
  std::string preamble;
  std::vector<NamedTable> tables;
  std::string postamble;

  /// Append a table and return a reference for row filling.
  util::Table& add_table(const std::string& name,
                         std::vector<std::string> header);

  /// Attach commentary to the most recently added table.
  void note(const std::string& text);
};

/// Console rendering: preamble, each table (with its note), postamble.
void write_text(const ScenarioOutput& out, std::ostream& os);

/// CSV: a single table goes to `path` verbatim; with multiple tables each
/// goes to `<stem>.<table-name><ext>`. Returns the paths written.
std::vector<std::string> write_csv(const ScenarioOutput& out,
                                   const std::string& path);

/// JSON document {"scenario": ..., "tables": [{name, header, rows}...]}.
/// Cells that parse as finite numbers are emitted as JSON numbers, all
/// others as strings.
std::string to_json(const ScenarioOutput& out,
                    const std::string& scenario_name);
void write_json(const ScenarioOutput& out, const std::string& scenario_name,
                const std::string& path);

}  // namespace rlb::engine
