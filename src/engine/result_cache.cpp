#include "engine/result_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "engine/json.h"
#include "util/require.h"

namespace rlb::engine {

namespace {

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

void CacheKey::set(const std::string& name, const std::string& value) {
  for (auto& [existing, v] : params_) {
    if (existing == name) {
      v = value;
      return;
    }
  }
  params_.emplace_back(name, value);
}

void CacheKey::set(const std::string& name, const char* value) {
  set(name, std::string(value));
}

void CacheKey::set(const std::string& name, double value) {
  set(name, format_double(value));
}

void CacheKey::set(const std::string& name, std::uint64_t value) {
  set(name, std::to_string(value));
}

void CacheKey::set(const std::string& name, std::int64_t value) {
  set(name, std::to_string(value));
}

void CacheKey::set(const std::string& name, int value) {
  set(name, std::to_string(value));
}

void CacheKey::set(const std::string& name, bool value) {
  set(name, std::string(value ? "1" : "0"));
}

std::string CacheKey::canonical() const {
  auto sorted = params_;
  std::sort(sorted.begin(), sorted.end());
  std::string out = scenario_;
  for (const auto& [name, value] : sorted) {
    out += '|';
    out += name;
    out += '=';
    out += value;
  }
  return out;
}

namespace {

/// 64-bit FNV-1a; `basis` varies so two passes give 128 digest bits.
std::uint64_t fnv1a(const std::string& s, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string CacheKey::digest() const {
  const std::string key = canonical();
  const std::uint64_t lo = fnv1a(key, 14695981039346656037ull);
  // Chain the first hash into the second pass's basis so the two words
  // decorrelate even for single-byte keys.
  const std::uint64_t hi = fnv1a(key, lo ^ 0x9e3779b97f4a7c15ull);
  return hex16(hi) + hex16(lo);
}

namespace {

json::Value encode_moments(const sim::MomentsState& s) {
  json::Value v;
  v.kind = json::Value::Kind::Object;
  v.members.emplace_back("count", json::make_number(s.count));
  v.members.emplace_back("mean", json::make_number(s.mean));
  v.members.emplace_back("m2", json::make_number(s.m2));
  v.members.emplace_back("min", json::make_number(s.min));
  v.members.emplace_back("max", json::make_number(s.max));
  return v;
}

const json::Value& member_of(const json::Value& v, const char* key) {
  const json::Value* found = v.find(key);
  if (found == nullptr)
    throw std::invalid_argument(std::string("cache record is missing '") +
                                key + "'");
  return *found;
}

sim::MomentsState parse_moments(const json::Value& v) {
  sim::MomentsState s;
  s.count = json::uint64_of(member_of(v, "count"));
  s.mean = json::number_of(member_of(v, "mean"));
  s.m2 = json::number_of(member_of(v, "m2"));
  s.min = json::number_of(member_of(v, "min"));
  s.max = json::number_of(member_of(v, "max"));
  return s;
}

json::Value encode_round_state(const sim::ClusterRoundState& s) {
  json::Value v;
  v.kind = json::Value::Kind::Object;
  v.members.emplace_back(
      "rounds", json::make_number(static_cast<std::int64_t>(s.rounds)));
  v.members.emplace_back("jobs_used", json::make_number(s.jobs_used));
  v.members.emplace_back("batch", json::make_number(s.batch));
  v.members.emplace_back("sojourn", encode_moments(s.sojourn));
  v.members.emplace_back("wait", encode_moments(s.wait));
  json::Value ci;
  ci.kind = json::Value::Kind::Object;
  ci.members.emplace_back("batch_size",
                          json::make_number(s.sojourn_ci.batch_size));
  ci.members.emplace_back("in_batch",
                          json::make_number(s.sojourn_ci.in_batch));
  ci.members.emplace_back("batch_sum",
                          json::make_number(s.sojourn_ci.batch_sum));
  ci.members.emplace_back("batch_means",
                          encode_moments(s.sojourn_ci.batch_means));
  v.members.emplace_back("sojourn_ci", std::move(ci));
  json::Value q;
  q.kind = json::Value::Kind::Object;
  q.members.emplace_back("capacity",
                         json::make_number(s.sojourn_quantiles.capacity));
  q.members.emplace_back("seen", json::make_number(s.sojourn_quantiles.seen));
  q.members.emplace_back("rng_state",
                         json::make_number(s.sojourn_quantiles.rng_state));
  json::Value sample;
  sample.kind = json::Value::Kind::Array;
  sample.items.reserve(s.sojourn_quantiles.sample.size());
  for (const double x : s.sojourn_quantiles.sample)
    sample.items.push_back(json::make_number(x));
  q.members.emplace_back("sample", std::move(sample));
  v.members.emplace_back("quantiles", std::move(q));
  v.members.emplace_back("area_jobs", json::make_number(s.area_jobs));
  v.members.emplace_back("busy_area", json::make_number(s.busy_area));
  v.members.emplace_back("window", json::make_number(s.window));
  v.members.emplace_back("sim_time", json::make_number(s.sim_time));
  v.members.emplace_back("sla_violations",
                         json::make_number(s.sla_violations));
  v.members.emplace_back("sla_threshold",
                         json::make_number(s.sla_threshold));
  return v;
}

sim::ClusterRoundState parse_round_state(const json::Value& v) {
  sim::ClusterRoundState s;
  s.rounds = static_cast<int>(json::uint64_of(member_of(v, "rounds")));
  s.jobs_used = json::uint64_of(member_of(v, "jobs_used"));
  s.batch = json::uint64_of(member_of(v, "batch"));
  s.sojourn = parse_moments(member_of(v, "sojourn"));
  s.wait = parse_moments(member_of(v, "wait"));
  const json::Value& ci = member_of(v, "sojourn_ci");
  s.sojourn_ci.batch_size = json::uint64_of(member_of(ci, "batch_size"));
  s.sojourn_ci.in_batch = json::uint64_of(member_of(ci, "in_batch"));
  s.sojourn_ci.batch_sum = json::number_of(member_of(ci, "batch_sum"));
  s.sojourn_ci.batch_means = parse_moments(member_of(ci, "batch_means"));
  const json::Value& q = member_of(v, "quantiles");
  s.sojourn_quantiles.capacity = json::uint64_of(member_of(q, "capacity"));
  s.sojourn_quantiles.seen = json::uint64_of(member_of(q, "seen"));
  s.sojourn_quantiles.rng_state = json::uint64_of(member_of(q, "rng_state"));
  const json::Value& sample = member_of(q, "sample");
  if (sample.kind != json::Value::Kind::Array)
    throw std::invalid_argument("cache record: 'sample' is not an array");
  s.sojourn_quantiles.sample.reserve(sample.items.size());
  for (const json::Value& x : sample.items)
    s.sojourn_quantiles.sample.push_back(json::number_of(x));
  s.area_jobs = json::number_of(member_of(v, "area_jobs"));
  s.busy_area = json::number_of(member_of(v, "busy_area"));
  s.window = json::number_of(member_of(v, "window"));
  s.sim_time = json::number_of(member_of(v, "sim_time"));
  s.sla_violations = json::uint64_of(member_of(v, "sla_violations"));
  s.sla_threshold = json::number_of(member_of(v, "sla_threshold"));
  return s;
}

}  // namespace

std::string encode_record(const CacheKey& key, const CellRecord& record) {
  json::Value v;
  v.kind = json::Value::Kind::Object;
  v.members.emplace_back("version", json::make_string(kResultCacheVersion));
  v.members.emplace_back("key", json::make_string(key.canonical()));
  v.members.emplace_back("target_ci", json::make_number(record.target_ci));
  json::Value values;
  values.kind = json::Value::Kind::Array;
  values.items.reserve(record.values.size());
  for (const double x : record.values)
    values.items.push_back(json::make_number(x));
  v.members.emplace_back("values", std::move(values));
  json::Value report;
  report.kind = json::Value::Kind::Object;
  report.members.emplace_back(
      "rounds",
      json::make_number(static_cast<std::int64_t>(record.report.rounds)));
  report.members.emplace_back("jobs_used",
                              json::make_number(record.report.jobs_used));
  report.members.emplace_back("half_width",
                              json::make_number(record.report.half_width));
  report.members.emplace_back("converged",
                              json::make_bool(record.report.converged));
  v.members.emplace_back("report", std::move(report));
  if (record.has_round_state)
    v.members.emplace_back("round_state",
                           encode_round_state(record.round_state));
  return json::encode(v);
}

std::optional<CellRecord> parse_record(const CacheKey& key,
                                       const std::string& text) {
  try {
    const json::Value v = json::parse(text);
    if (v.kind != json::Value::Kind::Object) return std::nullopt;
    const json::Value& version = member_of(v, "version");
    if (version.kind != json::Value::Kind::String ||
        version.text != kResultCacheVersion)
      return std::nullopt;
    const json::Value& stored_key = member_of(v, "key");
    if (stored_key.kind != json::Value::Kind::String ||
        stored_key.text != key.canonical())
      return std::nullopt;
    CellRecord record;
    record.target_ci = json::number_of(member_of(v, "target_ci"));
    const json::Value& values = member_of(v, "values");
    if (values.kind != json::Value::Kind::Array) return std::nullopt;
    record.values.reserve(values.items.size());
    for (const json::Value& x : values.items)
      record.values.push_back(json::number_of(x));
    const json::Value& report = member_of(v, "report");
    record.report.rounds =
        static_cast<int>(json::uint64_of(member_of(report, "rounds")));
    record.report.jobs_used =
        json::uint64_of(member_of(report, "jobs_used"));
    record.report.half_width =
        json::number_of(member_of(report, "half_width"));
    const json::Value& converged = member_of(report, "converged");
    if (converged.kind != json::Value::Kind::Bool) return std::nullopt;
    record.report.converged = converged.boolean;
    if (const json::Value* rs = v.find("round_state")) {
      record.round_state = parse_round_state(*rs);
      record.has_round_state = true;
    }
    return record;
  } catch (const std::exception&) {
    // Malformed, truncated, or schema-drifted records all land here: the
    // cache's contract is discard-and-recompute, never failure.
    return std::nullopt;
  }
}

ResultCache::ResultCache(std::string dir, CacheMode mode)
    : dir_(std::move(dir)), mode_(mode) {
  RLB_REQUIRE(!dir_.empty(), "cache directory must be non-empty");
  std::filesystem::create_directories(dir_);
}

std::string ResultCache::path_of(const CacheKey& key) const {
  return dir_ + "/" + key.digest() + ".json";
}

ResultCache::Lookup ResultCache::lookup(const CacheKey& key,
                                        double target_ci, bool refine) {
  Lookup out;
  if (mode_ == CacheMode::kRefresh) {
    ++misses_;
    return out;
  }
  std::ifstream f(path_of(key));
  if (!f.good()) {
    ++misses_;
    return out;
  }
  std::ostringstream text;
  text << f.rdbuf();
  std::optional<CellRecord> record = parse_record(key, text.str());
  if (!record) {
    ++discarded_;
    ++misses_;
    return out;
  }
  if (record->target_ci == target_ci) {
    ++hits_;
    out.outcome = Lookup::Outcome::kHit;
    out.record = std::move(*record);
    return out;
  }
  // A looser-target adaptive record can seed a refinement; a tighter or
  // fixed-budget one cannot (resuming past the new stopping point would
  // not equal a cold run).
  if (refine && target_ci > 0.0 && record->has_round_state &&
      record->target_ci > target_ci) {
    ++refined_;
    out.outcome = Lookup::Outcome::kRefine;
    out.record = std::move(*record);
    return out;
  }
  ++misses_;
  return out;
}

void ResultCache::store(const CacheKey& key, const CellRecord& record) {
  if (mode_ == CacheMode::kReadOnly) return;
  const std::string path = path_of(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    RLB_REQUIRE(f.good(), "cannot write cache record: " + tmp);
    f << encode_record(key, record) << "\n";
    RLB_REQUIRE(f.good(), "short write on cache record: " + tmp);
  }
  std::filesystem::rename(tmp, path);
  ++stored_;
}

std::string ResultCache::summary() const {
  std::ostringstream os;
  os << "cache summary: hits=" << hits_ << " misses=" << misses_
     << " refined=" << refined_ << " discarded=" << discarded_
     << " stored=" << stored_;
  return os.str();
}

CacheMode parse_cache_mode(const std::string& text) {
  if (text == "readwrite") return CacheMode::kReadWrite;
  if (text == "readonly") return CacheMode::kReadOnly;
  if (text == "refresh") return CacheMode::kRefresh;
  throw std::invalid_argument(
      "--cache-mode must be 'readwrite', 'readonly', or 'refresh'");
}

std::string cache_cli_error(bool has_cache, bool has_refine,
                            bool has_cache_mode) {
  if (has_cache) return {};
  if (has_refine && has_cache_mode)
    return "--refine and --cache-mode require --cache=DIR (they configure "
           "the result cache and do nothing without one)";
  if (has_refine)
    return "--refine requires --cache=DIR (it resumes cached adaptive "
           "round state and does nothing without a cache)";
  if (has_cache_mode)
    return "--cache-mode requires --cache=DIR (it configures the result "
           "cache and does nothing without one)";
  return {};
}

}  // namespace rlb::engine
