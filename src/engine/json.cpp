#include "engine/json.h"

#include <cstddef>
#include <stdexcept>

#include "util/require.h"

namespace rlb::engine::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    RLB_REQUIRE(pos_ == s_.size(), "JSON: trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    RLB_REQUIRE(pos_ < s_.size(), "JSON: unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    RLB_REQUIRE(pos_ < s_.size() && s_[pos_] == c,
                std::string("JSON: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.text = string();
        return v;
      }
      case 't': {
        RLB_REQUIRE(consume_literal("true"), "JSON: bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        RLB_REQUIRE(consume_literal("false"), "JSON: bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        return v;
      }
      case 'n': {
        RLB_REQUIRE(consume_literal("null"), "JSON: bad literal");
        return Value{};
      }
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      RLB_REQUIRE(pos_ < s_.size(), "JSON: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      RLB_REQUIRE(pos_ < s_.size(), "JSON: bad escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          RLB_REQUIRE(pos_ + 4 <= s_.size(), "JSON: bad \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              RLB_REQUIRE(false, "JSON: bad \\u digit");
          }
          // Our writers only emit \u00XX for control bytes; decode the
          // low byte and refuse anything wider rather than implement
          // full UTF-16 surrogate handling.
          RLB_REQUIRE(code < 0x100, "JSON: \\u beyond latin-1");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          RLB_REQUIRE(false, "JSON: unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    RLB_REQUIRE(pos_ > start, "JSON: expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    v.text = s_.substr(start, pos_ - start);
    std::size_t consumed = 0;
    try {
      v.number = std::stod(v.text, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    // stod must consume the whole token — "1e-" or "1.2.3" parse as a
    // prefix otherwise and would silently compare against the wrong value.
    RLB_REQUIRE(consumed == v.text.size(), "JSON: bad number '" + v.text + "'");
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace rlb::engine::json
