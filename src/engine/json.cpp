#include "engine/json.h"

#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "util/require.h"

namespace rlb::engine::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    RLB_REQUIRE(pos_ == s_.size(), "JSON: trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    RLB_REQUIRE(pos_ < s_.size(), "JSON: unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    RLB_REQUIRE(pos_ < s_.size() && s_[pos_] == c,
                std::string("JSON: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.text = string();
        return v;
      }
      case 't': {
        RLB_REQUIRE(consume_literal("true"), "JSON: bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        RLB_REQUIRE(consume_literal("false"), "JSON: bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        return v;
      }
      case 'n': {
        RLB_REQUIRE(consume_literal("null"), "JSON: bad literal");
        return Value{};
      }
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      RLB_REQUIRE(pos_ < s_.size(), "JSON: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      RLB_REQUIRE(pos_ < s_.size(), "JSON: bad escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          RLB_REQUIRE(pos_ + 4 <= s_.size(), "JSON: bad \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              RLB_REQUIRE(false, "JSON: bad \\u digit");
          }
          // Our writers only emit \u00XX for control bytes; decode the
          // low byte and refuse anything wider rather than implement
          // full UTF-16 surrogate handling.
          RLB_REQUIRE(code < 0x100, "JSON: \\u beyond latin-1");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          RLB_REQUIRE(false, "JSON: unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // JSON numbers start with a digit after the optional minus — a
    // leading '+' or '.' is strtod-parsable but outside the subset.
    RLB_REQUIRE(pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9',
                "JSON: expected a value");
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    RLB_REQUIRE(pos_ > start, "JSON: expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    v.text = s_.substr(start, pos_ - start);
    // strtod rather than stod: stod throws out_of_range on ERANGE, which
    // glibc also sets for UNDERFLOW — a subnormal like 5e-324 is a
    // perfectly round-trippable double and must parse. Only overflow (the
    // token is not representable at all) and partial consumption — "1e-"
    // or "1.2.3" would otherwise parse as a prefix and silently compare
    // against the wrong value — are errors.
    errno = 0;
    char* end = nullptr;
    v.number = std::strtod(v.text.c_str(), &end);
    const bool whole =
        end != v.text.c_str() && end == v.text.c_str() + v.text.size();
    const bool overflow =
        errno == ERANGE && (v.number == HUGE_VAL || v.number == -HUGE_VAL);
    RLB_REQUIRE(whole && !overflow, "JSON: bad number '" + v.text + "'");
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse(); }

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void encode_into(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::Null:
      out += "null";
      return;
    case Value::Kind::Bool:
      out += v.boolean ? "true" : "false";
      return;
    case Value::Kind::Number:
      // The verbatim source token: numbers survive parse -> encode
      // byte-for-byte, which is what makes cache records reproducible.
      out += v.text;
      return;
    case Value::Kind::String:
      out += quote(v.text);
      return;
    case Value::Kind::Array: {
      out.push_back('[');
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out.push_back(',');
        encode_into(v.items[i], out);
      }
      out.push_back(']');
      return;
    }
    case Value::Kind::Object: {
      out.push_back('{');
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += quote(v.members[i].first);
        out.push_back(':');
        encode_into(v.members[i].second, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string encode(const Value& v) {
  std::string out;
  encode_into(v, out);
  return out;
}

Value make_string(std::string s) {
  Value v;
  v.kind = Value::Kind::String;
  v.text = std::move(s);
  return v;
}

Value make_bool(bool b) {
  Value v;
  v.kind = Value::Kind::Bool;
  v.boolean = b;
  return v;
}

Value make_number(double x) {
  if (!std::isfinite(x)) {
    // JSON has no non-finite numbers; the spellings below are what
    // util::fmt prints, and number_of() maps them back.
    if (std::isnan(x)) return make_string("nan");
    return make_string(x > 0 ? "inf" : "-inf");
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  Value v;
  v.kind = Value::Kind::Number;
  v.text = buf;
  v.number = x;
  return v;
}

Value make_number(std::uint64_t x) {
  Value v;
  v.kind = Value::Kind::Number;
  v.text = std::to_string(x);
  v.number = static_cast<double>(x);
  return v;
}

Value make_number(std::int64_t x) {
  Value v;
  v.kind = Value::Kind::Number;
  v.text = std::to_string(x);
  v.number = static_cast<double>(x);
  return v;
}

double number_of(const Value& v) {
  if (v.kind == Value::Kind::Number) return v.number;
  if (v.kind == Value::Kind::String) {
    if (v.text == "inf") return std::numeric_limits<double>::infinity();
    if (v.text == "-inf") return -std::numeric_limits<double>::infinity();
    if (v.text == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  throw std::invalid_argument("JSON: expected a number value");
}

std::uint64_t uint64_of(const Value& v) {
  RLB_REQUIRE(v.kind == Value::Kind::Number,
              "JSON: expected an unsigned integer value");
  RLB_REQUIRE(!v.text.empty() && v.text.find_first_not_of("0123456789") ==
                                     std::string::npos,
              "JSON: expected an unsigned integer token, got '" + v.text +
                  "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.text.c_str(), &end, 10);
  RLB_REQUIRE(errno == 0 && end == v.text.c_str() + v.text.size(),
              "JSON: unsigned integer out of range: '" + v.text + "'");
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace rlb::engine::json
