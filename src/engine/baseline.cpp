#include "engine/baseline.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/require.h"

namespace rlb::engine {

namespace {

/// Minimal recursive-descent JSON reader, sufficient for the documents
/// to_json emits (objects, arrays, strings with escapes, numbers,
/// true/false/null). Kept private to this translation unit — the engine
/// is not in the business of general JSON.
class JsonParser {
 public:
  struct Value {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;  // String kind
    std::vector<Value> items;
    std::vector<std::pair<std::string, Value>> members;

    [[nodiscard]] const Value* find(const std::string& key) const {
      for (const auto& [k, v] : members)
        if (k == key) return &v;
      return nullptr;
    }
  };

  explicit JsonParser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    RLB_REQUIRE(pos_ == s_.size(), "baseline JSON: trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    RLB_REQUIRE(pos_ < s_.size(), "baseline JSON: unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    RLB_REQUIRE(pos_ < s_.size() && s_[pos_] == c,
                std::string("baseline JSON: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.text = string();
        return v;
      }
      case 't': {
        RLB_REQUIRE(consume_literal("true"), "baseline JSON: bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        RLB_REQUIRE(consume_literal("false"), "baseline JSON: bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        return v;
      }
      case 'n': {
        RLB_REQUIRE(consume_literal("null"), "baseline JSON: bad literal");
        return Value{};
      }
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      RLB_REQUIRE(pos_ < s_.size(), "baseline JSON: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      RLB_REQUIRE(pos_ < s_.size(), "baseline JSON: bad escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          RLB_REQUIRE(pos_ + 4 <= s_.size(), "baseline JSON: bad \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              RLB_REQUIRE(false, "baseline JSON: bad \\u digit");
          }
          // The sink only emits \u00XX for control bytes; decode the
          // low byte and refuse anything wider rather than implement
          // full UTF-16 surrogate handling.
          RLB_REQUIRE(code < 0x100, "baseline JSON: \\u beyond latin-1");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          RLB_REQUIRE(false, "baseline JSON: unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    RLB_REQUIRE(pos_ > start, "baseline JSON: expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    v.text = s_.substr(start, pos_ - start);
    std::size_t consumed = 0;
    try {
      v.number = std::stod(v.text, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    // stod must consume the whole token — "1e-" or "1.2.3" parse as a
    // prefix otherwise and would silently compare against the wrong value.
    RLB_REQUIRE(consumed == v.text.size(),
                "baseline JSON: bad number '" + v.text + "'");
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// True when `s` parses as a finite double, mirroring the sink's
/// is_json_number notion of a numeric cell.
bool cell_as_number(const std::string& s, double& out) {
  if (s.empty()) return false;
  std::size_t consumed = 0;
  try {
    out = std::stod(s, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == s.size() && std::isfinite(out);
}

void add_structure_mismatch(BaselineReport& report, const std::string& table,
                            const std::string& expected,
                            const std::string& actual) {
  report.ok = false;
  report.mismatches.push_back(BaselineMismatch{
      table, "", std::numeric_limits<std::size_t>::max(), expected, actual});
}

/// Split on commas, dropping empty parts; parts are returned verbatim
/// (callers trim or parse as their own grammar requires). Shared by the
/// two comma-list flag grammars in this file (--rtol/--atol column lists
/// and --baseline-ignore).
std::vector<std::string> comma_parts(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    std::string part =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!part.empty()) parts.push_back(std::move(part));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

}  // namespace

std::set<std::string> parse_ignore_columns(const std::string& spec) {
  std::set<std::string> out;
  for (std::string part : comma_parts(spec)) {
    const auto first = part.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    out.insert(part.substr(first, part.find_last_not_of(" \t") - first + 1));
  }
  return out;
}

double ToleranceSpec::for_column(const std::string& column) const {
  const auto it = by_column.find(column);
  return it == by_column.end() ? default_value : it->second;
}

ToleranceSpec ToleranceSpec::parse(const std::string& spec,
                                   double fallback) {
  ToleranceSpec out;
  out.default_value = fallback;
  for (const std::string& part : comma_parts(spec)) {
    const std::size_t eq = part.find('=');
    const std::string value_text =
        eq == std::string::npos ? part : part.substr(eq + 1);
    double value = 0.0;
    RLB_REQUIRE(cell_as_number(value_text, value) && value >= 0.0,
                "bad tolerance '" + part + "'");
    if (eq == std::string::npos)
      out.default_value = value;
    else
      out.by_column[part.substr(0, eq)] = value;
  }
  return out;
}

std::string BaselineReport::describe() const {
  std::ostringstream os;
  if (ok) {
    os << "baseline match: " << cells_compared << " cells within tolerance";
    return os.str();
  }
  os << "baseline DRIFT: " << mismatches.size() << " mismatch(es) over "
     << cells_compared << " compared cells";
  const std::size_t shown = std::min<std::size_t>(mismatches.size(), 20);
  for (std::size_t i = 0; i < shown; ++i) {
    const BaselineMismatch& m = mismatches[i];
    os << "\n  [" << m.table << "]";
    if (m.row != std::numeric_limits<std::size_t>::max())
      os << " row " << m.row << ", column '" << m.column << "'";
    os << ": baseline " << m.expected << ", got " << m.actual;
  }
  if (shown < mismatches.size())
    os << "\n  ... and " << (mismatches.size() - shown) << " more";
  return os.str();
}

BaselineReport compare_to_baseline(const ScenarioOutput& out,
                                   const std::string& baseline_json,
                                   const BaselineOptions& opts) {
  const JsonParser::Value root = JsonParser(baseline_json).parse();
  RLB_REQUIRE(root.kind == JsonParser::Value::Kind::Object,
              "baseline JSON: root must be an object");
  const auto* tables = root.find("tables");
  RLB_REQUIRE(tables != nullptr &&
                  tables->kind == JsonParser::Value::Kind::Array,
              "baseline JSON: missing 'tables' array");

  BaselineReport report;
  if (tables->items.size() != out.tables.size()) {
    add_structure_mismatch(report, "<document>",
                           std::to_string(tables->items.size()) + " tables",
                           std::to_string(out.tables.size()) + " tables");
    return report;
  }

  for (std::size_t t = 0; t < out.tables.size(); ++t) {
    const NamedTable& actual = out.tables[t];
    const JsonParser::Value& ref = tables->items[t];
    RLB_REQUIRE(ref.kind == JsonParser::Value::Kind::Object,
                "baseline JSON: table entry must be an object");
    const auto* name = ref.find("name");
    const auto* header = ref.find("header");
    const auto* rows = ref.find("rows");
    RLB_REQUIRE(name && name->kind == JsonParser::Value::Kind::String &&
                    header &&
                    header->kind == JsonParser::Value::Kind::Array &&
                    rows && rows->kind == JsonParser::Value::Kind::Array,
                "baseline JSON: table needs name/header/rows");

    if (name->text != actual.name) {
      add_structure_mismatch(report, actual.name, "table '" + name->text + "'",
                             "table '" + actual.name + "'");
      continue;
    }
    const auto& actual_header = actual.table.header();
    bool header_matches = header->items.size() == actual_header.size();
    for (std::size_t c = 0; header_matches && c < actual_header.size(); ++c)
      header_matches = header->items[c].kind ==
                           JsonParser::Value::Kind::String &&
                       header->items[c].text == actual_header[c];
    if (!header_matches) {
      add_structure_mismatch(report, actual.name, "a different header",
                             "header drift");
      continue;
    }
    const auto& actual_rows = actual.table.data();
    if (rows->items.size() != actual_rows.size()) {
      add_structure_mismatch(
          report, actual.name,
          std::to_string(rows->items.size()) + " rows",
          std::to_string(actual_rows.size()) + " rows");
      continue;
    }

    for (std::size_t r = 0; r < actual_rows.size(); ++r) {
      const JsonParser::Value& ref_row = rows->items[r];
      RLB_REQUIRE(ref_row.kind == JsonParser::Value::Kind::Array &&
                      ref_row.items.size() == actual_rows[r].size(),
                  "baseline JSON: row arity drift in '" + actual.name + "'");
      for (std::size_t c = 0; c < actual_rows[r].size(); ++c) {
        const std::string& column = actual_header[c];
        if (opts.ignore_columns.count(column)) continue;
        const JsonParser::Value& ref_cell = ref_row.items[c];
        const std::string& actual_cell = actual_rows[r][c];
        ++report.cells_compared;

        double actual_num = 0.0;
        const bool actual_is_num = cell_as_number(actual_cell, actual_num);
        if (ref_cell.kind == JsonParser::Value::Kind::Number &&
            actual_is_num) {
          const double diff = std::abs(actual_num - ref_cell.number);
          const double bound = opts.atol.for_column(column) +
                               opts.rtol.for_column(column) *
                                   std::abs(ref_cell.number);
          if (diff <= bound) continue;
          report.ok = false;
          report.mismatches.push_back(BaselineMismatch{
              actual.name, column, r, ref_cell.text, actual_cell});
        } else {
          const std::string& ref_text = ref_cell.text;
          const bool same =
              ref_cell.kind == JsonParser::Value::Kind::String
                  ? ref_cell.text == actual_cell
                  : ref_cell.kind == JsonParser::Value::Kind::Number &&
                        ref_cell.text == actual_cell;
          if (same) continue;
          report.ok = false;
          report.mismatches.push_back(BaselineMismatch{
              actual.name, column, r, "'" + ref_text + "'",
              "'" + actual_cell + "'"});
        }
      }
    }
  }
  return report;
}

std::string read_text_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  RLB_REQUIRE(f.good(), "cannot open file: " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace rlb::engine
