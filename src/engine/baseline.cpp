#include "engine/baseline.h"

#include "engine/json.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/require.h"

namespace rlb::engine {

namespace {

/// True when `s` parses as a finite double, mirroring the sink's
/// is_json_number notion of a numeric cell.
bool cell_as_number(const std::string& s, double& out) {
  if (s.empty()) return false;
  std::size_t consumed = 0;
  try {
    out = std::stod(s, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == s.size() && std::isfinite(out);
}

void add_structure_mismatch(BaselineReport& report, const std::string& table,
                            const std::string& expected,
                            const std::string& actual) {
  report.ok = false;
  report.mismatches.push_back(BaselineMismatch{
      table, "", std::numeric_limits<std::size_t>::max(), expected, actual});
}

/// Split on commas, dropping empty parts; parts are returned verbatim
/// (callers trim or parse as their own grammar requires). Shared by the
/// two comma-list flag grammars in this file (--rtol/--atol column lists
/// and --baseline-ignore).
std::vector<std::string> comma_parts(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    std::string part =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!part.empty()) parts.push_back(std::move(part));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

}  // namespace

std::set<std::string> parse_ignore_columns(const std::string& spec) {
  std::set<std::string> out;
  for (std::string part : comma_parts(spec)) {
    const auto first = part.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    out.insert(part.substr(first, part.find_last_not_of(" \t") - first + 1));
  }
  return out;
}

double ToleranceSpec::for_column(const std::string& column) const {
  const auto it = by_column.find(column);
  return it == by_column.end() ? default_value : it->second;
}

ToleranceSpec ToleranceSpec::parse(const std::string& spec,
                                   double fallback) {
  ToleranceSpec out;
  out.default_value = fallback;
  for (const std::string& part : comma_parts(spec)) {
    const std::size_t eq = part.find('=');
    const std::string value_text =
        eq == std::string::npos ? part : part.substr(eq + 1);
    double value = 0.0;
    RLB_REQUIRE(cell_as_number(value_text, value) && value >= 0.0,
                "bad tolerance '" + part + "'");
    if (eq == std::string::npos)
      out.default_value = value;
    else
      out.by_column[part.substr(0, eq)] = value;
  }
  return out;
}

std::string BaselineReport::describe() const {
  std::ostringstream os;
  if (ok) {
    os << "baseline match: " << cells_compared << " cells within tolerance";
    return os.str();
  }
  os << "baseline DRIFT: " << mismatches.size() << " mismatch(es) over "
     << cells_compared << " compared cells";
  const std::size_t shown = std::min<std::size_t>(mismatches.size(), 20);
  for (std::size_t i = 0; i < shown; ++i) {
    const BaselineMismatch& m = mismatches[i];
    os << "\n  [" << m.table << "]";
    if (m.row != std::numeric_limits<std::size_t>::max())
      os << " row " << m.row << ", column '" << m.column << "'";
    os << ": baseline " << m.expected << ", got " << m.actual;
  }
  if (shown < mismatches.size())
    os << "\n  ... and " << (mismatches.size() - shown) << " more";
  return os.str();
}

BaselineReport compare_to_baseline(const ScenarioOutput& out,
                                   const std::string& baseline_json,
                                   const BaselineOptions& opts) {
  const json::Value root = json::parse(baseline_json);
  RLB_REQUIRE(root.kind == json::Value::Kind::Object,
              "baseline JSON: root must be an object");
  const auto* tables = root.find("tables");
  RLB_REQUIRE(tables != nullptr &&
                  tables->kind == json::Value::Kind::Array,
              "baseline JSON: missing 'tables' array");

  BaselineReport report;
  if (tables->items.size() != out.tables.size()) {
    add_structure_mismatch(report, "<document>",
                           std::to_string(tables->items.size()) + " tables",
                           std::to_string(out.tables.size()) + " tables");
    return report;
  }

  for (std::size_t t = 0; t < out.tables.size(); ++t) {
    const NamedTable& actual = out.tables[t];
    const json::Value& ref = tables->items[t];
    RLB_REQUIRE(ref.kind == json::Value::Kind::Object,
                "baseline JSON: table entry must be an object");
    const auto* name = ref.find("name");
    const auto* header = ref.find("header");
    const auto* rows = ref.find("rows");
    RLB_REQUIRE(name && name->kind == json::Value::Kind::String &&
                    header &&
                    header->kind == json::Value::Kind::Array &&
                    rows && rows->kind == json::Value::Kind::Array,
                "baseline JSON: table needs name/header/rows");

    if (name->text != actual.name) {
      add_structure_mismatch(report, actual.name, "table '" + name->text + "'",
                             "table '" + actual.name + "'");
      continue;
    }
    const auto& actual_header = actual.table.header();
    bool header_matches = header->items.size() == actual_header.size();
    for (std::size_t c = 0; header_matches && c < actual_header.size(); ++c)
      header_matches = header->items[c].kind ==
                           json::Value::Kind::String &&
                       header->items[c].text == actual_header[c];
    if (!header_matches) {
      add_structure_mismatch(report, actual.name, "a different header",
                             "header drift");
      continue;
    }
    const auto& actual_rows = actual.table.data();
    if (rows->items.size() != actual_rows.size()) {
      add_structure_mismatch(
          report, actual.name,
          std::to_string(rows->items.size()) + " rows",
          std::to_string(actual_rows.size()) + " rows");
      continue;
    }

    for (std::size_t r = 0; r < actual_rows.size(); ++r) {
      const json::Value& ref_row = rows->items[r];
      RLB_REQUIRE(ref_row.kind == json::Value::Kind::Array &&
                      ref_row.items.size() == actual_rows[r].size(),
                  "baseline JSON: row arity drift in '" + actual.name + "'");
      for (std::size_t c = 0; c < actual_rows[r].size(); ++c) {
        const std::string& column = actual_header[c];
        if (opts.ignore_columns.count(column)) continue;
        const json::Value& ref_cell = ref_row.items[c];
        const std::string& actual_cell = actual_rows[r][c];
        ++report.cells_compared;

        double actual_num = 0.0;
        const bool actual_is_num = cell_as_number(actual_cell, actual_num);
        if (ref_cell.kind == json::Value::Kind::Number &&
            actual_is_num) {
          const double diff = std::abs(actual_num - ref_cell.number);
          const double bound = opts.atol.for_column(column) +
                               opts.rtol.for_column(column) *
                                   std::abs(ref_cell.number);
          if (diff <= bound) continue;
          report.ok = false;
          report.mismatches.push_back(BaselineMismatch{
              actual.name, column, r, ref_cell.text, actual_cell});
        } else {
          const std::string& ref_text = ref_cell.text;
          const bool same =
              ref_cell.kind == json::Value::Kind::String
                  ? ref_cell.text == actual_cell
                  : ref_cell.kind == json::Value::Kind::Number &&
                        ref_cell.text == actual_cell;
          if (same) continue;
          report.ok = false;
          report.mismatches.push_back(BaselineMismatch{
              actual.name, column, r, "'" + ref_text + "'",
              "'" + actual_cell + "'"});
        }
      }
    }
  }
  return report;
}

std::string read_text_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  RLB_REQUIRE(f.good(), "cannot open file: " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace rlb::engine
