// Benchmark-regression gate for CI.
//
// `bench_check --baseline=ref.json --candidate=new.json` compares two
// google-benchmark JSON reports benchmark by benchmark and fails when a
// candidate is slower than the committed reference beyond noise-tolerant
// thresholds. The gate is two-sided on purpose: a regression needs BOTH a
// ratio above the threshold AND an absolute slowdown above a floor, so a
// 3 ns benchmark jittering to 7 ns does not page anyone while a 500 ns
// benchmark doubling does. CI runs this against baselines/BENCH_6.json
// after every bench job.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rlb::engine {

struct BenchCheckOptions {
  double warn_ratio = 1.3;  ///< candidate/baseline above this warns
  double fail_ratio = 2.0;  ///< candidate/baseline above this fails
  /// Absolute slowdown floor: a ratio breach only counts when the
  /// candidate is also at least this many nanoseconds slower — tiny
  /// benchmarks have huge relative jitter.
  double min_ns = 50.0;
  /// Which report field to compare: "cpu_time" (default, immune to other
  /// load on the runner) or "real_time".
  std::string metric = "cpu_time";
};

enum class BenchStatus {
  kOk,       ///< within thresholds
  kWarn,     ///< ratio in (warn, fail]
  kFail,     ///< ratio above fail
  kNew,      ///< in candidate only (no gate — informational)
  kRemoved,  ///< in baseline only (warns: the gate lost coverage)
};

struct BenchRow {
  std::string name;
  double baseline_ns = 0.0;
  double candidate_ns = 0.0;
  double ratio = 0.0;  ///< candidate/baseline; 0 for kNew/kRemoved
  BenchStatus status = BenchStatus::kOk;
};

struct BenchCheckReport {
  std::vector<BenchRow> rows;
  std::size_t warned = 0;
  std::size_t failed = 0;

  [[nodiscard]] bool ok() const { return failed == 0; }

  /// Human-readable multi-line summary, one line per benchmark plus a
  /// verdict line.
  [[nodiscard]] std::string describe() const;

  /// GitHub Actions ::warning::/::error:: annotation lines for every
  /// non-ok row (empty string when everything is ok).
  [[nodiscard]] std::string github_annotations() const;
};

/// Compare two google-benchmark JSON documents (the format --benchmark_out
/// emits). Aggregate rows (run_type == "aggregate") are skipped; times are
/// normalized to nanoseconds via each entry's time_unit. Throws
/// std::invalid_argument on malformed JSON or missing fields.
BenchCheckReport check_benchmarks(const std::string& baseline_json,
                                  const std::string& candidate_json,
                                  const BenchCheckOptions& opts);

}  // namespace rlb::engine
