#include "engine/adaptive_columns.h"

#include "util/table.h"

namespace rlb::engine {

void add_adaptive_columns(std::vector<std::string>& header) {
  header.insert(header.end(), {"half_width", "jobs_used", "converged"});
}

void add_adaptive_cells(std::vector<std::string>& row,
                        const sim::AdaptiveReport& report) {
  row.push_back(util::fmt(report.half_width, 5));
  row.push_back(std::to_string(report.jobs_used));
  row.push_back(report.converged ? "1" : "0");
}

std::string adaptive_note(const std::string& subject) {
  if (subject.empty())
    return "Adaptive mode: half_width is the pooled CI half-width of the "
           "row's target\nstatistic (at --confidence), jobs_used the "
           "budget it burned, converged = 1 when\nit met --target-ci "
           "before --max-jobs (docs/PRECISION.md).";
  return "Adaptive mode: half_width is the worst pooled CI half-width "
         "over " +
         subject +
         "\n(at --confidence), jobs_used their total budget, converged = "
         "1 only when every\none met --target-ci before --max-jobs "
         "(docs/PRECISION.md).";
}

}  // namespace rlb::engine
