// Scenario registry: every experiment in bench/ and examples/ registers
// itself here (name, description, parameter schema, run function) and the
// single rlb_run driver looks it up, parses its parameters, runs it —
// fanning sweep cells across worker threads — and feeds the result to the
// text/CSV/JSON sinks.
//
// Authoring a scenario is ~30 lines in one translation unit:
//
//   namespace {
//   rlb::engine::ScenarioOutput run(rlb::engine::ScenarioContext& ctx) {
//     const int n = static_cast<int>(ctx.cli().get_int("n", 10));
//     rlb::engine::ScenarioOutput out;
//     auto& table = out.add_table("main", {"rho", "delay"});
//     const auto rows = ctx.map<std::vector<double>>(
//         cells.size(), [&](std::size_t i) { /* run cell i */ });
//     for (const auto& r : rows) table.add_row_numeric(r);
//     return out;
//   }
//   const rlb::engine::ScenarioRegistrar reg{{
//       "my_scenario",
//       "one-line description",
//       {{"n", "number of servers", "10"}},
//       run}};
//   }  // namespace
//
// Cells must derive all randomness from fixed per-cell seeds (see
// engine/sweep.h) so the thread count never changes the output.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/result_cache.h"
#include "engine/sink.h"
#include "engine/sweep.h"
#include "sim/replica.h"
#include "util/cli.h"

namespace rlb::engine {

/// One declared scenario parameter; purely descriptive (parsing happens
/// through util::Cli), used by --list/--describe and the docs.
struct ParamSpec {
  std::string name;
  std::string description;
  std::string default_value;
};

/// The precision-targeted run-length request parsed from the global
/// `--target-ci` flag family (docs/PRECISION.md). `target_ci == 0` —
/// the default — means adaptive mode is off and scenarios run their
/// fixed budgets. Zero-valued job fields mean "derive from the
/// scenario's fixed budget" (see ScenarioContext::adaptive_plan).
struct AdaptiveSpec {
  double target_ci = 0.0;
  double confidence = 0.95;
  std::uint64_t initial_jobs = 0;
  std::uint64_t max_jobs = 0;
  double growth_factor = 2.0;
  sim::WarmupPolicy warmup_policy = sim::WarmupPolicy::kFixed;
  std::uint64_t warmup_jobs = 0;
  /// Whether --warmup-jobs appeared on the command line: an explicit 0
  /// (a legitimate "no warmup" request) must not fall back to the
  /// derived default the way an absent flag does.
  bool warmup_jobs_set = false;
  double warmup_fraction = 0.1;
  /// Round-size planner (--planner=geometric|variance): geometric is the
  /// fixed initial * growth^r schedule, variance sizes later rounds from
  /// the observed half-width (sim::PlannerKind, docs/PRECISION.md).
  sim::PlannerKind planner = sim::PlannerKind::kGeometric;

  [[nodiscard]] bool enabled() const { return target_ci > 0.0; }

  /// Parse the --target-ci family from `cli` (also marking the flags as
  /// known, so util::Cli::finish() accepts them). Throws
  /// std::invalid_argument on malformed values.
  static AdaptiveSpec parse(const util::Cli& cli);
};

/// Handed to the scenario's run function: its CLI parameters, the
/// requested replica count, the adaptive-precision request, and the
/// run's shared thread budget, from which both the cell-level map() and
/// any within-cell replica parallelism (sim/replica.h) draw their
/// workers.
class ScenarioContext {
 public:
  ScenarioContext(const util::Cli& cli, int threads, int replicas = 1,
                  ResultCache* cache = nullptr)
      : cli_(cli),
        threads_(resolve_threads(threads)),
        replicas_(replicas),
        adaptive_(AdaptiveSpec::parse(cli)),
        cache_(cache),
        refine_(cli.get_bool("refine")),
        budget_(threads_) {}  // threads_ resolved first (declaration order)

  [[nodiscard]] const util::Cli& cli() const { return cli_; }
  [[nodiscard]] int threads() const { return threads_; }

  /// Replicas requested via --replicas; scenarios pass this into their
  /// simulation configs for the big-N cells. Affects the output (R
  /// replicas merge R decorrelated streams) but never varies with the
  /// thread count, preserving the determinism contract.
  [[nodiscard]] int replicas() const { return replicas_; }

  /// The precision-targeted run-length request (--target-ci family).
  /// Scenarios that support adaptive mode branch on
  /// adaptive().enabled() and report half_width / jobs_used / converged
  /// columns; scenarios that do not simply ignore it (documented in the
  /// catalog's Common flags section).
  [[nodiscard]] const AdaptiveSpec& adaptive() const { return adaptive_; }

  /// Build the sim::AdaptivePlan for one adaptive cell: `base_seed` is
  /// the cell's seed, `fixed_jobs` the budget the scenario would burn in
  /// fixed mode. Explicit --initial-jobs/--max-jobs/--warmup-jobs win;
  /// the derived defaults are initial = max(fixed_jobs / 8,
  /// 30 * replicas) (round 0 is an eighth of the fixed budget, floored
  /// so every replica gets a measurable shard), max = 32 * initial
  /// (adaptive may spend up to 4x the fixed budget before giving up),
  /// and per-replica warmup = initial / (10 * replicas) (round 0
  /// discards the usual 10%; under the default kFixed policy later
  /// rounds keep that ABSOLUTE warmup).
  [[nodiscard]] sim::AdaptivePlan adaptive_plan(
      std::uint64_t base_seed, std::uint64_t fixed_jobs) const;

  /// The run-wide worker budget; hand it to the simulators so replica
  /// parallelism shares the pool with cell parallelism.
  [[nodiscard]] util::ThreadBudget& budget() const { return budget_; }

  /// results[i] = fn(i), computed on the context's worker budget; output
  /// is invariant under the thread count (see engine/sweep.h).
  template <typename T, typename Fn>
  std::vector<T> map(std::size_t count, Fn&& fn) const {
    return parallel_map<T>(count, budget_, std::forward<Fn>(fn));
  }

  /// The run's persistent result cache (--cache), or nullptr when the
  /// run is uncached.
  [[nodiscard]] ResultCache* cache() const { return cache_; }

  /// Whether --refine was requested: cache lookups may resume a
  /// looser-target record's round state instead of recomputing.
  [[nodiscard]] bool refine() const { return refine_; }

  /// A CacheKey pre-filled with the run-level coordinates every cell
  /// shares — replicas and the --target-ci family EXCEPT target-ci
  /// itself (stored in the record instead, so --refine can find
  /// looser-target entries; docs/CACHING.md). The scenario adds its own
  /// parameters (and the cell seed) on top.
  [[nodiscard]] CacheKey cell_key(const std::string& scenario,
                                  std::uint64_t seed) const;

  using CellKeyFn = std::function<CacheKey(std::size_t)>;
  /// Computes cell `i` from scratch (refine_from == nullptr) or by
  /// resuming the given looser-target record's round state. The returned
  /// record's target_ci is stamped by map_cells.
  using CellComputeFn =
      std::function<CellRecord(std::size_t, const CellRecord* refine_from)>;

  /// The cache-aware sweep: results[i] comes from the cache when its
  /// record satisfies the current precision target, from a round-state
  /// resumption when --refine allows it, and from `compute` otherwise —
  /// computed on the same worker budget as map(), with lookups and
  /// stores serial around the parallel region, so the table stays
  /// invariant under the thread count AND under cache warmth.
  std::vector<CellRecord> map_cells(std::size_t count,
                                    const CellKeyFn& key_of,
                                    const CellComputeFn& compute) const;

 private:
  const util::Cli& cli_;
  int threads_;
  int replicas_;
  AdaptiveSpec adaptive_;
  ResultCache* cache_;
  bool refine_;
  // Worker-slot accounting mutates under const map(); the budget is
  // internally synchronized.
  mutable util::ThreadBudget budget_;
};

struct Scenario {
  std::string name;         ///< registry key, e.g. "power_of_d"
  std::string description;  ///< one-line summary for --list
  std::vector<ParamSpec> params;
  std::function<ScenarioOutput(ScenarioContext&)> run;
};

class UnknownScenarioError : public std::runtime_error {
 public:
  explicit UnknownScenarioError(const std::string& message)
      : std::runtime_error(message) {}
};

class ScenarioRegistry {
 public:
  /// The process-wide registry that ScenarioRegistrar populates.
  static ScenarioRegistry& global();

  /// Throws std::invalid_argument on an empty name, missing run function,
  /// or duplicate registration.
  void add(Scenario scenario);

  /// Throws UnknownScenarioError (message lists known names) on a miss.
  [[nodiscard]] const Scenario& get(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> list() const;

  [[nodiscard]] std::size_t size() const { return by_name_.size(); }

 private:
  std::map<std::string, Scenario> by_name_;
};

/// Static-object self-registration into the global registry.
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(Scenario scenario) {
    ScenarioRegistry::global().add(std::move(scenario));
  }
};

/// The self-documenting scenario catalog: one markdown section per
/// scenario (sorted by name) with its description and parameter-schema
/// table. `rlb_run --list --markdown` prints it and docs/SCENARIOS.md
/// commits it; CI regenerates the file and fails on drift, so the
/// rendering must stay deterministic.
std::string markdown_catalog(const std::vector<const Scenario*>& scenarios);

}  // namespace rlb::engine
