#include "engine/sweep.h"

#include "util/require.h"
#include "util/splitmix.h"

namespace rlb::engine {

std::uint64_t cell_seed(std::uint64_t base, std::uint64_t index) {
  // Two rounds decorrelate neighbouring (base, index) pairs; the +1 keeps
  // cell 0 of base 0 away from the splitmix64 fixed point at zero.
  return util::splitmix64(util::splitmix64(base + 1) ^
                          util::splitmix64(index));
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepGrid::SweepGrid(std::vector<double> rhos, std::vector<int> ds,
                     std::vector<int> ns, std::uint64_t base_seed,
                     int replicas)
    : rhos_(std::move(rhos)),
      ds_(std::move(ds)),
      ns_(std::move(ns)),
      base_seed_(base_seed),
      replicas_(replicas) {
  RLB_REQUIRE(!rhos_.empty() && !ds_.empty() && !ns_.empty(),
              "sweep grid axes must be non-empty");
  RLB_REQUIRE(replicas_ >= 1, "sweep grid needs at least one replica");
}

std::size_t SweepGrid::size() const {
  return rhos_.size() * ds_.size() * ns_.size() *
         static_cast<std::size_t>(replicas_);
}

SweepPoint SweepGrid::point(std::size_t index) const {
  RLB_REQUIRE(index < size(), "sweep point index out of range");
  // Replica is the fastest axis; it only matters through the per-cell seed.
  std::size_t rest = index / static_cast<std::size_t>(replicas_);
  const std::size_t ni = rest % ns_.size();
  rest /= ns_.size();
  const std::size_t di = rest % ds_.size();
  rest /= ds_.size();
  return SweepPoint{index, rhos_[rest], ds_[di], ns_[ni],
                    cell_seed(base_seed_, index)};
}

}  // namespace rlb::engine
