#include "engine/scenario.h"

#include <algorithm>

namespace rlb::engine {

AdaptiveSpec AdaptiveSpec::parse(const util::Cli& cli) {
  // Job counts go through int64; reject negatives here instead of
  // letting the uint64 cast wrap them into near-infinite budgets.
  const auto job_count = [&cli](const std::string& name) {
    const std::int64_t value = cli.get_int(name, 0);
    if (value < 0)
      throw std::invalid_argument("--" + name + " must be >= 0");
    return static_cast<std::uint64_t>(value);
  };
  AdaptiveSpec spec;
  spec.target_ci = cli.get_double("target-ci", 0.0);
  spec.confidence = cli.get_double("confidence", 0.95);
  spec.initial_jobs = job_count("initial-jobs");
  spec.max_jobs = job_count("max-jobs");
  spec.growth_factor = cli.get_double("growth-factor", 2.0);
  const std::string policy = cli.get("warmup-policy", "fixed");
  if (policy == "fixed")
    spec.warmup_policy = sim::WarmupPolicy::kFixed;
  else if (policy == "fraction")
    spec.warmup_policy = sim::WarmupPolicy::kFraction;
  else
    throw std::invalid_argument(
        "--warmup-policy must be 'fixed' or 'fraction'");
  spec.warmup_jobs_set = cli.has("warmup-jobs");
  spec.warmup_jobs = job_count("warmup-jobs");
  spec.warmup_fraction = cli.get_double("warmup-fraction", 0.1);
  const std::string planner = cli.get("planner", "geometric");
  if (planner == "geometric")
    spec.planner = sim::PlannerKind::kGeometric;
  else if (planner == "variance")
    spec.planner = sim::PlannerKind::kVariance;
  else
    throw std::invalid_argument(
        "--planner must be 'geometric' or 'variance'");
  if (spec.target_ci < 0.0)
    throw std::invalid_argument("--target-ci must be positive");
  return spec;
}

sim::AdaptivePlan ScenarioContext::adaptive_plan(
    std::uint64_t base_seed, std::uint64_t fixed_jobs) const {
  const auto replicas = static_cast<std::uint64_t>(replicas_);
  sim::AdaptivePlan plan;
  plan.replicas = replicas_;
  plan.base_seed = base_seed;
  plan.target_ci = adaptive_.target_ci;
  plan.confidence = adaptive_.confidence;
  plan.growth_factor = adaptive_.growth_factor;
  plan.warmup_policy = adaptive_.warmup_policy;
  plan.warmup_fraction = adaptive_.warmup_fraction;
  plan.initial_jobs = adaptive_.initial_jobs != 0
                          ? adaptive_.initial_jobs
                          : std::max(fixed_jobs / 8, replicas * 30);
  plan.max_jobs = adaptive_.max_jobs != 0 ? adaptive_.max_jobs
                                          : 32 * plan.initial_jobs;
  plan.warmup_jobs = adaptive_.warmup_jobs_set
                         ? adaptive_.warmup_jobs
                         : plan.initial_jobs / (10 * replicas);
  plan.planner = adaptive_.planner;
  return plan;
}

CacheKey ScenarioContext::cell_key(const std::string& scenario,
                                   std::uint64_t seed) const {
  CacheKey key(scenario);
  key.set("seed", seed);
  key.set("replicas", replicas_);
  key.set("adaptive", adaptive_.enabled());
  if (adaptive_.enabled()) {
    // Raw flag values, not derived defaults: the derivations are
    // deterministic functions of the scenario parameters, which are in
    // the key too ("0" = derived is therefore unambiguous).
    key.set("confidence", adaptive_.confidence);
    key.set("initial-jobs", adaptive_.initial_jobs);
    key.set("max-jobs", adaptive_.max_jobs);
    key.set("growth-factor", adaptive_.growth_factor);
    key.set("planner", adaptive_.planner == sim::PlannerKind::kGeometric
                           ? "geometric"
                           : "variance");
    key.set("warmup-policy",
            adaptive_.warmup_policy == sim::WarmupPolicy::kFixed
                ? "fixed"
                : "fraction");
    key.set("warmup-jobs", adaptive_.warmup_jobs_set
                               ? std::to_string(adaptive_.warmup_jobs)
                               : std::string("derived"));
    key.set("warmup-fraction", adaptive_.warmup_fraction);
  }
  return key;
}

std::vector<CellRecord> ScenarioContext::map_cells(
    std::size_t count, const CellKeyFn& key_of,
    const CellComputeFn& compute) const {
  const double target = adaptive_.target_ci;
  if (cache_ == nullptr) {
    return parallel_map<CellRecord>(count, budget_, [&](std::size_t i) {
      CellRecord record = compute(i, nullptr);
      record.target_ci = target;
      return record;
    });
  }
  // Serial lookup pre-pass: the cache does unsynchronized IO and
  // counter updates, so all of it stays outside the parallel region.
  std::vector<CacheKey> keys;
  keys.reserve(count);
  std::vector<ResultCache::Lookup> lookups;
  lookups.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(key_of(i));
    lookups.push_back(cache_->lookup(keys.back(), target, refine_));
  }
  std::vector<CellRecord> results =
      parallel_map<CellRecord>(count, budget_, [&](std::size_t i) {
        const ResultCache::Lookup& l = lookups[i];
        if (l.outcome == ResultCache::Lookup::Outcome::kHit)
          return l.record;
        CellRecord record = compute(
            i, l.outcome == ResultCache::Lookup::Outcome::kRefine
                   ? &l.record
                   : nullptr);
        record.target_ci = target;
        return record;
      });
  // Serial store pass: hits are already on disk; everything computed
  // (misses and refinements) persists at the now-satisfied target.
  for (std::size_t i = 0; i < count; ++i)
    if (lookups[i].outcome != ResultCache::Lookup::Outcome::kHit)
      cache_->store(keys[i], results[i]);
  return results;
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty())
    throw std::invalid_argument("scenario name must be non-empty");
  if (!scenario.run)
    throw std::invalid_argument("scenario '" + scenario.name +
                                "' has no run function");
  const auto [it, inserted] =
      by_name_.emplace(scenario.name, std::move(scenario));
  if (!inserted)
    throw std::invalid_argument("duplicate scenario registration: '" +
                                it->first + "'");
}

const Scenario& ScenarioRegistry::get(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    std::string message = "unknown scenario '" + name + "'; known:";
    for (const auto& [known, unused] : by_name_) {
      (void)unused;
      message += " " + known;
    }
    throw UnknownScenarioError(message);
  }
  return it->second;
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return by_name_.count(name) != 0;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, scenario] : by_name_) {
    (void)name;
    out.push_back(&scenario);
  }
  return out;
}

namespace {

/// Escape the characters that would break a markdown table cell.
std::string md_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '|') out += "\\|";
    else if (c == '\n') out += ' ';
    else out += c;
  }
  return out;
}

}  // namespace

namespace {

/// The global flags rlb_run understands for every scenario, rendered
/// into the catalog's "Common flags" section (the same CI freshness
/// guard that covers the per-scenario tables covers this list).
struct CommonFlag {
  const char* name;
  const char* default_value;
  const char* description;
};

constexpr CommonFlag kCommonFlags[] = {
    {"threads", "hardware concurrency",
     "worker threads; never changes output, only wall-clock time"},
    {"replicas", "1",
     "independent replica chains per simulation cell (sim/replica.h); "
     "changes output deterministically, 1 reproduces legacy streams"},
    {"csv", "(off)", "write the result tables as CSV"},
    {"json", "(off)", "write the result tables as JSON"},
    {"baseline", "(off)",
     "diff the run against a committed --json reference; drift exits 3"},
    {"rtol", "1e-9",
     "baseline relative tolerance (plain number or col=tol list)"},
    {"atol", "0", "baseline absolute tolerance"},
    {"baseline-ignore", "(none)",
     "comma-separated baseline columns to skip (e.g. timings, jobs_used)"},
    {"target-ci", "(off)",
     "adaptive precision target: grow the budget in rounds until the "
     "pooled CI half-width of the cell's target statistic falls below "
     "this (docs/PRECISION.md); scenarios not wired for it ignore it"},
    {"confidence", "0.95",
     "CI level for --target-ci stopping (t-table levels: 0.90/0.95/0.99)"},
    {"initial-jobs", "fixed budget / 8, min 30 x replicas",
     "round-0 total jobs per cell in adaptive mode"},
    {"max-jobs", "32 x initial",
     "adaptive budget cap per cell; hitting it reports converged=0"},
    {"growth-factor", "2",
     "round-over-round budget growth under --planner=geometric"},
    {"planner", "geometric",
     "adaptive round sizing: 'geometric' grows by --growth-factor, "
     "'variance' predicts the needed budget from the observed half-width "
     "(docs/PRECISION.md)"},
    {"warmup-policy", "fixed",
     "adaptive warmup: 'fixed' absolute per-replica discard, 'fraction' "
     "proportional"},
    {"warmup-jobs", "initial / (10 * replicas)",
     "per-replica warmup under --warmup-policy=fixed"},
    {"warmup-fraction", "0.1",
     "per-replica warmup share under --warmup-policy=fraction"},
    {"cache", "(off)",
     "persistent result-cache directory (docs/CACHING.md): sweep cells "
     "load from matching records instead of simulating; a warm re-run is "
     "byte-identical to the cold run"},
    {"cache-mode", "readwrite",
     "'readwrite' serves hits and stores recomputed cells, 'readonly' "
     "never writes, 'refresh' recomputes everything and overwrites"},
    {"refine", "(off)",
     "with --cache and a tighter --target-ci: resume a looser-target "
     "record's adaptive round state instead of recomputing from scratch"},
};

}  // namespace

std::string markdown_catalog(const std::vector<const Scenario*>& scenarios) {
  std::string out =
      "# Scenario catalog\n"
      "\n"
      "<!-- Generated by `rlb_run --list --markdown`. Do not edit by "
      "hand:\n"
      "     regenerate with `./build/rlb_run --list --markdown > "
      "docs/SCENARIOS.md`.\n"
      "     CI fails when this file drifts from the registered "
      "scenarios. -->\n"
      "\n"
      "Every experiment is a scenario registered with the engine "
      "(`src/engine/scenario.h`)\nand run by the `rlb_run` driver:\n"
      "\n"
      "```sh\n"
      "./build/rlb_run --scenario=<name> [--threads=N] [--replicas=R]\n"
      "    [--target-ci=EPS [--confidence=P] [--max-jobs=N]]\n"
      "    [--csv=out.csv] [--json=out.json] [--baseline=ref.json] "
      "[scenario flags]\n"
      "```\n"
      "\n"
      "## Common flags\n"
      "\n"
      "Global flags, understood in front of every scenario's own "
      "parameters.\nThe `--target-ci` family is the adaptive "
      "precision-targeted run length;\nits statistics contract lives in "
      "[PRECISION.md](PRECISION.md).\n"
      "\n"
      "| flag | default | description |\n"
      "| --- | --- | --- |\n";
  for (const CommonFlag& f : kCommonFlags)
    out += std::string("| `--") + f.name + "` | `" + f.default_value +
           "` | " + f.description + " |\n";
  for (const Scenario* s : scenarios) {
    out += "\n## `" + s->name + "`\n\n" + md_escape(s->description) + "\n";
    if (s->params.empty()) {
      out += "\nNo parameters.\n";
      continue;
    }
    out += "\n| parameter | default | description |\n";
    out += "| --- | --- | --- |\n";
    for (const ParamSpec& p : s->params)
      out += "| `--" + md_escape(p.name) + "` | `" +
             md_escape(p.default_value) + "` | " + md_escape(p.description) +
             " |\n";
  }
  return out;
}

}  // namespace rlb::engine
