#include "engine/scenario.h"

namespace rlb::engine {

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty())
    throw std::invalid_argument("scenario name must be non-empty");
  if (!scenario.run)
    throw std::invalid_argument("scenario '" + scenario.name +
                                "' has no run function");
  const auto [it, inserted] =
      by_name_.emplace(scenario.name, std::move(scenario));
  if (!inserted)
    throw std::invalid_argument("duplicate scenario registration: '" +
                                it->first + "'");
}

const Scenario& ScenarioRegistry::get(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    std::string message = "unknown scenario '" + name + "'; known:";
    for (const auto& [known, unused] : by_name_) {
      (void)unused;
      message += " " + known;
    }
    throw UnknownScenarioError(message);
  }
  return it->second;
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return by_name_.count(name) != 0;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, scenario] : by_name_) {
    (void)name;
    out.push_back(&scenario);
  }
  return out;
}

}  // namespace rlb::engine
