// Persistent result cache for sweep scenarios (docs/CACHING.md).
//
// A sweep cell is a pure function of its semantic coordinates: scenario
// name, cell parameters, seed, and the engine version. The cache stores
// one JSON record per cell under a digest filename; a warm re-run loads
// the record instead of simulating and reproduces the cold run's table
// BYTE-FOR-BYTE (doubles round-trip through %.17g, counters through
// verbatim decimal tokens). Records that fail to parse, carry a
// different engine-version stamp, or hold a different canonical key
// (digest collision or truncation) are discarded and recomputed — a
// corrupt cache can cost time, never correctness.
//
// The precision target (--target-ci) is deliberately NOT part of the
// key: a record stores the target it satisfied plus the adaptive round
// state, so `--refine` at a tighter target can find the looser entry at
// the same coordinates and resume its round schedule
// (sim::simulate_cluster_refine) instead of starting over.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/cluster_sim.h"
#include "sim/replica.h"

namespace rlb::engine {

/// Engine-version stamp embedded in every record. Bump whenever ANY
/// change alters simulation output for unchanged parameters (RNG
/// streams, merge order, estimator defaults, record layout): stale
/// records are then discarded on load instead of resurrecting old
/// numbers.
inline constexpr const char* kResultCacheVersion = "rlb-cache-v1";

/// Semantic coordinates of one sweep cell. Parameters canonicalize by
/// name (sorted, last set() of a name wins), so the key is stable under
/// parameter reordering; values are the exact strings produced by the
/// typed set() overloads, so equal inputs always canonicalize equally.
class CacheKey {
 public:
  explicit CacheKey(std::string scenario) : scenario_(std::move(scenario)) {}

  void set(const std::string& name, const std::string& value);
  void set(const std::string& name, const char* value);
  void set(const std::string& name, double value);  ///< %.17g (exact)
  void set(const std::string& name, std::uint64_t value);
  void set(const std::string& name, std::int64_t value);
  void set(const std::string& name, int value);
  void set(const std::string& name, bool value);

  /// The canonical key string: "scenario|name=value|..." with parameters
  /// sorted by name. Stored verbatim in the record for collision and
  /// truncation detection.
  [[nodiscard]] std::string canonical() const;

  /// 32-hex-digit digest of canonical() — the record's filename stem.
  /// Collisions are survivable (the stored canonical key disambiguates,
  /// colliding cells just recompute), so a fast FNV-style hash is fine.
  [[nodiscard]] std::string digest() const;

 private:
  std::string scenario_;
  std::vector<std::pair<std::string, std::string>> params_;
};

/// One cached cell: the scenario's output columns plus everything a
/// later --refine needs to resume the adaptive run.
struct CellRecord {
  /// The cell's numeric output columns in scenario-defined order.
  std::vector<double> values;
  /// Stopping outcome of the adaptive run (zeroed for fixed-budget
  /// cells); scenarios surface half_width / jobs_used / converged from
  /// here.
  sim::AdaptiveReport report;
  /// The --target-ci this record satisfied; 0 marks a fixed-budget run.
  /// Not part of the key (see file comment) — the hit test compares it.
  double target_ci = 0.0;
  /// Adaptive round state for --refine resumption; absent for
  /// fixed-budget cells and for scenarios that cannot checkpoint
  /// (windowed statistics, non-cluster cells).
  bool has_round_state = false;
  sim::ClusterRoundState round_state;
};

/// Serialize a record (with its key and the engine-version stamp) to the
/// on-disk JSON document.
std::string encode_record(const CacheKey& key, const CellRecord& record);

/// Parse an on-disk document back. Returns nullopt — never throws — when
/// the text is malformed, the version stamp differs, or the embedded
/// canonical key is not `key`'s (the discard-and-recompute contract).
std::optional<CellRecord> parse_record(const CacheKey& key,
                                       const std::string& text);

/// What the cache is allowed to do this run (--cache-mode).
enum class CacheMode {
  kReadWrite,  ///< default: serve hits, store recomputed cells
  kReadOnly,   ///< serve hits, never write (shared/CI caches)
  kRefresh,    ///< ignore existing entries, recompute, overwrite
};

/// One directory of cell records plus the run's hit/miss accounting.
/// Lookups and stores are serial by design — ScenarioContext::map_cells
/// does both outside its parallel region — so the class needs no locks.
class ResultCache {
 public:
  /// Opens (creating if needed) the cache directory.
  ResultCache(std::string dir, CacheMode mode);

  [[nodiscard]] CacheMode mode() const { return mode_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  struct Lookup {
    enum class Outcome {
      kHit,     ///< record satisfies the current target; reuse verbatim
      kRefine,  ///< looser-target record with round state; resume it
      kMiss,    ///< nothing usable; compute from scratch
    };
    Outcome outcome = Outcome::kMiss;
    CellRecord record;  ///< valid for kHit and kRefine
  };

  /// Decide what a cell can reuse. `target_ci` is the current run's
  /// precision target (0 = fixed budget); a record is a HIT when its
  /// stored target equals it, and a REFINE when `refine` is set, the
  /// record's target is looser, and it carries round state. kRefresh
  /// mode skips the read entirely (every cell recomputes); unusable
  /// records count as discarded and fall through to kMiss.
  Lookup lookup(const CacheKey& key, double target_ci, bool refine);

  /// Persist a computed cell (no-op in kReadOnly mode). Writes to a temp
  /// file then renames, so a crashed run leaves no truncated record.
  void store(const CacheKey& key, const CellRecord& record);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t refined() const { return refined_; }
  [[nodiscard]] std::uint64_t discarded() const { return discarded_; }
  [[nodiscard]] std::uint64_t stored() const { return stored_; }

  /// The run-summary line rlb_run prints:
  /// "cache summary: hits=H misses=M refined=R discarded=D stored=S".
  [[nodiscard]] std::string summary() const;

 private:
  [[nodiscard]] std::string path_of(const CacheKey& key) const;

  std::string dir_;
  CacheMode mode_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t refined_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t stored_ = 0;
};

/// Parse a --cache-mode value; throws std::invalid_argument on anything
/// but "readwrite" / "readonly" / "refresh".
CacheMode parse_cache_mode(const std::string& text);

/// Coherence check for the cache flag family: --refine and --cache-mode
/// only configure the result cache, so either without --cache=DIR used
/// to be consumed silently and do nothing. Returns the error message for
/// that misuse, or an empty string when the combination is coherent.
std::string cache_cli_error(bool has_cache, bool has_refine,
                            bool has_cache_mode);

}  // namespace rlb::engine
