// Minimal JSON reader/writer shared by the engine's file-handling tools
// (baseline regression checking, bench_check, the result cache).
// Recursive descent over objects, arrays, strings with escapes, numbers,
// and true/false/null — sufficient for the documents to_json, the result
// cache, and google-benchmark emit. The engine is not in the business of
// general JSON; anything outside this subset throws
// std::invalid_argument.
//
// The writer (encode) emits each Number's verbatim source token, so
// parse -> encode -> parse is lossless: the result cache depends on this
// for its bit-identity contract (a cache hit must reproduce a cold run's
// bytes exactly), which is why the round-trip is property-tested in
// tests/test_json.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rlb::engine::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  /// String kind's content; for Number, the verbatim source token (so
  /// callers can report or re-emit the exact text).
  std::string text;
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse a complete JSON document (no trailing content allowed); throws
/// std::invalid_argument on malformed input.
Value parse(const std::string& text);

/// Serialize a Value tree back to compact (whitespace-free) JSON.
/// Numbers are emitted as their verbatim `text` token — encode(parse(s))
/// preserves every number byte-for-byte — and strings are escaped the
/// same way the sink writer escapes them (named escapes for the common
/// control characters, \u00XX for the rest).
std::string encode(const Value& v);

/// `s` quoted and escaped as a JSON string literal (the writer used by
/// both encode() and the sink's to_json, so the two emit one spelling).
std::string quote(const std::string& s);

// Builders for programmatic documents (the result cache): each returns a
// self-contained Value of the matching kind.
Value make_string(std::string s);
Value make_bool(bool b);
/// Finite doubles render with %.17g (guaranteed exact round-trip through
/// a correctly-rounded strtod); non-finite values render as the strings
/// "inf" / "-inf" / "nan", which number_of() maps back.
Value make_number(double x);
/// Exact for the full uint64 range (the %.17g double path would lose
/// precision past 2^53 — job counters can credibly exceed that).
Value make_number(std::uint64_t x);
Value make_number(std::int64_t x);

/// Read back a make_number(double) value: a Number's parsed double, or
/// the non-finite spellings "inf" / "-inf" / "nan" as string values.
/// Throws std::invalid_argument for any other kind.
double number_of(const Value& v);
/// Read back a make_number(uint64) value exactly (re-parses the verbatim
/// token). Throws std::invalid_argument unless the value is a Number
/// holding an unsigned integer token.
std::uint64_t uint64_of(const Value& v);

}  // namespace rlb::engine::json
