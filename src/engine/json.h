// Minimal JSON reader shared by the engine's file-comparing tools
// (baseline regression checking, bench_check). Recursive descent over
// objects, arrays, strings with escapes, numbers, and true/false/null —
// sufficient for the documents to_json and google-benchmark emit. The
// engine is not in the business of general JSON; anything outside this
// subset throws std::invalid_argument.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace rlb::engine::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  /// String kind's content; for Number, the verbatim source token (so
  /// callers can report or re-emit the exact text).
  std::string text;
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse a complete JSON document (no trailing content allowed); throws
/// std::invalid_argument on malformed input.
Value parse(const std::string& text);

}  // namespace rlb::engine::json
