#include "engine/sink.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "engine/json.h"
#include "util/require.h"

namespace rlb::engine {

util::Table& ScenarioOutput::add_table(const std::string& name,
                                       std::vector<std::string> header) {
  tables.push_back(NamedTable{name, util::Table(std::move(header)), ""});
  return tables.back().table;
}

void ScenarioOutput::note(const std::string& text) {
  RLB_REQUIRE(!tables.empty(), "note() needs a table to attach to");
  tables.back().note = text;
}

void write_text(const ScenarioOutput& out, std::ostream& os) {
  if (!out.preamble.empty()) os << out.preamble << "\n";
  for (std::size_t i = 0; i < out.tables.size(); ++i) {
    if (i > 0 || !out.preamble.empty()) os << "\n";
    if (out.tables.size() > 1) os << "[" << out.tables[i].name << "]\n";
    out.tables[i].table.print(os);
    if (!out.tables[i].note.empty()) os << out.tables[i].note << "\n";
  }
  if (!out.postamble.empty()) os << "\n" << out.postamble << "\n";
}

std::vector<std::string> write_csv(const ScenarioOutput& out,
                                   const std::string& path) {
  std::vector<std::string> written;
  if (out.tables.empty()) return written;
  if (out.tables.size() == 1) {
    out.tables.front().table.write_csv(path);
    written.push_back(path);
    return written;
  }
  std::string stem = path;
  std::string ext;
  const auto dot = path.rfind('.');
  const auto slash = path.find_last_of("/\\");
  if (dot != std::string::npos &&
      (slash == std::string::npos || dot > slash)) {
    stem = path.substr(0, dot);
    ext = path.substr(dot);
  }
  for (const auto& t : out.tables) {
    const std::string p = stem + "." + t.name + ext;
    t.table.write_csv(p);
    written.push_back(p);
  }
  return written;
}

namespace {

// True when `s` already matches the JSON number grammar
// (-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?), so it can be emitted
// verbatim without quoting.
bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  const auto digits = [&] {
    const std::size_t start = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    return i > start;
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (i < s.size() && s[i] == '0') {
    ++i;
  } else {
    if (i >= s.size() || s[i] < '1' || s[i] > '9') return false;
    digits();
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == s.size();
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  // One escaping spelling for the whole engine: the shared json writer.
  os << json::quote(s);
}

void append_cell(std::ostringstream& os, const std::string& cell) {
  if (is_json_number(cell)) {
    os << cell;
  } else {
    append_json_string(os, cell);
  }
}

}  // namespace

std::string to_json(const ScenarioOutput& out,
                    const std::string& scenario_name) {
  std::ostringstream os;
  os << "{\"scenario\":";
  append_json_string(os, scenario_name);
  os << ",\"tables\":[";
  for (std::size_t t = 0; t < out.tables.size(); ++t) {
    const auto& nt = out.tables[t];
    if (t > 0) os << ",";
    os << "{\"name\":";
    append_json_string(os, nt.name);
    os << ",\"header\":[";
    const auto& header = nt.table.header();
    for (std::size_t c = 0; c < header.size(); ++c) {
      if (c > 0) os << ",";
      append_json_string(os, header[c]);
    }
    os << "],\"rows\":[";
    const auto& rows = nt.table.data();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r > 0) os << ",";
      os << "[";
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        if (c > 0) os << ",";
        append_cell(os, rows[r][c]);
      }
      os << "]";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

void write_json(const ScenarioOutput& out, const std::string& scenario_name,
                const std::string& path) {
  std::ofstream f(path);
  RLB_REQUIRE(f.good(), "cannot open json path: " + path);
  f << to_json(out, scenario_name) << "\n";
}

}  // namespace rlb::engine
