// Baseline regression checking for rlb_run.
//
// `rlb_run --scenario=X --baseline=ref.json` re-runs the scenario and
// diffs its tables against a committed reference produced earlier with
// `--json=ref.json`. Numeric cells compare within per-column absolute /
// relative tolerances, string cells must match exactly, and any drift is
// reported cell by cell with a non-zero exit — CI uses this to pin two
// fast scenarios to committed reference tables.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/sink.h"

namespace rlb::engine {

/// A tolerance with an optional per-column override, parsed from either a
/// plain number ("1e-6") or a comma-separated list of column overrides
/// with an optional default ("1e-6,delay=0.01,rho=0").
struct ToleranceSpec {
  double default_value = 0.0;
  std::map<std::string, double> by_column;

  [[nodiscard]] double for_column(const std::string& column) const;

  static ToleranceSpec parse(const std::string& spec, double fallback);
};

struct BaselineOptions {
  ToleranceSpec rtol;  ///< relative tolerance (vs the baseline magnitude)
  ToleranceSpec atol;  ///< absolute tolerance
  std::set<std::string> ignore_columns;  ///< e.g. wall-clock timing columns
};

/// Parse a --baseline-ignore value: a comma-separated list of column
/// names (adaptive baselines typically skip several, e.g.
/// "jobs_used,rounds"). Empty parts are dropped, surrounding whitespace
/// is trimmed, and a name may match columns of any table — ignoring a
/// column no table has is not an error (the flag is shared across
/// scenarios with different schemas).
std::set<std::string> parse_ignore_columns(const std::string& spec);

struct BaselineMismatch {
  std::string table;
  std::string column;
  std::size_t row = 0;  ///< 0-based data row; SIZE_MAX for structure drift
  std::string expected;
  std::string actual;
};

struct BaselineReport {
  bool ok = true;
  std::size_t cells_compared = 0;
  std::vector<BaselineMismatch> mismatches;

  /// Human-readable multi-line summary (empty when ok and verbose off).
  [[nodiscard]] std::string describe() const;
};

/// Compare a scenario's output against baseline JSON text (the format
/// to_json emits). Table names, headers and row counts must match
/// exactly; cells compare per BaselineOptions. Throws std::invalid_argument
/// on malformed baseline JSON.
BaselineReport compare_to_baseline(const ScenarioOutput& out,
                                   const std::string& baseline_json,
                                   const BaselineOptions& opts);

/// Read a whole file into a string; throws std::invalid_argument when the
/// file cannot be opened.
std::string read_text_file(const std::string& path);

}  // namespace rlb::engine
