// Marginal queue-length distribution of a solved bound model.
//
// Mitzenmacher's asymptotic analysis is phrased in terms of the fraction
// s_i of servers holding at least i jobs (s_i = lambda^{(d^i-1)/(d-1)} as
// N -> infinity). The bound models make the same quantity computable at
// finite N: tail[k] = E[#servers with >= k jobs] / N under the stationary
// distribution, using the matrix-geometric level structure to sum the
// infinite tail in closed form.
#pragma once

#include <vector>

#include "sqd/bound_model.h"
#include "sqd/blocks_builder.h"

namespace rlb::sqd {

struct TailDistribution {
  /// tail[k] = P(a uniformly chosen server has >= k jobs), k = 0..kmax.
  std::vector<double> tail;

  /// Mean queue length recovered from the tail (sum_{k>=1} tail[k] * N / N);
  /// cross-checkable against BoundResult::mean_jobs / N.
  [[nodiscard]] double mean_queue_length() const;
};

/// Solve the bound model and accumulate the marginal tail up to kmax.
/// Uses the improved scalar path for the lower model and the full
/// matrix-geometric path for the upper model. Throws qbd::UnstableError
/// when the model is unstable.
TailDistribution marginal_queue_tail(const BoundModel& model, int kmax);

}  // namespace rlb::sqd
