// Waiting-time distribution estimate built on the lower bound model.
//
// The paper bounds the MEAN delay. The same stationary solution yields a
// full waiting-time profile via the snapshot argument that is EXACT for
// the original SQ(d) system (FIFO + exponential service + no jockeying):
// a job that joins a queue holding v jobs waits Erlang(v, mu). Evaluating
// that mixture under the lower model's stationary distribution (a tight
// proxy for the true one) gives
//
//   P(W > t) ~= sum_m pi_LB(m) sum_g p_g(m) * P(Erlang(v_g(m), mu) > t),
//   P(Erlang(v, mu) > t) = P(Poisson(mu t) < v),
//
// with the matrix-geometric levels summed as a geometric series. Two
// precision notes: (1) for N = 1 this is the exact M/M/1 law; (2) for
// N > 1 it is an approximation on one count only — pi_LB vs the true
// stationary law — and its mean is typically CLOSER to the true E[W] than
// the bound model's own Little-based mean (the snapshot undoes the
// jockeying dynamics). It is not a certified bound; the paper's precedence
// argument covers mean costs only. Accuracy is validated against exact
// solutions and DES quantiles in tests/test_waiting_distribution.cpp.
#pragma once

#include <vector>

#include "sqd/bound_model.h"

namespace rlb::sqd {

/// Precomputed waiting-time profile: solves the lower model once, then
/// answers CCDF/quantile queries cheaply.
class WaitingProfile {
 public:
  /// Requires model.kind() == BoundKind::Lower. `tail_tol` truncates the
  /// geometric level series.
  explicit WaitingProfile(const BoundModel& model, double tail_tol = 1e-10);

  /// P(W > t).
  [[nodiscard]] double ccdf(double t) const;

  /// Smallest t with P(W > t) <= 1 - q (e.g. q = 0.99 for the p99 wait).
  [[nodiscard]] double quantile(double q, double tol = 1e-4) const;

 private:
  double mu_;
  /// Mixture representation: weight[k] on Erlang(shape[k], mu).
  std::vector<int> shapes_;
  std::vector<double> weights_;
};

/// One-shot helpers.
std::vector<double> waiting_time_ccdf(const BoundModel& model,
                                      const std::vector<double>& ts,
                                      double tail_tol = 1e-10);
double waiting_time_quantile(const BoundModel& model, double q,
                             double tol = 1e-4);

}  // namespace rlb::sqd
