#include "sqd/params.h"

#include "util/require.h"

namespace rlb::sqd {

void Params::validate() const {
  RLB_REQUIRE(N >= 1, "need at least one server");
  RLB_REQUIRE(d >= 1 && d <= N, "need 1 <= d <= N");
  RLB_REQUIRE(lambda > 0.0, "lambda must be positive");
  RLB_REQUIRE(mu > 0.0, "mu must be positive");
}

}  // namespace rlb::sqd
