#include "sqd/mm_queues.h"

#include <cmath>

#include "util/require.h"

namespace rlb::sqd {

double Mm1::mean_jobs() const {
  const double r = rho();
  RLB_REQUIRE(r < 1.0, "M/M/1 unstable");
  return r / (1.0 - r);
}

double Mm1::mean_waiting_jobs() const {
  const double r = rho();
  RLB_REQUIRE(r < 1.0, "M/M/1 unstable");
  return r * r / (1.0 - r);
}

double Mm1::mean_sojourn() const {
  RLB_REQUIRE(rho() < 1.0, "M/M/1 unstable");
  return 1.0 / (mu - lambda);
}

double Mm1::mean_wait() const { return mean_sojourn() - 1.0 / mu; }

double Mm1::prob_jobs(int n) const {
  const double r = rho();
  RLB_REQUIRE(r < 1.0, "M/M/1 unstable");
  RLB_REQUIRE(n >= 0, "job count must be non-negative");
  return (1.0 - r) * std::pow(r, n);
}

double Mmc::erlang_c() const {
  const double a = lambda / mu;  // offered load
  RLB_REQUIRE(rho() < 1.0, "M/M/c unstable");
  // Stable recurrence for the Erlang-B blocking probability, then convert.
  double b = 1.0;  // Erlang B with 0 servers
  for (int k = 1; k <= c; ++k) b = a * b / (k + a * b);
  const double r = rho();
  return b / (1.0 - r * (1.0 - b));
}

double Mmc::mean_waiting_jobs() const {
  const double r = rho();
  return erlang_c() * r / (1.0 - r);
}

double Mmc::mean_jobs() const { return mean_waiting_jobs() + lambda / mu; }

double Mmc::mean_wait() const { return mean_waiting_jobs() / lambda; }

double Mmc::mean_sojourn() const { return mean_wait() + 1.0 / mu; }

}  // namespace rlb::sqd
