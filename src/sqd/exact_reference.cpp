#include "sqd/exact_reference.h"

#include "markov/ctmc.h"
#include "markov/gth.h"
#include "sqd/transitions.h"
#include "statespace/state.h"
#include "util/require.h"

namespace rlb::sqd {

ExactResult solve_exact_truncated(const Params& p, int total_cap) {
  p.validate();
  RLB_REQUIRE(total_cap >= 1, "cap must be positive");

  const markov::TransitionFn fn =
      [&p, total_cap](const statespace::State& m) {
        std::vector<markov::Rated> out;
        if (statespace::total_jobs(m) < total_cap) {
          for (Transition& t : arrival_transitions(m, p))
            out.push_back({std::move(t.to), t.rate});
        }
        for (Transition& t : departure_transitions(m, p))
          out.push_back({std::move(t.to), t.rate});
        return out;
      };

  const statespace::State empty(static_cast<std::size_t>(p.N), 0);
  const markov::Ctmc chain = markov::build_ctmc(empty, fn);
  const linalg::Vector pi = markov::stationary_gth(chain.generator);

  ExactResult out;
  out.states = chain.size();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const statespace::State& s = chain.states[i];
    out.mean_waiting_jobs += pi[i] * statespace::waiting_jobs(s);
    out.mean_jobs += pi[i] * statespace::total_jobs(s);
    if (statespace::total_jobs(s) == total_cap) out.truncation_mass += pi[i];
  }
  out.mean_waiting_time = out.mean_waiting_jobs / p.total_arrival_rate();
  out.mean_delay = out.mean_waiting_time + 1.0 / p.mu;
  return out;
}

}  // namespace rlb::sqd
