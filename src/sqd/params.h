// SQ(d) model parameters (paper Section II): N parallel FIFO servers,
// Poisson arrivals of total rate lambda*N, Exp(mu) service (mu = 1 in the
// paper), each arrival polls d servers uniformly without replacement and
// joins the shortest polled queue.
#pragma once

namespace rlb::sqd {

struct Params {
  int N = 1;            ///< number of servers
  int d = 1;            ///< number of polled servers, 1 <= d <= N
  double lambda = 0.5;  ///< per-server arrival rate; total rate is lambda*N
  double mu = 1.0;      ///< service rate (paper convention: 1)

  /// Traffic intensity rho = lambda / mu.
  [[nodiscard]] double rho() const { return lambda / mu; }

  /// Total arrival rate lambda * N.
  [[nodiscard]] double total_arrival_rate() const { return lambda * N; }

  /// Throws std::invalid_argument when out of domain.
  void validate() const;
};

}  // namespace rlb::sqd
