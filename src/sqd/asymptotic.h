// The classical N -> infinity results (Mitzenmacher; Vvedenskaya et al.)
// that the paper's finite-regime bounds are compared against.
#pragma once

namespace rlb::sqd {

/// Eq. (16): E[Delay] = sum_{i>=1} lambda^{(d^i - d)/(d - 1)}; for d = 1 the
/// exponent degenerates to i-1 and the sum to the M/M/1 sojourn 1/(1-lambda).
/// Independent of N. Requires 0 <= lambda < 1 and d >= 1; mu = 1 convention.
double asymptotic_delay(double lambda, int d, double tol = 1e-15);

/// Asymptotic fraction of servers with at least i jobs:
/// s_i = lambda^{(d^i - 1)/(d - 1)}.
double asymptotic_queue_tail(double lambda, int d, int i);

}  // namespace rlb::sqd
