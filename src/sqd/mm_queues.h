// Closed-form M/M/1 and M/M/c results used as exact references in tests and
// examples (SQ(1) with N servers is N independent M/M/1 queues; the lower
// bound model with N = 1 collapses to M/M/1).
#pragma once

namespace rlb::sqd {

/// M/M/1 with arrival rate lambda, service rate mu.
struct Mm1 {
  double lambda = 0.0;
  double mu = 1.0;

  [[nodiscard]] double rho() const { return lambda / mu; }
  [[nodiscard]] double mean_jobs() const;          ///< E[L]
  [[nodiscard]] double mean_waiting_jobs() const;  ///< E[Lq]
  [[nodiscard]] double mean_sojourn() const;       ///< E[T] = E[W] + 1/mu
  [[nodiscard]] double mean_wait() const;          ///< E[W]
  [[nodiscard]] double prob_jobs(int n) const;     ///< P(L = n)
};

/// M/M/c with total arrival rate lambda, per-server rate mu, c servers.
struct Mmc {
  double lambda = 0.0;
  double mu = 1.0;
  int c = 1;

  [[nodiscard]] double rho() const { return lambda / (c * mu); }
  [[nodiscard]] double erlang_c() const;           ///< P(wait > 0)
  [[nodiscard]] double mean_waiting_jobs() const;  ///< E[Lq]
  [[nodiscard]] double mean_jobs() const;          ///< E[L]
  [[nodiscard]] double mean_wait() const;          ///< E[W]
  [[nodiscard]] double mean_sojourn() const;       ///< E[T]
};

}  // namespace rlb::sqd
