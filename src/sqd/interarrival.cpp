#include "sqd/interarrival.h"

#include <cmath>
#include <stdexcept>

#include "util/combinatorics.h"
#include "util/require.h"
#include "util/rootfind.h"

namespace rlb::sqd {

// -- Exponential ---------------------------------------------------------

ExponentialInterarrival::ExponentialInterarrival(double rate) : rate_(rate) {
  RLB_REQUIRE(rate > 0.0, "rate must be positive");
}

double ExponentialInterarrival::lst(double s) const {
  return rate_ / (rate_ + s);
}

double ExponentialInterarrival::mean() const { return 1.0 / rate_; }

double ExponentialInterarrival::beta(int k, double mu) const {
  RLB_REQUIRE(k >= 0, "k >= 0");
  // (rate/mu) * (mu/(rate+mu))^{k+1}, i.e. Eq. (21) with lambda = rate.
  return rate_ / mu * std::pow(mu / (rate_ + mu), k + 1);
}

std::string ExponentialInterarrival::name() const { return "exponential"; }

// -- Erlang ---------------------------------------------------------------

ErlangInterarrival::ErlangInterarrival(int shape, double stage_rate)
    : shape_(shape), stage_rate_(stage_rate) {
  RLB_REQUIRE(shape >= 1, "shape >= 1");
  RLB_REQUIRE(stage_rate > 0.0, "stage rate must be positive");
}

double ErlangInterarrival::lst(double s) const {
  return std::pow(stage_rate_ / (stage_rate_ + s), shape_);
}

double ErlangInterarrival::mean() const { return shape_ / stage_rate_; }

double ErlangInterarrival::beta(int k, double mu) const {
  RLB_REQUIRE(k >= 0, "k >= 0");
  // U ~ Erlang(n, nu): beta_k = C(k+n-1, k) mu^k nu^n / (mu+nu)^{k+n}.
  const double nu = stage_rate_;
  return util::binomial(k + shape_ - 1, k) * std::pow(mu, k) *
         std::pow(nu, shape_) / std::pow(mu + nu, k + shape_);
}

std::string ErlangInterarrival::name() const {
  return "erlang(" + std::to_string(shape_) + ")";
}

// -- Hyperexponential ------------------------------------------------------

HyperExpInterarrival::HyperExpInterarrival(double p1, double rate1,
                                           double rate2)
    : p1_(p1), rate1_(rate1), rate2_(rate2) {
  RLB_REQUIRE(p1 >= 0.0 && p1 <= 1.0, "mixing probability in [0,1]");
  RLB_REQUIRE(rate1 > 0.0 && rate2 > 0.0, "rates must be positive");
}

double HyperExpInterarrival::lst(double s) const {
  return p1_ * rate1_ / (rate1_ + s) + (1.0 - p1_) * rate2_ / (rate2_ + s);
}

double HyperExpInterarrival::mean() const {
  return p1_ / rate1_ + (1.0 - p1_) / rate2_;
}

double HyperExpInterarrival::beta(int k, double mu) const {
  RLB_REQUIRE(k >= 0, "k >= 0");
  const auto branch = [&](double rate) {
    return rate / mu * std::pow(mu / (rate + mu), k + 1);
  };
  return p1_ * branch(rate1_) + (1.0 - p1_) * branch(rate2_);
}

std::string HyperExpInterarrival::name() const { return "hyperexp2"; }

// -- Deterministic ----------------------------------------------------------

DeterministicInterarrival::DeterministicInterarrival(double value)
    : value_(value) {
  RLB_REQUIRE(value > 0.0, "interarrival must be positive");
}

double DeterministicInterarrival::lst(double s) const {
  return std::exp(-s * value_);
}

double DeterministicInterarrival::mean() const { return value_; }

double DeterministicInterarrival::beta(int k, double mu) const {
  RLB_REQUIRE(k >= 0, "k >= 0");
  const double x = mu * value_;
  return std::exp(k * std::log(x) - std::lgamma(k + 1.0) - x);
}

std::string DeterministicInterarrival::name() const { return "deterministic"; }

// -- sigma -----------------------------------------------------------------

SigmaResult solve_sigma(const Interarrival& a, double mu) {
  RLB_REQUIRE(mu > 0.0, "mu must be positive");
  const double rho = 1.0 / (mu * a.mean());
  if (rho >= 1.0)
    throw std::runtime_error("solve_sigma: utilization >= 1, no root in (0,1)");

  // f(x) = LST(mu(1-x)) - x: f(0) = beta_0 > 0 and f(1-) < 0 when rho < 1
  // (the slope of the LST term at x=1 is mu E[U] = 1/rho > 1).
  const auto f = [&](double x) { return a.lst(mu * (1.0 - x)) - x; };
  double hi = 1.0 - 1e-12;
  // Guard against f(hi) >= 0 from round-off very close to criticality.
  while (f(hi) >= 0.0 && hi > 0.5) hi = 1.0 - 4.0 * (1.0 - hi);
  RLB_REQUIRE(f(hi) < 0.0, "solve_sigma: failed to bracket the root");
  const util::RootResult r = util::find_root(f, 0.0, hi, 1e-14);
  RLB_REQUIRE(r.converged, "solve_sigma: root search did not converge");
  return {r.x, r.residual, r.iterations};
}

}  // namespace rlb::sqd
