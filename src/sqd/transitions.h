// The SQ(d) transition law on sorted states (paper Section II-A).
//
// For a tie group occupying 1-based positions [i, i+j] the arrival rate into
// the group (entering at its head, by convention) is
//
//   [ C(i+j, d) - C(i-1, d) ] / C(N, d) * lambda * N,
//
// and each busy tie group departs at rate (group size) * mu from its tail.
// These functions describe the ORIGINAL (untruncated) process; the bound
// models in bound_model.h post-process the targets that leave S(T).
#pragma once

#include <vector>

#include "sqd/params.h"
#include "statespace/state.h"

namespace rlb::sqd {

struct Transition {
  statespace::State to;
  double rate = 0.0;
};

/// Arrival transitions from m; rates sum to lambda*N.
std::vector<Transition> arrival_transitions(const statespace::State& m,
                                            const Params& p);

/// Departure transitions from m; rates sum to (busy servers) * mu.
std::vector<Transition> departure_transitions(const statespace::State& m,
                                              const Params& p);

/// Both, concatenated.
std::vector<Transition> all_transitions(const statespace::State& m,
                                        const Params& p);

/// Probability that an arrival joins the tie group whose 0-based head is
/// `head` and size is `size` (the bracketed binomial ratio above).
double arrival_group_probability(int head, int size, const Params& p);

}  // namespace rlb::sqd
