// Interarrival-time distributions for Theorem 2's sigma equation.
//
// Theorem 2: for the lower bound model with a general renewal arrival
// process A(t), the level tail decays as pi_{q+1} = sigma^N pi_q where
// sigma is the unique root in (0, 1) of
//
//   x = sum_{k>=0} x^k beta_k,   beta_k = E[ (mu U)^k / k! * e^{-mu U} ]
//
// with U ~ interarrival time. The right-hand side is exactly the Laplace-
// Stieltjes transform of U evaluated at mu (1 - x), so each distribution
// only needs to expose its LST (and beta_k analytically for tests).
// Theorem 3: for Poisson arrivals sigma = rho.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace rlb::sqd {

class Interarrival {
 public:
  virtual ~Interarrival() = default;

  /// E[e^{-s U}], s >= 0.
  [[nodiscard]] virtual double lst(double s) const = 0;

  /// E[U].
  [[nodiscard]] virtual double mean() const = 0;

  /// beta_k = E[(mu U)^k / k! * e^{-mu U}] in closed form.
  [[nodiscard]] virtual double beta(int k, double mu) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Exponential(rate): Poisson arrivals. beta_k = rate * mu^k / (rate+mu)^{k+1}.
class ExponentialInterarrival final : public Interarrival {
 public:
  explicit ExponentialInterarrival(double rate);
  [[nodiscard]] double lst(double s) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double beta(int k, double mu) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double rate_;
};

/// Erlang(k shape, rate per stage): smoother than Poisson (CV^2 = 1/k).
class ErlangInterarrival final : public Interarrival {
 public:
  ErlangInterarrival(int shape, double stage_rate);
  [[nodiscard]] double lst(double s) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double beta(int k, double mu) const override;
  [[nodiscard]] std::string name() const override;

 private:
  int shape_;
  double stage_rate_;
};

/// Two-phase hyperexponential (burstier than Poisson, CV^2 > 1).
class HyperExpInterarrival final : public Interarrival {
 public:
  HyperExpInterarrival(double p1, double rate1, double rate2);
  [[nodiscard]] double lst(double s) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double beta(int k, double mu) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double p1_, rate1_, rate2_;
};

/// Deterministic interarrival (CV = 0).
class DeterministicInterarrival final : public Interarrival {
 public:
  explicit DeterministicInterarrival(double value);
  [[nodiscard]] double lst(double s) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double beta(int k, double mu) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double value_;
};

struct SigmaResult {
  double sigma = 0.0;
  double residual = 0.0;
  int iterations = 0;
};

/// Solve x = LST(mu(1-x)) for the root in (0, 1) (Theorem 2). Throws
/// UnstableError-style std::runtime_error when the per-server utilization
/// rho = 1/(mu E[U]) is >= 1 (no root inside the unit circle).
SigmaResult solve_sigma(const Interarrival& a, double mu);

}  // namespace rlb::sqd
