#include "sqd/asymptotic.h"

#include <cmath>

#include "util/require.h"

namespace rlb::sqd {

double asymptotic_delay(double lambda, int d, double tol) {
  RLB_REQUIRE(lambda >= 0.0 && lambda < 1.0, "need 0 <= lambda < 1");
  RLB_REQUIRE(d >= 1, "need d >= 1");
  if (lambda == 0.0) return 1.0;
  if (d == 1) return 1.0 / (1.0 - lambda);

  const double log_lambda = std::log(lambda);
  double sum = 0.0;
  // exponent_i = (d^i - d)/(d - 1); track d^i in floating point and stop
  // once the term underflows the tolerance.
  double d_pow = static_cast<double>(d);  // d^i for i = 1
  for (int i = 1;; ++i) {
    const double exponent = (d_pow - d) / (d - 1.0);
    const double term = std::exp(exponent * log_lambda);
    sum += term;
    if (term < tol || exponent * log_lambda < -745.0) break;
    d_pow *= d;
    if (!std::isfinite(d_pow)) break;
  }
  return sum;
}

double asymptotic_queue_tail(double lambda, int d, int i) {
  RLB_REQUIRE(lambda >= 0.0 && lambda < 1.0, "need 0 <= lambda < 1");
  RLB_REQUIRE(d >= 1 && i >= 0, "need d >= 1, i >= 0");
  if (i == 0) return 1.0;
  if (lambda == 0.0) return 0.0;
  const double exponent =
      d == 1 ? static_cast<double>(i)
             : (std::pow(static_cast<double>(d), i) - 1.0) / (d - 1.0);
  return std::pow(lambda, exponent);
}

}  // namespace rlb::sqd
