#include "sqd/bound_model.h"

#include <map>

#include "util/require.h"

namespace rlb::sqd {

using statespace::State;
using statespace::TieGroup;

BoundModel::BoundModel(Params p, int T, BoundKind kind, UpperArrivalRule rule)
    : params_(p), threshold_(T), kind_(kind), upper_rule_(rule) {
  params_.validate();
  RLB_REQUIRE(T >= 1, "threshold T must be at least 1");
}

bool BoundModel::contains(const State& m) const {
  return static_cast<int>(m.size()) == params_.N &&
         statespace::is_valid_state(m) && statespace::gap(m) <= threshold_;
}

std::vector<Transition> BoundModel::transitions(const State& m) const {
  static const std::vector<double> kHomogeneous;
  return transitions(m, kHomogeneous);
}

std::vector<Transition> BoundModel::transitions(
    const State& m, const std::vector<double>& rank_speeds) const {
  RLB_REQUIRE(contains(m), "state not in S(T): " + statespace::to_string(m));
  RLB_REQUIRE(rank_speeds.empty() ||
                  static_cast<int>(rank_speeds.size()) == params_.N,
              "rank_speeds must be empty or one entry per server");
  const std::vector<TieGroup> groups = statespace::tie_groups(m);

  // Merge transitions that end up at the same target (redirects can collide
  // with existing transitions, e.g. jockeying joins the top-group departure).
  std::map<State, double> merged;
  const auto add = [&merged](State to, double rate) {
    if (rate > 0.0) merged[std::move(to)] += rate;
  };

  // Arrivals. Only an arrival into the top group can violate the gap bound.
  for (const TieGroup& g : groups) {
    const double rate =
        arrival_group_probability(g.head, g.size(), params_) *
        params_.total_arrival_rate();
    if (rate <= 0.0) continue;
    State target = statespace::after_arrival_at_head(m, g.head);
    if (statespace::gap(target) <= threshold_) {
      add(std::move(target), rate);
    } else if (kind_ == BoundKind::Lower) {
      // Join the shortest queue instead: increment the bottom group's head.
      add(statespace::after_arrival_at_head(m, groups.back().head), rate);
    } else if (upper_rule_ == UpperArrivalRule::AllServers) {
      // Ablation variant: one job to every server (m + 1). Precedence-valid
      // but much looser for larger N.
      add(statespace::plus_one_everywhere(m), rate);
    } else {
      // Upper bound: the job joins the longest queue anyway, and phantom
      // jobs join every shortest-queue server so the gap stays at T. This
      // is the minimal less-preferable target in S(T): the new maximum is
      // m1 + 1, so every server at the old minimum must rise to mN + 1.
      // Partial sums dominate those of m + e_1, the jump size
      // 1 + |bottom group| <= N preserves QBD adjacency, and the rule
      // depends only on the shape (shift-invariant).
      State target = m;
      target[g.head] += 1;
      const statespace::TieGroup& bottom = groups.back();
      for (int k = bottom.head; k <= bottom.tail; ++k) target[k] += 1;
      RLB_ASSERT(statespace::is_valid_state(target) &&
                     statespace::gap(target) <= threshold_,
                 "upper redirect left S(T)");
      add(std::move(target), rate);
    }
  }

  // Departures. Only a departure from the bottom group can violate the gap.
  for (const TieGroup& g : groups) {
    if (g.value == 0) continue;
    double speed = static_cast<double>(g.size());
    if (!rank_speeds.empty()) {
      speed = 0.0;
      for (int k = g.head; k <= g.tail; ++k) speed += rank_speeds[k];
    }
    const double rate = speed * params_.mu;
    State target = statespace::after_departure_at_tail(m, g.tail);
    if (statespace::gap(target) <= threshold_) {
      add(std::move(target), rate);
    } else if (kind_ == BoundKind::Lower) {
      // Jockeying: take the departure from the longest queue instead.
      RLB_ASSERT(groups.front().value > 0, "top group empty at positive gap");
      add(statespace::after_departure_at_tail(m, groups.front().tail), rate);
    }
    // Upper bound: the departure is suppressed (server pauses); the rate
    // simply leaves the outflow, which the generator diagonal absorbs.
  }

  std::vector<Transition> out;
  out.reserve(merged.size());
  for (auto& [to, rate] : merged) out.push_back({to, rate});
  return out;
}

}  // namespace rlb::sqd
