// The feedback-cost side of the delay/overhead tradeoff (paper §I).
//
// SQ(d)'s entire reason to exist is that JSQ's delay optimality costs N
// queue-length reports per arrival. This small model makes the tradeoff
// quantitative: messages per job, aggregate message rate, and a combined
// cost J = E[Delay] + c * (messages per job) that the examples use to pick
// d for a given message price c.
#pragma once

#include "sqd/params.h"

namespace rlb::sqd {

struct OverheadModel {
  /// Cost charged per poll message (query + response counted together).
  double cost_per_message = 0.0;

  /// Poll messages per job under SQ(d): d queries + d responses.
  [[nodiscard]] static double messages_per_job(int d) { return 2.0 * d; }

  /// Aggregate message rate for the cluster.
  [[nodiscard]] static double message_rate(const Params& p) {
    return messages_per_job(p.d) * p.total_arrival_rate();
  }

  /// Combined cost of running SQ(d) at mean delay `delay`.
  [[nodiscard]] double combined_cost(int d, double delay) const {
    return delay + cost_per_message * messages_per_job(d);
  }
};

/// The d minimizing the combined asymptotic cost for given lambda and
/// message price, scanned over 1..d_max. (Uses the asymptotic delay, which
/// is what operators would plug in for large-N fleets; finite-N users can
/// rerun with bound values.)
int optimal_d_asymptotic(double lambda, double cost_per_message, int d_max);

}  // namespace rlb::sqd
