#include "sqd/waiting_distribution.h"

#include <cmath>
#include <map>

#include "qbd/solver.h"
#include "sqd/blocks_builder.h"
#include "util/require.h"

namespace rlb::sqd {

namespace {

using statespace::State;
using statespace::TieGroup;

/// P(Erlang(v, mu) > t) = P(Poisson(mu t) <= v - 1); 0 for v = 0.
double erlang_ccdf(int v, double mu_t) {
  if (v <= 0) return 0.0;
  if (mu_t <= 0.0) return 1.0;
  double log_term = -mu_t;  // log Poisson pmf at j = 0
  double sum = 0.0;
  for (int j = 0; j < v; ++j) {
    sum += std::exp(log_term);
    log_term += std::log(mu_t) - std::log1p(j);
  }
  return std::min(sum, 1.0);
}

/// Queue length the arriving job queues behind, per tie group, with the
/// lower-model redirect applied; paired with the group's probability.
struct JoinOutcome {
  int queue_len = 0;
  double prob = 0.0;
};

std::vector<JoinOutcome> join_outcomes(const State& m, const Params& p,
                                       int threshold) {
  std::vector<JoinOutcome> out;
  const auto groups = statespace::tie_groups(m);
  for (const TieGroup& g : groups) {
    const double prob = arrival_group_probability(g.head, g.size(), p);
    if (prob <= 0.0) continue;
    // A gap-breaking top-group arrival joins the shortest queue instead.
    const bool breaks =
        g.head == 0 && statespace::gap(m) == threshold && m.size() > 1;
    const int target_head = breaks ? groups.back().head : g.head;
    out.push_back({m[target_head], prob});
  }
  return out;
}

}  // namespace

WaitingProfile::WaitingProfile(const BoundModel& model, double tail_tol) {
  RLB_REQUIRE(model.kind() == BoundKind::Lower,
              "waiting-time profile implemented for the lower bound model");
  const Params& p = model.params();
  mu_ = p.mu;

  const BoundQbd q = build_bound_qbd(model);
  const double rate = std::pow(p.rho(), p.N);
  const qbd::Solution sol = qbd::solve_scalar(q.blocks, rate);

  // Collapse the stationary mixture into weights per Erlang shape.
  std::map<int, double> mixture;
  const auto accumulate = [&](const linalg::Vector& dist, auto state_at,
                              int extra_jobs) {
    for (std::size_t i = 0; i < dist.size(); ++i) {
      if (dist[i] <= 0.0) continue;
      const State m = state_at(i);
      for (const JoinOutcome& jo : join_outcomes(m, p, model.threshold())) {
        const int v = jo.queue_len + extra_jobs;
        if (v > 0) mixture[v] += dist[i] * jo.prob;
      }
    }
  };
  accumulate(sol.pi_boundary,
             [&](std::size_t i) { return q.space.boundary_states()[i]; }, 0);
  accumulate(sol.pi0,
             [&](std::size_t i) { return q.space.level0_states()[i]; }, 0);
  double weight = 1.0;
  for (int level = 1;; ++level) {
    if (weight * linalg::sum(sol.pi1) < tail_tol) break;
    const linalg::Vector dist = linalg::scaled(sol.pi1, weight);
    accumulate(dist,
               [&](std::size_t j) { return q.space.level_state(1, j); },
               level - 1);
    weight *= rate;
  }
  shapes_.reserve(mixture.size());
  weights_.reserve(mixture.size());
  for (const auto& [shape, w] : mixture) {
    shapes_.push_back(shape);
    weights_.push_back(w);
  }
}

double WaitingProfile::ccdf(double t) const {
  RLB_REQUIRE(t >= 0.0, "time must be non-negative");
  double out = 0.0;
  for (std::size_t k = 0; k < shapes_.size(); ++k)
    out += weights_[k] * erlang_ccdf(shapes_[k], mu_ * t);
  return out;
}

double WaitingProfile::quantile(double q, double tol) const {
  RLB_REQUIRE(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
  const double target = 1.0 - q;
  if (ccdf(0.0) <= target) return 0.0;
  double hi = 1.0;
  while (ccdf(hi) > target) {
    hi *= 2.0;
    RLB_REQUIRE(hi < 1e6, "quantile bracket exploded; model near saturation");
  }
  double lo = 0.0;
  while (hi - lo > tol * (1.0 + hi)) {
    const double mid = 0.5 * (lo + hi);
    (ccdf(mid) > target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

std::vector<double> waiting_time_ccdf(const BoundModel& model,
                                      const std::vector<double>& ts,
                                      double tail_tol) {
  for (double t : ts) RLB_REQUIRE(t >= 0.0, "times must be non-negative");
  const WaitingProfile profile(model, tail_tol);
  std::vector<double> out;
  out.reserve(ts.size());
  for (double t : ts) out.push_back(profile.ccdf(t));
  return out;
}

double waiting_time_quantile(const BoundModel& model, double q, double tol) {
  return WaitingProfile(model).quantile(q, tol);
}

}  // namespace rlb::sqd
