#include "sqd/bound_solver.h"

#include <cmath>

#include "util/require.h"

namespace rlb::sqd {

namespace {

BoundResult aggregate(const BoundModel& model, const BoundQbd& q,
                      const qbd::Solution& sol) {
  const statespace::LevelSpace& space = q.space;
  const Params& p = model.params();
  BoundResult out;

  const auto accumulate = [&](const linalg::Vector& dist, auto state_at) {
    for (std::size_t i = 0; i < dist.size(); ++i) {
      const statespace::State s = state_at(i);
      out.mean_waiting_jobs += dist[i] * statespace::waiting_jobs(s);
      out.mean_jobs += dist[i] * statespace::total_jobs(s);
    }
  };
  accumulate(sol.pi_boundary,
             [&](std::size_t i) { return space.boundary_states()[i]; });
  accumulate(sol.pi0, [&](std::size_t i) { return space.level0_states()[i]; });
  // Levels q >= 1: state(q, j) = state(1, j) + (q-1) extra jobs everywhere,
  // and every server is busy, so both waiting and total jobs grow by N per
  // level.
  accumulate(sol.tail_sum, [&](std::size_t i) { return space.level_state(1, i); });
  const double extra = p.N * linalg::sum(sol.tail_weighted);
  out.mean_waiting_jobs += extra;
  out.mean_jobs += extra;

  out.mean_waiting_time = out.mean_waiting_jobs / p.total_arrival_rate();
  out.mean_delay = out.mean_waiting_time + 1.0 / p.mu;
  out.prob_boundary = linalg::sum(sol.pi_boundary);
  out.total_probability = sol.total_probability;
  out.scalar_rate = sol.scalar_rate;
  out.logred_iterations = sol.logred_iterations;
  out.r_residual = sol.r_residual;
  out.boundary_size = space.boundary_states().size();
  out.block_size = space.block_size();
  return out;
}

}  // namespace

BoundResult solve_bound(const BoundModel& model) {
  return solve_bound(model, build_bound_qbd(model));
}

BoundResult solve_bound(const BoundModel& model, const BoundQbd& q) {
  return aggregate(model, q, qbd::solve(q.blocks));
}

BoundResult solve_lower_improved(const BoundModel& model) {
  return solve_lower_improved(model, model.params().rho());
}

BoundResult solve_lower_improved(const BoundModel& model, double sigma) {
  return solve_lower_improved(model, build_bound_qbd(model), sigma);
}

BoundResult solve_lower_improved(const BoundModel& model, const BoundQbd& q,
                                 double sigma) {
  RLB_REQUIRE(model.kind() == BoundKind::Lower,
              "improved solver applies to the lower bound model only");
  RLB_REQUIRE(sigma > 0.0 && sigma < 1.0, "sigma must lie in (0, 1)");
  const double rate = std::pow(sigma, model.params().N);
  return aggregate(model, q, qbd::solve_scalar(q.blocks, rate));
}

}  // namespace rlb::sqd
