#include "sqd/transitions.h"

#include "util/combinatorics.h"
#include "util/require.h"

namespace rlb::sqd {

using statespace::State;
using statespace::TieGroup;

double arrival_group_probability(int head, int size, const Params& p) {
  RLB_REQUIRE(head >= 0 && size >= 1 && head + size <= p.N,
              "tie group out of range");
  // 1-based head i = head+1, tail i+j = head+size; the paper's numerator
  // C(i+j, d) - C(i-1, d) becomes C(head+size, d) - C(head, d).
  return util::binomial_ratio(head + size, p.N, p.d) -
         util::binomial_ratio(head, p.N, p.d);
}

std::vector<Transition> arrival_transitions(const State& m, const Params& p) {
  p.validate();
  RLB_REQUIRE(static_cast<int>(m.size()) == p.N, "state size mismatch");
  std::vector<Transition> out;
  for (const TieGroup& g : statespace::tie_groups(m)) {
    const double prob = arrival_group_probability(g.head, g.size(), p);
    if (prob <= 0.0) continue;
    out.push_back({statespace::after_arrival_at_head(m, g.head),
                   prob * p.total_arrival_rate()});
  }
  return out;
}

std::vector<Transition> departure_transitions(const State& m,
                                              const Params& p) {
  p.validate();
  RLB_REQUIRE(static_cast<int>(m.size()) == p.N, "state size mismatch");
  std::vector<Transition> out;
  for (const TieGroup& g : statespace::tie_groups(m)) {
    if (g.value == 0) continue;
    out.push_back({statespace::after_departure_at_tail(m, g.tail),
                   g.size() * p.mu});
  }
  return out;
}

std::vector<Transition> all_transitions(const State& m, const Params& p) {
  std::vector<Transition> out = arrival_transitions(m, p);
  std::vector<Transition> dep = departure_transitions(m, p);
  out.insert(out.end(), std::make_move_iterator(dep.begin()),
             std::make_move_iterator(dep.end()));
  return out;
}

}  // namespace rlb::sqd
