#include "sqd/overhead.h"

#include "sqd/asymptotic.h"
#include "util/require.h"

namespace rlb::sqd {

int optimal_d_asymptotic(double lambda, double cost_per_message, int d_max) {
  RLB_REQUIRE(d_max >= 1, "need d_max >= 1");
  RLB_REQUIRE(cost_per_message >= 0.0, "message cost must be non-negative");
  OverheadModel model{cost_per_message};
  int best_d = 1;
  double best = model.combined_cost(1, asymptotic_delay(lambda, 1));
  for (int d = 2; d <= d_max; ++d) {
    const double cost = model.combined_cost(d, asymptotic_delay(lambda, d));
    if (cost < best) {
      best = cost;
      best_d = d;
    }
  }
  return best_d;
}

}  // namespace rlb::sqd
