#include "sqd/blocks_builder.h"

#include "util/require.h"

namespace rlb::sqd {

using statespace::LevelSpace;
using statespace::State;

BoundQbd build_bound_qbd(const BoundModel& model) {
  const Params& p = model.params();
  BoundQbd out{LevelSpace(p.N, model.threshold()), {}};
  const LevelSpace& space = out.space;
  const std::size_t nb = space.boundary_states().size();
  const std::size_t m = space.block_size();

  qbd::Blocks& b = out.blocks;
  b.B00 = linalg::Matrix(nb, nb);
  b.B01 = linalg::Matrix(nb, m);
  b.B10 = linalg::Matrix(m, nb);
  b.A0 = linalg::Matrix(m, m);
  b.A1 = linalg::Matrix(m, m);
  b.A2 = linalg::Matrix(m, m);

  // Boundary rows: targets stay in the boundary or reach level 0.
  for (std::size_t i = 0; i < nb; ++i) {
    const State& from = space.boundary_states()[i];
    double outflow = 0.0;
    for (const Transition& t : model.transitions(from)) {
      outflow += t.rate;
      const auto loc = space.locate(t.to);
      if (loc.boundary) {
        b.B00(i, loc.index) += t.rate;
      } else {
        RLB_ASSERT(loc.level == 0, "boundary row reaches level > 0");
        b.B01(i, loc.index) += t.rate;
      }
    }
    b.B00(i, i) -= outflow;
  }

  // Level-1 rows define the repeating blocks.
  for (std::size_t j = 0; j < m; ++j) {
    const State from = space.level_state(1, j);
    double outflow = 0.0;
    for (const Transition& t : model.transitions(from)) {
      outflow += t.rate;
      const auto loc = space.locate(t.to);
      RLB_ASSERT(!loc.boundary, "level-1 row reaches the boundary");
      switch (loc.level) {
        case 0:
          b.A2(j, loc.index) += t.rate;
          break;
        case 1:
          b.A1(j, loc.index) += t.rate;
          break;
        case 2:
          b.A0(j, loc.index) += t.rate;
          break;
        default:
          RLB_ASSERT(false, "level-1 row skips more than one level");
      }
    }
    b.A1(j, j) -= outflow;
  }

  // Level-0 rows contribute only their downward (boundary) block.
  for (std::size_t j = 0; j < m; ++j) {
    const State from = space.level_state(0, j);
    for (const Transition& t : model.transitions(from)) {
      const auto loc = space.locate(t.to);
      if (loc.boundary) b.B10(j, loc.index) += t.rate;
    }
  }

  RLB_ASSERT(b.generator_row_sum_error() < 1e-9,
             "QBD generator rows do not sum to zero");
  return out;
}

}  // namespace rlb::sqd
