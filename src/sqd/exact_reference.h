// Exact reference solution of the ORIGINAL SQ(d) process on a truncated
// state space, for small N. Arrivals are blocked once the system holds
// `total_cap` jobs; the reported truncation mass bounds the error. Used to
// validate that the computed bounds actually sandwich the true system.
#pragma once

#include <cstddef>

#include "sqd/params.h"

namespace rlb::sqd {

struct ExactResult {
  double mean_waiting_jobs = 0.0;
  double mean_jobs = 0.0;
  double mean_waiting_time = 0.0;  ///< via Little with lambda*N
  double mean_delay = 0.0;
  double truncation_mass = 0.0;  ///< stationary P(total jobs = cap)
  std::size_t states = 0;
};

/// Solve the truncated chain exactly (GTH). Cost grows quickly with N and
/// cap; intended for N <= 4.
ExactResult solve_exact_truncated(const Params& p, int total_cap);

}  // namespace rlb::sqd
