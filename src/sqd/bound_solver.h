// End-to-end solvers for the delay bounds.
//
//   solve_bound          — Theorem 1: logarithmic reduction, rate matrix R,
//                          boundary solve. Works for both bound kinds.
//   solve_lower_improved — Theorems 2-3: the lower bound model's rate matrix
//                          acts as the scalar sigma^N (= rho^N for Poisson),
//                          so no G/R iteration is needed at all.
//
// Both report the stationary mean number of waiting jobs and convert it to
// waiting time / delay through Little's law with the ORIGINAL arrival rate
// lambda*N (the stochastic ordering is on the queue-length cost process).
#pragma once

#include <cstddef>

#include "qbd/solver.h"
#include "sqd/blocks_builder.h"
#include "sqd/bound_model.h"

namespace rlb::sqd {

struct BoundResult {
  double mean_waiting_jobs = 0.0;  ///< E[sum_i max(m_i - 1, 0)]
  double mean_jobs = 0.0;          ///< E[#m]
  double mean_waiting_time = 0.0;  ///< E[W] = waiting jobs / (lambda N)
  double mean_delay = 0.0;         ///< E[W] + 1/mu (sojourn time)
  double prob_boundary = 0.0;      ///< stationary mass of the boundary block
  double total_probability = 0.0;  ///< diagnostic; ~1
  double scalar_rate = -1.0;       ///< sigma^N when the improved path ran
  int logred_iterations = 0;
  double r_residual = 0.0;
  std::size_t boundary_size = 0;
  std::size_t block_size = 0;
};

/// Theorem 1 path (full matrix-geometric). Throws qbd::UnstableError when
/// the model's drift condition fails (upper bound at high rho / small T).
BoundResult solve_bound(const BoundModel& model);

/// Same, reusing already-built blocks (for sweeps that vary only lambda the
/// caller still has to rebuild blocks; this overload avoids rebuilding when
/// experimenting with one model).
BoundResult solve_bound(const BoundModel& model, const BoundQbd& qbd);

/// Theorems 2-3 path; requires model.kind() == BoundKind::Lower. The
/// default uses sigma = rho (Poisson, Theorem 3); pass an explicit sigma for
/// the general-renewal variant of Theorem 2.
BoundResult solve_lower_improved(const BoundModel& model);
BoundResult solve_lower_improved(const BoundModel& model, double sigma);
BoundResult solve_lower_improved(const BoundModel& model, const BoundQbd& qbd,
                                 double sigma);

}  // namespace rlb::sqd
