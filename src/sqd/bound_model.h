// The lower and upper bound models (paper Sections II-III).
//
// Both models live on the gap-bounded space S(T) = { m : m1 - mN <= T }.
// Transitions of the original SQ(d) process whose target leaves S(T) are
// redirected, and the direction of the redirection (w.r.t. the precedence
// order of Eq. (5): componentwise partial sums) decides which bound the
// modified chain produces:
//
//   LOWER bound (redirect to MORE preferable states):
//     * arrival that would push the longest queue past gap T
//         -> join the shortest queue instead           (m + e_N)
//     * departure from the shortest queue at gap T
//         -> depart from the longest queue instead     (m - e_1, "jockeying")
//     No capacity is lost: stable for all lambda < mu, and the level tail
//     is exactly geometric with ratio rho^N (Theorem 3).
//
//   UPPER bound (redirect to LESS preferable states):
//     * arrival that would push the longest queue past gap T
//         -> the job joins the longest queue AND a phantom job joins every
//            shortest-queue server (m + e_1 + e_bottom-group), the minimal
//            target in S(T) that dominates m + e_1 in the precedence order
//     * departure from the shortest queue at gap T
//         -> no departure (service pauses)             (m)
//     Capacity is wasted, so stability needs Neuts' drift condition; the
//     stability region shrinks as T decreases (Figure 10(a)).
//
// See DESIGN.md for why these rules are a reconstruction and for the
// precedence-monotonicity argument of each redirect.
#pragma once

#include <vector>

#include "sqd/params.h"
#include "sqd/transitions.h"
#include "statespace/state.h"

namespace rlb::sqd {

enum class BoundKind { Lower, Upper };

/// How the upper model redirects a gap-breaking arrival. Both choices are
/// precedence-valid upper bounds; PhantomBottom is the minimal (tightest)
/// one and the default. AllServers (redirect to m + 1) is kept for the
/// ablation bench: it is dramatically more pessimistic for larger N.
enum class UpperArrivalRule { PhantomBottom, AllServers };

class BoundModel {
 public:
  BoundModel(Params p, int T, BoundKind kind,
             UpperArrivalRule rule = UpperArrivalRule::PhantomBottom);

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] int threshold() const { return threshold_; }
  [[nodiscard]] BoundKind kind() const { return kind_; }
  [[nodiscard]] UpperArrivalRule upper_rule() const { return upper_rule_; }

  /// All outgoing transitions from a state in S(T), with the redirection
  /// rules applied and transitions to identical targets merged. Every
  /// returned target is again in S(T).
  [[nodiscard]] std::vector<Transition> transitions(
      const statespace::State& m) const;

  /// Heterogeneous-rate variant: the queue at sorted position k (0 = the
  /// longest) is served at rate rank_speeds[k] * mu while busy. Rank-based
  /// rates are the heterogeneity model that keeps the sorted state space
  /// S(T) valid — speeds attach to queue-length ranks, not server
  /// identities (per-identity speeds live in the cluster DES). An empty
  /// vector (or all ones) reproduces the homogeneous model exactly; the
  /// redirection rules are rate-independent and apply unchanged.
  [[nodiscard]] std::vector<Transition> transitions(
      const statespace::State& m,
      const std::vector<double>& rank_speeds) const;

  /// True iff m is a valid state of this model.
  [[nodiscard]] bool contains(const statespace::State& m) const;

 private:
  Params params_;
  int threshold_;
  BoundKind kind_;
  UpperArrivalRule upper_rule_;
};

}  // namespace rlb::sqd
