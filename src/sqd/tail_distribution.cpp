#include "sqd/tail_distribution.h"

#include <cmath>

#include "qbd/solver.h"
#include "util/require.h"

namespace rlb::sqd {

namespace {

/// Number of components of m that are >= k.
int count_at_least(const statespace::State& m, int k) {
  int c = 0;
  for (int v : m)
    if (v >= k) ++c;
  return c;
}

}  // namespace

double TailDistribution::mean_queue_length() const {
  double mean = 0.0;
  for (std::size_t k = 1; k < tail.size(); ++k) mean += tail[k];
  return mean;
}

TailDistribution marginal_queue_tail(const BoundModel& model, int kmax) {
  RLB_REQUIRE(kmax >= 0, "kmax must be non-negative");
  const BoundQbd q = build_bound_qbd(model);
  const qbd::Solution sol =
      model.kind() == BoundKind::Lower
          ? qbd::solve_scalar(q.blocks,
                              std::pow(model.params().rho(),
                                       model.params().N))
          : qbd::solve(q.blocks);

  const int n = model.params().N;
  const std::size_t m = q.space.block_size();
  TailDistribution out;
  out.tail.assign(static_cast<std::size_t>(kmax) + 1, 0.0);

  // E[#servers >= k] accumulated per block, then normalized by N.
  std::vector<double> expected(out.tail.size(), 0.0);

  const auto accumulate = [&](const linalg::Vector& dist, auto state_at) {
    for (std::size_t i = 0; i < dist.size(); ++i) {
      if (dist[i] == 0.0) continue;
      const statespace::State s = state_at(i);
      for (int k = 0; k <= kmax; ++k)
        expected[k] += dist[i] * count_at_least(s, k);
    }
  };
  accumulate(sol.pi_boundary,
             [&](std::size_t i) { return q.space.boundary_states()[i]; });
  accumulate(sol.pi0,
             [&](std::size_t i) { return q.space.level0_states()[i]; });

  // Levels q >= 1: state(q, j) = state(1, j) + (q-1). For level q, a server
  // holds >= k jobs iff its level-1 length is >= k - (q-1); once q >= k
  // every server qualifies. Walk pi_q = pi_{q-1} R (or the scalar rate)
  // explicitly for q < kmax+1, then close the tail with the geometric sum.
  linalg::Vector pi_q = sol.pi1;  // q = 1
  double consumed = 0.0;          // sum of pi_q e already walked
  const double total_tail = linalg::sum(sol.tail_sum);
  for (int level = 1; level <= kmax; ++level) {
    for (std::size_t j = 0; j < m; ++j) {
      if (pi_q[j] == 0.0) continue;
      const statespace::State base = q.space.level_state(1, j);
      for (int k = 0; k <= kmax; ++k) {
        const int threshold = k - (level - 1);
        expected[k] += pi_q[j] * count_at_least(base, threshold);
      }
    }
    consumed += linalg::sum(pi_q);
    if (sol.scalar_rate >= 0.0) {
      pi_q = linalg::scaled(pi_q, sol.scalar_rate);
    } else {
      pi_q = linalg::vec_mat(pi_q, sol.R);
    }
  }
  // Remaining levels (q > kmax): every server has >= kmax jobs there.
  const double remainder = std::max(0.0, total_tail - consumed);
  for (int k = 0; k <= kmax; ++k) expected[k] += remainder * n;

  for (int k = 0; k <= kmax; ++k) out.tail[k] = expected[k] / n;
  return out;
}

}  // namespace rlb::sqd
