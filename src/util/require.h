// Precondition / invariant checking helpers.
//
// RLB_REQUIRE is used for API preconditions and data invariants that depend
// on caller input; violations throw std::invalid_argument so callers (and
// tests) can observe them. RLB_ASSERT is for internal invariants that are
// bugs if they ever fail; violations throw std::logic_error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rlb {

namespace detail {

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void assert_failed(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << cond << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace rlb

#define RLB_REQUIRE(cond, msg)                                      \
  do {                                                              \
    if (!(cond))                                                    \
      ::rlb::detail::require_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#define RLB_ASSERT(cond, msg)                                      \
  do {                                                             \
    if (!(cond))                                                   \
      ::rlb::detail::assert_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)
