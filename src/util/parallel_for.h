// The one budget-aware parallel loop shared by cell-level sweeps
// (engine/sweep.h) and replica-level simulation sharding (sim/replica.h).
//
// body(i) runs for every i in [0, count): the calling thread always
// works, helper threads are recruited from the ThreadBudget BETWEEN
// iterations (so slots released mid-run by other loops get picked up),
// and each helper returns its slot as it retires. After any iteration
// throws, remaining iterations are skipped and the first exception is
// rethrown on the calling thread once all helpers finish. Which thread
// runs which index is unspecified — iterations must be independent and
// write only to their own index's slot; done that way, the results are
// invariant under the budget.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_budget.h"

namespace rlb::util {

template <typename Fn>
void budgeted_for(std::size_t count, ThreadBudget& budget, Fn&& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto run_one = [&](std::size_t i) {
    try {
      body(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      failed.store(true);
    }
  };
  const auto work = [&] {
    while (!failed.load()) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      run_one(i);
    }
  };
  std::vector<std::thread> helpers;
  bool recruiting = true;
  while (!failed.load()) {
    const std::size_t i = next.fetch_add(1);
    if (i >= count) break;
    const std::size_t queued = count - i - 1;
    if (recruiting && queued > 0) {
      const int extra = budget.try_acquire(
          static_cast<int>(std::min<std::size_t>(queued, 1u << 10)));
      int spawned = 0;
      try {
        for (; spawned < extra; ++spawned)
          helpers.emplace_back([&budget, &work] {
            work();
            budget.release(1);
          });
      } catch (...) {
        // Thread exhaustion: return the unspawned slots, stop recruiting
        // and keep working inline — degraded parallelism, not termination.
        budget.release(extra - spawned);
        recruiting = false;
      }
    }
    run_one(i);
  }
  for (auto& t : helpers) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace rlb::util
