#include "util/combinatorics.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/require.h"

namespace rlb::util {

double binomial(int n, int k) {
  if (k < 0 || k > n || n < 0) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

double log_binomial(int n, int k) {
  RLB_REQUIRE(0 <= k && k <= n, "log_binomial domain");
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

std::uint64_t binomial_u64(int n, int k) {
  if (k < 0 || k > n || n < 0) return 0;
  if (k > n - k) k = n - k;
  unsigned __int128 result = 1;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<unsigned>(n - k + i);
    result /= static_cast<unsigned>(i);  // exact: C(n-k+i, i) is integral
    if (result > std::numeric_limits<std::uint64_t>::max())
      throw std::overflow_error("binomial_u64 overflow");
  }
  return static_cast<std::uint64_t>(result);
}

double binomial_ratio(int a, int n, int k) {
  RLB_REQUIRE(0 <= k && k <= n, "binomial_ratio: need 0 <= k <= n");
  RLB_REQUIRE(a <= n, "binomial_ratio: need a <= n");
  if (a < k) return 0.0;
  return std::exp(log_binomial(a, k) - log_binomial(n, k));
}

}  // namespace rlb::util
