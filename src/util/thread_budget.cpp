#include "util/thread_budget.h"

#include <algorithm>

#include "util/require.h"

namespace rlb::util {

ThreadBudget::ThreadBudget(int total) : total_(total), available_(total - 1) {
  RLB_REQUIRE(total >= 1, "thread budget needs at least one slot");
}

int ThreadBudget::available() const {
  return available_.load(std::memory_order_relaxed);
}

int ThreadBudget::try_acquire(int want) {
  if (want <= 0) return 0;
  int avail = available_.load(std::memory_order_relaxed);
  while (avail > 0) {
    const int take = std::min(avail, want);
    if (available_.compare_exchange_weak(avail, avail - take,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed))
      return take;
  }
  return 0;
}

void ThreadBudget::release(int count) {
  if (count > 0) available_.fetch_add(count, std::memory_order_acq_rel);
}

ThreadBudget& ThreadBudget::serial() {
  static ThreadBudget budget(1);
  return budget;
}

}  // namespace rlb::util
