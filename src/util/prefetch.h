// Portable cache-prefetch hint. A no-op where the builtin is missing, so
// hot loops can issue hints unconditionally.
#pragma once

namespace rlb::util {

inline void prefetch(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr);
#else
  (void)addr;
#endif
}

}  // namespace rlb::util
