#include "util/rootfind.h"

#include <cmath>

#include "util/require.h"

namespace rlb::util {

RootResult find_root(const std::function<double(double)>& f, double lo,
                     double hi, double tol, int max_iter) {
  RLB_REQUIRE(lo <= hi, "find_root: lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  RootResult out;
  if (std::abs(flo) <= tol) {
    out = {lo, std::abs(flo), 0, true};
    return out;
  }
  if (std::abs(fhi) <= tol) {
    out = {hi, std::abs(fhi), 0, true};
    return out;
  }
  RLB_REQUIRE(flo * fhi < 0.0, "find_root: f must bracket a root");

  double a = lo, b = hi, fa = flo, fb = fhi;
  bool force_bisect = false;
  for (int it = 1; it <= max_iter; ++it) {
    const double width = b - a;
    // Secant candidate, alternated with bisection so the bracket provably
    // shrinks (a secant step that lands too close to an endpoint would
    // otherwise stall the interval).
    double m;
    if (force_bisect) {
      m = a + 0.5 * width;
    } else {
      m = b - fb * (b - a) / (fb - fa);
      if (!(m > a + 0.01 * width && m < b - 0.01 * width))
        m = a + 0.5 * width;
    }
    const double fm = f(m);
    out.iterations = it;
    if (std::abs(fm) <= tol || width <= tol * (1.0 + std::abs(m))) {
      out.x = m;
      out.residual = std::abs(fm);
      out.converged = true;
      return out;
    }
    double old_width = width;
    if (fa * fm < 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
    // If the interval did not shrink by at least a third, bisect next time.
    force_bisect = (b - a) > 0.67 * old_width;
  }
  out.x = 0.5 * (a + b);
  out.residual = std::abs(f(out.x));
  out.converged = out.residual <= 1e3 * tol;
  return out;
}

}  // namespace rlb::util
