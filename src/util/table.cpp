#include "util/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.h"

namespace rlb::util {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RLB_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  RLB_REQUIRE(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  RLB_REQUIRE(out.good(), "cannot open csv path: " + path);
  write_csv(out);
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace rlb::util
