// Scalar root finding used by the sigma fixed-point equation of Theorem 2.
#pragma once

#include <functional>

namespace rlb::util {

struct RootResult {
  double x = 0.0;        ///< located root
  double residual = 0.0; ///< |f(x)| at the returned point
  int iterations = 0;
  bool converged = false;
};

/// Find a root of f in [lo, hi] by bisection refined with secant steps
/// (a robust Brent-lite). Requires f(lo) and f(hi) to have opposite signs
/// (or one of them to be ~0).
RootResult find_root(const std::function<double(double)>& f, double lo,
                     double hi, double tol = 1e-13, int max_iter = 200);

}  // namespace rlb::util
