// The splitmix64 mixer (Steele, Lea & Flood), the one seed-derivation
// primitive everything in the repo shares: xoshiro seeding (sim/rng),
// per-cell sweep seeds (engine/sweep), per-replica seeds (sim/replica)
// and the reservoir's replacement indices (sim/stats). Committed
// baselines and the thread-count-determinism contract depend on these
// exact constants — change them nowhere, and only here.
#pragma once

#include <cstdint>

namespace rlb::util {

/// Advance `state` by the golden gamma and return the mixed output
/// (one canonical splitmix64 step).
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless form: the output of one splitmix64 step started at `x`.
inline std::uint64_t splitmix64(std::uint64_t x) {
  return splitmix64_next(x);
}

}  // namespace rlb::util
