// Tiny command-line flag parser shared by the bench/example binaries.
//
// Supports --name=value, --name value, and boolean --name forms. Unknown
// flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rlb::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def = false) const;

  /// Names seen on the command line that were never queried; used by
  /// finish() to reject typos.
  void finish() const;

 private:
  void mark_queried(const std::string& name) const;

  std::map<std::string, std::string> values_;
  // The queried-flag bookkeeping mutates under const getters; the mutex
  // keeps reads safe from scenario sweep cells running on worker threads.
  mutable std::mutex queried_mutex_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace rlb::util
