#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>

#include "util/require.h"

namespace rlb::util {

Cli::Cli(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    RLB_REQUIRE(a.rfind("--", 0) == 0, "flags must start with --: " + a);
    const auto eq = a.find('=');
    if (eq != std::string::npos) {
      values_[a.substr(2, eq - 2)] = a.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[a.substr(2)] = args[i + 1];
      ++i;
    } else {
      values_[a.substr(2)] = "true";
    }
  }
}

void Cli::mark_queried(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(queried_mutex_);
  queried_[name] = true;
}

bool Cli::has(const std::string& name) const {
  mark_queried(name);
  return values_.count(name) > 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  mark_queried(name);
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

double Cli::get_double(const std::string& name, double def) const {
  const std::string s = get(name, "");
  return s.empty() ? def : std::stod(s);
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const std::string s = get(name, "");
  return s.empty() ? def : std::stoll(s);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const std::string s = get(name, "");
  if (s.empty()) return def;
  return s == "true" || s == "1" || s == "yes";
}

void Cli::finish() const {
  const std::lock_guard<std::mutex> lock(queried_mutex_);
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!queried_.count(name))
      throw std::invalid_argument("unknown flag: --" + name);
  }
}

}  // namespace rlb::util
