// Binomial coefficients and related identities.
//
// The SQ(d) transition law is built from ratios C(a, d) / C(N, d); for the
// parameter ranges in the paper (N up to a few hundred, d up to 50) the
// coefficients themselves can overflow 64-bit integers, so the double and
// log-domain versions are the workhorses. The exact 64-bit version is kept
// for state-space sizing, where values are small and exactness matters.
#pragma once

#include <cstdint>

namespace rlb::util {

/// C(n, k) as a double. Returns 0 for k < 0 or k > n. Accurate to ~1 ulp per
/// multiply (k multiplies); exact whenever the value fits in 2^53.
double binomial(int n, int k);

/// log C(n, k) via lgamma. Requires 0 <= k <= n.
double log_binomial(int n, int k);

/// Exact C(n, k) in 64 bits; throws std::overflow_error if it does not fit.
std::uint64_t binomial_u64(int n, int k);

/// Ratio C(a, k) / C(n, k) computed stably in the log domain.
/// Returns 0 when a < k. Requires 0 <= k <= n and a <= n.
double binomial_ratio(int a, int n, int k);

}  // namespace rlb::util
