// Minimal aligned-table and CSV emitters for the bench harnesses.
//
// Every bench binary prints the same rows/series as the corresponding paper
// figure; Table keeps the console output readable and write_csv makes the
// series easy to plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rlb::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision, passing through
  /// strings unchanged.
  void add_row_numeric(const std::vector<double>& row, int precision = 4);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

  /// Render with space-padded, right-aligned columns.
  void print(std::ostream& os) const;

  /// Write as CSV (header + rows).
  void write_csv(const std::string& path) const;
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared by benches).
std::string fmt(double v, int precision = 4);

}  // namespace rlb::util
