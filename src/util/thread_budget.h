// A shared worker-slot budget for nested parallelism.
//
// The scenario engine parallelizes across sweep cells and, since the
// replica rework, each cell may parallelize across simulation replicas.
// Both levels draw worker slots from one ThreadBudget instead of each
// spawning its own hardware_concurrency() pool, so a run never
// oversubscribes the machine: when many cells are in flight the replicas
// inside each cell run serially, and when only one long cell remains its
// replicas soak up the slots the finished cells released.
//
// Semantics: a budget of `total` holds total - 1 acquirable slots — the
// caller of any parallel loop always owns one slot implicitly (its own
// thread). try_acquire() never blocks; it hands out whatever is available
// and the loop runs with that plus the calling thread. Acquired slots are
// returned with release() as each helper thread retires, which is what
// lets a still-running inner loop pick them up mid-flight.
#pragma once

#include <atomic>

namespace rlb::util {

class ThreadBudget {
 public:
  /// A budget of `total` worker slots (total >= 1); the constructing
  /// caller's own thread occupies one of them.
  explicit ThreadBudget(int total);

  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;

  [[nodiscard]] int total() const { return total_; }

  /// Currently acquirable slots (instantaneous, informational).
  [[nodiscard]] int available() const;

  /// Take up to `want` extra slots; returns how many were granted
  /// (possibly 0). Never blocks.
  int try_acquire(int want);

  /// Return `count` previously acquired slots.
  void release(int count);

  /// A process-wide one-slot budget: try_acquire always returns 0, so
  /// every loop drawing from it runs serially on the calling thread. The
  /// default for library entry points called outside the engine.
  static ThreadBudget& serial();

 private:
  int total_;
  std::atomic<int> available_;
};

}  // namespace rlb::util
