#include "linalg/lu.h"

#include <cmath>
#include <stdexcept>

#include "util/require.h"

namespace rlb::linalg {

Lu::Lu(Matrix a) : lu_(std::move(a)), perm_(lu_.rows()) {
  RLB_REQUIRE(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| in column k to the pivot.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < 1e-300)
      throw std::runtime_error("Lu: matrix is numerically singular");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = lu_(i, k) / pivot;
      lu_(i, k) = f;
      if (f == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= f * lu_(k, j);
    }
  }
}

Vector Lu::solve(Vector b) const {
  const std::size_t n = size();
  RLB_REQUIRE(b.size() == n, "Lu::solve shape mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) x[i] -= lu_(i, j) * x[j];
    x[i] /= lu_(i, i);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  RLB_REQUIRE(b.rows() == size(), "Lu::solve shape mismatch");
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const Vector sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(size())); }

Vector solve(const Matrix& a, Vector b) { return Lu(a).solve(std::move(b)); }

Matrix solve(const Matrix& a, const Matrix& b) { return Lu(a).solve(b); }

Matrix inverse(const Matrix& a) { return Lu(a).inverse(); }

Vector solve_transposed(const Matrix& a, Vector b) {
  return Lu(a.transpose()).solve(std::move(b));
}

}  // namespace rlb::linalg
