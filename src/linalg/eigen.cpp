#include "linalg/eigen.h"

#include <cmath>

#include "util/require.h"

namespace rlb::linalg {

SpectralResult power_iteration(const Matrix& a, double tol, int max_iter) {
  RLB_REQUIRE(a.rows() == a.cols(), "power iteration needs square matrix");
  const std::size_t n = a.rows();
  SpectralResult out;
  if (n == 0) {
    out.converged = true;
    return out;
  }
  Vector x(n, 1.0 / static_cast<double>(n));
  double lambda = 0.0;
  for (int it = 1; it <= max_iter; ++it) {
    Vector y = mat_vec(a, x);
    const double norm = norm_inf(y);
    out.iterations = it;
    if (norm == 0.0) {
      // Nilpotent direction; dominant eigenvalue is 0.
      out.value = 0.0;
      out.vector = x;
      out.converged = true;
      return out;
    }
    for (double& v : y) v /= norm;
    const double next = norm;
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta = std::max(delta, std::abs(y[i] - x[i]));
    x = std::move(y);
    if (std::abs(next - lambda) <= tol * (1.0 + std::abs(next)) &&
        delta <= 1e3 * tol) {
      out.value = next;
      out.vector = x;
      out.converged = true;
      return out;
    }
    lambda = next;
  }
  out.value = lambda;
  out.vector = x;
  out.converged = false;
  return out;
}

SpectralResult power_iteration_left(const Matrix& a, double tol, int max_iter) {
  return power_iteration(a.transpose(), tol, max_iter);
}

}  // namespace rlb::linalg
