#include "linalg/matrix.h"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "util/require.h"

namespace rlb::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  RLB_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  RLB_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

double Matrix::norm_inf() const {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += std::abs((*this)(i, j));
    best = std::max(best, s);
  }
  return best;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

Vector Matrix::row_sums() const {
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out[i] += (*this)(i, j);
  return out;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  RLB_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Vector vec_mat(const Vector& x, const Matrix& a) {
  RLB_REQUIRE(x.size() == a.rows(), "vec_mat shape mismatch");
  Vector out(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += xi * a(i, j);
  }
  return out;
}

Vector mat_vec(const Matrix& a, const Vector& x) {
  RLB_REQUIRE(x.size() == a.cols(), "mat_vec shape mismatch");
  Vector out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    out[i] = s;
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  RLB_REQUIRE(a.size() == b.size(), "dot shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double sum(const Vector& a) {
  double s = 0.0;
  for (double v : a) s += v;
  return s;
}

double norm_inf(const Vector& a) {
  double best = 0.0;
  for (double v : a) best = std::max(best, std::abs(v));
  return best;
}

Vector& axpy(Vector& y, double alpha, const Vector& x) {
  RLB_REQUIRE(y.size() == x.size(), "axpy shape mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
  return y;
}

Vector scaled(Vector v, double s) {
  for (double& x : v) x *= s;
  return v;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j)
      os << std::setw(12) << std::setprecision(5) << m(i, j)
         << (j + 1 == m.cols() ? "" : " ");
    os << '\n';
  }
  return os;
}

}  // namespace rlb::linalg
