// Spectral helpers: power iteration for the dominant eigenvalue of a
// nonnegative matrix (used to check sp(R) < 1 and the Theorem-3 identity
// sp(R) = rho^N for the lower bound model).
#pragma once

#include "linalg/matrix.h"

namespace rlb::linalg {

struct SpectralResult {
  double value = 0.0;   ///< dominant eigenvalue estimate
  Vector vector;        ///< corresponding (right) eigenvector, 1-normalized
  int iterations = 0;
  bool converged = false;
};

/// Power iteration on a square matrix with nonnegative dominant eigenvalue.
SpectralResult power_iteration(const Matrix& a, double tol = 1e-12,
                               int max_iter = 20000);

/// Dominant *left* eigenpair (power iteration on A^T).
SpectralResult power_iteration_left(const Matrix& a, double tol = 1e-12,
                                    int max_iter = 20000);

}  // namespace rlb::linalg
