// Dense row-major matrix of doubles with the operations the QBD engine
// needs. Deliberately dependency-free: the matrices in this project are a
// few hundred to a few thousand rows, so a straightforward O(n^3) dense
// implementation is both sufficient and easy to audit.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace rlb::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transpose() const;

  /// Max row sum of absolute values (infinity norm).
  [[nodiscard]] double norm_inf() const;

  /// Largest absolute entry.
  [[nodiscard]] double max_abs() const;

  /// Row sums as a vector.
  [[nodiscard]] Vector row_sums() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double s);
Matrix operator*(double s, Matrix rhs);

/// Dense matrix product (ikj loop order, cache friendly).
Matrix operator*(const Matrix& a, const Matrix& b);

/// Row-vector times matrix: returns x^T A as a vector.
Vector vec_mat(const Vector& x, const Matrix& a);

/// Matrix times column vector.
Vector mat_vec(const Matrix& a, const Vector& x);

// -- Vector helpers -----------------------------------------------------

double dot(const Vector& a, const Vector& b);
double sum(const Vector& a);
double norm_inf(const Vector& a);
Vector& axpy(Vector& y, double alpha, const Vector& x);  // y += alpha * x
Vector scaled(Vector v, double s);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace rlb::linalg
