// LU decomposition with partial pivoting, plus solve/inverse built on it.
#pragma once

#include "linalg/matrix.h"

namespace rlb::linalg {

/// Factorization P·A = L·U stored compactly. Throws std::runtime_error if A
/// is numerically singular.
class Lu {
 public:
  explicit Lu(Matrix a);

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.
  [[nodiscard]] Vector solve(Vector b) const;

  /// Solve A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// A^{-1} (via n solves).
  [[nodiscard]] Matrix inverse() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// One-shot helpers.
Vector solve(const Matrix& a, Vector b);
Matrix solve(const Matrix& a, const Matrix& b);
Matrix inverse(const Matrix& a);

/// Solve x^T A = b^T (i.e., A^T x = b) without forming the transpose at the
/// call site.
Vector solve_transposed(const Matrix& a, Vector b);

}  // namespace rlb::linalg
