// Level/block partition of the gap-bounded state space S(T) (paper §IV-A).
//
//   boundary  B_b  = { m in S(T) : #m <= (N-1)T }        (all idle-server
//                                                          states live here)
//   level q   B_q  = { m : (N-1)T + qN < #m <= (N-1)T + (q+1)N },  q >= 0
//
// Each level contains exactly one state per shape (C(N+T-1, T) states), the
// map m -> m + (1,...,1) is a bijection B_q -> B_{q+1}, and every level
// state has m_N >= 1. States inside a block are ordered by total jobs with
// lexicographic tie-breaking, consistently across levels.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "statespace/shapes.h"
#include "statespace/state.h"

namespace rlb::statespace {

class LevelSpace {
 public:
  LevelSpace(int N, int T);

  [[nodiscard]] int servers() const { return n_; }
  [[nodiscard]] int threshold() const { return t_; }

  /// Largest total job count in the boundary block: (N-1)*T.
  [[nodiscard]] int boundary_total_max() const { return boundary_total_max_; }

  /// Number of states per repeating level: C(N+T-1, T).
  [[nodiscard]] std::size_t block_size() const { return level0_.size(); }

  /// Boundary states, ordered by (total jobs, lexicographic).
  [[nodiscard]] const std::vector<State>& boundary_states() const {
    return boundary_;
  }

  /// Level-0 states in block order.
  [[nodiscard]] const std::vector<State>& level0_states() const {
    return level0_;
  }

  /// j-th state of level q (level-0 state plus q extra jobs everywhere).
  [[nodiscard]] State level_state(int q, std::size_t j) const;

  /// Block membership of a state in S(T).
  struct Location {
    bool boundary = false;
    int level = -1;          ///< valid when !boundary
    std::size_t index = 0;   ///< index within the block
  };
  [[nodiscard]] Location locate(const State& m) const;

  /// True iff the state belongs to S(T) for this (N, T).
  [[nodiscard]] bool contains(const State& m) const;

 private:
  struct VecHash {
    std::size_t operator()(const State& s) const noexcept {
      std::size_t h = 0x9e3779b97f4a7c15ull;
      for (int v : s)
        h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
      return h;
    }
  };

  int n_ = 0;
  int t_ = 0;
  int boundary_total_max_ = 0;
  std::vector<State> boundary_;
  std::vector<State> level0_;
  std::unordered_map<State, std::size_t, VecHash> boundary_index_;
  std::unordered_map<State, std::size_t, VecHash> level0_index_;
};

}  // namespace rlb::statespace
