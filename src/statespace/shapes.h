// Shape enumeration for the gap-bounded state space S(T).
//
// A shape is the vector delta_i = m_i - m_N: non-increasing, delta_N = 0,
// delta_1 <= T — i.e., an integer partition fitting inside an (N-1) x T box.
// Every repeating QBD level contains exactly one state per shape, which is
// why the paper's block size is C(N+T-1, T).
#pragma once

#include <cstddef>
#include <vector>

#include "statespace/state.h"

namespace rlb::statespace {

/// All shapes for N servers and gap threshold T, in lexicographically
/// decreasing order of the delta vector. Count is C(N+T-1, T).
std::vector<State> enumerate_shapes(int N, int T);

/// Number of shapes, C(N+T-1, T), computed exactly.
std::size_t shape_count(int N, int T);

/// delta vector of a state (subtract the minimum).
State shape_of(const State& m);

}  // namespace rlb::statespace
