#include "statespace/state.h"

#include <sstream>

#include "util/require.h"

namespace rlb::statespace {

int total_jobs(const State& m) {
  int t = 0;
  for (int v : m) t += v;
  return t;
}

int gap(const State& m) {
  RLB_REQUIRE(!m.empty(), "gap of empty state");
  return m.front() - m.back();
}

bool is_valid_state(const State& m) {
  if (m.empty()) return false;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] < 0) return false;
    if (i > 0 && m[i] > m[i - 1]) return false;
  }
  return true;
}

int waiting_jobs(const State& m) {
  int w = 0;
  for (int v : m)
    if (v > 1) w += v - 1;
  return w;
}

int busy_servers(const State& m) {
  int b = 0;
  for (int v : m)
    if (v > 0) ++b;
  return b;
}

std::vector<TieGroup> tie_groups(const State& m) {
  RLB_REQUIRE(is_valid_state(m), "tie_groups: invalid state");
  std::vector<TieGroup> groups;
  int head = 0;
  const int n = static_cast<int>(m.size());
  for (int i = 1; i <= n; ++i) {
    if (i == n || m[i] != m[head]) {
      groups.push_back({head, i - 1, m[head]});
      head = i;
    }
  }
  return groups;
}

State after_arrival_at_head(const State& m, int head) {
  RLB_REQUIRE(head >= 0 && head < static_cast<int>(m.size()),
              "arrival head out of range");
  RLB_REQUIRE(head == 0 || m[head - 1] > m[head],
              "arrival must target a tie-group head");
  State out = m;
  out[head] += 1;
  RLB_ASSERT(is_valid_state(out), "arrival broke sortedness");
  return out;
}

State after_departure_at_tail(const State& m, int tail) {
  RLB_REQUIRE(tail >= 0 && tail < static_cast<int>(m.size()),
              "departure tail out of range");
  RLB_REQUIRE(m[tail] > 0, "departure from empty queue");
  RLB_REQUIRE(tail + 1 == static_cast<int>(m.size()) || m[tail + 1] < m[tail],
              "departure must target a tie-group tail");
  State out = m;
  out[tail] -= 1;
  RLB_ASSERT(is_valid_state(out), "departure broke sortedness");
  return out;
}

State plus_one_everywhere(const State& m) {
  State out = m;
  for (int& v : out) v += 1;
  return out;
}

std::string to_string(const State& m) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < m.size(); ++i)
    os << m[i] << (i + 1 == m.size() ? "" : ",");
  os << ')';
  return os.str();
}

}  // namespace rlb::statespace
