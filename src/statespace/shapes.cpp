#include "statespace/shapes.h"

#include <algorithm>

#include "util/combinatorics.h"
#include "util/require.h"

namespace rlb::statespace {

namespace {

void recurse(State& prefix, int remaining, int max_value,
             std::vector<State>& out) {
  if (remaining == 1) {
    // delta_N is always 0.
    prefix.push_back(0);
    out.push_back(prefix);
    prefix.pop_back();
    return;
  }
  for (int v = max_value; v >= 0; --v) {
    prefix.push_back(v);
    recurse(prefix, remaining - 1, v, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<State> enumerate_shapes(int N, int T) {
  RLB_REQUIRE(N >= 1, "need at least one server");
  RLB_REQUIRE(T >= 0, "threshold must be non-negative");
  std::vector<State> out;
  if (N == 1) {
    out.push_back(State{0});
    return out;
  }
  State prefix;
  recurse(prefix, N, T, out);
  RLB_ASSERT(out.size() == shape_count(N, T), "shape count mismatch");
  return out;
}

std::size_t shape_count(int N, int T) {
  return static_cast<std::size_t>(util::binomial_u64(N + T - 1, T));
}

State shape_of(const State& m) {
  RLB_REQUIRE(is_valid_state(m), "shape_of: invalid state");
  State out = m;
  const int base = m.back();
  for (int& v : out) v -= base;
  return out;
}

}  // namespace rlb::statespace
