#include "statespace/level_space.h"

#include <algorithm>

#include "util/require.h"

namespace rlb::statespace {

namespace {

/// Block ordering: by total jobs, ties broken lexicographically.
bool block_less(const State& a, const State& b) {
  const int ta = total_jobs(a);
  const int tb = total_jobs(b);
  if (ta != tb) return ta < tb;
  return a < b;
}

}  // namespace

LevelSpace::LevelSpace(int N, int T)
    : n_(N), t_(T), boundary_total_max_((N - 1) * T) {
  RLB_REQUIRE(N >= 1, "need at least one server");
  RLB_REQUIRE(T >= 1, "threshold must be at least 1");

  const std::vector<State> shapes = enumerate_shapes(N, T);

  // Boundary: every (shape, base) with total <= (N-1)T.
  for (const State& shape : shapes) {
    const int s = total_jobs(shape);
    for (int base = 0; N * base + s <= boundary_total_max_; ++base) {
      State m = shape;
      for (int& v : m) v += base;
      boundary_.push_back(std::move(m));
    }
  }
  std::sort(boundary_.begin(), boundary_.end(), block_less);
  for (std::size_t i = 0; i < boundary_.size(); ++i)
    boundary_index_.emplace(boundary_[i], i);

  // Level 0: per shape, the unique base with total in ((N-1)T, (N-1)T + N].
  for (const State& shape : shapes) {
    const int s = total_jobs(shape);
    RLB_ASSERT(s <= boundary_total_max_, "shape sum exceeds (N-1)T");
    const int base = (boundary_total_max_ - s) / N + 1;
    State m = shape;
    for (int& v : m) v += base;
    const int tot = total_jobs(m);
    RLB_ASSERT(tot > boundary_total_max_ && tot <= boundary_total_max_ + N,
               "level-0 total out of range");
    level0_.push_back(std::move(m));
  }
  std::sort(level0_.begin(), level0_.end(), block_less);
  for (std::size_t i = 0; i < level0_.size(); ++i)
    level0_index_.emplace(level0_[i], i);
  RLB_ASSERT(level0_.size() == shape_count(N, T), "level size mismatch");
}

State LevelSpace::level_state(int q, std::size_t j) const {
  RLB_REQUIRE(q >= 0, "level must be non-negative");
  RLB_REQUIRE(j < level0_.size(), "level index out of range");
  State m = level0_[j];
  for (int& v : m) v += q;
  return m;
}

LevelSpace::Location LevelSpace::locate(const State& m) const {
  RLB_REQUIRE(contains(m), "state not in S(T): " + to_string(m));
  Location loc;
  const int tot = total_jobs(m);
  if (tot <= boundary_total_max_) {
    loc.boundary = true;
    const auto it = boundary_index_.find(m);
    RLB_ASSERT(it != boundary_index_.end(), "boundary state not indexed");
    loc.index = it->second;
    return loc;
  }
  loc.boundary = false;
  loc.level = (tot - boundary_total_max_ - 1) / n_;
  State base = m;
  for (int& v : base) v -= loc.level;
  const auto it = level0_index_.find(base);
  RLB_ASSERT(it != level0_index_.end(), "level state not indexed");
  loc.index = it->second;
  return loc;
}

bool LevelSpace::contains(const State& m) const {
  return static_cast<int>(m.size()) == n_ && is_valid_state(m) &&
         gap(m) <= t_;
}

}  // namespace rlb::statespace
