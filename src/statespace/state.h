// Sorted queue-length states and tie-group utilities.
//
// A state m = (m1 >= m2 >= ... >= mN >= 0) lists queue lengths in
// non-increasing order (paper Section II). The tie conventions — arrivals
// enter a tie group at its head, departures leave at its tail — are what
// keep every transition inside the sorted representation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rlb::statespace {

/// Queue lengths in non-increasing order; index 0 is the longest queue.
using State = std::vector<int>;

/// Total number of jobs #m.
int total_jobs(const State& m);

/// Gap m1 - mN between longest and shortest queue.
int gap(const State& m);

/// True iff the vector is non-increasing with non-negative entries.
bool is_valid_state(const State& m);

/// Number of waiting (non-in-service) jobs: sum of max(mi - 1, 0).
int waiting_jobs(const State& m);

/// Number of busy servers: count of mi > 0.
int busy_servers(const State& m);

/// A maximal run of equal components. `head`/`tail` are 0-based inclusive
/// indices, `value` the common queue length.
struct TieGroup {
  int head = 0;
  int tail = 0;
  int value = 0;
  [[nodiscard]] int size() const { return tail - head + 1; }
};

/// Decompose a state into its tie groups, longest queues first.
std::vector<TieGroup> tie_groups(const State& m);

/// Arrival into the tie group with head index `head`: increments that
/// component (stays sorted by the head convention).
State after_arrival_at_head(const State& m, int head);

/// Departure from the tie group with tail index `tail`: decrements that
/// component (stays sorted by the tail convention). Requires m[tail] > 0.
State after_departure_at_tail(const State& m, int tail);

/// The state m + (1,1,...,1): one extra job at every server.
State plus_one_everywhere(const State& m);

/// Human-readable "(3,2,2,0)" form for diagnostics.
std::string to_string(const State& m);

}  // namespace rlb::statespace
