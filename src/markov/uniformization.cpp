#include "markov/uniformization.h"

#include <cmath>

#include "util/require.h"

namespace rlb::markov {

linalg::Vector transient_distribution(const linalg::Matrix& generator,
                                      const linalg::Vector& initial, double t,
                                      double tol) {
  RLB_REQUIRE(generator.rows() == generator.cols(), "square generator");
  RLB_REQUIRE(initial.size() == generator.rows(), "initial size mismatch");
  RLB_REQUIRE(t >= 0.0, "time must be non-negative");
  const std::size_t n = generator.rows();

  // Uniformization rate: max |diagonal| (plus slack for strict positivity).
  double lambda = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    lambda = std::max(lambda, -generator(i, i));
  if (lambda == 0.0 || t == 0.0) return initial;
  lambda *= 1.0001;

  // P = I + Q / lambda (stochastic).
  linalg::Matrix p = generator;
  p *= 1.0 / lambda;
  for (std::size_t i = 0; i < n; ++i) p(i, i) += 1.0;

  // result = sum_k Poisson(lambda t; k) * initial * P^k, truncated when the
  // remaining Poisson mass drops below tol.
  linalg::Vector term = initial;
  linalg::Vector result(n, 0.0);
  const double lt = lambda * t;
  double log_weight = -lt;  // log Poisson(k=0)
  double cumulative = 0.0;
  for (int k = 0;; ++k) {
    const double w = std::exp(log_weight);
    for (std::size_t i = 0; i < n; ++i) result[i] += w * term[i];
    cumulative += w;
    if (1.0 - cumulative < tol && k > lt) break;
    term = linalg::vec_mat(term, p);
    log_weight += std::log(lt) - std::log1p(k);  // -> log Poisson(k+1)
  }
  // Renormalize the truncated series.
  double total = 0.0;
  for (double v : result) total += v;
  for (double& v : result) v /= total;
  return result;
}

}  // namespace rlb::markov
