// Generic finite CTMC construction over hashed vector states.
//
// Used for the exact (truncated) reference solutions of the original SQ(d)
// process against which the bound models are validated, and for
// simulating/solving small chains in tests.
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "statespace/state.h"

namespace rlb::markov {

struct StateHash {
  std::size_t operator()(const statespace::State& s) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ull;
    for (int v : s) {
      h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

using StateIndex =
    std::unordered_map<statespace::State, std::size_t, StateHash>;

/// One outgoing transition: target state and rate.
struct Rated {
  statespace::State to;
  double rate = 0.0;
};

using TransitionFn =
    std::function<std::vector<Rated>(const statespace::State&)>;

/// A finite CTMC with an explicit dense generator.
struct Ctmc {
  std::vector<statespace::State> states;  ///< index -> state
  StateIndex index;                       ///< state -> index
  linalg::Matrix generator;               ///< row sums are zero

  [[nodiscard]] std::size_t size() const { return states.size(); }
};

/// Breadth-first exploration of the reachable set from `initial` under `fn`.
/// `fn` must make the reachable set finite (e.g., by truncating arrivals);
/// exploration aborts past `max_states` with an exception.
Ctmc build_ctmc(const statespace::State& initial, const TransitionFn& fn,
                std::size_t max_states = 2'000'000);

/// Expectation of `f` under a distribution over the chain's states.
double expectation(const Ctmc& chain, const linalg::Vector& dist,
                   const std::function<double(const statespace::State&)>& f);

}  // namespace rlb::markov
