#include "markov/gth.h"

#include <stdexcept>

#include "util/require.h"

namespace rlb::markov {

linalg::Vector stationary_gth(const linalg::Matrix& generator) {
  RLB_REQUIRE(generator.rows() == generator.cols(), "GTH needs square input");
  const std::size_t n = generator.rows();
  RLB_REQUIRE(n > 0, "GTH on empty chain");
  linalg::Matrix q = generator;  // working copy; diagonal is never read

  // Elimination: fold state k into states 0..k-1.
  for (std::size_t k = n - 1; k >= 1; --k) {
    double s = 0.0;
    for (std::size_t j = 0; j < k; ++j) s += q(k, j);
    if (s <= 0.0)
      throw std::runtime_error("stationary_gth: chain is not irreducible");
    for (std::size_t i = 0; i < k; ++i) q(i, k) /= s;
    for (std::size_t i = 0; i < k; ++i) {
      const double f = q(i, k);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < k; ++j) q(i, j) += f * q(k, j);
    }
  }

  // Back substitution.
  linalg::Vector pi(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i < k; ++i) s += pi[i] * q(i, k);
    pi[k] = s;
  }
  double total = 0.0;
  for (double v : pi) total += v;
  for (double& v : pi) v /= total;
  return pi;
}

linalg::Vector stationary_gth_dtmc(const linalg::Matrix& transition) {
  linalg::Matrix q = transition;
  for (std::size_t i = 0; i < q.rows(); ++i) q(i, i) -= 1.0;
  return stationary_gth(q);
}

}  // namespace rlb::markov
