// Transient analysis of a finite CTMC by uniformization (Jensen's method).
#pragma once

#include "linalg/matrix.h"

namespace rlb::markov {

/// Distribution at time t starting from `initial`, computed by
/// uniformization with truncation error below `tol` (in total variation).
linalg::Vector transient_distribution(const linalg::Matrix& generator,
                                      const linalg::Vector& initial, double t,
                                      double tol = 1e-12);

}  // namespace rlb::markov
