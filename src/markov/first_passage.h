// Expected first-passage (hitting) times for finite CTMCs.
//
// Solves the standard linear system: h = 0 on the target set and
// sum_j Q(i, j) h(j) = -1 elsewhere. Used for busy-period style analyses
// of the queueing chains (e.g., expected time for a loaded cluster to
// drain) and as another exactly-testable substrate primitive.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace rlb::markov {

/// h[i] = expected time to reach any state with target[i] == true, starting
/// from state i (0 for target states). Requires at least one target and
/// that targets are reachable from every state (the system is singular
/// otherwise and an exception is thrown).
linalg::Vector expected_hitting_times(const linalg::Matrix& generator,
                                      const std::vector<bool>& target);

}  // namespace rlb::markov
