// Grassmann–Taksar–Heyman (GTH) stationary solver.
//
// GTH computes the stationary distribution of an irreducible CTMC generator
// (or DTMC transition matrix) using only additions of nonnegative numbers,
// which makes it backward stable — the right tool for the drift-condition
// chain pi*A = 0 of Neuts' Theorem 1.7.1 and for exact reference solutions.
#pragma once

#include "linalg/matrix.h"

namespace rlb::markov {

/// Stationary distribution of an irreducible CTMC generator (rows sum to 0).
linalg::Vector stationary_gth(const linalg::Matrix& generator);

/// Stationary distribution of an irreducible DTMC stochastic matrix
/// (rows sum to 1); implemented via the generator P - I.
linalg::Vector stationary_gth_dtmc(const linalg::Matrix& transition);

}  // namespace rlb::markov
