#include "markov/ctmc.h"

#include <deque>
#include <stdexcept>

#include "util/require.h"

namespace rlb::markov {

Ctmc build_ctmc(const statespace::State& initial, const TransitionFn& fn,
                std::size_t max_states) {
  Ctmc chain;
  std::deque<std::size_t> frontier;
  // Two passes: first discover all states, then fill the dense generator
  // (so we know its dimension up front).
  chain.states.push_back(initial);
  chain.index.emplace(initial, 0);
  frontier.push_back(0);
  std::vector<std::vector<std::pair<std::size_t, double>>> rows;
  while (!frontier.empty()) {
    const std::size_t si = frontier.front();
    frontier.pop_front();
    const statespace::State state = chain.states[si];  // copy: vector grows
    std::vector<std::pair<std::size_t, double>> row;
    for (const Rated& t : fn(state)) {
      if (t.rate <= 0.0) continue;
      auto [it, inserted] = chain.index.emplace(t.to, chain.states.size());
      if (inserted) {
        chain.states.push_back(t.to);
        if (chain.states.size() > max_states)
          throw std::runtime_error("build_ctmc: state space exceeds limit");
        frontier.push_back(it->second);
      }
      row.emplace_back(it->second, t.rate);
    }
    if (rows.size() <= si) rows.resize(chain.states.size());
    rows[si] = std::move(row);
  }
  rows.resize(chain.states.size());

  const std::size_t n = chain.states.size();
  chain.generator = linalg::Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double out = 0.0;
    for (const auto& [j, rate] : rows[i]) {
      chain.generator(i, j) += rate;
      out += rate;
    }
    chain.generator(i, i) -= out;
  }
  return chain;
}

double expectation(const Ctmc& chain, const linalg::Vector& dist,
                   const std::function<double(const statespace::State&)>& f) {
  RLB_REQUIRE(dist.size() == chain.size(), "distribution size mismatch");
  double e = 0.0;
  for (std::size_t i = 0; i < chain.size(); ++i)
    e += dist[i] * f(chain.states[i]);
  return e;
}

}  // namespace rlb::markov
