#include "markov/first_passage.h"

#include "linalg/lu.h"
#include "util/require.h"

namespace rlb::markov {

linalg::Vector expected_hitting_times(const linalg::Matrix& generator,
                                      const std::vector<bool>& target) {
  const std::size_t n = generator.rows();
  RLB_REQUIRE(generator.cols() == n, "generator must be square");
  RLB_REQUIRE(target.size() == n, "target mask size mismatch");
  std::vector<std::size_t> free_states;
  for (std::size_t i = 0; i < n; ++i)
    if (!target[i]) free_states.push_back(i);
  RLB_REQUIRE(free_states.size() < n, "need at least one target state");

  // Restrict Q to the non-target states and solve Q_ff h_f = -1.
  const std::size_t m = free_states.size();
  linalg::Matrix qff(m, m);
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = 0; b < m; ++b)
      qff(a, b) = generator(free_states[a], free_states[b]);
  const linalg::Vector hf = linalg::solve(qff, linalg::Vector(m, -1.0));

  linalg::Vector h(n, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    RLB_REQUIRE(hf[a] >= 0.0,
                "negative hitting time: target not reachable everywhere");
    h[free_states[a]] = hf[a];
  }
  return h;
}

}  // namespace rlb::markov
