// Scenario "rack_locality" — does power-of-d survive rack-locality
// constraints? (docs/TOPOLOGY.md). A racked cluster (R racks x per-rack
// servers, cross-rack penalty as added latency or a capacity factor)
// compares topology-blind SQ(d)/JIQ against their locality-aware
// variants: delay and p99 vs the penalty, and vs d at a fixed penalty.
// Each (row, policy) simulation is one sweep cell with common random
// numbers per row; the zero-penalty no-spill column is cross-checked
// against the paper's exact solver (each rack is then an independent
// SQ(d) system of per-rack servers).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "sqd/exact_reference.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

constexpr std::size_t kMainTasks = 5;  // blind sq(d), spill, local, jiq, rack-jiq
constexpr std::size_t kDTasks = 3;     // blind sq(d), spill, local

/// Truncation cap that keeps the exact solve's truncation mass
/// negligible at per-rack sizes (matches test_exact_sandwich.cpp).
int cap_for(int n) { return n == 2 ? 70 : (n == 3 ? 36 : 26); }

std::unique_ptr<rlb::sim::Policy> make_main_policy(int n, int racks, int d,
                                                   std::size_t task) {
  using namespace rlb::sim;
  switch (task) {
    case 0:
      return std::make_unique<SqdPolicy>(n, d);
    case 1:
      return std::make_unique<RackLocalSqdPolicy>(n, racks, d, 1);
    case 2:
      return std::make_unique<RackLocalSqdPolicy>(n, racks, d, 0);
    case 3:
      return std::make_unique<JiqPolicy>(n, 1);
    default:
      return std::make_unique<RackJiqPolicy>(n, racks, 1);
  }
}

ScenarioOutput run(ScenarioContext& ctx) {
  const int racks = static_cast<int>(ctx.cli().get_int("racks", 4));
  const int per = static_cast<int>(ctx.cli().get_int("per-rack", 4));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const double rho = ctx.cli().get_double("rho", 0.85);
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 400'000));
  const auto seed = static_cast<std::uint64_t>(ctx.cli().get_int("seed", 99));
  const std::string kind = ctx.cli().get("penalty-kind", "latency");
  const bool adaptive = ctx.adaptive().enabled();

  if (racks < 1 || per < 1)
    throw std::invalid_argument("--racks and --per-rack must be >= 1");
  if (kind != "latency" && kind != "capacity")
    throw std::invalid_argument(
        "--penalty-kind must be 'latency' or 'capacity'");

  const double check_rho = ctx.cli().get_double("check-rho", 0.70);
  const int n = racks * per;
  const std::vector<double> penalties{0.0, 0.25, 0.5, 1.0, 2.0};
  const std::size_t main_cells = penalties.size() * kMainTasks;
  // The d sweep runs d = 1..per at the middle penalty; its rows continue
  // the CRN row numbering after the main table's.
  const double d_sweep_penalty = penalties[2];
  const std::size_t d_rows = static_cast<std::size_t>(per);
  // The exact cross-check gets a dedicated zero-penalty cell at its own
  // (milder) load: the reference solver is truncated, and at per-rack
  // sizes the truncation mass is negligible only up to moderate rho.
  const bool have_check = per <= 4;
  const std::size_t check_cell = main_cells + d_rows * kDTasks;
  const std::size_t total_cells = check_cell + (have_check ? 1 : 0);

  const auto topology_of = [&](double p) {
    rlb::sim::Topology topo;
    topo.racks = racks;
    if (kind == "latency")
      topo.cross_latency = p;
    else
      topo.cross_capacity = 1.0 / (1.0 + p);
    return topo;
  };
  const auto row_of = [&](std::size_t i) {
    if (i >= check_cell) return penalties.size() + d_rows;
    return i < main_cells ? i / kMainTasks
                          : penalties.size() + (i - main_cells) / kDTasks;
  };

  // Cell values are {mean delay, p99 sojourn}.
  const auto cells = ctx.map_cells(
      total_cells,
      [&](std::size_t i) {
        // One seed per row shared across the policy columns (common
        // random numbers), so `task` must join the key alongside the
        // full topology coordinates.
        auto key = ctx.cell_key("rack_locality",
                                rlb::engine::cell_seed(seed, row_of(i)));
        const bool check = i >= check_cell;
        const bool main = i < main_cells;
        const std::size_t task = check ? 2
                                 : main ? i % kMainTasks
                                        : (i - main_cells) % kDTasks;
        key.set("racks", racks);
        key.set("per_rack", per);
        key.set("rho", check ? check_rho : rho);
        key.set("jobs", jobs);
        key.set("penalty_kind", kind);
        key.set("penalty", !check && main ? penalties[i / kMainTasks]
                           : check       ? 0.0
                                         : d_sweep_penalty);
        key.set("d", check  ? d
                    : main ? d
                           : static_cast<int>((i - main_cells) / kDTasks) + 1);
        key.set("table", check ? "zero_penalty_check"
                        : main ? "main"
                               : "d_sweep");
        key.set("task", static_cast<std::uint64_t>(task));
        return key;
      },
      [&](std::size_t i, const rlb::engine::CellRecord* refine_from) {
        using namespace rlb::sim;
        const bool check = i >= check_cell;
        const bool main = i < main_cells;
        const std::size_t task = check ? 2
                                 : main ? i % kMainTasks
                                        : (i - main_cells) % kDTasks;
        const double penalty = check  ? 0.0
                               : main ? penalties[i / kMainTasks]
                                      : d_sweep_penalty;
        const int cell_d =
            check  ? d
            : main ? d
                   : static_cast<int>((i - main_cells) / kDTasks) + 1;
        ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        cfg.seed = rlb::engine::cell_seed(seed, row_of(i));
        cfg.replicas = ctx.replicas();
        cfg.topology = topology_of(penalty);
        const auto arr = make_exponential((check ? check_rho : rho) * n);
        const auto svc = make_exponential(1.0);
        const auto policy = make_main_policy(n, racks, cell_d, task);
        rlb::engine::CellRecord rec;
        if (adaptive) {
          const auto plan = ctx.adaptive_plan(cfg.seed, jobs);
          ClusterRoundState state;
          const ClusterResult res =
              refine_from != nullptr
                  ? simulate_cluster_refine(cfg, *policy, *arr, *svc, plan,
                                            refine_from->round_state,
                                            ctx.budget(), &state)
                  : simulate_cluster_adaptive(cfg, *policy, *arr, *svc,
                                              plan, ctx.budget(), &state);
          rec.values = {res.mean_sojourn, res.p99_sojourn};
          rec.report = res.adaptive;
          rec.round_state = state;
          rec.has_round_state = true;
          return rec;
        }
        const ClusterResult res =
            simulate_cluster(cfg, *policy, *arr, *svc, ctx.budget());
        rec.values = {res.mean_sojourn, res.p99_sojourn};
        return rec;
      });

  ScenarioOutput out;
  out.preamble =
      "Rack locality: " + std::to_string(racks) + " racks x " +
      std::to_string(per) + " servers, d = " + std::to_string(d) +
      ", rho = " + rlb::util::fmt(rho, 2) + ", cross-rack penalty as " +
      kind + ", M/M service, DES with " +
      (adaptive ? "adaptive (--target-ci) run lengths"
                : std::to_string(jobs) + " jobs") +
      ".";

  std::vector<std::string> header{
      "penalty",          "sq(d)",        "rack-sq(d)",   "rack-local",
      "jiq",              "rack-jiq",     "sq(d) p99",    "rack-sq(d) p99",
      "rack-local p99",   "jiq p99",      "rack-jiq p99"};
  if (adaptive) rlb::engine::add_adaptive_columns(header);
  auto& table = out.add_table("main", header);
  for (std::size_t r = 0; r < penalties.size(); ++r) {
    std::vector<std::string> row{rlb::util::fmt(penalties[r], 2)};
    for (std::size_t task = 0; task < kMainTasks; ++task)
      row.push_back(
          rlb::util::fmt(cells[r * kMainTasks + task].values[0], 3));
    for (std::size_t task = 0; task < kMainTasks; ++task)
      row.push_back(
          rlb::util::fmt(cells[r * kMainTasks + task].values[1], 3));
    if (adaptive) {
      auto report = rlb::sim::AdaptiveReport::row_identity();
      for (std::size_t task = 0; task < kMainTasks; ++task)
        report.combine(cells[r * kMainTasks + task].report);
      rlb::engine::add_adaptive_cells(row, report);
    }
    table.add_row(std::move(row));
  }

  // At zero penalty the no-spill policy partitions the cluster into
  // `racks` independent SQ(d) systems of `per` servers, so the paper's
  // exact solver (viable for per <= 4) predicts its delay. The check
  // runs at --check-rho, where the solver's truncation mass is
  // negligible at cap_for(per).
  if (have_check) {
    auto& check = out.add_table(
        "zero_penalty_check",
        {"per-rack n", "d", "rho", "exact delay", "rack-local sim",
         "rel err"});
    const int d_eff = std::min(d, per);
    const auto exact = rlb::sqd::solve_exact_truncated(
        rlb::sqd::Params{per, d_eff, check_rho, 1.0}, cap_for(per));
    const double sim = cells[check_cell].values[0];
    const double rel =
        std::abs(sim - exact.mean_delay) / exact.mean_delay;
    check.add_row({std::to_string(per), std::to_string(d_eff),
                   rlb::util::fmt(check_rho, 2),
                   rlb::util::fmt(exact.mean_delay, 4),
                   rlb::util::fmt(sim, 4), rlb::util::fmt(rel, 4)});
  } else {
    out.note(
        "zero-penalty exact cross-check skipped: per-rack size > 4 is "
        "out of the exact solver's reach");
  }

  std::vector<std::string> d_header{"d", "sq(d)", "rack-sq(d)",
                                    "rack-local"};
  if (adaptive) rlb::engine::add_adaptive_columns(d_header);
  auto& d_table = out.add_table("d_sweep", d_header);
  for (std::size_t r = 0; r < d_rows; ++r) {
    std::vector<std::string> row{std::to_string(static_cast<int>(r) + 1)};
    for (std::size_t task = 0; task < kDTasks; ++task)
      row.push_back(rlb::util::fmt(
          cells[main_cells + r * kDTasks + task].values[0], 3));
    if (adaptive) {
      auto report = rlb::sim::AdaptiveReport::row_identity();
      for (std::size_t task = 0; task < kDTasks; ++task)
        report.combine(cells[main_cells + r * kDTasks + task].report);
      rlb::engine::add_adaptive_cells(row, report);
    }
    d_table.add_row(std::move(row));
  }
  out.note("d_sweep runs at penalty " + rlb::util::fmt(d_sweep_penalty, 2) +
           " (" + kind + ").");
  if (adaptive) out.note(rlb::engine::adaptive_note("every simulated cell"));
  out.postamble =
      "Expected shape: at zero penalty locality costs nothing (rack-local "
      "equals per-rack\nSQ(d), the exact column); as the penalty grows, "
      "blind policies pay it on most\ndispatches while locality-aware "
      "variants contain it — the power of d survives\ninside the rack.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "rack_locality",
    "Racked clusters: blind vs locality-aware SQ(d)/JIQ delay and p99 vs "
    "cross-rack penalty and d, with an exact zero-penalty cross-check",
    {{"racks", "number of equal racks", "4"},
     {"per-rack", "servers per rack", "4"},
     {"d", "polled servers per dispatch", "2"},
     {"rho", "offered load per server", "0.85"},
     {"jobs", "simulated jobs per cell", "400000"},
     {"penalty-kind", "cross-rack penalty: latency | capacity", "latency"},
     {"check-rho",
      "load for the zero-penalty exact cross-check (kept where the "
      "truncated solver is sharp)",
      "0.70"},
     {"seed", "base RNG seed; per-row seeds are derived from it", "99"}},
    run}};

}  // namespace
