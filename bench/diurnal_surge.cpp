// Scenario "diurnal_surge" — capacity planning under a diurnal arrival
// pattern. Arrivals follow a sinusoidal nonhomogeneous Poisson process
// (rate lambda0 * (1 + amp * sin(2 pi t / period)), sampled by thinning)
// or, with --trace=<file>, replay a recorded trace (sim/trace.h). The
// capacity table sweeps the fleet size N at a FIXED arrival stream: the
// surge peak overloads small fleets and the per-window p99 / SLA columns
// show what that costs, which a single steady-state mean would hide.
// The windows table details the first fleet size window by window
// (replica-clock windows of --window time units; see docs/WORKLOADS.md).
//
// Each fleet size is one sweep cell seeded cell_seed(seed, row); the
// windowed recorders consume no simulation randomness, so the classic
// columns match an un-windowed run of the same seed bit for bit.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "sim/arrival_process.h"
#include "sim/cluster_sim.h"
#include "sim/distributions.h"
#include "sim/trace.h"
#include "util/require.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

/// Parse a comma-separated fleet-size list such as "10,12,14,16".
std::vector<int> parse_fleet_sizes(const std::string& spec) {
  std::vector<int> out;
  std::istringstream stream(spec);
  std::string field;
  while (std::getline(stream, field, ',')) {
    std::size_t used = 0;
    int value = 0;
    try {
      value = std::stoi(field, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    RLB_REQUIRE(used == field.size() && value >= 1,
                "--ns must be a comma-separated list of fleet sizes >= 1: " +
                    spec);
    out.push_back(value);
  }
  RLB_REQUIRE(!out.empty(), "--ns must name at least one fleet size");
  return out;
}

ScenarioOutput run(ScenarioContext& ctx) {
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 400'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 97531));
  const double lambda0 = ctx.cli().get_double("lambda0", 8.0);
  const double amp = ctx.cli().get_double("amp", 0.6);
  const double period = ctx.cli().get_double("period", 400.0);
  const double window = ctx.cli().get_double("window", 50.0);
  const double sla = ctx.cli().get_double("sla", 4.0);
  const auto max_windows =
      static_cast<std::size_t>(ctx.cli().get_int("max-windows", 12));
  const std::string trace_path = ctx.cli().get("trace", "");
  const std::vector<int> fleet =
      parse_fleet_sizes(ctx.cli().get("ns", "10,12,14,16"));

  using namespace rlb::sim;

  // The arrival stream is FIXED across fleet sizes: a recorded trace when
  // --trace is given, the sinusoidal diurnal pattern otherwise. Cells
  // copy the prototype (trace storage is shared, not duplicated).
  std::unique_ptr<ArrivalProcess> proto;
  if (!trace_path.empty())
    proto = std::make_unique<TraceArrivalProcess>(load_trace(trace_path));
  else
    proto = std::make_unique<SinusoidalArrivalProcess>(lambda0, amp, period);

  const auto cells = ctx.map<ClusterResult>(fleet.size(), [&](std::size_t i) {
    ClusterConfig cfg;
    cfg.servers = fleet[i];
    cfg.jobs = jobs;
    cfg.warmup = jobs / 10;
    cfg.seed = rlb::engine::cell_seed(seed, i);
    cfg.replicas = ctx.replicas();
    cfg.window_width = window;
    cfg.sla_threshold = sla;
    const auto arrivals = proto->clone();
    const auto service = make_exponential(1.0);
    SqdPolicy policy(fleet[i], d);
    return simulate_cluster(cfg, policy, *arrivals, *service, ctx.budget());
  });

  ScenarioOutput out;
  out.preamble =
      "Diurnal surge capacity sweep for sq(" + std::to_string(d) +
      "): " + proto->name() + " arrivals (mean rate " +
      rlb::util::fmt(proto->mean_rate(), 3) +
      " jobs/time, mean service 1),\nfleet sizes N = {" +
      ctx.cli().get("ns", "10,12,14,16") + "}. SLA threshold: sojourn <= " +
      rlb::util::fmt(sla, 2) + "; windows of " + rlb::util::fmt(window, 1) +
      " time units on the replica clock.";

  auto& capacity = out.add_table(
      "capacity", {"N", "delay", "p99", "sla viol %", "worst win p99",
                   "util"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const ClusterResult& res = cells[i];
    double worst_p99 = 0.0;
    for (const WindowSummary& ws : res.windows)
      worst_p99 = std::max(worst_p99, ws.p99_sojourn);
    capacity.add_row({std::to_string(fleet[i]),
                      rlb::util::fmt(res.mean_sojourn, 4),
                      rlb::util::fmt(res.p99_sojourn, 4),
                      rlb::util::fmt(100.0 * res.sla_violation_fraction, 3),
                      rlb::util::fmt(worst_p99, 4),
                      rlb::util::fmt(res.utilization, 4)});
  }

  // Window-by-window transient detail for the first (tightest) fleet.
  auto& windows = out.add_table(
      "windows", {"t0", "jobs", "mean delay", "p99"});
  const ClusterResult& detail = cells.front();
  const std::size_t shown = std::min(max_windows, detail.windows.size());
  for (std::size_t w = 0; w < shown; ++w) {
    const WindowSummary& ws = detail.windows[w];
    windows.add_row({rlb::util::fmt(ws.start, 1),
                     std::to_string(ws.count),
                     rlb::util::fmt(ws.mean_sojourn, 4),
                     rlb::util::fmt(ws.p99_sojourn, 4)});
  }
  if (shown < detail.windows.size())
    out.note("windows table truncated to the first " +
             std::to_string(shown) + " of " +
             std::to_string(detail.windows.size()) +
             " windows (--max-windows raises the cap)");

  out.postamble =
      "Reading: a fleet sized for the MEAN rate melts at the peak — the "
      "per-window p99\nand SLA columns expose the surge that the overall "
      "delay column averages away.\nAdding servers buys headroom at the "
      "peak long before it moves the mean.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "diurnal_surge",
    "Capacity sweep under diurnal (sinusoidal or trace-replayed) "
    "arrivals: SLA violation fraction and per-window p99 vs fleet size",
    {{"d", "polled servers", "2"},
     {"ns", "comma-separated fleet sizes to sweep", "10,12,14,16"},
     {"jobs", "simulated jobs per cell", "400000"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "97531"},
     {"lambda0", "mean total arrival rate (sinusoidal mode)", "8.0"},
     {"amp", "relative surge amplitude in [0, 1] (sinusoidal mode)", "0.6"},
     {"period", "diurnal period in time units (sinusoidal mode)", "400.0"},
     {"window", "statistics window width in time units", "50.0"},
     {"sla", "SLA sojourn threshold", "4.0"},
     {"max-windows", "rows shown in the windows table", "12"},
     {"trace", "replay this trace file instead of the sinusoidal "
               "stream", ""}},
    run}};

}  // namespace
