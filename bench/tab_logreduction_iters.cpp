// Experiment E7 — in-text claim (§IV-A): "Latouche and Ramaswami claim that
// the algorithm to compute G needs only few iterations k. We confirm this
// to hold for our system configurations, for which the number of iterations
// is within k = 6."
//
// This bench reports the logarithmic-reduction iteration count and the
// residuals across the paper's configurations (and a few harder ones), for
// both bound models, plus the functional iteration count as contrast.
#include <iostream>

#include "qbd/logred.h"
#include "qbd/solver.h"
#include "sqd/blocks_builder.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const std::string csv = cli.get("csv", "");
  cli.finish();

  using rlb::sqd::BoundKind;
  using rlb::sqd::BoundModel;
  using rlb::sqd::Params;

  std::cout << "E7: logarithmic-reduction convergence (paper: k <= 6).\n";
  rlb::util::Table table({"model", "N", "d", "T", "rho", "block", "logred_k",
                          "residual", "functional_k"});

  struct Config {
    int n, d, t;
    double rho;
  };
  const std::vector<Config> configs{
      {3, 2, 2, 0.50}, {3, 2, 2, 0.90}, {3, 2, 3, 0.90}, {6, 2, 3, 0.90},
      {12, 2, 3, 0.90}, {6, 3, 2, 0.95}, {4, 4, 3, 0.95}, {2, 2, 4, 0.99},
  };

  for (const auto& c : configs) {
    for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
      const BoundModel model(Params{c.n, c.d, c.rho, 1.0}, c.t, kind);
      const auto q = rlb::sqd::build_bound_qbd(model);
      const auto drift =
          rlb::qbd::drift_condition(q.blocks.A0, q.blocks.A1, q.blocks.A2);
      const std::string name =
          kind == BoundKind::Lower ? "lower" : "upper";
      if (!drift.stable) {
        table.add_row({name, std::to_string(c.n), std::to_string(c.d),
                       std::to_string(c.t), rlb::util::fmt(c.rho, 2),
                       std::to_string(q.blocks.block_size()), "unstable", "-",
                       "-"});
        continue;
      }
      const auto g = rlb::qbd::logarithmic_reduction(q.blocks.A0, q.blocks.A1,
                                                     q.blocks.A2);
      const auto f = rlb::qbd::functional_iteration(
          q.blocks.A0, q.blocks.A1, q.blocks.A2, 1e-12, 200000);
      table.add_row({name, std::to_string(c.n), std::to_string(c.d),
                     std::to_string(c.t), rlb::util::fmt(c.rho, 2),
                     std::to_string(q.blocks.block_size()),
                     std::to_string(g.iterations),
                     rlb::util::fmt(g.residual, 16),
                     std::to_string(f.iterations)});
    }
  }
  table.print(std::cout);
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
