// Scenario "logreduction_iters" — Experiment E7, in-text claim (§IV-A):
// "Latouche and Ramaswami claim that the algorithm to compute G needs only
// few iterations k. We confirm this to hold for our system configurations,
// for which the number of iterations is within k = 6."
//
// Reports the logarithmic-reduction iteration count and the residuals
// across the paper's configurations (and a few harder ones), for both
// bound models, plus the functional iteration count as contrast. Each
// (configuration, bound kind) pair is one sweep cell.
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "qbd/logred.h"
#include "qbd/solver.h"
#include "sqd/blocks_builder.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

struct Config {
  int n, d, t;
  double rho;
};

struct CellResult {
  int block_size = 0;
  bool stable = false;
  int logred_k = 0;
  double residual = 0.0;
  int functional_k = 0;
};

ScenarioOutput run(ScenarioContext& ctx) {
  const std::vector<Config> configs{
      {3, 2, 2, 0.50}, {3, 2, 2, 0.90}, {3, 2, 3, 0.90}, {6, 2, 3, 0.90},
      {12, 2, 3, 0.90}, {6, 3, 2, 0.95}, {4, 4, 3, 0.95}, {2, 2, 4, 0.99},
  };
  const std::vector<BoundKind> kinds{BoundKind::Lower, BoundKind::Upper};

  const auto cells = ctx.map<CellResult>(
      configs.size() * kinds.size(), [&](std::size_t i) {
        const Config& c = configs[i / kinds.size()];
        const BoundKind kind = kinds[i % kinds.size()];
        const BoundModel model(Params{c.n, c.d, c.rho, 1.0}, c.t, kind);
        const auto q = rlb::sqd::build_bound_qbd(model);

        CellResult cell;
        cell.block_size = q.blocks.block_size();
        cell.stable =
            rlb::qbd::drift_condition(q.blocks.A0, q.blocks.A1, q.blocks.A2)
                .stable;
        if (!cell.stable) return cell;
        const auto g = rlb::qbd::logarithmic_reduction(
            q.blocks.A0, q.blocks.A1, q.blocks.A2);
        const auto f = rlb::qbd::functional_iteration(
            q.blocks.A0, q.blocks.A1, q.blocks.A2, 1e-12, 200000);
        cell.logred_k = g.iterations;
        cell.residual = g.residual;
        cell.functional_k = f.iterations;
        return cell;
      });

  ScenarioOutput out;
  out.preamble = "E7: logarithmic-reduction convergence (paper: k <= 6).";
  auto& table = out.add_table(
      "main", {"model", "N", "d", "T", "rho", "block", "logred_k",
               "residual", "functional_k"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Config& c = configs[i / kinds.size()];
    const std::string name =
        kinds[i % kinds.size()] == BoundKind::Lower ? "lower" : "upper";
    const CellResult& cell = cells[i];
    if (!cell.stable) {
      table.add_row({name, std::to_string(c.n), std::to_string(c.d),
                     std::to_string(c.t), rlb::util::fmt(c.rho, 2),
                     std::to_string(cell.block_size), "unstable", "-", "-"});
      continue;
    }
    table.add_row({name, std::to_string(c.n), std::to_string(c.d),
                   std::to_string(c.t), rlb::util::fmt(c.rho, 2),
                   std::to_string(cell.block_size),
                   std::to_string(cell.logred_k),
                   rlb::util::fmt(cell.residual, 16),
                   std::to_string(cell.functional_k)});
  }
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "logreduction_iters",
    "E7: logarithmic-reduction iteration counts and residuals across the "
    "paper's configurations",
    {},
    run}};

}  // namespace
