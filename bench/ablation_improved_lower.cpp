// Scenario "ablation_improved_lower" — Experiment E9, Theorems 2-3
// ablation: the improved lower bound (scalar rate sigma^N = rho^N) against
// the generic matrix-geometric solve. Verifies the agreement numerically,
// reports the speedup from skipping the G/R iteration, and checks
// sp(R) = rho^N. Each configuration is one sweep cell; the timing columns
// are measured wall-clock and therefore vary run to run.
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "linalg/eigen.h"
#include "qbd/logred.h"
#include "sqd/blocks_builder.h"
#include "sqd/bound_solver.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

struct Config {
  int n, t;
  double rho;
};

struct CellResult {
  int block_size = 0;
  double generic = 0.0;
  double improved = 0.0;
  double sp = 0.0;
  double t_generic = 0.0;
  double t_improved = 0.0;
};

ScenarioOutput run(ScenarioContext& ctx) {
  using clock = std::chrono::steady_clock;
  const std::vector<Config> configs{
      {3, 2, 0.70}, {3, 3, 0.90},  {6, 3, 0.70}, {6, 3, 0.90},
      {12, 3, 0.70}, {12, 3, 0.90}, {6, 4, 0.95},
  };

  const auto cells = ctx.map<CellResult>(
      configs.size(), [&](std::size_t i) {
        const Config& c = configs[i];
        const BoundModel model(Params{c.n, 2, c.rho, 1.0}, c.t,
                               BoundKind::Lower);
        const auto q = rlb::sqd::build_bound_qbd(model);

        CellResult cell;
        auto start = clock::now();
        const auto generic = rlb::sqd::solve_bound(model, q);
        cell.t_generic =
            std::chrono::duration<double>(clock::now() - start).count();
        cell.generic = generic.mean_delay;
        cell.block_size = generic.block_size;

        start = clock::now();
        cell.improved =
            rlb::sqd::solve_lower_improved(model, q, c.rho).mean_delay;
        cell.t_improved =
            std::chrono::duration<double>(clock::now() - start).count();

        const auto g = rlb::qbd::logarithmic_reduction(
            q.blocks.A0, q.blocks.A1, q.blocks.A2);
        const auto r =
            rlb::qbd::rate_matrix_from_g(q.blocks.A0, q.blocks.A1, g.G);
        cell.sp = rlb::linalg::power_iteration(r).value;
        return cell;
      });

  ScenarioOutput out;
  out.preamble =
      "E9: improved lower bound (Theorem 3) vs generic solve (Theorem 1).";
  auto& table = out.add_table(
      "main", {"N", "T", "rho", "block", "generic", "improved", "agree_rel",
               "sp(R)", "rho^N", "t_generic(s)", "t_improved(s)", "speedup"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    const CellResult& cell = cells[i];
    table.add_row(
        {std::to_string(c.n), std::to_string(c.t), rlb::util::fmt(c.rho, 2),
         std::to_string(cell.block_size), rlb::util::fmt(cell.generic, 6),
         rlb::util::fmt(cell.improved, 6),
         rlb::util::fmt(std::abs(cell.generic - cell.improved) /
                            cell.generic,
                        12),
         rlb::util::fmt(cell.sp, 6),
         rlb::util::fmt(std::pow(c.rho, c.n), 6),
         rlb::util::fmt(cell.t_generic, 4),
         rlb::util::fmt(cell.t_improved, 4),
         rlb::util::fmt(cell.t_generic / std::max(cell.t_improved, 1e-9),
                        1)});
  }
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "ablation_improved_lower",
    "E9: improved lower bound (Thm 3) vs generic matrix-geometric solve — "
    "agreement, sp(R) = rho^N, speedup",
    {},
    run}};

}  // namespace
