// Experiment E9 — Theorems 2-3 ablation: the improved lower bound (scalar
// rate sigma^N = rho^N) against the generic matrix-geometric solve.
// Verifies the agreement numerically, reports the speedup from skipping the
// G/R iteration, and checks sp(R) = rho^N.
#include <chrono>
#include <cmath>
#include <iostream>

#include "linalg/eigen.h"
#include "qbd/logred.h"
#include "sqd/blocks_builder.h"
#include "sqd/bound_solver.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const std::string csv = cli.get("csv", "");
  cli.finish();

  using clock = std::chrono::steady_clock;
  using rlb::sqd::BoundKind;
  using rlb::sqd::BoundModel;
  using rlb::sqd::Params;

  std::cout << "E9: improved lower bound (Theorem 3) vs generic solve "
               "(Theorem 1).\n";
  rlb::util::Table table({"N", "T", "rho", "block", "generic", "improved",
                          "agree_rel", "sp(R)", "rho^N", "t_generic(s)",
                          "t_improved(s)", "speedup"});

  struct Config {
    int n, t;
    double rho;
  };
  const std::vector<Config> configs{
      {3, 2, 0.70}, {3, 3, 0.90}, {6, 3, 0.70}, {6, 3, 0.90},
      {12, 3, 0.70}, {12, 3, 0.90}, {6, 4, 0.95},
  };

  for (const auto& c : configs) {
    const BoundModel model(Params{c.n, 2, c.rho, 1.0}, c.t, BoundKind::Lower);
    const auto q = rlb::sqd::build_bound_qbd(model);

    auto start = clock::now();
    const auto generic = rlb::sqd::solve_bound(model, q);
    const double t_generic =
        std::chrono::duration<double>(clock::now() - start).count();

    start = clock::now();
    const auto improved = rlb::sqd::solve_lower_improved(model, q, c.rho);
    const double t_improved =
        std::chrono::duration<double>(clock::now() - start).count();

    const auto g = rlb::qbd::logarithmic_reduction(q.blocks.A0, q.blocks.A1,
                                                   q.blocks.A2);
    const auto r =
        rlb::qbd::rate_matrix_from_g(q.blocks.A0, q.blocks.A1, g.G);
    const double sp = rlb::linalg::power_iteration(r).value;

    table.add_row(
        {std::to_string(c.n), std::to_string(c.t), rlb::util::fmt(c.rho, 2),
         std::to_string(generic.block_size),
         rlb::util::fmt(generic.mean_delay, 6),
         rlb::util::fmt(improved.mean_delay, 6),
         rlb::util::fmt(std::abs(generic.mean_delay - improved.mean_delay) /
                            generic.mean_delay,
                        12),
         rlb::util::fmt(sp, 6), rlb::util::fmt(std::pow(c.rho, c.n), 6),
         rlb::util::fmt(t_generic, 4), rlb::util::fmt(t_improved, 4),
         rlb::util::fmt(t_generic / std::max(t_improved, 1e-9), 1)});
  }
  table.print(std::cout);
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
