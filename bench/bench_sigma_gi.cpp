// Scenario "sigma_gi" — Experiment E11, Theorem 2 extension: the geometric
// decay parameter sigma for general renewal arrivals (the paper proves
// pi_{q+1} = sigma^N pi_q for the lower bound model; Theorem 3 specializes
// sigma = rho for Poisson). Computes sigma across interarrival families
// and utilizations, cross-checks the GI/M/1-style ordering by simulating
// GI/M SQ(2) clusters with the DES, and verifies the geometric tail on the
// lower bound model itself. The seven simulations are sweep cells; the
// sigma rootfinds are cheap and run inline.
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "sim/gi_bound_sim.h"
#include "sqd/bound_model.h"
#include "sqd/interarrival.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using namespace rlb::sqd;

// scv = 4 hyperexponential fit used throughout.
const double kP1 = 0.5 * (1.0 + std::sqrt(3.0 / 5.0));

ScenarioOutput run(ScenarioContext& ctx) {
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 400'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 4242));

  ScenarioOutput out;
  out.preamble =
      "E11 (Theorem 2): sigma = root of x = sum_k x^k beta_k for renewal "
      "arrivals.\nsigma orders by burstiness: deterministic < erlang < "
      "poisson < hyperexp.";

  auto& sigma_table = out.add_table(
      "sigma", {"rho", "deterministic", "erlang(4)", "poisson",
                "hyperexp(scv=4)"});
  for (double rho : {0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    // All with mean interarrival 1/rho (per-server utilization rho, mu=1).
    const DeterministicInterarrival det(1.0 / rho);
    const ErlangInterarrival erl(4, 4.0 * rho);
    const ExponentialInterarrival poi(rho);
    const HyperExpInterarrival hyp(kP1, 2.0 * kP1 * rho,
                                   2.0 * (1.0 - kP1) * rho);
    sigma_table.add_row_numeric(
        {rho, solve_sigma(det, 1.0).sigma, solve_sigma(erl, 1.0).sigma,
         solve_sigma(poi, 1.0).sigma, solve_sigma(hyp, 1.0).sigma},
        6);
  }

  // Simulation cross-check: delay of GI/M SQ(2) clusters orders the same
  // way as sigma. Cells 0-3 are the DES runs; cells 4-6 simulate the lower
  // bound model itself for the Theorem 2 tail check.
  const int n = 6;
  const double rho = 0.9;
  const double mean_ia = 1.0 / (rho * n);  // cluster-level stream

  const int n2 = 2;
  const double rho2 = 0.85;
  const double cluster2 = rho2 * n2;

  const auto des_sampler =
      [&](std::size_t task) -> std::unique_ptr<rlb::sim::Distribution> {
    switch (task) {
      case 0:
        return rlb::sim::make_deterministic(mean_ia);
      case 1:
        return rlb::sim::make_erlang(4, 4.0 / mean_ia);
      case 2:
        return rlb::sim::make_exponential(1.0 / mean_ia);
      default:
        return rlb::sim::make_hyperexp_fitted(mean_ia, 4.0);
    }
  };
  const auto tail_sampler =
      [&](std::size_t task) -> std::unique_ptr<rlb::sim::Distribution> {
    switch (task) {
      case 0:
        return rlb::sim::make_erlang(3, 3.0 * cluster2);
      case 1:
        return rlb::sim::make_exponential(cluster2);
      default:
        return rlb::sim::make_deterministic(1.0 / cluster2);
    }
  };

  // All DES cells share one seed and all tail cells share another, so the
  // arrival families are compared under common random numbers (as the
  // original bench did with its fixed seeds).
  struct Cell {
    double value = 0.0;
    rlb::sim::AdaptiveReport report;
  };
  const bool adaptive = ctx.adaptive().enabled();
  const auto cells = ctx.map<Cell>(7, [&](std::size_t i) {
    if (i < 4) {
      rlb::sim::ClusterConfig cfg;
      cfg.servers = n;
      cfg.jobs = jobs;
      cfg.warmup = jobs / 10;
      cfg.seed = rlb::engine::cell_seed(seed, 0);
      cfg.replicas = ctx.replicas();
      rlb::sim::SqdPolicy policy(n, 2);
      const auto arr = des_sampler(i);
      const auto svc = rlb::sim::make_exponential(1.0);
      if (adaptive) {
        const auto res = rlb::sim::simulate_cluster_adaptive(
            cfg, policy, *arr, *svc, ctx.adaptive_plan(cfg.seed, jobs),
            ctx.budget());
        return Cell{res.mean_sojourn, res.adaptive};
      }
      return Cell{rlb::sim::simulate_cluster(cfg, policy, *arr, *svc,
                                             ctx.budget())
                      .mean_sojourn,
                  {}};
    }
    const rlb::sqd::BoundModel lower(rlb::sqd::Params{n2, 2, rho2, 1.0}, 2,
                                     rlb::sqd::BoundKind::Lower);
    const auto sampler = tail_sampler(i - 4);
    const std::uint64_t cell = rlb::engine::cell_seed(seed, 1);
    if (adaptive) {
      // The stopping target is the waiting-jobs CI (the level ratio has
      // no interval of its own); the tail estimate rides along.
      const auto res = rlb::sim::simulate_gi_lower_bound_adaptive(
          lower, *sampler, ctx.adaptive_plan(cell, 4 * jobs), ctx.budget());
      return Cell{res.level_tail_ratio, res.adaptive};
    }
    return Cell{rlb::sim::simulate_gi_lower_bound(lower, *sampler, 4 * jobs,
                                                  jobs / 2, cell,
                                                  ctx.replicas(),
                                                  ctx.budget())
                    .level_tail_ratio,
                {}};
  });

  std::vector<std::string> des_header{"arrivals", "sigma", "sim mean delay"};
  if (adaptive) rlb::engine::add_adaptive_columns(des_header);
  auto& sim_table = out.add_table("des_crosscheck", des_header);
  const std::vector<std::pair<std::string, double>> des_entries{
      {"deterministic",
       solve_sigma(DeterministicInterarrival(1.0 / rho), 1.0).sigma},
      {"erlang(4)", solve_sigma(ErlangInterarrival(4, 4.0 * rho), 1.0).sigma},
      {"poisson", solve_sigma(ExponentialInterarrival(rho), 1.0).sigma},
      {"hyperexp(scv=4)",
       solve_sigma(HyperExpInterarrival(kP1, 2.0 * kP1 * rho,
                                        2.0 * (1.0 - kP1) * rho),
                   1.0)
           .sigma}};
  for (std::size_t i = 0; i < des_entries.size(); ++i) {
    std::vector<std::string> row{des_entries[i].first,
                                 rlb::util::fmt(des_entries[i].second, 5),
                                 rlb::util::fmt(cells[i].value, 4)};
    if (adaptive) rlb::engine::add_adaptive_cells(row, cells[i].report);
    sim_table.add_row(std::move(row));
  }
  out.note("DES cross-check: GI/M SQ(2), N = " + std::to_string(n) +
           ", rho = " + rlb::util::fmt(rho, 2) +
           (adaptive ? " (adaptive --target-ci run lengths)"
                     : ", " + std::to_string(jobs) + " jobs"));

  // Direct verification of Theorem 2's geometric tail: simulate the LOWER
  // BOUND MODEL itself under each arrival family and compare the measured
  // level-mass ratio with sigma^N.
  std::vector<std::string> tail_header{"arrivals", "sigma^N (Thm 2)",
                                       "measured level ratio"};
  if (adaptive) rlb::engine::add_adaptive_columns(tail_header);
  auto& tail_table = out.add_table("thm2_tail", tail_header);
  const std::vector<std::pair<std::string, double>> tail_entries{
      {"erlang(3)",
       solve_sigma(ErlangInterarrival(3, 3.0 * cluster2), n2).sigma},
      {"poisson", solve_sigma(ExponentialInterarrival(cluster2), n2).sigma},
      {"deterministic",
       solve_sigma(DeterministicInterarrival(1.0 / cluster2), n2).sigma}};
  for (std::size_t i = 0; i < tail_entries.size(); ++i) {
    std::vector<std::string> row{
        tail_entries[i].first,
        rlb::util::fmt(std::pow(tail_entries[i].second, n2), 5),
        rlb::util::fmt(cells[4 + i].value, 5)};
    if (adaptive) rlb::engine::add_adaptive_cells(row, cells[4 + i].report);
    tail_table.add_row(std::move(row));
  }
  out.note("Theorem 2 tail check: lower bound model, N = 2, T = 2, rho = "
           "0.85");
  if (adaptive)
    out.note(rlb::engine::adaptive_note() +
             "\nTargets: DES rows stop on the mean-sojourn CI; tail rows "
             "stop on the\nwaiting-jobs CI (the level ratio itself carries "
             "no interval).");

  out.postamble =
      "Note: sigma solves x = LST(N mu (1-x)) for the cluster stream "
      "(per-job decay);\nlevels span N jobs, so the predicted level-mass "
      "ratio is sigma^N.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "sigma_gi",
    "E11 (Thm 2): geometric decay sigma for renewal arrivals, with DES and "
    "lower-bound-model cross-checks",
    {{"jobs", "simulated jobs per DES cell", "400000"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "4242"}},
    run}};

}  // namespace
