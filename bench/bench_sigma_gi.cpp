// Experiment E11 — Theorem 2 extension: the geometric decay parameter
// sigma for general renewal arrivals (the paper proves pi_{q+1} =
// sigma^N pi_q for the lower bound model; Theorem 3 specializes sigma = rho
// for Poisson). This bench computes sigma across interarrival families and
// utilizations and cross-checks the GI/M/1-style ordering by simulating
// GI/M SQ(2) clusters with the DES.
#include <cmath>
#include <iostream>
#include <memory>

#include "sim/cluster_sim.h"
#include "sim/gi_bound_sim.h"
#include "sqd/bound_model.h"
#include "sqd/interarrival.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const std::uint64_t jobs =
      static_cast<std::uint64_t>(cli.get_int("jobs", 400'000));
  const std::string csv = cli.get("csv", "");
  cli.finish();

  using namespace rlb::sqd;

  std::cout << "E11 (Theorem 2): sigma = root of x = sum_k x^k beta_k for "
               "renewal arrivals.\nsigma orders by burstiness: "
               "deterministic < erlang < poisson < hyperexp.\n";
  rlb::util::Table table({"rho", "deterministic", "erlang(4)", "poisson",
                          "hyperexp(scv=4)"});
  for (double rho : {0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    // All with mean interarrival 1/rho (per-server utilization rho, mu=1).
    const DeterministicInterarrival det(1.0 / rho);
    const ErlangInterarrival erl(4, 4.0 * rho);
    const ExponentialInterarrival poi(rho);
    const double p1 = 0.5 * (1.0 + std::sqrt(3.0 / 5.0));  // scv = 4
    const HyperExpInterarrival hyp(p1, 2.0 * p1 * rho,
                                   2.0 * (1.0 - p1) * rho);
    table.add_row_numeric({rho, solve_sigma(det, 1.0).sigma,
                           solve_sigma(erl, 1.0).sigma,
                           solve_sigma(poi, 1.0).sigma,
                           solve_sigma(hyp, 1.0).sigma},
                          6);
  }
  table.print(std::cout);
  if (!csv.empty()) table.write_csv(csv);

  // Simulation cross-check: delay of GI/M SQ(2) clusters orders the same
  // way as sigma.
  std::cout << "\nDES cross-check: GI/M SQ(2), N = 6, rho = 0.9, " << jobs
            << " jobs\n";
  using namespace rlb::sim;
  const int n = 6;
  const double rho = 0.9;
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = 4242;
  const auto svc = make_exponential(1.0);
  rlb::util::Table sim_table({"arrivals", "sigma", "sim mean delay"});
  struct Entry {
    std::string name;
    std::unique_ptr<Distribution> dist;
    double sigma;
  };
  const double mean_ia = 1.0 / (rho * n);  // cluster-level stream
  std::vector<Entry> entries;
  entries.push_back({"deterministic", make_deterministic(mean_ia),
                     solve_sigma(DeterministicInterarrival(1.0 / rho), 1.0)
                         .sigma});
  entries.push_back({"erlang(4)", make_erlang(4, 4.0 / mean_ia),
                     solve_sigma(ErlangInterarrival(4, 4.0 * rho), 1.0)
                         .sigma});
  entries.push_back({"poisson", make_exponential(1.0 / mean_ia),
                     solve_sigma(ExponentialInterarrival(rho), 1.0).sigma});
  entries.push_back(
      {"hyperexp(scv=4)", make_hyperexp_fitted(mean_ia, 4.0),
       [&] {
         const double p1 = 0.5 * (1.0 + std::sqrt(3.0 / 5.0));
         return solve_sigma(HyperExpInterarrival(p1, 2.0 * p1 * rho,
                                                 2.0 * (1.0 - p1) * rho),
                            1.0)
             .sigma;
       }()});
  for (auto& e : entries) {
    SqdPolicy policy(n, 2);
    const auto r = simulate_cluster(cfg, policy, *e.dist, *svc);
    sim_table.add_row({e.name, rlb::util::fmt(e.sigma, 5),
                       rlb::util::fmt(r.mean_sojourn, 4)});
  }
  sim_table.print(std::cout);

  // Direct verification of Theorem 2's geometric tail: simulate the LOWER
  // BOUND MODEL itself under each arrival family and compare the measured
  // level-mass ratio with sigma^N.
  std::cout << "\nTheorem 2 tail check: lower bound model, N = 2, T = 2, "
               "rho = 0.85\n";
  const int n2 = 2;
  const double rho2 = 0.85;
  const rlb::sqd::BoundModel lower(rlb::sqd::Params{n2, 2, rho2, 1.0}, 2,
                                   rlb::sqd::BoundKind::Lower);
  rlb::util::Table tail_table(
      {"arrivals", "sigma^N (Thm 2)", "measured level ratio"});
  struct TailEntry {
    std::string name;
    std::unique_ptr<Distribution> sampler;
    double sigma;
  };
  std::vector<TailEntry> tail_entries;
  tail_entries.push_back(
      {"erlang(3)", make_erlang(3, 3.0 * rho2 * n2),
       solve_sigma(ErlangInterarrival(3, 3.0 * rho2 * n2), n2).sigma});
  tail_entries.push_back(
      {"poisson", make_exponential(rho2 * n2),
       solve_sigma(ExponentialInterarrival(rho2 * n2), n2).sigma});
  tail_entries.push_back(
      {"deterministic", make_deterministic(1.0 / (rho2 * n2)),
       solve_sigma(DeterministicInterarrival(1.0 / (rho2 * n2)), n2).sigma});
  for (auto& e : tail_entries) {
    const auto r = rlb::sim::simulate_gi_lower_bound(
        lower, *e.sampler, 4 * jobs, jobs / 2, 13579);
    tail_table.add_row({e.name, rlb::util::fmt(std::pow(e.sigma, n2), 5),
                        rlb::util::fmt(r.level_tail_ratio, 5)});
  }
  tail_table.print(std::cout);
  std::cout << "\nNote: sigma solves x = LST(N mu (1-x)) for the cluster "
               "stream (per-job decay);\nlevels span N jobs, so the "
               "predicted level-mass ratio is sigma^N.\n";
  return 0;
}
