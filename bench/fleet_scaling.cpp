// Scenario "fleet_scaling" — the compressed-state engine at fleet scale:
// sweep the server count N geometrically (default 10^3 .. 10^6) at fixed
// load rho and measure the paper's policies through the compact
// histogram engine (sim/compact_cluster.h). The point of the table is
// the COST column: with --time=1 each cell reports wall-clock ns per
// job, which stays ~flat in N for sq(d), jiq and histogram-jsq because
// every per-event operation on the compact engine is O(1). The legacy
// per-server engine pays O(N) per idle-server arrival, which is exactly
// what locks it out of the million-server regime.
//
// A second table cross-checks the two engines at small N: the same
// seeds through engine=legacy and engine=compact must agree BIT-FOR-BIT
// (the equivalence contract; tests/test_compact_cluster.cpp pins it per
// policy, this table demonstrates it end to end).
//
// Timing note: the ns/job column (--time=1) measures wall-clock and is
// therefore NOT deterministic and NOT thread-invariant; use
// --threads=1 --time=1 for stable measurements (docs/FLEET_SCALING.md
// commits such a run). The default --time=0 output is fully
// deterministic like every other scenario.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "util/require.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

constexpr std::size_t kPolicies = 3;  // sq(d), jiq, jsq-h

std::unique_ptr<rlb::sim::Policy> make_policy(std::size_t task, int n, int d) {
  using namespace rlb::sim;
  switch (task) {
    case 0:
      return std::make_unique<SqdPolicy>(n, d);
    case 1:
      return std::make_unique<JiqPolicy>(n);
    default:
      return std::make_unique<HistogramJsqPolicy>();
  }
}

ScenarioOutput run(ScenarioContext& ctx) {
  const int nmin = static_cast<int>(ctx.cli().get_int("nmin", 1'000));
  const int nmax = static_cast<int>(ctx.cli().get_int("nmax", 1'000'000));
  const int nstep = static_cast<int>(ctx.cli().get_int("nstep", 10));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const double rho = ctx.cli().get_double("rho", 0.90);
  const auto jobs_per_server =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs-per-server", 20));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 97'531));
  const bool time = ctx.cli().get_int("time", 0) != 0;
  const int time_reps = static_cast<int>(ctx.cli().get_int("time-reps", 3));
  const int cross_n = static_cast<int>(ctx.cli().get_int("crosscheck-n", 256));
  const auto cross_jobs = static_cast<std::uint64_t>(
      ctx.cli().get_int("crosscheck-jobs", 100'000));

  RLB_REQUIRE(nmin >= 1 && nmax >= nmin, "need 1 <= nmin <= nmax");
  RLB_REQUIRE(nstep >= 2, "nstep is a multiplier; need nstep >= 2");
  RLB_REQUIRE(rho > 0.0 && rho < 1.0, "need 0 < rho < 1");
  RLB_REQUIRE(time_reps >= 1, "need time-reps >= 1");

  using namespace rlb::sim;
  std::vector<int> fleet_sizes;
  for (std::int64_t n = nmin; n <= nmax;
       n *= nstep)  // geometric sweep; int64 so nmax * nstep cannot wrap
    fleet_sizes.push_back(static_cast<int>(n));

  // Cell values: [0] delay, [1] ns/job (0 unless --time=1).
  const auto compute_cell = [&](std::size_t i,
                                const rlb::engine::CellRecord*) {
    const std::size_t r = i / kPolicies;
    const int n = fleet_sizes[r];
    ClusterConfig cfg;
    cfg.servers = n;
    cfg.jobs = jobs_per_server * static_cast<std::uint64_t>(n);
    cfg.warmup = cfg.jobs / 10;
    // One seed per fleet size: policy columns share random streams.
    cfg.seed = rlb::engine::cell_seed(seed, r);
    cfg.replicas = ctx.replicas();
    const auto arr = make_exponential(rho * n);
    const auto svc = make_exponential(1.0);
    const auto policy = make_policy(i % kPolicies, n, d);
    // With --time=1 each cell reruns the identical simulation
    // `time-reps` times and reports the MINIMUM ns/job — the
    // standard benchmarking estimator for the noise-free cost
    // (interference only ever adds time). The reruns are
    // deterministic repeats, so the delay column is unaffected.
    const int reps = time ? time_reps : 1;
    ClusterResult res;
    double ns = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      res = simulate_cluster(cfg, *policy, *arr, *svc, ctx.budget());
      const auto t1 = std::chrono::steady_clock::now();
      const double rep_ns =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          static_cast<double>(cfg.jobs);
      if (rep == 0 || rep_ns < ns) ns = rep_ns;
    }
    rlb::engine::CellRecord rec;
    rec.values = {res.mean_sojourn, ns};
    return rec;
  };
  // The ns/job column is measured wall-clock — not reproducible — so
  // --time=1 bypasses the result cache entirely (a cached timing would
  // silently report another machine's clock).
  const auto cells =
      time ? ctx.map<rlb::engine::CellRecord>(
                 fleet_sizes.size() * kPolicies,
                 [&](std::size_t i) { return compute_cell(i, nullptr); })
           : ctx.map_cells(
                 fleet_sizes.size() * kPolicies,
                 [&](std::size_t i) {
                   const std::size_t r = i / kPolicies;
                   auto key = ctx.cell_key(
                       "fleet_scaling", rlb::engine::cell_seed(seed, r));
                   key.set("table", "scaling");
                   key.set("n", fleet_sizes[r]);
                   key.set("jobs-per-server", jobs_per_server);
                   key.set("rho", rho);
                   key.set("d", d);
                   key.set("task", static_cast<std::uint64_t>(i % kPolicies));
                   return key;
                 },
                 compute_cell);

  ScenarioOutput out;
  out.preamble =
      "Fleet-size scaling on the compact histogram engine, rho = " +
      rlb::util::fmt(rho, 2) + ", Poisson arrivals, Exp(1) service, " +
      std::to_string(jobs_per_server) +
      " jobs per server per cell.\nPolicies: sq(" + std::to_string(d) +
      "), jiq (random fallback), jsq-h (histogram JSQ, O(1) dispatch).";

  std::vector<std::string> header{"n", "jobs"};
  const std::vector<std::string> policy_names{
      "sq(" + std::to_string(d) + ")", "jiq", "jsq-h"};
  for (const auto& p : policy_names) header.push_back(p);
  if (time)
    for (const auto& p : policy_names) header.push_back(p + " ns/job");
  auto& scaling = out.add_table("scaling", header);
  for (std::size_t r = 0; r < fleet_sizes.size(); ++r) {
    std::vector<std::string> row{
        std::to_string(fleet_sizes[r]),
        std::to_string(jobs_per_server *
                       static_cast<std::uint64_t>(fleet_sizes[r]))};
    for (std::size_t t = 0; t < kPolicies; ++t)
      row.push_back(rlb::util::fmt(cells[r * kPolicies + t].values[0], 4));
    if (time)
      for (std::size_t t = 0; t < kPolicies; ++t)
        row.push_back(
            rlb::util::fmt(cells[r * kPolicies + t].values[1], 1));
    scaling.add_row(std::move(row));
  }
  out.note(time ? "Mean sojourn time per policy, then wall-clock ns per job "
                  "(flat in n on the compact engine; non-deterministic, "
                  "use --threads=1)."
                : "Mean sojourn time per policy; pass --time=1 for "
                  "wall-clock ns/job columns.");

  // Engine cross-check at small N: legacy and compact must agree exactly
  // for every policy that carries the bit-identity contract. (jsq-h is
  // excluded on purpose: it is statistically equivalent to jsq but
  // consumes a different random stream, so its sample paths differ.)
  const auto make_check_policy = [&](std::size_t t) -> std::unique_ptr<Policy> {
    switch (t) {
      case 0:
        return std::make_unique<SqdPolicy>(cross_n, d);
      case 1:
        return std::make_unique<JiqPolicy>(cross_n);
      case 2:
        return std::make_unique<JsqPolicy>();
      default:
        return std::make_unique<JbtPolicy>(cross_n, d, 3);
    }
  };
  constexpr std::size_t kCheckPolicies = 4;
  // Check values: [0] legacy delay, [1] compact delay, [2] identical 0/1.
  // The policy NAME is reconstructed from the task index at row-assembly
  // time (policy construction is free), so the record stays numeric.
  const auto checks = ctx.map_cells(
      kCheckPolicies,
      [&](std::size_t t) {
        auto key = ctx.cell_key("fleet_scaling",
                                rlb::engine::cell_seed(seed, 1'000 + t));
        key.set("table", "crosscheck");
        key.set("n", cross_n);
        key.set("jobs", cross_jobs);
        key.set("rho", rho);
        key.set("d", d);
        key.set("task", static_cast<std::uint64_t>(t));
        return key;
      },
      [&](std::size_t t, const rlb::engine::CellRecord*) {
        ClusterConfig cfg;
        cfg.servers = cross_n;
        cfg.jobs = cross_jobs;
        cfg.warmup = cross_jobs / 10;
        cfg.seed = rlb::engine::cell_seed(seed, 1'000 + t);
        cfg.replicas = ctx.replicas();
        const auto arr = make_exponential(rho * cross_n);
        const auto svc = make_exponential(1.0);
        const auto policy = make_check_policy(t);
        cfg.engine = ClusterEngine::kLegacy;
        const auto legacy =
            simulate_cluster(cfg, *policy, *arr, *svc, ctx.budget());
        cfg.engine = ClusterEngine::kCompact;
        const auto compact =
            simulate_cluster(cfg, *policy, *arr, *svc, ctx.budget());
        const bool same = legacy.mean_sojourn == compact.mean_sojourn &&
                          legacy.mean_wait == compact.mean_wait &&
                          legacy.p99_sojourn == compact.p99_sojourn &&
                          legacy.utilization == compact.utilization &&
                          legacy.sim_time == compact.sim_time;
        rlb::engine::CellRecord rec;
        rec.values = {legacy.mean_sojourn, compact.mean_sojourn,
                      same ? 1.0 : 0.0};
        return rec;
      });
  auto& cross = out.add_table(
      "crosscheck", {"policy", "legacy delay", "compact delay", "identical"});
  for (std::size_t t = 0; t < kCheckPolicies; ++t)
    cross.add_row({make_check_policy(t)->name(),
                   rlb::util::fmt(checks[t].values[0], 6),
                   rlb::util::fmt(checks[t].values[1], 6),
                   checks[t].values[2] != 0.0 ? "yes" : "no"});
  out.note("Same seeds through engine=legacy and engine=compact at n = " +
           std::to_string(cross_n) +
           "; every column must match bit-for-bit.");

  out.postamble =
      "Reading: delay per policy is flat in n (mean-field regime: the "
      "fleet's behavior\nconverges as n grows), and with --time=1 the "
      "ns/job columns stay ~flat too — the\ncompact engine's per-event "
      "cost does not grow with the fleet.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "fleet_scaling",
    "Compact-engine fleet sweep to n = 10^6: delay and per-job cost vs "
    "fleet size, plus a legacy-vs-compact bit-identity cross-check",
    {{"nmin", "smallest fleet size", "1000"},
     {"nmax", "largest fleet size", "1000000"},
     {"nstep", "fleet-size multiplier between rows", "10"},
     {"d", "polled servers for sq(d)", "2"},
     {"rho", "offered load per server", "0.90"},
     {"jobs-per-server", "simulated jobs per server per cell", "20"},
     {"seed", "base RNG seed; per-row seeds are derived from it", "97531"},
     {"time", "1: add wall-clock ns/job columns (non-deterministic)", "0"},
     {"time-reps",
      "repetitions per cell for --time=1; reports the min ns/job", "3"},
     {"crosscheck-n", "fleet size for the engine cross-check", "256"},
     {"crosscheck-jobs", "jobs for the engine cross-check", "100000"}},
    run}};

}  // namespace
