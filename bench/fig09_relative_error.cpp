// Experiment E1/E2 — Figure 9(a,b): relative error (%) of the asymptotic
// delay formula (Eq. 16) against simulation, as a function of the number of
// servers N, for d in {2, 5, 10, 25, 50} and rho in {0.75, 0.95}.
//
// The paper simulates 1e8 jobs with 1e7 warmup; defaults here are scaled
// down so the whole bench suite runs in minutes. Pass --full for paper
// scale, or --jobs / --rho / --csv to customize.
#include <iostream>
#include <vector>

#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

void run_panel(double rho, std::uint64_t jobs, const std::string& csv) {
  const std::vector<int> choices{2, 5, 10, 25, 50};
  const std::vector<int> servers{5, 10, 25, 50, 75, 100, 150, 200, 250};

  std::cout << "\nFigure 9 (" << (rho == 0.75 ? "a" : "b")
            << "): relative error (%) of asymptotic vs simulation, rho = "
            << rho << ", jobs = " << jobs << "\n";
  std::vector<std::string> header{"N"};
  for (int d : choices) header.push_back("d=" + std::to_string(d));
  rlb::util::Table table(header);

  for (int n : servers) {
    std::vector<std::string> row{std::to_string(n)};
    for (int d : choices) {
      if (d > n) {
        row.push_back("-");
        continue;
      }
      rlb::sim::FastSqdConfig cfg;
      cfg.params = {n, d, rho, 1.0};
      cfg.jobs = jobs;
      cfg.warmup = jobs / 10;
      cfg.seed = 42 + n * 100 + d;
      const auto sim = rlb::sim::simulate_sqd_fast(cfg);
      const double asym = rlb::sqd::asymptotic_delay(rho, d);
      const double rel_err =
          100.0 * std::abs(asym - sim.mean_delay) / sim.mean_delay;
      row.push_back(rlb::util::fmt(rel_err, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  if (!csv.empty())
    table.write_csv(csv + ".rho" + rlb::util::fmt(rho, 2) + ".csv");
}

}  // namespace

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const std::uint64_t jobs = static_cast<std::uint64_t>(
      cli.get_int("jobs", full ? 100'000'000 : 4'000'000));
  const std::string csv = cli.get("csv", "");
  const double only_rho = cli.get_double("rho", 0.0);
  cli.finish();

  std::cout << "E1/E2 (Figure 9): accuracy of the N->infinity approximation "
               "in finite regimes.\n"
            << "Expected shape: errors grow as N shrinks, far larger at "
               "rho=0.95 than rho=0.75,\nand not monotone in d at moderate "
               "load.\n";
  if (only_rho > 0.0) {
    run_panel(only_rho, jobs, csv);
  } else {
    run_panel(0.75, jobs, csv);
    run_panel(0.95, jobs, csv);
  }

  // The headline motivation: small-N panel where the approximation is
  // misleading (text of Section V).
  std::cout << "\nSmall-N detail (d = 2): asymptotic vs simulated delay\n";
  rlb::util::Table detail({"rho", "N", "simulated", "asymptotic",
                           "rel.err(%)"});
  for (double rho : {0.75, 0.95}) {
    for (int n : {3, 6, 12, 25, 50}) {
      rlb::sim::FastSqdConfig cfg;
      cfg.params = {n, 2, rho, 1.0};
      cfg.jobs = jobs;
      cfg.warmup = jobs / 10;
      cfg.seed = 1000 + n;
      const auto sim = rlb::sim::simulate_sqd_fast(cfg);
      const double asym = rlb::sqd::asymptotic_delay(rho, 2);
      detail.add_row({rlb::util::fmt(rho, 2), std::to_string(n),
                      rlb::util::fmt(sim.mean_delay, 4),
                      rlb::util::fmt(asym, 4),
                      rlb::util::fmt(100.0 * std::abs(asym - sim.mean_delay) /
                                         sim.mean_delay,
                                     2)});
    }
  }
  detail.print(std::cout);
  return 0;
}
