// Scenario "fig09_relative_error" — Experiments E1/E2, Figure 9(a,b):
// relative error (%) of the asymptotic delay formula (Eq. 16) against
// simulation, as a function of the number of servers N, for d in
// {2, 5, 10, 25, 50} and rho in {0.75, 0.95}, plus the small-N detail
// panel from the §V text. Every (rho, N, d) simulation is one sweep cell.
//
// The paper simulates 1e8 jobs with 1e7 warmup; defaults here are scaled
// down so the whole suite runs in minutes. Pass --full for paper scale.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

struct Cell {
  double rho = 0.0;
  int n = 0;
  int d = 0;
};

// Seed from the cell's (rho, N, d) coordinates — not its position in the
// (possibly --rho-filtered) cell list — so a filtered run reproduces the
// same numbers as the full sweep.
std::uint64_t seed_for(std::uint64_t base, const Cell& c) {
  const auto rho_key =
      static_cast<std::uint64_t>(std::llround(c.rho * 10000));
  return rlb::engine::cell_seed(
      rlb::engine::cell_seed(base, rho_key),
      (static_cast<std::uint64_t>(c.n) << 8) |
          static_cast<std::uint64_t>(c.d));
}

/// One simulation cell's result; the report stays default in fixed mode.
struct CellResult {
  double delay = 0.0;
  rlb::sim::AdaptiveReport report;
};

// Each cell's job budget shards into ctx.replicas() parallel chains with
// merged batch-means (sim/replica.h); replica workers share the sweep's
// thread budget, so the lone huge-N cell at the tail of the sweep soaks
// up the slots its finished neighbours released.
CellResult simulate_cell(const ScenarioContext& ctx, const Cell& c,
                         std::uint64_t jobs, std::uint64_t seed) {
  rlb::sim::FastSqdConfig cfg;
  cfg.params = {c.n, c.d, c.rho, 1.0};
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = seed;
  cfg.replicas = ctx.replicas();
  if (ctx.adaptive().enabled()) {
    const auto res = rlb::sim::simulate_sqd_fast_adaptive(
        cfg, ctx.adaptive_plan(cfg.seed, jobs), ctx.budget());
    return CellResult{res.mean_delay, res.adaptive};
  }
  return CellResult{rlb::sim::simulate_sqd_fast(cfg, ctx.budget()).mean_delay,
                    {}};
}

ScenarioOutput run(ScenarioContext& ctx) {
  const bool full = ctx.cli().get_bool("full");
  const auto jobs = static_cast<std::uint64_t>(
      ctx.cli().get_int("jobs", full ? 100'000'000 : 4'000'000));
  const auto seed = static_cast<std::uint64_t>(ctx.cli().get_int("seed", 42));
  const double only_rho = ctx.cli().get_double("rho", 0.0);

  const std::vector<int> choices{2, 5, 10, 25, 50};
  const std::vector<int> servers{5, 10, 25, 50, 75, 100, 150, 200, 250};
  std::vector<double> rhos{0.75, 0.95};
  if (only_rho > 0.0) rhos = {only_rho};

  // Flatten the panels plus the small-N detail into one deterministic cell
  // list, then fan the simulations across the worker threads.
  std::vector<Cell> cells;
  for (double rho : rhos)
    for (int n : servers)
      for (int d : choices)
        if (d <= n) cells.push_back({rho, n, d});
  const std::size_t detail_start = cells.size();
  for (double rho : {0.75, 0.95})
    for (int n : {3, 6, 12, 25, 50}) cells.push_back({rho, n, 2});

  const bool adaptive = ctx.adaptive().enabled();
  const auto delays = ctx.map<CellResult>(cells.size(), [&](std::size_t i) {
    return simulate_cell(ctx, cells[i], jobs, seed_for(seed, cells[i]));
  });

  ScenarioOutput out;
  out.preamble =
      "E1/E2 (Figure 9): accuracy of the N->infinity approximation in "
      "finite regimes.\nExpected shape: errors grow as N shrinks, far "
      "larger at rho=0.95 than rho=0.75,\nand not monotone in d at "
      "moderate load.";

  std::size_t next = 0;
  for (double rho : rhos) {
    std::vector<std::string> header{"N"};
    for (int d : choices) header.push_back("d=" + std::to_string(d));
    if (adaptive) rlb::engine::add_adaptive_columns(header);
    auto& table = out.add_table("rho" + rlb::util::fmt(rho, 2), header);
    for (int n : servers) {
      std::vector<std::string> row{std::to_string(n)};
      auto report = rlb::sim::AdaptiveReport::row_identity();
      for (int d : choices) {
        if (d > n) {
          row.push_back("-");
          continue;
        }
        const CellResult& cell = delays[next++];
        const double asym = rlb::sqd::asymptotic_delay(rho, d);
        report.combine(cell.report);
        row.push_back(
            rlb::util::fmt(100.0 * std::abs(asym - cell.delay) / cell.delay,
                           2));
      }
      if (adaptive) rlb::engine::add_adaptive_cells(row, report);
      table.add_row(std::move(row));
    }
    out.note("relative error (%) of asymptotic vs simulation, rho = " +
             rlb::util::fmt(rho, 2) +
             (adaptive ? " (adaptive --target-ci run lengths)"
                       : ", jobs = " + std::to_string(jobs)));
  }
  if (adaptive)
    out.note(rlb::engine::adaptive_note(
        "the row's simulated d values (half_width in delay units; the "
        "error\ncolumns are percentages)"));

  // The headline motivation: small-N panel where the approximation is
  // misleading (text of Section V).
  std::vector<std::string> detail_header{"rho", "N", "simulated",
                                         "asymptotic", "rel.err(%)"};
  if (adaptive) rlb::engine::add_adaptive_columns(detail_header);
  auto& detail = out.add_table("small_n", detail_header);
  next = detail_start;
  for (double rho : {0.75, 0.95}) {
    for (int n : {3, 6, 12, 25, 50}) {
      const CellResult& cell = delays[next++];
      const double asym = rlb::sqd::asymptotic_delay(rho, 2);
      std::vector<std::string> row{
          rlb::util::fmt(rho, 2), std::to_string(n),
          rlb::util::fmt(cell.delay, 4), rlb::util::fmt(asym, 4),
          rlb::util::fmt(100.0 * std::abs(asym - cell.delay) / cell.delay,
                         2)};
      if (adaptive) rlb::engine::add_adaptive_cells(row, cell.report);
      detail.add_row(std::move(row));
    }
  }
  out.note("small-N detail (d = 2): asymptotic vs simulated delay");
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "fig09_relative_error",
    "E1/E2 (Fig 9): relative error of the asymptotic delay formula vs "
    "simulation across N and d",
    {{"jobs", "simulated jobs per cell", "4000000"},
     {"full", "paper scale (1e8 jobs per cell)", "false"},
     {"rho", "restrict to a single utilization (0 = both panels)", "0"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "42"}},
    run}};

}  // namespace
