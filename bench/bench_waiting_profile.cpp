// Scenario "waiting_profile" — waiting-time percentiles from the analytic
// profile (Erlang mixture over the lower bound model's stationary law)
// against the DES's reservoir-sampled quantiles. Mean-delay bounds are the
// paper's product; operators usually care about p95/p99, and the same
// matrix-geometric solution delivers them in milliseconds. Each rho is one
// sweep cell (analytic profile + DES run).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "sqd/waiting_distribution.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

struct CellResult {
  double p_wait = 0.0;
  double model_p50 = 0.0, model_p95 = 0.0, model_p99 = 0.0;
  double sim_p50 = 0.0, sim_p95 = 0.0, sim_p99 = 0.0;
  rlb::sim::AdaptiveReport report;  ///< default in fixed mode
};

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 6));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const int t = static_cast<int>(ctx.cli().get_int("T", 3));
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 800'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 1618));

  const std::vector<double> rhos{0.5, 0.7, 0.8, 0.9};
  const auto cells = ctx.map<CellResult>(
      rhos.size(), [&](std::size_t i) {
        const Params p{n, d, rhos[i], 1.0};
        const rlb::sqd::WaitingProfile profile(
            BoundModel(p, t, BoundKind::Lower));

        rlb::sim::ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        cfg.seed = rlb::engine::cell_seed(seed, i);
        cfg.replicas = ctx.replicas();
        rlb::sim::SqdPolicy policy(n, d);
        const auto arr = rlb::sim::make_exponential(rhos[i] * n);
        const auto svc = rlb::sim::make_exponential(1.0);
        CellResult cell;
        rlb::sim::ClusterResult sim;
        if (ctx.adaptive().enabled()) {
          // Stopping target: the mean-sojourn CI; the quantile columns
          // ride along on whatever budget the mean needed.
          sim = rlb::sim::simulate_cluster_adaptive(
              cfg, policy, *arr, *svc, ctx.adaptive_plan(cfg.seed, jobs),
              ctx.budget());
          cell.report = sim.adaptive;
        } else {
          sim = rlb::sim::simulate_cluster(cfg, policy, *arr, *svc,
                                           ctx.budget());
        }

        cell.p_wait = profile.ccdf(0.0);
        cell.model_p50 = profile.quantile(0.50);
        cell.model_p95 = profile.quantile(0.95);
        cell.model_p99 = profile.quantile(0.99);
        // The DES reports sojourn quantiles; subtracting the unit mean
        // service gives a rough waiting comparison.
        cell.sim_p50 = std::max(0.0, sim.p50_sojourn - 1.0);
        cell.sim_p95 = std::max(0.0, sim.p95_sojourn - 1.0);
        cell.sim_p99 = std::max(0.0, sim.p99_sojourn - 1.0);
        return cell;
      });

  ScenarioOutput out;
  out.preamble =
      "Waiting-time percentiles: analytic profile (lower bound model) vs "
      "DES,\nSQ(" +
      std::to_string(d) + "), N = " + std::to_string(n) +
      ", T = " + std::to_string(t);
  const bool adaptive = ctx.adaptive().enabled();
  std::vector<std::string> header{"rho",       "P(W>0) model", "p50 model",
                                  "p50 sim",   "p95 model",    "p95 sim",
                                  "p99 model", "p99 sim"};
  if (adaptive) rlb::engine::add_adaptive_columns(header);
  auto& table = out.add_table("main", header);
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    const CellResult& c = cells[i];
    std::vector<std::string> row{
        rlb::util::fmt(rhos[i], 2),   rlb::util::fmt(c.p_wait, 4),
        rlb::util::fmt(c.model_p50, 3), rlb::util::fmt(c.sim_p50, 3),
        rlb::util::fmt(c.model_p95, 3), rlb::util::fmt(c.sim_p95, 3),
        rlb::util::fmt(c.model_p99, 3), rlb::util::fmt(c.sim_p99, 3)};
    if (adaptive) rlb::engine::add_adaptive_cells(row, c.report);
    table.add_row(std::move(row));
  }
  if (adaptive)
    out.note(rlb::engine::adaptive_note() +
             "\nTarget statistic: the mean sojourn time (half_width in "
             "sojourn units); the\nquantile columns ride along.");
  out.postamble =
      "Note: sim columns are sojourn quantiles minus the unit mean service "
      "time; the\nwait and sojourn distributions differ by an independent "
      "Exp(1), so treat the\ncomparison as directional. The model columns "
      "are exact percentiles of the\nsnapshot mixture (see "
      "src/sqd/waiting_distribution.h).";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "waiting_profile",
    "Waiting-time percentiles: analytic Erlang-mixture profile vs DES "
    "quantiles across rho",
    {{"n", "number of servers", "6"},
     {"d", "polled servers per arrival", "2"},
     {"T", "bound model threshold", "3"},
     {"jobs", "simulated jobs per cell", "800000"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "1618"}},
    run}};

}  // namespace
