// Extension bench — waiting-time percentiles from the analytic profile
// (Erlang mixture over the lower bound model's stationary law) against the
// DES's reservoir-sampled quantiles. Mean-delay bounds are the paper's
// product; operators usually care about p95/p99, and the same
// matrix-geometric solution delivers them in milliseconds.
#include <iostream>

#include "sim/cluster_sim.h"
#include "sqd/waiting_distribution.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 6));
  const int d = static_cast<int>(cli.get_int("d", 2));
  const int t = static_cast<int>(cli.get_int("T", 3));
  const std::uint64_t jobs =
      static_cast<std::uint64_t>(cli.get_int("jobs", 800'000));
  const std::string csv = cli.get("csv", "");
  cli.finish();

  using rlb::sqd::BoundKind;
  using rlb::sqd::BoundModel;
  using rlb::sqd::Params;

  std::cout << "Waiting-time percentiles: analytic profile (lower bound "
               "model) vs DES,\nSQ("
            << d << "), N = " << n << ", T = " << t << "\n";
  rlb::util::Table table({"rho", "P(W>0) model", "p50 model", "p50 sim",
                          "p95 model", "p95 sim", "p99 model", "p99 sim"});

  for (double rho : {0.5, 0.7, 0.8, 0.9}) {
    const Params p{n, d, rho, 1.0};
    const rlb::sqd::WaitingProfile profile(
        BoundModel(p, t, BoundKind::Lower));

    rlb::sim::ClusterConfig cfg;
    cfg.servers = n;
    cfg.jobs = jobs;
    cfg.warmup = jobs / 10;
    cfg.seed = 1618;
    rlb::sim::SqdPolicy policy(n, d);
    const auto arr = rlb::sim::make_exponential(rho * n);
    const auto svc = rlb::sim::make_exponential(1.0);
    const auto sim = rlb::sim::simulate_cluster(cfg, policy, *arr, *svc);

    // The DES reports sojourn quantiles; subtracting the unit mean service
    // gives a rough waiting comparison — report sojourn-minus-1 for sims.
    table.add_row({rlb::util::fmt(rho, 2),
                   rlb::util::fmt(profile.ccdf(0.0), 4),
                   rlb::util::fmt(profile.quantile(0.50), 3),
                   rlb::util::fmt(std::max(0.0, sim.p50_sojourn - 1.0), 3),
                   rlb::util::fmt(profile.quantile(0.95), 3),
                   rlb::util::fmt(std::max(0.0, sim.p95_sojourn - 1.0), 3),
                   rlb::util::fmt(profile.quantile(0.99), 3),
                   rlb::util::fmt(std::max(0.0, sim.p99_sojourn - 1.0), 3)});
  }
  table.print(std::cout);
  std::cout << "\nNote: sim columns are sojourn quantiles minus the unit "
               "mean service time; the\nwait and sojourn distributions "
               "differ by an independent Exp(1), so treat the\ncomparison "
               "as directional. The model columns are exact percentiles of "
               "the\nsnapshot mixture (see src/sqd/waiting_distribution.h).\n";
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
