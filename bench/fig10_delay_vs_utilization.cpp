// Experiments E3-E6 — Figure 10(a-d): average delay vs utilization for
// SQ(2) with (N, T) in {(3,2), (3,3), (6,3), (12,3)}. Four series per
// panel, exactly as in the paper: upper bound, simulation, lower bound,
// asymptotic result. "unstable" marks utilizations where the upper bound
// model's drift condition fails (the curve that shoots off in Fig 10(a)).
#include <iostream>
#include <vector>

#include "qbd/solver.h"
#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

void run_panel(char label, int n, int t, std::uint64_t jobs,
               const std::vector<double>& rhos, const std::string& csv) {
  std::cout << "\nFigure 10(" << label << "): SQ(2), N = " << n
            << ", T = " << t << " (block size C(N+T-1,T))\n";
  rlb::util::Table table(
      {"rho", "upper", "simulation", "lower", "asymptotic"});
  for (double rho : rhos) {
    const Params p{n, 2, rho, 1.0};

    std::string upper = "unstable";
    try {
      upper = rlb::util::fmt(
          rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper))
              .mean_delay,
          4);
    } catch (const rlb::qbd::UnstableError&) {
    }

    rlb::sim::FastSqdConfig cfg;
    cfg.params = p;
    cfg.jobs = jobs;
    cfg.warmup = jobs / 10;
    cfg.seed = 5000 + n * 10 + static_cast<int>(rho * 100);
    const double sim = rlb::sim::simulate_sqd_fast(cfg).mean_delay;

    const double lower =
        rlb::sqd::solve_lower_improved(BoundModel(p, t, BoundKind::Lower))
            .mean_delay;
    const double asym = rlb::sqd::asymptotic_delay(rho, 2);

    table.add_row({rlb::util::fmt(rho, 2), upper, rlb::util::fmt(sim, 4),
                   rlb::util::fmt(lower, 4), rlb::util::fmt(asym, 4)});
  }
  table.print(std::cout);
  if (!csv.empty())
    table.write_csv(csv + ".panel_" + std::string(1, label) + ".csv");
}

}  // namespace

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const std::uint64_t jobs = static_cast<std::uint64_t>(
      cli.get_int("jobs", full ? 100'000'000 : 2'000'000));
  const std::string csv = cli.get("csv", "");
  const std::string panel = cli.get("panel", "");
  cli.finish();

  std::cout
      << "E3-E6 (Figure 10): finite-regime bounds vs simulation vs "
         "asymptotics for SQ(2).\n"
      << "Expected shape: lower bound hugs the simulation everywhere; the "
         "T=2 upper bound\nis loose and goes unstable early; T=3 is much "
         "tighter; the asymptotic curve\nunderestimates at high rho, worst "
         "for small N.\n";

  std::vector<double> rhos;
  for (double r = 0.05; r < 0.96; r += 0.05) rhos.push_back(r);

  struct PanelDef {
    char label;
    int n, t;
  };
  const std::vector<PanelDef> panels{
      {'a', 3, 2}, {'b', 3, 3}, {'c', 6, 3}, {'d', 12, 3}};
  for (const auto& def : panels) {
    if (!panel.empty() && panel[0] != def.label) continue;
    run_panel(def.label, def.n, def.t, jobs, rhos, csv);
  }
  return 0;
}
