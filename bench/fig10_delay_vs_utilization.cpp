// Scenario "fig10_delay_vs_utilization" — Experiments E3-E6, Figure
// 10(a-d): average delay vs utilization for SQ(2) with (N, T) in
// {(3,2), (3,3), (6,3), (12,3)}. Four series per panel, exactly as in the
// paper: upper bound, simulation, lower bound, asymptotic result.
// "unstable" marks utilizations where the upper bound model's drift
// condition fails (the curve that shoots off in Fig 10(a)). Every
// (panel, rho) column triple is a sweep cell.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "qbd/solver.h"
#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

struct PanelDef {
  char label;
  int n, t;
};

struct CellResult {
  std::string upper = "unstable";
  double sim = 0.0;
  double lower = 0.0;
  rlb::sim::AdaptiveReport report;  ///< default in fixed mode
};

ScenarioOutput run(ScenarioContext& ctx) {
  const bool full = ctx.cli().get_bool("full");
  const auto jobs = static_cast<std::uint64_t>(
      ctx.cli().get_int("jobs", full ? 100'000'000 : 2'000'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 5000));
  const std::string only_panel = ctx.cli().get("panel", "");

  std::vector<double> rhos;
  for (double r = 0.05; r < 0.96; r += 0.05) rhos.push_back(r);

  const std::vector<PanelDef> all_panels{
      {'a', 3, 2}, {'b', 3, 3}, {'c', 6, 3}, {'d', 12, 3}};
  std::vector<PanelDef> panels;
  for (const auto& def : all_panels)
    if (only_panel.empty() || only_panel[0] == def.label)
      panels.push_back(def);

  const std::size_t per_panel = rhos.size();
  const auto cells = ctx.map<CellResult>(
      panels.size() * per_panel, [&](std::size_t i) {
        const PanelDef& def = panels[i / per_panel];
        const double rho = rhos[i % per_panel];
        const Params p{def.n, 2, rho, 1.0};

        CellResult cell;
        try {
          cell.upper = rlb::util::fmt(
              rlb::sqd::solve_bound(BoundModel(p, def.t, BoundKind::Upper))
                  .mean_delay,
              4);
        } catch (const rlb::qbd::UnstableError&) {
        }

        rlb::sim::FastSqdConfig cfg;
        cfg.params = p;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        // Seed from (N, rho) — not the position in the --panel-filtered
        // cell list — so a single-panel run reproduces the full sweep's
        // numbers (and panels sharing N, like a and b, share streams).
        cfg.seed = rlb::engine::cell_seed(
            rlb::engine::cell_seed(seed, static_cast<std::uint64_t>(def.n)),
            static_cast<std::uint64_t>(std::llround(rho * 10000)));
        cfg.replicas = ctx.replicas();
        if (ctx.adaptive().enabled()) {
          const auto res = rlb::sim::simulate_sqd_fast_adaptive(
              cfg, ctx.adaptive_plan(cfg.seed, jobs), ctx.budget());
          cell.sim = res.mean_delay;
          cell.report = res.adaptive;
        } else {
          cell.sim =
              rlb::sim::simulate_sqd_fast(cfg, ctx.budget()).mean_delay;
        }

        cell.lower = rlb::sqd::solve_lower_improved(
                         BoundModel(p, def.t, BoundKind::Lower))
                         .mean_delay;
        return cell;
      });

  ScenarioOutput out;
  out.preamble =
      "E3-E6 (Figure 10): finite-regime bounds vs simulation vs asymptotics "
      "for SQ(2).\nExpected shape: lower bound hugs the simulation "
      "everywhere; the T=2 upper bound\nis loose and goes unstable early; "
      "T=3 is much tighter; the asymptotic curve\nunderestimates at high "
      "rho, worst for small N.";

  const bool adaptive = ctx.adaptive().enabled();
  for (std::size_t pi = 0; pi < panels.size(); ++pi) {
    const PanelDef& def = panels[pi];
    std::vector<std::string> header{"rho", "upper", "simulation", "lower",
                                    "asymptotic"};
    if (adaptive) rlb::engine::add_adaptive_columns(header);
    auto& table = out.add_table(std::string("panel_") + def.label, header);
    for (std::size_t ri = 0; ri < rhos.size(); ++ri) {
      const CellResult& cell = cells[pi * per_panel + ri];
      std::vector<std::string> row{
          rlb::util::fmt(rhos[ri], 2), cell.upper,
          rlb::util::fmt(cell.sim, 4), rlb::util::fmt(cell.lower, 4),
          rlb::util::fmt(rlb::sqd::asymptotic_delay(rhos[ri], 2), 4)};
      if (adaptive) rlb::engine::add_adaptive_cells(row, cell.report);
      table.add_row(std::move(row));
    }
    out.note("Figure 10(" + std::string(1, def.label) +
             "): SQ(2), N = " + std::to_string(def.n) +
             ", T = " + std::to_string(def.t) +
             " (block size C(N+T-1,T))");
  }
  if (adaptive) out.note(rlb::engine::adaptive_note());
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "fig10_delay_vs_utilization",
    "E3-E6 (Fig 10): SQ(2) delay vs utilization — upper/lower bounds, "
    "simulation, asymptotic, four (N,T) panels",
    {{"jobs", "simulated jobs per cell", "2000000"},
     {"full", "paper scale (1e8 jobs per cell)", "false"},
     {"panel", "restrict to one panel a|b|c|d (empty = all)", ""},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "5000"}},
    run}};

}  // namespace
