// Experiment E12 — microbenchmarks (google-benchmark) for the numerical
// kernels and simulators: LU solve, logarithmic reduction, QBD boundary
// solve, fast simulator throughput, and the cluster-DES hot paths the
// compact engine rebuilt — legacy vs compact event loop, calendar queue
// vs binary heap, histogram-directory sampling, and replica-stats
// merging. CI runs this binary with --benchmark_format=json and uploads
// the result as the BENCH_6.json artifact; baselines/BENCH_6.json is a
// committed reference run (numbers are machine-specific — compare
// shapes, not absolutes).
#include <benchmark/benchmark.h>

#include <queue>
#include <utility>
#include <vector>

#include "linalg/lu.h"
#include "qbd/logred.h"
#include "qbd/solver.h"
#include "sim/calendar_queue.h"
#include "sim/cluster_accum.h"
#include "sim/cluster_sim.h"
#include "sim/compact_cluster.h"
#include "sim/fast_sqd.h"
#include "sim/rng.h"
#include "sqd/blocks_builder.h"
#include "sqd/bound_solver.h"

namespace {

rlb::linalg::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  rlb::sim::Rng rng(seed);
  rlb::linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

void BM_LuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 1);
  rlb::linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::linalg::solve(a, b));
  }
}
BENCHMARK(BM_LuFactorSolve)->Arg(64)->Arg(128)->Arg(256);

void BM_LogReduction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const rlb::sqd::BoundModel model(rlb::sqd::Params{n, 2, 0.9, 1.0}, 3,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::qbd::logarithmic_reduction(
        q.blocks.A0, q.blocks.A1, q.blocks.A2));
  }
  state.SetLabel("block=" + std::to_string(q.blocks.block_size()));
}
BENCHMARK(BM_LogReduction)->Arg(3)->Arg(6)->Arg(12);

void BM_FullBoundSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const rlb::sqd::BoundModel model(rlb::sqd::Params{n, 2, 0.9, 1.0}, 3,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::sqd::solve_bound(model, q));
  }
}
BENCHMARK(BM_FullBoundSolve)->Arg(3)->Arg(6);

void BM_ImprovedBoundSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const rlb::sqd::BoundModel model(rlb::sqd::Params{n, 2, 0.9, 1.0}, 3,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::sqd::solve_lower_improved(model, q, 0.9));
  }
}
BENCHMARK(BM_ImprovedBoundSolve)->Arg(3)->Arg(6);

void BM_FastSimulatorThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::FastSqdConfig cfg;
  cfg.params = {n, 2, 0.9, 1.0};
  cfg.jobs = 200'000;
  cfg.warmup = 1'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::sim::simulate_sqd_fast(cfg));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.jobs));
}
BENCHMARK(BM_FastSimulatorThroughput)->Arg(10)->Arg(100);

/// Legacy vs compact cluster DES on the same workload: items/s is jobs
/// per second, so the legacy engine's O(N) per-idle-arrival cost shows
/// up as falling throughput with n while the compact engine stays flat.
void cluster_throughput(benchmark::State& state, rlb::sim::ClusterEngine e) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = 100'000;
  cfg.warmup = 1'000;
  cfg.engine = e;
  rlb::sim::SqdPolicy policy(n, 2);
  const auto arr = rlb::sim::make_exponential(0.9 * n);
  const auto svc = rlb::sim::make_exponential(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rlb::sim::simulate_cluster(cfg, policy, *arr, *svc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.jobs));
}

void BM_ClusterDesThroughput(benchmark::State& state) {
  cluster_throughput(state, rlb::sim::ClusterEngine::kLegacy);
}
BENCHMARK(BM_ClusterDesThroughput)->Arg(10)->Arg(100)->Arg(1000);

void BM_CompactClusterThroughput(benchmark::State& state) {
  cluster_throughput(state, rlb::sim::ClusterEngine::kCompact);
}
BENCHMARK(BM_CompactClusterThroughput)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_DistinctSampling(benchmark::State& state) {
  const int n = 250;
  const int d = static_cast<int>(state.range(0));
  rlb::sim::Rng rng(5);
  rlb::sim::DistinctSampler sampler(n);
  std::vector<int> out;
  for (auto _ : state) {
    sampler.sample(d, rng, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DistinctSampling)->Arg(2)->Arg(10)->Arg(50);

/// The hold-model event-queue pattern the cluster engines execute: pop
/// the minimum, push a later event, queue size steady at `n`. O(1)
/// amortized for the calendar, O(log n) for the heap.
void BM_CalendarQueueHold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::Rng rng(7);
  rlb::sim::CalendarQueue cq;
  for (int i = 0; i < n; ++i)
    cq.push(rng.next_double() * n, static_cast<std::int32_t>(i));
  for (auto _ : state) {
    const auto [t, id] = cq.pop();
    cq.push(t + 1.0 + rng.next_double(), id);
    benchmark::DoNotOptimize(cq.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalendarQueueHold)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_BinaryHeapHold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::Rng rng(7);
  using Event = std::pair<double, std::int32_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  for (int i = 0; i < n; ++i)
    heap.emplace(rng.next_double() * n, static_cast<std::int32_t>(i));
  for (auto _ : state) {
    const auto [t, id] = heap.top();
    heap.pop();
    heap.emplace(t + 1.0 + rng.next_double(), id);
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinaryHeapHold)->Arg(100)->Arg(10000)->Arg(1000000);

/// The compact engine's per-event state update: one level move plus one
/// uniform within-level sample, independent of the fleet size.
void BM_LevelDirectoryStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::Rng rng(11);
  rlb::sim::LevelDirectory dir(n);
  for (auto _ : state) {
    const int s = dir.sample_at_level(0, rng);
    dir.increment(s);
    dir.decrement(s);
    benchmark::DoNotOptimize(dir.idle_head());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LevelDirectoryStep)->Arg(100)->Arg(10000)->Arg(1000000);

/// Directory level moves on servers visited in index order: the packed
/// per-server record makes consecutive servers share cache lines, so
/// this is the layout's best case (pure streaming).
void BM_DirectoryStepSequential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::LevelDirectory dir(n);
  int s = 0;
  for (auto _ : state) {
    dir.increment(s);
    dir.decrement(s);
    s = s + 1 == n ? 0 : s + 1;
    benchmark::DoNotOptimize(dir.idle_head());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryStepSequential)->Arg(1000)->Arg(100000)->Arg(1000000);

/// The same level moves on uniformly random servers — the access pattern
/// SQ(d) polling actually produces. At n = 10^6 every touch is a cache
/// miss in a cold layout; the gap between this and the sequential
/// variant is the cache-residency cost the fused record shrinks.
void BM_DirectoryStepRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::Rng rng(17);
  rlb::sim::LevelDirectory dir(n);
  for (auto _ : state) {
    const int s =
        static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(n)));
    dir.increment(s);
    dir.decrement(s);
    benchmark::DoNotOptimize(dir.idle_head());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryStepRandom)->Arg(1000)->Arg(100000)->Arg(1000000);

/// Replica-merge cost: the per-round serial section of every parallel
/// run (stats.h moments + batch means + quantile reservoirs).
void BM_ClusterAccumMerge(benchmark::State& state) {
  const int samples = static_cast<int>(state.range(0));
  rlb::sim::Rng rng(13);
  rlb::sim::ClusterAccum a, b;
  a.sojourn_ci = rlb::sim::BatchMeans(64);
  b.sojourn_ci = rlb::sim::BatchMeans(64);
  a.sojourn_quantiles = rlb::sim::ReservoirQuantiles(100'000, 1);
  b.sojourn_quantiles = rlb::sim::ReservoirQuantiles(100'000, 2);
  for (int i = 0; i < samples; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    a.sojourn_stats.add(x);
    a.sojourn_ci.add(x);
    a.sojourn_quantiles.add(x);
    b.sojourn_stats.add(y);
    b.sojourn_ci.add(y);
    b.sojourn_quantiles.add(y);
  }
  for (auto _ : state) {
    rlb::sim::ClusterAccum into = a;
    into.merge(b);
    benchmark::DoNotOptimize(into.sojourn_stats.count());
  }
}
BENCHMARK(BM_ClusterAccumMerge)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
