// Experiment E12 — microbenchmarks (google-benchmark) for the numerical
// kernels and simulators: LU solve, logarithmic reduction, QBD boundary
// solve, fast simulator throughput, DES throughput.
#include <benchmark/benchmark.h>

#include "linalg/lu.h"
#include "qbd/logred.h"
#include "qbd/solver.h"
#include "sim/cluster_sim.h"
#include "sim/fast_sqd.h"
#include "sim/rng.h"
#include "sqd/blocks_builder.h"
#include "sqd/bound_solver.h"

namespace {

rlb::linalg::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  rlb::sim::Rng rng(seed);
  rlb::linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

void BM_LuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 1);
  rlb::linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::linalg::solve(a, b));
  }
}
BENCHMARK(BM_LuFactorSolve)->Arg(64)->Arg(128)->Arg(256);

void BM_LogReduction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const rlb::sqd::BoundModel model(rlb::sqd::Params{n, 2, 0.9, 1.0}, 3,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::qbd::logarithmic_reduction(
        q.blocks.A0, q.blocks.A1, q.blocks.A2));
  }
  state.SetLabel("block=" + std::to_string(q.blocks.block_size()));
}
BENCHMARK(BM_LogReduction)->Arg(3)->Arg(6)->Arg(12);

void BM_FullBoundSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const rlb::sqd::BoundModel model(rlb::sqd::Params{n, 2, 0.9, 1.0}, 3,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::sqd::solve_bound(model, q));
  }
}
BENCHMARK(BM_FullBoundSolve)->Arg(3)->Arg(6);

void BM_ImprovedBoundSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const rlb::sqd::BoundModel model(rlb::sqd::Params{n, 2, 0.9, 1.0}, 3,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::sqd::solve_lower_improved(model, q, 0.9));
  }
}
BENCHMARK(BM_ImprovedBoundSolve)->Arg(3)->Arg(6);

void BM_FastSimulatorThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::FastSqdConfig cfg;
  cfg.params = {n, 2, 0.9, 1.0};
  cfg.jobs = 200'000;
  cfg.warmup = 1'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlb::sim::simulate_sqd_fast(cfg));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.jobs));
}
BENCHMARK(BM_FastSimulatorThroughput)->Arg(10)->Arg(100);

void BM_ClusterDesThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rlb::sim::ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = 100'000;
  cfg.warmup = 1'000;
  rlb::sim::SqdPolicy policy(n, 2);
  const auto arr = rlb::sim::make_exponential(0.9 * n);
  const auto svc = rlb::sim::make_exponential(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rlb::sim::simulate_cluster(cfg, policy, *arr, *svc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.jobs));
}
BENCHMARK(BM_ClusterDesThroughput)->Arg(10)->Arg(100);

void BM_DistinctSampling(benchmark::State& state) {
  const int n = 250;
  const int d = static_cast<int>(state.range(0));
  rlb::sim::Rng rng(5);
  rlb::sim::DistinctSampler sampler(n);
  std::vector<int> out;
  for (auto _ : state) {
    sampler.sample(d, rng, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DistinctSampling)->Arg(2)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
