// Scenario "tail_distribution" — marginal queue-length tails P(Q >= i):
// the quantity Mitzenmacher's asymptotic fixed point describes (s_i =
// lambda^{(d^i-1)/(d-1)}, doubly exponential), compared at finite N against
// simulation and the lower bound model's closed-form tail. Shows both the
// celebrated doubly-exponential decay AND the finite-N deviation from it.
#include <cstdint>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "sqd/tail_distribution.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 6));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const double rho = ctx.cli().get_double("rho", 0.9);
  const int t = static_cast<int>(ctx.cli().get_int("T", 3));
  const int kmax = static_cast<int>(ctx.cli().get_int("kmax", 8));
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 4'000'000));
  const auto seed = static_cast<std::uint64_t>(ctx.cli().get_int("seed", 31));
  const Params p{n, d, rho, 1.0};

  // Two independent cells: the analytic tail and the simulation.
  const auto lower_tail = rlb::sqd::marginal_queue_tail(
      BoundModel(p, t, BoundKind::Lower), kmax);
  const bool adaptive = ctx.adaptive().enabled();
  const auto sims =
      ctx.map<rlb::sim::FastSqdResult>(1, [&](std::size_t i) {
        rlb::sim::FastSqdConfig cfg;
        cfg.params = p;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        cfg.tail_kmax = kmax;
        cfg.seed = rlb::engine::cell_seed(seed, i);
        // A single simulation cell: --replicas is the only parallelism
        // here.
        cfg.replicas = ctx.replicas();
        if (adaptive)
          // Target statistic: the mean delay; the tail histogram rides
          // along on the budget the mean needed.
          return rlb::sim::simulate_sqd_fast_adaptive(
              cfg, ctx.adaptive_plan(cfg.seed, jobs), ctx.budget());
        return rlb::sim::simulate_sqd_fast(cfg, ctx.budget());
      });

  ScenarioOutput out;
  out.preamble = "Tail probabilities P(queue >= i), SQ(" +
                 std::to_string(d) + "), N = " + std::to_string(n) +
                 ", rho = " + rlb::util::fmt(rho, 2);
  auto& table = out.add_table(
      "main", {"i", "simulation",
               "lower bound (T=" + std::to_string(t) + ")",
               "asymptotic s_i"});
  for (int i = 0; i <= kmax; ++i) {
    table.add_row({std::to_string(i),
                   rlb::util::fmt(sims[0].marginal_tail[i], 6),
                   rlb::util::fmt(lower_tail.tail[i], 6),
                   rlb::util::fmt(rlb::sqd::asymptotic_queue_tail(rho, d, i),
                                  6)});
  }
  if (adaptive) {
    const auto& rep = sims[0].adaptive;
    std::vector<std::string> header;
    rlb::engine::add_adaptive_columns(header);
    header.push_back("rounds");
    auto& report = out.add_table("adaptive", header);
    std::vector<std::string> row;
    rlb::engine::add_adaptive_cells(row, rep);
    row.push_back(std::to_string(rep.rounds));
    report.add_row(std::move(row));
    out.note(rlb::engine::adaptive_note() +
             "\nTarget statistic: the mean delay of the jump chain; the "
             "tail histogram\nrides along on the budget the mean needed.");
  }
  out.postamble =
      "Expected shape: the asymptotic s_i decays doubly exponentially, but "
      "the finite-N\nsimulated tail is markedly heavier at high rho — the "
      "paper's core warning. The\nlower bound tracks the simulation for "
      "small i and stays below it (its far tail\ndecays geometrically at "
      "rho^N per level, the price of the gap truncation).";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "tail_distribution",
    "Marginal queue-length tails P(Q >= i): simulation vs lower-bound "
    "closed form vs Mitzenmacher asymptotic",
    {{"n", "number of servers", "6"},
     {"d", "polled servers per arrival", "2"},
     {"rho", "utilization", "0.9"},
     {"T", "bound model threshold", "3"},
     {"kmax", "largest tail index", "8"},
     {"jobs", "simulated jobs", "4000000"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "31"}},
    run}};

}  // namespace
