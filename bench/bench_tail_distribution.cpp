// Extension bench — marginal queue-length tails P(Q >= i): the quantity
// Mitzenmacher's asymptotic fixed point describes (s_i =
// lambda^{(d^i-1)/(d-1)}, doubly exponential), compared at finite N against
// simulation and the lower bound model's closed-form tail. Shows both the
// celebrated doubly-exponential decay AND the finite-N deviation from it.
#include <iostream>

#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "sqd/tail_distribution.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 6));
  const int d = static_cast<int>(cli.get_int("d", 2));
  const double rho = cli.get_double("rho", 0.9);
  const int t = static_cast<int>(cli.get_int("T", 3));
  const int kmax = static_cast<int>(cli.get_int("kmax", 8));
  const std::uint64_t jobs =
      static_cast<std::uint64_t>(cli.get_int("jobs", 4'000'000));
  const std::string csv = cli.get("csv", "");
  cli.finish();

  using rlb::sqd::BoundKind;
  using rlb::sqd::BoundModel;
  using rlb::sqd::Params;
  const Params p{n, d, rho, 1.0};

  std::cout << "Tail probabilities P(queue >= i), SQ(" << d << "), N = " << n
            << ", rho = " << rho << "\n";

  const auto lower_tail =
      rlb::sqd::marginal_queue_tail(BoundModel(p, t, BoundKind::Lower), kmax);

  rlb::sim::FastSqdConfig cfg;
  cfg.params = p;
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.tail_kmax = kmax;
  cfg.seed = 31;
  const auto sim = rlb::sim::simulate_sqd_fast(cfg);

  rlb::util::Table table({"i", "simulation", "lower bound (T=" +
                                                 std::to_string(t) + ")",
                          "asymptotic s_i"});
  for (int i = 0; i <= kmax; ++i) {
    table.add_row({std::to_string(i),
                   rlb::util::fmt(sim.marginal_tail[i], 6),
                   rlb::util::fmt(lower_tail.tail[i], 6),
                   rlb::util::fmt(rlb::sqd::asymptotic_queue_tail(rho, d, i),
                                  6)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the asymptotic s_i decays doubly "
               "exponentially, but the finite-N\nsimulated tail is markedly "
               "heavier at high rho — the paper's core warning. The\nlower "
               "bound tracks the simulation for small i and stays below it "
               "(its far tail\ndecays geometrically at rho^N per level, the "
               "price of the gap truncation).\n";
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
