// Scenario "ablation_redirect_rules" — the upper model's arrival-redirect
// rule (see DESIGN.md).
//
// The source text of the paper lacks the figures that specify the exact
// redirection; two precedence-valid reconstructions exist:
//   PhantomBottom  m + e_1 + e_{bottom group} (minimal; implemented default)
//   AllServers     m + 1 (one job everywhere; naive)
// This scenario quantifies how much tighter the minimal rule is, and where
// each variant's stability region ends — the evidence for choosing
// PhantomBottom (the AllServers upper bound is useless for N = 12 exactly
// where Figure 10(d) shows a usable curve). Each configuration row is one
// sweep cell.
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "qbd/solver.h"
#include "sqd/bound_solver.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;
using rlb::sqd::UpperArrivalRule;

std::string upper_delay(const Params& p, int t, UpperArrivalRule rule) {
  try {
    return rlb::util::fmt(
        rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper, rule))
            .mean_delay,
        4);
  } catch (const rlb::qbd::UnstableError&) {
    return "unstable";
  }
}

struct Config {
  int n, t;
  double rho;
};

struct CellResult {
  double lower = 0.0;
  std::string phantom;
  std::string all_servers;
};

ScenarioOutput run(ScenarioContext& ctx) {
  const std::vector<Config> configs{
      {3, 2, 0.5},  {3, 2, 0.7},  {3, 3, 0.7},  {3, 3, 0.9},
      {6, 3, 0.5},  {6, 3, 0.7},  {6, 3, 0.8},  {12, 3, 0.5},
      {12, 3, 0.65}, {12, 3, 0.75},
  };

  const auto cells = ctx.map<CellResult>(
      configs.size(), [&](std::size_t i) {
        const Config& c = configs[i];
        const Params p{c.n, 2, c.rho, 1.0};
        CellResult cell;
        cell.lower =
            rlb::sqd::solve_lower_improved(
                BoundModel(p, c.t, BoundKind::Lower))
                .mean_delay;
        cell.phantom = upper_delay(p, c.t, UpperArrivalRule::PhantomBottom);
        cell.all_servers = upper_delay(p, c.t, UpperArrivalRule::AllServers);
        return cell;
      });

  ScenarioOutput out;
  out.preamble =
      "Ablation: upper-bound arrival redirect rule (minimal phantom vs "
      "all-servers).";
  auto& table = out.add_table(
      "main", {"N", "T", "rho", "lower", "upper(phantom)", "upper(m+1)"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    table.add_row({std::to_string(c.n), std::to_string(c.t),
                   rlb::util::fmt(c.rho, 2),
                   rlb::util::fmt(cells[i].lower, 4), cells[i].phantom,
                   cells[i].all_servers});
  }
  out.postamble =
      "Expected shape: the phantom rule is always at least as tight and "
      "stays stable\nat loads where m+1 already diverged; the gap widens "
      "with N.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "ablation_redirect_rules",
    "Upper-bound arrival-redirect ablation: minimal phantom rule vs naive "
    "all-servers rule",
    {},
    run}};

}  // namespace
