// Ablation — the upper model's arrival-redirect rule (see DESIGN.md).
//
// The source text of the paper lacks the figures that specify the exact
// redirection; two precedence-valid reconstructions exist:
//   PhantomBottom  m + e_1 + e_{bottom group} (minimal; implemented default)
//   AllServers     m + 1 (one job everywhere; naive)
// This bench quantifies how much tighter the minimal rule is, and where
// each variant's stability region ends — the evidence for choosing
// PhantomBottom (the AllServers upper bound is useless for N = 12 exactly
// where Figure 10(d) shows a usable curve).
#include <iostream>

#include "qbd/solver.h"
#include "sqd/bound_solver.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;
using rlb::sqd::UpperArrivalRule;

std::string upper_delay(const Params& p, int t, UpperArrivalRule rule) {
  try {
    return rlb::util::fmt(
        rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper, rule))
            .mean_delay,
        4);
  } catch (const rlb::qbd::UnstableError&) {
    return "unstable";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const std::string csv = cli.get("csv", "");
  cli.finish();

  std::cout << "Ablation: upper-bound arrival redirect rule "
               "(minimal phantom vs all-servers).\n";
  rlb::util::Table table({"N", "T", "rho", "lower", "upper(phantom)",
                          "upper(m+1)"});
  struct Config {
    int n, t;
    double rho;
  };
  const std::vector<Config> configs{
      {3, 2, 0.5},  {3, 2, 0.7},  {3, 3, 0.7},  {3, 3, 0.9},
      {6, 3, 0.5},  {6, 3, 0.7},  {6, 3, 0.8},  {12, 3, 0.5},
      {12, 3, 0.65}, {12, 3, 0.75},
  };
  for (const auto& c : configs) {
    const Params p{c.n, 2, c.rho, 1.0};
    const double lower =
        rlb::sqd::solve_lower_improved(BoundModel(p, c.t, BoundKind::Lower))
            .mean_delay;
    table.add_row({std::to_string(c.n), std::to_string(c.t),
                   rlb::util::fmt(c.rho, 2), rlb::util::fmt(lower, 4),
                   upper_delay(p, c.t, UpperArrivalRule::PhantomBottom),
                   upper_delay(p, c.t, UpperArrivalRule::AllServers)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the phantom rule is always at least as "
               "tight and stays stable\nat loads where m+1 already "
               "diverged; the gap widens with N.\n";
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
