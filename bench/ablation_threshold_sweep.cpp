// Experiment E8 — the accuracy/complexity tradeoff in T (§V, first
// observation): upper bounds tighten as T grows, but block sizes — and
// hence the matrix-geometric cost — grow as C(N+T-1, T).
//
// Prints, per T: both bounds, the sandwich width, the exact value (small N
// reference), block/boundary sizes, and wall-clock solve times.
#include <chrono>
#include <iostream>

#include "qbd/solver.h"
#include "sqd/bound_solver.h"
#include "sqd/exact_reference.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 3));
  const int d = static_cast<int>(cli.get_int("d", 2));
  const double rho = cli.get_double("rho", 0.7);
  const int t_max = static_cast<int>(cli.get_int("tmax", 6));
  const std::string csv = cli.get("csv", "");
  cli.finish();

  using rlb::sqd::BoundKind;
  using rlb::sqd::BoundModel;
  using rlb::sqd::Params;
  const Params p{n, d, rho, 1.0};

  std::cout << "E8: threshold sweep, N = " << n << ", d = " << d
            << ", rho = " << rho << "\n";
  const double exact =
      n <= 3 ? rlb::sqd::solve_exact_truncated(p, 60).mean_delay : -1.0;
  if (exact > 0) std::cout << "exact (truncated CTMC): " << exact << "\n";

  rlb::util::Table table({"T", "block", "boundary", "lower", "upper",
                          "width", "lower_err%", "t_lower(s)", "t_upper(s)"});
  for (int t = 1; t <= t_max; ++t) {
    auto start = std::chrono::steady_clock::now();
    const auto lower =
        rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Lower));
    const double t_lower = seconds_since(start);

    std::string upper_s = "unstable";
    std::string width_s = "-";
    double t_upper = 0.0;
    try {
      start = std::chrono::steady_clock::now();
      const auto upper =
          rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper));
      t_upper = seconds_since(start);
      upper_s = rlb::util::fmt(upper.mean_delay, 5);
      width_s = rlb::util::fmt(upper.mean_delay - lower.mean_delay, 5);
    } catch (const rlb::qbd::UnstableError&) {
    }

    const std::string err =
        exact > 0 ? rlb::util::fmt(
                        100.0 * std::abs(exact - lower.mean_delay) / exact, 3)
                  : "-";
    table.add_row({std::to_string(t), std::to_string(lower.block_size),
                   std::to_string(lower.boundary_size),
                   rlb::util::fmt(lower.mean_delay, 5), upper_s, width_s, err,
                   rlb::util::fmt(t_lower, 3), rlb::util::fmt(t_upper, 3)});
  }
  table.print(std::cout);
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
