// Scenario "ablation_threshold_sweep" — Experiment E8, the
// accuracy/complexity tradeoff in T (§V, first observation): upper bounds
// tighten as T grows, but block sizes — and hence the matrix-geometric
// cost — grow as C(N+T-1, T).
//
// Prints, per T: both bounds, the sandwich width, the exact value (small N
// reference), block/boundary sizes, and wall-clock solve times (which vary
// run to run). Each T is one sweep cell.
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "qbd/solver.h"
#include "sqd/bound_solver.h"
#include "sqd/exact_reference.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct CellResult {
  int block_size = 0;
  int boundary_size = 0;
  double lower = 0.0;
  std::string upper = "unstable";
  std::string width = "-";
  double t_lower = 0.0;
  double t_upper = 0.0;
};

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 3));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const double rho = ctx.cli().get_double("rho", 0.7);
  const int t_max = static_cast<int>(ctx.cli().get_int("tmax", 6));
  const Params p{n, d, rho, 1.0};

  const double exact =
      n <= 3 ? rlb::sqd::solve_exact_truncated(p, 60).mean_delay : -1.0;

  const auto cells = ctx.map<CellResult>(
      static_cast<std::size_t>(t_max), [&](std::size_t i) {
        const int t = static_cast<int>(i) + 1;
        CellResult cell;
        auto start = std::chrono::steady_clock::now();
        const auto lower =
            rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Lower));
        cell.t_lower = seconds_since(start);
        cell.lower = lower.mean_delay;
        cell.block_size = lower.block_size;
        cell.boundary_size = lower.boundary_size;
        try {
          start = std::chrono::steady_clock::now();
          const auto upper =
              rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper));
          cell.t_upper = seconds_since(start);
          cell.upper = rlb::util::fmt(upper.mean_delay, 5);
          cell.width =
              rlb::util::fmt(upper.mean_delay - lower.mean_delay, 5);
        } catch (const rlb::qbd::UnstableError&) {
        }
        return cell;
      });

  ScenarioOutput out;
  out.preamble = "E8: threshold sweep, N = " + std::to_string(n) +
                 ", d = " + std::to_string(d) +
                 ", rho = " + rlb::util::fmt(rho, 2);
  if (exact > 0)
    out.preamble +=
        "\nexact (truncated CTMC): " + rlb::util::fmt(exact, 6);

  auto& table = out.add_table(
      "main", {"T", "block", "boundary", "lower", "upper", "width",
               "lower_err%", "t_lower(s)", "t_upper(s)"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    const std::string err =
        exact > 0
            ? rlb::util::fmt(100.0 * std::abs(exact - cell.lower) / exact, 3)
            : "-";
    table.add_row({std::to_string(i + 1), std::to_string(cell.block_size),
                   std::to_string(cell.boundary_size),
                   rlb::util::fmt(cell.lower, 5), cell.upper, cell.width,
                   err, rlb::util::fmt(cell.t_lower, 3),
                   rlb::util::fmt(cell.t_upper, 3)});
  }
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "ablation_threshold_sweep",
    "E8: accuracy/complexity tradeoff in the threshold T — bound width vs "
    "block size and solve time",
    {{"n", "number of servers", "3"},
     {"d", "polled servers per arrival", "2"},
     {"rho", "utilization", "0.7"},
     {"tmax", "largest threshold T to solve", "6"}},
    run}};

}  // namespace
