// Scenario "heavy_tail_service" — what heavy-tailed service laws do to
// SQ(d) delay at EQUAL mean load. Every column serves jobs with mean size
// 1 at Poisson arrivals of rate rho*N; only the service law's shape
// changes. Rows sweep the Pareto tail index alpha; the lognormal and
// hyperexponential columns are moment-matched to the row's Pareto
// (lognormal by cv, hyperexp by scv, both clamped to their fitting
// domains), and the exponential column is the shape-free reference — it
// reruns the stock M/M path and doubles as a cross-check against the
// fast jump-chain simulator (the "crosscheck" table).
//
// Each (row, family) simulation is one sweep cell; the family columns of
// a row share random streams (common random numbers), and the
// exponential column is bit-identical with a direct simulate_cluster
// call of the same config (tests/test_scenarios.cpp pins this).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "sim/distributions.h"
#include "sim/fast_sqd.h"
#include "util/require.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

const std::vector<std::string> kFamilies{"exp", "pareto", "lognormal",
                                         "hyperexp"};

/// Squared coefficient of variation of a mean-1 Pareto with tail index
/// alpha: 1 / (alpha * (alpha - 2)) for alpha > 2, infinite otherwise.
double pareto_scv(double alpha) {
  if (alpha <= 2.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (alpha * (alpha - 2.0));
}

/// The row's service law for one family column, all with mean 1. The
/// matched columns clamp to their fitting domains: lognormal cv in
/// (0, 4], hyperexp scv in [1.1, 16].
std::unique_ptr<rlb::sim::Distribution> service_for(
    const std::string& family, double alpha) {
  using namespace rlb::sim;
  const double scv = pareto_scv(alpha);
  if (family == "exp") return make_exponential(1.0);
  if (family == "pareto") return make_pareto_mean(1.0, alpha);
  if (family == "lognormal")
    return make_lognormal(1.0, std::sqrt(std::min(scv, 16.0)));
  if (family == "hyperexp")
    return make_hyperexp_fitted(1.0, std::clamp(scv, 1.1, 16.0));
  throw std::invalid_argument("unknown service family: " + family);
}

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 8));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const double rho = ctx.cli().get_double("rho", 0.85);
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 300'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 24680));
  const std::string dist = ctx.cli().get("dist", "all");

  std::vector<std::string> families;
  if (dist == "all") {
    families = kFamilies;
  } else {
    RLB_REQUIRE(std::find(kFamilies.begin(), kFamilies.end(), dist) !=
                    kFamilies.end(),
                "--dist must be all, exp, pareto, lognormal or hyperexp");
    families.push_back(dist);
  }

  using namespace rlb::sim;
  const std::vector<double> alphas{1.5, 2.0, 2.5, 3.0};
  const std::size_t cols = families.size();

  struct CellResult {
    double mean = 0.0;
    double p99 = 0.0;
  };
  const auto cells =
      ctx.map<CellResult>(alphas.size() * cols, [&](std::size_t i) {
        const std::size_t row = i / cols;
        ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        // One seed per alpha row: the family columns differ only in the
        // service law, so they share random streams (CRN).
        cfg.seed = rlb::engine::cell_seed(seed, row);
        cfg.replicas = ctx.replicas();
        const auto interarrival = make_exponential(rho * n);
        const auto service = service_for(families[i % cols], alphas[row]);
        SqdPolicy policy(n, d);
        const auto res = simulate_cluster(cfg, policy, *interarrival,
                                          *service, ctx.budget());
        return CellResult{res.mean_sojourn, res.p99_sojourn};
      });

  // Cross-check: the fast M/M jump-chain estimator of the same system
  // against the exponential DES column (different estimators, same
  // stationary delay).
  FastSqdConfig fast;
  fast.params = {n, d, rho, 1.0};
  fast.jobs = jobs;
  fast.warmup = jobs / 10;
  fast.seed = rlb::engine::cell_seed(seed, alphas.size());
  fast.replicas = ctx.replicas();
  const FastSqdResult fast_res = simulate_sqd_fast(fast, ctx.budget());

  ScenarioOutput out;
  out.preamble =
      "Heavy-tailed service for sq(" + std::to_string(d) + "), N = " +
      std::to_string(n) + " servers at utilization " +
      rlb::util::fmt(rho, 2) +
      ".\nEvery column serves mean-1 jobs from Poisson arrivals at rate "
      "rho*N; rows sweep\nthe Pareto tail index alpha, with the lognormal "
      "and hyperexp columns moment-\nmatched to the row's Pareto (clamped "
      "to their fitting domains).";

  std::vector<std::string> header{"alpha", "scv"};
  for (const auto& family : families) {
    header.push_back(family + " delay");
    header.push_back(family + " p99");
  }
  auto& table = out.add_table("main", header);
  for (std::size_t row = 0; row < alphas.size(); ++row) {
    const double scv = pareto_scv(alphas[row]);
    std::vector<std::string> cells_row{
        rlb::util::fmt(alphas[row], 1),
        std::isfinite(scv) ? rlb::util::fmt(scv, 3) : "inf"};
    for (std::size_t k = 0; k < cols; ++k) {
      cells_row.push_back(rlb::util::fmt(cells[row * cols + k].mean, 4));
      cells_row.push_back(rlb::util::fmt(cells[row * cols + k].p99, 4));
    }
    table.add_row(std::move(cells_row));
  }

  if (std::find(families.begin(), families.end(), "exp") != families.end()) {
    const std::size_t exp_col = static_cast<std::size_t>(
        std::find(families.begin(), families.end(), "exp") -
        families.begin());
    auto& check = out.add_table(
        "crosscheck", {"fast-mm delay", "des exp delay", "abs diff"});
    const double des = cells[exp_col].mean;  // alpha row 0; exp ignores alpha
    check.add_row({rlb::util::fmt(fast_res.mean_delay, 4),
                   rlb::util::fmt(des, 4),
                   rlb::util::fmt(std::abs(fast_res.mean_delay - des), 4)});
  }

  out.postamble =
      "Reading: at equal mean load the delay is driven by the tail, not "
      "the mean —\nsmaller alpha (heavier tail) inflates p99 far beyond "
      "the exponential reference,\nand the matched lognormal/hyperexp "
      "columns show how much of that is explained\nby the first two "
      "moments alone.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "heavy_tail_service",
    "Heavy-tailed service at equal mean load: SQ(d) delay and p99 vs "
    "Pareto tail index, with moment-matched lognormal/hyperexp columns "
    "and an exponential cross-check",
    {{"n", "number of servers", "8"},
     {"d", "polled servers", "2"},
     {"rho", "utilization (arrival rate is rho*N, mean service 1)", "0.85"},
     {"jobs", "simulated jobs per cell", "300000"},
     {"seed", "base RNG seed; per-row seeds are derived from it", "24680"},
     {"dist", "service family filter: all, exp, pareto, lognormal or "
              "hyperexp", "all"}},
    run}};

}  // namespace
