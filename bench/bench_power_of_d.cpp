// Scenario "power_of_d" — Experiment E10, the motivating "power of d"
// comparison (§I): delay of SQ(1), SQ(2), SQ(5), JSQ and the classic
// comparators, by discrete-event simulation, plus the paper's bounds for
// SQ(2). Each (rho, policy) simulation is one sweep cell, so the table
// fills across worker threads.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "qbd/solver.h"
#include "sim/cluster_sim.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

constexpr std::size_t kTasks = 7;  // 6 simulated policies + 1 bound solve

std::unique_ptr<rlb::sim::Policy> make_policy(int n, std::size_t task) {
  using namespace rlb::sim;
  switch (task) {
    case 0:
      return std::make_unique<SqdPolicy>(n, 1);
    case 1:
      return std::make_unique<SqdPolicy>(n, 2);
    case 2:
      return std::make_unique<SqdPolicy>(n, 5);
    case 3:
      return std::make_unique<JsqPolicy>();
    case 4:
      return std::make_unique<RoundRobinPolicy>();
    default:
      return std::make_unique<LeastWorkLeftPolicy>();
  }
}

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 10));
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 1'000'000));
  const auto seed = static_cast<std::uint64_t>(ctx.cli().get_int("seed", 777));
  const bool adaptive = ctx.adaptive().enabled();

  const std::vector<double> rhos{0.5, 0.7, 0.9, 0.95, 0.99};
  // Cell values[0] is the delay; the report stays default in fixed mode
  // and for the solver task (which never enters the row aggregation).
  const auto cells = ctx.map_cells(
      rhos.size() * kTasks,
      [&](std::size_t i) {
        // The row seed is shared across the policy columns (common random
        // numbers), so `task` must be part of the key alongside it.
        auto key = ctx.cell_key("power_of_d",
                                rlb::engine::cell_seed(seed, i / kTasks));
        key.set("n", n);
        key.set("jobs", jobs);
        key.set("rho", rhos[i / kTasks]);
        key.set("task", static_cast<std::uint64_t>(i % kTasks));
        return key;
      },
      [&](std::size_t i, const rlb::engine::CellRecord* refine_from) {
        const double rho = rhos[i / kTasks];
        const std::size_t task = i % kTasks;
        rlb::engine::CellRecord rec;
        if (task == kTasks - 1) {
          // Lower bound for SQ(2) at this N (improved solver, T = 2).
          const rlb::sqd::BoundModel lower(rlb::sqd::Params{n, 2, rho, 1.0},
                                           2, rlb::sqd::BoundKind::Lower);
          rec.values = {rlb::sqd::solve_lower_improved(lower).mean_delay};
          return rec;
        }
        using namespace rlb::sim;
        ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        // One seed per rho row (not per cell): all policy columns see the
        // same random streams, so column differences isolate the policy
        // effect (common random numbers, as the original bench did).
        cfg.seed = rlb::engine::cell_seed(seed, i / kTasks);
        cfg.replicas = ctx.replicas();
        const auto arr = make_exponential(rho * n);
        const auto svc = make_exponential(1.0);
        const auto policy = make_policy(n, task);
        if (adaptive) {
          const auto plan = ctx.adaptive_plan(cfg.seed, jobs);
          ClusterRoundState state;
          const ClusterResult res =
              refine_from != nullptr
                  ? simulate_cluster_refine(cfg, *policy, *arr, *svc, plan,
                                            refine_from->round_state,
                                            ctx.budget(), &state)
                  : simulate_cluster_adaptive(cfg, *policy, *arr, *svc,
                                              plan, ctx.budget(), &state);
          rec.values = {res.mean_sojourn};
          rec.report = res.adaptive;
          rec.round_state = state;
          rec.has_round_state = true;
          return rec;
        }
        rec.values = {
            simulate_cluster(cfg, *policy, *arr, *svc, ctx.budget())
                .mean_sojourn};
        return rec;
      });

  ScenarioOutput out;
  out.preamble = "E10: the power of d choices, N = " + std::to_string(n) +
                 " servers, M/M service, DES with " +
                 (adaptive ? "adaptive (--target-ci) run lengths"
                           : std::to_string(jobs) + " jobs") +
                 ".";
  std::vector<std::string> header{"rho",  "sq(1)",       "sq(2)",
                                  "sq(5)", "jsq",        "round-robin",
                                  "least-work", "asym d=2",
                                  "lower bound sq(2)"};
  if (adaptive) {
    // Per-row stopping report over the six simulated cells: the WORST
    // half-width, the TOTAL budget, and whether every cell converged.
    rlb::engine::add_adaptive_columns(header);
  }
  auto& table = out.add_table("main", header);
  for (std::size_t r = 0; r < rhos.size(); ++r) {
    std::vector<std::string> row{rlb::util::fmt(rhos[r], 2)};
    for (std::size_t task = 0; task + 1 < kTasks; ++task)
      row.push_back(
          rlb::util::fmt(cells[r * kTasks + task].values.front(), 3));
    row.push_back(rlb::util::fmt(rlb::sqd::asymptotic_delay(rhos[r], 2), 3));
    row.push_back(
        rlb::util::fmt(cells[r * kTasks + kTasks - 1].values.front(), 3));
    if (adaptive) {
      auto report = rlb::sim::AdaptiveReport::row_identity();
      for (std::size_t task = 0; task + 1 < kTasks; ++task)
        report.combine(cells[r * kTasks + task].report);
      rlb::engine::add_adaptive_cells(row, report);
    }
    table.add_row(std::move(row));
  }
  if (adaptive)
    out.note(rlb::engine::adaptive_note("the six simulated policies"));
  out.postamble =
      "Expected shape: sq(1) explodes at high rho; sq(2) removes most of "
      "that pain\n(exponential improvement); extra choices give diminishing "
      "returns.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "power_of_d",
    "E10: SQ(1/2/5), JSQ, round-robin, least-work delays by DES plus the "
    "paper's SQ(2) bounds",
    {{"n", "number of servers", "10"},
     {"jobs", "simulated jobs per cell", "1000000"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "777"}},
    run}};

}  // namespace
