// Experiment E10 — the motivating "power of d" comparison (§I): delay of
// SQ(1), SQ(2), SQ(5), JSQ and the classic comparators, by discrete-event
// simulation, plus the paper's bounds for SQ(2).
#include <iostream>
#include <memory>

#include "qbd/solver.h"
#include "sim/cluster_sim.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 10));
  const std::uint64_t jobs =
      static_cast<std::uint64_t>(cli.get_int("jobs", 1'000'000));
  const std::string csv = cli.get("csv", "");
  cli.finish();

  using namespace rlb::sim;

  std::cout << "E10: the power of d choices, N = " << n
            << " servers, M/M service, DES with " << jobs << " jobs.\n";
  rlb::util::Table table({"rho", "sq(1)", "sq(2)", "sq(5)", "jsq",
                          "round-robin", "least-work", "asym d=2",
                          "lower bound sq(2)"});

  for (double rho : {0.5, 0.7, 0.9, 0.95, 0.99}) {
    ClusterConfig cfg;
    cfg.servers = n;
    cfg.jobs = jobs;
    cfg.warmup = jobs / 10;
    cfg.seed = 777;
    const auto arr = make_exponential(rho * n);
    const auto svc = make_exponential(1.0);

    std::vector<std::unique_ptr<Policy>> policies;
    policies.push_back(std::make_unique<SqdPolicy>(n, 1));
    policies.push_back(std::make_unique<SqdPolicy>(n, 2));
    policies.push_back(std::make_unique<SqdPolicy>(n, 5));
    policies.push_back(std::make_unique<JsqPolicy>());
    policies.push_back(std::make_unique<RoundRobinPolicy>());
    policies.push_back(std::make_unique<LeastWorkLeftPolicy>());

    std::vector<std::string> row{rlb::util::fmt(rho, 2)};
    for (auto& policy : policies) {
      const auto r = simulate_cluster(cfg, *policy, *arr, *svc);
      row.push_back(rlb::util::fmt(r.mean_sojourn, 3));
    }
    row.push_back(rlb::util::fmt(rlb::sqd::asymptotic_delay(rho, 2), 3));

    // Lower bound for SQ(2) at this N (improved solver, T = 2).
    const rlb::sqd::BoundModel lower(rlb::sqd::Params{n, 2, rho, 1.0}, 2,
                                     rlb::sqd::BoundKind::Lower);
    row.push_back(
        rlb::util::fmt(rlb::sqd::solve_lower_improved(lower).mean_delay, 3));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: sq(1) explodes at high rho; sq(2) removes "
               "most of that pain\n(exponential improvement); extra choices "
               "give diminishing returns.\n";
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
