// Scenario "hetero_fleet_bounds" — the bound models with rank-based
// heterogeneous service rates (BoundModel::transitions(m, rank_speeds)):
// the queue at sorted position k is served at speeds[k] * mu, fast half /
// slow half at equal total capacity like the heterogeneous_fleet DES
// study. Three simulations per skew row: the lower bound CTMC jump chain,
// the same lower model through the event-driven GI simulator (a
// cross-check of the two independent implementations), and the upper
// bound CTMC. Delay columns follow the solver convention E[W] + 1/mu; the
// skew 1:1 row reproduces the homogeneous model, cross-checked against
// the matrix-geometric solver in the note. Each (skew, simulator) run is
// one sweep cell; rows share seeds (common random numbers).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "sim/bound_sim.h"
#include "sim/distributions.h"
#include "sim/gi_bound_sim.h"
#include "sqd/bound_solver.h"
#include "util/require.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

constexpr std::size_t kSims = 3;  // ctmc lower, gi lower, ctmc upper

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 4));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const int t = static_cast<int>(ctx.cli().get_int("t", 3));
  const double rho = ctx.cli().get_double("rho", 0.75);
  const auto steps =
      static_cast<std::uint64_t>(ctx.cli().get_int("steps", 2'000'000));
  const auto arrivals =
      static_cast<std::uint64_t>(ctx.cli().get_int("arrivals", 1'000'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 11223));

  RLB_REQUIRE(n >= 2 && n % 2 == 0,
              "hetero_fleet_bounds needs an even --n for the half/half "
              "speed split");
  const Params p{n, d, rho, 1.0};
  const std::vector<double> skews{1.0, 1.25, 1.5, 1.75};
  // Rank speeds at equal total capacity: the fast half serves the longest
  // queues. n must be even for the half/half split.
  const auto rank_speeds = [&](double fast) {
    std::vector<double> speeds(n, 1.0);
    for (int k = 0; k < n / 2; ++k) {
      speeds[k] = fast;
      speeds[n / 2 + k] = 2.0 - fast;
    }
    return speeds;
  };

  struct Cell {
    double delay = 0.0;
    rlb::sim::AdaptiveReport report;
  };
  const bool adaptive = ctx.adaptive().enabled();
  const auto cells = ctx.map<Cell>(
      skews.size() * kSims, [&](std::size_t i) {
        const std::size_t s = i / kSims;
        const std::vector<double> speeds = rank_speeds(skews[s]);
        // One seed per skew row (common random numbers across simulators).
        const std::uint64_t cell = rlb::engine::cell_seed(seed, s);
        // Little's-law scaling (below) maps a waiting-jobs half-width to
        // a delay half-width, so the CTMC/GI targets are requested in
        // delay units too: target scales by lambda * N.
        const auto bound_plan = [&](std::uint64_t budget_jobs) {
          auto plan = ctx.adaptive_plan(cell, budget_jobs);
          plan.target_ci *= p.lambda * p.N;
          return plan;
        };
        const std::size_t sim = i % kSims;
        double waiting_jobs = 0.0;
        rlb::sim::AdaptiveReport report;
        if (sim == 1) {
          const auto arr = rlb::sim::make_exponential(rho * n);
          if (adaptive) {
            const auto res = rlb::sim::simulate_gi_lower_bound_adaptive(
                BoundModel(p, t, BoundKind::Lower), *arr,
                bound_plan(arrivals), ctx.budget(), speeds);
            waiting_jobs = res.mean_waiting_jobs;
            report = res.adaptive;
          } else {
            waiting_jobs =
                rlb::sim::simulate_gi_lower_bound(
                    BoundModel(p, t, BoundKind::Lower), *arr, arrivals,
                    arrivals / 10, cell, ctx.replicas(), ctx.budget(),
                    speeds)
                    .mean_waiting_jobs;
          }
        } else {
          const BoundModel model(
              p, t, sim == 0 ? BoundKind::Lower : BoundKind::Upper);
          if (adaptive) {
            const auto res = rlb::sim::simulate_bound_model_adaptive(
                model, bound_plan(steps), ctx.budget(), speeds);
            waiting_jobs = res.mean_waiting_jobs;
            report = res.adaptive;
          } else {
            waiting_jobs = rlb::sim::simulate_bound_model(
                               model, steps, steps / 10, cell,
                               ctx.replicas(), ctx.budget(), speeds)
                               .mean_waiting_jobs;
          }
        }
        // Solver convention: delay = E[W] + 1/mu, Little's law over the
        // original arrival rate lambda*N.
        report.half_width /= p.lambda * p.N;
        return Cell{waiting_jobs / (p.lambda * p.N) + 1.0 / p.mu, report};
      });

  ScenarioOutput out;
  out.preamble =
      "Heterogeneous-rate bound models, N = " + std::to_string(n) +
      ", d = " + std::to_string(d) + ", T = " + std::to_string(t) +
      ", rho = " + rlb::util::fmt(rho, 2) +
      ".\nRank speeds: fast half serves the longest queues, slow half the "
      "shortest;\ntotal capacity is constant across skews.";
  std::vector<std::string> header{"skew (fast:slow)", "lower delay",
                                  "lower delay (GI sim)", "upper delay"};
  if (adaptive) rlb::engine::add_adaptive_columns(header);
  auto& table = out.add_table("main", header);
  for (std::size_t s = 0; s < skews.size(); ++s) {
    std::vector<std::string> row{rlb::util::fmt(skews[s], 2) + ":" +
                                 rlb::util::fmt(2.0 - skews[s], 2)};
    for (std::size_t k = 0; k < kSims; ++k)
      row.push_back(rlb::util::fmt(cells[s * kSims + k].delay, 4));
    if (adaptive) {
      auto report = rlb::sim::AdaptiveReport::row_identity();
      for (std::size_t k = 0; k < kSims; ++k)
        report.combine(cells[s * kSims + k].report);
      rlb::engine::add_adaptive_cells(row, report);
    }
    table.add_row(std::move(row));
  }
  if (adaptive)
    out.note(rlb::engine::adaptive_note(
        "the three simulators (waiting-jobs CIs scaled to delay units by "
        "Little's law;\njobs_used counts steps+arrivals)"));
  std::string homog_note;
  try {
    const auto lower =
        rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Lower));
    const auto upper =
        rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper));
    homog_note = "Homogeneous (skew 1:1) matrix-geometric reference: "
                 "lower delay " +
                 rlb::util::fmt(lower.mean_delay, 4) + ", upper delay " +
                 rlb::util::fmt(upper.mean_delay, 4) + ".";
  } catch (const rlb::qbd::UnstableError&) {
    homog_note = "Homogeneous upper bound model is unstable at this "
                 "(rho, T) — drift condition fails.";
  }
  out.note(homog_note);
  out.postamble =
      "Reading: speeding up service of the LONGEST queues (skew > 1) "
      "shrinks the\nbacklog both bound models hold at equal capacity; the "
      "two lower-model columns\nare independent simulators of the same "
      "chain and should agree within noise.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "hetero_fleet_bounds",
    "Lower/upper bound models with rank-based heterogeneous service "
    "rates: delay vs fleet skew at equal capacity",
    {{"n", "number of servers (even)", "4"},
     {"d", "polled servers", "2"},
     {"t", "gap threshold T", "3"},
     {"rho", "utilization", "0.75"},
     {"steps", "CTMC jump-chain steps per cell", "2000000"},
     {"arrivals", "GI-simulator arrival events per cell", "1000000"},
     {"seed", "base RNG seed; per-row seeds are derived from it", "11223"}},
    run}};

}  // namespace
