// bench_check — the CI benchmark-regression gate.
//
//   bench_check --baseline=baselines/BENCH_6.json --candidate=BENCH_6.json
//               [--warn-ratio=1.3] [--fail-ratio=2.0] [--min-ns=50]
//               [--metric=cpu_time|real_time] [--github]
//
// Compares two google-benchmark JSON reports (the --benchmark_out format)
// and exits non-zero when any benchmark slowed down beyond the fail
// threshold. A slowdown counts only when BOTH the candidate/baseline
// ratio exceeds the threshold AND the absolute slowdown exceeds --min-ns,
// so nanosecond-scale benchmarks do not flap on jitter. --github
// additionally emits ::warning::/::error:: workflow annotations.
//
// Exit codes: 0 ok (possibly with warnings), 1 regression, 2 usage or
// malformed input.
#include <exception>
#include <iostream>

#include "engine/baseline.h"
#include "engine/bench_check.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  try {
    const rlb::util::Cli cli(argc, argv);
    const std::string baseline = cli.get("baseline", "");
    const std::string candidate = cli.get("candidate", "");
    rlb::engine::BenchCheckOptions opts;
    opts.warn_ratio = cli.get_double("warn-ratio", opts.warn_ratio);
    opts.fail_ratio = cli.get_double("fail-ratio", opts.fail_ratio);
    opts.min_ns = cli.get_double("min-ns", opts.min_ns);
    opts.metric = cli.get("metric", opts.metric);
    const bool github = cli.get_bool("github");
    if (baseline.empty() || candidate.empty()) {
      std::cerr << "usage: bench_check --baseline=ref.json "
                   "--candidate=new.json\n"
                   "       [--warn-ratio=1.3] [--fail-ratio=2.0] "
                   "[--min-ns=50]\n"
                   "       [--metric=cpu_time|real_time] [--github]\n";
      return 2;
    }
    cli.finish();

    const rlb::engine::BenchCheckReport report =
        rlb::engine::check_benchmarks(rlb::engine::read_text_file(baseline),
                                      rlb::engine::read_text_file(candidate),
                                      opts);
    std::cout << report.describe() << "\n";
    if (github) std::cout << report.github_annotations();
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
