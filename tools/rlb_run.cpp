// rlb_run — the unified scenario driver.
//
//   rlb_run --list                         enumerate registered scenarios
//   rlb_run --describe=power_of_d          parameter schema for one
//   rlb_run --scenario=power_of_d          run it (parallel by default)
//           [--threads=8] [--csv=out.csv] [--json=out.json]
//           [scenario-specific flags, e.g. --n=12 --jobs=500000]
//
// Every scenario derives its randomness from fixed per-cell seeds, so
// --threads changes wall-clock time only: parallel and serial runs emit
// bit-identical tables (timing columns, where a scenario reports them, are
// measured wall-clock and naturally vary).
#include <exception>
#include <iostream>

#include "engine/scenario.h"
#include "engine/sink.h"
#include "engine/sweep.h"
#include "util/cli.h"

namespace {

using rlb::engine::Scenario;
using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioRegistry;

void print_list(std::ostream& os) {
  os << "registered scenarios:\n";
  for (const Scenario* s : ScenarioRegistry::global().list())
    os << "  " << s->name << "  -  " << s->description << "\n";
}

void print_describe(std::ostream& os, const Scenario& s) {
  os << s.name << ": " << s.description << "\n";
  if (s.params.empty()) {
    os << "  (no parameters)\n";
    return;
  }
  os << "  parameters:\n";
  for (const auto& p : s.params)
    os << "    --" << p.name << " (default " << p.default_value << ")  "
       << p.description << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const rlb::util::Cli cli(argc, argv);
    if (cli.get_bool("list")) {
      print_list(std::cout);
      return 0;
    }
    const std::string describe = cli.get("describe", "");
    if (!describe.empty()) {
      print_describe(std::cout, ScenarioRegistry::global().get(describe));
      return 0;
    }

    const std::string name = cli.get("scenario", "");
    if (name.empty()) {
      std::cerr << "usage: rlb_run --scenario=<name> [--threads=N] "
                   "[--csv=path] [--json=path] [scenario flags]\n"
                   "       rlb_run --list | --describe=<name>\n\n";
      print_list(std::cerr);
      return 2;
    }
    const Scenario& scenario = ScenarioRegistry::global().get(name);

    const int threads =
        rlb::engine::resolve_threads(static_cast<int>(cli.get_int(
            "threads", 0)));
    const std::string csv = cli.get("csv", "");
    const std::string json = cli.get("json", "");

    // Mark the scenario's declared parameters as known, then reject typos
    // BEFORE the (possibly hours-long) run rather than after.
    for (const auto& p : scenario.params) (void)cli.has(p.name);
    cli.finish();

    ScenarioContext ctx(cli, threads);
    const rlb::engine::ScenarioOutput out = scenario.run(ctx);

    rlb::engine::write_text(out, std::cout);
    if (!csv.empty())
      for (const auto& path : rlb::engine::write_csv(out, csv))
        std::cout << "csv written: " << path << "\n";
    if (!json.empty()) {
      rlb::engine::write_json(out, scenario.name, json);
      std::cout << "json written: " << json << "\n";
    }
    return 0;
  } catch (const rlb::engine::UnknownScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
