// rlb_run — the unified scenario driver.
//
//   rlb_run --list                         enumerate registered scenarios
//   rlb_run --list --markdown              render the scenario catalog
//                                          (docs/SCENARIOS.md is this
//                                          output, committed; CI diffs it)
//   rlb_run --describe=power_of_d          parameter schema for one
//   rlb_run --scenario=power_of_d          run it (parallel by default)
//           [--threads=8] [--replicas=4] [--csv=out.csv] [--json=out.json]
//           [--target-ci=0.01 [--confidence=0.95]
//            [--planner=geometric|variance] [--initial-jobs=N]
//            [--max-jobs=N] [--growth-factor=2]
//            [--warmup-policy=fixed|fraction] [--warmup-jobs=N]
//            [--warmup-fraction=0.1]]
//           [--baseline=ref.json [--rtol=...] [--atol=...]
//            [--baseline-ignore=col,col]]
//           [--cache=dir [--cache-mode=readwrite|readonly|refresh]
//            [--refine]]
//           [scenario-specific flags, e.g. --n=12 --jobs=500000]
//
// Every scenario derives its randomness from fixed per-cell (and, with
// --replicas, per-replica) seeds, so --threads changes wall-clock time
// only: parallel and serial runs emit bit-identical tables (timing
// columns, where a scenario reports them, are measured wall-clock and
// naturally vary). --replicas=R shards each big simulation cell into R
// parallel chains with merged statistics; it changes the output (R
// decorrelated streams) but the result is still thread-count invariant.
//
// --target-ci=EPS switches wired scenarios into the adaptive
// precision-targeted run length (docs/PRECISION.md): each cell grows its
// budget in rounds of replicas until the pooled CI half-width of the
// cell's target statistic falls below EPS (at --confidence) or
// --max-jobs caps out; cells report half_width / jobs_used / converged
// and remain bit-identical across --threads.
//
// --baseline re-runs the scenario and diffs its tables against a
// committed --json reference; numeric cells compare within --rtol/--atol
// (plain number or per-column "col=tol" list), string cells exactly, and
// drift exits with status 3.
//
// --cache=DIR gives sweep scenarios a persistent result cache
// (docs/CACHING.md): cells whose record matches the run's semantic
// coordinates load instead of simulating, and a warm re-run's output is
// byte-identical to the cold run's at any --threads. --cache-mode
// chooses readwrite/readonly/refresh; --refine lets a tighter
// --target-ci resume cached adaptive round state. The run ends with a
// "cache summary: hits=... misses=..." line.
#include <exception>
#include <iostream>
#include <optional>

#include "engine/baseline.h"
#include "engine/result_cache.h"
#include "engine/scenario.h"
#include "engine/sink.h"
#include "engine/sweep.h"
#include "util/cli.h"

namespace {

using rlb::engine::Scenario;
using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioRegistry;

void print_list(std::ostream& os) {
  os << "registered scenarios:\n";
  for (const Scenario* s : ScenarioRegistry::global().list())
    os << "  " << s->name << "  -  " << s->description << "\n";
}

void print_describe(std::ostream& os, const Scenario& s) {
  os << s.name << ": " << s.description << "\n";
  if (s.params.empty()) {
    os << "  (no parameters)\n";
    return;
  }
  os << "  parameters:\n";
  for (const auto& p : s.params)
    os << "    --" << p.name << " (default " << p.default_value << ")  "
       << p.description << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const rlb::util::Cli cli(argc, argv);
    if (cli.get_bool("list")) {
      if (cli.get_bool("markdown"))
        std::cout << rlb::engine::markdown_catalog(
            ScenarioRegistry::global().list());
      else
        print_list(std::cout);
      return 0;
    }
    const std::string describe = cli.get("describe", "");
    if (!describe.empty()) {
      print_describe(std::cout, ScenarioRegistry::global().get(describe));
      return 0;
    }

    const std::string name = cli.get("scenario", "");
    if (name.empty()) {
      std::cerr << "usage: rlb_run --scenario=<name> [--threads=N] "
                   "[--replicas=R] [--csv=path] [--json=path]\n"
                   "       [--target-ci=eps [--confidence=p] "
                   "[--planner=geometric|variance]\n"
                   "        [--initial-jobs=n] [--max-jobs=n] "
                   "[--growth-factor=g]\n"
                   "        [--warmup-policy=fixed|fraction] "
                   "[--warmup-jobs=n] [--warmup-fraction=f]]\n"
                   "       [--baseline=ref.json [--rtol=tol] [--atol=tol] "
                   "[--baseline-ignore=cols]]\n"
                   "       [--cache=dir "
                   "[--cache-mode=readwrite|readonly|refresh] [--refine]]\n"
                   "       [scenario flags]\n"
                   "       rlb_run --list [--markdown] | "
                   "--describe=<name>\n\n";
      print_list(std::cerr);
      return 2;
    }
    const Scenario& scenario = ScenarioRegistry::global().get(name);

    const int threads =
        rlb::engine::resolve_threads(static_cast<int>(cli.get_int(
            "threads", 0)));
    const int replicas = static_cast<int>(cli.get_int("replicas", 1));
    if (replicas < 1) {
      std::cerr << "error: --replicas must be >= 1\n";
      return 2;
    }
    const std::string csv = cli.get("csv", "");
    const std::string json = cli.get("json", "");

    const std::string baseline_path = cli.get("baseline", "");
    rlb::engine::BaselineOptions baseline_opts;
    baseline_opts.rtol =
        rlb::engine::ToleranceSpec::parse(cli.get("rtol", ""), 1e-9);
    baseline_opts.atol =
        rlb::engine::ToleranceSpec::parse(cli.get("atol", ""), 0.0);
    baseline_opts.ignore_columns =
        rlb::engine::parse_ignore_columns(cli.get("baseline-ignore", ""));
    // Read the baseline before the run so a bad path fails fast.
    std::string baseline_json;
    if (!baseline_path.empty())
      baseline_json = rlb::engine::read_text_file(baseline_path);

    const std::string cache_dir = cli.get("cache", "");
    // --refine / --cache-mode without --cache used to be consumed (so the
    // typo check passed) but silently did nothing; reject the combination
    // before anything runs.
    const std::string cache_err = rlb::engine::cache_cli_error(
        !cache_dir.empty(), cli.has("refine"), cli.has("cache-mode"));
    if (!cache_err.empty()) {
      std::cerr << "error: " << cache_err << "\n";
      return 2;
    }
    const rlb::engine::CacheMode cache_mode =
        rlb::engine::parse_cache_mode(cli.get("cache-mode", "readwrite"));
    std::optional<rlb::engine::ResultCache> cache;
    if (!cache_dir.empty()) cache.emplace(cache_dir, cache_mode);

    // Mark the scenario's declared parameters as known; constructing the
    // context parses (and thereby marks) the global --target-ci family
    // and --refine. Then reject typos BEFORE the (possibly hours-long)
    // run.
    for (const auto& p : scenario.params) (void)cli.has(p.name);
    ScenarioContext ctx(cli, threads, replicas,
                        cache ? &*cache : nullptr);
    cli.finish();

    const rlb::engine::ScenarioOutput out = scenario.run(ctx);

    rlb::engine::write_text(out, std::cout);
    if (cache) std::cout << cache->summary() << "\n";
    if (!csv.empty())
      for (const auto& path : rlb::engine::write_csv(out, csv))
        std::cout << "csv written: " << path << "\n";
    if (!json.empty()) {
      rlb::engine::write_json(out, scenario.name, json);
      std::cout << "json written: " << json << "\n";
    }
    if (!baseline_path.empty()) {
      const rlb::engine::BaselineReport report =
          rlb::engine::compare_to_baseline(out, baseline_json,
                                           baseline_opts);
      std::cout << report.describe() << "\n";
      if (!report.ok) return 3;
    }
    return 0;
  } catch (const rlb::engine::UnknownScenarioError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
