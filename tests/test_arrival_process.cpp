#include "sim/arrival_process.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sim/stats.h"
#include "sqd/mm_queues.h"

namespace {

using namespace rlb::sim;

TEST(RenewalArrivals, MatchesDistribution) {
  const auto d = make_exponential(2.0);
  RenewalArrivals a(*d);
  EXPECT_NEAR(a.mean_rate(), 2.0, 1e-12);
  Rng rng(1);
  StreamingMoments s;
  for (int i = 0; i < 200000; ++i) s.add(a.next(rng));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(MmppArrivals, MeanRateMatchesTheory) {
  // Phases at rates 3 and 1, switching 0.5 / 1.5: p1 = 1.5/2 = 0.75.
  MmppArrivals a(3.0, 1.0, 0.5, 1.5);
  EXPECT_NEAR(a.mean_rate(), 0.75 * 3.0 + 0.25 * 1.0, 1e-12);
  Rng rng(3);
  double total_time = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) total_time += a.next(rng);
  EXPECT_NEAR(n / total_time, a.mean_rate(), 0.02 * a.mean_rate());
}

TEST(MmppArrivals, BurstyFactoryHitsMeanRate) {
  for (double factor : {1.5, 3.0, 5.0}) {
    MmppArrivals a = MmppArrivals::bursty(2.0, factor, 10.0);
    EXPECT_NEAR(a.mean_rate(), 2.0, 1e-9) << factor;
    Rng rng(7);
    double total_time = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) total_time += a.next(rng);
    EXPECT_NEAR(n / total_time, 2.0, 0.05) << factor;
  }
}

TEST(MmppArrivals, InterarrivalsPositivelyCorrelated) {
  // Burstiness means gap lengths cluster by phase: lag-1 autocorrelation
  // > 0, unlike any renewal process. Use a moderate burst factor so BOTH
  // phases generate arrivals (an on/off process with a silent phase has
  // isolated long gaps and hence negative lag-1 correlation).
  MmppArrivals a = MmppArrivals::bursty(1.0, 1.8, 50.0);
  Rng rng(11);
  const int n = 300000;
  std::vector<double> gaps(n);
  for (auto& g : gaps) g = a.next(rng);
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= n;
  double cov = 0.0, var = 0.0;
  for (int i = 0; i + 1 < n; ++i) {
    cov += (gaps[i] - mean) * (gaps[i + 1] - mean);
    var += (gaps[i] - mean) * (gaps[i] - mean);
  }
  EXPECT_GT(cov / var, 0.05);
}

TEST(MmppArrivals, DegenerateSymmetricIsPoissonLike) {
  // Equal phase rates make the modulation invisible.
  MmppArrivals a(2.0, 2.0, 1.0, 1.0);
  Rng rng(13);
  StreamingMoments s;
  for (int i = 0; i < 200000; ++i) s.add(a.next(rng));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev() / s.mean(), 1.0, 0.02);  // CV of exponential
}

TEST(MmppArrivals, ClusterDelayExceedsPoissonAtEqualRate) {
  // The paper's future-work motivation: MAP burstiness inflates delay
  // beyond what any Poisson model predicts.
  const int n = 4;
  const double rho = 0.8;
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = 400'000;
  cfg.warmup = 40'000;
  cfg.seed = 17;
  const auto svc = make_exponential(1.0);

  SqdPolicy policy(n, 2);
  const auto arr_poisson = make_exponential(rho * n);
  const auto base = simulate_cluster(cfg, policy, *arr_poisson, *svc);

  MmppArrivals bursty = MmppArrivals::bursty(rho * n, 4.0, 25.0);
  const auto modulated = simulate_cluster(cfg, policy, bursty, *svc);

  EXPECT_GT(modulated.mean_sojourn, 1.3 * base.mean_sojourn);
}

TEST(MmppArrivals, ValidatesParameters) {
  EXPECT_THROW(MmppArrivals(0.0, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MmppArrivals(1.0, 1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MmppArrivals::bursty(1.0, 0.5, 1.0), std::invalid_argument);
}

TEST(MmppArrivals, ResetReturnsToInitialPhase) {
  MmppArrivals a = MmppArrivals::bursty(1.0, 5.0, 100.0);
  Rng rng1(23), rng2(23);
  std::vector<double> first;
  for (int i = 0; i < 50; ++i) first.push_back(a.next(rng1));
  a.reset();
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.next(rng2), first[i]);
}

}  // namespace
