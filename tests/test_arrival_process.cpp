#include "sim/arrival_process.h"

#include <cmath>
#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sim/stats.h"
#include "sqd/mm_queues.h"

namespace {

using namespace rlb::sim;

TEST(RenewalArrivals, MatchesDistribution) {
  const auto d = make_exponential(2.0);
  RenewalArrivals a(*d);
  EXPECT_NEAR(a.mean_rate(), 2.0, 1e-12);
  Rng rng(1);
  StreamingMoments s;
  for (int i = 0; i < 200000; ++i) s.add(a.next(rng));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(MmppArrivals, MeanRateMatchesTheory) {
  // Phases at rates 3 and 1, switching 0.5 / 1.5: p1 = 1.5/2 = 0.75.
  MmppArrivals a(3.0, 1.0, 0.5, 1.5);
  EXPECT_NEAR(a.mean_rate(), 0.75 * 3.0 + 0.25 * 1.0, 1e-12);
  Rng rng(3);
  double total_time = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) total_time += a.next(rng);
  EXPECT_NEAR(n / total_time, a.mean_rate(), 0.02 * a.mean_rate());
}

TEST(MmppArrivals, BurstyFactoryHitsMeanRate) {
  for (double factor : {1.5, 3.0, 5.0}) {
    MmppArrivals a = MmppArrivals::bursty(2.0, factor, 10.0);
    EXPECT_NEAR(a.mean_rate(), 2.0, 1e-9) << factor;
    Rng rng(7);
    double total_time = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) total_time += a.next(rng);
    EXPECT_NEAR(n / total_time, 2.0, 0.05) << factor;
  }
}

TEST(MmppArrivals, InterarrivalsPositivelyCorrelated) {
  // Burstiness means gap lengths cluster by phase: lag-1 autocorrelation
  // > 0, unlike any renewal process. Use a moderate burst factor so BOTH
  // phases generate arrivals (an on/off process with a silent phase has
  // isolated long gaps and hence negative lag-1 correlation).
  MmppArrivals a = MmppArrivals::bursty(1.0, 1.8, 50.0);
  Rng rng(11);
  const int n = 300000;
  std::vector<double> gaps(n);
  for (auto& g : gaps) g = a.next(rng);
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= n;
  double cov = 0.0, var = 0.0;
  for (int i = 0; i + 1 < n; ++i) {
    cov += (gaps[i] - mean) * (gaps[i + 1] - mean);
    var += (gaps[i] - mean) * (gaps[i] - mean);
  }
  EXPECT_GT(cov / var, 0.05);
}

TEST(MmppArrivals, DegenerateSymmetricIsPoissonLike) {
  // Equal phase rates make the modulation invisible.
  MmppArrivals a(2.0, 2.0, 1.0, 1.0);
  Rng rng(13);
  StreamingMoments s;
  for (int i = 0; i < 200000; ++i) s.add(a.next(rng));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev() / s.mean(), 1.0, 0.02);  // CV of exponential
}

TEST(MmppArrivals, ClusterDelayExceedsPoissonAtEqualRate) {
  // The paper's future-work motivation: MAP burstiness inflates delay
  // beyond what any Poisson model predicts.
  const int n = 4;
  const double rho = 0.8;
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = 400'000;
  cfg.warmup = 40'000;
  cfg.seed = 17;
  const auto svc = make_exponential(1.0);

  SqdPolicy policy(n, 2);
  const auto arr_poisson = make_exponential(rho * n);
  const auto base = simulate_cluster(cfg, policy, *arr_poisson, *svc);

  MmppArrivals bursty = MmppArrivals::bursty(rho * n, 4.0, 25.0);
  const auto modulated = simulate_cluster(cfg, policy, bursty, *svc);

  EXPECT_GT(modulated.mean_sojourn, 1.3 * base.mean_sojourn);
}

TEST(MmppArrivals, ValidatesParameters) {
  EXPECT_THROW(MmppArrivals(0.0, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MmppArrivals(1.0, 1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MmppArrivals::bursty(1.0, 0.5, 1.0), std::invalid_argument);
}

TEST(MmppArrivals, ResetReturnsToInitialPhase) {
  MmppArrivals a = MmppArrivals::bursty(1.0, 5.0, 100.0);
  Rng rng1(23), rng2(23);
  std::vector<double> first;
  for (int i = 0; i < 50; ++i) first.push_back(a.next(rng1));
  a.reset();
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.next(rng2), first[i]);
}

TEST(BatchArrivalProcess, PreservesMeanRate) {
  // Base rate lambda / b with mean batch b keeps the job rate at lambda:
  // the batch_arrivals scenario's equal-load construction.
  const double lambda = 2.0;
  for (double b : {1.0, 2.0, 5.0}) {
    for (auto sizes : {BatchArrivalProcess::BatchSizes::Geometric,
                       BatchArrivalProcess::BatchSizes::Fixed}) {
      if (sizes == BatchArrivalProcess::BatchSizes::Fixed &&
          b != std::floor(b))
        continue;
      const auto base = make_exponential(lambda / b);
      BatchArrivalProcess a(std::make_unique<RenewalArrivals>(*base), b,
                            sizes);
      EXPECT_NEAR(a.mean_rate(), lambda, 1e-12);
      Rng rng(29);
      double total_time = 0.0;
      const int n = 400000;
      for (int i = 0; i < n; ++i) total_time += a.next(rng);
      EXPECT_NEAR(n / total_time, lambda, 0.05 * lambda) << b;
    }
  }
}

TEST(BatchArrivalProcess, FixedBatchOfOneReproducesBaseStream) {
  // Degenerate batch size 1 draws nothing extra: bit-identical gaps.
  const auto base = make_exponential(3.0);
  RenewalArrivals plain(*base);
  BatchArrivalProcess batched(std::make_unique<RenewalArrivals>(*base), 1.0,
                              BatchArrivalProcess::BatchSizes::Fixed);
  Rng rng1(31), rng2(31);
  for (int i = 0; i < 1000; ++i)
    EXPECT_DOUBLE_EQ(batched.next(rng1), plain.next(rng2));
}

TEST(BatchArrivalProcess, FixedBatchesArriveTogether) {
  const auto base = make_exponential(1.0);
  BatchArrivalProcess a(std::make_unique<RenewalArrivals>(*base), 4.0,
                        BatchArrivalProcess::BatchSizes::Fixed);
  Rng rng(37);
  for (int epoch = 0; epoch < 100; ++epoch) {
    EXPECT_GT(a.next(rng), 0.0);  // the batch's first job ends the gap
    for (int j = 0; j < 3; ++j) EXPECT_EQ(a.next(rng), 0.0);
  }
}

TEST(BatchArrivalProcess, GeometricBatchSizesHaveRequestedMean) {
  const auto base = make_deterministic(1.0);
  BatchArrivalProcess a(std::make_unique<RenewalArrivals>(*base), 3.0,
                        BatchArrivalProcess::BatchSizes::Geometric);
  Rng rng(41);
  // Jobs per unit time = mean batch size when the base gap is exactly 1.
  const int epochs = 200000;
  std::uint64_t jobs = 0;
  double time = 0.0;
  while (time < epochs) {
    time += a.next(rng);
    ++jobs;
  }
  EXPECT_NEAR(static_cast<double>(jobs) / epochs, 3.0, 0.05);
}

TEST(BatchArrivalProcess, CloneCopiesMidBatchState) {
  const auto base = make_deterministic(1.0);
  BatchArrivalProcess a(std::make_unique<RenewalArrivals>(*base), 4.0,
                        BatchArrivalProcess::BatchSizes::Fixed);
  Rng rng(43);
  EXPECT_GT(a.next(rng), 0.0);  // open a batch of 4, 3 jobs remaining
  const auto clone = a.clone();
  Rng rng1(47), rng2(47);
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(a.next(rng1), clone->next(rng2));
}

TEST(BatchArrivalProcess, ResetClearsPendingBatch) {
  const auto base = make_deterministic(1.0);
  BatchArrivalProcess a(std::make_unique<RenewalArrivals>(*base), 4.0,
                        BatchArrivalProcess::BatchSizes::Fixed);
  Rng rng(53);
  EXPECT_GT(a.next(rng), 0.0);
  a.reset();
  EXPECT_GT(a.next(rng), 0.0);  // a fresh epoch, not a leftover zero gap
}

TEST(BatchArrivalProcess, ValidatesParameters) {
  const auto base = make_exponential(1.0);
  EXPECT_THROW(BatchArrivalProcess(nullptr, 2.0), std::invalid_argument);
  EXPECT_THROW(BatchArrivalProcess(std::make_unique<RenewalArrivals>(*base),
                                   0.5),
               std::invalid_argument);
  EXPECT_THROW(BatchArrivalProcess(std::make_unique<RenewalArrivals>(*base),
                                   2.5,
                                   BatchArrivalProcess::BatchSizes::Fixed),
               std::invalid_argument);
}

TEST(BatchArrivalProcess, NameDescribesTheCompound) {
  const auto base = make_exponential(1.0);
  BatchArrivalProcess a(std::make_unique<RenewalArrivals>(*base), 4.0,
                        BatchArrivalProcess::BatchSizes::Geometric);
  EXPECT_EQ(a.name(), "batch(geom,4)/renewal(exp)");
}

}  // namespace
