#include "sim/compact_cluster.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sqd/exact_reference.h"
#include "util/thread_budget.h"

namespace {

using namespace rlb::sim;

// ---------------------------------------------------------------------------
// LevelDirectory

TEST(LevelDirectory, StartsAllIdleInServerIndexOrder) {
  LevelDirectory dir(4);
  EXPECT_EQ(dir.servers(), 4);
  EXPECT_EQ(dir.max_level(), 0);
  EXPECT_EQ(dir.count_at(0), 4);
  EXPECT_EQ(dir.count_at(1), 0);
  EXPECT_EQ(dir.idle_count(), 4);
  EXPECT_EQ(dir.idle_head(), 0);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(dir.level_of(s), 0);
}

TEST(LevelDirectory, TracksLevelsThroughIncrementDecrement) {
  LevelDirectory dir(3);
  dir.increment(1);
  dir.increment(1);
  dir.increment(2);
  EXPECT_EQ(dir.level_of(0), 0);
  EXPECT_EQ(dir.level_of(1), 2);
  EXPECT_EQ(dir.level_of(2), 1);
  EXPECT_EQ(dir.max_level(), 2);
  EXPECT_EQ(dir.count_at(0), 1);
  EXPECT_EQ(dir.count_at(1), 1);
  EXPECT_EQ(dir.count_at(2), 1);
  EXPECT_EQ(dir.idle_count(), 1);

  dir.decrement(1);
  EXPECT_EQ(dir.level_of(1), 1);
  EXPECT_EQ(dir.max_level(), 1);
  EXPECT_EQ(dir.count_at(1), 2);
  dir.decrement(1);
  dir.decrement(2);
  EXPECT_EQ(dir.max_level(), 0);
  EXPECT_EQ(dir.idle_count(), 3);
}

TEST(LevelDirectory, IdleFifoIsFirstIdleFirstOut) {
  // Busy up 0..3 then idle them in the order 2, 0, 3, 1: the FIFO head
  // must walk that order, matching the legacy I-queue contract.
  LevelDirectory dir(4);
  for (int s = 0; s < 4; ++s) dir.increment(s);
  EXPECT_EQ(dir.idle_count(), 0);
  EXPECT_EQ(dir.idle_head(), -1);
  for (int s : {2, 0, 3, 1}) dir.decrement(s);
  EXPECT_EQ(dir.idle_head(), 2);
  dir.increment(2);
  EXPECT_EQ(dir.idle_head(), 0);
  dir.increment(0);
  EXPECT_EQ(dir.idle_head(), 3);
  // O(1) removal from the middle: retire 1 (the tail), head unchanged.
  dir.increment(1);
  EXPECT_EQ(dir.idle_head(), 3);
  dir.increment(3);
  EXPECT_EQ(dir.idle_head(), -1);
}

TEST(LevelDirectory, BlocksPartitionTheServers) {
  LevelDirectory dir(6);
  Rng rng(7);
  for (int step = 0; step < 2'000; ++step) {
    const int s = static_cast<int>(rng.uniform_int(6));
    if (dir.level_of(s) == 0 || rng.uniform_int(2) == 0)
      dir.increment(s);
    else
      dir.decrement(s);
    // Invariants: counts sum to n, every server is inside its block.
    int total = 0;
    for (int k = 0; k <= dir.max_level(); ++k) total += dir.count_at(k);
    ASSERT_EQ(total, 6);
    for (int v = 0; v < 6; ++v) {
      const int k = dir.level_of(v);
      bool found = false;
      for (int i = 0; i < dir.count_at(k); ++i)
        if (dir.at(k, i) == v) found = true;
      ASSERT_TRUE(found) << "server " << v << " missing from level " << k;
    }
  }
}

TEST(LevelDirectory, SampleAtLevelHitsEveryMember) {
  LevelDirectory dir(8);
  for (int s : {1, 3, 6}) dir.increment(s);
  Rng rng(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 3'000; ++i) ++hits[dir.sample_at_level(1, rng)];
  for (int s = 0; s < 8; ++s) {
    if (s == 1 || s == 3 || s == 6)
      EXPECT_GT(hits[s], 800);  // ~1000 each
    else
      EXPECT_EQ(hits[s], 0);
  }
  EXPECT_THROW(static_cast<void>(dir.sample_at_level(2, rng)),
               std::invalid_argument);
}

TEST(LevelDirectory, RandomizedStressMatchesReferenceModel) {
  // Layout-agnostic invariant stress at a size where blocks split and
  // merge constantly: drive the directory with random level moves and
  // check, against a naive reference (a level array plus an idle deque),
  // every observable the public API exposes — per-server levels, counts,
  // block partition, max level, and the FULL idle-FIFO order, head to
  // tail, via increment/decrement round trips on a probe copy.
  const int n = 64;
  LevelDirectory dir(n);
  std::vector<int> ref_level(n, 0);
  std::deque<int> ref_idle;
  for (int s = 0; s < n; ++s) ref_idle.push_back(s);

  Rng rng(2026);
  for (int step = 0; step < 20'000; ++step) {
    const int s = static_cast<int>(rng.uniform_int(n));
    if (ref_level[s] == 0 || rng.uniform_int(3) > 0) {
      dir.increment(s);
      if (ref_level[s] == 0)
        ref_idle.erase(std::find(ref_idle.begin(), ref_idle.end(), s));
      ++ref_level[s];
    } else {
      dir.decrement(s);
      --ref_level[s];
      if (ref_level[s] == 0) ref_idle.push_back(s);
    }

    ASSERT_EQ(dir.idle_count(), static_cast<int>(ref_idle.size()));
    ASSERT_EQ(dir.idle_head(), ref_idle.empty() ? -1 : ref_idle.front());
    const int ref_max = *std::max_element(ref_level.begin(), ref_level.end());
    ASSERT_EQ(dir.max_level(), ref_max);

    if (step % 500 != 0) continue;  // the full O(n) audit, periodically
    std::vector<int> ref_count(ref_max + 1, 0);
    for (int v = 0; v < n; ++v) {
      ASSERT_EQ(dir.level_of(v), ref_level[v]);
      ++ref_count[ref_level[v]];
    }
    int total = 0;
    for (int k = 0; k <= ref_max; ++k) {
      ASSERT_EQ(dir.count_at(k), ref_count[k]);
      total += dir.count_at(k);
      for (int i = 0; i < dir.count_at(k); ++i)
        ASSERT_EQ(dir.level_of(dir.at(k, i)), k);
    }
    ASSERT_EQ(total, n);
  }

  // Drain the idle FIFO by busying its head repeatedly: the heads must
  // come off in exactly the reference deque's order (first idle, first
  // out), pinning the whole linked-list order, not just the head.
  while (dir.idle_count() > 0) {
    const int head = dir.idle_head();
    ASSERT_EQ(head, ref_idle.front());
    ref_idle.pop_front();
    dir.increment(head);
  }
  EXPECT_EQ(dir.idle_head(), -1);
}

TEST(LevelDirectory, RejectsBadOperations) {
  LevelDirectory dir(2);
  EXPECT_THROW(dir.decrement(0), std::invalid_argument);
  EXPECT_THROW(LevelDirectory(0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(dir.count_at(-1)), std::invalid_argument);
}

TEST(LevelDirectory, ArmedRackFifosTrackBecameIdleOrderPerRack) {
  LevelDirectory dir(6);
  dir.arm_racks(2);
  EXPECT_EQ(dir.racks(), 2);
  // Time zero: each rack's FIFO holds its servers in index order.
  EXPECT_EQ(dir.rack_idle_head(0, 3), 0);
  EXPECT_EQ(dir.rack_idle_head(3, 6), 3);
  for (int s = 0; s < 6; ++s) dir.increment(s);
  EXPECT_EQ(dir.rack_idle_head(0, 3), -1);
  EXPECT_EQ(dir.rack_idle_head(3, 6), -1);
  // Idle them out of index order: each rack's head is its first-idled.
  for (int s : {4, 1, 3, 0}) dir.decrement(s);
  EXPECT_EQ(dir.rack_idle_head(0, 3), 1);
  EXPECT_EQ(dir.rack_idle_head(3, 6), 4);
  dir.increment(4);
  EXPECT_EQ(dir.rack_idle_head(3, 6), 3);
  dir.increment(1);
  EXPECT_EQ(dir.rack_idle_head(0, 3), 0);
  EXPECT_EQ(dir.idle_head(), 3);  // global FIFO unaffected: 3 idled first
}

TEST(LevelDirectory, ArmRacksValidatesAndUnarmedFallsBack) {
  LevelDirectory dir(6);
  EXPECT_THROW(dir.arm_racks(4), std::invalid_argument);  // 6 % 4 != 0
  EXPECT_THROW(dir.arm_racks(0), std::invalid_argument);
  dir.increment(0);
  EXPECT_THROW(dir.arm_racks(2), std::invalid_argument);  // not all idle
  // Unarmed directories answer through the base index-order scan.
  EXPECT_EQ(dir.racks(), 0);
  EXPECT_EQ(dir.rack_idle_head(0, 3), 1);
  EXPECT_EQ(dir.rack_idle_head(3, 6), 3);
}

TEST(LevelDirectory, RandomizedRackFifosMatchReferenceModel) {
  // Drive an armed directory with random level moves and check every
  // rack's idle head against per-rack reference deques — the per-rack
  // analogue of the global FIFO stress above.
  const int n = 12, racks = 3, per = n / racks;
  LevelDirectory dir(n);
  dir.arm_racks(racks);
  std::vector<int> ref_level(n, 0);
  std::vector<std::deque<int>> ref(racks);
  for (int s = 0; s < n; ++s) ref[s / per].push_back(s);

  Rng rng(515);
  for (int step = 0; step < 20'000; ++step) {
    const int s = static_cast<int>(rng.uniform_int(n));
    if (ref_level[s] == 0 || rng.uniform_int(3) > 0) {
      dir.increment(s);
      if (ref_level[s] == 0) {
        auto& q = ref[s / per];
        q.erase(std::find(q.begin(), q.end(), s));
      }
      ++ref_level[s];
    } else {
      dir.decrement(s);
      --ref_level[s];
      if (ref_level[s] == 0) ref[s / per].push_back(s);
    }
    for (int r = 0; r < racks; ++r)
      ASSERT_EQ(dir.rack_idle_head(r * per, (r + 1) * per),
                ref[r].empty() ? -1 : ref[r].front())
          << "rack " << r << " step " << step;
  }
}

// ---------------------------------------------------------------------------
// Engine equivalence: compact must be bit-identical to legacy.

ClusterResult run_with_engine(ClusterEngine engine, Policy& policy, int n,
                              int replicas = 1, int threads = 1,
                              std::uint64_t jobs = 60'000) {
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = 4242;
  cfg.replicas = replicas;
  cfg.engine = engine;
  const auto arr = make_exponential(0.9 * n);
  const auto svc = make_exponential(1.0);
  rlb::util::ThreadBudget budget(threads);
  return simulate_cluster(cfg, policy, *arr, *svc, budget);
}

void expect_identical(const ClusterResult& a, const ClusterResult& b,
                      const std::string& label) {
  EXPECT_DOUBLE_EQ(a.mean_sojourn, b.mean_sojourn) << label;
  EXPECT_DOUBLE_EQ(a.mean_wait, b.mean_wait) << label;
  EXPECT_DOUBLE_EQ(a.ci95_sojourn, b.ci95_sojourn) << label;
  EXPECT_DOUBLE_EQ(a.mean_jobs_in_system, b.mean_jobs_in_system) << label;
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization) << label;
  EXPECT_DOUBLE_EQ(a.p50_sojourn, b.p50_sojourn) << label;
  EXPECT_DOUBLE_EQ(a.p95_sojourn, b.p95_sojourn) << label;
  EXPECT_DOUBLE_EQ(a.p99_sojourn, b.p99_sojourn) << label;
  EXPECT_EQ(a.jobs_measured, b.jobs_measured) << label;
  EXPECT_DOUBLE_EQ(a.sim_time, b.sim_time) << label;
}

std::vector<std::unique_ptr<Policy>> symmetric_policies(int n) {
  std::vector<std::unique_ptr<Policy>> out;
  out.push_back(std::make_unique<SqdPolicy>(n, 1));
  out.push_back(std::make_unique<SqdPolicy>(n, 2));
  out.push_back(std::make_unique<JsqPolicy>());
  out.push_back(std::make_unique<JiqPolicy>(n));
  out.push_back(std::make_unique<JbtPolicy>(n, 2, 3));
  out.push_back(
      std::make_unique<JbtPolicy>(n, 2, 3, JbtPolicy::Fallback::Random));
  return out;
}

TEST(CompactCluster, BitIdenticalToLegacyForSymmetricPolicies) {
  const int n = 8;
  for (const auto& policy : symmetric_policies(n)) {
    const auto legacy = run_with_engine(ClusterEngine::kLegacy, *policy, n);
    const auto compact = run_with_engine(ClusterEngine::kCompact, *policy, n);
    expect_identical(legacy, compact, policy->name());
  }
}

TEST(CompactCluster, BitIdenticalToLegacyAtLargerFleet) {
  // Re-pin the equivalence at a fleet large enough that the packed
  // directory's blocks span many cache lines and the calendar resizes
  // through several doublings — sizes where a layout bug that preserves
  // small-n behavior would surface.
  const int n = 96;
  for (const auto& policy : symmetric_policies(n)) {
    const auto legacy =
        run_with_engine(ClusterEngine::kLegacy, *policy, n, 1, 1, 120'000);
    const auto compact =
        run_with_engine(ClusterEngine::kCompact, *policy, n, 1, 1, 120'000);
    expect_identical(legacy, compact, policy->name() + " n=96");
  }
}

TEST(CompactCluster, BitIdenticalAcrossReplicasAndThreads) {
  const int n = 6;
  for (const auto& policy : symmetric_policies(n)) {
    const auto legacy =
        run_with_engine(ClusterEngine::kLegacy, *policy, n, 3, 1);
    const auto compact =
        run_with_engine(ClusterEngine::kCompact, *policy, n, 3, 4);
    expect_identical(legacy, compact, policy->name() + " r=3");
  }
}

TEST(CompactCluster, BitIdenticalWithHeterogeneousSpeeds) {
  // Speeds shape service times identically on both engines (the policy's
  // information is still exchangeable queue lengths).
  const int n = 4;
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = 50'000;
  cfg.warmup = 5'000;
  cfg.seed = 777;
  cfg.server_speeds = {2.0, 1.0, 1.0, 0.5};
  const auto arr = make_exponential(0.8 * n);
  const auto svc = make_exponential(1.0);
  SqdPolicy policy(n, 2);
  cfg.engine = ClusterEngine::kLegacy;
  const auto legacy = simulate_cluster(cfg, policy, *arr, *svc);
  cfg.engine = ClusterEngine::kCompact;
  const auto compact = simulate_cluster(cfg, policy, *arr, *svc);
  expect_identical(legacy, compact, "sq(2) hetero");
}

TEST(CompactCluster, BitIdenticalOnTheAdaptivePath) {
  const int n = 5;
  const auto arr = make_exponential(0.85 * n);
  const auto svc = make_exponential(1.0);
  AdaptivePlan plan;
  plan.replicas = 2;
  plan.target_ci = 0.05;
  plan.initial_jobs = 20'000;
  plan.max_jobs = 160'000;
  plan.warmup_jobs = 1'000;
  plan.base_seed = 99;
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.seed = 99;
  JiqPolicy policy(n);
  cfg.engine = ClusterEngine::kLegacy;
  const auto legacy = simulate_cluster_adaptive(
      cfg, policy, *arr, *svc, plan, rlb::util::ThreadBudget::serial());
  cfg.engine = ClusterEngine::kCompact;
  rlb::util::ThreadBudget budget(4);
  const auto compact =
      simulate_cluster_adaptive(cfg, policy, *arr, *svc, plan, budget);
  expect_identical(legacy, compact, "jiq adaptive");
  EXPECT_EQ(legacy.adaptive.jobs_used, compact.adaptive.jobs_used);
  EXPECT_EQ(legacy.adaptive.rounds, compact.adaptive.rounds);
  EXPECT_DOUBLE_EQ(legacy.adaptive.half_width, compact.adaptive.half_width);
}

TEST(CompactCluster, AutoSelectsCompactForSymmetricPolicies) {
  // kAuto must equal kCompact for a symmetric policy and kLegacy for an
  // identity-aware one (round-robin still runs, on the legacy engine).
  const int n = 6;
  SqdPolicy sqd(n, 2);
  const auto auto_r = run_with_engine(ClusterEngine::kAuto, sqd, n);
  const auto compact_r = run_with_engine(ClusterEngine::kCompact, sqd, n);
  expect_identical(auto_r, compact_r, "sq(2) auto==compact");

  RoundRobinPolicy rr;
  const auto rr_auto = run_with_engine(ClusterEngine::kAuto, rr, n);
  const auto rr_legacy = run_with_engine(ClusterEngine::kLegacy, rr, n);
  expect_identical(rr_auto, rr_legacy, "round-robin auto==legacy");
}

TEST(CompactCluster, CompactEngineRejectsNonSymmetricPolicies) {
  RoundRobinPolicy rr;
  LeastWorkLeftPolicy lwl;
  EXPECT_THROW(run_with_engine(ClusterEngine::kCompact, rr, 4),
               std::invalid_argument);
  EXPECT_THROW(run_with_engine(ClusterEngine::kCompact, lwl, 4),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Rack topology (docs/TOPOLOGY.md)

ClusterResult run_topology(ClusterEngine engine, Policy& policy, int n,
                           const Topology& topo, int replicas = 1,
                           int threads = 1, double rho = 0.9,
                           std::uint64_t jobs = 60'000) {
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = 4242;
  cfg.replicas = replicas;
  cfg.engine = engine;
  cfg.topology = topo;
  const auto arr = make_exponential(rho * n);
  const auto svc = make_exponential(1.0);
  rlb::util::ThreadBudget budget(threads);
  return simulate_cluster(cfg, policy, *arr, *svc, budget);
}

std::vector<std::unique_ptr<Policy>> rack_policies(int n, int racks) {
  std::vector<std::unique_ptr<Policy>> out;
  out.push_back(std::make_unique<RackLocalSqdPolicy>(n, racks, 2));
  out.push_back(std::make_unique<RackLocalSqdPolicy>(n, racks, 2, 0));
  out.push_back(std::make_unique<RackLocalSqdPolicy>(n, racks, 3, 2));
  out.push_back(std::make_unique<RackJiqPolicy>(n, racks));
  return out;
}

TEST(RackTopology, ZeroPenaltyBlindPoliciesMatchTopologyBlindBitForBit) {
  // Racks without a penalty are unobservable to a blind policy: no home
  // draw happens and every output bit equals the untopologized run —
  // which is why no committed baseline moves under this PR.
  const int n = 8;
  Topology racked;
  racked.racks = 4;  // zero penalty
  for (const auto& policy : symmetric_policies(n)) {
    for (ClusterEngine engine :
         {ClusterEngine::kLegacy, ClusterEngine::kCompact}) {
      const auto blind = run_with_engine(engine, *policy, n);
      const auto topo = run_topology(engine, *policy, n, racked);
      expect_identical(blind, topo, policy->name() + " zero-penalty");
    }
  }
}

TEST(RackTopology, SingleRackPenaltyIsUnobservable) {
  // One rack means every dispatch is rack-local; the penalty fields are
  // inert and the run is bit-identical to the default topology.
  const int n = 6;
  Topology one_rack;
  one_rack.cross_latency = 2.0;
  one_rack.cross_capacity = 0.5;
  SqdPolicy sqd(n, 2);
  const auto blind = run_with_engine(ClusterEngine::kCompact, sqd, n);
  const auto topo = run_topology(ClusterEngine::kCompact, sqd, n, one_rack);
  expect_identical(blind, topo, "sq(2) single-rack");
}

TEST(RackTopology, CompactBitIdenticalToLegacyForRackPolicies) {
  // The engine-equivalence contract extends to locality-aware dispatch
  // under a real penalty: same home draws, same selections, same
  // penalized service times, bit for bit.
  const int n = 8, racks = 2;
  Topology topo;
  topo.racks = racks;
  topo.cross_latency = 0.5;
  for (const auto& policy : rack_policies(n, racks)) {
    const auto legacy = run_topology(ClusterEngine::kLegacy, *policy, n, topo);
    const auto compact =
        run_topology(ClusterEngine::kCompact, *policy, n, topo);
    expect_identical(legacy, compact, policy->name());
  }
  // Capacity-factor penalties exercise the other penalize() term.
  Topology slow;
  slow.racks = racks;
  slow.cross_capacity = 0.5;
  for (const auto& policy : rack_policies(n, racks)) {
    const auto legacy = run_topology(ClusterEngine::kLegacy, *policy, n, slow);
    const auto compact =
        run_topology(ClusterEngine::kCompact, *policy, n, slow);
    expect_identical(legacy, compact, policy->name() + " capacity");
  }
}

TEST(RackTopology, BlindPoliciesUnderPenaltyStayEngineIdentical) {
  // A penalized topology with a blind policy still draws home racks (the
  // penalty is observable) — both engines must agree on that stream too.
  const int n = 8;
  Topology topo;
  topo.racks = 4;
  topo.cross_latency = 1.0;
  for (const auto& policy : symmetric_policies(n)) {
    const auto legacy = run_topology(ClusterEngine::kLegacy, *policy, n, topo);
    const auto compact =
        run_topology(ClusterEngine::kCompact, *policy, n, topo);
    expect_identical(legacy, compact, policy->name() + " penalized");
  }
}

TEST(RackTopology, RackJiqStealOrderAuditAcrossEngines) {
  // The per-rack JIQ steal contract: when the home rack has no idle
  // server, both engines must steal the GLOBALLY longest-idle server.
  // Run the policy in lockstep at loads where steals are common (home
  // racks empty out constantly) and where they are rare, with a penalty
  // so any divergence in WHICH server was stolen changes the service
  // time and is caught bit-for-bit; replicas/threads shuffle nothing.
  const int n = 12, racks = 3;
  Topology topo;
  topo.racks = racks;
  topo.cross_latency = 0.25;
  for (double rho : {0.6, 0.95}) {
    RackJiqPolicy policy(n, racks);
    const auto legacy = run_topology(ClusterEngine::kLegacy, policy, n, topo,
                                     1, 1, rho, 80'000);
    const auto compact = run_topology(ClusterEngine::kCompact, policy, n,
                                      topo, 1, 1, rho, 80'000);
    expect_identical(legacy, compact,
                     "rack-jiq steal audit rho=" + std::to_string(rho));
    const auto sharded = run_topology(ClusterEngine::kCompact, policy, n,
                                      topo, 4, 4, rho, 80'000);
    const auto sharded_legacy = run_topology(
        ClusterEngine::kLegacy, policy, n, topo, 4, 1, rho, 80'000);
    expect_identical(sharded_legacy, sharded,
                     "rack-jiq steal audit sharded rho=" +
                         std::to_string(rho));
  }
}

TEST(RackTopology, PenaltyActuallyHurtsBlindDispatch) {
  // Sanity on the model itself: a blind sq(2) pays cross-rack latency on
  // most dispatches, so its delay must climb well beyond the zero-penalty
  // run; the no-spill rack-local policy never pays it.
  const int n = 8;
  Topology topo;
  topo.racks = 4;
  topo.cross_latency = 2.0;
  SqdPolicy blind(n, 2);
  const auto base = run_with_engine(ClusterEngine::kCompact, blind, n);
  const auto hurt = run_topology(ClusterEngine::kCompact, blind, n, topo);
  EXPECT_GT(hurt.mean_sojourn, base.mean_sojourn + 1.0);
  RackLocalSqdPolicy local(n, 4, 2, 0);
  Topology racked_free;
  racked_free.racks = 4;  // zero penalty
  const auto contained =
      run_topology(ClusterEngine::kCompact, local, n, topo, 1, 1, 0.7);
  const auto contained_base =
      run_topology(ClusterEngine::kCompact, local, n, racked_free, 1, 1, 0.7);
  // Same policy, same seeds: zero penalty and huge penalty agree exactly
  // because no dispatch ever leaves its rack.
  expect_identical(contained, contained_base, "no-spill contains penalty");
}

TEST(RackTopology, NoSpillZeroPenaltyMatchesTheExactPerRackSolver) {
  // At zero penalty the no-spill policy partitions the cluster into
  // independent per-rack SQ(d) systems, so the paper's exact solver for
  // a 4-server SQ(2) cluster predicts the simulated sojourn (the
  // rack_locality scenario's zero_penalty_check column). rho 0.70 keeps
  // the solver's truncation mass at cap 26 around 1e-4; at higher loads
  // the truncated solve visibly underestimates the true delay.
  const int n = 8, racks = 2, per = 4, d = 2;
  const double rho = 0.70;
  Topology topo;
  topo.racks = racks;  // zero penalty
  RackLocalSqdPolicy local(n, racks, d, 0);
  const auto sim = run_topology(ClusterEngine::kCompact, local, n, topo, 4,
                                1, rho, 2'000'000);
  const auto exact = rlb::sqd::solve_exact_truncated(
      rlb::sqd::Params{per, d, rho, 1.0}, 26);
  EXPECT_NEAR(sim.mean_sojourn, exact.mean_delay,
              0.02 * exact.mean_delay);
}

TEST(RackTopology, ValidatesConfiguration) {
  SqdPolicy sqd(6, 2);
  Topology bad;
  bad.racks = 4;  // 6 % 4 != 0
  EXPECT_THROW(run_topology(ClusterEngine::kLegacy, sqd, 6, bad),
               std::invalid_argument);
  Topology negative;
  negative.cross_latency = -1.0;
  EXPECT_THROW(run_topology(ClusterEngine::kLegacy, sqd, 6, negative),
               std::invalid_argument);
  Topology zero_cap;
  zero_cap.cross_capacity = 0.0;
  EXPECT_THROW(run_topology(ClusterEngine::kLegacy, sqd, 6, zero_cap),
               std::invalid_argument);
  // A rack policy built for 2 racks cannot run on 3 (or on the default
  // single-rack topology).
  RackLocalSqdPolicy rsqd(6, 2, 2);
  Topology three;
  three.racks = 3;
  EXPECT_THROW(run_topology(ClusterEngine::kCompact, rsqd, 6, three),
               std::invalid_argument);
  EXPECT_THROW(run_with_engine(ClusterEngine::kCompact, rsqd, 6),
               std::invalid_argument);
  Topology two;
  two.racks = 2;
  EXPECT_NO_THROW(run_topology(ClusterEngine::kCompact, rsqd, 6, two));
}

TEST(CompactCluster, HistogramJsqMatchesJsqStatistically) {
  // jsq-h draws a uniform minimum-level server in O(1); same distribution
  // as the jsq scan, different stream. Means must agree within CIs.
  const int n = 8;
  JsqPolicy jsq;
  HistogramJsqPolicy jsqh;
  const auto a =
      run_with_engine(ClusterEngine::kCompact, jsq, n, 1, 1, 300'000);
  const auto b =
      run_with_engine(ClusterEngine::kCompact, jsqh, n, 1, 1, 300'000);
  EXPECT_NEAR(a.mean_sojourn, b.mean_sojourn,
              3.0 * (a.ci95_sojourn + b.ci95_sojourn) + 0.01);
  // And jsq-h itself is engine-bit-identical (its two paths share the
  // distribution but the ENGINE contract is about one policy run twice).
  const auto legacy_h =
      run_with_engine(ClusterEngine::kLegacy, jsqh, n, 1, 1, 60'000);
  const auto compact_h =
      run_with_engine(ClusterEngine::kCompact, jsqh, n, 1, 1, 60'000);
  EXPECT_NEAR(legacy_h.mean_sojourn, compact_h.mean_sojourn,
              3.0 * (legacy_h.ci95_sojourn + compact_h.ci95_sojourn) + 0.01);
}

}  // namespace
