#include "sim/compact_cluster.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "util/thread_budget.h"

namespace {

using namespace rlb::sim;

// ---------------------------------------------------------------------------
// LevelDirectory

TEST(LevelDirectory, StartsAllIdleInServerIndexOrder) {
  LevelDirectory dir(4);
  EXPECT_EQ(dir.servers(), 4);
  EXPECT_EQ(dir.max_level(), 0);
  EXPECT_EQ(dir.count_at(0), 4);
  EXPECT_EQ(dir.count_at(1), 0);
  EXPECT_EQ(dir.idle_count(), 4);
  EXPECT_EQ(dir.idle_head(), 0);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(dir.level_of(s), 0);
}

TEST(LevelDirectory, TracksLevelsThroughIncrementDecrement) {
  LevelDirectory dir(3);
  dir.increment(1);
  dir.increment(1);
  dir.increment(2);
  EXPECT_EQ(dir.level_of(0), 0);
  EXPECT_EQ(dir.level_of(1), 2);
  EXPECT_EQ(dir.level_of(2), 1);
  EXPECT_EQ(dir.max_level(), 2);
  EXPECT_EQ(dir.count_at(0), 1);
  EXPECT_EQ(dir.count_at(1), 1);
  EXPECT_EQ(dir.count_at(2), 1);
  EXPECT_EQ(dir.idle_count(), 1);

  dir.decrement(1);
  EXPECT_EQ(dir.level_of(1), 1);
  EXPECT_EQ(dir.max_level(), 1);
  EXPECT_EQ(dir.count_at(1), 2);
  dir.decrement(1);
  dir.decrement(2);
  EXPECT_EQ(dir.max_level(), 0);
  EXPECT_EQ(dir.idle_count(), 3);
}

TEST(LevelDirectory, IdleFifoIsFirstIdleFirstOut) {
  // Busy up 0..3 then idle them in the order 2, 0, 3, 1: the FIFO head
  // must walk that order, matching the legacy I-queue contract.
  LevelDirectory dir(4);
  for (int s = 0; s < 4; ++s) dir.increment(s);
  EXPECT_EQ(dir.idle_count(), 0);
  EXPECT_EQ(dir.idle_head(), -1);
  for (int s : {2, 0, 3, 1}) dir.decrement(s);
  EXPECT_EQ(dir.idle_head(), 2);
  dir.increment(2);
  EXPECT_EQ(dir.idle_head(), 0);
  dir.increment(0);
  EXPECT_EQ(dir.idle_head(), 3);
  // O(1) removal from the middle: retire 1 (the tail), head unchanged.
  dir.increment(1);
  EXPECT_EQ(dir.idle_head(), 3);
  dir.increment(3);
  EXPECT_EQ(dir.idle_head(), -1);
}

TEST(LevelDirectory, BlocksPartitionTheServers) {
  LevelDirectory dir(6);
  Rng rng(7);
  for (int step = 0; step < 2'000; ++step) {
    const int s = static_cast<int>(rng.uniform_int(6));
    if (dir.level_of(s) == 0 || rng.uniform_int(2) == 0)
      dir.increment(s);
    else
      dir.decrement(s);
    // Invariants: counts sum to n, every server is inside its block.
    int total = 0;
    for (int k = 0; k <= dir.max_level(); ++k) total += dir.count_at(k);
    ASSERT_EQ(total, 6);
    for (int v = 0; v < 6; ++v) {
      const int k = dir.level_of(v);
      bool found = false;
      for (int i = 0; i < dir.count_at(k); ++i)
        if (dir.at(k, i) == v) found = true;
      ASSERT_TRUE(found) << "server " << v << " missing from level " << k;
    }
  }
}

TEST(LevelDirectory, SampleAtLevelHitsEveryMember) {
  LevelDirectory dir(8);
  for (int s : {1, 3, 6}) dir.increment(s);
  Rng rng(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 3'000; ++i) ++hits[dir.sample_at_level(1, rng)];
  for (int s = 0; s < 8; ++s) {
    if (s == 1 || s == 3 || s == 6)
      EXPECT_GT(hits[s], 800);  // ~1000 each
    else
      EXPECT_EQ(hits[s], 0);
  }
  EXPECT_THROW(static_cast<void>(dir.sample_at_level(2, rng)),
               std::invalid_argument);
}

TEST(LevelDirectory, RandomizedStressMatchesReferenceModel) {
  // Layout-agnostic invariant stress at a size where blocks split and
  // merge constantly: drive the directory with random level moves and
  // check, against a naive reference (a level array plus an idle deque),
  // every observable the public API exposes — per-server levels, counts,
  // block partition, max level, and the FULL idle-FIFO order, head to
  // tail, via increment/decrement round trips on a probe copy.
  const int n = 64;
  LevelDirectory dir(n);
  std::vector<int> ref_level(n, 0);
  std::deque<int> ref_idle;
  for (int s = 0; s < n; ++s) ref_idle.push_back(s);

  Rng rng(2026);
  for (int step = 0; step < 20'000; ++step) {
    const int s = static_cast<int>(rng.uniform_int(n));
    if (ref_level[s] == 0 || rng.uniform_int(3) > 0) {
      dir.increment(s);
      if (ref_level[s] == 0)
        ref_idle.erase(std::find(ref_idle.begin(), ref_idle.end(), s));
      ++ref_level[s];
    } else {
      dir.decrement(s);
      --ref_level[s];
      if (ref_level[s] == 0) ref_idle.push_back(s);
    }

    ASSERT_EQ(dir.idle_count(), static_cast<int>(ref_idle.size()));
    ASSERT_EQ(dir.idle_head(), ref_idle.empty() ? -1 : ref_idle.front());
    const int ref_max = *std::max_element(ref_level.begin(), ref_level.end());
    ASSERT_EQ(dir.max_level(), ref_max);

    if (step % 500 != 0) continue;  // the full O(n) audit, periodically
    std::vector<int> ref_count(ref_max + 1, 0);
    for (int v = 0; v < n; ++v) {
      ASSERT_EQ(dir.level_of(v), ref_level[v]);
      ++ref_count[ref_level[v]];
    }
    int total = 0;
    for (int k = 0; k <= ref_max; ++k) {
      ASSERT_EQ(dir.count_at(k), ref_count[k]);
      total += dir.count_at(k);
      for (int i = 0; i < dir.count_at(k); ++i)
        ASSERT_EQ(dir.level_of(dir.at(k, i)), k);
    }
    ASSERT_EQ(total, n);
  }

  // Drain the idle FIFO by busying its head repeatedly: the heads must
  // come off in exactly the reference deque's order (first idle, first
  // out), pinning the whole linked-list order, not just the head.
  while (dir.idle_count() > 0) {
    const int head = dir.idle_head();
    ASSERT_EQ(head, ref_idle.front());
    ref_idle.pop_front();
    dir.increment(head);
  }
  EXPECT_EQ(dir.idle_head(), -1);
}

TEST(LevelDirectory, RejectsBadOperations) {
  LevelDirectory dir(2);
  EXPECT_THROW(dir.decrement(0), std::invalid_argument);
  EXPECT_THROW(LevelDirectory(0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(dir.count_at(-1)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Engine equivalence: compact must be bit-identical to legacy.

ClusterResult run_with_engine(ClusterEngine engine, Policy& policy, int n,
                              int replicas = 1, int threads = 1,
                              std::uint64_t jobs = 60'000) {
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = 4242;
  cfg.replicas = replicas;
  cfg.engine = engine;
  const auto arr = make_exponential(0.9 * n);
  const auto svc = make_exponential(1.0);
  rlb::util::ThreadBudget budget(threads);
  return simulate_cluster(cfg, policy, *arr, *svc, budget);
}

void expect_identical(const ClusterResult& a, const ClusterResult& b,
                      const std::string& label) {
  EXPECT_DOUBLE_EQ(a.mean_sojourn, b.mean_sojourn) << label;
  EXPECT_DOUBLE_EQ(a.mean_wait, b.mean_wait) << label;
  EXPECT_DOUBLE_EQ(a.ci95_sojourn, b.ci95_sojourn) << label;
  EXPECT_DOUBLE_EQ(a.mean_jobs_in_system, b.mean_jobs_in_system) << label;
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization) << label;
  EXPECT_DOUBLE_EQ(a.p50_sojourn, b.p50_sojourn) << label;
  EXPECT_DOUBLE_EQ(a.p95_sojourn, b.p95_sojourn) << label;
  EXPECT_DOUBLE_EQ(a.p99_sojourn, b.p99_sojourn) << label;
  EXPECT_EQ(a.jobs_measured, b.jobs_measured) << label;
  EXPECT_DOUBLE_EQ(a.sim_time, b.sim_time) << label;
}

std::vector<std::unique_ptr<Policy>> symmetric_policies(int n) {
  std::vector<std::unique_ptr<Policy>> out;
  out.push_back(std::make_unique<SqdPolicy>(n, 1));
  out.push_back(std::make_unique<SqdPolicy>(n, 2));
  out.push_back(std::make_unique<JsqPolicy>());
  out.push_back(std::make_unique<JiqPolicy>(n));
  out.push_back(std::make_unique<JbtPolicy>(n, 2, 3));
  out.push_back(
      std::make_unique<JbtPolicy>(n, 2, 3, JbtPolicy::Fallback::Random));
  return out;
}

TEST(CompactCluster, BitIdenticalToLegacyForSymmetricPolicies) {
  const int n = 8;
  for (const auto& policy : symmetric_policies(n)) {
    const auto legacy = run_with_engine(ClusterEngine::kLegacy, *policy, n);
    const auto compact = run_with_engine(ClusterEngine::kCompact, *policy, n);
    expect_identical(legacy, compact, policy->name());
  }
}

TEST(CompactCluster, BitIdenticalToLegacyAtLargerFleet) {
  // Re-pin the equivalence at a fleet large enough that the packed
  // directory's blocks span many cache lines and the calendar resizes
  // through several doublings — sizes where a layout bug that preserves
  // small-n behavior would surface.
  const int n = 96;
  for (const auto& policy : symmetric_policies(n)) {
    const auto legacy =
        run_with_engine(ClusterEngine::kLegacy, *policy, n, 1, 1, 120'000);
    const auto compact =
        run_with_engine(ClusterEngine::kCompact, *policy, n, 1, 1, 120'000);
    expect_identical(legacy, compact, policy->name() + " n=96");
  }
}

TEST(CompactCluster, BitIdenticalAcrossReplicasAndThreads) {
  const int n = 6;
  for (const auto& policy : symmetric_policies(n)) {
    const auto legacy =
        run_with_engine(ClusterEngine::kLegacy, *policy, n, 3, 1);
    const auto compact =
        run_with_engine(ClusterEngine::kCompact, *policy, n, 3, 4);
    expect_identical(legacy, compact, policy->name() + " r=3");
  }
}

TEST(CompactCluster, BitIdenticalWithHeterogeneousSpeeds) {
  // Speeds shape service times identically on both engines (the policy's
  // information is still exchangeable queue lengths).
  const int n = 4;
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = 50'000;
  cfg.warmup = 5'000;
  cfg.seed = 777;
  cfg.server_speeds = {2.0, 1.0, 1.0, 0.5};
  const auto arr = make_exponential(0.8 * n);
  const auto svc = make_exponential(1.0);
  SqdPolicy policy(n, 2);
  cfg.engine = ClusterEngine::kLegacy;
  const auto legacy = simulate_cluster(cfg, policy, *arr, *svc);
  cfg.engine = ClusterEngine::kCompact;
  const auto compact = simulate_cluster(cfg, policy, *arr, *svc);
  expect_identical(legacy, compact, "sq(2) hetero");
}

TEST(CompactCluster, BitIdenticalOnTheAdaptivePath) {
  const int n = 5;
  const auto arr = make_exponential(0.85 * n);
  const auto svc = make_exponential(1.0);
  AdaptivePlan plan;
  plan.replicas = 2;
  plan.target_ci = 0.05;
  plan.initial_jobs = 20'000;
  plan.max_jobs = 160'000;
  plan.warmup_jobs = 1'000;
  plan.base_seed = 99;
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.seed = 99;
  JiqPolicy policy(n);
  cfg.engine = ClusterEngine::kLegacy;
  const auto legacy = simulate_cluster_adaptive(
      cfg, policy, *arr, *svc, plan, rlb::util::ThreadBudget::serial());
  cfg.engine = ClusterEngine::kCompact;
  rlb::util::ThreadBudget budget(4);
  const auto compact =
      simulate_cluster_adaptive(cfg, policy, *arr, *svc, plan, budget);
  expect_identical(legacy, compact, "jiq adaptive");
  EXPECT_EQ(legacy.adaptive.jobs_used, compact.adaptive.jobs_used);
  EXPECT_EQ(legacy.adaptive.rounds, compact.adaptive.rounds);
  EXPECT_DOUBLE_EQ(legacy.adaptive.half_width, compact.adaptive.half_width);
}

TEST(CompactCluster, AutoSelectsCompactForSymmetricPolicies) {
  // kAuto must equal kCompact for a symmetric policy and kLegacy for an
  // identity-aware one (round-robin still runs, on the legacy engine).
  const int n = 6;
  SqdPolicy sqd(n, 2);
  const auto auto_r = run_with_engine(ClusterEngine::kAuto, sqd, n);
  const auto compact_r = run_with_engine(ClusterEngine::kCompact, sqd, n);
  expect_identical(auto_r, compact_r, "sq(2) auto==compact");

  RoundRobinPolicy rr;
  const auto rr_auto = run_with_engine(ClusterEngine::kAuto, rr, n);
  const auto rr_legacy = run_with_engine(ClusterEngine::kLegacy, rr, n);
  expect_identical(rr_auto, rr_legacy, "round-robin auto==legacy");
}

TEST(CompactCluster, CompactEngineRejectsNonSymmetricPolicies) {
  RoundRobinPolicy rr;
  LeastWorkLeftPolicy lwl;
  EXPECT_THROW(run_with_engine(ClusterEngine::kCompact, rr, 4),
               std::invalid_argument);
  EXPECT_THROW(run_with_engine(ClusterEngine::kCompact, lwl, 4),
               std::invalid_argument);
}

TEST(CompactCluster, HistogramJsqMatchesJsqStatistically) {
  // jsq-h draws a uniform minimum-level server in O(1); same distribution
  // as the jsq scan, different stream. Means must agree within CIs.
  const int n = 8;
  JsqPolicy jsq;
  HistogramJsqPolicy jsqh;
  const auto a =
      run_with_engine(ClusterEngine::kCompact, jsq, n, 1, 1, 300'000);
  const auto b =
      run_with_engine(ClusterEngine::kCompact, jsqh, n, 1, 1, 300'000);
  EXPECT_NEAR(a.mean_sojourn, b.mean_sojourn,
              3.0 * (a.ci95_sojourn + b.ci95_sojourn) + 0.01);
  // And jsq-h itself is engine-bit-identical (its two paths share the
  // distribution but the ENGINE contract is about one policy run twice).
  const auto legacy_h =
      run_with_engine(ClusterEngine::kLegacy, jsqh, n, 1, 1, 60'000);
  const auto compact_h =
      run_with_engine(ClusterEngine::kCompact, jsqh, n, 1, 1, 60'000);
  EXPECT_NEAR(legacy_h.mean_sojourn, compact_h.mean_sojourn,
              3.0 * (legacy_h.ci95_sojourn + compact_h.ci95_sojourn) + 0.01);
}

}  // namespace
