// Property tests for the engine's JSON reader/writer (engine/json.h).
// The result cache's bit-identity contract rests on two invariants
// checked here over randomized inputs: encode(parse(s)) == s for
// anything encode() emits (numbers re-emit their verbatim token), and
// parse(encode(tree)) reproduces the tree for any tree the builders can
// construct — including string escapes, control bytes, deep nesting,
// subnormal/huge doubles, and uint64 counters beyond 2^53.
#include "engine/json.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using rlb::engine::json::encode;
using rlb::engine::json::make_bool;
using rlb::engine::json::make_number;
using rlb::engine::json::make_string;
using rlb::engine::json::number_of;
using rlb::engine::json::parse;
using rlb::engine::json::uint64_of;
using rlb::engine::json::Value;

/// splitmix64: the repo's standard deterministic test stream.
std::uint64_t next_random(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double random_double(std::uint64_t& state) {
  switch (next_random(state) % 8) {
    case 0:  // uniform in (0, 1)
      return static_cast<double>(next_random(state) >> 11) * 0x1.0p-53;
    case 1:  // large magnitude
      return 1e300 * (static_cast<double>(next_random(state) >> 11) *
                          0x1.0p-53 -
                      0.5);
    case 2:  // subnormal neighbourhood
      return 5e-324 * static_cast<double>(next_random(state) % 1000);
    case 3:  // negative moderate
      return -static_cast<double>(next_random(state) % 1'000'000) / 7.0;
    case 4:  // exact small integer
      return static_cast<double>(next_random(state) % 100);
    case 5:  // reinterpret random bits, rerolling non-finite patterns
    {
      for (;;) {
        const std::uint64_t bits = next_random(state);
        const double x = *reinterpret_cast<const double*>(&bits);
        if (std::isfinite(x)) return x;
      }
    }
    case 6:
      return std::numeric_limits<double>::max();
    default:
      return std::numeric_limits<double>::denorm_min();
  }
}

std::string random_string(std::uint64_t& state) {
  const std::size_t len = next_random(state) % 24;
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    switch (next_random(state) % 6) {
      case 0:  // printable ASCII
        out.push_back(static_cast<char>(' ' + next_random(state) % 95));
        break;
      case 1:  // named escapes
        out.push_back("\"\\\n\t\r\b\f"[next_random(state) % 7]);
        break;
      case 2:  // raw control byte (\u00XX path)
        out.push_back(static_cast<char>(next_random(state) % 0x20));
        break;
      case 3:  // high/latin-1 byte
        out.push_back(static_cast<char>(0x80 + next_random(state) % 0x80));
        break;
      default:
        out.push_back(static_cast<char>('a' + next_random(state) % 26));
    }
  }
  return out;
}

/// A random Value tree the builders could have produced. `depth` bounds
/// recursion; leaves dominate so trees stay small but varied.
Value random_tree(std::uint64_t& state, int depth) {
  const std::uint64_t pick = next_random(state) % (depth > 0 ? 8 : 5);
  switch (pick) {
    case 0:
      return Value{};  // null
    case 1:
      return make_bool((next_random(state) & 1) != 0);
    case 2:
      return make_string(random_string(state));
    case 3:
      return make_number(random_double(state));
    case 4:
      // uint64 counters, biased to the >2^53 range the double path loses
      return make_number(
          static_cast<std::uint64_t>(next_random(state) | (1ull << 60)));
    case 5: {
      Value arr;
      arr.kind = Value::Kind::Array;
      const std::size_t n = next_random(state) % 4;
      for (std::size_t i = 0; i < n; ++i)
        arr.items.push_back(random_tree(state, depth - 1));
      return arr;
    }
    default: {
      Value obj;
      obj.kind = Value::Kind::Object;
      const std::size_t n = next_random(state) % 4;
      for (std::size_t i = 0; i < n; ++i)
        obj.members.emplace_back("k" + std::to_string(i) +
                                     random_string(state),
                                 random_tree(state, depth - 1));
      return obj;
    }
  }
}

void expect_same_tree(const Value& a, const Value& b) {
  ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
  switch (a.kind) {
    case Value::Kind::Null:
      break;
    case Value::Kind::Bool:
      EXPECT_EQ(a.boolean, b.boolean);
      break;
    case Value::Kind::Number:
      EXPECT_EQ(a.text, b.text);  // verbatim token survives
      if (std::isnan(a.number))
        EXPECT_TRUE(std::isnan(b.number));
      else
        EXPECT_EQ(a.number, b.number);  // bitwise-equal double
      break;
    case Value::Kind::String:
      EXPECT_EQ(a.text, b.text);
      break;
    case Value::Kind::Array:
      ASSERT_EQ(a.items.size(), b.items.size());
      for (std::size_t i = 0; i < a.items.size(); ++i)
        expect_same_tree(a.items[i], b.items[i]);
      break;
    case Value::Kind::Object:
      ASSERT_EQ(a.members.size(), b.members.size());
      for (std::size_t i = 0; i < a.members.size(); ++i) {
        EXPECT_EQ(a.members[i].first, b.members[i].first);
        expect_same_tree(a.members[i].second, b.members[i].second);
      }
      break;
  }
}

TEST(JsonRoundTrip, RandomTreesSurviveEncodeParseEncode) {
  std::uint64_t state = 0x1234'5678'9abc'def0ull;
  for (int trial = 0; trial < 500; ++trial) {
    const Value tree = random_tree(state, 4);
    const std::string text = encode(tree);
    Value reparsed;
    ASSERT_NO_THROW(reparsed = parse(text)) << "trial " << trial << ": "
                                            << text;
    {
      SCOPED_TRACE("trial " + std::to_string(trial) + ": " + text);
      expect_same_tree(tree, reparsed);
    }
    // The fixpoint property the result cache leans on: once through the
    // writer, the bytes are stable forever.
    EXPECT_EQ(encode(reparsed), text) << "trial " << trial;
  }
}

TEST(JsonRoundTrip, RandomDoublesRoundTripBitExactly) {
  std::uint64_t state = 0xfeed'face'cafe'beefull;
  for (int trial = 0; trial < 2000; ++trial) {
    const double x = random_double(state);
    const Value v = parse(encode(make_number(x)));
    EXPECT_EQ(number_of(v), x) << "trial " << trial << " x=" << x;
  }
}

TEST(JsonRoundTrip, NonFiniteDoublesUseTheStringSpellings) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(encode(make_number(inf)), "\"inf\"");
  EXPECT_EQ(encode(make_number(-inf)), "\"-inf\"");
  EXPECT_EQ(encode(make_number(std::numeric_limits<double>::quiet_NaN())),
            "\"nan\"");
  EXPECT_EQ(number_of(parse("\"inf\"")), inf);
  EXPECT_EQ(number_of(parse("\"-inf\"")), -inf);
  EXPECT_TRUE(std::isnan(number_of(parse("\"nan\""))));
}

TEST(JsonRoundTrip, Uint64CountersBeyondDoublePrecisionAreExact) {
  std::uint64_t state = 42;
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t x = next_random(state);
    const Value v = parse(encode(make_number(x)));
    EXPECT_EQ(uint64_of(v), x) << "trial " << trial;
  }
  // The canonical lossy-double witness: 2^53 + 1.
  const std::uint64_t odd = (1ull << 53) + 1;
  EXPECT_EQ(uint64_of(parse(encode(make_number(odd)))), odd);
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(uint64_of(parse(encode(make_number(top)))), top);
}

TEST(JsonNumbers, SubnormalAndExtremeTokensParse) {
  // glibc strtod flags subnormals ERANGE; the parser must accept them
  // (underflow is a faithful parse) while rejecting true overflow.
  EXPECT_EQ(parse("5e-324").number,
            std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(parse("4.9406564584124654e-324").number,
            std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(parse("1e-400").number, 0.0);  // underflow to zero: fine
  EXPECT_EQ(parse("1.7976931348623157e+308").number,
            std::numeric_limits<double>::max());
  EXPECT_THROW(parse("1e400"), std::invalid_argument);   // overflow
  EXPECT_THROW(parse("-1e400"), std::invalid_argument);
}

TEST(JsonNumbers, MalformedTokensAreRejected) {
  for (const char* bad : {"1e-", "1.2.3", "--1", "+1", ".", "1e", "-",
                          "01x", "0x10", "nan", "inf"})
    EXPECT_THROW(parse(bad), std::invalid_argument) << bad;
}

TEST(JsonNumbers, Uint64OfRejectsNonIntegerTokens) {
  EXPECT_THROW(uint64_of(parse("1.5")), std::invalid_argument);
  EXPECT_THROW(uint64_of(parse("-3")), std::invalid_argument);
  EXPECT_THROW(uint64_of(parse("1e3")), std::invalid_argument);
  EXPECT_THROW(uint64_of(parse("\"7\"")), std::invalid_argument);
  EXPECT_THROW(uint64_of(parse("18446744073709551616")),  // 2^64
               std::invalid_argument);
  EXPECT_EQ(uint64_of(parse("18446744073709551615")),     // 2^64 - 1
            std::numeric_limits<std::uint64_t>::max());
}

TEST(JsonNumbers, NumberOfRejectsNonNumericStrings) {
  EXPECT_THROW(number_of(parse("\"infinity\"")), std::invalid_argument);
  EXPECT_THROW(number_of(parse("true")), std::invalid_argument);
  EXPECT_THROW(number_of(parse("[1]")), std::invalid_argument);
}

TEST(JsonStrings, EscapeTortureRoundTrips) {
  const std::string torture =
      std::string("quote\" back\\slash nl\n tab\t cr\r bs\b ff\f nul") +
      '\0' + " bell\x07 high\xff end";
  const Value v = parse(encode(make_string(torture)));
  ASSERT_EQ(v.kind, Value::Kind::String);
  EXPECT_EQ(v.text, torture);
}

TEST(JsonDocuments, MalformedDocumentsThrowNotCrash) {
  for (const char* bad :
       {"", "{", "}", "[", "]", "{\"a\":}", "{\"a\" 1}", "[1,]", "[1 2]",
        "{\"a\":1,}", "\"unterminated", "\"bad\\escape\"", "tru", "nul",
        "[1]]", "{} extra", "\"\\u00\"", "\"\\u0100\""})
    EXPECT_THROW(parse(bad), std::invalid_argument) << bad;
}

TEST(JsonDocuments, FindReturnsMembersInDocumentOrder) {
  const Value v = parse("{\"a\":1,\"b\":[true,null],\"a\":2}");
  ASSERT_NE(v.find("b"), nullptr);
  EXPECT_EQ(v.find("b")->items.size(), 2u);
  EXPECT_EQ(v.find("a")->text, "1");  // first wins for duplicate keys
  EXPECT_EQ(v.find("missing"), nullptr);
}

}  // namespace
