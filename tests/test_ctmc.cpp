#include "markov/ctmc.h"

#include <gtest/gtest.h>

#include "markov/gth.h"

namespace {

namespace mk = rlb::markov;
using rlb::statespace::State;

// A birth-death chain on {0..3} encoded as 1-component states.
mk::TransitionFn birth_death(double birth, double death, int cap) {
  return [=](const State& s) {
    std::vector<mk::Rated> out;
    if (s[0] < cap) out.push_back({State{s[0] + 1}, birth});
    if (s[0] > 0) out.push_back({State{s[0] - 1}, death});
    return out;
  };
}

TEST(Ctmc, ExploresReachableSet) {
  const auto chain = mk::build_ctmc(State{0}, birth_death(1.0, 2.0, 3));
  EXPECT_EQ(chain.size(), 4u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < chain.size(); ++j)
      row += chain.generator(i, j);
    EXPECT_NEAR(row, 0.0, 1e-12);
  }
}

TEST(Ctmc, Mm1TruncatedStationary) {
  // M/M/1/K has pi_n proportional to rho^n.
  const double lambda = 0.6, mu = 1.0;
  const int cap = 20;
  const auto chain = mk::build_ctmc(State{0}, birth_death(lambda, mu, cap));
  const auto pi = mk::stationary_gth(chain.generator);
  // Find index of state {1} and {0}.
  const std::size_t i0 = chain.index.at(State{0});
  const std::size_t i1 = chain.index.at(State{1});
  EXPECT_NEAR(pi[i1] / pi[i0], lambda / mu, 1e-10);
}

TEST(Ctmc, StateLimitEnforced) {
  // Unbounded birth chain must trip the limit.
  const mk::TransitionFn fn = [](const State& s) {
    return std::vector<mk::Rated>{{State{s[0] + 1}, 1.0}};
  };
  EXPECT_THROW(mk::build_ctmc(State{0}, fn, 100), std::runtime_error);
}

TEST(Ctmc, ZeroRatesIgnored) {
  const mk::TransitionFn fn = [](const State& s) {
    std::vector<mk::Rated> out;
    if (s[0] == 0) {
      out.push_back({State{1}, 1.0});
      out.push_back({State{5}, 0.0});  // must not create state 5
    } else {
      out.push_back({State{0}, 1.0});
    }
    return out;
  };
  const auto chain = mk::build_ctmc(State{0}, fn);
  EXPECT_EQ(chain.size(), 2u);
}

TEST(Ctmc, ExpectationHelper) {
  const auto chain = mk::build_ctmc(State{0}, birth_death(1.0, 1.0, 1));
  const rlb::linalg::Vector pi{0.25, 0.75};
  const double e = mk::expectation(
      chain, pi, [](const State& s) { return double(s[0]); });
  const std::size_t i1 = chain.index.at(State{1});
  EXPECT_DOUBLE_EQ(e, pi[i1]);
}

}  // namespace
