#include "qbd/solver.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sqd/blocks_builder.h"
#include "sqd/mm_queues.h"

namespace {

using rlb::linalg::Matrix;
namespace qbd = rlb::qbd;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

// N = 1 collapses the whole construction to a plain M/M/1: one shape,
// boundary = {(0)}, level q = {(q+1)}. Gold standard for the solver.
qbd::Blocks mm1_as_bound_blocks(double lambda, int T = 1) {
  const BoundModel model(Params{1, 1, lambda, 1.0}, T, BoundKind::Lower);
  return rlb::sqd::build_bound_qbd(model).blocks;
}

TEST(QbdSolver, Mm1StationaryDistribution) {
  const double lambda = 0.7;
  const auto sol = qbd::solve(mm1_as_bound_blocks(lambda));
  // pi(0) = 1 - rho; pi(n) = (1-rho) rho^n.
  ASSERT_EQ(sol.pi_boundary.size(), 1u);
  EXPECT_NEAR(sol.pi_boundary[0], 1.0 - lambda, 1e-10);
  EXPECT_NEAR(sol.pi0[0], (1.0 - lambda) * lambda, 1e-10);
  EXPECT_NEAR(sol.pi1[0], (1.0 - lambda) * lambda * lambda, 1e-10);
  EXPECT_NEAR(sol.total_probability, 1.0, 1e-10);
  // R is the scalar rho.
  EXPECT_NEAR(sol.R(0, 0), lambda, 1e-10);
}

TEST(QbdSolver, Mm1TailAggregates) {
  const double rho = 0.6;
  const auto sol = qbd::solve(mm1_as_bound_blocks(rho));
  // tail_sum = sum_{n>=2} pi(n) = (1-rho) rho^2 / (1-rho) = rho^2.
  EXPECT_NEAR(sol.tail_sum[0], rho * rho, 1e-10);
  // tail_weighted = sum_{n>=2} (n-2) pi(n) = rho^3 / (1-rho).
  EXPECT_NEAR(sol.tail_weighted[0], std::pow(rho, 3) / (1.0 - rho), 1e-10);
}

TEST(QbdSolver, ScalarSolveMatchesFullSolveForLowerModel) {
  // Theorem 3: the improved (scalar rho^N) solve and the generic solve
  // agree on every probability block.
  for (double rho : {0.3, 0.7, 0.9}) {
    const BoundModel model(Params{3, 2, rho, 1.0}, 2, BoundKind::Lower);
    const auto q = rlb::sqd::build_bound_qbd(model);
    const auto full = qbd::solve(q.blocks);
    const auto scalar = qbd::solve_scalar(q.blocks, std::pow(rho, 3));
    for (std::size_t i = 0; i < full.pi_boundary.size(); ++i)
      EXPECT_NEAR(full.pi_boundary[i], scalar.pi_boundary[i], 1e-9);
    for (std::size_t i = 0; i < full.pi0.size(); ++i)
      EXPECT_NEAR(full.pi0[i], scalar.pi0[i], 1e-9);
    for (std::size_t i = 0; i < full.pi1.size(); ++i)
      EXPECT_NEAR(full.pi1[i], scalar.pi1[i], 1e-9);
  }
}

TEST(QbdSolver, GeometricTailTheorem3) {
  // pi_{q+1} = rho^N pi_q for the lower model: check via pi_2 = pi_1 R.
  const double rho = 0.8;
  const BoundModel model(Params{3, 2, rho, 1.0}, 2, BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  const auto sol = qbd::solve(q.blocks);
  const auto pi2 = rlb::linalg::vec_mat(sol.pi1, sol.R);
  const double rate = std::pow(rho, 3);
  for (std::size_t i = 0; i < pi2.size(); ++i)
    EXPECT_NEAR(pi2[i], rate * sol.pi1[i], 1e-10) << i;
}

TEST(QbdSolver, StationarityResidual) {
  // The assembled solution satisfies the balance equations of the full
  // generator on boundary, level 0 and level 1 columns.
  const BoundModel model(Params{3, 2, 0.75, 1.0}, 2, BoundKind::Upper);
  const auto q = rlb::sqd::build_bound_qbd(model);
  const auto sol = qbd::solve(q.blocks);

  using rlb::linalg::vec_mat;
  using rlb::linalg::Vector;
  // Boundary columns: pi_b B00 + pi_0 B10 = 0.
  Vector res = vec_mat(sol.pi_boundary, q.blocks.B00);
  rlb::linalg::axpy(res, 1.0, vec_mat(sol.pi0, q.blocks.B10));
  EXPECT_LT(rlb::linalg::norm_inf(res), 1e-10);
  // Level-0 columns: pi_b B01 + pi_0 A1 + pi_1 A2 = 0.
  Vector res0 = vec_mat(sol.pi_boundary, q.blocks.B01);
  rlb::linalg::axpy(res0, 1.0, vec_mat(sol.pi0, q.blocks.A1));
  rlb::linalg::axpy(res0, 1.0, vec_mat(sol.pi1, q.blocks.A2));
  EXPECT_LT(rlb::linalg::norm_inf(res0), 1e-10);
  // Level-1 columns with pi_2 = pi_1 R.
  const Vector pi2 = vec_mat(sol.pi1, sol.R);
  Vector res1 = vec_mat(sol.pi0, q.blocks.A0);
  rlb::linalg::axpy(res1, 1.0, vec_mat(sol.pi1, q.blocks.A1));
  rlb::linalg::axpy(res1, 1.0, vec_mat(pi2, q.blocks.A2));
  EXPECT_LT(rlb::linalg::norm_inf(res1), 1e-10);
}

TEST(QbdSolver, ProbabilitiesNonNegativeAndNormalized) {
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(Params{3, 2, 0.5, 1.0}, 2, kind);
    const auto q = rlb::sqd::build_bound_qbd(model);
    const auto sol = qbd::solve(q.blocks);
    for (double v : sol.pi_boundary) EXPECT_GE(v, -1e-12);
    for (double v : sol.pi0) EXPECT_GE(v, -1e-12);
    for (double v : sol.pi1) EXPECT_GE(v, -1e-12);
    EXPECT_NEAR(sol.total_probability, 1.0, 1e-9);
  }
}

TEST(QbdSolver, UnstableUpperThrows) {
  const BoundModel model(Params{3, 2, 0.95, 1.0}, 2, BoundKind::Upper);
  const auto q = rlb::sqd::build_bound_qbd(model);
  EXPECT_THROW(qbd::solve(q.blocks), qbd::UnstableError);
}

TEST(QbdSolver, ScalarRateOutsideUnitIntervalThrows) {
  const auto blocks = mm1_as_bound_blocks(0.5);
  EXPECT_THROW(qbd::solve_scalar(blocks, 1.0), qbd::UnstableError);
  EXPECT_THROW(qbd::solve_scalar(blocks, -0.1), qbd::UnstableError);
}

}  // namespace
