#include "util/combinatorics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using rlb::util::binomial;
using rlb::util::binomial_ratio;
using rlb::util::binomial_u64;
using rlb::util::log_binomial;

TEST(Binomial, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(binomial(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(binomial(52, 5), 2598960.0);
}

TEST(Binomial, OutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(binomial(5, -1), 0.0);
  EXPECT_DOUBLE_EQ(binomial(-2, 1), 0.0);
}

TEST(Binomial, SymmetryHolds) {
  for (int n = 0; n <= 30; ++n)
    for (int k = 0; k <= n; ++k)
      EXPECT_DOUBLE_EQ(binomial(n, k), binomial(n, n - k)) << n << ' ' << k;
}

TEST(Binomial, PascalRecurrence) {
  for (int n = 1; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_NEAR(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k),
                  1e-9 * binomial(n, k))
          << n << ' ' << k;
    }
  }
}

TEST(BinomialU64, MatchesDoubleVersion) {
  for (int n = 0; n <= 60; ++n)
    for (int k = 0; k <= n; ++k)
      EXPECT_DOUBLE_EQ(static_cast<double>(binomial_u64(n, k)),
                       binomial(n, k))
          << n << ' ' << k;
}

TEST(BinomialU64, ThrowsOnOverflow) {
  EXPECT_THROW(binomial_u64(200, 100), std::overflow_error);
}

TEST(LogBinomial, AgreesWithDirect) {
  for (int n = 1; n <= 100; n += 7)
    for (int k = 0; k <= n; k += 3)
      EXPECT_NEAR(std::exp(log_binomial(n, k)), binomial(n, k),
                  1e-9 * binomial(n, k));
}

TEST(LogBinomial, LargeArgumentsFinite) {
  EXPECT_TRUE(std::isfinite(log_binomial(250, 50)));
  EXPECT_GT(log_binomial(250, 50), 0.0);
}

TEST(BinomialRatio, MatchesDirectRatio) {
  for (int n = 2; n <= 50; n += 4) {
    for (int d = 1; d <= n; d += 3) {
      for (int a = 0; a <= n; ++a) {
        const double expected = binomial(a, d) / binomial(n, d);
        EXPECT_NEAR(binomial_ratio(a, n, d), expected, 1e-12)
            << a << ' ' << n << ' ' << d;
      }
    }
  }
}

// The identity behind the SQ(d) arrival rates: sum_{i=d}^{N} C(i-1, d-1)
// = C(N, d), i.e. group probabilities telescope to 1.
TEST(BinomialRatio, HockeyStickIdentity) {
  for (int n = 1; n <= 40; ++n) {
    for (int d = 1; d <= n; ++d) {
      double total = 0.0;
      for (int i = d; i <= n; ++i) total += binomial(i - 1, d - 1);
      EXPECT_NEAR(total, binomial(n, d), 1e-9 * binomial(n, d));
    }
  }
}

// Paper Section II: the two numerator forms for tie groups agree:
// sum_{k=i}^{i+j} C(k-1, d-1) = C(i+j, d) - C(i-1, d).
TEST(BinomialRatio, TieGroupNumeratorForms) {
  const int n = 20;
  for (int d = 1; d <= n; ++d) {
    for (int i = 1; i <= n; ++i) {
      for (int j = 0; i + j <= n; ++j) {
        double lhs = 0.0;
        for (int k = i; k <= i + j; ++k) lhs += binomial(k - 1, d - 1);
        const double rhs = binomial(i + j, d) - binomial(i - 1, d);
        EXPECT_NEAR(lhs, rhs, 1e-8 * std::max(1.0, rhs)) << d << ' ' << i;
      }
    }
  }
}

}  // namespace
