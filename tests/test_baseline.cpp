#include "engine/baseline.h"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "engine/sink.h"

namespace {

using rlb::engine::BaselineOptions;
using rlb::engine::BaselineReport;
using rlb::engine::compare_to_baseline;
using rlb::engine::ScenarioOutput;
using rlb::engine::to_json;
using rlb::engine::ToleranceSpec;

ScenarioOutput sample_output() {
  ScenarioOutput out;
  auto& table = out.add_table("main", {"rho", "delay", "status"});
  table.add_row({"0.50", "1.2500", "ok"});
  table.add_row({"0.90", "3.5000", "unstable"});
  auto& extra = out.add_table("extra", {"k", "p"});
  extra.add_row({"1", "0.125000"});
  return out;
}

TEST(ToleranceSpecTest, ParsesScalarsAndPerColumnOverrides) {
  const ToleranceSpec plain = ToleranceSpec::parse("0.01", 1e-9);
  EXPECT_DOUBLE_EQ(plain.for_column("anything"), 0.01);

  const ToleranceSpec mixed = ToleranceSpec::parse("1e-6,delay=0.05", 0.0);
  EXPECT_DOUBLE_EQ(mixed.for_column("rho"), 1e-6);
  EXPECT_DOUBLE_EQ(mixed.for_column("delay"), 0.05);

  const ToleranceSpec empty = ToleranceSpec::parse("", 1e-9);
  EXPECT_DOUBLE_EQ(empty.for_column("x"), 1e-9);

  EXPECT_THROW(ToleranceSpec::parse("delay=abc", 0.0),
               std::invalid_argument);
  EXPECT_THROW(ToleranceSpec::parse("-0.5", 0.0), std::invalid_argument);
}

TEST(Baseline, IdenticalOutputMatchesItsOwnJson) {
  const ScenarioOutput out = sample_output();
  const BaselineReport report =
      compare_to_baseline(out, to_json(out, "x"), BaselineOptions{});
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.cells_compared, 8u);
  EXPECT_NE(report.describe().find("baseline match"), std::string::npos);
}

TEST(Baseline, NumericDriftDetectedWithinAndBeyondTolerance) {
  const ScenarioOutput ref = sample_output();
  ScenarioOutput moved = sample_output();
  moved.tables[0].table = rlb::util::Table({"rho", "delay", "status"});
  moved.tables[0].table.add_row({"0.50", "1.2501", "ok"});  // +1e-4
  moved.tables[0].table.add_row({"0.90", "3.5000", "unstable"});

  BaselineOptions strict;
  const BaselineReport drift =
      compare_to_baseline(moved, to_json(ref, "x"), strict);
  EXPECT_FALSE(drift.ok);
  ASSERT_EQ(drift.mismatches.size(), 1u);
  EXPECT_EQ(drift.mismatches[0].table, "main");
  EXPECT_EQ(drift.mismatches[0].column, "delay");
  EXPECT_EQ(drift.mismatches[0].row, 0u);
  EXPECT_NE(drift.describe().find("DRIFT"), std::string::npos);

  BaselineOptions loose;
  loose.atol = ToleranceSpec::parse("0.001", 0.0);
  EXPECT_TRUE(compare_to_baseline(moved, to_json(ref, "x"), loose).ok);

  BaselineOptions per_column;
  per_column.rtol = ToleranceSpec::parse("delay=0.01", 0.0);
  EXPECT_TRUE(
      compare_to_baseline(moved, to_json(ref, "x"), per_column).ok);
}

TEST(Baseline, StringCellsCompareExactly) {
  const ScenarioOutput ref = sample_output();
  ScenarioOutput changed = sample_output();
  changed.tables[0].table = rlb::util::Table({"rho", "delay", "status"});
  changed.tables[0].table.add_row({"0.50", "1.2500", "ok"});
  changed.tables[0].table.add_row({"0.90", "3.5000", "stable"});
  const BaselineReport report =
      compare_to_baseline(changed, to_json(ref, "x"), BaselineOptions{});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.mismatches.size(), 1u);
  EXPECT_EQ(report.mismatches[0].column, "status");
}

TEST(Baseline, IgnoredColumnsAreSkipped) {
  const ScenarioOutput ref = sample_output();
  ScenarioOutput changed = sample_output();
  changed.tables[0].table = rlb::util::Table({"rho", "delay", "status"});
  changed.tables[0].table.add_row({"0.50", "9.9999", "ok"});
  changed.tables[0].table.add_row({"0.90", "9.9999", "unstable"});
  BaselineOptions opts;
  opts.ignore_columns.insert("delay");
  const BaselineReport report =
      compare_to_baseline(changed, to_json(ref, "x"), opts);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.cells_compared, 6u);  // delay column skipped
}

TEST(Baseline, IgnoreListParsesCommaSeparatedColumns) {
  // The adaptive baselines skip several columns at once
  // (--baseline-ignore=jobs_used,rounds); the parser must split on
  // commas, trim whitespace, and drop empty parts.
  using rlb::engine::parse_ignore_columns;
  EXPECT_TRUE(parse_ignore_columns("").empty());
  EXPECT_EQ(parse_ignore_columns("jobs_used"),
            (std::set<std::string>{"jobs_used"}));
  EXPECT_EQ(parse_ignore_columns("jobs_used,rounds"),
            (std::set<std::string>{"jobs_used", "rounds"}));
  EXPECT_EQ(parse_ignore_columns(" jobs_used , rounds ,"),
            (std::set<std::string>{"jobs_used", "rounds"}));
  EXPECT_EQ(parse_ignore_columns(",,delay"),
            (std::set<std::string>{"delay"}));
}

TEST(Baseline, MultipleIgnoredColumnsAreAllSkipped) {
  const ScenarioOutput ref = sample_output();
  ScenarioOutput changed = sample_output();
  changed.tables[0].table = rlb::util::Table({"rho", "delay", "status"});
  changed.tables[0].table.add_row({"0.50", "9.9999", "drifted"});
  changed.tables[0].table.add_row({"0.90", "9.9999", "drifted"});
  BaselineOptions opts;
  // Ignoring a column no table has ("rounds") must be harmless: the flag
  // is shared across scenarios with different schemas.
  opts.ignore_columns =
      rlb::engine::parse_ignore_columns("delay,status,rounds");
  const BaselineReport report =
      compare_to_baseline(changed, to_json(ref, "x"), opts);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.cells_compared, 4u);  // only rho and the extra table
}

TEST(Baseline, StructureDriftIsReportedNotThrown) {
  const ScenarioOutput ref = sample_output();
  ScenarioOutput fewer_rows = sample_output();
  fewer_rows.tables[0].table = rlb::util::Table({"rho", "delay", "status"});
  fewer_rows.tables[0].table.add_row({"0.50", "1.2500", "ok"});
  EXPECT_FALSE(
      compare_to_baseline(fewer_rows, to_json(ref, "x"), BaselineOptions{})
          .ok);

  ScenarioOutput renamed = sample_output();
  renamed.tables[1].name = "renamed";
  EXPECT_FALSE(
      compare_to_baseline(renamed, to_json(ref, "x"), BaselineOptions{})
          .ok);
}

TEST(Baseline, MalformedJsonThrows) {
  const ScenarioOutput out = sample_output();
  EXPECT_THROW(compare_to_baseline(out, "{not json", BaselineOptions{}),
               std::invalid_argument);
  EXPECT_THROW(compare_to_baseline(out, "[]", BaselineOptions{}),
               std::invalid_argument);
  // A number token must parse in full — prefixes like "1e-" or "1.2.3"
  // must be rejected, not silently truncated.
  const std::string bad_number =
      "{\"scenario\":\"x\",\"tables\":[{\"name\":\"main\","
      "\"header\":[\"a\"],\"rows\":[[1.2.3]]}]}";
  EXPECT_THROW(compare_to_baseline(out, bad_number, BaselineOptions{}),
               std::invalid_argument);
}

TEST(Baseline, RoundTripsEscapedStrings) {
  // Control characters and quotes must survive sink -> parser intact.
  ScenarioOutput out;
  auto& table = out.add_table("esc", {"text"});
  table.add_row({"line\nbreak\ttab \"quote\" \x01 bell\x07 \b\f\r"});
  const BaselineReport report =
      compare_to_baseline(out, to_json(out, "x"), BaselineOptions{});
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.cells_compared, 1u);
}

TEST(Baseline, ReadTextFileErrors) {
  EXPECT_THROW(rlb::engine::read_text_file("/nonexistent/path.json"),
               std::invalid_argument);
}

}  // namespace
