#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/cli.h"
#include "util/table.h"

namespace {

using rlb::util::Cli;
using rlb::util::Table;

TEST(Table, AlignsColumns) {
  Table t({"rho", "delay"});
  t.add_row({"0.5", "1.25"});
  t.add_row({"0.95", "10.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("rho"), std::string::npos);
  EXPECT_NE(s.find("10.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumericRowsFormatted) {
  Table t({"x", "y"});
  t.add_row_numeric({1.23456, 2.0}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"n", "value"});
  t.add_row({"1", "2.5"});
  const std::string path = ::testing::TempDir() + "/rlb_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "n,value");
  EXPECT_EQ(row, "1,2.5");
  std::remove(path.c_str());
}

Cli make_cli(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
  const Cli cli = make_cli({"--rho=0.9", "--jobs=1000"});
  EXPECT_DOUBLE_EQ(cli.get_double("rho", 0.0), 0.9);
  EXPECT_EQ(cli.get_int("jobs", 0), 1000);
}

TEST(Cli, ParsesSpaceForm) {
  const Cli cli = make_cli({"--name", "panel-a"});
  EXPECT_EQ(cli.get("name", ""), "panel-a");
}

TEST(Cli, BooleanFlag) {
  const Cli cli = make_cli({"--full"});
  EXPECT_TRUE(cli.get_bool("full"));
  EXPECT_FALSE(cli.get_bool("absent"));
}

TEST(Cli, DefaultsApply) {
  const Cli cli = make_cli({});
  EXPECT_DOUBLE_EQ(cli.get_double("rho", 0.75), 0.75);
}

TEST(Cli, FinishRejectsUnknownFlags) {
  const Cli cli = make_cli({"--typo=1"});
  EXPECT_THROW(cli.finish(), std::invalid_argument);
}

TEST(Cli, FinishAcceptsQueriedFlags) {
  const Cli cli = make_cli({"--rho=0.5"});
  (void)cli.get_double("rho", 0.0);
  EXPECT_NO_THROW(cli.finish());
}

}  // namespace
