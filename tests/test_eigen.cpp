#include "linalg/eigen.h"

#include <gtest/gtest.h>

namespace {

using rlb::linalg::Matrix;
using rlb::linalg::power_iteration;
using rlb::linalg::power_iteration_left;

TEST(PowerIteration, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 0.2;
  a(1, 1) = 0.9;
  a(2, 2) = 0.5;
  const auto r = power_iteration(a);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 0.9, 1e-10);
}

TEST(PowerIteration, StochasticMatrixHasEigenvalueOne) {
  Matrix p(2, 2);
  p(0, 0) = 0.3;
  p(0, 1) = 0.7;
  p(1, 0) = 0.4;
  p(1, 1) = 0.6;
  const auto r = power_iteration(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 1.0, 1e-10);
}

TEST(PowerIteration, RankOneMatrix) {
  // a = u v^T with spectral radius v^T u.
  Matrix a(3, 3);
  const double u[3] = {1, 2, 3};
  const double v[3] = {0.5, 0.25, 0.125};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) a(i, j) = u[i] * v[j];
  const auto r = power_iteration(a);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 0.5 * 1 + 0.25 * 2 + 0.125 * 3, 1e-10);
}

TEST(PowerIteration, ZeroMatrix) {
  const Matrix a(4, 4, 0.0);
  const auto r = power_iteration(a);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 0.0, 1e-12);
}

TEST(PowerIterationLeft, MatchesRightForSymmetric) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  const auto right = power_iteration(a);
  const auto left = power_iteration_left(a);
  EXPECT_NEAR(right.value, left.value, 1e-9);
  EXPECT_NEAR(right.value, 3.0, 1e-9);
}

}  // namespace
