// Statistical property tests for the realistic-workload primitives
// (ctest -L statistical): sample moments of the heavy-tailed service
// laws against their analytic values, the nonstationary arrival
// processes against their closed-form rates, and the windowed statistics
// of a warm M/M/1 against the stationary sojourn law. Deterministic —
// fixed seeds, fixed budgets — so a pass is reproducible and a failure
// is a real regression, not noise.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/arrival_process.h"
#include "sim/cluster_sim.h"
#include "sim/distributions.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace {

using namespace rlb::sim;

constexpr double kTwoPi = 6.283185307179586476925286766559;

StreamingMoments sample_many(const Distribution& d, std::uint64_t seed,
                             int n) {
  Rng rng(seed);
  StreamingMoments s;
  for (int i = 0; i < n; ++i) s.add(d.sample(rng));
  return s;
}

TEST(HeavyTailMoments, ParetoMatchesAnalyticMeanAndScv) {
  // alpha = 2.5, scale derived for mean 2: scv = 1/(alpha(alpha-2)) = 0.8.
  const auto d = make_pareto_mean(2.0, 2.5);
  EXPECT_NEAR(d->mean(), 2.0, 1e-12);
  const auto s = sample_many(*d, 101, 2'000'000);
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  const double scv = s.variance() / (s.mean() * s.mean());
  // Heavy-tailed variance converges slowly; 15% at 2e6 samples is tight
  // enough to catch a wrong formula (off by alpha or by the square).
  EXPECT_NEAR(scv, 0.8, 0.15);
  // Support starts at the scale: mean * (alpha-1)/alpha = 1.2.
  EXPECT_GE(s.min(), 1.2);
}

TEST(HeavyTailMoments, ParetoScaleFormIsConsistent) {
  // make_pareto(alpha, scale): mean = alpha*scale/(alpha-1) = 3.
  const auto d = make_pareto(3.0, 2.0);
  EXPECT_NEAR(d->mean(), 3.0, 1e-12);
  const auto s = sample_many(*d, 103, 500'000);
  EXPECT_NEAR(s.mean(), 3.0, 0.03);
  EXPECT_GE(s.min(), 2.0);
}

TEST(HeavyTailMoments, LognormalMatchesMeanAndCv) {
  const auto d = make_lognormal(2.0, 1.5);
  const auto s = sample_many(*d, 107, 1'000'000);
  EXPECT_NEAR(s.mean(), 2.0, 0.04);
  EXPECT_NEAR(s.stddev() / s.mean(), 1.5, 0.05);
}

TEST(HeavyTailMoments, HyperexpFitHitsMeanAndScv) {
  const auto d = make_hyperexp_fitted(1.0, 4.0);
  EXPECT_NEAR(d->mean(), 1.0, 1e-12);
  const auto s = sample_many(*d, 109, 1'000'000);
  EXPECT_NEAR(s.mean(), 1.0, 0.01);
  EXPECT_NEAR(s.variance() / (s.mean() * s.mean()), 4.0, 0.12);
}

TEST(NonstationaryArrivals, MmppLongRunRateIsThePhaseMixture) {
  // Cyclic 3-phase MMPP: closed form sum(r_i h_i) / sum(h_i) = 29/13.
  MmppArrivalProcess a({5.0, 1.0, 3.0}, {2.0, 7.0, 4.0});
  const double expected = 29.0 / 13.0;
  EXPECT_NEAR(a.mean_rate(), expected, 1e-12);
  Rng rng(211);
  double total_time = 0.0;
  const int n = 500'000;
  for (int i = 0; i < n; ++i) total_time += a.next(rng);
  EXPECT_NEAR(n / total_time, expected, 0.02 * expected);
}

TEST(NonstationaryArrivals, SinusoidalPerWindowRateTracksLambdaT) {
  // Fold arrivals from many periods into phase windows and compare each
  // window's empirical rate with the integral of lambda(t) over it.
  const double lambda0 = 5.0, amp = 0.8, period = 100.0;
  SinusoidalArrivalProcess a(lambda0, amp, period);
  const int windows_per_period = 10;
  const double width = period / windows_per_period;
  const int periods = 400;
  std::vector<double> counts(windows_per_period, 0.0);
  Rng rng(223);
  double t = 0.0;
  for (;;) {
    t += a.next(rng);
    if (t >= periods * period) break;
    const auto w = static_cast<int>(std::fmod(t, period) / width);
    counts[w] += 1.0;
  }
  for (int w = 0; w < windows_per_period; ++w) {
    const double t0 = w * width, t1 = (w + 1) * width;
    // integral of lambda0 (1 + amp sin(2 pi t / T)) over [t0, t1]
    const double expected =
        periods * (lambda0 * width +
                   lambda0 * amp * (period / kTwoPi) *
                       (std::cos(kTwoPi * t0 / period) -
                        std::cos(kTwoPi * t1 / period)));
    // ~sqrt(expected) Poisson noise; 4 sigma keeps the test deterministic
    // in spirit and failure-worthy in fact.
    EXPECT_NEAR(counts[w], expected, 4.0 * std::sqrt(expected)) << w;
  }
}

TEST(NonstationaryArrivals, SinusoidalMeanRateIsLambda0) {
  SinusoidalArrivalProcess a(3.0, 0.5, 40.0);
  EXPECT_NEAR(a.mean_rate(), 3.0, 1e-12);
  Rng rng(227);
  double total_time = 0.0;
  const int n = 300'000;
  for (int i = 0; i < n; ++i) total_time += a.next(rng);
  EXPECT_NEAR(n / total_time, 3.0, 0.05);
}

TEST(WindowedMm1, WarmWindowP99MatchesStationarySojournLaw) {
  // M/M/1 at rho = 0.7: stationary sojourn ~ Exp(mu - lambda), so
  // p99 = ln(100) / (mu - lambda) and P(sojourn > tau) = e^{-(mu-lambda)
  // tau}. Warm windows (past the transient) must reproduce both.
  const double lambda = 0.7, mu = 1.0, tau = 5.0;
  ClusterConfig cfg;
  cfg.servers = 1;
  cfg.jobs = 400'000;
  cfg.warmup = 40'000;
  cfg.seed = 229;
  cfg.window_width = 2'000.0;
  cfg.sla_threshold = tau;
  const auto arr = make_exponential(lambda);
  const auto svc = make_exponential(mu);
  SqdPolicy policy(1, 1);
  const auto res = simulate_cluster(cfg, policy, *arr, *svc);

  const double p99_theory = std::log(100.0) / (mu - lambda);
  ASSERT_GT(res.windows.size(), 40u);
  // Average the warm windows' p99 (skip the first 10% — the transient
  // the windowed view exists to expose).
  double p99_sum = 0.0;
  int p99_count = 0;
  for (std::size_t w = res.windows.size() / 10;
       w + 1 < res.windows.size(); ++w) {  // last window is partial
    if (res.windows[w].count == 0) continue;
    p99_sum += res.windows[w].p99_sojourn;
    ++p99_count;
  }
  ASSERT_GT(p99_count, 30);
  // Each window holds only ~lambda * width = 1400 samples, and the
  // nearest-rank p99 of so few draws from an exponential tail is biased
  // a few percent low — so the per-window average gets a wider band than
  // the whole-run estimate below.
  EXPECT_NEAR(p99_sum / p99_count, p99_theory, 0.12 * p99_theory);

  // Whole-run aggregates against the same law.
  EXPECT_NEAR(res.p99_sojourn, p99_theory, 0.05 * p99_theory);
  const double sla_theory = std::exp(-(mu - lambda) * tau);
  EXPECT_NEAR(res.sla_violation_fraction, sla_theory, 0.1 * sla_theory);
  EXPECT_NEAR(res.mean_sojourn, 1.0 / (mu - lambda), 0.07 / (mu - lambda));
}

TEST(WindowedMm1, WindowCountsMatchThroughput) {
  // Warm windows of an M/M/1 at rate lambda complete ~lambda * width jobs.
  const double lambda = 0.5;
  ClusterConfig cfg;
  cfg.servers = 1;
  cfg.jobs = 200'000;
  cfg.warmup = 20'000;
  cfg.seed = 233;
  cfg.window_width = 4'000.0;
  const auto arr = make_exponential(lambda);
  const auto svc = make_exponential(1.0);
  SqdPolicy policy(1, 1);
  const auto res = simulate_cluster(cfg, policy, *arr, *svc);
  ASSERT_GT(res.windows.size(), 20u);
  const double expected = lambda * cfg.window_width;
  for (std::size_t w = 2; w + 1 < res.windows.size(); ++w)
    EXPECT_NEAR(static_cast<double>(res.windows[w].count), expected,
                5.0 * std::sqrt(expected))
        << w;
}

}  // namespace
