#include "sqd/mm_queues.h"

#include <gtest/gtest.h>

namespace {

using rlb::sqd::Mm1;
using rlb::sqd::Mmc;

TEST(Mm1, ClassicValues) {
  const Mm1 q{0.5, 1.0};
  EXPECT_DOUBLE_EQ(q.rho(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_jobs(), 1.0);
  EXPECT_DOUBLE_EQ(q.mean_waiting_jobs(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_sojourn(), 2.0);
  EXPECT_DOUBLE_EQ(q.mean_wait(), 1.0);
}

TEST(Mm1, LittleLawConsistency) {
  for (double lambda : {0.1, 0.5, 0.9}) {
    const Mm1 q{lambda, 1.0};
    EXPECT_NEAR(q.mean_jobs(), lambda * q.mean_sojourn(), 1e-12);
    EXPECT_NEAR(q.mean_waiting_jobs(), lambda * q.mean_wait(), 1e-12);
  }
}

TEST(Mm1, GeometricDistribution) {
  const Mm1 q{0.7, 1.0};
  double total = 0.0;
  for (int n = 0; n < 200; ++n) total += q.prob_jobs(n);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(q.prob_jobs(1) / q.prob_jobs(0), 0.7, 1e-12);
}

TEST(Mm1, UnstableThrows) {
  const Mm1 q{1.2, 1.0};
  EXPECT_THROW(q.mean_jobs(), std::invalid_argument);
}

TEST(Mmc, SingleServerReducesToMm1) {
  const Mm1 ref{0.8, 1.0};
  const Mmc q{0.8, 1.0, 1};
  EXPECT_NEAR(q.mean_waiting_jobs(), ref.mean_waiting_jobs(), 1e-12);
  EXPECT_NEAR(q.mean_sojourn(), ref.mean_sojourn(), 1e-12);
  // Erlang C for c=1 is just rho.
  EXPECT_NEAR(q.erlang_c(), 0.8, 1e-12);
}

TEST(Mmc, KnownErlangCValue) {
  // Textbook example: c = 2, lambda = 1.5, mu = 1 (rho = 0.75):
  // C = (a^c / c!) / ((1-rho) sum + ...) = 0.6428571...
  const Mmc q{1.5, 1.0, 2};
  EXPECT_NEAR(q.erlang_c(), 0.6428571428571429, 1e-12);
}

TEST(Mmc, ManyServersLowLoadNoWait) {
  const Mmc q{0.5, 1.0, 50};
  EXPECT_LT(q.erlang_c(), 1e-10);
  EXPECT_NEAR(q.mean_sojourn(), 1.0, 1e-9);
}

TEST(Mmc, LittleLawConsistency) {
  const Mmc q{4.0, 1.0, 6};
  EXPECT_NEAR(q.mean_jobs(), q.mean_waiting_jobs() + 4.0, 1e-12);
  EXPECT_NEAR(q.mean_wait() * 4.0, q.mean_waiting_jobs(), 1e-12);
}

}  // namespace
