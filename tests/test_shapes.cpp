#include "statespace/shapes.h"

#include <set>

#include <gtest/gtest.h>

#include "util/combinatorics.h"

namespace {

namespace ss = rlb::statespace;
using ss::State;

TEST(Shapes, CountMatchesBinomialFormula) {
  for (int n = 1; n <= 12; ++n) {
    for (int t = 0; t <= 4; ++t) {
      const auto shapes = ss::enumerate_shapes(n, t);
      EXPECT_EQ(shapes.size(), ss::shape_count(n, t)) << n << ' ' << t;
      EXPECT_EQ(shapes.size(), rlb::util::binomial_u64(n + t - 1, t));
    }
  }
}

TEST(Shapes, PaperBlockSizes) {
  // Figure 10 configurations.
  EXPECT_EQ(ss::shape_count(3, 2), 6u);    // C(4,2)
  EXPECT_EQ(ss::shape_count(3, 3), 10u);   // C(5,3)
  EXPECT_EQ(ss::shape_count(6, 3), 56u);   // C(8,3)
  EXPECT_EQ(ss::shape_count(12, 3), 364u); // C(14,3)
}

TEST(Shapes, AllValidAndDistinct) {
  const auto shapes = ss::enumerate_shapes(5, 3);
  std::set<State> seen;
  for (const State& s : shapes) {
    EXPECT_TRUE(ss::is_valid_state(s));
    EXPECT_EQ(s.back(), 0);
    EXPECT_LE(s.front(), 3);
    EXPECT_EQ(s.size(), 5u);
    EXPECT_TRUE(seen.insert(s).second) << "duplicate shape";
  }
}

TEST(Shapes, SingleServer) {
  const auto shapes = ss::enumerate_shapes(1, 5);
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0], (State{0}));
}

TEST(Shapes, ZeroThreshold) {
  const auto shapes = ss::enumerate_shapes(4, 0);
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0], (State{0, 0, 0, 0}));
}

TEST(Shapes, ShapeOfSubtractsMinimum) {
  EXPECT_EQ(ss::shape_of({5, 4, 2}), (State{3, 2, 0}));
  EXPECT_EQ(ss::shape_of({2, 2, 2}), (State{0, 0, 0}));
}

}  // namespace
