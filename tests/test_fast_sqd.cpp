#include "sim/fast_sqd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sqd/asymptotic.h"
#include "sqd/exact_reference.h"
#include "sqd/mm_queues.h"

namespace {

using namespace rlb::sim;
using rlb::sqd::Params;

FastSqdConfig quick(Params p, std::uint64_t jobs = 600'000) {
  FastSqdConfig cfg;
  cfg.params = p;
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = 20240612;
  return cfg;
}

TEST(FastSqd, Mm1Case) {
  const double lambda = 0.75;
  const auto r = simulate_sqd_fast(quick(Params{1, 1, lambda, 1.0}));
  const rlb::sqd::Mm1 ref{lambda, 1.0};
  EXPECT_NEAR(r.mean_delay, ref.mean_sojourn(), 4.0 * r.ci95_delay + 0.05);
}

TEST(FastSqd, MatchesExactSmallSystem) {
  const Params p{3, 2, 0.7, 1.0};
  const auto exact = rlb::sqd::solve_exact_truncated(p, 33);
  const auto r = simulate_sqd_fast(quick(p, 2'000'000));
  EXPECT_NEAR(r.mean_delay, exact.mean_delay, 4.0 * r.ci95_delay + 0.02);
}

TEST(FastSqd, MatchesEventDrivenSimulator) {
  // The jump-chain estimator and the full DES must agree — they simulate
  // the same system by very different mechanisms.
  const int n = 5;
  const double lambda = 0.85;
  const auto fast = simulate_sqd_fast(quick(Params{n, 2, lambda, 1.0},
                                            1'500'000));
  ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = 1'500'000;
  cfg.warmup = 150'000;
  cfg.seed = 999;
  SqdPolicy policy(n, 2);
  const auto arr = make_exponential(lambda * n);
  const auto svc = make_exponential(1.0);
  const auto slow = simulate_cluster(cfg, policy, *arr, *svc);
  EXPECT_NEAR(fast.mean_delay, slow.mean_sojourn,
              4.0 * (fast.ci95_delay + slow.ci95_sojourn) + 0.03);
}

TEST(FastSqd, ApproachesAsymptoticForLargeN) {
  // Mitzenmacher's formula is exact as N -> infinity; N = 300 at moderate
  // load should be within a fraction of a percent.
  const double lambda = 0.75;
  const auto r = simulate_sqd_fast(quick(Params{300, 2, lambda, 1.0},
                                         2'000'000));
  const double asym = rlb::sqd::asymptotic_delay(lambda, 2);
  EXPECT_NEAR(r.mean_delay, asym, 0.01 * asym + 4.0 * r.ci95_delay);
}

TEST(FastSqd, FiniteNDelayExceedsAsymptotic) {
  // Figure 9/10 direction: small N delays are HIGHER than the asymptotic
  // prediction, especially at high utilization.
  const double lambda = 0.95;
  const auto r = simulate_sqd_fast(quick(Params{3, 2, lambda, 1.0},
                                         3'000'000));
  EXPECT_GT(r.mean_delay, rlb::sqd::asymptotic_delay(lambda, 2));
}

TEST(FastSqd, WaitIsDelayMinusService) {
  const auto r = simulate_sqd_fast(quick(Params{4, 2, 0.6, 1.0}));
  EXPECT_NEAR(r.mean_wait, r.mean_delay - 1.0, 1e-12);
  EXPECT_NEAR(r.mean_queue_seen + 1.0, r.mean_delay, 1e-12);
}

TEST(FastSqd, Reproducible) {
  const auto cfg = quick(Params{4, 2, 0.8, 1.0}, 100'000);
  const auto a = simulate_sqd_fast(cfg);
  const auto b = simulate_sqd_fast(cfg);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
}

TEST(FastSqd, MeasuresRequestedJobs) {
  const auto cfg = quick(Params{2, 1, 0.5, 1.0}, 100'000);
  const auto r = simulate_sqd_fast(cfg);
  EXPECT_EQ(r.jobs_measured, cfg.jobs - cfg.warmup);
}

}  // namespace
