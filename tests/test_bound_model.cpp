#include "sqd/bound_model.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "statespace/level_space.h"

namespace {

namespace ss = rlb::statespace;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;
using rlb::sqd::Transition;
using ss::State;

double total_rate(const std::vector<Transition>& ts) {
  double s = 0.0;
  for (const auto& t : ts) s += t.rate;
  return s;
}

std::map<State, double> as_map(const std::vector<Transition>& ts) {
  std::map<State, double> m;
  for (const auto& t : ts) m[t.to] += t.rate;
  return m;
}

// Precedence order of Eq. (5): partial sums comparison.
bool precedes(const State& a, const State& b) {
  int sa = 0, sb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa += a[i];
    sb += b[i];
    if (sa > sb) return false;
  }
  return true;
}

TEST(BoundModel, TargetsStayInSpace) {
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    for (int t : {1, 2, 3}) {
      const BoundModel model(Params{3, 2, 0.8, 1.0}, t, kind);
      const ss::LevelSpace space(3, t);
      for (const State& m : space.boundary_states()) {
        for (const auto& tr : model.transitions(m))
          EXPECT_TRUE(model.contains(tr.to))
              << ss::to_string(m) << " -> " << ss::to_string(tr.to);
      }
      for (std::size_t j = 0; j < space.block_size(); ++j) {
        const State m = space.level_state(1, j);
        for (const auto& tr : model.transitions(m))
          EXPECT_TRUE(model.contains(tr.to));
      }
    }
  }
}

TEST(BoundModel, InteriorStatesUntouched) {
  // Away from the gap boundary the bound models and the original process
  // coincide.
  const Params p{3, 2, 0.7, 1.0};
  const BoundModel lower(p, 3, BoundKind::Lower);
  const BoundModel upper(p, 3, BoundKind::Upper);
  const State m{3, 2, 1};  // gap 2 < T=3, all transitions stay inside
  const auto raw = as_map(rlb::sqd::all_transitions(m, p));
  EXPECT_EQ(as_map(lower.transitions(m)), raw);
  EXPECT_EQ(as_map(upper.transitions(m)), raw);
}

TEST(BoundModel, LowerRedirectsArrivalToShortest) {
  // m = (2, 1, 0), T = 2: arrival to the top queue would give gap 3.
  const Params p{3, 2, 0.6, 1.0};
  const BoundModel lower(p, 2, BoundKind::Lower);
  const auto ts = as_map(lower.transitions(State{2, 1, 0}));
  // (3,1,0) must not appear; its rate is folded into (2,1,1).
  EXPECT_EQ(ts.count(State{3, 1, 0}), 0u);
  ASSERT_EQ(ts.count(State{2, 1, 1}), 1u);
  // Total arrival mass preserved.
  double arrivals = 0.0;
  for (const auto& [to, rate] : ts)
    if (ss::total_jobs(to) == 4) arrivals += rate;
  EXPECT_NEAR(arrivals, p.total_arrival_rate(), 1e-12);
}

TEST(BoundModel, LowerJockeysDepartureFromLongest) {
  // m = (3, 3, 1), T = 2: the bottom-queue departure would give gap 3;
  // the lower model takes it from a longest queue instead: (3, 2, 1).
  const Params p{3, 2, 0.6, 1.0};
  const BoundModel lower(p, 2, BoundKind::Lower);
  const auto ts = as_map(lower.transitions(State{3, 3, 1}));
  EXPECT_EQ(ts.count(State{3, 3, 0}), 0u);
  ASSERT_EQ(ts.count(State{3, 2, 1}), 1u);
  // Departure mass preserved: top group rate 2 plus redirected rate 1.
  EXPECT_NEAR(ts.at(State{3, 2, 1}), 3.0 * p.mu, 1e-12);
  EXPECT_NEAR(total_rate(lower.transitions(State{3, 3, 1})),
              p.total_arrival_rate() + 3.0 * p.mu, 1e-12);
}

TEST(BoundModel, UpperRedirectsArrivalWithPhantomCompensation) {
  const Params p{3, 2, 0.6, 1.0};
  const BoundModel upper(p, 2, BoundKind::Upper);
  // For (2,1,0) the top group has zero arrival probability under d=2
  // (a singleton longest queue is never the shortest polled), so nothing
  // leaves the space and no redirect mass appears.
  const auto ts = as_map(upper.transitions(State{2, 1, 0}));
  EXPECT_EQ(ts.count(State{3, 1, 0}), 0u);
  EXPECT_EQ(ts.count(State{3, 2, 1}), 0u);
  // Use a state where the top group has positive arrival probability:
  const auto ts2 = as_map(upper.transitions(State{2, 2, 0}));
  // Arrival to top group of (2,2,0) -> (3,2,0): gap 3 > 2, redirected to
  // (3,2,1): the job lands on the longest queue and a phantom job fills
  // the (singleton) shortest queue.
  EXPECT_EQ(ts2.count(State{3, 2, 0}), 0u);
  ASSERT_EQ(ts2.count(State{3, 2, 1}), 1u);
  // With a larger bottom tie group every member gets the phantom job:
  // (3,3,1,1) at T=2, arrival to top -> (4,3,1,1) invalid, redirected to
  // (4,3,2,2).
  const BoundModel upper4(Params{4, 2, 0.6, 1.0}, 2, BoundKind::Upper);
  const auto ts3 = as_map(upper4.transitions(State{3, 3, 1, 1}));
  EXPECT_EQ(ts3.count(State{4, 3, 1, 1}), 0u);
  ASSERT_EQ(ts3.count(State{4, 3, 2, 2}), 1u);
}

TEST(BoundModel, UpperPausesBottomDeparture) {
  // m = (3, 3, 1), T = 2: bottom departure is suppressed; outflow drops.
  const Params p{3, 2, 0.6, 1.0};
  const BoundModel upper(p, 2, BoundKind::Upper);
  const auto ts = as_map(upper.transitions(State{3, 3, 1}));
  EXPECT_EQ(ts.count(State{3, 3, 0}), 0u);
  // Only the top-group departure remains (rate 2), arrivals unchanged.
  EXPECT_NEAR(total_rate(upper.transitions(State{3, 3, 1})),
              p.total_arrival_rate() + 2.0 * p.mu, 1e-12);
}

TEST(BoundModel, LowerPreservesTotalOutflow) {
  // The lower bound model only redirects, never drops, transitions.
  const Params p{4, 2, 0.9, 1.0};
  const BoundModel lower(p, 2, BoundKind::Lower);
  const ss::LevelSpace space(4, 2);
  for (const State& m : space.boundary_states()) {
    const double expected =
        p.total_arrival_rate() + ss::busy_servers(m) * p.mu;
    EXPECT_NEAR(total_rate(lower.transitions(m)), expected, 1e-10)
        << ss::to_string(m);
  }
}

TEST(BoundModel, RedirectsArePrecedenceMonotone) {
  // Every lower-model transition target must precede (or equal) some
  // original-target mass; we check the redirect rules directly: for states
  // at gap T, the lower model's targets are all <= the original ones and
  // the upper model's targets are all >= in the precedence order.
  const Params p{3, 2, 0.7, 1.0};
  const int T = 2;
  const BoundModel lower(p, T, BoundKind::Lower);
  const BoundModel upper(p, T, BoundKind::Upper);
  const ss::LevelSpace space(3, T);

  const auto check_state = [&](const State& m) {
    const auto raw = rlb::sqd::all_transitions(m, p);
    const auto low = as_map(lower.transitions(m));
    const auto up = as_map(upper.transitions(m));
    for (const auto& orig : raw) {
      if (ss::gap(orig.to) <= T) continue;  // not redirected
      // The redirected lower target must precede the original.
      for (const auto& [to, rate] : low) {
        (void)rate;
        if (ss::total_jobs(to) == ss::total_jobs(orig.to)) {
          // candidate redirect target (same job count class)
          if (raw.end() ==
              std::find_if(raw.begin(), raw.end(), [&](const auto& t) {
                return t.to == to;
              }))
            EXPECT_TRUE(precedes(to, orig.to))
                << ss::to_string(to) << " vs " << ss::to_string(orig.to);
        }
      }
      // Upper redirect: any batch target (total jump >= 2) must dominate
      // the original single-arrival target; departures are dropped.
      for (const auto& [to, rate] : up) {
        (void)rate;
        if (ss::total_jobs(to) >= ss::total_jobs(m) + 2)
          EXPECT_TRUE(precedes(orig.to, to));
      }
    }
  };
  for (const State& m : space.boundary_states()) check_state(m);
  for (std::size_t j = 0; j < space.block_size(); ++j)
    check_state(space.level_state(1, j));
}

TEST(BoundModel, ShiftInvarianceLemma1) {
  // p_{m, m'} = p_{m+1, m'+1} for fully-busy states: the transition lists
  // from m and m+1 must match modulo the +1 shift.
  const Params p{4, 3, 0.85, 1.0};
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(p, 2, kind);
    const ss::LevelSpace space(4, 2);
    for (std::size_t j = 0; j < space.block_size(); ++j) {
      const State m = space.level_state(0, j);
      const State m_shift = space.level_state(1, j);
      auto base = as_map(model.transitions(m));
      auto shifted = as_map(model.transitions(m_shift));
      ASSERT_EQ(base.size(), shifted.size());
      for (const auto& [to, rate] : base) {
        const State to_shift = ss::plus_one_everywhere(to);
        ASSERT_EQ(shifted.count(to_shift), 1u) << ss::to_string(to);
        EXPECT_NEAR(shifted.at(to_shift), rate, 1e-12);
      }
    }
  }
}

TEST(BoundModel, RequiresPositiveThreshold) {
  EXPECT_THROW(BoundModel(Params{3, 2, 0.5, 1.0}, 0, BoundKind::Lower),
               std::invalid_argument);
}

TEST(BoundModel, RejectsStateOutsideSpace) {
  const BoundModel model(Params{3, 2, 0.5, 1.0}, 1, BoundKind::Lower);
  EXPECT_THROW(model.transitions(State{3, 1, 0}), std::invalid_argument);
}

}  // namespace
