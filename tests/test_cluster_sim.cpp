#include "sim/cluster_sim.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sqd/mm_queues.h"

namespace {

using namespace rlb::sim;

ClusterConfig quick_config(int servers, std::uint64_t jobs = 400'000) {
  ClusterConfig cfg;
  cfg.servers = servers;
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = 12345;
  return cfg;
}

TEST(ClusterSim, Mm1SojournMatchesClosedForm) {
  const double lambda = 0.7;
  const rlb::sqd::Mm1 ref{lambda, 1.0};
  SqdPolicy policy(1, 1);
  const auto arr = make_exponential(lambda);
  const auto svc = make_exponential(1.0);
  const auto r = simulate_cluster(quick_config(1), policy, *arr, *svc);
  EXPECT_NEAR(r.mean_sojourn, ref.mean_sojourn(), 4.0 * r.ci95_sojourn + 0.05);
  EXPECT_NEAR(r.mean_wait, ref.mean_wait(), 4.0 * r.ci95_sojourn + 0.05);
  EXPECT_NEAR(r.utilization, lambda, 0.02);
}

TEST(ClusterSim, LittleLawHolds) {
  const double lambda = 0.6;
  SqdPolicy policy(1, 1);
  const auto arr = make_exponential(lambda);
  const auto svc = make_exponential(1.0);
  const auto r = simulate_cluster(quick_config(1), policy, *arr, *svc);
  // L = lambda * T over the measured window.
  EXPECT_NEAR(r.mean_jobs_in_system, lambda * r.mean_sojourn, 0.1);
}

TEST(ClusterSim, MdOneKingmanShape) {
  // M/D/1: E[W] = rho/(2(1-rho)) * E[S]; half the M/M/1 wait.
  const double lambda = 0.8;
  SqdPolicy policy(1, 1);
  const auto arr = make_exponential(lambda);
  const auto svc = make_deterministic(1.0);
  const auto r = simulate_cluster(quick_config(1, 600'000), policy, *arr, *svc);
  const double expected_wait = lambda / (2.0 * (1.0 - lambda));
  EXPECT_NEAR(r.mean_wait, expected_wait, 0.1);
}

TEST(ClusterSim, JsqEquivalentToSqN) {
  // SQ(N) must produce statistically identical results to the JSQ scan.
  const int n = 4;
  ClusterConfig cfg = quick_config(n);
  const double lambda = 0.8;
  const auto arr = make_exponential(lambda * n);
  const auto svc = make_exponential(1.0);
  SqdPolicy sqn(n, n);
  JsqPolicy jsq;
  const auto a = simulate_cluster(cfg, sqn, *arr, *svc);
  const auto b = simulate_cluster(cfg, jsq, *arr, *svc);
  EXPECT_NEAR(a.mean_sojourn, b.mean_sojourn,
              3.0 * (a.ci95_sojourn + b.ci95_sojourn) + 0.02);
}

TEST(ClusterSim, PowerOfTwoOrdering) {
  // sojourn(SQ(1)) > sojourn(SQ(2)) > sojourn(JSQ) at high load.
  const int n = 8;
  const double lambda = 0.9;
  ClusterConfig cfg = quick_config(n);
  const auto arr = make_exponential(lambda * n);
  const auto svc = make_exponential(1.0);
  SqdPolicy sq1(n, 1), sq2(n, 2);
  JsqPolicy jsq;
  const double d1 = simulate_cluster(cfg, sq1, *arr, *svc).mean_sojourn;
  const double d2 = simulate_cluster(cfg, sq2, *arr, *svc).mean_sojourn;
  const double dn = simulate_cluster(cfg, jsq, *arr, *svc).mean_sojourn;
  EXPECT_GT(d1, 2.0 * d2);  // the power of two
  EXPECT_GT(d2, dn);
}

TEST(ClusterSim, RoundRobinBeatsRandomForDeterministicService) {
  const int n = 4;
  const double lambda = 0.85;
  ClusterConfig cfg = quick_config(n);
  const auto arr = make_exponential(lambda * n);
  const auto svc = make_deterministic(1.0);
  SqdPolicy random_policy(n, 1);
  RoundRobinPolicy rr;
  const double rand_delay =
      simulate_cluster(cfg, random_policy, *arr, *svc).mean_sojourn;
  const double rr_delay = simulate_cluster(cfg, rr, *arr, *svc).mean_sojourn;
  EXPECT_LT(rr_delay, rand_delay);
}

TEST(ClusterSim, DeterministicSeedsReproduce) {
  SqdPolicy policy(2, 2);
  const auto arr = make_exponential(1.2);
  const auto svc = make_exponential(1.0);
  const auto cfg = quick_config(2, 50'000);
  const auto a = simulate_cluster(cfg, policy, *arr, *svc);
  const auto b = simulate_cluster(cfg, policy, *arr, *svc);
  EXPECT_DOUBLE_EQ(a.mean_sojourn, b.mean_sojourn);
  EXPECT_EQ(a.jobs_measured, b.jobs_measured);
}

TEST(ClusterSim, CountsMeasuredJobs) {
  const auto cfg = quick_config(2, 100'000);
  SqdPolicy policy(2, 2);
  const auto arr = make_exponential(1.0);
  const auto svc = make_exponential(1.0);
  const auto r = simulate_cluster(cfg, policy, *arr, *svc);
  EXPECT_EQ(r.jobs_measured, cfg.jobs - cfg.warmup);
  EXPECT_GT(r.sim_time, 0.0);
}

TEST(ClusterSim, RejectsBadWarmup) {
  ClusterConfig cfg = quick_config(1, 100);
  cfg.warmup = 100;
  SqdPolicy policy(1, 1);
  const auto arr = make_exponential(0.5);
  const auto svc = make_exponential(1.0);
  EXPECT_THROW(simulate_cluster(cfg, policy, *arr, *svc),
               std::invalid_argument);
}

}  // namespace

namespace {

TEST(ClusterSim, QuantilesMatchMm1ClosedForm) {
  // M/M/1 sojourn is Exp(mu - lambda): quantiles -ln(1-q)/(mu-lambda).
  const double lambda = 0.6;
  SqdPolicy policy(1, 1);
  const auto arr = make_exponential(lambda);
  const auto svc = make_exponential(1.0);
  const auto r = simulate_cluster(quick_config(1, 600'000), policy, *arr, *svc);
  const double rate = 1.0 - lambda;
  EXPECT_NEAR(r.p50_sojourn, std::log(2.0) / rate, 0.1);
  EXPECT_NEAR(r.p95_sojourn, -std::log(0.05) / rate, 0.4);
  EXPECT_NEAR(r.p99_sojourn, -std::log(0.01) / rate, 1.0);
  EXPECT_LT(r.p50_sojourn, r.p95_sojourn);
  EXPECT_LT(r.p95_sojourn, r.p99_sojourn);
}

TEST(ClusterSim, HeterogeneousSpeedsScaleService) {
  // A single server at speed 2 behaves like an M/M/1 with mu = 2.
  ClusterConfig cfg = quick_config(1, 400'000);
  cfg.server_speeds = {2.0};
  SqdPolicy policy(1, 1);
  const auto arr = make_exponential(1.0);  // rho = 0.5 against mu = 2
  const auto svc = make_exponential(1.0);
  const auto r = simulate_cluster(cfg, policy, *arr, *svc);
  const rlb::sqd::Mm1 ref{1.0, 2.0};
  EXPECT_NEAR(r.mean_sojourn, ref.mean_sojourn(), 0.05);
}

TEST(ClusterSim, HeterogeneityHurtsSpeedObliviousPolicies) {
  // Same total capacity, skewed speeds: SQ(2), which only sees queue
  // LENGTHS, does worse than on the homogeneous fleet.
  const int n = 8;
  const double rho = 0.85;
  ClusterConfig cfg = quick_config(n, 400'000);
  SqdPolicy policy(n, 2);
  const auto arr = make_exponential(rho * n);
  const auto svc = make_exponential(1.0);
  const auto homo = simulate_cluster(cfg, policy, *arr, *svc);
  cfg.server_speeds.assign(n, 1.0);
  for (int s = 0; s < n / 2; ++s) {
    cfg.server_speeds[s] = 1.6;
    cfg.server_speeds[n / 2 + s] = 0.4;
  }
  const auto hetero = simulate_cluster(cfg, policy, *arr, *svc);
  EXPECT_GT(hetero.mean_sojourn, 1.1 * homo.mean_sojourn);
}

TEST(ClusterSim, SpeedVectorValidated) {
  ClusterConfig cfg = quick_config(2, 1000);
  cfg.server_speeds = {1.0};  // wrong arity
  SqdPolicy policy(2, 1);
  const auto arr = make_exponential(1.0);
  const auto svc = make_exponential(1.0);
  EXPECT_THROW(simulate_cluster(cfg, policy, *arr, *svc),
               std::invalid_argument);
  cfg.server_speeds = {1.0, -1.0};
  EXPECT_THROW(simulate_cluster(cfg, policy, *arr, *svc),
               std::invalid_argument);
}

/// Audits the engine's idle-queue view against ground truth on every
/// arrival, then routes uniformly. Clones share the audit counter (fine:
/// the tests below run a single serial replica).
class IdleAuditPolicy final : public Policy {
 public:
  explicit IdleAuditPolicy(int* audits) : audits_(audits) {}
  int select(const ClusterState& c, Rng& rng) override {
    int idle_truth = 0;
    for (int s = 0; s < c.servers(); ++s)
      if (c.queue_length(s) == 0) ++idle_truth;
    EXPECT_EQ(c.idle_servers(), idle_truth);
    for (int i = 0; i < c.idle_servers(); ++i)
      EXPECT_EQ(c.queue_length(c.idle_server(i)), 0);
    ++*audits_;
    return static_cast<int>(rng.uniform_int(c.servers()));
  }
  std::string name() const override { return "idle-audit"; }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<IdleAuditPolicy>(*this);
  }

 private:
  int* audits_;
};

TEST(ClusterSim, IdleQueueViewMatchesQueueLengths) {
  ClusterConfig cfg = quick_config(4, 20'000);
  int audits = 0;
  IdleAuditPolicy policy(&audits);
  const auto arr = make_exponential(0.8 * 4);
  const auto svc = make_exponential(1.0);
  simulate_cluster(cfg, policy, *arr, *svc);
  EXPECT_EQ(audits, 20'000);
}

/// Records every selection of an inner policy (shared log; serial use).
class RecordingPolicy final : public Policy {
 public:
  RecordingPolicy(std::unique_ptr<Policy> inner, std::vector<int>* log)
      : inner_(std::move(inner)), log_(log) {}
  RecordingPolicy(const RecordingPolicy& other)
      : inner_(other.inner_->clone()), log_(other.log_) {}
  int select(const ClusterState& c, Rng& rng) override {
    const int s = inner_->select(c, rng);
    log_->push_back(s);
    return s;
  }
  std::string name() const override { return inner_->name(); }
  void reset() override { inner_->reset(); }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<RecordingPolicy>(*this);
  }

 private:
  std::unique_ptr<Policy> inner_;
  std::vector<int>* log_;
};

TEST(ClusterSim, JiqServesFirstIdleFirst) {
  // Deterministic timing: one job in the system at a time, so every
  // arrival finds every server idle. The I-queue then rotates — JIQ must
  // alternate servers instead of hammering index 0 like the default
  // index-order scan would.
  ClusterConfig cfg = quick_config(2, 10);
  cfg.warmup = 1;
  std::vector<int> log;
  RecordingPolicy policy(std::make_unique<JiqPolicy>(2), &log);
  const auto arr = make_deterministic(1.0);
  const auto svc = make_deterministic(0.5);
  simulate_cluster(cfg, policy, *arr, *svc);
  ASSERT_EQ(log.size(), 10u);
  for (std::size_t i = 0; i < log.size(); ++i)
    EXPECT_EQ(log[i], static_cast<int>(i % 2)) << i;
}

TEST(ClusterSim, JiqMatchesJsqWhileServersStayIdle) {
  // Single-job-at-a-time deterministic traffic: both policies always join
  // an idle server, so wait is exactly zero and sojourn is the service
  // time.
  ClusterConfig cfg = quick_config(4, 5'000);
  JiqPolicy jiq(4);
  JsqPolicy jsq;
  const auto arr = make_deterministic(1.0);
  const auto svc = make_deterministic(0.5);
  const auto r_jiq = simulate_cluster(cfg, jiq, *arr, *svc);
  const auto r_jsq = simulate_cluster(cfg, jsq, *arr, *svc);
  EXPECT_DOUBLE_EQ(r_jiq.mean_wait, 0.0);
  EXPECT_DOUBLE_EQ(r_jsq.mean_wait, 0.0);
  EXPECT_DOUBLE_EQ(r_jiq.mean_sojourn, 0.5);
  EXPECT_DOUBLE_EQ(r_jsq.mean_sojourn, 0.5);
}

TEST(ClusterSim, JiqNearJsqAtLowLoadStochastically) {
  // At rho = 0.4 an idle server almost always exists, so JIQ's mean delay
  // sits within a few percent of JSQ's.
  ClusterConfig cfg = quick_config(8);
  const double rho = 0.4;
  JiqPolicy jiq(8);
  JsqPolicy jsq;
  const auto arr = make_exponential(rho * 8);
  const auto svc = make_exponential(1.0);
  const auto r_jiq = simulate_cluster(cfg, jiq, *arr, *svc);
  const auto r_jsq = simulate_cluster(cfg, jsq, *arr, *svc);
  EXPECT_NEAR(r_jiq.mean_sojourn, r_jsq.mean_sojourn,
              0.03 * r_jsq.mean_sojourn);
}

TEST(ClusterSim, BatchArrivalsInflateDelayAtEqualLoad) {
  // Same mean job rate, clumped arrivals: delay must rise with the batch
  // size (the batch_arrivals scenario's headline effect).
  const int n = 4;
  const double rho = 0.8;
  ClusterConfig cfg = quick_config(n);
  SqdPolicy policy(n, 2);
  const auto svc = make_exponential(1.0);

  const auto plain_gap = make_exponential(rho * n);
  RenewalArrivals plain(*plain_gap);
  const auto plain_r = simulate_cluster(cfg, policy, plain, *svc);

  const auto batch_gap = make_exponential(rho * n / 4.0);
  BatchArrivalProcess batched(std::make_unique<RenewalArrivals>(*batch_gap),
                              4.0, BatchArrivalProcess::BatchSizes::Fixed);
  const auto batch_r = simulate_cluster(cfg, policy, batched, *svc);

  EXPECT_NEAR(plain_r.utilization, batch_r.utilization, 0.02);
  EXPECT_GT(batch_r.mean_sojourn, 1.2 * plain_r.mean_sojourn);
}

TEST(ClusterSim, QuantileKnobsTouchOnlyTheQuantiles) {
  // The reservoir's capacity and seed salt (hoisted ClusterConfig knobs)
  // feed a SEPARATE RNG: changing them must leave every non-quantile
  // statistic bit-identical.
  ClusterConfig base = quick_config(4, 120'000);
  SqdPolicy policy(4, 2);
  const auto arr = make_exponential(0.9 * 4);
  const auto svc = make_exponential(1.0);
  const auto ref = simulate_cluster(base, policy, *arr, *svc);

  ClusterConfig salted = base;
  salted.quantile_seed_salt = 0x1234'5678ull;
  const auto r1 = simulate_cluster(salted, policy, *arr, *svc);
  ClusterConfig small = base;
  small.quantile_reservoir = 500;  // heavy reservoir subsampling
  const auto r2 = simulate_cluster(small, policy, *arr, *svc);

  for (const auto& r : {r1, r2}) {
    EXPECT_DOUBLE_EQ(r.mean_sojourn, ref.mean_sojourn);
    EXPECT_DOUBLE_EQ(r.mean_wait, ref.mean_wait);
    EXPECT_DOUBLE_EQ(r.ci95_sojourn, ref.ci95_sojourn);
    EXPECT_DOUBLE_EQ(r.utilization, ref.utilization);
    EXPECT_DOUBLE_EQ(r.sim_time, ref.sim_time);
    // Quantiles still estimate the same distribution.
    EXPECT_NEAR(r.p99_sojourn, ref.p99_sojourn, 0.25 * ref.p99_sojourn);
  }

  ClusterConfig bad = base;
  bad.quantile_reservoir = 0;
  EXPECT_THROW(simulate_cluster(bad, policy, *arr, *svc),
               std::invalid_argument);
}

TEST(ClusterSim, WindowsAndSlaLeaveClassicOutputsUntouched) {
  // Windowed statistics and SLA counting consume no simulation RNG:
  // enabling them must leave every pre-existing output bit-identical to
  // an un-windowed run of the same configuration.
  ClusterConfig base = quick_config(4, 120'000);
  SqdPolicy policy(4, 2);
  const auto arr = make_exponential(0.85 * 4);
  const auto svc = make_exponential(1.0);
  const auto ref = simulate_cluster(base, policy, *arr, *svc);
  EXPECT_TRUE(ref.windows.empty());
  EXPECT_EQ(ref.sla_violations, 0u);

  ClusterConfig windowed = base;
  windowed.window_width = 500.0;
  windowed.sla_threshold = 4.0;
  const auto r = simulate_cluster(windowed, policy, *arr, *svc);
  EXPECT_DOUBLE_EQ(r.mean_sojourn, ref.mean_sojourn);
  EXPECT_DOUBLE_EQ(r.mean_wait, ref.mean_wait);
  EXPECT_DOUBLE_EQ(r.ci95_sojourn, ref.ci95_sojourn);
  EXPECT_DOUBLE_EQ(r.p99_sojourn, ref.p99_sojourn);
  EXPECT_DOUBLE_EQ(r.utilization, ref.utilization);
  EXPECT_DOUBLE_EQ(r.sim_time, ref.sim_time);
  EXPECT_FALSE(r.windows.empty());
  EXPECT_GT(r.sla_violations, 0u);
  // Window counts cover every departure (warmup included), so they sum
  // to the full arrival budget, not just jobs_measured.
  std::uint64_t total = 0;
  for (const auto& w : r.windows) total += w.count;
  EXPECT_EQ(total, windowed.jobs);

  ClusterConfig bad = base;
  bad.window_width = -1.0;
  EXPECT_THROW(simulate_cluster(bad, policy, *arr, *svc),
               std::invalid_argument);
}

TEST(ClusterSim, WindowedOutputsAreReplicaAndBudgetInvariant) {
  // The determinism contract extends to the windowed view: for a fixed
  // replica count, the thread budget never changes a single window.
  for (int replicas : {1, 3}) {
    ClusterConfig cfg = quick_config(6, 60'000);
    cfg.replicas = replicas;
    cfg.window_width = 400.0;
    cfg.sla_threshold = 3.0;
    const auto arr = make_exponential(0.85 * 6);
    const auto svc = make_exponential(1.0);
    SqdPolicy policy(6, 2);
    const auto serial = simulate_cluster(cfg, policy, *arr, *svc,
                                         rlb::util::ThreadBudget::serial());
    rlb::util::ThreadBudget four(4);
    const auto parallel = simulate_cluster(cfg, policy, *arr, *svc, four);
    EXPECT_EQ(parallel.sla_violations, serial.sla_violations);
    ASSERT_EQ(parallel.windows.size(), serial.windows.size());
    for (std::size_t w = 0; w < serial.windows.size(); ++w) {
      EXPECT_EQ(parallel.windows[w].count, serial.windows[w].count) << w;
      EXPECT_DOUBLE_EQ(parallel.windows[w].mean_sojourn,
                       serial.windows[w].mean_sojourn)
          << w;
      EXPECT_DOUBLE_EQ(parallel.windows[w].p99_sojourn,
                       serial.windows[w].p99_sojourn)
          << w;
    }
  }
}

TEST(ClusterSim, HeavyTailServiceInflatesDelayAtEqualMeanLoad) {
  // Pareto service (alpha = 1.6, infinite variance) at the same mean
  // load must hurt: mean sojourn and p99 both above the exponential run.
  ClusterConfig cfg = quick_config(8, 200'000);
  SqdPolicy policy(8, 2);
  const auto arr = make_exponential(0.85 * 8);
  const auto exp_svc = make_exponential(1.0);
  const auto pareto_svc = make_pareto_mean(1.0, 1.6);
  const auto light = simulate_cluster(cfg, policy, *arr, *exp_svc);
  const auto heavy = simulate_cluster(cfg, policy, *arr, *pareto_svc);
  EXPECT_GT(heavy.mean_sojourn, light.mean_sojourn);
  EXPECT_GT(heavy.p99_sojourn, 1.5 * light.p99_sojourn);
  EXPECT_NEAR(heavy.utilization, light.utilization, 0.05);
}

TEST(ClusterSim, NewPoliciesAreReplicaAndBudgetInvariant) {
  // The PR-2 contract extended to the new policies: for a fixed replica
  // count the thread budget never changes the output.
  for (int replicas : {1, 3}) {
    ClusterConfig cfg = quick_config(6, 60'000);
    cfg.replicas = replicas;
    const auto arr = make_exponential(0.85 * 6);
    const auto svc = make_exponential(1.0);
    JiqPolicy jiq(6);
    JbtPolicy jbt(6, 2, 3);
    for (Policy* policy : {static_cast<Policy*>(&jiq),
                           static_cast<Policy*>(&jbt)}) {
      const auto serial = simulate_cluster(cfg, *policy, *arr, *svc,
                                           rlb::util::ThreadBudget::serial());
      rlb::util::ThreadBudget four(4);
      const auto parallel = simulate_cluster(cfg, *policy, *arr, *svc, four);
      EXPECT_DOUBLE_EQ(parallel.mean_sojourn, serial.mean_sojourn)
          << policy->name() << " replicas=" << replicas;
      EXPECT_DOUBLE_EQ(parallel.p99_sojourn, serial.p99_sojourn)
          << policy->name() << " replicas=" << replicas;
    }
  }
}

}  // namespace
