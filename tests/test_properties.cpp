// Cross-module property sweeps (parameterized): the invariants every
// configuration must satisfy, run over a grid of (N, d, T, rho).
#include <cmath>

#include <gtest/gtest.h>

#include "qbd/solver.h"
#include "sim/fast_sqd.h"
#include "sim/rng.h"
#include "sqd/bound_solver.h"
#include "statespace/level_space.h"

namespace {

namespace ss = rlb::statespace;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

struct Config {
  int n, d, t;
  double rho;
};

std::vector<Config> grid() {
  std::vector<Config> out;
  for (int n : {2, 3, 5}) {
    for (int d : {1, 2, n}) {
      if (d > n) continue;
      if (d == n && n == 2) continue;  // avoid duplicating d = 2
      for (int t : {1, 2, 3}) {
        for (double rho : {0.35, 0.75, 0.92}) {
          out.push_back({n, d, t, rho});
        }
      }
    }
  }
  return out;
}

class GridTest : public ::testing::TestWithParam<Config> {};

TEST_P(GridTest, GeneratorAndSolutionInvariants) {
  const Config c = GetParam();
  const Params p{c.n, c.d, c.rho, 1.0};

  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(p, c.t, kind);
    const auto q = rlb::sqd::build_bound_qbd(model);
    // Generator structure.
    EXPECT_LT(q.blocks.generator_row_sum_error(), 1e-9);
    EXPECT_EQ(q.blocks.block_size(), ss::shape_count(c.n, c.t));

    try {
      const auto sol = rlb::qbd::solve(q.blocks);
      // Probabilities are a distribution.
      EXPECT_NEAR(sol.total_probability, 1.0, 1e-8);
      for (double v : sol.pi_boundary) EXPECT_GE(v, -1e-10);
      for (double v : sol.pi0) EXPECT_GE(v, -1e-10);
      for (double v : sol.pi1) EXPECT_GE(v, -1e-10);
      // R is a residual-free solution of the quadratic.
      EXPECT_LT(rlb::qbd::r_residual(q.blocks.A0, q.blocks.A1, q.blocks.A2,
                                     sol.R),
                1e-9);
    } catch (const rlb::qbd::UnstableError&) {
      EXPECT_EQ(kind, BoundKind::Upper)
          << "lower model must be stable for rho < 1";
    }
  }
}

TEST_P(GridTest, LowerBoundBelowUpperBound) {
  const Config c = GetParam();
  const Params p{c.n, c.d, c.rho, 1.0};
  const double lower =
      rlb::sqd::solve_bound(BoundModel(p, c.t, BoundKind::Lower))
          .mean_waiting_jobs;
  try {
    const double upper =
        rlb::sqd::solve_bound(BoundModel(p, c.t, BoundKind::Upper))
            .mean_waiting_jobs;
    EXPECT_LE(lower, upper + 1e-8);
  } catch (const rlb::qbd::UnstableError&) {
    // vacuous bound
  }
}

TEST_P(GridTest, ImprovedLowerAgreesWithGeneric) {
  const Config c = GetParam();
  const Params p{c.n, c.d, c.rho, 1.0};
  const BoundModel model(p, c.t, BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  const double generic = rlb::sqd::solve_bound(model, q).mean_waiting_jobs;
  const double improved =
      rlb::sqd::solve_lower_improved(model, q, c.rho).mean_waiting_jobs;
  EXPECT_NEAR(generic, improved, 1e-6 * (1.0 + generic));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridTest, ::testing::ValuesIn(grid()),
                         [](const auto& info) {
                           const Config& c = info.param;
                           return "N" + std::to_string(c.n) + "d" +
                                  std::to_string(c.d) + "T" +
                                  std::to_string(c.t) + "rho" +
                                  std::to_string(int(c.rho * 100));
                         });

// Simulation sandwich where no exact reference exists (larger N).
struct SimCase {
  int n, d, t;
  double rho;
};

class SimSandwichTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimSandwichTest, BoundsSandwichSimulatedDelay) {
  const SimCase c = GetParam();
  const Params p{c.n, c.d, c.rho, 1.0};
  rlb::sim::FastSqdConfig cfg;
  cfg.params = p;
  cfg.jobs = 1'500'000;
  cfg.warmup = 150'000;
  cfg.seed = 4242;
  const auto sim = rlb::sim::simulate_sqd_fast(cfg);
  const double margin = 5.0 * sim.ci95_delay + 0.01;

  const double lower =
      rlb::sqd::solve_lower_improved(BoundModel(p, c.t, BoundKind::Lower))
          .mean_delay;
  EXPECT_LE(lower, sim.mean_delay + margin);

  try {
    const double upper =
        rlb::sqd::solve_bound(BoundModel(p, c.t, BoundKind::Upper))
            .mean_delay;
    EXPECT_GE(upper, sim.mean_delay - margin);
  } catch (const rlb::qbd::UnstableError&) {
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimSandwichTest,
    ::testing::Values(SimCase{6, 2, 2, 0.6}, SimCase{6, 2, 3, 0.85},
                      SimCase{6, 3, 3, 0.75}, SimCase{8, 2, 2, 0.7},
                      SimCase{12, 2, 3, 0.8}, SimCase{12, 4, 2, 0.6}),
    [](const auto& info) {
      const SimCase& c = info.param;
      return "N" + std::to_string(c.n) + "d" + std::to_string(c.d) + "T" +
             std::to_string(c.t) + "rho" + std::to_string(int(c.rho * 100));
    });

// Randomized structural fuzzing of the transition law.
TEST(TransitionFuzz, InvariantsOnRandomStates) {
  rlb::sim::Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(6));
    const int d = 1 + static_cast<int>(rng.uniform_int(n));
    const Params p{n, d, 0.1 + 0.8 * rng.next_double(), 1.0};
    // Random sorted state.
    ss::State m(n);
    for (int& v : m) v = static_cast<int>(rng.uniform_int(6));
    std::sort(m.rbegin(), m.rend());

    double arrival_rate = 0.0;
    for (const auto& t : rlb::sqd::arrival_transitions(m, p)) {
      EXPECT_TRUE(ss::is_valid_state(t.to));
      EXPECT_EQ(ss::total_jobs(t.to), ss::total_jobs(m) + 1);
      arrival_rate += t.rate;
    }
    EXPECT_NEAR(arrival_rate, p.total_arrival_rate(), 1e-9);

    double departure_rate = 0.0;
    for (const auto& t : rlb::sqd::departure_transitions(m, p)) {
      EXPECT_TRUE(ss::is_valid_state(t.to));
      EXPECT_EQ(ss::total_jobs(t.to), ss::total_jobs(m) - 1);
      departure_rate += t.rate;
    }
    EXPECT_NEAR(departure_rate, ss::busy_servers(m) * p.mu, 1e-9);
  }
}

// Randomized fuzzing of the bound-model redirects.
TEST(BoundModelFuzz, TargetsAlwaysInSpaceAndRatesConserved) {
  rlb::sim::Rng rng(778);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(5));
    const int d = 1 + static_cast<int>(rng.uniform_int(n));
    const int t = 1 + static_cast<int>(rng.uniform_int(3));
    const Params p{n, d, 0.1 + 0.85 * rng.next_double(), 1.0};
    // Random state in S(T): base + bounded shape.
    ss::State m(n);
    m[n - 1] = static_cast<int>(rng.uniform_int(4));
    for (int i = n - 2; i >= 0; --i)
      m[i] = m[i + 1] + static_cast<int>(rng.uniform_int(2));
    if (ss::gap(m) > t) continue;

    for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
      const BoundModel model(p, t, kind);
      double rate = 0.0;
      for (const auto& tr : model.transitions(m)) {
        EXPECT_TRUE(model.contains(tr.to)) << ss::to_string(tr.to);
        rate += tr.rate;
      }
      const double expected =
          p.total_arrival_rate() + ss::busy_servers(m) * p.mu;
      if (kind == BoundKind::Lower) {
        EXPECT_NEAR(rate, expected, 1e-9);  // redirects conserve outflow
      } else {
        EXPECT_LE(rate, expected + 1e-9);  // pauses can only drop outflow
      }
    }
  }
}

}  // namespace
