#include "sim/replica.h"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sim/fast_sqd.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "util/thread_budget.h"

namespace {

using rlb::sim::BatchMeans;
using rlb::sim::FastSqdConfig;
using rlb::sim::ReplicaPlan;
using rlb::sim::replica_seed;
using rlb::sim::run_replicas;
using rlb::sim::simulate_sqd_fast;
using rlb::sim::StreamingMoments;
using rlb::util::ThreadBudget;
using rlb::sqd::Params;

// ---------------------------------------------------------------------------
// ThreadBudget
// ---------------------------------------------------------------------------

TEST(ThreadBudget, AcquireReleaseAccounting) {
  ThreadBudget budget(4);
  EXPECT_EQ(budget.total(), 4);
  EXPECT_EQ(budget.available(), 3);  // caller owns one slot
  EXPECT_EQ(budget.try_acquire(2), 2);
  EXPECT_EQ(budget.available(), 1);
  EXPECT_EQ(budget.try_acquire(5), 1);  // only one left
  EXPECT_EQ(budget.try_acquire(1), 0);  // exhausted
  budget.release(3);
  EXPECT_EQ(budget.available(), 3);
  EXPECT_EQ(budget.try_acquire(0), 0);
}

TEST(ThreadBudget, SerialBudgetNeverGrantsSlots) {
  ThreadBudget& serial = ThreadBudget::serial();
  EXPECT_EQ(serial.total(), 1);
  EXPECT_EQ(serial.try_acquire(8), 0);
}

TEST(ThreadBudget, RejectsEmptyBudget) {
  EXPECT_THROW(ThreadBudget(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ReplicaPlan and seeds
// ---------------------------------------------------------------------------

TEST(ReplicaPlan, SplitDividesJobsAndWarmupEvenly) {
  const ReplicaPlan plan = ReplicaPlan::split(4, 1'000'000, 100'000, 7);
  EXPECT_EQ(plan.replicas, 4);
  EXPECT_EQ(plan.jobs_per_replica, 250'000u);
  EXPECT_EQ(plan.warmup, 25'000u);
  EXPECT_EQ(plan.base_seed, 7u);
}

TEST(ReplicaPlan, GuardsDegenerateConfigs) {
  EXPECT_THROW(ReplicaPlan::split(0, 1000, 100, 1), std::invalid_argument);
  EXPECT_THROW(ReplicaPlan::split(1, 1000, 1000, 1), std::invalid_argument);
  EXPECT_THROW(ReplicaPlan::split(1, 100, 200, 1), std::invalid_argument);
  // Sharding so thin every replica is pure warmup must be rejected, not
  // silently return zero-batch results.
  EXPECT_THROW(ReplicaPlan::split(600, 1000, 900, 1), std::invalid_argument);
  ReplicaPlan zero;
  zero.replicas = 0;
  zero.jobs_per_replica = 10;
  EXPECT_THROW(zero.validate(), std::invalid_argument);
}

TEST(ReplicaSeed, Replica0KeepsBaseSeedOthersDecorrelate) {
  // Replica 0 continues the legacy serial stream, so a single-replica run
  // is bit-identical with the pre-replica code path.
  EXPECT_EQ(replica_seed(42, 0), 42u);
  std::vector<std::uint64_t> seeds;
  for (int r = 0; r < 64; ++r) seeds.push_back(replica_seed(42, r));
  for (std::size_t a = 0; a < seeds.size(); ++a)
    for (std::size_t b = a + 1; b < seeds.size(); ++b)
      EXPECT_NE(seeds[a], seeds[b]) << "replicas " << a << ", " << b;
  EXPECT_EQ(replica_seed(42, 7), replica_seed(42, 7));
  EXPECT_NE(replica_seed(42, 7), replica_seed(43, 7));
}

// ---------------------------------------------------------------------------
// run_replicas
// ---------------------------------------------------------------------------

ReplicaPlan tiny_plan(int replicas) {
  ReplicaPlan plan;
  plan.replicas = replicas;
  plan.jobs_per_replica = 10;
  plan.warmup = 0;
  plan.base_seed = 11;
  return plan;
}

TEST(RunReplicas, MergesInIndexOrderForAnyBudget) {
  // A merge that is NOT commutative (string concatenation) detects any
  // ordering leak from the thread schedule.
  const auto run = [](int replica, std::uint64_t seed) {
    rlb::sim::Rng rng(seed);
    return std::to_string(replica) + ":" +
           std::to_string(rng.next_u64() % 1000) + ";";
  };
  const auto merge = [](std::string& into, const std::string& from) {
    into += from;
  };
  const std::string serial = run_replicas<std::string>(
      tiny_plan(16), ThreadBudget::serial(), run, merge);
  for (int trial = 0; trial < 5; ++trial) {
    ThreadBudget budget(4);
    EXPECT_EQ(run_replicas<std::string>(tiny_plan(16), budget, run, merge),
              serial);
  }
}

TEST(RunReplicas, PropagatesExceptions) {
  ThreadBudget budget(4);
  const auto run = [](int replica, std::uint64_t) -> int {
    if (replica == 5) throw std::runtime_error("replica 5 exploded");
    return replica;
  };
  const auto merge = [](int& into, const int& from) { into += from; };
  EXPECT_THROW(run_replicas<int>(tiny_plan(8), budget, run, merge),
               std::runtime_error);
  EXPECT_THROW(run_replicas<int>(tiny_plan(8), ThreadBudget::serial(), run,
                                 merge),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Replica-mode simulators
// ---------------------------------------------------------------------------

FastSqdConfig fast_cfg(int replicas, std::uint64_t jobs = 400'000) {
  FastSqdConfig cfg;
  cfg.params = Params{4, 2, 0.8, 1.0};
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = 20240612;
  cfg.replicas = replicas;
  return cfg;
}

TEST(ReplicaSim, FastSqdSingleReplicaMatchesLegacySerialPath) {
  // replicas == 1 must reproduce the plain entry point bit-for-bit.
  const auto cfg = fast_cfg(1, 100'000);
  const auto serial = simulate_sqd_fast(cfg);
  ThreadBudget budget(4);
  const auto budgeted = simulate_sqd_fast(cfg, budget);
  EXPECT_DOUBLE_EQ(serial.mean_delay, budgeted.mean_delay);
  EXPECT_DOUBLE_EQ(serial.ci95_delay, budgeted.ci95_delay);
  EXPECT_EQ(serial.jobs_measured, budgeted.jobs_measured);
}

TEST(ReplicaSim, FastSqdReplicasDeterministicAcrossThreadCounts) {
  const auto cfg = fast_cfg(8, 200'000);
  const auto serial = simulate_sqd_fast(cfg);
  for (int threads : {2, 4}) {
    ThreadBudget budget(threads);
    const auto parallel = simulate_sqd_fast(cfg, budget);
    EXPECT_DOUBLE_EQ(serial.mean_delay, parallel.mean_delay);
    EXPECT_DOUBLE_EQ(serial.mean_wait, parallel.mean_wait);
    EXPECT_DOUBLE_EQ(serial.ci95_delay, parallel.ci95_delay);
    EXPECT_DOUBLE_EQ(serial.mean_queue_seen, parallel.mean_queue_seen);
    EXPECT_EQ(serial.jobs_measured, parallel.jobs_measured);
  }
}

TEST(ReplicaSim, FastSqdReplicasAgreeWithSingleStream) {
  // R independent replicas estimate the same stationary quantity; the
  // merged mean must agree with a single long run within joint CIs.
  const auto one = simulate_sqd_fast(fast_cfg(1));
  const auto eight = simulate_sqd_fast(fast_cfg(8));
  EXPECT_EQ(eight.jobs_measured,
            8u * (400'000u / 8 - 40'000u / 8));
  EXPECT_NEAR(one.mean_delay, eight.mean_delay,
              4.0 * (one.ci95_delay + eight.ci95_delay) + 0.02);
}

TEST(ReplicaSim, FastSqdGuardsDegenerateConfigs) {
  auto cfg = fast_cfg(0);
  EXPECT_THROW(simulate_sqd_fast(cfg), std::invalid_argument);
  cfg = fast_cfg(1);
  cfg.warmup = cfg.jobs;  // jobs <= warmup
  EXPECT_THROW(simulate_sqd_fast(cfg), std::invalid_argument);
  cfg = fast_cfg(4);
  cfg.batch_size = cfg.jobs;  // bigger than the per-replica measured count
  EXPECT_THROW(simulate_sqd_fast(cfg), std::invalid_argument);
}

TEST(ReplicaSim, CiHalfwidthShrinksLikeSqrtReplicas) {
  // Fixed per-replica effort: R times the data should shrink the pooled
  // CI half-width like 1/sqrt(R). Compare R=2 vs R=32 (ratio 4) with wide
  // statistical tolerance.
  FastSqdConfig small = fast_cfg(2);
  small.jobs = 2 * 100'000;
  small.warmup = 2 * 10'000;
  FastSqdConfig large = fast_cfg(32);
  large.jobs = 32 * 100'000;
  large.warmup = 32 * 10'000;
  // Equal batch sizes so only the batch COUNT differs.
  small.batch_size = 3'000;
  large.batch_size = 3'000;
  const double hw_small = simulate_sqd_fast(small).ci95_delay;
  const double hw_large = simulate_sqd_fast(large).ci95_delay;
  ASSERT_GT(hw_small, 0.0);
  ASSERT_GT(hw_large, 0.0);
  const double ratio = hw_small / hw_large;
  EXPECT_GT(ratio, 2.0) << "expected ~4x shrink from 16x the batches";
  EXPECT_LT(ratio, 8.0);
}

TEST(ReplicaSim, ClusterReplicasDeterministicAcrossThreadCounts) {
  rlb::sim::ClusterConfig cfg;
  cfg.servers = 5;
  cfg.jobs = 120'000;
  cfg.warmup = 12'000;
  cfg.seed = 999;
  cfg.replicas = 6;
  const auto arr = rlb::sim::make_exponential(0.85 * 5);
  const auto svc = rlb::sim::make_exponential(1.0);

  rlb::sim::SqdPolicy policy(5, 2);
  const auto serial = rlb::sim::simulate_cluster(cfg, policy, *arr, *svc);
  ThreadBudget budget(4);
  const auto parallel =
      rlb::sim::simulate_cluster(cfg, policy, *arr, *svc, budget);
  EXPECT_DOUBLE_EQ(serial.mean_sojourn, parallel.mean_sojourn);
  EXPECT_DOUBLE_EQ(serial.ci95_sojourn, parallel.ci95_sojourn);
  EXPECT_DOUBLE_EQ(serial.p99_sojourn, parallel.p99_sojourn);
  EXPECT_DOUBLE_EQ(serial.utilization, parallel.utilization);
  EXPECT_EQ(serial.jobs_measured, parallel.jobs_measured);
}

TEST(ReplicaSim, ClusterReplicasAgreeWithSingleStream) {
  rlb::sim::ClusterConfig one;
  one.servers = 4;
  one.jobs = 400'000;
  one.warmup = 40'000;
  one.seed = 4242;
  auto eight = one;
  eight.replicas = 8;
  const auto arr = rlb::sim::make_exponential(0.8 * 4);
  const auto svc = rlb::sim::make_exponential(1.0);
  rlb::sim::SqdPolicy policy(4, 2);
  const auto a = rlb::sim::simulate_cluster(one, policy, *arr, *svc);
  const auto b = rlb::sim::simulate_cluster(eight, policy, *arr, *svc);
  EXPECT_NEAR(a.mean_sojourn, b.mean_sojourn,
              4.0 * (a.ci95_sojourn + b.ci95_sojourn) + 0.02);
  EXPECT_NEAR(a.utilization, b.utilization, 0.02);
  EXPECT_NEAR(a.p95_sojourn, b.p95_sojourn, 0.25);
}

}  // namespace
