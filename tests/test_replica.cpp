#include "sim/replica.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sim/fast_sqd.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "util/thread_budget.h"

namespace {

using rlb::sim::AdaptivePlan;
using rlb::sim::AdaptiveReport;
using rlb::sim::BatchMeans;
using rlb::sim::FastSqdConfig;
using rlb::sim::ReplicaPlan;
using rlb::sim::replica_seed;
using rlb::sim::run_replicas;
using rlb::sim::run_replicas_adaptive;
using rlb::sim::simulate_sqd_fast;
using rlb::sim::simulate_sqd_fast_adaptive;
using rlb::sim::StreamingMoments;
using rlb::sim::WarmupPolicy;
using rlb::util::ThreadBudget;
using rlb::sqd::Params;

// ---------------------------------------------------------------------------
// ThreadBudget
// ---------------------------------------------------------------------------

TEST(ThreadBudget, AcquireReleaseAccounting) {
  ThreadBudget budget(4);
  EXPECT_EQ(budget.total(), 4);
  EXPECT_EQ(budget.available(), 3);  // caller owns one slot
  EXPECT_EQ(budget.try_acquire(2), 2);
  EXPECT_EQ(budget.available(), 1);
  EXPECT_EQ(budget.try_acquire(5), 1);  // only one left
  EXPECT_EQ(budget.try_acquire(1), 0);  // exhausted
  budget.release(3);
  EXPECT_EQ(budget.available(), 3);
  EXPECT_EQ(budget.try_acquire(0), 0);
}

TEST(ThreadBudget, SerialBudgetNeverGrantsSlots) {
  ThreadBudget& serial = ThreadBudget::serial();
  EXPECT_EQ(serial.total(), 1);
  EXPECT_EQ(serial.try_acquire(8), 0);
}

TEST(ThreadBudget, RejectsEmptyBudget) {
  EXPECT_THROW(ThreadBudget(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ReplicaPlan and seeds
// ---------------------------------------------------------------------------

TEST(ReplicaPlan, SplitDividesJobsAndWarmupEvenly) {
  const ReplicaPlan plan = ReplicaPlan::split(4, 1'000'000, 100'000, 7);
  EXPECT_EQ(plan.replicas, 4);
  EXPECT_EQ(plan.jobs_per_replica, 250'000u);
  EXPECT_EQ(plan.warmup, 25'000u);
  EXPECT_EQ(plan.base_seed, 7u);
}

TEST(ReplicaPlan, GuardsDegenerateConfigs) {
  EXPECT_THROW(ReplicaPlan::split(0, 1000, 100, 1), std::invalid_argument);
  EXPECT_THROW(ReplicaPlan::split(1, 1000, 1000, 1), std::invalid_argument);
  EXPECT_THROW(ReplicaPlan::split(1, 100, 200, 1), std::invalid_argument);
  // Sharding so thin every replica is pure warmup must be rejected, not
  // silently return zero-batch results.
  EXPECT_THROW(ReplicaPlan::split(600, 1000, 900, 1), std::invalid_argument);
  ReplicaPlan zero;
  zero.replicas = 0;
  zero.jobs_per_replica = 10;
  EXPECT_THROW(zero.validate(), std::invalid_argument);
}

TEST(ReplicaSeed, Replica0KeepsBaseSeedOthersDecorrelate) {
  // Replica 0 continues the legacy serial stream, so a single-replica run
  // is bit-identical with the pre-replica code path.
  EXPECT_EQ(replica_seed(42, 0), 42u);
  std::vector<std::uint64_t> seeds;
  for (int r = 0; r < 64; ++r) seeds.push_back(replica_seed(42, r));
  for (std::size_t a = 0; a < seeds.size(); ++a)
    for (std::size_t b = a + 1; b < seeds.size(); ++b)
      EXPECT_NE(seeds[a], seeds[b]) << "replicas " << a << ", " << b;
  EXPECT_EQ(replica_seed(42, 7), replica_seed(42, 7));
  EXPECT_NE(replica_seed(42, 7), replica_seed(43, 7));
}

// ---------------------------------------------------------------------------
// run_replicas
// ---------------------------------------------------------------------------

ReplicaPlan tiny_plan(int replicas) {
  ReplicaPlan plan;
  plan.replicas = replicas;
  plan.jobs_per_replica = 10;
  plan.warmup = 0;
  plan.base_seed = 11;
  return plan;
}

TEST(RunReplicas, MergesInIndexOrderForAnyBudget) {
  // A merge that is NOT commutative (string concatenation) detects any
  // ordering leak from the thread schedule.
  const auto run = [](int replica, std::uint64_t seed) {
    rlb::sim::Rng rng(seed);
    return std::to_string(replica) + ":" +
           std::to_string(rng.next_u64() % 1000) + ";";
  };
  const auto merge = [](std::string& into, const std::string& from) {
    into += from;
  };
  const std::string serial = run_replicas<std::string>(
      tiny_plan(16), ThreadBudget::serial(), run, merge);
  for (int trial = 0; trial < 5; ++trial) {
    ThreadBudget budget(4);
    EXPECT_EQ(run_replicas<std::string>(tiny_plan(16), budget, run, merge),
              serial);
  }
}

TEST(RunReplicas, PropagatesExceptions) {
  ThreadBudget budget(4);
  const auto run = [](int replica, std::uint64_t) -> int {
    if (replica == 5) throw std::runtime_error("replica 5 exploded");
    return replica;
  };
  const auto merge = [](int& into, const int& from) { into += from; };
  EXPECT_THROW(run_replicas<int>(tiny_plan(8), budget, run, merge),
               std::runtime_error);
  EXPECT_THROW(run_replicas<int>(tiny_plan(8), ThreadBudget::serial(), run,
                                 merge),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Replica-mode simulators
// ---------------------------------------------------------------------------

FastSqdConfig fast_cfg(int replicas, std::uint64_t jobs = 400'000) {
  FastSqdConfig cfg;
  cfg.params = Params{4, 2, 0.8, 1.0};
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = 20240612;
  cfg.replicas = replicas;
  return cfg;
}

TEST(ReplicaSim, FastSqdSingleReplicaMatchesLegacySerialPath) {
  // replicas == 1 must reproduce the plain entry point bit-for-bit.
  const auto cfg = fast_cfg(1, 100'000);
  const auto serial = simulate_sqd_fast(cfg);
  ThreadBudget budget(4);
  const auto budgeted = simulate_sqd_fast(cfg, budget);
  EXPECT_DOUBLE_EQ(serial.mean_delay, budgeted.mean_delay);
  EXPECT_DOUBLE_EQ(serial.ci95_delay, budgeted.ci95_delay);
  EXPECT_EQ(serial.jobs_measured, budgeted.jobs_measured);
}

TEST(ReplicaSim, FastSqdReplicasDeterministicAcrossThreadCounts) {
  const auto cfg = fast_cfg(8, 200'000);
  const auto serial = simulate_sqd_fast(cfg);
  for (int threads : {2, 4}) {
    ThreadBudget budget(threads);
    const auto parallel = simulate_sqd_fast(cfg, budget);
    EXPECT_DOUBLE_EQ(serial.mean_delay, parallel.mean_delay);
    EXPECT_DOUBLE_EQ(serial.mean_wait, parallel.mean_wait);
    EXPECT_DOUBLE_EQ(serial.ci95_delay, parallel.ci95_delay);
    EXPECT_DOUBLE_EQ(serial.mean_queue_seen, parallel.mean_queue_seen);
    EXPECT_EQ(serial.jobs_measured, parallel.jobs_measured);
  }
}

TEST(ReplicaSim, FastSqdReplicasAgreeWithSingleStream) {
  // R independent replicas estimate the same stationary quantity; the
  // merged mean must agree with a single long run within joint CIs.
  const auto one = simulate_sqd_fast(fast_cfg(1));
  const auto eight = simulate_sqd_fast(fast_cfg(8));
  EXPECT_EQ(eight.jobs_measured,
            8u * (400'000u / 8 - 40'000u / 8));
  EXPECT_NEAR(one.mean_delay, eight.mean_delay,
              4.0 * (one.ci95_delay + eight.ci95_delay) + 0.02);
}

TEST(ReplicaSim, FastSqdGuardsDegenerateConfigs) {
  auto cfg = fast_cfg(0);
  EXPECT_THROW(simulate_sqd_fast(cfg), std::invalid_argument);
  cfg = fast_cfg(1);
  cfg.warmup = cfg.jobs;  // jobs <= warmup
  EXPECT_THROW(simulate_sqd_fast(cfg), std::invalid_argument);
  cfg = fast_cfg(4);
  cfg.batch_size = cfg.jobs;  // bigger than the per-replica measured count
  EXPECT_THROW(simulate_sqd_fast(cfg), std::invalid_argument);
}

TEST(ReplicaSim, CiHalfwidthShrinksLikeSqrtReplicas) {
  // Fixed per-replica effort: R times the data should shrink the pooled
  // CI half-width like 1/sqrt(R). Compare R=2 vs R=32 (ratio 4) with wide
  // statistical tolerance.
  FastSqdConfig small = fast_cfg(2);
  small.jobs = 2 * 100'000;
  small.warmup = 2 * 10'000;
  FastSqdConfig large = fast_cfg(32);
  large.jobs = 32 * 100'000;
  large.warmup = 32 * 10'000;
  // Equal batch sizes so only the batch COUNT differs.
  small.batch_size = 3'000;
  large.batch_size = 3'000;
  const double hw_small = simulate_sqd_fast(small).ci95_delay;
  const double hw_large = simulate_sqd_fast(large).ci95_delay;
  ASSERT_GT(hw_small, 0.0);
  ASSERT_GT(hw_large, 0.0);
  const double ratio = hw_small / hw_large;
  EXPECT_GT(ratio, 2.0) << "expected ~4x shrink from 16x the batches";
  EXPECT_LT(ratio, 8.0);
}

TEST(ReplicaSim, ClusterReplicasDeterministicAcrossThreadCounts) {
  rlb::sim::ClusterConfig cfg;
  cfg.servers = 5;
  cfg.jobs = 120'000;
  cfg.warmup = 12'000;
  cfg.seed = 999;
  cfg.replicas = 6;
  const auto arr = rlb::sim::make_exponential(0.85 * 5);
  const auto svc = rlb::sim::make_exponential(1.0);

  rlb::sim::SqdPolicy policy(5, 2);
  const auto serial = rlb::sim::simulate_cluster(cfg, policy, *arr, *svc);
  ThreadBudget budget(4);
  const auto parallel =
      rlb::sim::simulate_cluster(cfg, policy, *arr, *svc, budget);
  EXPECT_DOUBLE_EQ(serial.mean_sojourn, parallel.mean_sojourn);
  EXPECT_DOUBLE_EQ(serial.ci95_sojourn, parallel.ci95_sojourn);
  EXPECT_DOUBLE_EQ(serial.p99_sojourn, parallel.p99_sojourn);
  EXPECT_DOUBLE_EQ(serial.utilization, parallel.utilization);
  EXPECT_EQ(serial.jobs_measured, parallel.jobs_measured);
}

// ---------------------------------------------------------------------------
// AdaptivePlan and run_replicas_adaptive
// ---------------------------------------------------------------------------

AdaptivePlan small_adaptive_plan() {
  AdaptivePlan plan;
  plan.replicas = 2;
  plan.target_ci = 0.5;
  plan.initial_jobs = 100;
  plan.growth_factor = 2.0;
  plan.max_jobs = 1'000;
  plan.warmup_jobs = 10;
  plan.base_seed = 99;
  return plan;
}

TEST(AdaptivePlan, GuardsDegenerateConfigs) {
  const AdaptivePlan good = small_adaptive_plan();
  good.validate();

  AdaptivePlan plan = good;
  plan.target_ci = 0.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = good;
  plan.confidence = 0.8;  // not a t-table level
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = good;
  plan.max_jobs = plan.initial_jobs - 1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = good;
  plan.growth_factor = 0.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = good;
  plan.warmup_jobs = plan.initial_jobs / plan.replicas;  // all warmup
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = good;
  plan.warmup_policy = WarmupPolicy::kFraction;
  plan.warmup_fraction = 1.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = good;
  plan.replicas = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(AdaptivePlan, RoundBudgetsGrowGeometricallyAndSaturate) {
  const AdaptivePlan plan = small_adaptive_plan();
  EXPECT_EQ(plan.round_jobs(0), 100u);
  EXPECT_EQ(plan.round_jobs(1), 200u);
  EXPECT_EQ(plan.round_jobs(2), 400u);
  EXPECT_EQ(plan.round_jobs(3), 800u);
  EXPECT_EQ(plan.round_jobs(4), 1'000u);   // clamped to max_jobs
  EXPECT_EQ(plan.round_jobs(200), 1'000u);  // no overflow at huge rounds
}

TEST(AdaptivePlan, RejectsUndershootingSafetyFactor) {
  AdaptivePlan plan = small_adaptive_plan();
  plan.planner_safety = 0.9;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.planner_safety = 1.0;
  plan.validate();
}

TEST(AdaptivePlan, MinRoundJobsCoversWarmupPolicy) {
  AdaptivePlan plan = small_adaptive_plan();  // 2 replicas, warmup 10
  EXPECT_EQ(plan.min_round_jobs(), 2u * 11);
  plan.warmup_policy = WarmupPolicy::kFraction;
  EXPECT_EQ(plan.min_round_jobs(), 2u);
}

// ---------------------------------------------------------------------------
// RoundPlanner
// ---------------------------------------------------------------------------

TEST(RoundPlanner, GeometricPlannerIgnoresObservedStatistics) {
  const AdaptivePlan plan = small_adaptive_plan();
  const auto planner = rlb::sim::make_planner(plan);
  // Whatever the observed half-width or budget, the schedule is the
  // plan's fixed initial * growth^r (committed baselines pin it).
  for (int round : {0, 1, 2, 3, 4}) {
    EXPECT_EQ(planner->round_jobs(round, 0, 1e9), plan.round_jobs(round));
    EXPECT_EQ(planner->round_jobs(round, 999, 1e-9),
              plan.round_jobs(round));
  }
}

TEST(RoundPlanner, VariancePlannerPredictsFromTheHalfWidth) {
  AdaptivePlan plan = small_adaptive_plan();  // target 0.5, initial 100
  plan.planner = rlb::sim::PlannerKind::kVariance;
  plan.planner_safety = 1.2;
  plan.max_jobs = 100'000;
  const auto planner = rlb::sim::make_planner(plan);

  // Round 0 is always the initial budget (one-round runs must stay
  // bit-identical with the fixed path regardless of planner).
  EXPECT_EQ(planner->round_jobs(
                0, 0, std::numeric_limits<double>::infinity()),
            plan.initial_jobs);
  // hw = 2x target after 1000 jobs: the cumulative budget that reaches
  // the target is 1000 * 4 * 1.2 = 4800, so the next round asks for the
  // missing 3800.
  EXPECT_EQ(planner->round_jobs(1, 1'000, 1.0), 3'800u);
  // No interval yet (fewer than two batches): geometric fallback.
  EXPECT_EQ(planner->round_jobs(
                1, 1'000, std::numeric_limits<double>::infinity()),
            plan.round_jobs(1));
  // A hair over target: the raw prediction (1.2 * 1.01^2 - 1 ~ 0.22x)
  // still clears the viability floor.
  EXPECT_GE(planner->round_jobs(1, 1'000, 0.505), plan.min_round_jobs());
  // Tiny budgets floor at min_round_jobs so the request survives warmup.
  EXPECT_EQ(planner->round_jobs(1, 10, 0.505), plan.min_round_jobs());
  // Extreme half-widths saturate at max_jobs instead of overflowing.
  EXPECT_EQ(planner->round_jobs(1, 50'000, 1e12), plan.max_jobs);
}

TEST(AdaptivePlan, WarmupPolicyFixedVsFraction) {
  AdaptivePlan plan = small_adaptive_plan();
  plan.warmup_jobs = 100;
  // kFixed keeps the ABSOLUTE per-replica transient whatever the round
  // or replica count; kFraction scales with the per-replica budget (and
  // so shrinks when many replicas split a round).
  EXPECT_EQ(plan.warmup_for(200), 100u);
  EXPECT_EQ(plan.warmup_for(200'000), 100u);
  plan.warmup_policy = WarmupPolicy::kFraction;
  plan.warmup_fraction = 0.1;
  EXPECT_EQ(plan.warmup_for(200), 20u);
  EXPECT_EQ(plan.warmup_for(200'000), 20'000u);
}

/// Logging stub: records every (global index, seed, jobs, warmup) the
/// runner hands out, in merge order.
struct Rec {
  int global;
  std::uint64_t seed, jobs, warmup;
};
using Log = std::vector<Rec>;

Log run_logged(const AdaptivePlan& plan, ThreadBudget& budget,
               std::size_t converge_after_replicas, AdaptiveReport& report) {
  return run_replicas_adaptive<Log>(
      plan, budget,
      [](int global, std::uint64_t seed, std::uint64_t jobs,
         std::uint64_t warmup) {
        return Log{{global, seed, jobs, warmup}};
      },
      [](Log& into, const Log& from) {
        into.insert(into.end(), from.begin(), from.end());
      },
      [&](const Log& merged) {
        return merged.size() >= converge_after_replicas ? 0.1 : 1.0;
      },
      report);
}

TEST(RunReplicasAdaptive, RoundScheduleIsGloballySeededAndInOrder) {
  const AdaptivePlan plan = small_adaptive_plan();
  AdaptiveReport report;
  const Log log =
      run_logged(plan, ThreadBudget::serial(), 6, report);  // 3 rounds

  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.rounds, 3);
  EXPECT_DOUBLE_EQ(report.half_width, 0.1);
  // Rounds of 100, 200, 400 jobs across 2 replicas.
  EXPECT_EQ(report.jobs_used, 700u);
  ASSERT_EQ(log.size(), 6u);
  const std::uint64_t expected_jobs[] = {50, 50, 100, 100, 200, 200};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(log[i].global, i);  // merge order == global replica order
    EXPECT_EQ(log[i].seed, replica_seed(plan.base_seed, i));
    EXPECT_EQ(log[i].jobs, expected_jobs[i]);
    EXPECT_EQ(log[i].warmup, plan.warmup_jobs);
  }
}

TEST(RunReplicasAdaptive, ScheduleIsInvariantUnderTheBudget) {
  const AdaptivePlan plan = small_adaptive_plan();
  AdaptiveReport serial_report;
  const Log serial =
      run_logged(plan, ThreadBudget::serial(), 6, serial_report);
  for (int threads : {2, 4}) {
    ThreadBudget budget(threads);
    AdaptiveReport report;
    const Log parallel = run_logged(plan, budget, 6, report);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].global, serial[i].global);
      EXPECT_EQ(parallel[i].seed, serial[i].seed);
      EXPECT_EQ(parallel[i].jobs, serial[i].jobs);
    }
    EXPECT_EQ(report.jobs_used, serial_report.jobs_used);
    EXPECT_EQ(report.rounds, serial_report.rounds);
  }
}

TEST(RunReplicasAdaptive, VariancePlannerScheduleIsDeterministic) {
  AdaptivePlan plan = small_adaptive_plan();
  plan.planner = rlb::sim::PlannerKind::kVariance;
  AdaptiveReport serial_report;
  const Log serial =
      run_logged(plan, ThreadBudget::serial(), 6, serial_report);
  EXPECT_TRUE(serial_report.converged);
  for (int threads : {2, 4}) {
    ThreadBudget budget(threads);
    AdaptiveReport report;
    const Log parallel = run_logged(plan, budget, 6, report);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].global, serial[i].global);
      EXPECT_EQ(parallel[i].seed, serial[i].seed);
      EXPECT_EQ(parallel[i].jobs, serial[i].jobs);
    }
    EXPECT_EQ(report.jobs_used, serial_report.jobs_used);
    EXPECT_EQ(report.rounds, serial_report.rounds);
  }
}

TEST(RunReplicasAdaptive, CapsAtMaxJobsAndReportsNotConverged) {
  const AdaptivePlan plan = small_adaptive_plan();
  AdaptiveReport report;
  // Never converges: rounds of 100, 200, 400, then the 300-job remainder.
  const Log log = run_logged(plan, ThreadBudget::serial(), 1'000'000,
                             report);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.jobs_used, 1'000u);  // exactly the cap
  EXPECT_EQ(report.rounds, 4);
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.back().jobs, 150u);  // clamped final round
}

TEST(RunReplicasAdaptive, StopsWhenTheClampedTailCannotClearWarmup) {
  AdaptivePlan plan = small_adaptive_plan();
  plan.max_jobs = 130;  // 30 jobs left after round 0: 15 per replica,
  plan.warmup_jobs = 20;  // all of it warmup — unusable.
  AdaptiveReport report;
  const Log log =
      run_logged(plan, ThreadBudget::serial(), 1'000'000, report);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.rounds, 1);
  EXPECT_EQ(report.jobs_used, 100u);
  EXPECT_EQ(log.size(), 2u);
}

// ---------------------------------------------------------------------------
// Adaptive simulators
// ---------------------------------------------------------------------------

TEST(AdaptiveSim, OneRoundRunMatchesFixedBudgetBitForBit) {
  // A one-round adaptive run has the same replica shape, seeds, warmup
  // and batch size as the fixed-budget path — the outputs must be
  // bit-identical, which pins the "adaptive is a superset" contract.
  // Both planners request the same round 0, so the identity holds for
  // either.
  const auto cfg = fast_cfg(4, 200'000);
  const auto fixed = simulate_sqd_fast(cfg);

  for (const auto kind : {rlb::sim::PlannerKind::kGeometric,
                          rlb::sim::PlannerKind::kVariance}) {
    AdaptivePlan plan;
    plan.replicas = 4;
    plan.target_ci = 100.0;  // trivially met after round 0
    plan.initial_jobs = cfg.jobs;
    plan.max_jobs = 2 * cfg.jobs;
    plan.warmup_jobs = cfg.warmup / 4;  // what ReplicaPlan::split would use
    plan.base_seed = cfg.seed;
    plan.planner = kind;
    const auto adaptive =
        simulate_sqd_fast_adaptive(cfg, plan, ThreadBudget::serial());

    EXPECT_TRUE(adaptive.adaptive.converged);
    EXPECT_EQ(adaptive.adaptive.rounds, 1);
    EXPECT_EQ(adaptive.adaptive.jobs_used, cfg.jobs);
    EXPECT_DOUBLE_EQ(adaptive.mean_delay, fixed.mean_delay);
    EXPECT_DOUBLE_EQ(adaptive.ci95_delay, fixed.ci95_delay);
    EXPECT_EQ(adaptive.jobs_measured, fixed.jobs_measured);
  }
}

TEST(AdaptiveSim, VariancePlannerConvergesWithNoMoreJobsThanGeometric) {
  // The planner-efficiency contract on a seeded, known-variance cell:
  // the variance planner jumps to (near) the predicted budget instead of
  // walking the powers of the growth factor, so it must certify the same
  // target with no more total jobs than the geometric schedule — and in
  // no more rounds.
  const auto cfg = fast_cfg(2, 400'000);
  AdaptivePlan plan;
  plan.replicas = 2;
  plan.target_ci = 0.03;  // needs several geometric doublings
  plan.initial_jobs = 20'000;
  plan.max_jobs = 128 * 20'000;
  plan.warmup_jobs = 1'000;
  plan.base_seed = cfg.seed;

  plan.planner = rlb::sim::PlannerKind::kGeometric;
  const auto geometric =
      simulate_sqd_fast_adaptive(cfg, plan, ThreadBudget::serial());
  plan.planner = rlb::sim::PlannerKind::kVariance;
  const auto variance =
      simulate_sqd_fast_adaptive(cfg, plan, ThreadBudget::serial());

  ASSERT_TRUE(geometric.adaptive.converged);
  ASSERT_TRUE(variance.adaptive.converged);
  EXPECT_LE(variance.adaptive.half_width, plan.target_ci);
  EXPECT_LE(variance.adaptive.jobs_used, geometric.adaptive.jobs_used);
  EXPECT_LE(variance.adaptive.rounds, geometric.adaptive.rounds);
}

TEST(AdaptiveSim, ConvergesUnderTargetOnAnEasyCell) {
  auto cfg = fast_cfg(2);
  AdaptivePlan plan;
  plan.replicas = 2;
  plan.target_ci = 0.05;  // easy at rho = 0.8, N = 4
  plan.initial_jobs = 40'000;
  plan.max_jobs = 32 * 40'000;
  plan.warmup_jobs = 40'000 / (10 * 2);
  plan.base_seed = cfg.seed;
  const auto res =
      simulate_sqd_fast_adaptive(cfg, plan, ThreadBudget::serial());
  EXPECT_TRUE(res.adaptive.converged);
  EXPECT_LE(res.adaptive.half_width, plan.target_ci);
  EXPECT_GT(res.adaptive.half_width, 0.0);
  EXPECT_LT(res.adaptive.jobs_used, plan.max_jobs);  // stopped early
  EXPECT_GE(res.adaptive.rounds, 1);
}

TEST(AdaptiveSim, CapsAtMaxJobsOnAHardCell) {
  auto cfg = fast_cfg(4);
  AdaptivePlan plan;
  plan.replicas = 4;
  plan.target_ci = 1e-7;  // unreachable inside the cap
  plan.initial_jobs = 20'000;
  plan.max_jobs = 100'000;
  plan.warmup_jobs = 20'000 / (10 * 4);
  plan.base_seed = cfg.seed;
  const auto res =
      simulate_sqd_fast_adaptive(cfg, plan, ThreadBudget::serial());
  EXPECT_FALSE(res.adaptive.converged);
  EXPECT_GT(res.adaptive.half_width, plan.target_ci);
  EXPECT_EQ(res.adaptive.jobs_used, plan.max_jobs);  // burned the cap
}

TEST(AdaptiveSim, FastSqdAdaptiveDeterministicAcrossThreadCounts) {
  auto cfg = fast_cfg(4);
  AdaptivePlan plan;
  plan.replicas = 4;
  plan.target_ci = 0.02;  // forces a few rounds
  plan.initial_jobs = 40'000;
  plan.max_jobs = 640'000;
  plan.warmup_jobs = 1'000;
  plan.base_seed = cfg.seed;
  const auto serial =
      simulate_sqd_fast_adaptive(cfg, plan, ThreadBudget::serial());
  for (int threads : {2, 4}) {
    ThreadBudget budget(threads);
    const auto parallel = simulate_sqd_fast_adaptive(cfg, plan, budget);
    EXPECT_DOUBLE_EQ(serial.mean_delay, parallel.mean_delay);
    EXPECT_DOUBLE_EQ(serial.ci95_delay, parallel.ci95_delay);
    EXPECT_DOUBLE_EQ(serial.adaptive.half_width,
                     parallel.adaptive.half_width);
    EXPECT_EQ(serial.adaptive.jobs_used, parallel.adaptive.jobs_used);
    EXPECT_EQ(serial.adaptive.rounds, parallel.adaptive.rounds);
    EXPECT_EQ(serial.adaptive.converged, parallel.adaptive.converged);
    EXPECT_EQ(serial.jobs_measured, parallel.jobs_measured);
  }
}

TEST(AdaptiveSim, WarmupPolicyControlsTheMeasuredShare) {
  // 32 replicas splitting a 32k-job round: the fraction policy discards
  // 10% of each replica (100 of 1000 jobs); the fixed policy keeps an
  // absolute 400-job transient — at high replica counts the two differ
  // by design, and the measured-job accounting shows it exactly.
  auto cfg = fast_cfg(32);
  AdaptivePlan plan;
  plan.replicas = 32;
  plan.target_ci = 100.0;  // one round
  plan.initial_jobs = 32'000;
  plan.max_jobs = 64'000;
  plan.base_seed = cfg.seed;

  plan.warmup_policy = WarmupPolicy::kFixed;
  plan.warmup_jobs = 400;
  const auto fixed =
      simulate_sqd_fast_adaptive(cfg, plan, ThreadBudget::serial());
  EXPECT_EQ(fixed.jobs_measured, 32u * (1'000 - 400));

  plan.warmup_policy = WarmupPolicy::kFraction;
  plan.warmup_fraction = 0.1;
  const auto fraction =
      simulate_sqd_fast_adaptive(cfg, plan, ThreadBudget::serial());
  EXPECT_EQ(fraction.jobs_measured, 32u * (1'000 - 100));
}

TEST(AdaptiveSim, ClusterAdaptiveDeterministicAcrossThreadCounts) {
  rlb::sim::ClusterConfig cfg;
  cfg.servers = 5;
  cfg.seed = 999;
  const auto arr = rlb::sim::make_exponential(0.85 * 5);
  const auto svc = rlb::sim::make_exponential(1.0);

  AdaptivePlan plan;
  plan.replicas = 3;
  plan.target_ci = 0.05;
  plan.initial_jobs = 30'000;
  plan.max_jobs = 240'000;
  plan.warmup_jobs = 1'000;
  plan.base_seed = cfg.seed;

  rlb::sim::SqdPolicy policy(5, 2);
  const auto serial = rlb::sim::simulate_cluster_adaptive(
      cfg, policy, *arr, *svc, plan, ThreadBudget::serial());
  ThreadBudget budget(4);
  const auto parallel = rlb::sim::simulate_cluster_adaptive(
      cfg, policy, *arr, *svc, plan, budget);
  EXPECT_DOUBLE_EQ(serial.mean_sojourn, parallel.mean_sojourn);
  EXPECT_DOUBLE_EQ(serial.ci95_sojourn, parallel.ci95_sojourn);
  EXPECT_DOUBLE_EQ(serial.p99_sojourn, parallel.p99_sojourn);
  EXPECT_DOUBLE_EQ(serial.adaptive.half_width,
                   parallel.adaptive.half_width);
  EXPECT_EQ(serial.adaptive.jobs_used, parallel.adaptive.jobs_used);
  EXPECT_EQ(serial.adaptive.converged, parallel.adaptive.converged);
}

TEST(ReplicaSim, ClusterReplicasAgreeWithSingleStream) {
  rlb::sim::ClusterConfig one;
  one.servers = 4;
  one.jobs = 400'000;
  one.warmup = 40'000;
  one.seed = 4242;
  auto eight = one;
  eight.replicas = 8;
  const auto arr = rlb::sim::make_exponential(0.8 * 4);
  const auto svc = rlb::sim::make_exponential(1.0);
  rlb::sim::SqdPolicy policy(4, 2);
  const auto a = rlb::sim::simulate_cluster(one, policy, *arr, *svc);
  const auto b = rlb::sim::simulate_cluster(eight, policy, *arr, *svc);
  EXPECT_NEAR(a.mean_sojourn, b.mean_sojourn,
              4.0 * (a.ci95_sojourn + b.ci95_sojourn) + 0.02);
  EXPECT_NEAR(a.utilization, b.utilization, 0.02);
  EXPECT_NEAR(a.p95_sojourn, b.p95_sojourn, 0.25);
}

}  // namespace
