#include "sim/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace {

using rlb::sim::BatchMeans;
using rlb::sim::StreamingMoments;
using rlb::sim::t_quantile_95;

TEST(StreamingMoments, SmallSeries) {
  StreamingMoments s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingMoments, SingleValue) {
  StreamingMoments s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingMoments, NumericallyStableForShiftedData) {
  StreamingMoments s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2));
  EXPECT_NEAR(s.mean(), offset + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 0.01);
}

TEST(BatchMeans, MeanOverBatches) {
  BatchMeans bm(2);
  for (double x : {1.0, 3.0, 5.0, 7.0}) bm.add(x);
  EXPECT_EQ(bm.completed_batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);  // batch means 2 and 6
}

TEST(BatchMeans, IncompleteBatchIgnored) {
  BatchMeans bm(3);
  bm.add(1.0);
  bm.add(2.0);
  EXPECT_EQ(bm.completed_batches(), 0u);
  EXPECT_DOUBLE_EQ(bm.ci95_halfwidth(), 0.0);
}

TEST(BatchMeans, CoverageOnIidNormal) {
  // The 95% CI should contain the true mean ~95% of the time.
  rlb::sim::Rng rng(61);
  int covered = 0;
  const int replications = 300;
  for (int r = 0; r < replications; ++r) {
    BatchMeans bm(50);
    for (int i = 0; i < 1000; ++i) bm.add(rng.normal() + 10.0);
    if (std::abs(bm.mean() - 10.0) <= bm.ci95_halfwidth()) ++covered;
  }
  EXPECT_GT(covered, replications * 0.9);
  EXPECT_LE(covered, replications);
}

TEST(BatchMeans, HalfwidthShrinksWithData) {
  rlb::sim::Rng rng(67);
  BatchMeans small(100), large(100);
  for (int i = 0; i < 1000; ++i) small.add(rng.normal());
  for (int i = 0; i < 100000; ++i) large.add(rng.normal());
  EXPECT_LT(large.ci95_halfwidth(), small.ci95_halfwidth());
}

TEST(TQuantile, KnownValues) {
  EXPECT_NEAR(t_quantile_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile_95(10), 2.228, 1e-3);
  EXPECT_NEAR(t_quantile_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_quantile_95(1000), 1.96, 1e-3);
}

TEST(TQuantile, MonotoneDecreasing) {
  for (std::uint64_t df = 1; df < 40; ++df)
    EXPECT_GE(t_quantile_95(df), t_quantile_95(df + 1));
}

}  // namespace

namespace {

using rlb::sim::ReservoirQuantiles;

TEST(ReservoirQuantiles, ExactForSmallStreams) {
  ReservoirQuantiles rq(1000);
  for (int i = 1; i <= 101; ++i) rq.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rq.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(rq.quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(rq.quantile(1.0), 101.0);
  EXPECT_EQ(rq.count(), 101u);
}

TEST(ReservoirQuantiles, ApproximatesLargeUniformStream) {
  ReservoirQuantiles rq(50'000, 7);
  rlb::sim::Rng rng(123);
  for (int i = 0; i < 1'000'000; ++i) rq.add(rng.next_double());
  EXPECT_NEAR(rq.quantile(0.5), 0.5, 0.01);
  EXPECT_NEAR(rq.quantile(0.95), 0.95, 0.01);
  EXPECT_NEAR(rq.quantile(0.99), 0.99, 0.01);
}

TEST(ReservoirQuantiles, ExponentialTailQuantiles) {
  ReservoirQuantiles rq(50'000, 11);
  rlb::sim::Rng rng(321);
  for (int i = 0; i < 500'000; ++i) rq.add(rng.exponential(1.0));
  // Quantiles of Exp(1): -ln(1-q).
  EXPECT_NEAR(rq.quantile(0.5), std::log(2.0), 0.02);
  EXPECT_NEAR(rq.quantile(0.95), -std::log(0.05), 0.1);
}

TEST(ReservoirQuantiles, DomainChecks) {
  ReservoirQuantiles rq(10);
  EXPECT_THROW(rq.quantile(0.5), std::invalid_argument);  // empty
  rq.add(1.0);
  EXPECT_THROW(rq.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(ReservoirQuantiles(0), std::invalid_argument);
}

TEST(ReservoirQuantiles, InterleavedAddAndQuery) {
  ReservoirQuantiles rq(100, 3);
  for (int i = 0; i < 50; ++i) rq.add(i);
  const double q1 = rq.quantile(0.5);
  for (int i = 50; i < 100; ++i) rq.add(i);
  const double q2 = rq.quantile(0.5);
  EXPECT_LT(q1, q2);  // median moved right as larger values arrived
}

}  // namespace
