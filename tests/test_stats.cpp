#include "sim/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace {

using rlb::sim::BatchMeans;
using rlb::sim::StreamingMoments;
using rlb::sim::t_quantile;
using rlb::sim::WeightedBatchMeans;

TEST(StreamingMoments, SmallSeries) {
  StreamingMoments s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingMoments, SingleValue) {
  StreamingMoments s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingMoments, NumericallyStableForShiftedData) {
  StreamingMoments s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2));
  EXPECT_NEAR(s.mean(), offset + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 0.01);
}

TEST(BatchMeans, MeanOverBatches) {
  BatchMeans bm(2);
  for (double x : {1.0, 3.0, 5.0, 7.0}) bm.add(x);
  EXPECT_EQ(bm.completed_batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);  // batch means 2 and 6
}

TEST(BatchMeans, IncompleteBatchIgnored) {
  BatchMeans bm(3);
  bm.add(1.0);
  bm.add(2.0);
  EXPECT_EQ(bm.completed_batches(), 0u);
  EXPECT_DOUBLE_EQ(bm.half_width(0.95), 0.0);
}

TEST(BatchMeans, CoverageOnIidNormal) {
  // The 95% CI should contain the true mean ~95% of the time.
  rlb::sim::Rng rng(61);
  int covered = 0;
  const int replications = 300;
  for (int r = 0; r < replications; ++r) {
    BatchMeans bm(50);
    for (int i = 0; i < 1000; ++i) bm.add(rng.normal() + 10.0);
    if (std::abs(bm.mean() - 10.0) <= bm.half_width(0.95)) ++covered;
  }
  EXPECT_GT(covered, replications * 0.9);
  EXPECT_LE(covered, replications);
}

TEST(BatchMeans, HalfwidthShrinksWithData) {
  rlb::sim::Rng rng(67);
  BatchMeans small(100), large(100);
  for (int i = 0; i < 1000; ++i) small.add(rng.normal());
  for (int i = 0; i < 100000; ++i) large.add(rng.normal());
  EXPECT_LT(large.half_width(0.95), small.half_width(0.95));
}

TEST(StreamingMoments, MergeMatchesSingleStream) {
  rlb::sim::Rng rng(17);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.normal() * 3.0 + 7.0;

  StreamingMoments whole;
  for (double x : xs) whole.add(x);

  // Split at an arbitrary point and merge: identical counts/extrema,
  // mean/variance equal up to floating-point reassociation.
  StreamingMoments left, right;
  for (std::size_t i = 0; i < xs.size(); ++i)
    (i < 1234 ? left : right).add(xs[i]);
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(StreamingMoments, MergeWithEmptySides) {
  StreamingMoments filled, empty;
  filled.add(1.0);
  filled.add(3.0);
  StreamingMoments a = filled;
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(filled);  // adopt
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
}

TEST(BatchMeans, MergeAtBatchBoundaryMatchesSingleStream) {
  rlb::sim::Rng rng(23);
  std::vector<double> xs(4000);
  for (double& x : xs) x = rng.normal();

  BatchMeans whole(100);
  for (double x : xs) whole.add(x);

  BatchMeans left(100), right(100);
  for (std::size_t i = 0; i < xs.size(); ++i)
    (i < 2000 ? left : right).add(xs[i]);  // split on a batch boundary
  left.merge(right);
  EXPECT_EQ(left.completed_batches(), whole.completed_batches());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.half_width(0.95), whole.half_width(0.95), 1e-12);
}

TEST(BatchMeans, MergeDropsPartialBatchesAndPoolsDf) {
  BatchMeans a(10), b(10);
  for (int i = 0; i < 25; ++i) a.add(1.0);  // 2 complete + 5 dangling
  for (int i = 0; i < 17; ++i) b.add(2.0);  // 1 complete + 7 dangling
  a.merge(b);
  EXPECT_EQ(a.completed_batches(), 3u);  // partial batches discarded
  EXPECT_NEAR(a.mean(), (1.0 + 1.0 + 2.0) / 3.0, 1e-12);
}

TEST(BatchMeans, MergeRejectsMismatchedBatchSizes) {
  BatchMeans a(10), b(20);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(TQuantile, KnownValues) {
  EXPECT_NEAR(t_quantile(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(t_quantile(0.95, 30), 2.042, 1e-3);
  EXPECT_NEAR(t_quantile(0.95, 1000), 1.96, 1e-3);
  // The other table levels, spot-checked against standard t tables.
  EXPECT_NEAR(t_quantile(0.90, 1), 6.314, 1e-3);
  EXPECT_NEAR(t_quantile(0.90, 10), 1.812, 1e-3);
  EXPECT_NEAR(t_quantile(0.90, 1000), 1.645, 1e-3);
  EXPECT_NEAR(t_quantile(0.99, 1), 63.657, 1e-3);
  EXPECT_NEAR(t_quantile(0.99, 10), 3.169, 1e-3);
  EXPECT_NEAR(t_quantile(0.99, 1000), 2.576, 1e-3);
}

TEST(TQuantile, MonotoneDecreasingInDfAndIncreasingInConfidence) {
  for (double confidence : {0.90, 0.95, 0.99})
    for (std::uint64_t df = 1; df < 40; ++df)
      EXPECT_GE(t_quantile(confidence, df), t_quantile(confidence, df + 1));
  for (std::uint64_t df : {1ull, 5ull, 20ull, 100ull, 1000ull}) {
    EXPECT_LT(t_quantile(0.90, df), t_quantile(0.95, df));
    EXPECT_LT(t_quantile(0.95, df), t_quantile(0.99, df));
  }
}

TEST(TQuantile, RejectsUnsupportedConfidenceLevels) {
  EXPECT_THROW(t_quantile(0.5, 10), std::invalid_argument);
  EXPECT_THROW(t_quantile(0.975, 10), std::invalid_argument);
  EXPECT_THROW(t_quantile(1.0, 10), std::invalid_argument);
}

TEST(TQuantile, DeprecatedAliasesKeepTheir95Behaviour) {
  // The deprecated spellings must stay exact synonyms while call sites
  // migrate.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_DOUBLE_EQ(rlb::sim::t_quantile_95(7), t_quantile(0.95, 7));
  BatchMeans bm(2);
  for (double x : {1.0, 3.0, 5.0, 9.0, 2.0, 4.0}) bm.add(x);
  EXPECT_DOUBLE_EQ(bm.ci95_halfwidth(), bm.half_width(0.95));
#pragma GCC diagnostic pop
}

TEST(BatchMeans, HalfWidthOrderedByConfidence) {
  rlb::sim::Rng rng(91);
  BatchMeans bm(20);
  for (int i = 0; i < 2000; ++i) bm.add(rng.normal());
  EXPECT_GT(bm.half_width(0.90), 0.0);
  EXPECT_LT(bm.half_width(0.90), bm.half_width(0.95));
  EXPECT_LT(bm.half_width(0.95), bm.half_width(0.99));
}

TEST(WeightedBatchMeans, UnitWeightsMatchBatchMeans) {
  rlb::sim::Rng rng(37);
  BatchMeans plain(25);
  WeightedBatchMeans weighted(25);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() + 3.0;
    plain.add(x);
    weighted.add(x, 1.0);
  }
  EXPECT_EQ(weighted.completed_batches(), plain.completed_batches());
  EXPECT_DOUBLE_EQ(weighted.mean(), plain.mean());
  EXPECT_DOUBLE_EQ(weighted.half_width(0.95), plain.half_width(0.95));
}

TEST(WeightedBatchMeans, BatchStatisticIsTheWeightedMean) {
  WeightedBatchMeans w(2);
  w.add(1.0, 3.0);  // batch 1: (3*1 + 1*5) / 4 = 2
  w.add(5.0, 1.0);
  w.add(10.0, 2.0);  // batch 2: (2*10 + 2*0) / 4 = 5
  w.add(0.0, 2.0);
  EXPECT_EQ(w.completed_batches(), 2u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
}

TEST(WeightedBatchMeans, MergeDropsPartialsAndChecksBatchSize) {
  WeightedBatchMeans a(10), b(10), c(20);
  for (int i = 0; i < 25; ++i) a.add(1.0, 1.0);  // 2 complete + partial
  for (int i = 0; i < 17; ++i) b.add(2.0, 1.0);  // 1 complete + partial
  a.merge(b);
  EXPECT_EQ(a.completed_batches(), 3u);
  EXPECT_NEAR(a.mean(), 4.0 / 3.0, 1e-12);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  EXPECT_THROW(WeightedBatchMeans(0), std::invalid_argument);
}

}  // namespace

namespace {

using rlb::sim::ReservoirQuantiles;

TEST(ReservoirQuantiles, ExactForSmallStreams) {
  ReservoirQuantiles rq(1000);
  for (int i = 1; i <= 101; ++i) rq.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rq.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(rq.quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(rq.quantile(1.0), 101.0);
  EXPECT_EQ(rq.count(), 101u);
}

TEST(ReservoirQuantiles, ApproximatesLargeUniformStream) {
  ReservoirQuantiles rq(50'000, 7);
  rlb::sim::Rng rng(123);
  for (int i = 0; i < 1'000'000; ++i) rq.add(rng.next_double());
  EXPECT_NEAR(rq.quantile(0.5), 0.5, 0.01);
  EXPECT_NEAR(rq.quantile(0.95), 0.95, 0.01);
  EXPECT_NEAR(rq.quantile(0.99), 0.99, 0.01);
}

TEST(ReservoirQuantiles, ExponentialTailQuantiles) {
  ReservoirQuantiles rq(50'000, 11);
  rlb::sim::Rng rng(321);
  for (int i = 0; i < 500'000; ++i) rq.add(rng.exponential(1.0));
  // Quantiles of Exp(1): -ln(1-q).
  EXPECT_NEAR(rq.quantile(0.5), std::log(2.0), 0.02);
  EXPECT_NEAR(rq.quantile(0.95), -std::log(0.05), 0.1);
}

TEST(ReservoirQuantiles, DomainChecks) {
  ReservoirQuantiles rq(10);
  EXPECT_THROW(rq.quantile(0.5), std::invalid_argument);  // empty
  rq.add(1.0);
  EXPECT_THROW(rq.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(ReservoirQuantiles(0), std::invalid_argument);
}

TEST(ReservoirQuantiles, InterleavedAddAndQuery) {
  ReservoirQuantiles rq(100, 3);
  for (int i = 0; i < 50; ++i) rq.add(i);
  const double q1 = rq.quantile(0.5);
  for (int i = 50; i < 100; ++i) rq.add(i);
  const double q2 = rq.quantile(0.5);
  EXPECT_LT(q1, q2);  // median moved right as larger values arrived
}

TEST(ReservoirQuantiles, MergeOfSmallStreamsIsExactConcatenation) {
  ReservoirQuantiles a(1000, 1), b(1000, 2);
  for (int i = 1; i <= 60; ++i) a.add(i);
  for (int i = 61; i <= 101; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 101u);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 101.0);
}

TEST(ReservoirQuantiles, MergedLargeStreamsApproximateUnionQuantiles) {
  // Two uniform streams over disjoint halves of [0, 1]; the merged
  // reservoir must report quantiles of the union.
  ReservoirQuantiles a(20'000, 5), b(20'000, 6);
  rlb::sim::Rng rng(77);
  for (int i = 0; i < 300'000; ++i) a.add(rng.next_double() * 0.5);
  for (int i = 0; i < 300'000; ++i) b.add(0.5 + rng.next_double() * 0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 600'000u);
  EXPECT_NEAR(a.quantile(0.25), 0.25, 0.02);
  EXPECT_NEAR(a.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(a.quantile(0.95), 0.95, 0.02);
}

TEST(ReservoirQuantiles, MergeWeightsUnequalStreams) {
  // 9:1 stream-length imbalance: the short stream should contribute ~10%
  // of the merged sample mass.
  ReservoirQuantiles a(10'000, 9), b(10'000, 10);
  rlb::sim::Rng rng(88);
  for (int i = 0; i < 900'000; ++i) a.add(0.0);
  for (int i = 0; i < 100'000; ++i) b.add(1.0);
  a.merge(b);
  // P(x == 1) should be ~0.1 in the merged reservoir.
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.97), 1.0);
}

TEST(ReservoirQuantiles, MergeIsDeterministic) {
  const auto build = [] {
    ReservoirQuantiles a(500, 3), b(500, 4);
    rlb::sim::Rng rng(55);
    for (int i = 0; i < 5'000; ++i) a.add(rng.next_double());
    for (int i = 0; i < 5'000; ++i) b.add(rng.next_double() + 1.0);
    a.merge(b);
    return a;
  };
  auto first = build();
  auto second = build();
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(first.quantile(q), second.quantile(q));
}

TEST(ReservoirQuantiles, MergeRejectsMismatchedCapacities) {
  ReservoirQuantiles a(10), b(20);
  b.add(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
