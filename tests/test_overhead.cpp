#include "sqd/overhead.h"

#include <gtest/gtest.h>

#include "sqd/asymptotic.h"

namespace {

using rlb::sqd::optimal_d_asymptotic;
using rlb::sqd::OverheadModel;
using rlb::sqd::Params;

TEST(Overhead, MessageAccounting) {
  EXPECT_DOUBLE_EQ(OverheadModel::messages_per_job(1), 2.0);
  EXPECT_DOUBLE_EQ(OverheadModel::messages_per_job(5), 10.0);
  const Params p{10, 3, 0.8, 1.0};
  EXPECT_DOUBLE_EQ(OverheadModel::message_rate(p), 6.0 * 8.0);
}

TEST(Overhead, CombinedCost) {
  const OverheadModel m{0.1};
  EXPECT_DOUBLE_EQ(m.combined_cost(2, 1.5), 1.5 + 0.1 * 4.0);
}

TEST(Overhead, FreeMessagesFavorLargeD) {
  // With free messages, more choices always help (delay is monotone in d).
  EXPECT_EQ(optimal_d_asymptotic(0.9, 0.0, 16), 16);
}

TEST(Overhead, ExpensiveMessagesFavorRandomRouting) {
  EXPECT_EQ(optimal_d_asymptotic(0.5, 100.0, 16), 1);
}

TEST(Overhead, ModeratePriceLandsOnSmallD) {
  // The power-of-two sweet spot: at high load and moderate message price,
  // the optimum is a small d >= 2 (most of the delay win, little cost),
  // far below the free-message optimum of d_max.
  const int d = optimal_d_asymptotic(0.95, 0.05, 16);
  EXPECT_GE(d, 2);
  EXPECT_LE(d, 8);
  EXPECT_EQ(optimal_d_asymptotic(0.95, 0.15, 16), 4);
}

TEST(Overhead, OptimumMonotoneInPrice) {
  // Raising the message price can only reduce the chosen d.
  int prev = 16;
  for (double c : {0.0, 0.01, 0.05, 0.2, 1.0, 10.0}) {
    const int d = optimal_d_asymptotic(0.9, c, 16);
    EXPECT_LE(d, prev) << c;
    prev = d;
  }
}

TEST(Overhead, DomainChecks) {
  EXPECT_THROW(optimal_d_asymptotic(0.5, -1.0, 4), std::invalid_argument);
  EXPECT_THROW(optimal_d_asymptotic(0.5, 1.0, 0), std::invalid_argument);
}

}  // namespace
