#include "statespace/state.h"

#include <gtest/gtest.h>

namespace {

namespace ss = rlb::statespace;
using ss::State;

TEST(State, TotalsAndGap) {
  const State m{3, 2, 2, 0};
  EXPECT_EQ(ss::total_jobs(m), 7);
  EXPECT_EQ(ss::gap(m), 3);
  EXPECT_EQ(ss::waiting_jobs(m), 4);  // 2 + 1 + 1 + 0
  EXPECT_EQ(ss::busy_servers(m), 3);
}

TEST(State, Validity) {
  EXPECT_TRUE(ss::is_valid_state({5, 5, 1}));
  EXPECT_FALSE(ss::is_valid_state({1, 2}));   // increasing
  EXPECT_FALSE(ss::is_valid_state({2, -1}));  // negative
  EXPECT_FALSE(ss::is_valid_state({}));
}

TEST(State, TieGroups) {
  const auto groups = ss::tie_groups({4, 2, 2, 2, 1, 0, 0});
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].head, 0);
  EXPECT_EQ(groups[0].tail, 0);
  EXPECT_EQ(groups[0].value, 4);
  EXPECT_EQ(groups[1].head, 1);
  EXPECT_EQ(groups[1].tail, 3);
  EXPECT_EQ(groups[1].size(), 3);
  EXPECT_EQ(groups[3].value, 0);
  EXPECT_EQ(groups[3].size(), 2);
}

TEST(State, SingleGroupWhenAllEqual) {
  const auto groups = ss::tie_groups({2, 2, 2});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3);
}

TEST(State, ArrivalAtHeadKeepsSorted) {
  const State m{3, 1, 1, 0};
  const State a = ss::after_arrival_at_head(m, 1);
  EXPECT_EQ(a, (State{3, 2, 1, 0}));
  EXPECT_TRUE(ss::is_valid_state(a));
}

TEST(State, ArrivalAtNonHeadRejected) {
  const State m{3, 1, 1, 0};
  EXPECT_THROW(ss::after_arrival_at_head(m, 2), std::invalid_argument);
}

TEST(State, DepartureAtTailKeepsSorted) {
  const State m{3, 1, 1, 1};
  const State d = ss::after_departure_at_tail(m, 3);
  EXPECT_EQ(d, (State{3, 1, 1, 0}));
}

TEST(State, DepartureFromEmptyRejected) {
  const State m{1, 0};
  EXPECT_THROW(ss::after_departure_at_tail(m, 1), std::invalid_argument);
}

TEST(State, DepartureAtNonTailRejected) {
  const State m{2, 2, 1};
  EXPECT_THROW(ss::after_departure_at_tail(m, 0), std::invalid_argument);
}

TEST(State, PlusOneEverywhere) {
  EXPECT_EQ(ss::plus_one_everywhere({2, 1, 0}), (State{3, 2, 1}));
}

TEST(State, ToString) {
  EXPECT_EQ(ss::to_string({2, 1}), "(2,1)");
}

}  // namespace
