#include "statespace/level_space.h"

#include <set>

#include <gtest/gtest.h>

namespace {

namespace ss = rlb::statespace;
using ss::LevelSpace;
using ss::State;

TEST(LevelSpace, BoundaryContainsAllIdleStates) {
  const LevelSpace space(3, 2);
  EXPECT_EQ(space.boundary_total_max(), 4);
  for (const State& m : space.boundary_states()) {
    EXPECT_LE(ss::total_jobs(m), 4);
    EXPECT_LE(ss::gap(m), 2);
  }
  // Every state with an idle server must be in the boundary: check the
  // extreme (T, T, 0) = (2, 2, 0).
  const auto loc = space.locate({2, 2, 0});
  EXPECT_TRUE(loc.boundary);
}

TEST(LevelSpace, LevelStatesHaveBusyServers) {
  for (int n : {2, 3, 6}) {
    for (int t : {1, 2, 3}) {
      const LevelSpace space(n, t);
      for (std::size_t j = 0; j < space.block_size(); ++j) {
        for (int q : {0, 1, 3}) {
          const State m = space.level_state(q, j);
          EXPECT_GE(m.back(), 1) << ss::to_string(m);
          const int tot = ss::total_jobs(m);
          EXPECT_GT(tot, space.boundary_total_max() + q * n);
          EXPECT_LE(tot, space.boundary_total_max() + (q + 1) * n);
        }
      }
    }
  }
}

TEST(LevelSpace, BlockSizeIsShapeCount) {
  const LevelSpace space(6, 3);
  EXPECT_EQ(space.block_size(), 56u);
  EXPECT_EQ(space.level0_states().size(), 56u);
}

TEST(LevelSpace, LocateRoundTrip) {
  const LevelSpace space(4, 2);
  for (int q = 0; q <= 3; ++q) {
    for (std::size_t j = 0; j < space.block_size(); ++j) {
      const State m = space.level_state(q, j);
      const auto loc = space.locate(m);
      EXPECT_FALSE(loc.boundary);
      EXPECT_EQ(loc.level, q);
      EXPECT_EQ(loc.index, j);
    }
  }
  for (std::size_t i = 0; i < space.boundary_states().size(); ++i) {
    const auto loc = space.locate(space.boundary_states()[i]);
    EXPECT_TRUE(loc.boundary);
    EXPECT_EQ(loc.index, i);
  }
}

TEST(LevelSpace, ShiftBijectionBetweenLevels) {
  const LevelSpace space(5, 2);
  for (std::size_t j = 0; j < space.block_size(); ++j) {
    const State m0 = space.level_state(0, j);
    const State m1 = space.level_state(1, j);
    State shifted = m0;
    for (int& v : shifted) v += 1;
    EXPECT_EQ(shifted, m1);
  }
}

TEST(LevelSpace, OrderingByTotalThenLex) {
  const LevelSpace space(3, 3);
  const auto& states = space.level0_states();
  for (std::size_t i = 1; i < states.size(); ++i) {
    const int prev = ss::total_jobs(states[i - 1]);
    const int cur = ss::total_jobs(states[i]);
    EXPECT_TRUE(prev < cur || (prev == cur && states[i - 1] < states[i]));
  }
}

TEST(LevelSpace, BoundaryStatesAreExactlyGapBoundedSmallTotals) {
  // Exhaustive cross-check for N = 3, T = 2: enumerate all sorted vectors
  // with total <= 4 and gap <= 2 by brute force.
  const LevelSpace space(3, 2);
  std::set<State> expected;
  for (int a = 0; a <= 4; ++a)
    for (int b = 0; b <= a; ++b)
      for (int c = 0; c <= b; ++c)
        if (a + b + c <= 4 && a - c <= 2) expected.insert({a, b, c});
  std::set<State> actual(space.boundary_states().begin(),
                         space.boundary_states().end());
  EXPECT_EQ(actual, expected);
}

TEST(LevelSpace, ContainsChecksGapAndShape) {
  const LevelSpace space(3, 2);
  EXPECT_TRUE(space.contains({3, 2, 1}));
  EXPECT_FALSE(space.contains({4, 1, 1}));   // gap 3 > 2
  EXPECT_FALSE(space.contains({1, 2, 3}));   // unsorted
  EXPECT_FALSE(space.contains({2, 1}));      // wrong arity
}

TEST(LevelSpace, LocateRejectsOutOfSpace) {
  const LevelSpace space(3, 2);
  EXPECT_THROW(space.locate({5, 1, 1}), std::invalid_argument);
}

TEST(LevelSpace, RequiresPositiveThreshold) {
  EXPECT_THROW(LevelSpace(3, 0), std::invalid_argument);
}

}  // namespace
