#include "sqd/blocks_builder.h"

#include <gtest/gtest.h>

#include "qbd/drift.h"

namespace {

namespace ss = rlb::statespace;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::BoundQbd;
using rlb::sqd::build_bound_qbd;
using rlb::sqd::Params;
using ss::State;

TEST(BlocksBuilder, ShapesAndSizes) {
  const BoundModel model(Params{3, 2, 0.7, 1.0}, 2, BoundKind::Lower);
  const BoundQbd q = build_bound_qbd(model);
  EXPECT_EQ(q.blocks.block_size(), 6u);  // C(4,2)
  EXPECT_EQ(q.blocks.boundary_size(), q.space.boundary_states().size());
  EXPECT_EQ(q.blocks.B01.rows(), q.blocks.boundary_size());
  EXPECT_EQ(q.blocks.B01.cols(), q.blocks.block_size());
  EXPECT_EQ(q.blocks.B10.rows(), q.blocks.block_size());
  EXPECT_EQ(q.blocks.B10.cols(), q.blocks.boundary_size());
}

TEST(BlocksBuilder, GeneratorRowsSumToZero) {
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    for (int t : {1, 2, 3}) {
      for (int n : {2, 3, 4}) {
        const BoundModel model(Params{n, std::min(2, n), 0.8, 1.0}, t, kind);
        const BoundQbd q = build_bound_qbd(model);
        EXPECT_LT(q.blocks.generator_row_sum_error(), 1e-10)
            << "N=" << n << " T=" << t;
      }
    }
  }
}

TEST(BlocksBuilder, OffDiagonalsNonNegative) {
  const BoundModel model(Params{3, 2, 0.9, 1.0}, 2, BoundKind::Upper);
  const BoundQbd q = build_bound_qbd(model);
  const auto check_offdiag = [](const rlb::linalg::Matrix& m, bool square) {
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = 0; j < m.cols(); ++j)
        if (!square || i != j) EXPECT_GE(m(i, j), 0.0);
  };
  check_offdiag(q.blocks.B00, true);
  check_offdiag(q.blocks.B01, false);
  check_offdiag(q.blocks.B10, false);
  check_offdiag(q.blocks.A0, false);
  check_offdiag(q.blocks.A1, true);
  check_offdiag(q.blocks.A2, false);
}

TEST(BlocksBuilder, Level0RepeatingStructureMatchesLevel1) {
  // Shift-invariance: rebuilding A0/A1 from level-0 rows must give the
  // same matrices the builder extracted from level-1 rows.
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(Params{3, 2, 0.75, 1.0}, 2, kind);
    const BoundQbd q = build_bound_qbd(model);
    const std::size_t m = q.blocks.block_size();
    rlb::linalg::Matrix a1(m, m), a0(m, m);
    for (std::size_t j = 0; j < m; ++j) {
      const State from = q.space.level_state(0, j);
      double outflow = 0.0;
      for (const auto& t : model.transitions(from)) {
        outflow += t.rate;
        const auto loc = q.space.locate(t.to);
        if (loc.boundary) continue;
        if (loc.level == 0) a1(j, loc.index) += t.rate;
        if (loc.level == 1) a0(j, loc.index) += t.rate;
      }
      a1(j, j) -= outflow;
    }
    rlb::linalg::Matrix diff1 = a1 - q.blocks.A1;
    rlb::linalg::Matrix diff0 = a0 - q.blocks.A0;
    EXPECT_LT(diff1.max_abs(), 1e-12);
    EXPECT_LT(diff0.max_abs(), 1e-12);
  }
}

TEST(BlocksBuilder, HigherLevelsRepeatToo) {
  // Level 2 and level 3 rows must reproduce A2/A1/A0 as well.
  const BoundModel model(Params{3, 2, 0.6, 1.0}, 3, BoundKind::Upper);
  const BoundQbd q = build_bound_qbd(model);
  const std::size_t m = q.blocks.block_size();
  rlb::linalg::Matrix a2(m, m), a1(m, m), a0(m, m);
  for (std::size_t j = 0; j < m; ++j) {
    const State from = q.space.level_state(3, j);
    double outflow = 0.0;
    for (const auto& t : model.transitions(from)) {
      outflow += t.rate;
      const auto loc = q.space.locate(t.to);
      if (loc.level == 2) a2(j, loc.index) += t.rate;
      if (loc.level == 3) a1(j, loc.index) += t.rate;
      if (loc.level == 4) a0(j, loc.index) += t.rate;
    }
    a1(j, j) -= outflow;
  }
  EXPECT_LT((a2 - q.blocks.A2).max_abs(), 1e-12);
  EXPECT_LT((a1 - q.blocks.A1).max_abs(), 1e-12);
  EXPECT_LT((a0 - q.blocks.A0).max_abs(), 1e-12);
}

TEST(BlocksBuilder, LowerA0IsArrivalsOnly) {
  // In the lower model, upward transitions are exactly the arrivals that
  // cross the level boundary; each A-row's A0 mass is at most lambda*N.
  const Params p{3, 2, 0.8, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const BoundQbd q = build_bound_qbd(model);
  const auto up = q.blocks.A0.row_sums();
  for (double r : up) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, p.total_arrival_rate() + 1e-12);
  }
}

TEST(BlocksBuilder, UpperA0ContainsBatchRedirects) {
  // The upper model's +N redirects add upward mass beyond single arrivals
  // in at least one row: a gap-T state whose top tie group is pollable
  // (size >= d) and which is NOT at the top of its level (for N = 4, T = 2
  // the shape (2,2,0,0) qualifies; for N = 3 every redirecting shape
  // happens to sit at the level top and the masses coincide).
  const Params p{4, 2, 0.8, 1.0};
  const BoundModel lower(p, 2, BoundKind::Lower);
  const BoundModel upper(p, 2, BoundKind::Upper);
  const double up_lower =
      rlb::linalg::sum(build_bound_qbd(lower).blocks.A0.row_sums());
  const double up_upper =
      rlb::linalg::sum(build_bound_qbd(upper).blocks.A0.row_sums());
  EXPECT_GT(up_upper, up_lower);
}

TEST(BlocksBuilder, UpperHasSmallerStabilityMargin) {
  // Pausing and batch redirects shrink the upper model's drift margin
  // (down-rate minus up-rate) relative to the lower model.
  const Params p{3, 2, 0.8, 1.0};
  for (int t : {1, 2, 3}) {
    const auto ql =
        build_bound_qbd(BoundModel(p, t, BoundKind::Lower)).blocks;
    const auto qu =
        build_bound_qbd(BoundModel(p, t, BoundKind::Upper)).blocks;
    const auto dl = rlb::qbd::drift_condition(ql.A0, ql.A1, ql.A2);
    const auto du = rlb::qbd::drift_condition(qu.A0, qu.A1, qu.A2);
    EXPECT_LT(du.down - du.up, dl.down - dl.up) << "T=" << t;
  }
}

}  // namespace
