// End-to-end checks of registered scenarios through the global registry
// (this binary links the bench/ and examples/ scenario translation units,
// unlike the unit-test binaries). The key property is the rlb_run
// contract: for a fixed --replicas value, the rendered output of a
// scenario is bit-identical for every thread count.
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/scenario.h"
#include "engine/sink.h"
#include "engine/sweep.h"
#include "sim/cluster_sim.h"
#include "sim/distributions.h"
#include "util/cli.h"
#include "util/table.h"

#ifndef RLB_SOURCE_DIR
#error "RLB_SOURCE_DIR must point at the repository root"
#endif

namespace {

using rlb::engine::Scenario;
using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioRegistry;

/// Render one scenario run (args as an rlb_run-style flag list) to JSON,
/// optionally through a result cache (the rlb_run --cache path).
std::string run_to_json(const std::string& name,
                        std::vector<std::string> args, int threads,
                        int replicas,
                        rlb::engine::ResultCache* cache = nullptr) {
  const Scenario& scenario = ScenarioRegistry::global().get(name);
  args.insert(args.begin(), "test_scenarios");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  const rlb::util::Cli cli(static_cast<int>(argv.size()), argv.data());
  ScenarioContext ctx(cli, threads, replicas, cache);
  return rlb::engine::to_json(scenario.run(ctx), name);
}

struct QuickScenario {
  std::string name;
  std::vector<std::string> args;  ///< small job counts: ~1s per run
};

std::vector<QuickScenario> new_scenarios() {
  return {
      {"policy_comparison", {"--jobs=30000"}},
      {"batch_arrivals", {"--jobs=30000"}},
      {"hetero_fleet_bounds", {"--steps=120000", "--arrivals=60000"}},
      // Compact-engine fleet sweep, shrunk to test scale; --time stays 0
      // so the output is deterministic (the wall-clock column is the one
      // documented exception to the determinism contract).
      {"fleet_scaling",
       {"--nmin=32", "--nmax=128", "--nstep=2", "--jobs-per-server=200",
        "--crosscheck-n=64", "--crosscheck-jobs=20000"}},
      // The realistic-workload pair: heavy-tailed service columns and the
      // windowed / SLA diurnal capacity sweep.
      {"heavy_tail_service", {"--jobs=15000"}},
      {"diurnal_surge", {"--jobs=20000", "--ns=10,14"}},
      // Racked topology sweep: blind vs locality-aware dispatch across
      // both engines' rack-aware paths (37 cells, so small per-cell
      // budgets).
      {"rack_locality", {"--jobs=8000"}},
  };
}

TEST(Scenarios, NewScenariosAreRegistered) {
  for (const auto& s : new_scenarios())
    EXPECT_TRUE(ScenarioRegistry::global().contains(s.name)) << s.name;
}

TEST(Scenarios, ThreadCountNeverChangesOutput) {
  for (const auto& s : new_scenarios()) {
    const std::string one = run_to_json(s.name, s.args, 1, 1);
    const std::string four = run_to_json(s.name, s.args, 4, 1);
    EXPECT_EQ(one, four) << s.name;
  }
}

TEST(Scenarios, ThreadCountNeverChangesOutputWithReplicas) {
  for (const auto& s : new_scenarios()) {
    const std::string one = run_to_json(s.name, s.args, 1, 2);
    const std::string four = run_to_json(s.name, s.args, 4, 2);
    EXPECT_EQ(one, four) << s.name;
  }
}

TEST(Scenarios, ReplicasChangeOutputDeterministically) {
  for (const auto& s : new_scenarios()) {
    const std::string r1 = run_to_json(s.name, s.args, 2, 1);
    const std::string r2 = run_to_json(s.name, s.args, 2, 2);
    const std::string r2_again = run_to_json(s.name, s.args, 2, 2);
    EXPECT_NE(r1, r2) << s.name;  // R decorrelated streams differ...
    EXPECT_EQ(r2, r2_again) << s.name;  // ...but reproducibly.
  }
}

TEST(Scenarios, AdaptiveModeIsThreadCountInvariantAndReportsColumns) {
  // The --target-ci acceptance contract: adaptive runs stop on their own
  // schedule, report half_width / jobs_used / converged, and stay
  // bit-identical across thread counts (rounds are barriers; replicas
  // seed and merge in index order).
  const std::vector<std::string> args{"--jobs=30000", "--target-ci=0.05",
                                      "--max-jobs=120000"};
  for (int replicas : {1, 2}) {
    const std::string one = run_to_json("power_of_d", args, 1, replicas);
    const std::string four = run_to_json("power_of_d", args, 4, replicas);
    EXPECT_EQ(one, four) << "replicas=" << replicas;
  }
  const std::string out = run_to_json("power_of_d", args, 2, 1);
  for (const char* column : {"half_width", "jobs_used", "converged"})
    EXPECT_NE(out.find(column), std::string::npos) << column;
}

/// The five scenarios PR 5 wired into --target-ci, with budgets small
/// enough for ~seconds-long runs. Together with power_of_d /
/// policy_comparison / tail_distribution / hetero_fleet_bounds this
/// makes all nine sweep scenarios adaptive-capable.
std::vector<QuickScenario> newly_wired_adaptive() {
  const std::vector<std::string> knobs{"--target-ci=0.2",
                                       "--max-jobs=60000"};
  std::vector<QuickScenario> scenarios{
      {"fig09_relative_error", {"--jobs=20000", "--rho=0.75"}},
      {"fig10_delay_vs_utilization", {"--jobs=20000", "--panel=a"}},
      {"sigma_gi", {"--jobs=20000"}},
      {"waiting_profile", {"--jobs=20000"}},
      {"batch_arrivals", {"--jobs=20000"}},
  };
  for (auto& s : scenarios)
    s.args.insert(s.args.end(), knobs.begin(), knobs.end());
  return scenarios;
}

TEST(Scenarios, NewlyWiredAdaptiveScenariosAreThreadCountInvariant) {
  // The acceptance contract for the five scenarios wired in this PR:
  // with --target-ci set, 1-thread and 4-thread runs are bit-identical
  // and the adaptive columns appear.
  for (const auto& s : newly_wired_adaptive()) {
    const std::string one = run_to_json(s.name, s.args, 1, 2);
    const std::string four = run_to_json(s.name, s.args, 4, 2);
    EXPECT_EQ(one, four) << s.name;
    for (const char* column : {"half_width", "jobs_used", "converged"})
      EXPECT_NE(one.find(column), std::string::npos)
          << s.name << " lacks " << column;
  }
}

TEST(Scenarios, VariancePlannerIsThreadCountInvariant) {
  // --planner=variance sizes rounds from merged statistics only, so its
  // schedule must be just as thread-count invariant as the geometric
  // default.
  for (const auto& base : newly_wired_adaptive()) {
    auto args = base.args;
    args.push_back("--planner=variance");
    const std::string one = run_to_json(base.name, args, 1, 2);
    const std::string four = run_to_json(base.name, args, 4, 2);
    EXPECT_EQ(one, four) << base.name;
  }
}

TEST(Scenarios, RackLocalityAdaptiveIsThreadCountInvariant) {
  // The new racked sweep drives the rack-aware RNG path (home-rack draws
  // + locality polls) through the adaptive planner; like every sweep it
  // must stay bit-identical across thread counts under both planners.
  for (const char* planner : {"geometric", "variance"}) {
    const std::vector<std::string> args{
        "--jobs=8000", "--target-ci=0.25", "--max-jobs=24000",
        std::string("--planner=") + planner};
    const std::string one = run_to_json("rack_locality", args, 1, 2);
    const std::string four = run_to_json("rack_locality", args, 4, 2);
    EXPECT_EQ(one, four) << planner;
    for (const char* column : {"half_width", "jobs_used", "converged"})
      EXPECT_NE(one.find(column), std::string::npos) << column;
  }
}

TEST(Scenarios, AdaptiveBoundScenarioIsThreadCountInvariant) {
  // hetero_fleet_bounds drives both bound-model simulators through the
  // adaptive path (CTMC jump chain + GI event simulation).
  const std::vector<std::string> args{"--steps=120000", "--arrivals=60000",
                                      "--target-ci=0.2",
                                      "--max-jobs=240000"};
  const std::string one = run_to_json("hetero_fleet_bounds", args, 1, 2);
  const std::string four = run_to_json("hetero_fleet_bounds", args, 4, 2);
  EXPECT_EQ(one, four);
}

TEST(Scenarios, HeavyTailExpColumnReproducesTheLegacyStream) {
  // The scenario's exponential column is the stock M/M path: the same
  // ClusterConfig fed straight into simulate_cluster must land in the
  // rendered table verbatim (the scenario adds no randomness of its own).
  using namespace rlb::sim;
  ClusterConfig cfg;
  cfg.servers = 8;
  cfg.jobs = 15'000;
  cfg.warmup = 1'500;
  cfg.seed = rlb::engine::cell_seed(24680, 0);  // the scenario's row 0
  cfg.replicas = 1;
  const auto interarrival = make_exponential(0.85 * 8);
  const auto service = make_exponential(1.0);
  SqdPolicy policy(8, 2);
  const auto direct = simulate_cluster(cfg, policy, *interarrival, *service);

  const std::string json = run_to_json(
      "heavy_tail_service", {"--jobs=15000", "--dist=exp"}, 2, 1);
  EXPECT_NE(json.find(rlb::util::fmt(direct.mean_sojourn, 4)),
            std::string::npos);
  EXPECT_NE(json.find(rlb::util::fmt(direct.p99_sojourn, 4)),
            std::string::npos);
}

TEST(Scenarios, DiurnalSurgeReplaysTheGoldenTrace) {
  // Trace replay consumes no randomness, so the run is bit-identical
  // across thread counts and the rendered text names the trace stream.
  const std::vector<std::string> args{
      "--jobs=10000", "--ns=10,12",
      std::string("--trace=") + RLB_SOURCE_DIR + "/tests/data/golden.trace"};
  const std::string one = run_to_json("diurnal_surge", args, 1, 2);
  const std::string four = run_to_json("diurnal_surge", args, 4, 2);
  EXPECT_EQ(one, four);

  const Scenario& scenario = ScenarioRegistry::global().get("diurnal_surge");
  std::vector<std::string> argv_store = args;
  argv_store.insert(argv_store.begin(), "test_scenarios");
  std::vector<char*> argv;
  for (auto& a : argv_store) argv.push_back(a.data());
  const rlb::util::Cli cli(static_cast<int>(argv.size()), argv.data());
  ScenarioContext ctx(cli, 2, 1);
  std::ostringstream text;
  rlb::engine::write_text(scenario.run(ctx), text);
  EXPECT_NE(text.str().find("trace(40 jobs/cycle)"), std::string::npos);
}

/// A fresh per-test cache directory under gtest's temp root.
class ScenarioCache : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test AND process: ctest -j runs each test in its own
    // process, so a shared name would race between concurrent tests.
    dir_ = ::testing::TempDir() + "rlb_scenario_cache_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  rlb::engine::ResultCache make_cache(
      rlb::engine::CacheMode mode = rlb::engine::CacheMode::kReadWrite) {
    return rlb::engine::ResultCache(dir_, mode);
  }

  std::string dir_;
};

TEST_F(ScenarioCache, WarmRerunIsByteIdenticalToColdAcrossThreadCounts) {
  // The acceptance contract (docs/CACHING.md): a warm-cache re-run of
  // power_of_d and fleet_scaling renders byte-for-byte what the cold run
  // rendered and what an uncached run renders — at ANY thread count,
  // since cells are keyed semantically and the store/lookup passes are
  // serial.
  const std::vector<QuickScenario> sweeps{
      {"power_of_d", {"--jobs=20000"}},
      {"fleet_scaling",
       {"--nmin=32", "--nmax=128", "--nstep=2", "--jobs-per-server=200",
        "--crosscheck-n=64", "--crosscheck-jobs=20000"}},
  };
  for (const auto& s : sweeps) {
    std::filesystem::remove_all(dir_);
    const std::string uncached = run_to_json(s.name, s.args, 2, 1);
    auto cold_cache = make_cache();
    const std::string cold = run_to_json(s.name, s.args, 4, 1, &cold_cache);
    EXPECT_EQ(cold, uncached) << s.name << ": caching changed the output";
    EXPECT_EQ(cold_cache.hits(), 0u) << s.name;
    EXPECT_GT(cold_cache.stored(), 0u) << s.name;

    auto warm_cache = make_cache();
    const std::string warm = run_to_json(s.name, s.args, 1, 1, &warm_cache);
    EXPECT_EQ(warm, cold) << s.name << ": warm re-run drifted";
    EXPECT_EQ(warm_cache.misses(), 0u) << s.name;
    EXPECT_EQ(warm_cache.hits(), cold_cache.stored()) << s.name;
    EXPECT_EQ(warm_cache.stored(), 0u) << s.name;
  }
}

TEST_F(ScenarioCache, RackLocalityKeysCellsOnTopologyCoordinates) {
  // Topology coordinates (penalty kind, rack count) are part of the cell
  // key: a warm re-run with identical flags is all hits and byte-
  // identical, while flipping any topology knob shares nothing.
  const std::vector<std::string> args{"--jobs=6000"};
  auto cold_cache = make_cache();
  const std::string cold =
      run_to_json("rack_locality", args, 4, 1, &cold_cache);
  EXPECT_EQ(cold_cache.hits(), 0u);
  EXPECT_GT(cold_cache.stored(), 0u);

  auto warm_cache = make_cache();
  const std::string warm =
      run_to_json("rack_locality", args, 1, 1, &warm_cache);
  EXPECT_EQ(warm, cold) << "warm re-run drifted";
  EXPECT_EQ(warm_cache.misses(), 0u);
  EXPECT_EQ(warm_cache.hits(), cold_cache.stored());

  auto kind_cache = make_cache();
  (void)run_to_json("rack_locality",
                    {"--jobs=6000", "--penalty-kind=capacity"}, 2, 1,
                    &kind_cache);
  EXPECT_EQ(kind_cache.hits(), 0u)
      << "penalty kind missing from the cell key";

  auto racks_cache = make_cache();
  (void)run_to_json("rack_locality",
                    {"--jobs=6000", "--racks=2", "--per-rack=8"}, 2, 1,
                    &racks_cache);
  EXPECT_EQ(racks_cache.hits(), 0u)
      << "rack geometry missing from the cell key";
}

TEST_F(ScenarioCache, AdaptiveRunsHitUnderBothPlanners) {
  // Adaptive cells key on the planner and stopping knobs; both planners
  // must round-trip through the cache byte-identically.
  for (const char* planner : {"geometric", "variance"}) {
    std::filesystem::remove_all(dir_);
    const std::vector<std::string> args{
        "--jobs=20000", "--target-ci=0.1", "--max-jobs=80000",
        std::string("--planner=") + planner};
    auto cold_cache = make_cache();
    const std::string cold =
        run_to_json("power_of_d", args, 4, 2, &cold_cache);
    auto warm_cache = make_cache();
    const std::string warm =
        run_to_json("power_of_d", args, 1, 2, &warm_cache);
    EXPECT_EQ(warm, cold) << planner;
    EXPECT_EQ(warm_cache.misses(), 0u) << planner;
    EXPECT_GT(warm_cache.hits(), 0u) << planner;
  }
}

TEST_F(ScenarioCache, RefineFromCachedStateEqualsColdRunAtTighterTarget) {
  // The --refine contract end to end: seed the cache at a loose target,
  // re-run with --refine at a tighter one, and compare against an
  // uncached cold run at the tight target — byte-identical under the
  // geometric planner, and cheaper (only solver cells recompute from
  // scratch; every simulated cell resumes its round schedule).
  const std::vector<std::string> base{"--jobs=20000", "--max-jobs=160000"};
  auto loose_args = base;
  loose_args.push_back("--target-ci=0.2");
  auto cache = make_cache();
  (void)run_to_json("power_of_d", loose_args, 4, 1, &cache);

  auto tight_args = base;
  tight_args.push_back("--target-ci=0.1");
  const std::string cold = run_to_json("power_of_d", tight_args, 2, 1);

  auto refine_args = tight_args;
  refine_args.push_back("--refine");
  auto refine_cache = make_cache();
  const std::string refined =
      run_to_json("power_of_d", refine_args, 1, 1, &refine_cache);
  EXPECT_EQ(refined, cold);
  EXPECT_GT(refine_cache.refined(), 0u);
  EXPECT_EQ(refine_cache.hits(), 0u);

  // The refined records now satisfy the tight target: a plain warm
  // re-run at --target-ci=0.1 is all hits.
  auto warm_cache = make_cache();
  const std::string warm =
      run_to_json("power_of_d", tight_args, 4, 1, &warm_cache);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(warm_cache.misses(), 0u);
}

TEST(Scenarios, MarkdownCatalogCoversEveryScenario) {
  const auto scenarios = ScenarioRegistry::global().list();
  const std::string catalog = rlb::engine::markdown_catalog(scenarios);
  for (const Scenario* s : scenarios) {
    EXPECT_NE(catalog.find("## `" + s->name + "`"), std::string::npos)
        << s->name;
    for (const auto& p : s->params)
      EXPECT_NE(catalog.find("`--" + p.name + "`"), std::string::npos)
          << s->name << " --" << p.name;
  }
  // The global-flag section documents the full rlb_run CLI.
  EXPECT_NE(catalog.find("## Common flags"), std::string::npos);
  for (const char* flag :
       {"`--threads`", "`--replicas`", "`--baseline`", "`--target-ci`",
        "`--confidence`", "`--max-jobs`", "`--warmup-policy`",
        "`--planner`"})
    EXPECT_NE(catalog.find(flag), std::string::npos) << flag;
}

}  // namespace
