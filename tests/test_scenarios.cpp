// End-to-end checks of registered scenarios through the global registry
// (this binary links the bench/ and examples/ scenario translation units,
// unlike the unit-test binaries). The key property is the rlb_run
// contract: for a fixed --replicas value, the rendered output of a
// scenario is bit-identical for every thread count.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/scenario.h"
#include "engine/sink.h"
#include "engine/sweep.h"
#include "sim/cluster_sim.h"
#include "sim/distributions.h"
#include "util/cli.h"
#include "util/table.h"

#ifndef RLB_SOURCE_DIR
#error "RLB_SOURCE_DIR must point at the repository root"
#endif

namespace {

using rlb::engine::Scenario;
using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioRegistry;

/// Render one scenario run (args as an rlb_run-style flag list) to JSON.
std::string run_to_json(const std::string& name,
                        std::vector<std::string> args, int threads,
                        int replicas) {
  const Scenario& scenario = ScenarioRegistry::global().get(name);
  args.insert(args.begin(), "test_scenarios");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  const rlb::util::Cli cli(static_cast<int>(argv.size()), argv.data());
  ScenarioContext ctx(cli, threads, replicas);
  return rlb::engine::to_json(scenario.run(ctx), name);
}

struct QuickScenario {
  std::string name;
  std::vector<std::string> args;  ///< small job counts: ~1s per run
};

std::vector<QuickScenario> new_scenarios() {
  return {
      {"policy_comparison", {"--jobs=30000"}},
      {"batch_arrivals", {"--jobs=30000"}},
      {"hetero_fleet_bounds", {"--steps=120000", "--arrivals=60000"}},
      // Compact-engine fleet sweep, shrunk to test scale; --time stays 0
      // so the output is deterministic (the wall-clock column is the one
      // documented exception to the determinism contract).
      {"fleet_scaling",
       {"--nmin=32", "--nmax=128", "--nstep=2", "--jobs-per-server=200",
        "--crosscheck-n=64", "--crosscheck-jobs=20000"}},
      // The realistic-workload pair: heavy-tailed service columns and the
      // windowed / SLA diurnal capacity sweep.
      {"heavy_tail_service", {"--jobs=15000"}},
      {"diurnal_surge", {"--jobs=20000", "--ns=10,14"}},
  };
}

TEST(Scenarios, NewScenariosAreRegistered) {
  for (const auto& s : new_scenarios())
    EXPECT_TRUE(ScenarioRegistry::global().contains(s.name)) << s.name;
}

TEST(Scenarios, ThreadCountNeverChangesOutput) {
  for (const auto& s : new_scenarios()) {
    const std::string one = run_to_json(s.name, s.args, 1, 1);
    const std::string four = run_to_json(s.name, s.args, 4, 1);
    EXPECT_EQ(one, four) << s.name;
  }
}

TEST(Scenarios, ThreadCountNeverChangesOutputWithReplicas) {
  for (const auto& s : new_scenarios()) {
    const std::string one = run_to_json(s.name, s.args, 1, 2);
    const std::string four = run_to_json(s.name, s.args, 4, 2);
    EXPECT_EQ(one, four) << s.name;
  }
}

TEST(Scenarios, ReplicasChangeOutputDeterministically) {
  for (const auto& s : new_scenarios()) {
    const std::string r1 = run_to_json(s.name, s.args, 2, 1);
    const std::string r2 = run_to_json(s.name, s.args, 2, 2);
    const std::string r2_again = run_to_json(s.name, s.args, 2, 2);
    EXPECT_NE(r1, r2) << s.name;  // R decorrelated streams differ...
    EXPECT_EQ(r2, r2_again) << s.name;  // ...but reproducibly.
  }
}

TEST(Scenarios, AdaptiveModeIsThreadCountInvariantAndReportsColumns) {
  // The --target-ci acceptance contract: adaptive runs stop on their own
  // schedule, report half_width / jobs_used / converged, and stay
  // bit-identical across thread counts (rounds are barriers; replicas
  // seed and merge in index order).
  const std::vector<std::string> args{"--jobs=30000", "--target-ci=0.05",
                                      "--max-jobs=120000"};
  for (int replicas : {1, 2}) {
    const std::string one = run_to_json("power_of_d", args, 1, replicas);
    const std::string four = run_to_json("power_of_d", args, 4, replicas);
    EXPECT_EQ(one, four) << "replicas=" << replicas;
  }
  const std::string out = run_to_json("power_of_d", args, 2, 1);
  for (const char* column : {"half_width", "jobs_used", "converged"})
    EXPECT_NE(out.find(column), std::string::npos) << column;
}

/// The five scenarios PR 5 wired into --target-ci, with budgets small
/// enough for ~seconds-long runs. Together with power_of_d /
/// policy_comparison / tail_distribution / hetero_fleet_bounds this
/// makes all nine sweep scenarios adaptive-capable.
std::vector<QuickScenario> newly_wired_adaptive() {
  const std::vector<std::string> knobs{"--target-ci=0.2",
                                       "--max-jobs=60000"};
  std::vector<QuickScenario> scenarios{
      {"fig09_relative_error", {"--jobs=20000", "--rho=0.75"}},
      {"fig10_delay_vs_utilization", {"--jobs=20000", "--panel=a"}},
      {"sigma_gi", {"--jobs=20000"}},
      {"waiting_profile", {"--jobs=20000"}},
      {"batch_arrivals", {"--jobs=20000"}},
  };
  for (auto& s : scenarios)
    s.args.insert(s.args.end(), knobs.begin(), knobs.end());
  return scenarios;
}

TEST(Scenarios, NewlyWiredAdaptiveScenariosAreThreadCountInvariant) {
  // The acceptance contract for the five scenarios wired in this PR:
  // with --target-ci set, 1-thread and 4-thread runs are bit-identical
  // and the adaptive columns appear.
  for (const auto& s : newly_wired_adaptive()) {
    const std::string one = run_to_json(s.name, s.args, 1, 2);
    const std::string four = run_to_json(s.name, s.args, 4, 2);
    EXPECT_EQ(one, four) << s.name;
    for (const char* column : {"half_width", "jobs_used", "converged"})
      EXPECT_NE(one.find(column), std::string::npos)
          << s.name << " lacks " << column;
  }
}

TEST(Scenarios, VariancePlannerIsThreadCountInvariant) {
  // --planner=variance sizes rounds from merged statistics only, so its
  // schedule must be just as thread-count invariant as the geometric
  // default.
  for (const auto& base : newly_wired_adaptive()) {
    auto args = base.args;
    args.push_back("--planner=variance");
    const std::string one = run_to_json(base.name, args, 1, 2);
    const std::string four = run_to_json(base.name, args, 4, 2);
    EXPECT_EQ(one, four) << base.name;
  }
}

TEST(Scenarios, AdaptiveBoundScenarioIsThreadCountInvariant) {
  // hetero_fleet_bounds drives both bound-model simulators through the
  // adaptive path (CTMC jump chain + GI event simulation).
  const std::vector<std::string> args{"--steps=120000", "--arrivals=60000",
                                      "--target-ci=0.2",
                                      "--max-jobs=240000"};
  const std::string one = run_to_json("hetero_fleet_bounds", args, 1, 2);
  const std::string four = run_to_json("hetero_fleet_bounds", args, 4, 2);
  EXPECT_EQ(one, four);
}

TEST(Scenarios, HeavyTailExpColumnReproducesTheLegacyStream) {
  // The scenario's exponential column is the stock M/M path: the same
  // ClusterConfig fed straight into simulate_cluster must land in the
  // rendered table verbatim (the scenario adds no randomness of its own).
  using namespace rlb::sim;
  ClusterConfig cfg;
  cfg.servers = 8;
  cfg.jobs = 15'000;
  cfg.warmup = 1'500;
  cfg.seed = rlb::engine::cell_seed(24680, 0);  // the scenario's row 0
  cfg.replicas = 1;
  const auto interarrival = make_exponential(0.85 * 8);
  const auto service = make_exponential(1.0);
  SqdPolicy policy(8, 2);
  const auto direct = simulate_cluster(cfg, policy, *interarrival, *service);

  const std::string json = run_to_json(
      "heavy_tail_service", {"--jobs=15000", "--dist=exp"}, 2, 1);
  EXPECT_NE(json.find(rlb::util::fmt(direct.mean_sojourn, 4)),
            std::string::npos);
  EXPECT_NE(json.find(rlb::util::fmt(direct.p99_sojourn, 4)),
            std::string::npos);
}

TEST(Scenarios, DiurnalSurgeReplaysTheGoldenTrace) {
  // Trace replay consumes no randomness, so the run is bit-identical
  // across thread counts and the rendered text names the trace stream.
  const std::vector<std::string> args{
      "--jobs=10000", "--ns=10,12",
      std::string("--trace=") + RLB_SOURCE_DIR + "/tests/data/golden.trace"};
  const std::string one = run_to_json("diurnal_surge", args, 1, 2);
  const std::string four = run_to_json("diurnal_surge", args, 4, 2);
  EXPECT_EQ(one, four);

  const Scenario& scenario = ScenarioRegistry::global().get("diurnal_surge");
  std::vector<std::string> argv_store = args;
  argv_store.insert(argv_store.begin(), "test_scenarios");
  std::vector<char*> argv;
  for (auto& a : argv_store) argv.push_back(a.data());
  const rlb::util::Cli cli(static_cast<int>(argv.size()), argv.data());
  ScenarioContext ctx(cli, 2, 1);
  std::ostringstream text;
  rlb::engine::write_text(scenario.run(ctx), text);
  EXPECT_NE(text.str().find("trace(40 jobs/cycle)"), std::string::npos);
}

TEST(Scenarios, MarkdownCatalogCoversEveryScenario) {
  const auto scenarios = ScenarioRegistry::global().list();
  const std::string catalog = rlb::engine::markdown_catalog(scenarios);
  for (const Scenario* s : scenarios) {
    EXPECT_NE(catalog.find("## `" + s->name + "`"), std::string::npos)
        << s->name;
    for (const auto& p : s->params)
      EXPECT_NE(catalog.find("`--" + p.name + "`"), std::string::npos)
          << s->name << " --" << p.name;
  }
  // The global-flag section documents the full rlb_run CLI.
  EXPECT_NE(catalog.find("## Common flags"), std::string::npos);
  for (const char* flag :
       {"`--threads`", "`--replicas`", "`--baseline`", "`--target-ci`",
        "`--confidence`", "`--max-jobs`", "`--warmup-policy`",
        "`--planner`"})
    EXPECT_NE(catalog.find(flag), std::string::npos) << flag;
}

}  // namespace
