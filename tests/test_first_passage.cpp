#include "markov/first_passage.h"

#include <gtest/gtest.h>

#include "markov/ctmc.h"
#include "sqd/bound_model.h"
#include "sqd/transitions.h"
#include "statespace/state.h"

namespace {

namespace mk = rlb::markov;
using rlb::linalg::Matrix;
using rlb::linalg::Vector;
using rlb::statespace::State;

TEST(FirstPassage, TwoStateClosedForm) {
  // 0 -> 1 at rate a: hitting time of {1} from 0 is 1/a.
  Matrix q(2, 2, 0.0);
  q(0, 0) = -3.0;
  q(0, 1) = 3.0;
  q(1, 0) = 1.0;
  q(1, 1) = -1.0;
  const Vector h = mk::expected_hitting_times(q, {false, true});
  EXPECT_NEAR(h[0], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(h[1], 0.0);
}

TEST(FirstPassage, Mm1BusyPeriod) {
  // M/M/1 (truncated high): expected busy period from state 1 to empty is
  // 1/(mu - lambda).
  const double lambda = 0.6, mu = 1.0;
  const int cap = 120;  // truncation error is exponentially small
  const auto chain = mk::build_ctmc(State{0}, [&](const State& s) {
    std::vector<mk::Rated> out;
    if (s[0] < cap) out.push_back({State{s[0] + 1}, lambda});
    if (s[0] > 0) out.push_back({State{s[0] - 1}, mu});
    return out;
  });
  std::vector<bool> target(chain.size(), false);
  target[chain.index.at(State{0})] = true;
  const Vector h = mk::expected_hitting_times(chain.generator, target);
  EXPECT_NEAR(h[chain.index.at(State{1})], 1.0 / (mu - lambda), 1e-6);
  // From two jobs it takes twice as long (each job drains independently).
  EXPECT_NEAR(h[chain.index.at(State{2})], 2.0 / (mu - lambda), 1e-6);
}

TEST(FirstPassage, RandomWalkHittingTimesMonotone) {
  // Birth-death chain: farther states take longer to reach the origin.
  const auto chain = mk::build_ctmc(State{0}, [&](const State& s) {
    std::vector<mk::Rated> out;
    if (s[0] < 30) out.push_back({State{s[0] + 1}, 0.8});
    if (s[0] > 0) out.push_back({State{s[0] - 1}, 1.0});
    return out;
  });
  std::vector<bool> target(chain.size(), false);
  target[chain.index.at(State{0})] = true;
  const Vector h = mk::expected_hitting_times(chain.generator, target);
  for (int k = 1; k < 30; ++k)
    EXPECT_GT(h[chain.index.at(State{k + 1})], h[chain.index.at(State{k})]);
}

TEST(FirstPassage, ClusterDrainTimeOrdering) {
  // Drain time (to the all-empty state) of the truncated SQ(2) chain grows
  // with the initial backlog and exceeds the work/(capacity) lower bound.
  const rlb::sqd::Params p{2, 2, 0.5, 1.0};
  const int cap = 24;
  const auto chain = mk::build_ctmc(
      State{0, 0}, [&](const State& m) {
        std::vector<mk::Rated> out;
        if (rlb::statespace::total_jobs(m) < cap)
          for (auto& t : rlb::sqd::arrival_transitions(m, p))
            out.push_back({std::move(t.to), t.rate});
        for (auto& t : rlb::sqd::departure_transitions(m, p))
          out.push_back({std::move(t.to), t.rate});
        return out;
      });
  std::vector<bool> target(chain.size(), false);
  target[chain.index.at(State{0, 0})] = true;
  const Vector h = mk::expected_hitting_times(chain.generator, target);
  const double from_2_2 = h[chain.index.at(State{2, 2})];
  const double from_1_1 = h[chain.index.at(State{1, 1})];
  EXPECT_GT(from_2_2, from_1_1);
  EXPECT_GT(from_1_1, 1.0);  // at least the two services, with interference
}

TEST(FirstPassage, DomainChecks) {
  Matrix q(2, 2, 0.0);
  q(0, 0) = -1.0;
  q(0, 1) = 1.0;
  q(1, 0) = 1.0;
  q(1, 1) = -1.0;
  EXPECT_THROW(mk::expected_hitting_times(q, {false, false}),
               std::invalid_argument);
  EXPECT_THROW(mk::expected_hitting_times(q, {true}),
               std::invalid_argument);
}

}  // namespace
