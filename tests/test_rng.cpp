#include "sim/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace {

using rlb::sim::DistinctSampler;
using rlb::sim::Rng;

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.next_double();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sum2 / n, 1.0 / 3.0, 0.005);
}

TEST(Rng, UniformIntUnbiasedSmallBound) {
  Rng rng(17);
  std::vector<int> counts(5, 0);
  const int n = 250000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5.0, 5.0 * std::sqrt(n / 5.0));
}

TEST(Rng, ExponentialMeanAndMemorylessTail) {
  Rng rng(23);
  const double rate = 2.5;
  double sum = 0.0;
  int above = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    sum += x;
    if (x > 1.0 / rate) ++above;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01 / rate);
  EXPECT_NEAR(static_cast<double>(above) / n, std::exp(-1.0), 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(31);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(DistinctSampler, ProducesDistinctIndices) {
  Rng rng(37);
  DistinctSampler sampler(10);
  std::vector<int> out;
  for (int trial = 0; trial < 1000; ++trial) {
    sampler.sample(4, rng, out);
    ASSERT_EQ(out.size(), 4u);
    std::set<int> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), 4u);
    for (int v : out) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
}

TEST(DistinctSampler, FullSampleIsPermutation) {
  Rng rng(41);
  DistinctSampler sampler(6);
  std::vector<int> out;
  sampler.sample(6, rng, out);
  std::set<int> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(DistinctSampler, MarginalsUniform) {
  // Each index should appear in a d-sample with probability d/n.
  Rng rng(43);
  const int n = 8, d = 3;
  DistinctSampler sampler(n);
  std::vector<int> counts(n, 0);
  std::vector<int> out;
  const int trials = 120000;
  for (int t = 0; t < trials; ++t) {
    sampler.sample(d, rng, out);
    for (int v : out) ++counts[v];
  }
  const double expected = trials * static_cast<double>(d) / n;
  for (int c : counts) EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
}

TEST(DistinctSampler, StateRestoredBetweenCalls) {
  // Sampling must not leave a permuted array behind (would bias later
  // samples): compare against a fresh sampler driven by the same RNG.
  Rng rng1(47), rng2(47);
  DistinctSampler reused(12);
  std::vector<int> a, b;
  reused.sample(5, rng1, a);  // perturb + restore
  reused.sample(5, rng1, a);
  DistinctSampler fresh(12);
  fresh.sample(5, rng2, b);  // consume the same stream
  fresh.sample(5, rng2, b);
  EXPECT_EQ(a, b);
}

}  // namespace
