// End-to-end regression anchors: specific numbers a correct implementation
// must reproduce (computed from the exact truncated CTMC and the solvers
// themselves, then frozen). These catch silent regressions that the
// relative/property tests could miss.
#include <cmath>

#include <gtest/gtest.h>

#include "qbd/solver.h"
#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "sqd/exact_reference.h"
#include "sqd/tail_distribution.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

// Figure 10(a) midpoint: N = 3, d = 2, T = 2, rho = 0.5.
TEST(Anchors, Fig10aMidpoint) {
  const Params p{3, 2, 0.5, 1.0};
  const double lower =
      rlb::sqd::solve_lower_improved(BoundModel(p, 2, BoundKind::Lower))
          .mean_delay;
  const double upper =
      rlb::sqd::solve_bound(BoundModel(p, 2, BoundKind::Upper)).mean_delay;
  const double exact = rlb::sqd::solve_exact_truncated(p, 40).mean_delay;
  // Frozen values (1e-3 tolerance; solver-grade quantities).
  EXPECT_NEAR(lower, 1.3102, 2e-3);
  EXPECT_NEAR(upper, 1.4547, 2e-3);
  EXPECT_NEAR(exact, 1.3520, 2e-3);
  EXPECT_NEAR(rlb::sqd::asymptotic_delay(0.5, 2), 1.2657, 2e-3);
}

// Figure 10(b): T = 3 tightens the upper bound at the same configuration.
TEST(Anchors, Fig10bTighterUpper) {
  const Params p{3, 2, 0.5, 1.0};
  const double upper3 =
      rlb::sqd::solve_bound(BoundModel(p, 3, BoundKind::Upper)).mean_delay;
  EXPECT_NEAR(upper3, 1.3601, 2e-3);
  EXPECT_LT(upper3, 1.4547);
}

// Figure 10(a) high-load lower bound.
TEST(Anchors, Fig10aHighLoad) {
  const Params p{3, 2, 0.9, 1.0};
  const double lower =
      rlb::sqd::solve_lower_improved(BoundModel(p, 2, BoundKind::Lower))
          .mean_delay;
  EXPECT_NEAR(lower, 3.9600, 5e-3);
}

// The upper model's instability frontier for T = 2, N = 3 sits between
// rho = 0.80 and rho = 0.85 (Figure 10(a)'s blow-up region).
TEST(Anchors, UpperStabilityFrontier) {
  const BoundModel stable(Params{3, 2, 0.80, 1.0}, 2, BoundKind::Upper);
  EXPECT_NO_THROW(rlb::sqd::solve_bound(stable));
  const BoundModel unstable(Params{3, 2, 0.85, 1.0}, 2, BoundKind::Upper);
  EXPECT_THROW(rlb::sqd::solve_bound(unstable), rlb::qbd::UnstableError);
}

// Exact reference values for tiny systems (independent of the QBD path).
TEST(Anchors, ExactSmallSystems) {
  // N = 2, d = 2 is symmetric JSQ; classic well-studied system.
  const auto jsq2 = rlb::sqd::solve_exact_truncated(Params{2, 2, 0.5, 1.0}, 60);
  EXPECT_NEAR(jsq2.mean_jobs, 1.4263, 2e-3);
  const auto sq1 = rlb::sqd::solve_exact_truncated(Params{2, 1, 0.5, 1.0}, 60);
  EXPECT_NEAR(sq1.mean_jobs, 2.0, 2e-3);  // two independent M/M/1 at 0.5
}

// Simulation consistency anchor: three estimators of the same quantity.
TEST(Anchors, ThreeWayAgreementModerateLoad) {
  const Params p{3, 2, 0.7, 1.0};
  const double exact = rlb::sqd::solve_exact_truncated(p, 36).mean_delay;

  rlb::sim::FastSqdConfig cfg;
  cfg.params = p;
  cfg.jobs = 2'000'000;
  cfg.warmup = 200'000;
  cfg.seed = 2024;
  const auto sim = rlb::sim::simulate_sqd_fast(cfg);

  const double lower =
      rlb::sqd::solve_lower_improved(BoundModel(p, 4, BoundKind::Lower))
          .mean_delay;
  const double upper =
      rlb::sqd::solve_bound(BoundModel(p, 4, BoundKind::Upper)).mean_delay;

  EXPECT_NEAR(sim.mean_delay, exact, 4.0 * sim.ci95_delay + 0.01);
  // With T = 4 the sandwich is tight at rho = 0.7.
  EXPECT_LE(lower, exact + 1e-6);
  EXPECT_GE(upper, exact - 1e-6);
  EXPECT_LT(upper - lower, 0.06);
}

// Marginal tails line up across methods at a figure-like configuration
// (moderate load, where the lower bound is tight; at rho = 0.9 the T = 3
// truncation visibly under-weights the tail for N = 6 — see Figure 10(c)).
TEST(Anchors, TailThreeWay) {
  const Params p{6, 2, 0.7, 1.0};
  const auto bound_tail =
      rlb::sqd::marginal_queue_tail(BoundModel(p, 3, BoundKind::Lower), 6);

  rlb::sim::FastSqdConfig cfg;
  cfg.params = p;
  cfg.jobs = 2'000'000;
  cfg.warmup = 200'000;
  cfg.tail_kmax = 6;
  cfg.seed = 77;
  const auto sim = rlb::sim::simulate_sqd_fast(cfg);

  for (int k = 1; k <= 6; ++k)
    EXPECT_NEAR(bound_tail.tail[k], sim.marginal_tail[k], 0.02) << k;
}

}  // namespace
