#include "sqd/bound_solver.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "sqd/asymptotic.h"
#include "sqd/mm_queues.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::BoundResult;
using rlb::sqd::Params;

TEST(BoundSolver, SingleServerIsExactMm1) {
  // N = 1: both bound models ARE M/M/1, so the "bounds" are exact.
  for (double lambda : {0.3, 0.7, 0.95}) {
    const rlb::sqd::Mm1 ref{lambda, 1.0};
    for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
      const BoundModel model(Params{1, 1, lambda, 1.0}, 1, kind);
      const BoundResult r = rlb::sqd::solve_bound(model);
      EXPECT_NEAR(r.mean_waiting_jobs, ref.mean_waiting_jobs(), 1e-9);
      EXPECT_NEAR(r.mean_jobs, ref.mean_jobs(), 1e-9);
      EXPECT_NEAR(r.mean_delay, ref.mean_sojourn(), 1e-9);
    }
  }
}

TEST(BoundSolver, LowerBelowUpper) {
  for (double rho : {0.2, 0.5, 0.7}) {
    for (int t : {2, 3}) {
      const Params p{3, 2, rho, 1.0};
      const double lower =
          rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Lower)).mean_delay;
      const double upper =
          rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper)).mean_delay;
      EXPECT_LE(lower, upper + 1e-9) << rho << ' ' << t;
    }
  }
}

TEST(BoundSolver, BoundsTightenWithT) {
  // Larger T truncates less: lower bounds increase, upper bounds decrease.
  // The upper model may be unstable at small T (treat as +infinity).
  const Params p{3, 2, 0.6, 1.0};
  double prev_lower = 0.0;
  double prev_upper = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= 4; ++t) {
    const double lower =
        rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Lower)).mean_delay;
    double upper = std::numeric_limits<double>::infinity();
    try {
      upper =
          rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper)).mean_delay;
    } catch (const rlb::qbd::UnstableError&) {
    }
    EXPECT_GE(lower, prev_lower - 1e-9) << t;
    EXPECT_LE(upper, prev_upper + 1e-9) << t;
    prev_lower = lower;
    prev_upper = upper;
  }
  // And they pinch: by T = 4 the gap is small at this moderate load.
  EXPECT_LT(prev_upper - prev_lower, 0.05);
}

TEST(BoundSolver, DelayAtLeastServiceTime) {
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(Params{4, 2, 0.4, 1.0}, 2, kind);
    const BoundResult r = rlb::sqd::solve_bound(model);
    EXPECT_GE(r.mean_delay, 1.0);
    EXPECT_GE(r.mean_waiting_jobs, 0.0);
    EXPECT_NEAR(r.mean_delay, r.mean_waiting_time + 1.0, 1e-12);
  }
}

TEST(BoundSolver, LittleLawInternalConsistency) {
  const BoundModel model(Params{3, 2, 0.8, 1.0}, 3, BoundKind::Lower);
  const BoundResult r = rlb::sqd::solve_bound(model);
  EXPECT_NEAR(r.mean_waiting_time, r.mean_waiting_jobs / (0.8 * 3), 1e-12);
}

TEST(BoundSolver, LightLoadMatchesAsymptotic) {
  // At light load every finite-N effect vanishes; bounds and the N->inf
  // approximation all converge to ~1.
  const Params p{6, 2, 0.05, 1.0};
  const double lower =
      rlb::sqd::solve_bound(BoundModel(p, 2, BoundKind::Lower)).mean_delay;
  const double upper =
      rlb::sqd::solve_bound(BoundModel(p, 2, BoundKind::Upper)).mean_delay;
  const double asym = rlb::sqd::asymptotic_delay(0.05, 2);
  EXPECT_NEAR(lower, asym, 0.01);
  EXPECT_NEAR(upper, asym, 0.01);
}

TEST(BoundSolver, ReportsDiagnostics) {
  const BoundModel model(Params{3, 2, 0.7, 1.0}, 2, BoundKind::Lower);
  const BoundResult r = rlb::sqd::solve_bound(model);
  EXPECT_GT(r.logred_iterations, 0);
  EXPECT_LT(r.r_residual, 1e-10);
  EXPECT_EQ(r.block_size, 6u);
  EXPECT_GT(r.boundary_size, 0u);
  EXPECT_NEAR(r.total_probability, 1.0, 1e-9);
  EXPECT_GT(r.prob_boundary, 0.0);
  EXPECT_LT(r.prob_boundary, 1.0);
}

TEST(BoundSolver, ProbBoundaryShrinksWithLoad) {
  const int T = 2;
  double prev = 1.0;
  for (double rho : {0.3, 0.6, 0.9}) {
    const BoundModel model(Params{3, 2, rho, 1.0}, T, BoundKind::Lower);
    const double pb = rlb::sqd::solve_bound(model).prob_boundary;
    EXPECT_LT(pb, prev);
    prev = pb;
  }
}

TEST(BoundSolver, JsqCaseMatchesAdanStyleBounds) {
  // d = N (JSQ), N = 2: the lower bound model is the classic jockeying
  // model, whose mean queue length is known to be extremely close to the
  // true symmetric-JSQ value; sanity-check monotonicity and a ballpark
  // figure at rho = 0.5: true E[W_jsq] ~ 0.24 (Adan et al. report ~0.2).
  const Params p{2, 2, 0.5, 1.0};
  const double lower =
      rlb::sqd::solve_bound(BoundModel(p, 3, BoundKind::Lower)).mean_waiting_time;
  const double upper =
      rlb::sqd::solve_bound(BoundModel(p, 3, BoundKind::Upper)).mean_waiting_time;
  EXPECT_GT(upper, lower - 1e-12);
  EXPECT_GT(lower, 0.0);
  EXPECT_LT(upper, 1.0);
}

}  // namespace
