// Statistical correctness of the adaptive (--target-ci) machinery: the
// confidence intervals the sequential-stopping runs certify must COVER.
//
// Strategy: run many independent seeded adaptive cells of a model with a
// closed-form answer — SQ(1) with N = 1 is exactly M/M/1, so the fast
// jump-chain simulator's mean delay has the textbook value 1/(mu(1-rho))
// and the bound-model CTMC's mean waiting jobs is rho^2/(1-rho) — and
// count how often the certified interval [mean ± half_width] contains
// the truth. The empirical coverage must sit in a tolerance band around
// the nominal confidence level. Everything is seeded, so the suite is
// deterministic; it is merely slower than the unit tests, hence the
// `statistical` CTest label (CMakeLists.txt) and its own CI step.
//
// The bands are deliberately one-sided-loose downward: batch-means
// intervals are approximate (autocorrelation, df pooling) and sequential
// stopping peeks at the data, both of which shave a little coverage.
// What the suite must catch is a broken pooling formula or a planner
// that stops on fantasy intervals — failures that crater coverage far
// below any band here.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include <gtest/gtest.h>

#include "sim/bound_sim.h"
#include "sim/fast_sqd.h"
#include "sim/replica.h"
#include "sqd/bound_model.h"
#include "sqd/mm_queues.h"
#include "util/thread_budget.h"

namespace {

using rlb::sim::AdaptivePlan;
using rlb::sim::PlannerKind;
using rlb::util::ThreadBudget;

constexpr double kRho = 0.7;
constexpr int kCells = 80;

/// The adaptive plan one coverage cell runs: small rounds, room to grow,
/// a fixed absolute warmup well past the M/M/1 mixing time at rho = 0.7.
AdaptivePlan coverage_plan(double target, double confidence,
                           std::uint64_t seed, PlannerKind planner) {
  AdaptivePlan plan;
  plan.replicas = 2;
  plan.target_ci = target;
  plan.confidence = confidence;
  plan.initial_jobs = 8'000;
  plan.max_jobs = 64 * 8'000;
  plan.warmup_jobs = 500;
  plan.base_seed = seed;
  plan.planner = planner;
  return plan;
}

/// Fraction of `kCells` independent adaptive M/M/1 cells whose certified
/// interval covers the exact mean sojourn time. Cells that cap out
/// un-converged still report an honest half-width and count like any
/// other (their interval is just wider).
double mm1_coverage(double confidence, PlannerKind planner) {
  const rlb::sqd::Mm1 exact{kRho, 1.0};
  int covered = 0;
  for (int cell = 0; cell < kCells; ++cell) {
    rlb::sim::FastSqdConfig cfg;
    cfg.params = {1, 1, kRho, 1.0};  // SQ(1), N = 1: exactly M/M/1
    const auto seed = static_cast<std::uint64_t>(1000 + 7 * cell);
    const auto res = rlb::sim::simulate_sqd_fast_adaptive(
        cfg, coverage_plan(0.08, confidence, seed, planner),
        ThreadBudget::serial());
    if (std::abs(res.mean_delay - exact.mean_sojourn()) <=
        res.adaptive.half_width)
      ++covered;
  }
  const double coverage = static_cast<double>(covered) / kCells;
  // Realized value in the log: band failures are easier to diagnose
  // with the number in hand, and drift toward a band edge is visible
  // before it fails.
  std::cout << "[coverage] nominal " << confidence << " -> empirical "
            << coverage << " over " << kCells << " cells\n";
  return coverage;
}

TEST(AdaptiveCoverage, Mm1MeanDelayAtNominal90) {
  const double coverage = mm1_coverage(0.90, PlannerKind::kGeometric);
  EXPECT_GE(coverage, 0.75) << "90% CIs cover far too rarely";
  EXPECT_LE(coverage, 1.00);
}

TEST(AdaptiveCoverage, Mm1MeanDelayAtNominal95) {
  const double coverage = mm1_coverage(0.95, PlannerKind::kGeometric);
  EXPECT_GE(coverage, 0.82) << "95% CIs cover far too rarely";
  EXPECT_LE(coverage, 1.00);
}

TEST(AdaptiveCoverage, Mm1MeanDelayAtNominal99) {
  const double coverage = mm1_coverage(0.99, PlannerKind::kGeometric);
  EXPECT_GE(coverage, 0.90) << "99% CIs cover far too rarely";
  EXPECT_LE(coverage, 1.00);
}

TEST(AdaptiveCoverage, VariancePlannerKeepsNominal95Coverage) {
  // The variance planner spends fewer jobs; it must not buy that
  // efficiency with fantasy intervals.
  const double coverage = mm1_coverage(0.95, PlannerKind::kVariance);
  EXPECT_GE(coverage, 0.82);
  EXPECT_LE(coverage, 1.00);
}

TEST(AdaptiveCoverage, BoundCtmcWaitingJobsAtNominal95) {
  // Same experiment through the OTHER CI machinery: the bound-model CTMC
  // tracks its waiting-jobs time average with holding-time-weighted
  // batch means (WeightedBatchMeans). The lower bound model at N = 1
  // collapses to M/M/1, whose mean queue length is rho^2 / (1 - rho).
  const rlb::sqd::Mm1 exact{kRho, 1.0};
  const rlb::sqd::BoundModel model(rlb::sqd::Params{1, 1, kRho, 1.0}, 2,
                                   rlb::sqd::BoundKind::Lower);
  int covered = 0;
  constexpr int kCtmcCells = 40;  // CTMC steps cost more than jumps
  for (int cell = 0; cell < kCtmcCells; ++cell) {
    const auto seed = static_cast<std::uint64_t>(9000 + 13 * cell);
    const auto res = rlb::sim::simulate_bound_model_adaptive(
        model, coverage_plan(0.10, 0.95, seed, PlannerKind::kGeometric),
        ThreadBudget::serial());
    if (std::abs(res.mean_waiting_jobs - exact.mean_waiting_jobs()) <=
        res.adaptive.half_width)
      ++covered;
  }
  const double coverage = static_cast<double>(covered) / kCtmcCells;
  EXPECT_GE(coverage, 0.80);
  EXPECT_LE(coverage, 1.00);
}

TEST(AdaptiveCoverage, IntervalsAreNotVacuouslyWide) {
  // Coverage bands alone could be gamed by infinite intervals; pin the
  // other side: converged cells certify at most the requested target.
  const auto res = rlb::sim::simulate_sqd_fast_adaptive(
      [] {
        rlb::sim::FastSqdConfig cfg;
        cfg.params = {1, 1, kRho, 1.0};
        return cfg;
      }(),
      coverage_plan(0.08, 0.95, 424'242, PlannerKind::kGeometric),
      ThreadBudget::serial());
  ASSERT_TRUE(res.adaptive.converged);
  EXPECT_LE(res.adaptive.half_width, 0.08);
  EXPECT_GT(res.adaptive.half_width, 0.0);
}

}  // namespace
