#include "sqd/asymptotic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using rlb::sqd::asymptotic_delay;
using rlb::sqd::asymptotic_queue_tail;

TEST(Asymptotic, DegeneratesToMm1ForDOne) {
  for (double lambda : {0.1, 0.5, 0.9, 0.99})
    EXPECT_NEAR(asymptotic_delay(lambda, 1), 1.0 / (1.0 - lambda), 1e-12);
}

TEST(Asymptotic, ZeroLoadIsPureService) {
  EXPECT_DOUBLE_EQ(asymptotic_delay(0.0, 2), 1.0);
  EXPECT_DOUBLE_EQ(asymptotic_delay(0.0, 10), 1.0);
}

TEST(Asymptotic, ManualSeriesForDTwo) {
  // d = 2: exponents (2^i - 2)/1 = 0, 2, 6, 14, 30, ...
  const double lambda = 0.9;
  double expected = 0.0;
  for (int i = 1; i <= 30; ++i)
    expected += std::pow(lambda, std::pow(2.0, i) - 2.0);
  EXPECT_NEAR(asymptotic_delay(lambda, 2), expected, 1e-12);
}

TEST(Asymptotic, PowerOfTwoExponentialImprovement) {
  // At high load, d = 2 is dramatically better than d = 1, and the marginal
  // gain from d = 2 -> 3 is much smaller — Mitzenmacher's headline.
  const double lambda = 0.99;
  const double d1 = asymptotic_delay(lambda, 1);
  const double d2 = asymptotic_delay(lambda, 2);
  const double d3 = asymptotic_delay(lambda, 3);
  EXPECT_GT(d1 / d2, 15.0);
  EXPECT_LT(d2 / d3, 3.0);
}

TEST(Asymptotic, MonotoneDecreasingInD) {
  const double lambda = 0.95;
  double prev = asymptotic_delay(lambda, 1);
  for (int d = 2; d <= 50; d *= 2) {
    const double cur = asymptotic_delay(lambda, d);
    EXPECT_LT(cur, prev) << d;
    prev = cur;
  }
}

TEST(Asymptotic, MonotoneIncreasingInLambda) {
  double prev = asymptotic_delay(0.05, 2);
  for (double lambda = 0.1; lambda < 1.0; lambda += 0.05) {
    const double cur = asymptotic_delay(lambda, 2);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Asymptotic, DelayAtLeastOne) {
  for (int d : {1, 2, 5, 25})
    for (double lambda : {0.0, 0.3, 0.97})
      EXPECT_GE(asymptotic_delay(lambda, d), 1.0);
}

TEST(Asymptotic, LargeDApproachesOnePlusLambdaPowD) {
  // For large d the second term lambda^d dominates the tail.
  const double lambda = 0.9;
  const int d = 50;
  EXPECT_NEAR(asymptotic_delay(lambda, d), 1.0 + std::pow(lambda, d), 1e-6);
}

TEST(Asymptotic, DomainChecks) {
  EXPECT_THROW(asymptotic_delay(1.0, 2), std::invalid_argument);
  EXPECT_THROW(asymptotic_delay(-0.1, 2), std::invalid_argument);
  EXPECT_THROW(asymptotic_delay(0.5, 0), std::invalid_argument);
}

TEST(AsymptoticTail, KnownValues) {
  // s_i = lambda^{(d^i - 1)/(d-1)}.
  const double lambda = 0.8;
  EXPECT_DOUBLE_EQ(asymptotic_queue_tail(lambda, 2, 0), 1.0);
  EXPECT_NEAR(asymptotic_queue_tail(lambda, 2, 1), lambda, 1e-12);
  EXPECT_NEAR(asymptotic_queue_tail(lambda, 2, 2), std::pow(lambda, 3.0),
              1e-12);
  EXPECT_NEAR(asymptotic_queue_tail(lambda, 2, 3), std::pow(lambda, 7.0),
              1e-12);
}

TEST(AsymptoticTail, DelayEqualsTailSum) {
  // E[Delay] = sum_{i>=1} s_i / lambda (tagged-job argument): check the two
  // public functions are consistent.
  const double lambda = 0.85;
  const int d = 3;
  double sum = 0.0;
  for (int i = 1; i <= 40; ++i) sum += asymptotic_queue_tail(lambda, d, i);
  EXPECT_NEAR(asymptotic_delay(lambda, d), sum / lambda, 1e-10);
}

}  // namespace
