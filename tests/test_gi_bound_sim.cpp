// Empirical validation of Theorem 2: the lower bound model's level tail
// decays with ratio sigma^N for renewal (non-Poisson) arrivals.
#include <cmath>

#include <gtest/gtest.h>

#include "sim/gi_bound_sim.h"
#include "sqd/bound_solver.h"
#include "sqd/interarrival.h"

namespace {

using rlb::sim::simulate_gi_lower_bound;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

TEST(GiBoundSim, PoissonTailRatioIsRhoN) {
  // Theorem 3 special case: sigma = rho.
  const double rho = 0.85;
  const Params p{3, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto arr = rlb::sim::make_exponential(rho * 3);
  const auto r = simulate_gi_lower_bound(model, *arr, 3'000'000, 300'000, 99);
  EXPECT_NEAR(r.level_tail_ratio, std::pow(rho, 3), 0.05);
}

TEST(GiBoundSim, PoissonMatchesMatrixGeometricSolver) {
  const double rho = 0.7;
  const Params p{3, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto solved = rlb::sqd::solve_lower_improved(model);
  const auto arr = rlb::sim::make_exponential(rho * 3);
  const auto r = simulate_gi_lower_bound(model, *arr, 3'000'000, 300'000, 7);
  EXPECT_NEAR(r.mean_waiting_jobs, solved.mean_waiting_jobs,
              0.03 * (1.0 + solved.mean_waiting_jobs));
}

TEST(GiBoundSim, ErlangTailRatioIsSigmaN) {
  // Theorem 2 proper: Erlang-3 arrivals, sigma < rho.
  const double rho = 0.85;
  const int n = 2;
  const Params p{n, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  // Cluster-level Erlang-3 stream with rate rho * n.
  const auto arr = rlb::sim::make_erlang(3, 3.0 * rho * n);
  const rlb::sqd::ErlangInterarrival analysis(3, 3.0 * rho * n);
  // NOTE: sigma is defined against the per-job service clock; the cluster
  // sees interarrivals at rate rho*n with mu = 1 per server... the level
  // tail of the N-server bound model uses the AGGREGATE service rate N*mu
  // between arrivals, which is exactly what beta_k encodes with mu -> N*mu.
  const double sigma = rlb::sqd::solve_sigma(analysis, n * 1.0).sigma;
  const auto r = simulate_gi_lower_bound(model, *arr, 4'000'000, 400'000, 13);
  // sigma is the per-job decay; levels span N jobs, so the level-mass
  // ratio is sigma^N (Theorem 2).
  EXPECT_NEAR(r.level_tail_ratio, std::pow(sigma, n), 0.05);
  // And distinctly below the Poisson ratio rho^N.
  EXPECT_LT(r.level_tail_ratio, std::pow(rho, n) - 0.01);
}

TEST(GiBoundSim, HyperExpTailHeavierThanPoisson) {
  const double rho = 0.8;
  const int n = 2;
  const Params p{n, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto arr = rlb::sim::make_hyperexp_fitted(1.0 / (rho * n), 4.0);
  const auto r = simulate_gi_lower_bound(model, *arr, 4'000'000, 400'000, 17);
  EXPECT_GT(r.level_tail_ratio, std::pow(rho, n) + 0.02);
}

TEST(GiBoundSim, DistributionIsNormalized) {
  const Params p{3, 2, 0.6, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto arr = rlb::sim::make_exponential(0.6 * 3);
  const auto r = simulate_gi_lower_bound(model, *arr, 500'000, 50'000, 3);
  double total = 0.0;
  for (double v : r.total_jobs_dist) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GiBoundSim, RejectsUpperModel) {
  const BoundModel model(Params{2, 2, 0.5, 1.0}, 1, BoundKind::Upper);
  const auto arr = rlb::sim::make_exponential(1.0);
  EXPECT_THROW(simulate_gi_lower_bound(model, *arr, 1000, 10, 1),
               std::invalid_argument);
}

}  // namespace
