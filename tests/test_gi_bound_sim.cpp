// Empirical validation of Theorem 2: the lower bound model's level tail
// decays with ratio sigma^N for renewal (non-Poisson) arrivals.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/bound_sim.h"
#include "sim/gi_bound_sim.h"
#include "sqd/bound_solver.h"
#include "sqd/interarrival.h"

namespace {

using rlb::sim::simulate_gi_lower_bound;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

TEST(GiBoundSim, PoissonTailRatioIsRhoN) {
  // Theorem 3 special case: sigma = rho.
  const double rho = 0.85;
  const Params p{3, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto arr = rlb::sim::make_exponential(rho * 3);
  const auto r = simulate_gi_lower_bound(model, *arr, 3'000'000, 300'000, 99);
  EXPECT_NEAR(r.level_tail_ratio, std::pow(rho, 3), 0.05);
}

TEST(GiBoundSim, UnitRankSpeedsMatchHomogeneousStatistically) {
  // The hetero path samples the departing rank differently (weighted scan
  // vs uniform pick), so all-ones speeds give the same law through a
  // different stream: statistically close, not bit-identical.
  const double rho = 0.8;
  const Params p{3, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto arr = rlb::sim::make_exponential(rho * 3);
  const auto homog =
      simulate_gi_lower_bound(model, *arr, 2'000'000, 200'000, 17);
  const auto hetero = simulate_gi_lower_bound(
      model, *arr, 2'000'000, 200'000, 17, 1,
      rlb::util::ThreadBudget::serial(), {1.0, 1.0, 1.0});
  EXPECT_NEAR(hetero.mean_jobs, homog.mean_jobs,
              0.03 * (1.0 + homog.mean_jobs));
  EXPECT_NEAR(hetero.mean_waiting_jobs, homog.mean_waiting_jobs,
              0.03 * (1.0 + homog.mean_waiting_jobs));
}

TEST(GiBoundSim, HeteroAgreesWithCtmcJumpChain) {
  // With exponential interarrivals the GI simulator and the CTMC jump
  // chain simulate the same heterogeneous-rate chain through independent
  // implementations; their long-run averages must agree.
  const double rho = 0.8;
  const Params p{4, 2, rho, 1.0};
  const BoundModel model(p, 3, BoundKind::Lower);
  const std::vector<double> speeds{1.5, 1.5, 0.5, 0.5};
  const auto arr = rlb::sim::make_exponential(rho * 4);
  const auto gi = simulate_gi_lower_bound(
      model, *arr, 2'000'000, 200'000, 19, 1,
      rlb::util::ThreadBudget::serial(), speeds);
  const auto ctmc = rlb::sim::simulate_bound_model(
      model, 2'000'000, 200'000, 23, 1, rlb::util::ThreadBudget::serial(),
      speeds);
  EXPECT_NEAR(gi.mean_waiting_jobs, ctmc.mean_waiting_jobs,
              0.05 * (1.0 + ctmc.mean_waiting_jobs));
  EXPECT_NEAR(gi.mean_jobs, ctmc.mean_jobs, 0.05 * (1.0 + ctmc.mean_jobs));
}

TEST(GiBoundSim, HeteroIsThreadBudgetInvariant) {
  const double rho = 0.8;
  const Params p{3, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const std::vector<double> speeds{1.5, 1.0, 0.5};
  const auto arr = rlb::sim::make_exponential(rho * 3);
  const auto serial = simulate_gi_lower_bound(
      model, *arr, 120'000, 12'000, 29, 3,
      rlb::util::ThreadBudget::serial(), speeds);
  rlb::util::ThreadBudget four(4);
  const auto parallel =
      simulate_gi_lower_bound(model, *arr, 120'000, 12'000, 29, 3, four,
                              speeds);
  EXPECT_DOUBLE_EQ(parallel.mean_jobs, serial.mean_jobs);
  EXPECT_DOUBLE_EQ(parallel.mean_waiting_jobs, serial.mean_waiting_jobs);
  ASSERT_EQ(parallel.total_jobs_dist.size(), serial.total_jobs_dist.size());
}

TEST(GiBoundSim, ValidatesRankSpeeds) {
  const Params p{3, 2, 0.8, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto arr = rlb::sim::make_exponential(0.8 * 3);
  EXPECT_THROW(
      simulate_gi_lower_bound(model, *arr, 1000, 100, 1, 1,
                              rlb::util::ThreadBudget::serial(),
                              {1.0, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      simulate_gi_lower_bound(model, *arr, 1000, 100, 1, 1,
                              rlb::util::ThreadBudget::serial(),
                              {0.0, 1.0, 1.0}),
      std::invalid_argument);
}

TEST(GiBoundSim, PoissonMatchesMatrixGeometricSolver) {
  const double rho = 0.7;
  const Params p{3, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto solved = rlb::sqd::solve_lower_improved(model);
  const auto arr = rlb::sim::make_exponential(rho * 3);
  const auto r = simulate_gi_lower_bound(model, *arr, 3'000'000, 300'000, 7);
  EXPECT_NEAR(r.mean_waiting_jobs, solved.mean_waiting_jobs,
              0.03 * (1.0 + solved.mean_waiting_jobs));
}

TEST(GiBoundSim, ErlangTailRatioIsSigmaN) {
  // Theorem 2 proper: Erlang-3 arrivals, sigma < rho.
  const double rho = 0.85;
  const int n = 2;
  const Params p{n, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  // Cluster-level Erlang-3 stream with rate rho * n.
  const auto arr = rlb::sim::make_erlang(3, 3.0 * rho * n);
  const rlb::sqd::ErlangInterarrival analysis(3, 3.0 * rho * n);
  // NOTE: sigma is defined against the per-job service clock; the cluster
  // sees interarrivals at rate rho*n with mu = 1 per server... the level
  // tail of the N-server bound model uses the AGGREGATE service rate N*mu
  // between arrivals, which is exactly what beta_k encodes with mu -> N*mu.
  const double sigma = rlb::sqd::solve_sigma(analysis, n * 1.0).sigma;
  const auto r = simulate_gi_lower_bound(model, *arr, 4'000'000, 400'000, 13);
  // sigma is the per-job decay; levels span N jobs, so the level-mass
  // ratio is sigma^N (Theorem 2).
  EXPECT_NEAR(r.level_tail_ratio, std::pow(sigma, n), 0.05);
  // And distinctly below the Poisson ratio rho^N.
  EXPECT_LT(r.level_tail_ratio, std::pow(rho, n) - 0.01);
}

TEST(GiBoundSim, HyperExpTailHeavierThanPoisson) {
  const double rho = 0.8;
  const int n = 2;
  const Params p{n, 2, rho, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto arr = rlb::sim::make_hyperexp_fitted(1.0 / (rho * n), 4.0);
  const auto r = simulate_gi_lower_bound(model, *arr, 4'000'000, 400'000, 17);
  EXPECT_GT(r.level_tail_ratio, std::pow(rho, n) + 0.02);
}

TEST(GiBoundSim, DistributionIsNormalized) {
  const Params p{3, 2, 0.6, 1.0};
  const BoundModel model(p, 2, BoundKind::Lower);
  const auto arr = rlb::sim::make_exponential(0.6 * 3);
  const auto r = simulate_gi_lower_bound(model, *arr, 500'000, 50'000, 3);
  double total = 0.0;
  for (double v : r.total_jobs_dist) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GiBoundSim, RejectsUpperModel) {
  const BoundModel model(Params{2, 2, 0.5, 1.0}, 1, BoundKind::Upper);
  const auto arr = rlb::sim::make_exponential(1.0);
  EXPECT_THROW(simulate_gi_lower_bound(model, *arr, 1000, 10, 1),
               std::invalid_argument);
}

}  // namespace
