#include "markov/uniformization.h"

#include <cmath>

#include <gtest/gtest.h>

#include "markov/gth.h"

namespace {

namespace mk = rlb::markov;
using rlb::linalg::Matrix;
using rlb::linalg::Vector;

Matrix two_state(double a, double b) {
  Matrix q(2, 2);
  q(0, 0) = -a;
  q(0, 1) = a;
  q(1, 0) = b;
  q(1, 1) = -b;
  return q;
}

TEST(Uniformization, MatchesClosedFormTwoState) {
  // For a two-state chain, P(X_t = 1 | X_0 = 0) has a known closed form.
  const double a = 1.5, b = 0.5;
  const Matrix q = two_state(a, b);
  for (double t : {0.1, 0.5, 2.0}) {
    const Vector p = mk::transient_distribution(q, {1.0, 0.0}, t);
    const double expected =
        a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(p[1], expected, 1e-10) << t;
  }
}

TEST(Uniformization, TimeZeroIsInitial) {
  const Matrix q = two_state(1.0, 1.0);
  const Vector p = mk::transient_distribution(q, {0.3, 0.7}, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.3);
  EXPECT_DOUBLE_EQ(p[1], 0.7);
}

TEST(Uniformization, ConvergesToStationary) {
  const Matrix q = two_state(2.0, 1.0);
  const Vector p = mk::transient_distribution(q, {1.0, 0.0}, 50.0);
  const Vector pi = mk::stationary_gth(q);
  EXPECT_NEAR(p[0], pi[0], 1e-9);
  EXPECT_NEAR(p[1], pi[1], 1e-9);
}

TEST(Uniformization, ProbabilityMassConserved) {
  const Matrix q = two_state(0.7, 0.3);
  const Vector p = mk::transient_distribution(q, {0.5, 0.5}, 3.0);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GE(p[0], 0.0);
  EXPECT_GE(p[1], 0.0);
}

}  // namespace
