#include "sqd/interarrival.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using namespace rlb::sqd;

// beta_k should always match the LST through the generating identity
// sum_k x^k beta_k = LST(mu(1-x)).
void check_beta_lst_consistency(const Interarrival& a, double mu) {
  for (double x : {0.0, 0.3, 0.7, 0.95}) {
    double series = 0.0;
    double xk = 1.0;
    for (int k = 0; k < 400; ++k) {
      series += xk * a.beta(k, mu);
      xk *= x;
    }
    EXPECT_NEAR(series, a.lst(mu * (1.0 - x)), 1e-10)
        << a.name() << " x=" << x;
  }
}

TEST(Interarrival, ExponentialBetaMatchesPaperEq21) {
  // Eq. (21): beta_k = (lambda/mu) * mu^{k+1} / (lambda+mu)^{k+1}.
  const double lambda = 0.8, mu = 1.0;
  const ExponentialInterarrival a(lambda);
  for (int k = 0; k <= 10; ++k) {
    const double expected =
        lambda / mu * std::pow(mu / (lambda + mu), k + 1);
    EXPECT_NEAR(a.beta(k, mu), expected, 1e-14);
  }
}

TEST(Interarrival, BetasFormDistribution) {
  // beta_k is the probability of k potential services in an interarrival
  // interval; they must sum to 1.
  const double mu = 1.0;
  const std::vector<const Interarrival*> dists = [] {
    static ExponentialInterarrival e(0.7);
    static ErlangInterarrival g(3, 2.1);
    static HyperExpInterarrival h(0.4, 2.0, 0.5);
    static DeterministicInterarrival d(1.25);
    return std::vector<const Interarrival*>{&e, &g, &h, &d};
  }();
  for (const auto* a : dists) {
    double total = 0.0;
    for (int k = 0; k < 500; ++k) total += a->beta(k, mu);
    EXPECT_NEAR(total, 1.0, 1e-9) << a->name();
  }
}

TEST(Interarrival, BetaLstConsistency) {
  const double mu = 1.3;
  check_beta_lst_consistency(ExponentialInterarrival(0.9), mu);
  check_beta_lst_consistency(ErlangInterarrival(4, 3.0), mu);
  check_beta_lst_consistency(HyperExpInterarrival(0.3, 3.0, 0.6), mu);
  check_beta_lst_consistency(DeterministicInterarrival(0.8), mu);
}

TEST(Interarrival, LstAtZeroIsOne) {
  EXPECT_NEAR(ExponentialInterarrival(2.0).lst(0.0), 1.0, 1e-14);
  EXPECT_NEAR(ErlangInterarrival(2, 1.0).lst(0.0), 1.0, 1e-14);
  EXPECT_NEAR(HyperExpInterarrival(0.5, 1.0, 2.0).lst(0.0), 1.0, 1e-14);
  EXPECT_NEAR(DeterministicInterarrival(1.0).lst(0.0), 1.0, 1e-14);
}

TEST(Interarrival, Means) {
  EXPECT_DOUBLE_EQ(ExponentialInterarrival(2.0).mean(), 0.5);
  EXPECT_DOUBLE_EQ(ErlangInterarrival(3, 6.0).mean(), 0.5);
  EXPECT_DOUBLE_EQ(DeterministicInterarrival(0.5).mean(), 0.5);
  EXPECT_DOUBLE_EQ(HyperExpInterarrival(0.5, 1.0, 1.0).mean(), 1.0);
}

TEST(Sigma, PoissonGivesRho) {
  // Theorem 3: sigma = rho for Poisson arrivals.
  for (double lambda : {0.1, 0.5, 0.75, 0.9, 0.99}) {
    const ExponentialInterarrival a(lambda);
    const SigmaResult r = solve_sigma(a, 1.0);
    EXPECT_NEAR(r.sigma, lambda, 1e-10) << lambda;
  }
}

TEST(Sigma, ErlangBelowPoisson) {
  // Smoother arrivals (CV < 1) queue less: sigma < rho.
  const double rho = 0.8;
  const ErlangInterarrival a(4, 4.0 * rho);  // mean 1/rho -> utilization rho
  const SigmaResult r = solve_sigma(a, 1.0);
  EXPECT_LT(r.sigma, rho);
  EXPECT_GT(r.sigma, 0.0);
}

TEST(Sigma, HyperExpAbovePoisson) {
  // Burstier arrivals (CV > 1) queue more: sigma > rho.
  const double rho = 0.8;
  // Balanced-means hyperexponential with mean 1/rho.
  const double mean = 1.0 / rho;
  const double p1 = 0.9;
  const HyperExpInterarrival a(p1, 2.0 * p1 / mean,
                               2.0 * (1.0 - p1) / mean);
  const SigmaResult r = solve_sigma(a, 1.0);
  EXPECT_GT(r.sigma, rho);
  EXPECT_LT(r.sigma, 1.0);
}

TEST(Sigma, DeterministicSolvesFixedPoint) {
  const double rho = 0.9;
  const DeterministicInterarrival a(1.0 / rho);
  const SigmaResult r = solve_sigma(a, 1.0);
  // sigma = exp(-mu(1-sigma)/rho): verify the fixed point directly.
  EXPECT_NEAR(r.sigma, std::exp(-(1.0 - r.sigma) / rho), 1e-10);
  EXPECT_LT(r.sigma, rho);  // deterministic is the smoothest renewal input
}

TEST(Sigma, UnstableThrows) {
  const ExponentialInterarrival a(1.5);  // utilization 1.5
  EXPECT_THROW(solve_sigma(a, 1.0), std::runtime_error);
}

TEST(Sigma, SolvesTheorem2Equation) {
  // The returned sigma satisfies x = sum_k x^k beta_k.
  const ErlangInterarrival a(2, 1.6);
  const double mu = 1.0;
  const SigmaResult r = solve_sigma(a, mu);
  double series = 0.0, xk = 1.0;
  for (int k = 0; k < 300; ++k) {
    series += xk * a.beta(k, mu);
    xk *= r.sigma;
  }
  EXPECT_NEAR(series, r.sigma, 1e-10);
}

}  // namespace
