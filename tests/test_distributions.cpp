#include "sim/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace {

using namespace rlb::sim;

void check_mean_and_cv(const Distribution& dist, double expected_mean,
                       double expected_cv, double tol) {
  Rng rng(97);
  StreamingMoments s;
  for (int i = 0; i < 400000; ++i) s.add(dist.sample(rng));
  EXPECT_NEAR(s.mean(), expected_mean, tol * expected_mean) << dist.name();
  const double cv = s.stddev() / s.mean();
  EXPECT_NEAR(cv, expected_cv, 0.03 + tol) << dist.name();
}

TEST(Distributions, ExponentialMoments) {
  check_mean_and_cv(*make_exponential(2.0), 0.5, 1.0, 0.01);
}

TEST(Distributions, DeterministicIsConstant) {
  const auto d = make_deterministic(1.5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d->sample(rng), 1.5);
  EXPECT_DOUBLE_EQ(d->mean(), 1.5);
}

TEST(Distributions, ErlangMoments) {
  // Erlang(4, 8): mean 0.5, CV = 1/2.
  check_mean_and_cv(*make_erlang(4, 8.0), 0.5, 0.5, 0.01);
}

TEST(Distributions, HyperExpMoments) {
  const auto h = make_hyperexp(0.5, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(h->mean(), 0.5 / 2.0 + 0.5 / 0.5);
  Rng rng(3);
  StreamingMoments s;
  for (int i = 0; i < 300000; ++i) s.add(h->sample(rng));
  EXPECT_NEAR(s.mean(), h->mean(), 0.02);
  EXPECT_GT(s.stddev() / s.mean(), 1.0);  // CV above exponential
}

TEST(Distributions, HyperExpFittedMatchesTargets) {
  const double mean = 2.0, scv = 4.0;
  const auto h = make_hyperexp_fitted(mean, scv);
  EXPECT_NEAR(h->mean(), mean, 1e-12);
  Rng rng(5);
  StreamingMoments s;
  for (int i = 0; i < 500000; ++i) s.add(h->sample(rng));
  EXPECT_NEAR(s.mean(), mean, 0.05);
  const double measured_scv = s.variance() / (s.mean() * s.mean());
  EXPECT_NEAR(measured_scv, scv, 0.3);
}

TEST(Distributions, LognormalMoments) {
  check_mean_and_cv(*make_lognormal(1.0, 0.8), 1.0, 0.8, 0.02);
}

TEST(Distributions, UniformMoments) {
  check_mean_and_cv(*make_uniform(1.0, 3.0),
                    2.0, (2.0 / std::sqrt(12.0)) / 2.0, 0.01);
}

TEST(Distributions, SamplesNonNegative) {
  Rng rng(7);
  for (const auto& d :
       {make_exponential(1.0), make_erlang(2, 2.0),
        make_hyperexp(0.3, 1.0, 3.0), make_lognormal(1.0, 1.0),
        make_uniform(0.0, 1.0), make_deterministic(0.0)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_GE(d->sample(rng), 0.0);
  }
}

TEST(Distributions, InvalidParametersThrow) {
  EXPECT_THROW(make_exponential(0.0), std::invalid_argument);
  EXPECT_THROW(make_erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_hyperexp(1.5, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_lognormal(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_hyperexp_fitted(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(make_pareto(1.0, 1.0), std::invalid_argument);   // alpha > 1
  EXPECT_THROW(make_pareto(2.0, 0.0), std::invalid_argument);   // scale > 0
  EXPECT_THROW(make_pareto_mean(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(make_pareto_mean(1.0, 0.5), std::invalid_argument);
}

TEST(Distributions, ParetoMeanAndSupport) {
  // make_pareto(3, 2): mean = 3*2/2 = 3, support [2, inf).
  const auto d = make_pareto(3.0, 2.0);
  EXPECT_NEAR(d->mean(), 3.0, 1e-12);
  EXPECT_EQ(d->name(), "pareto");
  Rng rng(11);
  StreamingMoments s;
  for (int i = 0; i < 400000; ++i) s.add(d->sample(rng));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_GE(s.min(), 2.0);
  // make_pareto_mean derives the scale: mean 1 at alpha 2.5 -> scale 0.6.
  const auto m = make_pareto_mean(1.0, 2.5);
  EXPECT_NEAR(m->mean(), 1.0, 1e-12);
  Rng rng2(13);
  EXPECT_GE(m->sample(rng2), 0.6 - 1e-12);
}

TEST(Distributions, ParseDistributionBuildsEveryFamily) {
  struct Case {
    const char* spec;
    const char* name;
    double mean;
  };
  const Case cases[]{
      {"exp:rate=2", "exp", 0.5},
      {"det:value=1.5", "det", 1.5},
      {"erlang:shape=4,rate=8", "erlang4", 0.5},
      {"uniform:lo=1,hi=3", "uniform", 2.0},
      {"pareto:mean=2,alpha=2.5", "pareto", 2.0},
      {"lognormal:mean=2,cv=1.5", "lognormal", 2.0},
      {"hyperexp:mean=1,scv=4", "hyperexp2", 1.0},
  };
  for (const Case& c : cases) {
    const auto d = parse_distribution(c.spec);
    EXPECT_EQ(d->name(), c.name) << c.spec;
    EXPECT_NEAR(d->mean(), c.mean, 1e-12) << c.spec;
  }
  // Keys bind by name, not position.
  EXPECT_NEAR(parse_distribution("erlang:rate=8,shape=4")->mean(), 0.5,
              1e-12);
}

TEST(Distributions, ParseDistributionProducesTheFactorysStream) {
  const auto parsed = parse_distribution("pareto:mean=2,alpha=2.5");
  const auto direct = make_pareto_mean(2.0, 2.5);
  Rng rng1(17), rng2(17);
  for (int i = 0; i < 1000; ++i)
    EXPECT_DOUBLE_EQ(parsed->sample(rng1), direct->sample(rng2)) << i;
}

TEST(Distributions, ParseDistributionRejectsMalformedSpecs) {
  for (const char* spec :
       {"gamma:shape=2",          // unknown family
        "exp",                    // missing params
        "exp:rate=2,extra=1",     // unknown key
        "exp:rate=2,rate=3",      // duplicate key
        "exp:2.0",                // not key=value
        "exp:rate=abc",           // malformed number
        "exp:rate=inf",           // non-finite
        "pareto:mean=2",          // missing key
        "erlang:shape=2.5,rate=1",  // non-integer shape
        "exp:rate=0"})            // domain error from the factory
    EXPECT_THROW((void)parse_distribution(spec), std::invalid_argument)
        << spec;
}

/// Assert that `spec` is rejected with a message ENDING in
/// `expected_tail`. --arrival/--service errors surface these messages to
/// the CLI user (RLB_REQUIRE prepends its mechanical "requirement
/// failed" preamble; the human-readable diagnosis is the tail), so the
/// wording is contract, not decoration.
void expect_rejection(const std::string& spec,
                      const std::string& expected_tail) {
  try {
    (void)parse_distribution(spec);
    ADD_FAILURE() << "spec unexpectedly parsed: " << spec;
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_TRUE(message.size() >= expected_tail.size() &&
                message.compare(message.size() - expected_tail.size(),
                                expected_tail.size(), expected_tail) == 0)
        << "message: " << message << "\nexpected tail: " << expected_tail;
  }
}

TEST(Distributions, RejectionMessagesNameTheProblemAndEchoTheSpec) {
  // Each message states WHAT is wrong (the family, the key, the token)
  // and repeats the offending spec so a user with several --arrival
  // flags can tell which one misfired.
  expect_rejection("gamma:shape=2",
                   "unknown distribution family in spec: gamma:shape=2 "
                   "(known: exp, det, erlang, uniform, pareto, lognormal, "
                   "hyperexp)");
  expect_rejection("exp:rate=2,extra=1",
                   "unknown key 'extra' in distribution spec: "
                   "exp:rate=2,extra=1");
  expect_rejection("exp:rate=2,rate=3",
                   "duplicate key 'rate' in distribution spec: "
                   "exp:rate=2,rate=3");
  expect_rejection("exp:rate=abc",
                   "malformed number in distribution spec: exp:rate=abc");
  expect_rejection("pareto:mean=2",
                   "distribution spec is missing 'alpha': pareto:mean=2");
  expect_rejection("erlang:shape=2.5,rate=1",
                   "erlang shape must be an integer >= 1: "
                   "erlang:shape=2.5,rate=1");
}

}  // namespace
